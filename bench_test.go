package pracsim_test

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the corresponding result at a reduced scale and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the experiment regeneration harness. The cmd/pracleak,
// cmd/tpracsim and cmd/secanalysis binaries run the same experiments at
// full scale with rendered reports.

import (
	"testing"

	"pracsim"
)

func benchScale() pracsim.Scale {
	return pracsim.Scale{
		Warmup:    10_000,
		Measured:  20_000,
		Workloads: []string{"433.milc", "470.lbm", "401.bzip2", "444.namd"},
	}
}

func BenchmarkFig3Characterization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig3(pracsim.FromUS(150))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].SpikeNS, "spike1-ns")
		b.ReportMetric(res.Rows[3].SpikeNS, "spike4-ns")
	}
}

func BenchmarkTable2CovertChannels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunTable2(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].BitrateKbps, "activity-256-kbps")
		b.ReportMetric(res.Rows[3].BitrateKbps, "count-256-kbps")
	}
}

func BenchmarkFig4SideChannel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig4(150)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Attack.AttackerCount), "attacker-acts")
	}
}

func BenchmarkFig5KeySweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig5(150, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.HitRate(), "hit-rate-pct")
	}
}

func BenchmarkFig7Analysis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Points[3].WithReset), "tmax-1trefi")
	}
}

func BenchmarkFig9Defense(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig9(150, 128)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.UndefHits), "undefended-hits")
		b.ReportMetric(float64(res.DefendedHit), "defended-hits")
	}
}

func BenchmarkFig10MainPerformance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-res.GeomeanAll[2]), "tprac-slowdown-pct")
		b.ReportMetric(100*(1-res.GeomeanAll[1]), "acb-slowdown-pct")
	}
}

func BenchmarkFig11PRACLevels(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.Workloads = scale.Workloads[:2]
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig11(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-res.Geomean[2][2]), "tprac-prac4-slowdown-pct")
	}
}

func BenchmarkFig12TargetedRefresh(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.Workloads = scale.Workloads[:2]
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig12(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-res.Geomean[0][0]), "no-tref-slowdown-pct")
		b.ReportMetric(100*(1-res.Geomean[4][0]), "tref1-slowdown-pct")
	}
}

func BenchmarkFig13ThresholdSweep(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.Workloads = scale.Workloads[:2]
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig13(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-res.Geomean[0][2]), "tprac-nrh128-slowdown-pct")
		b.ReportMetric(100*(1-res.Geomean[3][2]), "tprac-nrh1024-slowdown-pct")
	}
}

func BenchmarkFig14CounterReset(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.Workloads = scale.Workloads[:1]
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunFig14(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-res.Geomean[0][0]), "reset-nrh128-slowdown-pct")
		b.ReportMetric(100*(1-res.Geomean[0][1]), "noreset-nrh128-slowdown-pct")
	}
}

func BenchmarkRFMpbExtension(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.Workloads = scale.Workloads[:1]
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunRFMpb(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-res.RFMab[0]), "rfmab-nrh256-slowdown-pct")
		b.ReportMetric(100*(1-res.RFMpb[0]), "rfmpb-nrh256-slowdown-pct")
	}
}

func BenchmarkTable5Energy(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.Workloads = scale.Workloads[:1]
	for i := 0; i < b.N; i++ {
		res, err := pracsim.RunTable5(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[3].TotalPct, "energy-nrh1024-pct")
		b.ReportMetric(res.Rows[0].TotalPct, "energy-nrh128-pct")
	}
}
