// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document, so CI can record benchmark results as an artifact
// (e.g. BENCH_pr2.json) and the performance trajectory across PRs stays
// machine-diffable.
//
// Usage:
//
//	go test -run=NONE -bench 'Engine|Fig11' -benchmem ./... | benchjson -out BENCH_pr2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: its name, iteration count, and every
// reported metric (ns/op, B/op, allocs/op and custom ReportMetric units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document. Store holds the run-store counters
// (hits, misses, bytes) summed across every benchmark that reports
// `store_*` custom metrics, so the store's cache behavior is a
// first-class, diffable quantity in the bench artifact rather than
// buried per-benchmark.
type Report struct {
	Package map[string][]Result `json:"benchmarks"` // keyed by pkg path
	Store   map[string]float64  `json:"store,omitempty"`
}

func parse(lines []string) Report {
	rep := Report{Package: map[string][]Result{}}
	pkg := ""
	for _, line := range lines {
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
			if name, ok := strings.CutPrefix(fields[i+1], "store_"); ok {
				if rep.Store == nil {
					rep.Store = map[string]float64{}
				}
				rep.Store[name] += v
			}
		}
		rep.Package[pkg] = append(rep.Package[pkg], res)
	}
	return rep
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		fmt.Println(line) // tee: keep the human-readable output visible
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	rep := parse(lines)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s\n", *out)
}
