// Command pracleak runs the PRACLeak attack experiments (Figures 3, 4, 5
// and 9, Table 2) and prints their reports, optionally writing CSV files.
//
// The sweeps (panels of Figure 3, Table 2's channel configurations, the
// key values of Figures 5 and 9) are independent simulations and fan out
// across all cores; -workers caps that concurrency. Results never depend
// on the worker count. Each experiment's whole result is memoized in the
// persistent run store (-store, on by default), keyed by experiment
// parameters and the simulator schema version, so a warm rerun executes
// no simulations and reproduces byte-identical reports.
//
// Usage:
//
//	pracleak -exp fig3|table2|fig4|fig5|fig9|all [-quick] [-workers N]
//	         [-store DIR|URL|auto|off] [-journal DIR|off] [-csvdir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/store"
	"pracsim/internal/sim"
	"pracsim/internal/ticks"
)

type report interface {
	Render() string
	CSV() string
}

// memo adapts exp.MemoWith to the report interface: the concrete result
// is memoized (content-addressed by key, crash-journaled when -journal
// is set), the caller sees a report.
func memo[T report](st *store.Store, jl *journal.Journal, key string, fn func() (T, error)) (report, error) {
	return exp.MemoWith(st, jl, key, fn)
}

// openJournal opens the crash-recovery journal for -journal; failures
// degrade to running without one.
func openJournal(mode string, fpParts ...string) *journal.Journal {
	if mode == "" || mode == "off" {
		return nil
	}
	jl, rec, err := journal.Open(filepath.Join(mode, "session.journal"), journal.Options{
		Schema:      sim.SchemaVersion,
		Fingerprint: journal.Fingerprint(fpParts...),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pracleak: opening journal: %v; running without a journal\n", err)
		return nil
	}
	if !rec.Fresh {
		fmt.Printf("journal: resuming — %d record(s) replayed\n", rec.Records)
	}
	return jl
}

func main() {
	which := flag.String("exp", "all", "experiment: fig3, table2, fig4, fig5, fig9 or all")
	quick := flag.Bool("quick", false, "reduced sweep sizes for fast runs")
	workers := flag.Int("workers", 0, "concurrent sweep simulations (0 = all cores, 1 = serial)")
	storeMode := flag.String("store", "auto", "persistent result store: a directory, a pracstored URL (http://host:port), 'auto' (user cache dir) or 'off'")
	storeTimeout := flag.Duration("store-timeout", 10*time.Second, "per-attempt deadline for remote store requests")
	journalMode := flag.String("journal", "off", "crash-recovery journal directory ('off' = none); an interrupted run re-invoked with the same arguments skips completed experiments")
	csvDir := flag.String("csvdir", "", "directory to write CSV files into (optional)")
	flag.Parse()

	st, warn, err := store.ResolveBackendWith(*storeMode, store.HTTPOptions{Timeout: *storeTimeout})
	if warn != "" {
		fmt.Fprintln(os.Stderr, "pracleak: "+warn)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pracleak: %v\n", err)
		os.Exit(1)
	}
	jl := openJournal(*journalMode,
		fmt.Sprintf("schema=%d", sim.SchemaVersion), "cmd=pracleak",
		"exp="+*which, fmt.Sprintf("quick=%t", *quick))

	runs := map[string]func() (report, error){
		"fig3": func() (report, error) {
			d := ticks.FromMS(2)
			if *quick {
				d = ticks.FromUS(200)
			}
			return memo(st, jl, fmt.Sprintf("pracleak/fig3/dur=%d", d), func() (exp.Fig3Result, error) {
				return exp.RunFig3(d, *workers)
			})
		},
		"table2": func() (report, error) {
			symbols := 64
			if *quick {
				symbols = 8
			}
			return memo(st, jl, fmt.Sprintf("pracleak/table2/symbols=%d", symbols), func() (exp.Table2Result, error) {
				return exp.RunTable2(symbols, *workers)
			})
		},
		"fig4": func() (report, error) {
			return memo(st, jl, "pracleak/fig4/enc=200", func() (exp.Fig4Result, error) {
				return exp.RunFig4(200)
			})
		},
		"fig5": func() (report, error) {
			stride := 4
			if *quick {
				stride = 32
			}
			return memo(st, jl, fmt.Sprintf("pracleak/fig5/enc=200/stride=%d", stride), func() (exp.Fig5Result, error) {
				return exp.RunFig5(200, stride, *workers)
			})
		},
		"fig9": func() (report, error) {
			stride := 8
			if *quick {
				stride = 64
			}
			return memo(st, jl, fmt.Sprintf("pracleak/fig9/enc=200/stride=%d", stride), func() (exp.Fig9Result, error) {
				return exp.RunFig9(200, stride, *workers)
			})
		},
	}
	order := []string{"fig3", "table2", "fig4", "fig5", "fig9"}

	selected := order
	if *which != "all" {
		if _, ok := runs[*which]; !ok {
			fmt.Fprintf(os.Stderr, "pracleak: unknown experiment %q\n", *which)
			os.Exit(2)
		}
		selected = []string{*which}
	}

	for _, name := range selected {
		start := time.Now()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pracleak: %s: %v\n", name, err)
			os.Exit(1)
		}
		// Per-experiment wall-clock, so stragglers among the sweeps are
		// visible (the simulations themselves elide idle cycles; see
		// README "The clock model"). A store-warm experiment reports
		// milliseconds here.
		fmt.Printf("%s finished in %.2fs\n", name, time.Since(start).Seconds())
		fmt.Println(res.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pracleak: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if st != nil {
		fmt.Println(st.Stats().Report(st.Spec()))
	}
	if jl != nil {
		fmt.Println(jl.Stats().Report(jl.Path()))
		jl.Close()
	}
}
