// Command pracleak runs the PRACLeak attack experiments (Figures 3, 4, 5
// and 9, Table 2) and prints their reports, optionally writing CSV files.
//
// The sweeps (panels of Figure 3, Table 2's channel configurations, the
// key values of Figures 5 and 9) are independent simulations and fan out
// across all cores; -workers caps that concurrency. Results never depend
// on the worker count.
//
// Usage:
//
//	pracleak -exp fig3|table2|fig4|fig5|fig9|all [-quick] [-workers N] [-csvdir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/ticks"
)

type report interface {
	Render() string
	CSV() string
}

func main() {
	which := flag.String("exp", "all", "experiment: fig3, table2, fig4, fig5, fig9 or all")
	quick := flag.Bool("quick", false, "reduced sweep sizes for fast runs")
	workers := flag.Int("workers", 0, "concurrent sweep simulations (0 = all cores, 1 = serial)")
	csvDir := flag.String("csvdir", "", "directory to write CSV files into (optional)")
	flag.Parse()

	runs := map[string]func() (report, error){
		"fig3": func() (report, error) {
			d := ticks.FromMS(2)
			if *quick {
				d = ticks.FromUS(200)
			}
			return exp.RunFig3(d, *workers)
		},
		"table2": func() (report, error) {
			symbols := 64
			if *quick {
				symbols = 8
			}
			return exp.RunTable2(symbols, *workers)
		},
		"fig4": func() (report, error) { return exp.RunFig4(200) },
		"fig5": func() (report, error) {
			stride := 4
			if *quick {
				stride = 32
			}
			return exp.RunFig5(200, stride, *workers)
		},
		"fig9": func() (report, error) {
			stride := 8
			if *quick {
				stride = 64
			}
			return exp.RunFig9(200, stride, *workers)
		},
	}
	order := []string{"fig3", "table2", "fig4", "fig5", "fig9"}

	selected := order
	if *which != "all" {
		if _, ok := runs[*which]; !ok {
			fmt.Fprintf(os.Stderr, "pracleak: unknown experiment %q\n", *which)
			os.Exit(2)
		}
		selected = []string{*which}
	}

	for _, name := range selected {
		start := time.Now()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pracleak: %s: %v\n", name, err)
			os.Exit(1)
		}
		// Per-experiment wall-clock, so stragglers among the sweeps are
		// visible (the simulations themselves elide idle cycles; see
		// README "The clock model").
		fmt.Printf("%s finished in %.2fs\n", name, time.Since(start).Seconds())
		fmt.Println(res.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pracleak: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
