// Command praclint runs the project-invariant static-analysis suite:
// determinism, failpoint coverage, degrade-to-miss, and lock hygiene.
// See internal/lint for the contracts it enforces.
//
// Usage:
//
//	go run ./cmd/praclint ./...
//	go run ./cmd/praclint -json -disable locks ./internal/exp/...
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"os"

	"pracsim/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
