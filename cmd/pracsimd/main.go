// Command pracsimd serves the paper's experiment grids as a service:
// clients POST grid specs (experiments × scale × shards, the same
// grammar as tpracsim's flags) to /v1/jobs, pull workers
// (`tpracsim -pull URL`) lease and execute the shard work items, and
// finished jobs serve their CSVs back over HTTP — one shared
// content-addressed store deduplicates everything, so a grid anyone has
// run before completes without executing a single simulation.
//
// Usage:
//
//	pracsimd [-addr :8460] [-dir DIR] [-tokens A,B,...] [-quota N]
//	         [-lease-ttl 30s] [-attempts 3] [-workers N] [-v]
//
// -dir holds the daemon's state: store/ (the run store), queue.journal
// (the persistent job queue), jobs/{id}/ (delivered shard files and
// result CSVs). The journal makes the queue crash-safe: a SIGKILLed
// daemon restarted over the same -dir adopts every acked work item and
// re-executes nothing.
//
// -tokens enables multi-tenant bearer auth (default $PRACSIMD_TOKENS):
// each token is a tenant with its own job listing, a -quota cap on
// concurrently active jobs, and a round-robin fair share of worker
// capacity within each priority level. /healthz and /metrics stay open.
//
// SIGTERM drains: the listener stops, in-flight requests finish, the
// queue stops granting and the journal syncs — the checkpoint a restart
// resumes from.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pracsim/internal/exp/service"
	"pracsim/internal/fault"
)

// tokensEnv is the default source of the -tokens list.
const tokensEnv = "PRACSIMD_TOKENS"

func main() {
	addr := flag.String("addr", ":8460", "listen address")
	dir := flag.String("dir", "", "data directory: store, queue journal, job results (default: pracsimd/ under the user cache dir)")
	tokens := flag.String("tokens", os.Getenv(tokensEnv),
		"comma-separated bearer tokens, one per tenant (default $"+tokensEnv+"; empty = open)")
	quota := flag.Int("quota", 0, "max concurrently active jobs per token (0 = unlimited)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "worker heartbeat budget before an item is re-leased")
	attempts := flag.Int("attempts", 3, "lease attempts per work item before its job fails")
	workers := flag.Int("workers", 0, "finalize-session simulation concurrency (0 = all cores)")
	faults := flag.String("faults", os.Getenv(fault.EnvVar),
		"deterministic fault schedule, e.g. 'seed=7;queue.ack:err@0.2' (chaos testing; also $"+fault.EnvVar+")")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	logger := log.New(os.Stderr, "pracsimd: ", log.LstdFlags)
	if *faults != "" {
		p, err := fault.Parse(*faults)
		if err != nil {
			logger.Fatal(err)
		}
		p.Salt = os.Getenv(fault.SaltEnvVar)
		p.LogTo = os.Stderr
		fault.Enable(p)
		logger.Printf("fault injection enabled: %s", *faults)
	}
	if *dir == "" {
		cache, err := os.UserCacheDir()
		if err != nil {
			logger.Fatalf("no data directory: %v (pass -dir)", err)
		}
		*dir = filepath.Join(cache, "pracsimd")
	}

	opts := service.Options{
		Dir:      *dir,
		Tokens:   *tokens,
		Quota:    *quota,
		LeaseTTL: *leaseTTL,
		Attempts: *attempts,
		Workers:  *workers,
		Log:      logger,
		Verbose:  *verbose,
	}
	svc, resume, err := service.New(opts)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Print(resume)

	// No WriteTimeout: /v1/jobs/{id}/events is a long-lived SSE stream.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	auth := "open"
	if *tokens != "" {
		auth = "bearer-token"
	}
	logger.Printf("serving experiment jobs from %s on %s (%s, lease TTL %s)", *dir, *addr, auth, *leaseTTL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	svc.Start(ctx)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	select {
	case err := <-done:
		logger.Fatal(err)
	case <-ctx.Done():
	}
	// Drain and checkpoint: stop accepting, finish in-flight requests,
	// then close the queue (journal sync included). A second signal
	// kills the drain wait.
	logger.Print("draining (signal received; again to force)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		logger.Printf("closing queue: %v", err)
		os.Exit(1)
	}
	logger.Print("stopped (queue checkpointed)")
}
