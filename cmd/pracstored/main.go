// Command pracstored serves a content-addressed run store over HTTP, so
// a dispatch fleet (tpracsim -dispatch N -store http://host:8420), a CI
// matrix or several experiment campaigns share one warm store instead of
// each machine re-executing the same grid.
//
// The served directory is an ordinary disk store: pracstored can adopt a
// store warmed by local runs, and the directory stays readable by
// -store DIR if the server goes away. Entries travel as the store's
// self-validating frames and are checksum-verified on both ends; uploads
// publish via the same temp-file + atomic-rename path local stores use,
// so a client cut off mid-upload never tears an entry.
//
// Clients are strictly cache users: if pracstored is unreachable or
// returns garbage, they recompute locally — stopping the server can
// never break a figure.
//
// Usage:
//
//	pracstored [-addr :8420] [-dir DIR] [-budget 512MB] [-token SECRET] [-v]
//
// -dir defaults to the same user-cache store `-store auto` uses. -token
// (default $PRACSTORE_TOKEN) requires `Authorization: Bearer <token>` on
// every /v1/* route; /healthz and /metrics (Prometheus text format) stay
// open for probes and scrapers.
//
// -budget bounds the store's disk footprint: when a write pushes past
// it, a background sweep evicts least-recently-accessed entries until
// the store is back under budget. An evicted entry is a miss — the
// client recomputes and usually re-publishes it — so a budget can cost
// time, never correctness. -tmp-sweep-age tunes how stale an orphaned
// put-*.tmp file must be before the startup sweep removes it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pracsim/internal/exp/store"
	"pracsim/internal/exp/store/server"
	"pracsim/internal/fault"
)

func main() {
	addr := flag.String("addr", ":8420", "listen address")
	dir := flag.String("dir", "", "store directory (default: the -store auto user-cache dir)")
	budget := flag.String("budget", "", "disk budget for the store, e.g. 512MB or 2GB (default: unbounded); least-recently-accessed entries are evicted when a write pushes past it")
	tmpSweepAge := flag.Duration("tmp-sweep-age", store.DefaultTmpSweepAge,
		"age past which an orphaned put-*.tmp file is swept at startup")
	token := flag.String("token", os.Getenv(store.TokenEnv),
		"bearer token required on /v1/* routes (default $"+store.TokenEnv+"; empty = no auth)")
	faults := flag.String("faults", os.Getenv(fault.EnvVar),
		"deterministic fault schedule, e.g. 'seed=7;server.get:trunc@0.2' (chaos testing; also $"+fault.EnvVar+")")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	logger := log.New(os.Stderr, "pracstored: ", log.LstdFlags)
	if *faults != "" {
		p, err := fault.Parse(*faults)
		if err != nil {
			logger.Fatal(err)
		}
		p.Salt = os.Getenv(fault.SaltEnvVar)
		p.LogTo = os.Stderr
		fault.Enable(p)
		logger.Printf("fault injection enabled: %s", *faults)
	}
	if *dir == "" {
		d, err := store.DefaultDir()
		if err != nil {
			logger.Fatalf("no store directory: %v (pass -dir)", err)
		}
		*dir = d
	}
	budgetBytes, err := store.ParseByteSize(*budget)
	if err != nil {
		logger.Fatal(err)
	}
	disk, err := store.OpenDiskWith(*dir, store.DiskOptions{
		BudgetBytes: budgetBytes,
		TmpSweepAge: *tmpSweepAge,
	})
	if err != nil {
		logger.Fatal(err)
	}

	opts := server.Options{Token: *token}
	if *verbose {
		opts.Log = logger
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(disk, opts),
		ReadTimeout:  2 * time.Minute,
		WriteTimeout: 2 * time.Minute,
	}

	auth := "open"
	if *token != "" {
		auth = "bearer-token"
	}
	if budgetBytes > 0 {
		logger.Printf("serving %s on %s (%s, budget %.1f MB)", disk.Dir(), *addr, auth, float64(budgetBytes)/(1<<20))
	} else {
		logger.Printf("serving %s on %s (%s)", disk.Dir(), *addr, auth)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests: an
	// interrupted PUT is retried or absorbed by the client's recompute,
	// but a clean shutdown should not cut connections mid-frame.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	select {
	case err := <-done:
		logger.Fatal(err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "pracstored: shutdown:", err)
		os.Exit(1)
	}
	logger.Print("stopped")
}
