// Command secanalysis runs the TPRAC security analysis: the Figure 7 TMAX
// sweep, the solved TB-Window per RowHammer threshold (solved in parallel
// across thresholds), and (optionally) an empirical Feinting attack
// validating a solved window against the live simulator. The Figure 7
// result is memoized in the persistent run store (-store, on by
// default); the empirical validation always runs live.
//
// Usage:
//
//	secanalysis [-empirical] [-nbo N] [-store DIR|URL|auto|off]
//	            [-journal DIR|off] [-csvdir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pracsim/internal/analysis"
	"pracsim/internal/dram"
	"pracsim/internal/exp"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/store"
	"pracsim/internal/sim"
	"pracsim/internal/ticks"
)

func main() {
	empirical := flag.Bool("empirical", false, "also run a live Feinting attack against the solved window")
	nbo := flag.Int("nbo", 256, "Back-Off threshold for the empirical validation")
	storeMode := flag.String("store", "auto", "persistent result store: a directory, a pracstored URL (http://host:port), 'auto' (user cache dir) or 'off'")
	storeTimeout := flag.Duration("store-timeout", 10*time.Second, "per-attempt deadline for remote store requests")
	journalMode := flag.String("journal", "off", "crash-recovery journal directory ('off' = none)")
	csvDir := flag.String("csvdir", "", "directory to write fig7.csv into (optional)")
	flag.Parse()

	st, warn, err := store.ResolveBackendWith(*storeMode, store.HTTPOptions{Timeout: *storeTimeout})
	if warn != "" {
		fmt.Fprintln(os.Stderr, "secanalysis: "+warn)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "secanalysis:", err)
		os.Exit(1)
	}
	var jl *journal.Journal
	if *journalMode != "" && *journalMode != "off" {
		j, rec, jerr := journal.Open(filepath.Join(*journalMode, "session.journal"), journal.Options{
			Schema:      sim.SchemaVersion,
			Fingerprint: journal.Fingerprint(fmt.Sprintf("schema=%d", sim.SchemaVersion), "cmd=secanalysis"),
		})
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "secanalysis: opening journal: %v; running without a journal\n", jerr)
		} else {
			jl = j
			if !rec.Fresh {
				fmt.Printf("journal: resuming — %d record(s) replayed\n", rec.Records)
			}
			defer jl.Close()
		}
	}
	res, err := exp.MemoWith(st, jl, "secanalysis/fig7", func() (exp.Fig7Result, error) {
		return exp.RunFig7()
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secanalysis:", err)
		os.Exit(1)
	}
	if st != nil {
		fmt.Println(st.Stats().Report(st.Spec()))
	}
	if jl != nil {
		fmt.Println(jl.Stats().Report(jl.Path()))
	}
	fmt.Println(res.Render())
	if *csvDir != "" {
		path := filepath.Join(*csvDir, "fig7.csv")
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "secanalysis:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}

	if !*empirical {
		return
	}
	dcfg := dram.DefaultConfig(*nbo)
	// A scaled refresh window keeps the validation to seconds while
	// preserving the attack's structure.
	dcfg.Timing.TREFW = ticks.FromMS(2)
	p := analysis.ParamsFromDRAM(dcfg)
	window, err := p.SolveWindow(*nbo, dcfg.PRAC.ResetOnREFW, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secanalysis:", err)
		os.Exit(1)
	}
	fmt.Printf("empirical Feinting attack against TB-Window=%v (NBO=%d, scaled tREFW=%v)...\n",
		window, *nbo, dcfg.Timing.TREFW)
	att, err := analysis.RunEmpiricalFeinting(analysis.EmpiricalConfig{DRAM: dcfg, Window: window})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secanalysis:", err)
		os.Exit(1)
	}
	fmt.Printf("pool=%d rounds=%d target-max-acts=%d alerts=%d tb-rfms=%d\n",
		att.PoolSize, att.Rounds, att.TargetMaxActs, att.Alerts, att.TBRFMs)
	if att.Alerts == 0 && int(att.TargetMaxActs) < *nbo {
		fmt.Println("PASS: no Alert Back-Off was reachable under the Feinting attack")
	} else {
		fmt.Println("FAIL: the attack reached the Back-Off threshold")
		os.Exit(1)
	}
}
