// Command tpracsim runs the TPRAC performance and energy experiments
// (Figures 10-14, Table 5) and prints their reports, optionally writing
// CSV files.
//
// All experiments share one session: independent (variant, workload)
// simulations fan out across -workers goroutines, the session's
// single-flight run cache means -exp all never executes the same
// configuration twice (e.g. Table 5 reuses Figure 13's TPRAC runs), and
// the persistent run store (-store, on by default) memoizes results
// across invocations — a warm second run executes zero new simulations
// and reproduces byte-identical figures.
//
// Grids also shard across machines: -shard i/n executes only the i-th
// deterministic slice of the run keys and writes the results to a shard
// file (-shardout); -merge imports the shard files and assembles the
// figures without simulating, bit-identical to an unsharded run.
//
// Usage:
//
//	tpracsim -exp fig10|fig11|fig12|fig13|fig14|table5|rfmpb|all
//	         [-scale quick|full] [-workers N] [-serial]
//	         [-store DIR|auto|off] [-shard i/n [-shardout FILE]]
//	         [-merge FILE,FILE,...] [-csvdir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pracsim/internal/exp"
	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
)

type report interface {
	Render() string
	CSV() string
}

func main() {
	which := flag.String("exp", "fig10", "experiment: fig10, fig11, fig12, fig13, fig14, table5, rfmpb or all")
	scaleName := flag.String("scale", "quick", "quick (8 workloads, short budgets) or full (all 50 workloads)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
	serial := flag.Bool("serial", false, "force single-threaded execution (same results, for debugging)")
	perCycle := flag.Bool("percycle", false, "tick every component every cycle instead of eliding idle cycles (same results, slower)")
	differential := flag.Bool("differential", false, "run every simulation under both clockings and fail on any divergence")
	storeMode := flag.String("store", "auto", "persistent run store: a directory, 'auto' (user cache dir) or 'off'")
	shardArg := flag.String("shard", "", "execute only shard i/n of the run keys and write a shard file instead of reports")
	shardOut := flag.String("shardout", "", "shard result file to write (default shard-i-of-n.runs)")
	mergeArg := flag.String("merge", "", "comma-separated shard files to import before running")
	csvDir := flag.String("csvdir", "", "directory to write CSV files into (optional)")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.QuickScale()
	case "full":
		scale = exp.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "tpracsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Workers = *workers
	scale.Serial = *serial
	scale.PerCycle = *perCycle
	scale.Differential = *differential

	st, err := store.OpenMode(*storeMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpracsim: %v\n", err)
		os.Exit(1)
	}
	var sp shard.Spec
	if *shardArg != "" {
		if sp, err = shard.Parse(*shardArg); err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: %v\n", err)
			os.Exit(2)
		}
		if *shardOut == "" {
			*shardOut = fmt.Sprintf("shard-%d-of-%d.runs", sp.Index, sp.Count)
		}
	}

	session := exp.NewRunnerWith(scale, exp.SessionOptions{Store: st, Shard: sp})
	if *mergeArg != "" {
		files := strings.Split(*mergeArg, ",")
		n, err := session.ImportShards(files...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: merging shards: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged %d runs from %d shard file(s)\n", n, len(files))
	}

	runs := map[string]func() (report, error){
		"fig10":  func() (report, error) { return session.Fig10() },
		"fig11":  func() (report, error) { return session.Fig11() },
		"fig12":  func() (report, error) { return session.Fig12() },
		"fig13":  func() (report, error) { return session.Fig13() },
		"fig14":  func() (report, error) { return session.Fig14() },
		"table5": func() (report, error) { return session.Table5() },
		"rfmpb":  func() (report, error) { return session.RFMpb() },
	}
	order := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "table5", "rfmpb"}

	selected := order
	if *which != "all" {
		if _, ok := runs[*which]; !ok {
			fmt.Fprintf(os.Stderr, "tpracsim: unknown experiment %q\n", *which)
			os.Exit(2)
		}
		selected = []string{*which}
	}

	for _, name := range selected {
		fmt.Printf("running %s at %s scale...\n", name, *scaleName)
		before := session.Executed()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%d new simulations; session cache holds %d)\n",
			session.Executed()-before, session.CachedRuns())
		if sp.Count > 0 {
			// A sharded session computes only its slice of the grid;
			// its figures are partial by design and are rendered by the
			// merge invocation instead.
			continue
		}
		fmt.Println(res.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tpracsim: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if sp.Count > 0 {
		n, err := session.ExportShard(*shardOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("shard %s: %d runs (%d executed, rest store-warm), wrote %s\n",
			sp, n, session.Executed(), *shardOut)
	}
	// Execution telemetry: store traffic, aggregate simulation rate,
	// elision wins and the straggler simulations that dominated the
	// sweep's wall-clock.
	fmt.Println(session.TelemetryReport(5))
}
