// Command tpracsim runs the TPRAC performance and energy experiments
// (Figures 10-14, Table 5) and prints their reports, optionally writing
// CSV files.
//
// Usage:
//
//	tpracsim -exp fig10|fig11|fig12|fig13|fig14|table5|all [-scale quick|full] [-csvdir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pracsim/internal/exp"
)

type report interface {
	Render() string
	CSV() string
}

func main() {
	which := flag.String("exp", "fig10", "experiment: fig10, fig11, fig12, fig13, fig14, table5, rfmpb or all")
	scaleName := flag.String("scale", "quick", "quick (8 workloads, short budgets) or full (all 50 workloads)")
	csvDir := flag.String("csvdir", "", "directory to write CSV files into (optional)")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.QuickScale()
	case "full":
		scale = exp.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "tpracsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	runs := map[string]func() (report, error){
		"fig10":  func() (report, error) { return exp.RunFig10(scale) },
		"fig11":  func() (report, error) { return exp.RunFig11(scale) },
		"fig12":  func() (report, error) { return exp.RunFig12(scale) },
		"fig13":  func() (report, error) { return exp.RunFig13(scale) },
		"fig14":  func() (report, error) { return exp.RunFig14(scale) },
		"table5": func() (report, error) { return exp.RunTable5(scale) },
		"rfmpb":  func() (report, error) { return exp.RunRFMpb(scale) },
	}
	order := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "table5", "rfmpb"}

	selected := order
	if *which != "all" {
		if _, ok := runs[*which]; !ok {
			fmt.Fprintf(os.Stderr, "tpracsim: unknown experiment %q\n", *which)
			os.Exit(2)
		}
		selected = []string{*which}
	}

	for _, name := range selected {
		fmt.Printf("running %s at %s scale...\n", name, *scaleName)
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tpracsim: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
