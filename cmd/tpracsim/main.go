// Command tpracsim runs the TPRAC performance and energy experiments
// (Figures 10-14, Table 5) and prints their reports, optionally writing
// CSV files.
//
// All experiments share one session: independent (variant, workload)
// simulations fan out across -workers goroutines, and the session's
// single-flight run cache means -exp all never executes the same
// configuration twice (e.g. Table 5 reuses Figure 13's TPRAC runs).
//
// Usage:
//
//	tpracsim -exp fig10|fig11|fig12|fig13|fig14|table5|rfmpb|all
//	         [-scale quick|full] [-workers N] [-serial] [-csvdir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pracsim/internal/exp"
)

type report interface {
	Render() string
	CSV() string
}

func main() {
	which := flag.String("exp", "fig10", "experiment: fig10, fig11, fig12, fig13, fig14, table5, rfmpb or all")
	scaleName := flag.String("scale", "quick", "quick (8 workloads, short budgets) or full (all 50 workloads)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
	serial := flag.Bool("serial", false, "force single-threaded execution (same results, for debugging)")
	perCycle := flag.Bool("percycle", false, "tick every component every cycle instead of eliding idle cycles (same results, slower)")
	differential := flag.Bool("differential", false, "run every simulation under both clockings and fail on any divergence")
	csvDir := flag.String("csvdir", "", "directory to write CSV files into (optional)")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.QuickScale()
	case "full":
		scale = exp.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "tpracsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Workers = *workers
	scale.Serial = *serial
	scale.PerCycle = *perCycle
	scale.Differential = *differential

	session := exp.NewRunner(scale)
	runs := map[string]func() (report, error){
		"fig10":  func() (report, error) { return session.Fig10() },
		"fig11":  func() (report, error) { return session.Fig11() },
		"fig12":  func() (report, error) { return session.Fig12() },
		"fig13":  func() (report, error) { return session.Fig13() },
		"fig14":  func() (report, error) { return session.Fig14() },
		"table5": func() (report, error) { return session.Table5() },
		"rfmpb":  func() (report, error) { return session.RFMpb() },
	}
	order := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "table5", "rfmpb"}

	selected := order
	if *which != "all" {
		if _, ok := runs[*which]; !ok {
			fmt.Fprintf(os.Stderr, "tpracsim: unknown experiment %q\n", *which)
			os.Exit(2)
		}
		selected = []string{*which}
	}

	for _, name := range selected {
		fmt.Printf("running %s at %s scale...\n", name, *scaleName)
		before := session.CachedRuns()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%d new simulations; session cache holds %d)\n",
			session.CachedRuns()-before, session.CachedRuns())
		fmt.Println(res.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tpracsim: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	// Execution telemetry: aggregate simulation rate, elision wins and the
	// straggler simulations that dominated the sweep's wall-clock.
	fmt.Println(session.TelemetryReport(5))
}
