// Command tpracsim runs the TPRAC performance and energy experiments
// (Figures 10-14, Table 5) and prints their reports, optionally writing
// CSV files.
//
// All experiments share one session: independent (variant, workload)
// simulations fan out across -workers goroutines, the session's
// single-flight run cache means -exp all never executes the same
// configuration twice (e.g. Table 5 reuses Figure 13's TPRAC runs), and
// the persistent run store (-store, on by default) memoizes results
// across invocations — a warm second run executes zero new simulations
// and reproduces byte-identical figures.
//
// Grids also shard across machines: -shard i/n executes only the i-th
// deterministic slice of the run keys and writes the results to a shard
// file (-shardout); -merge imports the shard files and assembles the
// figures without simulating, bit-identical to an unsharded run. The
// -dispatch driver automates the whole workflow: it spawns n shard
// workers (re-execing this binary, or any fleet via -dispatch-cmd),
// retries failures and stragglers on other worker slots, auto-merges
// the shard files and renders the figures in one command.
//
// The -store flag also takes a pracstored URL (`-store
// http://host:8420`, see cmd/pracstored): the session then reads through
// a local disk cache into the shared server, and a dispatch fleet
// pointed at one warm server executes nothing anywhere. An unreachable
// or corrupt server degrades to local recompute — never a crash or a
// wrong figure.
//
// Usage:
//
//	tpracsim -exp fig10|fig11|fig12|fig13|fig14|table5|rfmpb|all
//	         [-scale quick|full] [-workers N] [-serial]
//	         [-store DIR|URL|auto|off] [-store-budget SIZE]
//	         [-journal DIR|auto|off]
//	         [-shard i/n [-shardout FILE]]
//	         [-merge FILE,FILE,...] [-csvdir DIR]
//	         [-dispatch N [-dispatch-cmd TEMPLATE] [-dispatch-attempts K]
//	          [-dispatch-min A -dispatch-max B]]
//	tpracsim -store-info|-store-prune [-store DIR|URL|auto]
//	tpracsim -pull http://host:8460 [-pull-token SECRET] [-pull-idle-exit 30s]
//
// -pull turns this process into a pull worker for a pracsimd experiment
// service (see cmd/pracsimd): it leases shard work items from the
// daemon, executes them against its -store, and uploads each shard
// result file, repeating until signaled (or until -pull-idle-exit of
// queue silence). The daemon's lease carries the grid's experiments and
// scale, so a pull worker needs no -exp/-scale of its own.
//
// -store-budget bounds the local store tier's disk footprint (e.g.
// 512MB): least-recently-accessed entries are evicted in the background
// when a write pushes past it, and an evicted entry is an ordinary miss
// — recomputed and usually re-published, never an error. Under
// -dispatch the budget is forwarded to every fleet worker.
//
// -dispatch-max turns the fixed worker pool elastic: the driver starts
// -dispatch-min slots (default 1) and autoscales between the two bounds
// on queue depth and straggler demand. With worker journals, a
// straggler's shard is stolen — the slow attempt is killed and the
// shard requeued on a fresh slot, resuming from its journal — instead
// of speculatively duplicated.
//
// -journal makes a session crash-safe: every completed run (and, under
// -dispatch, every converged shard) is appended to a checksummed journal
// as it finishes, and an interrupted invocation re-run with the same
// arguments resumes from the journal — executing zero already-completed
// simulations, with or without a store — instead of starting over.
// SIGINT/SIGTERM drain and checkpoint (a second signal exits
// immediately).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/dispatch"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/service"
	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
	"pracsim/internal/fault"
	"pracsim/internal/retry"
	"pracsim/internal/sim"
	"pracsim/internal/stats"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpracsim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	start := time.Now()
	which := flag.String("exp", "fig10", "experiment: fig10, fig11, fig12, fig13, fig14, table5, rfmpb or all")
	scaleName := flag.String("scale", "quick", "quick (8 workloads, short budgets) or full (all 50 workloads)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
	serial := flag.Bool("serial", false, "force single-threaded execution (same results, for debugging)")
	perCycle := flag.Bool("percycle", false, "tick every component every cycle instead of eliding idle cycles (same results, slower)")
	differential := flag.Bool("differential", false, "run every simulation under both clockings and fail on any divergence")
	storeMode := flag.String("store", "auto", "persistent run store: a directory, a pracstored URL (http://host:port), 'auto' (user cache dir) or 'off'")
	storeBudget := flag.String("store-budget", "", "disk budget for the local store tier, e.g. 512MB (default: unbounded); least-recently-accessed entries are evicted when a write pushes past it")
	storeTimeout := flag.Duration("store-timeout", 10*time.Second, "per-attempt deadline for remote store requests")
	storeRetries := flag.Int("store-retries", 3, "per-operation attempt budget for remote store requests (including the first)")
	faults := flag.String("faults", os.Getenv(fault.EnvVar), "deterministic fault schedule, e.g. 'seed=7;store.http.get:err@0.2;dispatch.worker:kill@0.1' (chaos testing; also $"+fault.EnvVar+")")
	storeInfo := flag.Bool("store-info", false, "print the store's entry count, bytes, age range and per-schema footprint, then exit")
	storePrune := flag.Bool("store-prune", false, "delete entries from orphaned (non-current) schema versions, then exit")
	shardArg := flag.String("shard", "", "execute only shard i/n of the run keys and write a shard file instead of reports")
	shardOut := flag.String("shardout", "", "shard result file to write (default shard-i-of-n.runs)")
	mergeArg := flag.String("merge", "", "comma-separated shard files to import before running")
	dispatchN := flag.Int("dispatch", 0, "dispatch the grid to N shard workers and auto-merge their results (0 = off)")
	dispatchCmd := flag.String("dispatch-cmd", "", "worker command template run via sh -c, with {args}/{shard}/{index}/{count}/{slot}/{out} placeholders (default: re-exec this binary)")
	dispatchAttempts := flag.Int("dispatch-attempts", 3, "per-shard attempt budget for -dispatch")
	dispatchMin := flag.Int("dispatch-min", 1, "elastic fleet floor: fewest concurrent worker slots (with -dispatch-max)")
	dispatchMax := flag.Int("dispatch-max", 0, "elastic fleet ceiling: the pool autoscales between -dispatch-min and this on queue depth and stragglers (0 = fixed pool of -dispatch size)")
	journalMode := flag.String("journal", "off", "crash-recovery session journal: a directory, 'auto' (user cache dir, keyed by the session's arguments) or 'off'; an interrupted invocation re-run with the same arguments resumes instead of re-simulating")
	csvDir := flag.String("csvdir", "", "directory to write CSV files into (optional)")
	pullURL := flag.String("pull", "", "run as a pull worker for the pracsimd experiment service at this URL (leases and executes shard work items until signaled)")
	pullToken := flag.String("pull-token", os.Getenv("PRACSIMD_TOKEN"), "bearer token for -pull (default $PRACSIMD_TOKEN)")
	pullIdleExit := flag.Duration("pull-idle-exit", 0, "with -pull: exit cleanly after this long without leased work (0 = run until signaled)")
	flag.Parse()

	if *faults != "" {
		p, err := fault.Parse(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: %v\n", err)
			os.Exit(2)
		}
		p.Salt = os.Getenv(fault.SaltEnvVar)
		p.LogTo = os.Stderr
		fault.Enable(p)
		// Re-exec'd fleet workers inherit the schedule through the
		// environment (the dispatcher decorrelates them per-attempt via
		// the salt variable).
		os.Setenv(fault.EnvVar, *faults)
	}

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.QuickScale()
	case "full":
		scale = exp.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "tpracsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Workers = *workers
	scale.Serial = *serial
	scale.PerCycle = *perCycle
	scale.Differential = *differential

	storeBudgetBytes, err := store.ParseByteSize(*storeBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpracsim: -store-budget: %v\n", err)
		os.Exit(2)
	}
	st, warn, err := store.Resolve(*storeMode, store.Options{
		Disk: store.DiskOptions{BudgetBytes: storeBudgetBytes},
		HTTP: store.HTTPOptions{
			Timeout:  *storeTimeout,
			Attempts: *storeRetries,
		},
	})
	if warn != "" {
		fmt.Fprintln(os.Stderr, "tpracsim: "+warn)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if *storeInfo || *storePrune {
		if st == nil {
			fmt.Fprintln(os.Stderr, "tpracsim: -store-info/-store-prune need a store; pass -store DIR or -store http://host:port")
			os.Exit(2)
		}
		runStoreMaintenance(st, *storePrune, *storeInfo)
		return
	}
	if *pullURL != "" {
		if *dispatchN > 0 || *shardArg != "" || *mergeArg != "" {
			fmt.Fprintln(os.Stderr, "tpracsim: -pull is exclusive with -dispatch/-shard/-merge (the daemon assigns the work)")
			os.Exit(2)
		}
		runPull(*pullURL, *pullToken, st, *workers, *pullIdleExit)
		return
	}
	if *dispatchMax > 0 && *dispatchMin > *dispatchMax {
		fmt.Fprintf(os.Stderr, "tpracsim: -dispatch-min %d exceeds -dispatch-max %d\n", *dispatchMin, *dispatchMax)
		os.Exit(2)
	}
	if *dispatchN > 0 && (*perCycle || *differential) {
		// The validation clockings exist to actually execute every
		// simulation here; a session in those modes ignores imported
		// shard results by design, so a dispatched fleet's work would
		// be silently discarded and the grid re-run locally.
		fmt.Fprintln(os.Stderr, "tpracsim: -dispatch cannot be combined with -percycle/-differential (validation modes must execute locally)")
		os.Exit(2)
	}
	var sp shard.Spec
	if *shardArg != "" {
		if *dispatchN > 0 {
			fmt.Fprintln(os.Stderr, "tpracsim: -shard and -dispatch are mutually exclusive (the dispatcher assigns shards itself)")
			os.Exit(2)
		}
		if sp, err = shard.Parse(*shardArg); err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: %v\n", err)
			os.Exit(2)
		}
		if *shardOut == "" {
			*shardOut = fmt.Sprintf("shard-%d-of-%d.runs", sp.Index, sp.Count)
		}
	}

	if (*perCycle || *differential) && *journalMode != "off" {
		// The validation clockings must execute every simulation; replayed
		// journal results would silently validate nothing (same reason the
		// store is bypassed in these modes).
		fmt.Fprintln(os.Stderr, "tpracsim: -journal is ignored with -percycle/-differential (validation modes must execute)")
		*journalMode = "off"
	}
	// The fingerprint is what makes resume safe: only an invocation
	// asking for the same work (schema, experiments, scale budgets,
	// workload set, shard slice) adopts this journal. Scheduling knobs
	// (-workers, -serial) and the store never change results, so they are
	// deliberately absent.
	jl, _ := resolveJournal(*journalMode, journal.Fingerprint(
		fmt.Sprintf("schema=%d", sim.SchemaVersion),
		"exp="+*which,
		"scale="+*scaleName,
		fmt.Sprintf("warmup=%d", scale.Warmup),
		fmt.Sprintf("measured=%d", scale.Measured),
		"workloads="+strings.Join(scale.Workloads, ","),
		"shard="+sp.String(),
	))

	// First signal: drain and checkpoint — a running dispatch fleet is
	// cancelled (group-killing its workers) and the journal synced, so a
	// re-invocation resumes. Second signal: exit immediately.
	dispatchCtx, cancelDispatch := context.WithCancel(context.Background())
	defer cancelDispatch()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	dispatching := *dispatchN > 0
	go func() {
		<-sigs
		if dispatching {
			fmt.Fprintln(os.Stderr, "tpracsim: signal received — draining fleet and checkpointing (repeat to exit immediately)")
			cancelDispatch()
			<-sigs
			os.Exit(130)
		}
		if jl != nil {
			jl.Sync()
			fmt.Fprintf(os.Stderr, "tpracsim: signal received — journal checkpointed at %s; re-run with the same arguments to resume\n", jl.Path())
		} else {
			fmt.Fprintln(os.Stderr, "tpracsim: signal received")
		}
		os.Exit(130)
	}()

	session := exp.NewRunnerWith(scale, exp.SessionOptions{Store: st, Shard: sp, Journal: jl})
	if *mergeArg != "" {
		// Tolerate list debris (trailing or doubled commas, stray
		// spaces) — but an all-debris list is a mistake worth naming,
		// not an empty no-op merge.
		var files []string
		for _, f := range strings.Split(*mergeArg, ",") {
			if f = strings.TrimSpace(f); f != "" {
				files = append(files, f)
			}
		}
		if len(files) == 0 {
			fatalf("-merge %q names no shard files", *mergeArg)
		}
		var n int
		if _, err := importWithRetry(session, files, &n); err != nil {
			fatalf("merging shards: %v", err)
		}
		fmt.Printf("merged %d runs from %d shard file(s)\n", n, len(files))
	}

	// Validate the selection before any work — in particular before a
	// dispatch fleet spawns and burns its retry budget on workers that
	// would all exit with this same error. The selection grammar lives in
	// the exp package (ExpandExperiments), shared with pracsimd's grid
	// specs.
	selected, err := exp.ExpandExperiments([]string{*which})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpracsim: %v\n", err)
		os.Exit(2)
	}

	if *dispatchN > 0 {
		if err := runDispatch(dispatchCtx, session, st, jl, *dispatchN, *dispatchCmd, *dispatchAttempts,
			*dispatchMin, *dispatchMax, *storeBudget,
			*which, *scaleName, *workers, *serial); err != nil {
			if errors.Is(err, dispatch.ErrInterrupted) {
				if jl != nil {
					jl.Close()
					fmt.Fprintf(os.Stderr, "tpracsim: %v — re-run with the same arguments to resume\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "tpracsim: %v (no -journal: converged shards will re-run)\n", err)
				}
				os.Exit(130)
			}
			fatalf("%v", err)
		}
	}

	for _, name := range selected {
		fmt.Printf("running %s at %s scale...\n", name, *scaleName)
		before := session.Executed()
		res, err := session.Run(name)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%d new simulations; session cache holds %d)\n",
			session.Executed()-before, session.CachedRuns())
		if jl != nil {
			_ = jl.AppendDone(name)
		}
		if sp.Count > 0 {
			// A sharded session computes only its slice of the grid;
			// its figures are partial by design and are rendered by the
			// merge invocation instead.
			continue
		}
		fmt.Println(res.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fatalf("writing %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if sp.Count > 0 {
		n, err := session.ExportShard(*shardOut)
		if err != nil {
			fatalf("%v", err)
		}
		sum := session.Summary()
		fmt.Printf("shard %s: %d runs (%d executed, rest store-warm), wrote %s\n",
			sp, n, sum.Executed, *shardOut)
		// The machine-readable trailer the dispatch driver folds into
		// its per-shard report.
		fmt.Println(dispatch.Summary{
			Shard:    sp.String(),
			Runs:     n,
			Executed: sum.Executed,
			WallMS:   time.Since(start).Milliseconds(),
			Store:    sum.Store,
			Faults:   fault.Fired(),
			Journal:  sum.Journal,
		}.Line())
	}
	// Execution telemetry: store traffic, aggregate simulation rate,
	// elision wins and the straggler simulations that dominated the
	// sweep's wall-clock.
	fmt.Println(session.TelemetryReport(5))
	if jl != nil {
		if err := jl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: closing journal: %v\n", err)
		}
	}
}

// runPull serves -pull: the pull-worker loop against a pracsimd daemon.
// SIGINT/SIGTERM drain — the current item finishes (or its ack is
// retried) before the loop exits with a summary.
func runPull(url, token string, st *store.Store, workers int, idleExit time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	host, _ := os.Hostname()
	sum, err := service.RunWorker(ctx, service.WorkerOptions{
		URL:      url,
		Token:    token,
		Name:     fmt.Sprintf("%s-%d", host, os.Getpid()),
		Store:    st,
		Workers:  workers,
		IdleExit: idleExit,
		Log:      log.New(os.Stderr, "tpracsim: ", 0),
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(sum)
	if n := fault.Fired(); n > 0 {
		fmt.Printf("faults injected: %d\n", n)
	}
}

// resolveJournal opens the session journal for -journal: "off" (nil),
// "auto" (a per-fingerprint directory under the user cache dir) or an
// explicit directory. Failures degrade to running without a journal —
// durability is never worth failing a run that can simply execute.
func resolveJournal(mode, fingerprint string) (*journal.Journal, *journal.Recovery) {
	if mode == "" || mode == "off" {
		return nil, nil
	}
	dir := mode
	if mode == "auto" {
		base, err := os.UserCacheDir()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpracsim: -journal auto: %v; running without a journal\n", err)
			return nil, nil
		}
		dir = filepath.Join(base, "tpracsim", "journal", fingerprint)
	}
	jl, rec, err := journal.Open(filepath.Join(dir, "session.journal"), journal.Options{
		Schema:      sim.SchemaVersion,
		Fingerprint: fingerprint,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpracsim: opening journal: %v; running without a journal\n", err)
		return nil, nil
	}
	if rec.Rotated != "" {
		fmt.Fprintf(os.Stderr, "tpracsim: journal: prior journal rotated aside: %s\n", rec.Rotated)
	}
	if !rec.Fresh {
		msg := fmt.Sprintf("journal: resuming — %d record(s) replayed (%d run(s), %d shard(s))",
			rec.Records, rec.Runs, len(rec.Shards))
		if rec.TruncatedBytes > 0 {
			msg += fmt.Sprintf(", %d torn-tail byte(s) truncated", rec.TruncatedBytes)
		}
		fmt.Println(msg)
	}
	return jl, rec
}

// runDispatch fans the selected experiments out to shard workers,
// reports the per-shard fleet summary and merges the shard files into
// the session, which then assembles figures from fully-warm caches.
// Errors return (rather than exiting) so the deferred work-directory
// cleanup runs on failure paths too.
func runDispatch(ctx context.Context, session *exp.Runner, st *store.Store, jl *journal.Journal,
	n int, template string, attempts, minSlots, maxSlots int, storeBudget string,
	which, scaleName string, workers int, serial bool) error {
	// Workers re-run this binary's own configuration, minus the
	// rendering flags: each executes its shard of the same grid against
	// the same store and emits a shard file. A local pool (no template)
	// shares this machine's cores, so by default each worker gets an
	// equal slice instead of all inheriting -workers 0 (all cores) and
	// oversubscribing the CPU n-fold; an explicit -workers or a fleet
	// template (remote hosts own their cores) passes through untouched.
	// An elastic pool divides by its ceiling — that is the most workers
	// that ever run at once.
	if template == "" && workers == 0 && !serial {
		pool := n
		if maxSlots > 0 && maxSlots < pool {
			pool = maxSlots
		}
		workers = runtime.NumCPU() / pool
		if workers < 1 {
			workers = 1
		}
	}
	args := []string{"-exp", which, "-scale", scaleName, "-workers", strconv.Itoa(workers)}
	if serial {
		args = append(args, "-serial")
	}
	// Fleet workers run the same lifecycle policy as the driver: their
	// local disk tiers (or the shared directory store) stay under the
	// same budget.
	if storeBudget != "" {
		args = append(args, "-store-budget", storeBudget)
	}
	// Workers re-resolve the spec themselves: a directory reopens the
	// same disk store, a pracstored URL gives every fleet worker its own
	// local tier over the one shared server.
	if st != nil {
		args = append(args, "-store", st.Spec())
	} else {
		args = append(args, "-store", "off")
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolving own binary for dispatch: %w", err)
	}
	// With a journal, the work directory is stable (next to the journal
	// file) and survives this process: a restarted driver must find the
	// converged shard files the journal points at. Without one, a
	// throwaway temp directory as before.
	var workDir, workerJournalDir string
	if jl != nil {
		base := filepath.Dir(jl.Path())
		workDir = filepath.Join(base, "dispatch")
		if err := os.MkdirAll(workDir, 0o755); err != nil {
			return err
		}
		workerJournalDir = filepath.Join(base, "workers")
	} else {
		if workDir, err = os.MkdirTemp("", "tpracsim-dispatch-"); err != nil {
			return err
		}
		defer os.RemoveAll(workDir)
	}

	res, err := dispatch.Run(dispatch.Options{
		Shards:           n,
		Workers:          n,
		MinWorkers:       minSlots,
		MaxWorkers:       maxSlots,
		Argv:             append([]string{exe}, args...),
		Template:         template,
		Attempts:         attempts,
		Dir:              workDir,
		Schema:           sim.SchemaVersion,
		Log:              os.Stdout,
		StragglerFactor:  3,
		StragglerMin:     30 * time.Second,
		Journal:          jl,
		Context:          ctx,
		WorkerJournalDir: workerJournalDir,
	})
	if err != nil {
		return err
	}

	t := &stats.Table{Header: []string{"shard", "slot", "attempts", "stolen", "backoff-ms", "runs", "executed", "wall-s", "store-hits", "store-misses", "remote-hits", "remote-retries", "faults", "j-resume", "j-append"}}
	var totalBackoff time.Duration
	for _, r := range res.Reports {
		executed, hits, misses, rhits, rretries, faults := "?", "?", "?", "?", "?", "?"
		jresume, jappend := "?", "?"
		if r.HasSummary {
			executed = strconv.FormatInt(r.Summary.Executed, 10)
			hits = strconv.FormatInt(r.Summary.Store.Hits, 10)
			misses = strconv.FormatInt(r.Summary.Store.Misses, 10)
			rhits = strconv.FormatInt(r.Summary.Store.Remote.Hits, 10)
			rretries = strconv.FormatInt(r.Summary.Store.Remote.Retries, 10)
			faults = strconv.FormatInt(r.Summary.Faults, 10)
			jresume = strconv.FormatInt(r.Summary.Journal.ResumeHits, 10)
			jappend = strconv.FormatInt(r.Summary.Journal.Appended, 10)
		}
		slot := strconv.Itoa(r.Slot)
		if r.Adopted {
			// No worker ran this invocation: the shard came straight from
			// the driver journal's recovered state.
			slot, executed = "adopted", "0"
		}
		totalBackoff += r.Backoff
		t.Add(r.Shard.String(), slot, r.Attempts, r.Stolen, r.Backoff.Milliseconds(), r.Runs, executed, r.Wall.Seconds(), hits, misses, rhits, rretries, faults, jresume, jappend)
	}
	summary := fmt.Sprintf("dispatch: %d shard(s) converged in %.1fs (%d adopted from journal), %d retried attempt(s), %dms total backoff",
		len(res.Reports), res.Wall.Seconds(), res.Adopted(), res.Retries(), totalBackoff.Milliseconds())
	if s := res.Steals(); s > 0 {
		summary += fmt.Sprintf(", %d stolen shard(s)", s)
	}
	if maxSlots > 0 {
		summary += fmt.Sprintf(", pool %d-%d (peak %d, %d up/%d down)",
			minSlots, maxSlots, res.PeakWorkers, res.ScaleUps, res.ScaleDowns)
	}
	fmt.Printf("%s\n%s", summary, t.String())

	// The shard files just validated, but the merge re-reads them; a
	// transient read failure (NFS hiccup, an injected shard.read fault)
	// should cost a retry, not the whole dispatched fleet's work.
	var imported int
	if _, err := importWithRetry(session, res.Files, &imported); err != nil {
		return fmt.Errorf("merging dispatched shards: %w", err)
	}
	if jl != nil {
		_ = jl.AppendMerge(res.Files, imported)
	}
	fmt.Printf("merged %d runs from %d dispatched shard(s)\n", imported, len(res.Files))
	return nil
}

// importWithRetry merges shard files under the unified retry policy:
// shard reads are plain file I/O, so a transient failure costs a paced
// re-read rather than discarding a fleet's worth of simulation.
func importWithRetry(session *exp.Runner, files []string, imported *int) (int, error) {
	return retry.Policy{Attempts: 3, Base: 100 * time.Millisecond}.Do(
		context.Background(), "merge shards", func(context.Context, int) error {
			n, err := session.ImportShards(files...)
			if err != nil {
				return err
			}
			*imported = n
			return nil
		})
}

// runStoreMaintenance serves -store-info / -store-prune: the
// maintenance surface works identically against a directory and a
// pracstored server, because both sit behind the same Backend interface.
// Prune runs before info, so `-store-prune -store-info` shows the
// after-state.
func runStoreMaintenance(st *store.Store, prune, info bool) {
	b := st.Backend()
	if prune {
		current := fmt.Sprintf("v%d", sim.SchemaVersion)
		n, bytes, err := store.Prune(b, current)
		if err != nil {
			fatalf("pruning %s: %v", st.Spec(), err)
		}
		fmt.Printf("pruned %d entries (%.1f KB) from schema versions other than %s\n",
			n, float64(bytes)/1024, current)
	}
	if info {
		rep, err := store.Collect(b)
		if err != nil {
			fatalf("listing %s: %v", st.Spec(), err)
		}
		fmt.Println(rep.Render())
		fmt.Printf("current schema: v%d\n", sim.SchemaVersion)
	}
}
