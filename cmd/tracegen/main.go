// Command tracegen lists the synthetic workload catalog, exports workload
// traces to the binary on-disk format, and inspects existing trace files.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload 433.milc -n 100000 -o milc.trc
//	tracegen -inspect milc.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"pracsim/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list the workload catalog")
	workload := flag.String("workload", "", "catalog workload to export")
	n := flag.Int("n", 100_000, "number of records to export")
	out := flag.String("o", "", "output trace file")
	inspect := flag.String("inspect", "", "trace file to summarize")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-18s %-10s %s\n", "name", "suite", "class")
		for _, w := range trace.Catalog() {
			fmt.Printf("%-18s %-10s %s\n", w.Name, w.Suite, w.Class)
		}
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		recs, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		mem, writes := 0, 0
		lines := map[uint64]bool{}
		for _, r := range recs {
			if r.IsMem {
				mem++
				lines[r.Line] = true
				if r.Write {
					writes++
				}
			}
		}
		fmt.Printf("records: %d\nmemory ops: %d (%.1f%%)\nstores: %d\nfootprint: %d lines (%.1f MB)\n",
			len(recs), mem, 100*float64(mem)/float64(max(len(recs), 1)), writes,
			len(lines), float64(len(lines))*64/1e6)
	case *workload != "":
		if *out == "" {
			fatal(fmt.Errorf("need -o output path"))
		}
		stream, err := trace.NewWorkloadStream(*workload)
		if err != nil {
			fatal(err)
		}
		recs := trace.Take(stream, *n)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, recs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records of %s to %s\n", len(recs), *workload, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
