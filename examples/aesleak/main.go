// AES key leak: recover the top nibbles of AES key bytes from a T-table
// victim through the PRACLeak side channel, then show TPRAC stopping the
// same attack.
package main

import (
	"fmt"
	"log"

	"pracsim"
)

func main() {
	secret := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67,
		0x89, 0xab, 0xcd, 0xef, 0x10, 0x32, 0x54, 0x76}

	fmt.Println("attacking key bytes 0-3 through PRAC's Alert Back-Off timing channel:")
	for byteIdx := 0; byteIdx < 4; byteIdx++ {
		res, err := pracsim.RunAESAttackVoted(pracsim.AESConfig{
			Key:         secret,
			TargetByte:  byteIdx,
			Plaintext:   0,
			Encryptions: 200,
			NBO:         256,
			Seed:        int64(byteIdx) + 1,
		}, 3)
		if err != nil {
			log.Fatal(err)
		}
		status := "MISS"
		if res.RecoveredNib == res.TrueNib {
			status = "HIT"
		}
		fmt.Printf("  key byte %d: recovered top nibble %#x (true %#x) after %d encryptions [%s]\n",
			byteIdx, res.RecoveredNib, res.TrueNib, 200, status)
	}

	fmt.Println("\nsame attack with TPRAC (TB-RFM every 0.25 tREFI):")
	res, err := pracsim.RunAESAttack(pracsim.AESConfig{
		Key:         secret,
		TargetByte:  0,
		Plaintext:   0,
		Encryptions: 200,
		NBO:         256,
		Seed:        1,
		Defense: func() (pracsim.Policy, error) {
			return pracsim.NewTPRACPolicy(pracsim.FromNS(975), false)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ABO RFMs: %d (the attack's signal source is gone)\n", res.ABORFMs)
	fmt.Printf("  first observed RFM pointed at row %d; true hot row was %d\n",
		res.RecoveredRow, res.TrueRow)
}
