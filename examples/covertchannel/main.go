// Covert channel: transmit the bytes of a message across processes through
// PRAC's Alert Back-Off protocol, using both PRACLeak channels.
package main

import (
	"fmt"
	"log"

	"pracsim"
)

func main() {
	message := []byte("PRAC")

	// Activity channel: one bit per window.
	var bits []bool
	for _, b := range message {
		for i := 7; i >= 0; i-- {
			bits = append(bits, b>>uint(i)&1 == 1)
		}
	}
	act, err := pracsim.RunActivityChannel(pracsim.ActivityConfig{NBO: 256, Bits: bits})
	if err != nil {
		log.Fatal(err)
	}
	var decoded []byte
	for i := 0; i+8 <= len(act.DecodedVals); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | byte(act.DecodedVals[i+j])
		}
		decoded = append(decoded, b)
	}
	fmt.Printf("activity channel: sent %q, received %q (%.1f Kbps, %.2f%% errors)\n",
		message, decoded, act.BitrateKbps, 100*act.ErrorRate)

	// Activation-count channel: 6 bits per symbol at NBO=256 (with the
	// default robustness guard bits).
	vals := make([]int, len(message))
	for i, b := range message {
		vals[i] = int(b >> 2) // top 6 bits of each byte
	}
	cnt, err := pracsim.RunCountChannel(pracsim.CountConfig{NBO: 256, Values: vals})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count channel:    sent %v, received %v (%.1f Kbps, %.2f%% errors)\n",
		vals, cnt.DecodedVals, cnt.BitrateKbps, 100*cnt.ErrorRate)
}
