// Defense tuning: walk through configuring TPRAC for a device — compute the
// worst-case Feinting-attack reach for candidate TB-Windows, solve the
// widest safe window per RowHammer threshold, and validate one solution
// against the live simulator.
package main

import (
	"fmt"
	"log"

	"pracsim"
)

func main() {
	p := pracsim.DefaultAnalysisParams()

	fmt.Println("worst-case activations to a target row (Feinting attack) per TB-Window:")
	fmt.Printf("%-18s %-12s %s\n", "TB-Window", "with reset", "without reset")
	for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
		w := pracsim.Ticks(f * float64(p.TREFI))
		fmt.Printf("%-18s %-12d %d\n",
			fmt.Sprintf("%.2f tREFI", f), p.TMax(w, true), p.TMax(w, false))
	}

	fmt.Println("\nwidest safe TB-Window per RowHammer threshold (counter reset on):")
	for _, nrh := range []int{128, 256, 512, 1024, 2048, 4096} {
		w, err := p.SolveWindow(nrh, true, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("NRH %-5d -> TB-RFM every %v (%.2f tREFI, worst-case bandwidth loss %.1f%%)\n",
			nrh, w, float64(w)/float64(p.TREFI), 100*350.0/w.NS())
	}

	// Validate the NRH=256 window against the live simulator with a
	// scaled refresh window (seconds instead of minutes).
	dcfg := pracsim.DefaultDRAMConfig(256)
	dcfg.Timing.TREFW = pracsim.FromMS(2)
	scaled := pracsim.DefaultAnalysisParams()
	scaled.TREFW = dcfg.Timing.TREFW
	window, err := scaled.SolveWindow(256, true, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nempirical validation at NRH=256 (scaled tREFW): TB-Window %v\n", window)
	res, err := pracsim.RunEmpiricalFeinting(pracsim.EmpiricalConfig{
		DRAM:   dcfg,
		Window: window,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Feinting attack: pool %d, %d rounds, target peaked at %d activations, %d alerts\n",
		res.PoolSize, res.Rounds, res.TargetMaxActs, res.Alerts)
	if res.Alerts == 0 {
		fmt.Println("defense holds: the Back-Off threshold was never reached")
	}
}
