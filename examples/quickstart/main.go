// Quickstart: build the paper's Table 3 system, run a memory-intensive
// workload under the no-ABO baseline and under TPRAC, and compare.
package main

import (
	"fmt"
	"log"

	"pracsim"
)

func main() {
	run := func(policy pracsim.PolicyKind) pracsim.RunResult {
		cfg := pracsim.DefaultSystemConfig(1024) // RowHammer threshold 1024
		cfg.Workload = "433.milc"
		cfg.Policy = policy
		if policy == pracsim.PolicyTPRAC {
			// One Timing-Based RFM per 1.6 tREFI, the paper's operating
			// point at this threshold. DefaultAnalysisParams().SolveWindow
			// derives such windows from the Feinting-attack analysis.
			cfg.TBWindow = pracsim.FromNS(6240)
		}
		sys, err := pracsim.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(20_000, 50_000)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(pracsim.PolicyNone)
	tprac := run(pracsim.PolicyTPRAC)

	fmt.Printf("workload 433.milc, 4 cores, DDR5-8000B, NRH=1024\n")
	fmt.Printf("baseline:  IPC sum %.3f, RBMPKI %.1f\n", base.IPCSum, base.RBMPKI)
	fmt.Printf("TPRAC:     IPC sum %.3f, TB-RFMs %d, alerts %d\n",
		tprac.IPCSum, tprac.Ctrl.PolicyRFMs, tprac.DRAM.AlertsAsserted)
	fmt.Printf("slowdown:  %.2f%%\n", 100*(1-tprac.IPCSum/base.IPCSum))
}
