module pracsim

go 1.24
