// Package aes implements AES-128 encryption with the classic four T-table
// construction used by OpenSSL/GnuPG-style software AES — the victim of the
// paper's PRACLeak side-channel attack (Section 3.3).
//
// Besides encrypting correctly (validated against crypto/aes in tests), the
// cipher can record the T-table indices touched by the first round; those
// indices are x_i = p_i XOR k_i, the secret-dependent memory accesses the
// attack observes through DRAM activation counts.
package aes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// TableEntries is the number of entries in each T-table.
const TableEntries = 256

// EntriesPerCacheLine is how many 4-byte T-table entries share a 64-byte
// cache line; the attack resolves indices to line granularity.
const EntriesPerCacheLine = 16

// CacheLinesPerTable is the number of cache lines a T-table spans.
const CacheLinesPerTable = TableEntries / EntriesPerCacheLine

var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

var rcon = [10]byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// te holds the four encryption T-tables, built from the S-box at init.
var te [4][256]uint32

func init() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		// Te0 row: [2s, s, s, 3s] packed big-endian.
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te[0][i] = w
		te[1][i] = w>>8 | w<<24
		te[2][i] = w>>16 | w<<16
		te[3][i] = w>>24 | w<<8
	}
}

// xtime multiplies by x in GF(2^8) modulo the AES polynomial.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// FirstRoundAccess is one T-table lookup performed by round 1.
type FirstRoundAccess struct {
	Table int  // which T-table (0..3)
	Index byte // table index = p_i XOR k_i for state byte i
	Byte  int  // state byte position i (0..15)
}

// Line reports the cache line within the table that the access touches.
func (a FirstRoundAccess) Line() int { return int(a.Index) / EntriesPerCacheLine }

// Cipher is an AES-128 T-table encryptor.
type Cipher struct {
	rk [44]uint32

	// Recorder, when non-nil, receives every first-round T-table access
	// of each Encrypt call, in lookup order.
	Recorder func(FirstRoundAccess)
}

// NewCipher expands a 16-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: key must be %d bytes, got %d", KeySize, len(key))
	}
	c := &Cipher{}
	for i := 0; i < 4; i++ {
		c.rk[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	for i := 4; i < 44; i++ {
		t := c.rk[i-1]
		if i%4 == 0 {
			t = subWord(t<<8|t>>24) ^ uint32(rcon[i/4-1])<<24
		}
		c.rk[i] = c.rk[i-4] ^ t
	}
	return c, nil
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 |
		uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 |
		uint32(sbox[w&0xff])
}

// Encrypt computes dst = AES-128(src). dst and src must be 16 bytes and may
// overlap.
func (c *Cipher) Encrypt(dst, src []byte) error {
	if len(src) != BlockSize || len(dst) != BlockSize {
		return fmt.Errorf("aes: blocks must be %d bytes (src %d, dst %d)", BlockSize, len(src), len(dst))
	}
	var s [4]uint32
	for i := 0; i < 4; i++ {
		s[i] = uint32(src[4*i])<<24 | uint32(src[4*i+1])<<16 | uint32(src[4*i+2])<<8 | uint32(src[4*i+3])
		s[i] ^= c.rk[i]
	}

	var t [4]uint32
	for round := 1; round < 10; round++ {
		for col := 0; col < 4; col++ {
			b0 := byte(s[col] >> 24)
			b1 := byte(s[(col+1)%4] >> 16)
			b2 := byte(s[(col+2)%4] >> 8)
			b3 := byte(s[(col+3)%4])
			if round == 1 && c.Recorder != nil {
				c.Recorder(FirstRoundAccess{Table: 0, Index: b0, Byte: 4 * col})
				c.Recorder(FirstRoundAccess{Table: 1, Index: b1, Byte: (4*col + 5) % 16})
				c.Recorder(FirstRoundAccess{Table: 2, Index: b2, Byte: (4*col + 10) % 16})
				c.Recorder(FirstRoundAccess{Table: 3, Index: b3, Byte: (4*col + 15) % 16})
			}
			t[col] = te[0][b0] ^ te[1][b1] ^ te[2][b2] ^ te[3][b3] ^ c.rk[4*round+col]
		}
		s = t
	}

	// Final round: S-box only, no MixColumns.
	for col := 0; col < 4; col++ {
		w := uint32(sbox[s[col]>>24])<<24 |
			uint32(sbox[s[(col+1)%4]>>16&0xff])<<16 |
			uint32(sbox[s[(col+2)%4]>>8&0xff])<<8 |
			uint32(sbox[s[(col+3)%4]&0xff])
		w ^= c.rk[40+col]
		dst[4*col] = byte(w >> 24)
		dst[4*col+1] = byte(w >> 16)
		dst[4*col+2] = byte(w >> 8)
		dst[4*col+3] = byte(w)
	}
	return nil
}

// FirstRoundAccesses returns the 16 first-round T-table accesses for a
// plaintext without performing the whole encryption. Access i has index
// p_i XOR k_i — the relation the side channel inverts.
func (c *Cipher) FirstRoundAccesses(plaintext []byte) ([]FirstRoundAccess, error) {
	if len(plaintext) != BlockSize {
		return nil, fmt.Errorf("aes: plaintext must be %d bytes, got %d", BlockSize, len(plaintext))
	}
	saved := c.Recorder
	var accs []FirstRoundAccess
	c.Recorder = func(a FirstRoundAccess) { accs = append(accs, a) }
	var out [BlockSize]byte
	err := c.Encrypt(out[:], plaintext)
	c.Recorder = saved
	if err != nil {
		return nil, err
	}
	return accs, nil
}
