package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// FIPS-197 Appendix C.1 example vector.
func TestFIPS197Vector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := c.Encrypt(got, pt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
}

// Property: the T-table cipher agrees with crypto/aes for random keys and
// plaintexts.
func TestMatchesStdlibProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, KeySize)
		pt := make([]byte, BlockSize)
		rng.Read(key)
		rng.Read(pt)
		ours, err := NewCipher(key)
		if err != nil {
			return false
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			return false
		}
		got := make([]byte, BlockSize)
		want := make([]byte, BlockSize)
		if err := ours.Encrypt(got, pt); err != nil {
			return false
		}
		ref.Encrypt(want, pt)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstRoundIndicesArePXorK(t *testing.T) {
	key := make([]byte, KeySize)
	pt := make([]byte, BlockSize)
	rng := rand.New(rand.NewSource(42))
	rng.Read(key)
	rng.Read(pt)
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := c.FirstRoundAccesses(pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 16 {
		t.Fatalf("first round accesses = %d, want 16", len(accs))
	}
	seenBytes := map[int]bool{}
	for _, a := range accs {
		want := pt[a.Byte] ^ key[a.Byte]
		if a.Index != want {
			t.Errorf("byte %d: index = %#x, want p^k = %#x", a.Byte, a.Index, want)
		}
		seenBytes[a.Byte] = true
	}
	if len(seenBytes) != 16 {
		t.Errorf("accesses cover %d distinct state bytes, want all 16", len(seenBytes))
	}
}

func TestFirstRoundTableAssignment(t *testing.T) {
	c, err := NewCipher(make([]byte, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	accs, err := c.FirstRoundAccesses(make([]byte, BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	// Byte 0 must be looked up in Te0 — the relation the chosen-plaintext
	// attack on k0 relies on.
	found := false
	for _, a := range accs {
		if a.Byte == 0 {
			found = true
			if a.Table != 0 {
				t.Errorf("byte 0 uses table %d, want Te0", a.Table)
			}
		}
	}
	if !found {
		t.Fatal("byte 0 never accessed in round 1")
	}
	// Four lookups per table.
	perTable := map[int]int{}
	for _, a := range accs {
		perTable[a.Table]++
	}
	for tbl := 0; tbl < 4; tbl++ {
		if perTable[tbl] != 4 {
			t.Errorf("table %d has %d lookups, want 4", tbl, perTable[tbl])
		}
	}
}

func TestLineGranularity(t *testing.T) {
	a := FirstRoundAccess{Index: 0x37}
	if a.Line() != 3 {
		t.Errorf("Line() = %d, want 3 (index 0x37 / 16 entries per line)", a.Line())
	}
	if CacheLinesPerTable != 16 {
		t.Errorf("CacheLinesPerTable = %d, want 16", CacheLinesPerTable)
	}
}

func TestRecorderOnlyFirstRound(t *testing.T) {
	c, err := NewCipher(make([]byte, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	c.Recorder = func(FirstRoundAccess) { n++ }
	out := make([]byte, BlockSize)
	if err := c.Encrypt(out, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("recorder saw %d accesses, want 16 (first round only)", n)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := NewCipher(make([]byte, 8)); err == nil {
		t.Error("short key accepted")
	}
	c, err := NewCipher(make([]byte, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Encrypt(make([]byte, 8), make([]byte, BlockSize)); err == nil {
		t.Error("short dst accepted")
	}
	if _, err := c.FirstRoundAccesses(make([]byte, 8)); err == nil {
		t.Error("short plaintext accepted")
	}
}
