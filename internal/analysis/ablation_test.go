package analysis

import (
	"testing"

	"pracsim/internal/attack"
	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

// The paper's Section 2.3 observation (from QPRAC and MOAT): PRAC
// implementations with FIFO mitigation queues are vulnerable to targeted
// attacks, whereas TPRAC's single-entry frequency queue is not. The attack:
// keep the FIFO saturated with fresh decoy rows so the target never enters
// the queue, then hammer the target past NBO between TB-RFMs.
func runQueueAblation(t *testing.T, kind dram.QueueKind) (alerts int64, targetMax uint32) {
	t.Helper()
	dcfg := dram.DefaultConfig(256)
	dcfg.Org.Ranks = 1
	dcfg.Org.BankGroups = 2
	dcfg.Org.BanksPerGroup = 2
	dcfg.Org.Rows = 4096
	dcfg.Queue = kind
	dcfg.QueueDepth = 4
	// One TB-RFM per half tREFI: at most ~37 activations fit between
	// consecutive mitigations, far below NBO, so any queue that reliably
	// tracks the hottest row keeps the target safe at this rate.
	window := dcfg.Timing.TREFI / 2

	policy, err := mitigation.NewTPRAC(window, false)
	if err != nil {
		t.Fatal(err)
	}
	env, err := attack.NewEnv(dcfg, memctrl.DefaultConfig(), policy)
	if err != nil {
		t.Fatal(err)
	}

	const bank, target = 0, 0
	const conflictRow = 50 // pre-queued decoy used only for row conflicts
	decoy := 100
	issueRead := func(row int, next func()) {
		ok := env.Read(bank, row, 0, func(at ticks.T) {
			env.Eng.At(at, func(ticks.T) { next() })
		})
		if !ok {
			env.Eng.After(4, func(ticks.T) { next() })
		}
	}
	// The attacker knows the TB-RFM schedule (full-knowledge threat
	// model) and the FIFO's insert-on-first-observation policy. It goes
	// quiet shortly before each window boundary — so no attacker row is
	// in flight when the TB-RFM drains the bank and pops a queue entry —
	// and then touches two fresh decoys: the first row precharged after
	// the RFM claims the freed slot, and that row is a decoy by
	// construction. The rest of the window alternates the target and an
	// already-observed decoy, accumulating target activations while the
	// target stays outside the queue.
	var loop func()
	step := 0
	guard := ticks.FromNS(300)
	rfmWait := dcfg.Timing.TRFMab + ticks.FromNS(500)
	loop = func() {
		if env.Mod.RowCounter(bank, target) >= uint32(dcfg.PRAC.NBO) {
			return
		}
		into := env.Eng.Now() % window
		if into > window-guard {
			wait := (window - into) + rfmWait
			decoy += 2
			d1, d2 := decoy, decoy+10000
			decoy += 10000
			env.Eng.After(wait, func(ticks.T) {
				issueRead(d1, func() { issueRead(d2, loop) })
			})
			return
		}
		step++
		if step%2 == 0 {
			issueRead(conflictRow, loop)
			return
		}
		issueRead(target, loop)
	}
	// Prologue: fill the queue with decoys (observations happen at each
	// precharge, i.e. one access behind) before the target's first
	// activation, so the target can never claim an initial slot.
	prologue := []int{90, 91, 92, 93, 94, conflictRow, 95}
	var fill func(i int)
	fill = func(i int) {
		if i >= len(prologue) {
			loop()
			return
		}
		issueRead(prologue[i], func() { fill(i + 1) })
	}
	fill(0)
	env.Run(ticks.FromUS(400))
	max := env.Mod.RowCounter(bank, target)
	// The counter may have been reset by a mitigation just before we
	// read it; the alert count is the authoritative security signal.
	return env.Mod.Stats().AlertsAsserted, max
}

func TestFIFOQueueIsInsecureUnderTargetedAttack(t *testing.T) {
	alerts, _ := runQueueAblation(t, dram.QueueFIFO)
	if alerts == 0 {
		t.Fatal("FIFO queue survived the targeted attack; prior work and the paper say it must not")
	}
}

func TestSingleEntryQueueSurvivesTargetedAttack(t *testing.T) {
	alerts, max := runQueueAblation(t, dram.QueueSingleEntry)
	if alerts != 0 {
		t.Fatalf("single-entry queue raised %d alerts under the targeted attack", alerts)
	}
	if max >= 128 {
		t.Fatalf("target reached %d activations with NBO=128", max)
	}
}

func TestIdealQueueSurvivesTargetedAttack(t *testing.T) {
	alerts, _ := runQueueAblation(t, dram.QueueIdeal)
	if alerts != 0 {
		t.Fatalf("ideal (UPRAC) queue raised %d alerts", alerts)
	}
}
