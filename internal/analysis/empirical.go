package analysis

import (
	"fmt"

	"pracsim/internal/attack"
	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

// EmpiricalConfig drives a live Feinting attack against a TPRAC-defended
// simulator to validate a solved TB-Window (Section 4.2.3).
type EmpiricalConfig struct {
	DRAM     dram.Config
	Window   ticks.T // TB-Window under test
	PoolSize int     // initial decoy pool (0 = theoretical OptR1, capped)
	MaxActs  int     // activation budget (0 = one scaled refresh window)
}

// EmpiricalResult reports what the attack achieved.
type EmpiricalResult struct {
	PoolSize      int
	Rounds        int
	TargetMaxActs uint32 // highest counter the target row ever reached
	Alerts        int64
	TBRFMs        int64
}

// RunEmpiricalFeinting executes the Feinting pattern — uniform rounds over a
// shrinking decoy pool, then an all-in burst on the target — against TPRAC
// with the given window, using the simulator's counters as the oracle the
// worst-case analysis grants the adversary. The returned TargetMaxActs must
// stay below NBO if the window was solved correctly.
func RunEmpiricalFeinting(cfg EmpiricalConfig) (EmpiricalResult, error) {
	if cfg.Window <= 0 {
		return EmpiricalResult{}, fmt.Errorf("analysis: window must be positive")
	}
	p := ParamsFromDRAM(cfg.DRAM)
	pool := cfg.PoolSize
	if pool <= 0 {
		pool = p.OptR1(cfg.Window, cfg.DRAM.PRAC.ResetOnREFW)
	}
	if pool > cfg.DRAM.Org.Rows-1 {
		pool = cfg.DRAM.Org.Rows - 1
	}
	budget := cfg.MaxActs
	if budget <= 0 {
		budget = p.MaxActsPerTREFW()
	}

	policy, err := mitigation.NewTPRAC(cfg.Window, false)
	if err != nil {
		return EmpiricalResult{}, err
	}
	env, err := attack.NewEnv(cfg.DRAM, memctrl.DefaultConfig(), policy)
	if err != nil {
		return EmpiricalResult{}, err
	}

	const bank = 0
	const target = 0
	res := EmpiricalResult{PoolSize: pool}

	// rows[0] is the target; the rest are decoys.
	rows := make([]int, pool+1)
	for i := range rows {
		rows[i] = i
	}

	acts := 0
	maxTarget := func() {
		if c := env.Mod.RowCounter(bank, target); c > res.TargetMaxActs {
			res.TargetMaxActs = c
		}
	}

	for len(rows) > 1 && acts+len(rows) <= budget {
		if err := activateOnce(env, bank, rows); err != nil {
			return res, err
		}
		acts += len(rows)
		res.Rounds++
		maxTarget()
		// Remove mitigated decoys: their counters were reset to zero.
		kept := rows[:1]
		for _, r := range rows[1:] {
			if env.Mod.RowCounter(bank, r) > 0 {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	// Final round: all remaining budget on the target row.
	burst := p.ActsPerWindow(cfg.Window)
	if burst > budget-acts {
		burst = budget - acts
	}
	if burst > 0 {
		h, err := attack.NewHammerer(env, bank, target, []int{cfg.DRAM.Org.Rows - 1})
		if err != nil {
			return res, err
		}
		done := false
		if err := h.Hammer(burst, func() { done = true }); err != nil {
			return res, err
		}
		deadline := env.Eng.Now() + ticks.T(burst)*ticks.FromNS(300) + ticks.FromUS(100)
		for !done && env.Eng.Now() < deadline {
			env.Run(env.Eng.Now() + ticks.FromUS(5))
			maxTarget()
		}
		maxTarget()
	}

	res.Alerts = env.Mod.Stats().AlertsAsserted
	res.TBRFMs = env.Ctrl.Stats().PolicyRFMs
	return res, nil
}

// activateOnce activates every row in rows one time, in order.
func activateOnce(env *attack.Env, bank int, rows []int) error {
	idx := 0
	finished := false
	var step func()
	step = func() {
		if idx >= len(rows) {
			finished = true
			return
		}
		row := rows[idx]
		idx++
		ok := env.Read(bank, row, 0, func(at ticks.T) {
			env.Eng.At(at, func(ticks.T) { step() })
		})
		if !ok {
			idx--
			env.Eng.After(4, func(ticks.T) { step() })
		}
	}
	step()
	deadline := env.Eng.Now() + ticks.T(len(rows))*ticks.FromNS(300) + ticks.FromUS(200)
	for !finished && env.Eng.Now() < deadline {
		env.Run(env.Eng.Now() + ticks.FromUS(5))
	}
	if !finished {
		return fmt.Errorf("analysis: round of %d activations stalled", len(rows))
	}
	return nil
}
