// Package analysis implements the paper's Section 4.2 security analysis:
// the worst-case Feinting/Wave attack model (Equations 2–5), the theoretical
// maximum activations TMAX a target row can accumulate under TPRAC, and the
// TB-Window solver that configures TPRAC per RowHammer threshold. It also
// provides an empirical Feinting attack that validates the solved window
// against the live simulator.
package analysis

import (
	"fmt"

	"pracsim/internal/dram"
	"pracsim/internal/ticks"
)

// Params holds the device characteristics the analysis depends on.
type Params struct {
	TRC         ticks.T
	TREFI       ticks.T
	TREFW       ticks.T
	TRFC        ticks.T
	RowsPerBank int
}

// ParamsFromDRAM extracts analysis parameters from a device configuration.
func ParamsFromDRAM(cfg dram.Config) Params {
	return Params{
		TRC:         cfg.Timing.TRC,
		TREFI:       cfg.Timing.TREFI,
		TREFW:       cfg.Timing.TREFW,
		TRFC:        cfg.Timing.TRFC,
		RowsPerBank: cfg.Org.Rows,
	}
}

// DefaultParams returns the paper's 32 Gb DDR5-8000B analysis parameters.
func DefaultParams() Params { return ParamsFromDRAM(dram.DefaultConfig(1024)) }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.TRC <= 0 || p.TREFI <= 0 || p.TREFW <= 0 {
		return fmt.Errorf("analysis: non-positive timing in %+v", p)
	}
	if p.RowsPerBank <= 0 {
		return fmt.Errorf("analysis: non-positive rows per bank")
	}
	return nil
}

// MaxActsPerTREFW is MAXACT(tREFW): the activations that fit in one refresh
// window after refresh blackouts (about 550K for the paper's device).
func (p Params) MaxActsPerTREFW() int {
	refs := int64(p.TREFW / p.TREFI)
	usable := int64(p.TREFW) - refs*int64(p.TRFC)
	return int(usable / int64(p.TRC))
}

// ActsPerWindow is Equation (2): the activations that fit in one TB-Window.
func (p Params) ActsPerWindow(window ticks.T) int {
	return int(window / p.TRC)
}

// FeintingTACT runs the round recurrence of Equations (3) and (4) for an
// initial pool of r1 rows: each round activates every remaining row once,
// one TB-RFM retires the hottest row per ActsPerWindow activations
// (cumulative, Equation 3), and the final round devotes a whole window to
// the target. budget caps total attack activations (the per-tREFW limit
// when counters reset; pass 0 for unlimited). It returns the target row's
// total activations.
func (p Params) FeintingTACT(window ticks.T, r1, budget int) int {
	w := p.ActsPerWindow(window)
	if w <= 0 || r1 <= 0 {
		return 0
	}
	if budget <= 0 {
		budget = int(^uint(0) >> 2)
	}
	total := 0  // cumulative activations across all rounds
	rounds := 0 // completed feinting rounds; the target gains one per round
	remaining := r1
	for remaining > 1 && total+remaining <= budget {
		total += remaining
		rounds++
		remaining = r1 - total/w
		if remaining < 1 {
			remaining = 1
		}
	}
	final := w
	if left := budget - total; final > left {
		final = left
	}
	if final < 0 {
		final = 0
	}
	return rounds + final
}

// OptR1 finds the initial pool size maximizing TACT — Equation (5)'s
// optimum under the reset budget, or the paper's 1..128K sweep without
// reset. TACT(r1) is smooth, so a geometric sweep with local refinement
// replaces the exhaustive scan.
func (p Params) OptR1(window ticks.T, reset bool) int {
	budget := 0
	limit := p.RowsPerBank
	if reset {
		budget = p.MaxActsPerTREFW()
		if budget < limit {
			limit = budget
		}
	}
	best, bestVal := 1, 0
	var candidates []int
	for r := 1; r <= limit; r = r*5/4 + 1 {
		candidates = append(candidates, r)
	}
	candidates = append(candidates, limit)
	for _, r := range candidates {
		if v := p.FeintingTACT(window, r, budget); v > bestVal {
			best, bestVal = r, v
		}
	}
	for r := best * 4 / 5; r <= best*5/4+1 && r <= limit; r++ {
		if r < 1 {
			continue
		}
		if v := p.FeintingTACT(window, r, budget); v > bestVal {
			best, bestVal = r, v
		}
	}
	return best
}

// TMax is the worst-case activations to the target row for a TB-Window,
// with or without per-tREFW counter reset (the paper's Figure 7).
func (p Params) TMax(window ticks.T, reset bool) int {
	budget := 0
	if reset {
		budget = p.MaxActsPerTREFW()
	}
	return p.FeintingTACT(window, p.OptR1(window, reset), budget)
}

// SolveWindow returns the largest TB-Window (a multiple of step) for which
// TMax stays strictly below nbo, i.e. no row can reach the Back-Off
// threshold between TB-RFMs even under the worst-case Feinting attack.
// It returns an error when even the smallest window cannot protect nbo.
func (p Params) SolveWindow(nbo int, reset bool, step ticks.T) (ticks.T, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if nbo <= 0 {
		return 0, fmt.Errorf("analysis: NBO must be positive, got %d", nbo)
	}
	if step <= 0 {
		step = p.TREFI / 20
	}
	if p.TMax(step, reset) >= nbo {
		return 0, fmt.Errorf("analysis: no TB-Window can keep TMAX below %d (even %v fails)", nbo, step)
	}
	// TMax grows monotonically with the window; binary search the
	// largest safe multiple of step.
	lo, hi := 1, int(4*p.TREFI/step)+1
	for p.TMax(ticks.T(hi)*step, reset) < nbo {
		hi *= 2
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if p.TMax(ticks.T(mid)*step, reset) < nbo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return ticks.T(lo) * step, nil
}

// Fig7Point is one bar of the paper's Figure 7.
type Fig7Point struct {
	WindowTREFI float64
	Window      ticks.T
	WithReset   int
	NoReset     int
}

// Fig7 computes TMAX across the paper's TB-Window sweep.
func (p Params) Fig7() []Fig7Point {
	fractions := []float64{0.25, 0.5, 0.75, 1, 2, 4}
	out := make([]Fig7Point, 0, len(fractions))
	for _, f := range fractions {
		w := ticks.T(f * float64(p.TREFI))
		out = append(out, Fig7Point{
			WindowTREFI: f,
			Window:      w,
			WithReset:   p.TMax(w, true),
			NoReset:     p.TMax(w, false),
		})
	}
	return out
}
