package analysis

import (
	"testing"
	"testing/quick"

	"pracsim/internal/dram"
	"pracsim/internal/ticks"
)

func TestMaxActsPerTREFW(t *testing.T) {
	p := DefaultParams()
	got := p.MaxActsPerTREFW()
	// The paper quotes about 550K for the 32Gb DDR5-8000B device.
	if got < 500_000 || got > 620_000 {
		t.Fatalf("MAXACT(tREFW) = %d, want about 550K", got)
	}
}

func TestActsPerWindow(t *testing.T) {
	p := DefaultParams()
	if got := p.ActsPerWindow(p.TREFI); got != 75 {
		t.Fatalf("ACTs per 1 tREFI window = %d, want 75 (3900ns/52ns)", got)
	}
	if got := p.ActsPerWindow(p.TREFI / 4); got != 18 {
		t.Fatalf("ACTs per 0.25 tREFI = %d, want 18", got)
	}
}

func TestTMaxMonotoneInWindow(t *testing.T) {
	p := DefaultParams()
	prev := 0
	for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
		w := ticks.T(f * float64(p.TREFI))
		v := p.TMax(w, true)
		if v <= prev {
			t.Fatalf("TMax(%v tREFI) = %d, not above previous %d", f, v, prev)
		}
		prev = v
	}
}

func TestNoResetWorseThanReset(t *testing.T) {
	p := DefaultParams()
	for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
		w := ticks.T(f * float64(p.TREFI))
		reset := p.TMax(w, true)
		noReset := p.TMax(w, false)
		if noReset < reset {
			t.Errorf("window %.2f tREFI: TMax without reset (%d) below with reset (%d)", f, noReset, reset)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	pts := DefaultParams().Fig7()
	if len(pts) != 6 {
		t.Fatalf("Fig7 has %d points, want 6", len(pts))
	}
	// The paper's Figure 7 magnitudes: at 1 tREFI, TMAX is in the
	// hundreds (572 reset / 736 no-reset in the paper; our literal
	// Equations 2-5 land within ~1.4x), and at 4 tREFI in the thousands.
	var at1, at4 Fig7Point
	for _, pt := range pts {
		switch pt.WindowTREFI {
		case 1:
			at1 = pt
		case 4:
			at4 = pt
		}
	}
	if at1.WithReset < 300 || at1.WithReset > 1300 {
		t.Errorf("TMax(1 tREFI, reset) = %d, want same order as paper's 572", at1.WithReset)
	}
	if at4.WithReset < 1200 || at4.WithReset > 5200 {
		t.Errorf("TMax(4 tREFI, reset) = %d, want same order as paper's 2138", at4.WithReset)
	}
	if at4.NoReset < at4.WithReset {
		t.Errorf("no-reset TMax %d below reset %d at 4 tREFI", at4.NoReset, at4.WithReset)
	}
}

func TestSolveWindowProtects(t *testing.T) {
	p := DefaultParams()
	for _, nbo := range []int{128, 256, 512, 1024, 2048, 4096} {
		w, err := p.SolveWindow(nbo, true, 0)
		if err != nil {
			t.Fatalf("SolveWindow(%d): %v", nbo, err)
		}
		if got := p.TMax(w, true); got >= nbo {
			t.Errorf("NBO %d: solved window %v has TMax %d >= NBO", nbo, w, got)
		}
		// One step wider must break the bound (maximality).
		step := p.TREFI / 20
		if got := p.TMax(w+step, true); got < nbo {
			t.Errorf("NBO %d: window %v is not maximal (TMax(+step)=%d)", nbo, w, got)
		}
	}
}

func TestSolveWindowGrowsWithNBO(t *testing.T) {
	p := DefaultParams()
	prev := ticks.T(0)
	for _, nbo := range []int{128, 512, 2048} {
		w, err := p.SolveWindow(nbo, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		if w <= prev {
			t.Fatalf("window for NBO %d (%v) not above previous (%v)", nbo, w, prev)
		}
		prev = w
	}
}

func TestSolveWindowPaperAnchors(t *testing.T) {
	// The paper configures roughly 1.6 tREFI at NRH=1024 and about 1us
	// at NRH=128. Our literal equations should land within 2x of both.
	p := DefaultParams()
	w1024, err := p.SolveWindow(1024, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(w1024) / float64(p.TREFI)
	if ratio < 0.5 || ratio > 3.2 {
		t.Errorf("TB-Window(NBO=1024) = %.2f tREFI, want same order as paper's 1.6", ratio)
	}
	w128, err := p.SolveWindow(128, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w128.NS() < 300 || w128.NS() > 4000 {
		t.Errorf("TB-Window(NBO=128) = %v, want same order as paper's ~1us", w128)
	}
}

func TestSolveWindowErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := p.SolveWindow(0, true, 0); err == nil {
		t.Error("NBO=0 accepted")
	}
	if _, err := p.SolveWindow(5, true, 0); err == nil {
		t.Error("unprotectable NBO accepted")
	}
	bad := p
	bad.TRC = 0
	if _, err := bad.SolveWindow(1024, true, 0); err == nil {
		t.Error("invalid params accepted")
	}
}

// Property: TACT never exceeds the pool-1 rounds plus one full window, and
// is always at least one window's worth of activations.
func TestFeintingTACTBoundsProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(wRaw uint8, r1Raw uint16) bool {
		w := ticks.T(int(wRaw%100)+5) * p.TRC // 5..104 acts per window
		r1 := int(r1Raw%8192) + 1
		acts := p.ActsPerWindow(w)
		unbounded := p.FeintingTACT(w, r1, 0)
		if unbounded < acts {
			return false
		}
		// A budget can only reduce the attack's reach.
		bounded := p.FeintingTACT(w, r1, p.MaxActsPerTREFW())
		return bounded <= unbounded
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalFeintingStaysBelowNBO(t *testing.T) {
	// Scaled-down device keeps the attack affordable in a unit test:
	// a short refresh window bounds the attack budget.
	dcfg := dram.DefaultConfig(256)
	dcfg.Org.Ranks = 1
	dcfg.Org.BankGroups = 2
	dcfg.Org.BanksPerGroup = 2
	dcfg.Org.Rows = 4096
	dcfg.Timing.TREFW = ticks.FromMS(1)
	p := ParamsFromDRAM(dcfg)
	window, err := p.SolveWindow(dcfg.PRAC.NBO, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEmpiricalFeinting(EmpiricalConfig{
		DRAM:   dcfg,
		Window: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alerts != 0 {
		t.Fatalf("solved window %v: Feinting raised %d alerts", window, res.Alerts)
	}
	if res.TargetMaxActs >= uint32(dcfg.PRAC.NBO) {
		t.Fatalf("target reached %d activations, NBO is %d", res.TargetMaxActs, dcfg.PRAC.NBO)
	}
	if res.TBRFMs == 0 {
		t.Fatal("no TB-RFMs issued during the attack")
	}
	if res.Rounds == 0 {
		t.Fatal("attack performed no rounds")
	}
}

func TestEmpiricalFeintingValidation(t *testing.T) {
	if _, err := RunEmpiricalFeinting(EmpiricalConfig{DRAM: dram.DefaultConfig(256)}); err == nil {
		t.Error("zero window accepted")
	}
}
