package attack

import (
	"testing"

	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

func newTestEnv(t *testing.T, nbo int) *Env {
	t.Helper()
	env, err := NewEnv(dram.DefaultConfig(nbo), memctrl.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestProberCollectsStableLatency(t *testing.T) {
	env := newTestEnv(t, 1<<20)
	p, err := NewProber(env, 3, []int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	env.Run(ticks.FromUS(20))
	p.Stop()
	if len(p.Samples) < 100 {
		t.Fatalf("collected %d samples, want hundreds", len(p.Samples))
	}
	// Open-page probing: most samples are fast row hits.
	fast := 0
	for _, s := range p.Samples {
		if s.Latency < ticks.FromNS(100) {
			fast++
		}
	}
	if fast < len(p.Samples)*8/10 {
		t.Errorf("only %d/%d samples are fast row hits", fast, len(p.Samples))
	}
}

func TestHammererCountsActivations(t *testing.T) {
	env := newTestEnv(t, 1<<20)
	h, err := NewHammerer(env, 0, 5, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	if err := h.Hammer(50, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	env.Run(ticks.FromUS(50))
	if !done {
		t.Fatal("hammer did not finish")
	}
	if got := env.Mod.RowCounter(0, 5); got != 50 {
		t.Fatalf("target PRAC counter = %d, want 50", got)
	}
}

func TestHammerTriggersAlertAtNBO(t *testing.T) {
	env := newTestEnv(t, 64)
	h, err := NewHammerer(env, 0, 5, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Hammer(64, nil); err != nil {
		t.Fatal(err)
	}
	env.Run(ticks.FromUS(60))
	if env.Mod.Stats().AlertsAsserted == 0 {
		t.Fatal("hammering to NBO raised no Alert")
	}
	if env.Ctrl.Stats().ABORFMs == 0 {
		t.Fatal("Alert was not serviced with an RFM")
	}
}

func TestProberSeesRFMSpike(t *testing.T) {
	env := newTestEnv(t, 128)
	p, err := NewProber(env, 7, []int{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	h, err := NewHammerer(env, 0, 5, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Hammer(130, nil); err != nil {
		t.Fatal(err)
	}
	env.Run(ticks.FromUS(80))
	p.Stop()
	maxLat := ticks.T(0)
	for _, s := range p.Samples {
		if s.Latency > maxLat {
			maxLat = s.Latency
		}
	}
	if maxLat < ticks.FromNS(300) {
		t.Fatalf("max probe latency %v; cross-bank RFM spike not visible", maxLat)
	}
}

func TestDetectorFiltersRefreshSpikes(t *testing.T) {
	env := newTestEnv(t, 1<<20) // no ABO possible
	p, err := NewProber(env, 7, []int{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	env.Run(ticks.FromUS(60)) // several tREFI periods
	p.Stop()
	half := len(p.Samples) / 2
	det, err := CalibrateDetector(p.Samples[:half], env.Mod.Config().Timing.TREFI)
	if err != nil {
		t.Fatal(err)
	}
	// Refresh spikes exist in the second half but none may classify as
	// signal.
	spikes, signals := 0, 0
	for _, s := range p.Samples[half:] {
		if det.IsSpike(s) {
			spikes++
		}
		if det.IsSignal(s) {
			signals++
		}
	}
	if spikes == 0 {
		t.Fatal("no refresh spikes observed; probe window too short")
	}
	if signals != 0 {
		t.Fatalf("%d refresh spikes misclassified as signal", signals)
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := CalibrateDetector(nil, ticks.FromUS(1)); err == nil {
		t.Error("empty calibration accepted")
	}
	if _, err := CalibrateDetector([]Sample{{}}, 0); err == nil {
		t.Error("zero tREFI accepted")
	}
}

func TestActivityChannelTransmitsBits(t *testing.T) {
	res, err := RunActivityChannel(ActivityConfig{
		NBO:  256,
		Bits: []bool{true, false, true, true, false, false, true, false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("activity channel errors = %d/%d (sent %v, got %v)",
			res.Errors, res.Symbols, res.SentValues, res.DecodedVals)
	}
	if res.BitrateKbps < 5 {
		t.Errorf("bitrate = %.1f Kbps, implausibly low", res.BitrateKbps)
	}
	if res.AlertsRaised == 0 {
		t.Error("no alerts raised; channel cannot have used ABO")
	}
}

func TestActivityChannelBitrateFallsWithNBO(t *testing.T) {
	bits := []bool{true, false, true, false}
	small, err := RunActivityChannel(ActivityConfig{NBO: 256, Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunActivityChannel(ActivityConfig{NBO: 1024, Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	if large.BitrateKbps >= small.BitrateKbps {
		t.Errorf("bitrate at NBO=1024 (%.1f) not below NBO=256 (%.1f)",
			large.BitrateKbps, small.BitrateKbps)
	}
}

func TestCountChannelTransmitsValues(t *testing.T) {
	res, err := RunCountChannel(CountConfig{
		NBO:    256,
		Values: []int{17, 50, 3, 22, 32, 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 1 { // one symbol may straddle a tREFW counter reset
		t.Fatalf("count channel errors = %d/%d (sent %v, got %v)",
			res.Errors, res.Symbols, res.SentValues, res.DecodedVals)
	}
	if res.BitsPerSym != 6 {
		t.Errorf("bits per symbol = %.0f, want 6 (log2 NBO minus 2 guard bits)", res.BitsPerSym)
	}
}

func TestCountChannelOutpacesActivityChannel(t *testing.T) {
	act, err := RunActivityChannel(ActivityConfig{NBO: 256, NumBits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := RunCountChannel(CountConfig{NBO: 256, NumVals: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.BitrateKbps <= act.BitrateKbps {
		t.Errorf("count-channel bitrate %.1f <= activity %.1f; paper's Table 2 ordering violated",
			cnt.BitrateKbps, act.BitrateKbps)
	}
}

func TestCountChannelRejectsBadValues(t *testing.T) {
	if _, err := RunCountChannel(CountConfig{NBO: 256, Values: []int{600}}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := RunCountChannel(CountConfig{NBO: 32, GuardBits: 4}); err == nil {
		t.Error("guard bits eating the whole symbol space accepted")
	}
	if _, err := RunCountChannel(CountConfig{NBO: 0}); err == nil {
		t.Error("zero NBO accepted")
	}
}

func TestAESAttackRecoversKeyNibble(t *testing.T) {
	key := []byte{0x7a, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	res, err := RunAESAttack(AESConfig{
		Key:         key,
		TargetByte:  0,
		Plaintext:   0x00,
		Encryptions: 200,
		NBO:         256,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatalf("attack missed: recovered row %d, true row %d", res.RecoveredRow, res.TrueRow)
	}
	if res.RecoveredNib != 0x7 {
		t.Fatalf("recovered nibble %#x, want 0x7", res.RecoveredNib)
	}
	// Victim's hot row must dominate (about 2x the others, Figure 4).
	hot := res.VictimRowActs[res.TrueRow]
	for r, c := range res.VictimRowActs {
		if r != res.TrueRow && c >= hot {
			t.Errorf("row %d activations %d >= hot row %d", r, c, hot)
		}
	}
	// Total victim+attacker activations on the hot row reach NBO exactly
	// (Figure 5b's invariant), modulo the ABOACT allowance.
	total := int(hot) + res.AttackerCount
	if total < 250 || total > 262 {
		t.Errorf("victim+attacker activations = %d, want about NBO=256", total)
	}
}

func TestAESAttackDifferentKeysDifferentRows(t *testing.T) {
	rows := map[int]bool{}
	for _, k0 := range []byte{0x00, 0x40, 0x90, 0xf0} {
		key := make([]byte, 16)
		key[0] = k0
		res, err := RunAESAttack(AESConfig{
			Key: key, TargetByte: 0, Plaintext: 0,
			Encryptions: 120, NBO: 256, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Hit {
			t.Errorf("k0=%#x: missed (got row %d, want %d)", k0, res.RecoveredRow, res.TrueRow)
		}
		rows[res.RecoveredRow] = true
	}
	if len(rows) != 4 {
		t.Errorf("four distinct key nibbles mapped to %d rows", len(rows))
	}
}

func TestTPRACDefeatsAESAttack(t *testing.T) {
	key := make([]byte, 16)
	key[0] = 0x7a
	cfg := AESConfig{
		Key: key, TargetByte: 0, Plaintext: 0,
		Encryptions: 200, NBO: 256, Seed: 11,
		Defense: func() (mitigation.Policy, error) {
			// One TB-RFM per 0.25 tREFI: ample for NBO=256.
			return mitigation.NewTPRAC(ticks.FromNS(975), false)
		},
	}
	res, err := RunAESAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ABORFMs != 0 {
		t.Fatalf("TPRAC run produced %d ABO RFMs, want 0", res.ABORFMs)
	}
	if res.TotalRFMs == 0 {
		t.Fatal("TPRAC issued no TB-RFMs")
	}
}

func TestCharacterizationSpikesScaleWithPRACLevel(t *testing.T) {
	base, err := RunCharacterization(CharacterizeConfig{NBO: 256, NMit: 0, Duration: ticks.FromUS(150)})
	if err != nil {
		t.Fatal(err)
	}
	if base.ABOs != 0 {
		t.Fatalf("no-ABO run raised %d alerts", base.ABOs)
	}
	one, err := RunCharacterization(CharacterizeConfig{NBO: 256, NMit: 1, Duration: ticks.FromUS(150)})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunCharacterization(CharacterizeConfig{NBO: 256, NMit: 4, Duration: ticks.FromUS(150)})
	if err != nil {
		t.Fatal(err)
	}
	if one.ABOs == 0 || four.ABOs == 0 {
		t.Fatalf("ABO counts = %d/%d, want non-zero", one.ABOs, four.ABOs)
	}
	if four.SpikeLatency <= one.SpikeLatency {
		t.Errorf("PRAC-4 spike latency %v not above PRAC-1 %v", four.SpikeLatency, one.SpikeLatency)
	}
	if one.SpikeLatency < ticks.FromNS(350) {
		t.Errorf("PRAC-1 spike latency %v below one tRFMab", one.SpikeLatency)
	}
}

func TestEnvValidation(t *testing.T) {
	if _, err := NewProber(newTestEnv(t, 64), 0, nil, 0); err == nil {
		t.Error("prober with no rows accepted")
	}
	env := newTestEnv(t, 64)
	if _, err := NewHammerer(env, 0, 5, nil); err == nil {
		t.Error("hammerer with no decoys accepted")
	}
	if _, err := NewHammerer(env, 0, 5, []int{5}); err == nil {
		t.Error("decoy equal to target accepted")
	}
	h, _ := NewHammerer(env, 0, 5, []int{6})
	_ = h.Hammer(10, nil)
	if err := h.Hammer(10, nil); err == nil {
		t.Error("double hammer accepted")
	}
}

// TestRetryAtAlignsToControllerGrid: a refused access deferred through
// RetryAt must land on the controller's next cycle slot — strictly after
// now, never off-grid — whether now is grid-aligned or not.
func TestRetryAtAlignsToControllerGrid(t *testing.T) {
	env := newTestEnv(t, 1<<20)
	for _, offset := range []ticks.T{0, 1, 3, memctrl.CyclePeriod, memctrl.CyclePeriod + 2} {
		env.Run(env.Eng.Now() + memctrl.CyclePeriod) // make room to advance
		target := env.Eng.Now() + offset
		var firedAt ticks.T = -1
		env.Eng.At(target, func(ticks.T) {
			env.RetryAt(func() { firedAt = env.Eng.Now() })
		})
		env.Run(target + 4*memctrl.CyclePeriod)
		if firedAt < 0 {
			t.Fatalf("offset %d: retry never fired", offset)
		}
		if firedAt <= target || firedAt%memctrl.CyclePeriod != 0 {
			t.Errorf("offset %d: retry fired at %d (refused at %d) — not the next grid slot", offset, firedAt, target)
		}
		if firedAt-target > memctrl.CyclePeriod {
			t.Errorf("offset %d: retry fired %d ticks late", offset, firedAt-target)
		}
	}
}
