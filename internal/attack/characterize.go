package attack

import (
	"fmt"
	"sort"

	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/ticks"
)

// CharacterizeConfig parameterizes the Figure 3 experiment: how visible is
// an Alert Back-Off to a concurrent memory-latency observer, as the PRAC
// level (RFMs per ABO) varies.
type CharacterizeConfig struct {
	NBO      int     // Back-Off threshold (paper: 256)
	NMit     int     // PRAC level: 1, 2 or 4; 0 disables ABO ("No ABO" panel)
	Duration ticks.T // observation window (paper: 2 ms)
}

// CharacterizeResult carries the Figure 3 series for one PRAC level.
type CharacterizeResult struct {
	NMit            int
	Samples         []Sample
	BaselineLatency ticks.T // median probe latency
	SpikeLatency    ticks.T // mean latency of ABO-coincident probes
	Spikes          int
	ABOs            int64
}

// RunCharacterization measures an attacker's probe latency while a victim
// hammers a row past NBO in another bank, reproducing Figure 3's panels.
func RunCharacterization(cfg CharacterizeConfig) (CharacterizeResult, error) {
	if cfg.Duration <= 0 {
		return CharacterizeResult{}, fmt.Errorf("attack: duration must be positive")
	}
	nbo := cfg.NBO
	if nbo <= 0 {
		nbo = 256
	}
	res := CharacterizeResult{NMit: cfg.NMit}

	dcfg := dram.DefaultConfig(nbo)
	hammerBudget := nbo
	if cfg.NMit == 0 {
		// "No ABO": same victim activity, Alert disabled.
		dcfg.PRAC.NBO = 1 << 30
	} else {
		dcfg.PRAC.NMit = cfg.NMit
	}
	env, err := NewEnv(dcfg, memctrl.DefaultConfig(), nil)
	if err != nil {
		return CharacterizeResult{}, err
	}

	// Attacker: open-page probe in a different bank from the victim,
	// plus a watcher in another rank so RFM spikes can be told apart
	// from per-rank refresh spikes.
	probe, err := NewProber(env, 7, []int{3}, ticks.FromNS(100))
	if err != nil {
		return CharacterizeResult{}, err
	}
	probe.Start()
	watcher, err := NewProber(env, 37, []int{3}, 0)
	if err != nil {
		return CharacterizeResult{}, err
	}
	watcher.Start()

	// Victim: repeatedly push a row pair to NBO; each Alert's mitigation
	// resets the hot row, so ABOs recur throughout the window.
	victim, err := NewHammerer(env, 0, 20, []int{21})
	if err != nil {
		return CharacterizeResult{}, err
	}
	var loop func()
	loop = func() {
		if err := victim.Hammer(hammerBudget, func() {
			env.Eng.After(ticks.FromUS(2), func(ticks.T) { loop() })
		}); err != nil {
			return
		}
	}
	loop()

	env.Run(cfg.Duration)
	probe.Stop()
	watcher.Stop()
	res.Samples = probe.Samples
	res.ABOs = env.Mod.Stats().AlertsAsserted

	if len(res.Samples) == 0 {
		return res, fmt.Errorf("attack: probe collected no samples")
	}
	lats := make([]ticks.T, len(res.Samples))
	for i, s := range res.Samples {
		lats[i] = s.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.BaselineLatency = lats[len(lats)/2]

	det := &CoincidenceDetector{
		ThrA:   res.BaselineLatency + ticks.FromNS(250),
		ThrB:   res.BaselineLatency + ticks.FromNS(250),
		Window: ticks.FromNS(600),
	}
	var sum ticks.T
	for _, s := range res.Samples {
		// Only channel-wide blocking (an RFM) delays both ranks at
		// once; rank-local refresh spikes are excluded from the
		// ABO-latency average.
		if s.Latency > det.ThrA && det.HasCoincident(watcher.Samples, s.At) {
			res.Spikes++
			sum += s.Latency
		}
	}
	if res.Spikes > 0 {
		res.SpikeLatency = sum / ticks.T(res.Spikes)
	}
	return res, nil
}
