package attack

import (
	"fmt"
	"math/rand"
	"sort"

	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/ticks"
)

// ChannelResult summarizes a covert-channel transmission.
type ChannelResult struct {
	Symbols      int
	Errors       int
	Period       ticks.T // time per symbol
	BitsPerSym   float64
	BitrateKbps  float64
	ErrorRate    float64
	SentValues   []int
	DecodedVals  []int
	ABORFMs      int64
	AlertsRaised int64
}

func finishResult(r *ChannelResult) {
	if r.Symbols > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Symbols)
	}
	if r.Period > 0 {
		r.BitrateKbps = r.BitsPerSym / r.Period.Seconds() / 1000
	}
}

// Covert-channel bank placement: the two receiver probes sit in different
// ranks (32 banks per rank in the Table 3 organization) so the coincidence
// detector can tell channel-wide RFM blocking from per-rank refresh.
const (
	senderBank    = 0  // rank 0
	sharedBank    = 3  // rank 0, activation-count channel
	probeBankA    = 5  // rank 0
	probeBankB    = 37 // rank 1
	watcherRow    = 1
	activityRowT  = 10
	activityRowD  = 11
	sharedRowAddr = 42
)

// ActivityConfig parameterizes the activity-based covert channel
// (Section 3.2, channel 1): one bit per window, signalled by the presence
// or absence of an Alert Back-Off.
type ActivityConfig struct {
	NBO     int
	Bits    []bool
	Window  ticks.T // 0 = auto-size from NBO
	NMit    int     // PRAC level; 0 = 1
	Seed    int64   // used when Bits is nil to generate random bits
	NumBits int     // used when Bits is nil
}

// RunActivityChannel executes the activity-based covert channel and reports
// the decoded bits, error rate and bitrate. The receiver runs two probe
// threads in different ranks and decodes Bit-1 from a coincident latency
// spike — the unambiguous signature of an RFMab.
func RunActivityChannel(cfg ActivityConfig) (ChannelResult, error) {
	if cfg.NBO <= 0 {
		return ChannelResult{}, fmt.Errorf("attack: NBO must be positive")
	}
	bits := cfg.Bits
	if bits == nil {
		rng := rand.New(rand.NewSource(cfg.Seed))
		bits = make([]bool, max(cfg.NumBits, 1))
		for i := range bits {
			bits[i] = rng.Intn(2) == 0
		}
	}

	dcfg := dram.DefaultConfig(cfg.NBO)
	if cfg.NMit > 0 {
		dcfg.PRAC.NMit = cfg.NMit
	}
	env, err := NewEnv(dcfg, memctrl.DefaultConfig(), nil)
	if err != nil {
		return ChannelResult{}, err
	}
	tm := dcfg.Timing

	window := cfg.Window
	if window == 0 {
		// A pair-alternating sender needs one PRE/ACT turnaround per
		// activation (about 57ns with tRTP+tRP pipelining) plus the
		// ~12% the refresh schedule steals; the RFM burst and
		// scheduling slack close the window.
		hammer := 2 * ticks.T(cfg.NBO) * ticks.FromNS(65)
		window = hammer + tm.TRFMab*ticks.T(dcfg.PRAC.NMit) + ticks.FromUS(5)
	}

	recvA, err := NewProber(env, probeBankA, []int{watcherRow}, 0)
	if err != nil {
		return ChannelResult{}, err
	}
	recvB, err := NewProber(env, probeBankB, []int{watcherRow}, 0)
	if err != nil {
		return ChannelResult{}, err
	}
	sender, err := NewHammerer(env, senderBank, activityRowT, []int{activityRowD})
	if err != nil {
		return ChannelResult{}, err
	}

	// Calibration: learn spike thresholds with the sender idle.
	recvA.Start()
	recvB.Start()
	env.Run(4 * window)
	detector, err := NewCoincidenceDetector(recvA.Samples, recvB.Samples)
	if err != nil {
		return ChannelResult{}, err
	}

	res := ChannelResult{Symbols: len(bits), BitsPerSym: 1, Period: window}
	start := env.Eng.Now()
	for i, bit := range bits {
		if !bit {
			continue
		}
		env.Eng.At(start+ticks.T(i)*window, func(ticks.T) {
			// Windows are sized so a hammer completes well within its
			// window; the guard only protects against extreme refresh
			// pile-ups delaying the previous hammer.
			if !sender.Active() {
				_ = sender.Hammer(cfg.NBO, nil)
			}
		})
	}
	env.Run(start + ticks.T(len(bits))*window + window/2)
	recvA.Stop()
	recvB.Stop()

	// Decode: a window carries Bit-1 if it contains a coincident spike.
	decoded := make([]bool, len(bits))
	for _, s := range recvA.Samples {
		if s.At < start || s.Latency <= detector.ThrA {
			continue
		}
		w := int((s.At - start) / window)
		if w >= 0 && w < len(decoded) && detector.HasCoincident(recvB.Samples, s.At) {
			decoded[w] = true
		}
	}
	for i, bit := range bits {
		sent, got := boolToInt(bit), boolToInt(decoded[i])
		res.SentValues = append(res.SentValues, sent)
		res.DecodedVals = append(res.DecodedVals, got)
		if sent != got {
			res.Errors++
		}
	}
	res.ABORFMs = env.Ctrl.Stats().ABORFMs
	res.AlertsRaised = env.Mod.Stats().AlertsAsserted
	finishResult(&res)
	return res, nil
}

// CountConfig parameterizes the activation-count covert channel
// (Section 3.2, channel 2): sender and receiver share one DRAM row; the
// sender encodes a value k in the row's activation counter and the receiver
// reads it back by counting its own activations until the ABO fires.
type CountConfig struct {
	NBO     int
	Values  []int // each in [0, SymbolSpace); nil = random
	NumVals int
	Seed    int64
	Window  ticks.T // 0 = auto

	// GuardBits trades payload for robustness: the sender only uses
	// counts that are multiples of 2^GuardBits and the decoder rounds,
	// absorbing the one-or-two-activation attribution jitter that
	// refresh interleaving adds around the Alert deadline. 0 keeps the
	// paper's full log2(NBO) bits per symbol. Negative selects the
	// default of 2.
	GuardBits int
}

// SymbolSpace reports how many distinct values one symbol can carry.
func (c CountConfig) SymbolSpace() int {
	return (c.NBO - countHeadroom) >> normalizeGuard(c.GuardBits)
}

const countHeadroom = 16

// normalizeGuard maps the zero value to the default of 2 guard bits and
// negative values to 0 (full log2(NBO) payload, as in the paper).
func normalizeGuard(g int) int {
	switch {
	case g == 0:
		return 2
	case g < 0:
		return 0
	default:
		return g
	}
}

// RunCountChannel executes the activation-count covert channel.
func RunCountChannel(cfg CountConfig) (ChannelResult, error) {
	if cfg.NBO <= 0 {
		return ChannelResult{}, fmt.Errorf("attack: NBO must be positive")
	}
	guard := normalizeGuard(cfg.GuardBits)
	space := cfg.SymbolSpace()
	if space <= 1 {
		return ChannelResult{}, fmt.Errorf("attack: NBO %d too small for %d guard bits", cfg.NBO, guard)
	}
	half := (1 << guard) / 2
	vals := cfg.Values
	if vals == nil {
		rng := rand.New(rand.NewSource(cfg.Seed))
		vals = make([]int, max(cfg.NumVals, 1))
		for i := range vals {
			vals[i] = rng.Intn(space)
		}
	}
	for _, v := range vals {
		if v < 0 || v >= space {
			return ChannelResult{}, fmt.Errorf("attack: value %d outside [0,%d)", v, space)
		}
	}

	dcfg := dram.DefaultConfig(cfg.NBO)
	env, err := NewEnv(dcfg, memctrl.DefaultConfig(), nil)
	if err != nil {
		return ChannelResult{}, err
	}
	tm := dcfg.Timing

	window := cfg.Window
	senderPhase := 2*ticks.T(cfg.NBO)*ticks.FromNS(65) + ticks.FromUS(4)
	if window == 0 {
		// Receiver activations are completion-chained and verify raw
		// spikes, costing about 180ns per target activation with the
		// refresh tax folded in.
		receiver := 2*ticks.T(cfg.NBO)*ticks.FromNS(90) + ticks.FromUS(6)
		window = senderPhase + receiver + tm.TRFMab
	}

	// Large decoy pools keep decoy counters far from NBO over the run.
	senderDecoys := rowPool(1000, 256, sharedRowAddr)
	receiverDecoys := rowPool(3000, 256, sharedRowAddr)
	sender, err := NewHammerer(env, sharedBank, sharedRowAddr, senderDecoys)
	if err != nil {
		return ChannelResult{}, err
	}

	// The watcher runs in another rank for the whole transmission; a
	// receiver spike coincident with a watcher spike is an RFM.
	watcher, err := NewProber(env, probeBankB, []int{watcherRow}, 0)
	if err != nil {
		return ChannelResult{}, err
	}
	watcher.Start()
	calib, err := NewProber(env, probeBankA, []int{watcherRow}, 0)
	if err != nil {
		return ChannelResult{}, err
	}
	calib.Start()
	env.Run(3 * window)
	calib.Stop()
	detector, err := NewCoincidenceDetector(calib.Samples, watcher.Samples)
	if err != nil {
		return ChannelResult{}, err
	}

	// Calibration symbols: learn the offset between the receiver's
	// activation count at the observed spike and NBO-k (the ABOACT
	// allowance plus pipelining). The median over three symbols centers
	// the +-1 jitter refresh interleaving adds.
	calK := (space/2)<<guard + half
	var deltas []int
	for i := 0; i < 3; i++ {
		calCount, err := runCountSymbol(env, sender, watcher, detector, receiverDecoys, calK, window, senderPhase, cfg.NBO)
		if err != nil {
			return ChannelResult{}, err
		}
		deltas = append(deltas, calCount-(cfg.NBO-calK))
	}
	sort.Ints(deltas)
	delta := deltas[1]

	res := ChannelResult{Symbols: len(vals), BitsPerSym: log2(cfg.NBO) - float64(guard), Period: window}
	for _, v := range vals {
		k := v<<guard + half
		count, err := runCountSymbol(env, sender, watcher, detector, receiverDecoys, k, window, senderPhase, cfg.NBO)
		if err != nil {
			// Lost symbol (for instance a tREFW counter reset wiped the
			// shared row mid-window). Force an ABO to return the shared
			// row to a known state, then count the symbol as an error.
			recoverSharedRow(env, sender, cfg.NBO, window)
			res.SentValues = append(res.SentValues, v)
			res.DecodedVals = append(res.DecodedVals, -1)
			res.Errors++
			continue
		}
		// raw = v<<guard + half + jitter; for jitter in [-half, half-1]
		// the shift recovers v exactly.
		raw := cfg.NBO - (count - delta)
		if raw < 0 {
			raw = 0
		}
		got := raw >> guard
		res.SentValues = append(res.SentValues, v)
		res.DecodedVals = append(res.DecodedVals, got)
		if got != v {
			res.Errors++
		}
	}
	watcher.Stop()
	res.ABORFMs = env.Ctrl.Stats().ABORFMs
	res.AlertsRaised = env.Mod.Stats().AlertsAsserted
	finishResult(&res)
	return res, nil
}

// runCountSymbol transmits one value: the sender activates the shared row
// k times in its half of the window, then the receiver activates it for the
// rest of the window, recording latencies; offline, the first receiver
// spike coincident with a watcher spike marks the ABO, and the receiver's
// activation count at that point encodes k.
func runCountSymbol(env *Env, sender *Hammerer, watcher *Prober, det *CoincidenceDetector, receiverDecoys []int, k int, window, senderPhase ticks.T, nbo int) (int, error) {
	start := env.Eng.Now()
	senderDone := k == 0
	if err := sender.Hammer(k, func() { senderDone = true }); err != nil {
		return 0, err
	}
	env.Run(start + senderPhase)
	if !senderDone {
		return 0, fmt.Errorf("attack: sender phase overran its budget (k=%d)", k)
	}

	count, found := runCountReceiver(env, watcher, det, sharedBank, sharedRowAddr, receiverDecoys, nbo+8, start+window)
	env.Run(start + window)
	if !found {
		return 0, fmt.Errorf("attack: no RFM observed in receiver phase (k=%d)", k)
	}
	return count, nil
}

// runCountReceiver alternates shared-row and decoy reads, watching every
// access's latency. On a raw spike it holds briefly; if a watcher spike
// confirms the coincidence (an RFM, hence the ABO), it stops and reports
// the shared-row activation count at that access. Unconfirmed spikes
// (refresh) resume probing. Stopping at the ABO matters: it keeps the
// receiver from piling residual activations onto the just-mitigated shared
// row, which would corrupt the next symbol.
func runCountReceiver(env *Env, watcher *Prober, det *CoincidenceDetector, bank, row int, decoys []int, limit int, deadline ticks.T) (int, bool) {
	result := -1
	done := false
	count := 0
	di := 0
	next := true // next access targets the shared row
	var step func()
	step = func() {
		if done {
			return
		}
		toTarget := next
		next = !next
		r := row
		if !toTarget {
			r = decoys[di%len(decoys)]
			di++
		}
		arrive := env.Eng.Now()
		ok := env.Read(bank, r, 0, func(at ticks.T) {
			if toTarget {
				count++
			}
			if at-arrive > det.ThrA {
				// Candidate RFM: the watcher's coincident sample (both
				// probes unblock together) lands within a burst or two,
				// so a short hold suffices to verify.
				candCount := count
				env.Eng.At(at+ticks.FromNS(400), func(ticks.T) {
					if det.HasCoincident(watcher.Samples, arrive) {
						result = candCount
						done = true
						return
					}
					step() // refresh-induced: resume
				})
				return
			}
			if count >= limit {
				done = true
				return
			}
			env.Eng.At(at, func(ticks.T) { step() })
		})
		if !ok {
			env.RetryAt(step)
		}
	}
	step()
	for !done && env.Eng.Now() < deadline-ticks.FromUS(1) {
		env.Run(env.Eng.Now() + ticks.FromUS(1))
	}
	done = true
	if result >= 0 {
		return result, true
	}
	return count, false
}

// recoverSharedRow drives the shared row to NBO so the resulting ABO
// mitigation resets its counter, restoring the channel's known state after
// a lost symbol.
func recoverSharedRow(env *Env, sender *Hammerer, nbo int, window ticks.T) {
	done := false
	if sender.Active() {
		return
	}
	if err := sender.Hammer(nbo, func() { done = true }); err != nil {
		return
	}
	deadline := env.Eng.Now() + 2*window
	for !done && env.Eng.Now() < deadline {
		env.Run(env.Eng.Now() + ticks.FromUS(2))
	}
}

// rowPool returns n distinct rows starting at base, skipping the excluded row.
func rowPool(base, n, exclude int) []int {
	rows := make([]int, 0, n)
	for r := base; len(rows) < n; r++ {
		if r != exclude {
			rows = append(rows, r)
		}
	}
	return rows
}

func log2(n int) float64 {
	b := 0.0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
