package attack

import (
	"fmt"
	"sort"

	"pracsim/internal/ticks"
)

// SpikeDetector classifies latency samples as mitigation-induced spikes.
//
// Two latency disturbances exist in a PRAC system: RFM blocking (tRFMab,
// 350 ns — the signal) and periodic refresh blocking (tRFC, 410 ns — noise).
// Refreshes are strictly periodic per rank, so a real attacker calibrates
// on an idle interval, learns the refresh phases modulo tREFI, and discards
// spikes landing in those windows. The detector implements exactly that.
type SpikeDetector struct {
	// Threshold: latency above this is a spike.
	Threshold ticks.T

	trefi    ticks.T
	residues []ticks.T // refresh spike phases (sample issue time mod tREFI)
	guard    ticks.T
}

// CalibrateDetector builds a detector from samples taken while no sender
// was active, so every spike present is refresh-induced.
func CalibrateDetector(idle []Sample, trefi ticks.T) (*SpikeDetector, error) {
	if len(idle) == 0 {
		return nil, fmt.Errorf("attack: detector needs calibration samples")
	}
	if trefi <= 0 {
		return nil, fmt.Errorf("attack: tREFI must be positive")
	}
	lats := make([]ticks.T, len(idle))
	for i, s := range idle {
		lats[i] = s.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	baseline := lats[len(lats)/2]
	d := &SpikeDetector{
		Threshold: baseline + ticks.FromNS(250),
		trefi:     trefi,
		guard:     ticks.FromNS(600),
	}
	for _, s := range idle {
		if s.Latency > d.Threshold {
			d.residues = append(d.residues, s.At%trefi)
		}
	}
	return d, nil
}

// IsSpike reports whether the sample's latency exceeds the threshold,
// regardless of cause.
func (d *SpikeDetector) IsSpike(s Sample) bool { return s.Latency > d.Threshold }

// IsSignal reports whether the sample is a spike that does not line up with
// a calibrated refresh phase — i.e. an RFM the victim or sender caused.
func (d *SpikeDetector) IsSignal(s Sample) bool {
	if !d.IsSpike(s) {
		return false
	}
	phase := s.At % d.trefi
	for _, r := range d.residues {
		diff := phase - r
		if diff < 0 {
			diff = -diff
		}
		if diff > d.trefi/2 {
			diff = d.trefi - diff
		}
		if diff <= d.guard {
			return false
		}
	}
	return true
}

// CoincidenceDetector is the robust PRACLeak receiver: two probers running
// in banks of different ranks. A per-rank refresh (tRFC) delays only one
// prober, while an RFMab blocks the whole channel and delays both at the
// same instant — so a coincident spike pair identifies an RFM with no
// residual ambiguity from the refresh schedule.
type CoincidenceDetector struct {
	ThrA, ThrB ticks.T // spike thresholds for each prober
	Window     ticks.T // max issue-time distance of a coincident pair
}

// NewCoincidenceDetector calibrates thresholds from idle samples of both
// probers (median + 250 ns, like the single-prober detector).
func NewCoincidenceDetector(idleA, idleB []Sample) (*CoincidenceDetector, error) {
	thrA, err := spikeThreshold(idleA)
	if err != nil {
		return nil, err
	}
	thrB, err := spikeThreshold(idleB)
	if err != nil {
		return nil, err
	}
	return &CoincidenceDetector{ThrA: thrA, ThrB: thrB, Window: ticks.FromNS(600)}, nil
}

func spikeThreshold(idle []Sample) (ticks.T, error) {
	if len(idle) == 0 {
		return 0, fmt.Errorf("attack: detector needs calibration samples")
	}
	lats := make([]ticks.T, len(idle))
	for i, s := range idle {
		lats[i] = s.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2] + ticks.FromNS(250), nil
}

// FirstCoincident finds the earliest spike in a that has a coincident spike
// in b, scanning only samples at or after from.
func (d *CoincidenceDetector) FirstCoincident(a, b []Sample, from ticks.T) (Sample, bool) {
	for _, sa := range a {
		if sa.At < from || sa.Latency <= d.ThrA {
			continue
		}
		if d.HasCoincident(b, sa.At) {
			return sa, true
		}
	}
	return Sample{}, false
}

// HasCoincident reports whether b contains a spike within Window of at.
func (d *CoincidenceDetector) HasCoincident(b []Sample, at ticks.T) bool {
	lo, hi := at-d.Window, at+d.Window
	for _, sb := range b {
		if sb.At >= lo && sb.At <= hi && sb.Latency > d.ThrB {
			return true
		}
	}
	return false
}
