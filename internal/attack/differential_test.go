package attack

import (
	"reflect"
	"testing"

	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/mitigation"
	"pracsim/internal/sim"
	"pracsim/internal/ticks"
)

// runProbeTrace drives a hammer-then-probe attack trace under the given
// clocking and returns every recorded latency sample — the raw signal all
// PRACLeak attacks decode.
func runProbeTrace(t *testing.T, clock sim.Clocking) []Sample {
	t.Helper()
	dcfg := dram.DefaultConfig(128)
	dcfg.Org.Rows = 1024
	env, err := NewEnvWithClock(dcfg, memctrl.DefaultConfig(), nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	prober, err := NewProber(env, 0, []int{7}, ticks.FromNS(200))
	if err != nil {
		t.Fatal(err)
	}
	hammer, err := NewHammerer(env, 1, 42, []int{43, 44})
	if err != nil {
		t.Fatal(err)
	}
	prober.Start()
	if err := hammer.Hammer(200, nil); err != nil {
		t.Fatal(err)
	}
	env.Run(ticks.FromUS(40))
	prober.Stop()
	return prober.Samples
}

// TestAttackTraceDifferential is the attack-side half of the clocking
// contract: a hammering sender plus a latency prober — the exact request
// pattern whose timing PRACLeak measures, with ABO alerts firing at
// NBO=128 — must observe an identical sample sequence whether the
// controller ticks every cycle or elides its idle windows.
func TestAttackTraceDifferential(t *testing.T) {
	demand := runProbeTrace(t, sim.ClockDemand)
	perCycle := runProbeTrace(t, sim.ClockPerCycle)
	if len(demand) == 0 {
		t.Fatal("attack trace recorded no samples")
	}
	if !reflect.DeepEqual(demand, perCycle) {
		n := len(demand)
		if len(perCycle) < n {
			n = len(perCycle)
		}
		for i := 0; i < n; i++ {
			if demand[i] != perCycle[i] {
				t.Fatalf("sample %d diverges: demand %+v vs per-cycle %+v (lens %d/%d)",
					i, demand[i], perCycle[i], len(demand), len(perCycle))
			}
		}
		t.Fatalf("sample counts diverge: demand %d vs per-cycle %d", len(demand), len(perCycle))
	}
}

// TestQuietPhaseElision pins the attack-side win: a paced prober leaves
// the controller idle most of the time, and the demand clock must skip
// those quiet cycles.
func TestQuietPhaseElision(t *testing.T) {
	dcfg := dram.DefaultConfig(1024)
	dcfg.Org.Rows = 1024
	env, err := NewEnv(dcfg, memctrl.DefaultConfig(), mitigation.NewABOOnly())
	if err != nil {
		t.Fatal(err)
	}
	prober, err := NewProber(env, 0, []int{3}, ticks.FromUS(1)) // 1us pacing: mostly idle
	if err != nil {
		t.Fatal(err)
	}
	prober.Start()
	env.Run(ticks.FromUS(100))
	prober.Stop()
	total := int64(env.Eng.Now() / memctrl.CyclePeriod)
	elided := env.ElidedCycles()
	if elided == 0 {
		t.Fatal("paced probing elided no controller cycles")
	}
	if elided*2 < total {
		t.Errorf("elided %d of %d controller cycles, want at least half on a paced probe", elided, total)
	}
}
