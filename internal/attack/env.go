// Package attack implements the PRACLeak attacks of Sections 3.1–3.3:
// latency probing, the activity-based and activation-count-based covert
// channels, and the chosen-plaintext AES T-table side channel. It drives
// the memory controller directly with request streams, mirroring the
// paper's Ramulator2 trace methodology (caches are bypassed because the
// attacker flushes shared lines).
package attack

import (
	"fmt"

	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/mitigation"
	"pracsim/internal/sim"
	"pracsim/internal/ticks"
)

// Env is a memory-only simulation environment: engine + controller + DRAM.
type Env struct {
	Eng    *sim.Engine
	Ctrl   *memctrl.Controller
	Mod    *dram.Module
	mapper memctrl.AddressMapper
	clock  *sim.ControllerClock
}

// NewEnv wires an environment with the given device config and policy.
// A nil policy means ABO-Only (the JEDEC default the attacks target).
// The controller runs demand-clocked: the long quiet phases the attacks
// measure (pacing gaps, refresh windows, backoff intervals) are skipped
// instead of ticked through, with bit-identical timing — see
// NewEnvWithClock and the differential tests.
func NewEnv(dcfg dram.Config, ccfg memctrl.Config, policy mitigation.Policy) (*Env, error) {
	return NewEnvWithClock(dcfg, ccfg, policy, sim.ClockDemand)
}

// NewEnvWithClock is NewEnv with an explicit clocking model, for
// differential tests that pin demand-clocked attacks against the
// per-cycle reference.
func NewEnvWithClock(dcfg dram.Config, ccfg memctrl.Config, policy mitigation.Policy, clock sim.Clocking) (*Env, error) {
	if policy == nil {
		policy = mitigation.NewABOOnly()
	}
	mod, err := dram.New(dcfg)
	if err != nil {
		return nil, err
	}
	// The linear mapper gives attack code direct bank/row placement,
	// matching how attack papers reason about physical addresses.
	mapper, err := memctrl.NewLinearMapper(dcfg.Org)
	if err != nil {
		return nil, err
	}
	ctrl, err := memctrl.New(ccfg, mod, mapper, policy)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	cc := sim.NewControllerClock(eng, ctrl, nil, clock)
	return &Env{Eng: eng, Ctrl: ctrl, Mod: mod, mapper: mapper, clock: cc}, nil
}

// ElidedCycles reports how many controller cycles demand-driven clocking
// has skipped so far — attack-side elision telemetry.
func (e *Env) ElidedCycles() int64 { return e.clock.Elided(e.Eng.Now()) }

// RetryAt schedules fn at the first instant a memory access refused now
// can usefully be retried: the controller's next grid slot. Queue
// capacity only frees when the controller ticks, so retries between
// slots are provably futile — the attack pumps (Prober, Hammerer, the
// covert and side-channel chains) defer refused accesses here instead of
// spinning a per-cycle loop, mirroring the cores' SetRetrySlot hook.
// Retry times are a pure function of engine time, so both clockings
// produce the same schedule (pinned by the differential tests).
func (e *Env) RetryAt(fn func()) {
	e.Eng.At(e.clock.RetrySlot(e.Eng.Now()), func(ticks.T) { fn() })
}

// Line returns the cache-line address of (bank, row, col).
func (e *Env) Line(bank, row, col int) uint64 {
	return e.mapper.Encode(memctrl.Loc{Bank: bank, Row: row, Col: col})
}

// Read enqueues a read; done receives the data-return time. It reports
// false if the controller queue is full.
func (e *Env) Read(bank, row, col int, done func(at ticks.T)) bool {
	return e.Ctrl.Enqueue(&memctrl.Request{
		Line:       e.Line(bank, row, col),
		OnComplete: done,
	}, e.Eng.Now())
}

// Run advances the environment to the given absolute time.
func (e *Env) Run(until ticks.T) { e.Eng.Run(until) }

// Sample is one latency measurement taken by a prober.
type Sample struct {
	At      ticks.T // request issue time
	Latency ticks.T
	Row     int // row probed
}

// Prober repeatedly reads rows of one bank and records access latencies —
// the receiver side of every PRACLeak attack. With a single row it probes
// open-page style (row hits, no activation-count growth); with several rows
// it cycles through them, generating one activation per access.
type Prober struct {
	env   *Env
	bank  int
	rows  []int
	idx   int
	gap   ticks.T
	stop  bool
	onOdd func(s Sample) // optional per-sample hook

	Samples []Sample
	// PerRowIssued counts probe reads issued per probed row index.
	PerRowIssued map[int]int
}

// NewProber builds a prober over the given rows of a bank. gap adds pacing
// between consecutive probes (0 = back-to-back).
func NewProber(env *Env, bank int, rows []int, gap ticks.T) (*Prober, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("attack: prober needs at least one row")
	}
	return &Prober{
		env:          env,
		bank:         bank,
		rows:         rows,
		gap:          gap,
		PerRowIssued: make(map[int]int),
	}, nil
}

// OnSample registers a hook invoked for every recorded sample.
func (p *Prober) OnSample(fn func(s Sample)) { p.onOdd = fn }

// Start begins probing; it keeps exactly one request in flight.
func (p *Prober) Start() {
	p.stop = false
	p.issueNext()
}

// Stop halts probing after the in-flight request completes.
func (p *Prober) Stop() { p.stop = true }

func (p *Prober) issueNext() {
	if p.stop {
		return
	}
	row := p.rows[p.idx%len(p.rows)]
	p.idx++
	arrive := p.env.Eng.Now()
	ok := p.env.Read(p.bank, row, 0, func(at ticks.T) {
		s := Sample{At: arrive, Latency: at - arrive, Row: row}
		p.Samples = append(p.Samples, s)
		p.PerRowIssued[row]++
		if p.onOdd != nil {
			p.onOdd(s)
		}
		p.env.Eng.At(at+p.gap, func(ticks.T) { p.issueNext() })
	})
	if !ok {
		p.env.RetryAt(p.issueNext)
	}
}

// Hammerer generates activations on a target row by alternating reads with
// decoy rows in the same bank (guaranteed row-buffer conflicts) — the
// sender side of the attacks. Requests chain at column-command issue time,
// so the PRE/ACT turnaround overlaps the data burst and the activation rate
// stays close to the tRC limit, as in a real hammering loop.
type Hammerer struct {
	env    *Env
	bank   int
	target int
	decoys []int
	di     int

	// TargetReads counts target-row reads the controller has serviced;
	// each is one activation (the following decoy access closes the row).
	TargetReads int

	seq         []int // remaining rows to issue, alternating target/decoy
	seqIsTarget []bool
	seqIdx      int
	onDone      func()
	active      bool
}

// NewHammerer builds a hammerer for (bank, target) using the given decoys.
func NewHammerer(env *Env, bank, target int, decoys []int) (*Hammerer, error) {
	if len(decoys) == 0 {
		return nil, fmt.Errorf("attack: hammerer needs at least one decoy row")
	}
	for _, d := range decoys {
		if d == target {
			return nil, fmt.Errorf("attack: decoy row %d equals target", d)
		}
	}
	return &Hammerer{env: env, bank: bank, target: target, decoys: decoys}, nil
}

// Hammer performs n target activations, then calls onDone (which may be
// nil). It must not be called while a previous hammer is active.
func (h *Hammerer) Hammer(n int, onDone func()) error {
	if h.active {
		return fmt.Errorf("attack: hammerer already active")
	}
	if n <= 0 {
		if onDone != nil {
			onDone()
		}
		return nil
	}
	// Alternate target/decoy, ending with a decoy so the final target
	// activation is closed (and counted by PRAC).
	h.seq = h.seq[:0]
	h.seqIsTarget = h.seqIsTarget[:0]
	for i := 0; i < n; i++ {
		h.seq = append(h.seq, h.target)
		h.seqIsTarget = append(h.seqIsTarget, true)
		h.seq = append(h.seq, h.decoys[h.di%len(h.decoys)])
		h.seqIsTarget = append(h.seqIsTarget, false)
		h.di++
	}
	h.seqIdx = 0
	h.active = true
	h.onDone = onDone
	h.pump()
	return nil
}

// Active reports whether a hammer run is in progress.
func (h *Hammerer) Active() bool { return h.active }

// pump keeps exactly one request in flight, chaining the next one at the
// moment the previous column command issues (not at data return): strict
// alternation is preserved — a second queued request to the still-open row
// would be served as a row hit by FR-FCFS and skip the activation — while
// the PRE/ACT turnaround still overlaps the data burst.
func (h *Hammerer) pump() {
	if h.seqIdx >= len(h.seq) {
		return
	}
	row := h.seq[h.seqIdx]
	isTarget := h.seqIsTarget[h.seqIdx]
	ok := h.env.Read(h.bank, row, 0, func(ticks.T) {
		if isTarget {
			h.TargetReads++
		}
		if h.seqIdx >= len(h.seq) {
			h.active = false
			if h.onDone != nil {
				h.onDone()
			}
			return
		}
		h.pump()
	})
	if !ok {
		h.env.RetryAt(h.pump)
		return
	}
	h.seqIdx++
}
