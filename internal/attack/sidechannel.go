package attack

import (
	"fmt"
	"math/rand"

	"pracsim/internal/aes"
	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

// AESConfig parameterizes the PRACLeak side-channel attack on a T-table
// AES victim (Section 3.3).
type AESConfig struct {
	Key         []byte // the victim's secret key (16 bytes)
	TargetByte  int    // which key byte to attack (0..15)
	Plaintext   byte   // fixed plaintext byte at TargetByte
	Encryptions int    // victim encryptions before probing (paper: 200)
	NBO         int    // Back-Off threshold (paper's attack demo: 256)
	Seed        int64  // randomness for the non-fixed plaintext bytes

	// Defense, when non-nil, installs an RFM policy (e.g. TPRAC) so the
	// same attack can be re-run against the defended system (Figure 9).
	Defense func() (mitigation.Policy, error)

	// TimelineRes, when positive, samples per-row activation counters at
	// this period for Figure 4's timeline panels.
	TimelineRes ticks.T
}

// TimelinePoint is one Figure 4 sample: activation counts at an instant.
type TimelinePoint struct {
	At         ticks.T
	TargetActs uint32 // activation counter of the victim's hot row
	MaxOther   uint32 // highest counter among the other 15 rows
	RFMs       int64
}

// AESResult reports one attack instance.
type AESResult struct {
	VictimRowActs  [aes.CacheLinesPerTable]uint32 // per-row victim activations (Fig 5a)
	SpikeRow       int                            // row probed when the first RFM hit (Fig 9)
	AttackerCount  int                            // attacker activations to SpikeRow (Fig 5b)
	RecoveredRow   int                            // row attributed to the victim's hot line
	TrueRow        int                            // ground truth: (p XOR k) >> 4
	RecoveredNib   int                            // recovered top nibble of the key byte
	TrueNib        int                            // ground truth nibble
	Hit            bool
	Samples        []Sample
	Timeline       []TimelinePoint
	ABORFMs        int64
	TotalRFMs      int64
	ProbeRowsOrder []int
}

// victimBank is where the T-tables live. Each of the 4 tables spans 16
// cache lines and each line maps to a distinct DRAM row (the paper's
// co-location setup: rows larger than a page / MOP striping), so the
// victim's first round touches rows 0..63 and the attacker monitors the
// 16 rows of the table its target byte indexes.
const victimBank = 2

// tableRow maps a first-round access to its DRAM row.
func tableRow(table, line int) int { return table*aes.CacheLinesPerTable + line }

// RunAESAttackVoted runs the attack `votes` times with derived seeds and
// attributes the hot row by majority, the standard way chosen-plaintext
// attackers absorb residual measurement jitter (each instance costs well
// under a millisecond of victim time). The returned result is the first
// instance that voted with the majority, with Hit and the recovered nibble
// recomputed from the majority row.
func RunAESAttackVoted(cfg AESConfig, votes int) (AESResult, error) {
	if votes <= 1 {
		return RunAESAttack(cfg)
	}
	counts := map[int]int{}
	results := make(map[int]AESResult)
	for i := 0; i < votes; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1009
		r, err := RunAESAttack(c)
		if err != nil {
			return r, err
		}
		counts[r.RecoveredRow]++
		if _, ok := results[r.RecoveredRow]; !ok {
			results[r.RecoveredRow] = r
		}
	}
	bestRow, bestN := 0, 0
	for row, n := range counts {
		if n > bestN {
			bestRow, bestN = row, n
		}
	}
	res := results[bestRow]
	res.RecoveredRow = bestRow
	table := cfg.TargetByte % 4
	res.RecoveredNib = (bestRow - table*aes.CacheLinesPerTable) ^ int(cfg.Plaintext>>4)
	res.Hit = bestRow == res.TrueRow
	return res, nil
}

// RunAESAttack executes one attack instance: the victim encrypts
// attacker-chosen plaintexts while its T-table lines are flushed (so every
// first-round lookup reaches DRAM), then the attacker probes the 16 rows
// round-robin until an RFM-induced spike reveals the hottest row.
func RunAESAttack(cfg AESConfig) (AESResult, error) {
	if len(cfg.Key) != aes.KeySize {
		return AESResult{}, fmt.Errorf("attack: key must be %d bytes", aes.KeySize)
	}
	if cfg.TargetByte < 0 || cfg.TargetByte >= aes.BlockSize {
		return AESResult{}, fmt.Errorf("attack: target byte %d out of range", cfg.TargetByte)
	}
	if cfg.Encryptions <= 0 || cfg.NBO <= 0 {
		return AESResult{}, fmt.Errorf("attack: encryptions and NBO must be positive")
	}

	dcfg := dram.DefaultConfig(cfg.NBO)
	var policy mitigation.Policy
	if cfg.Defense != nil {
		p, err := cfg.Defense()
		if err != nil {
			return AESResult{}, err
		}
		policy = p
	}
	env, err := NewEnv(dcfg, memctrl.DefaultConfig(), policy)
	if err != nil {
		return AESResult{}, err
	}

	cipher, err := aes.NewCipher(cfg.Key)
	if err != nil {
		return AESResult{}, err
	}

	table := cfg.TargetByte % 4 // byte i feeds T-table (i mod 4) in round 1
	res := AESResult{
		TrueRow: tableRow(table, int(cfg.Plaintext^cfg.Key[cfg.TargetByte])>>4),
		TrueNib: int(cfg.Key[cfg.TargetByte]) >> 4,
	}

	if cfg.TimelineRes > 0 {
		env.Eng.AddTicker(cfg.TimelineRes, 0, func(now ticks.T) {
			pt := TimelinePoint{
				At:         now,
				TargetActs: env.Mod.RowCounter(victimBank, res.TrueRow),
				RFMs:       env.Mod.Stats().RFMs,
			}
			for l := 0; l < aes.CacheLinesPerTable; l++ {
				r := tableRow(table, l)
				if r == res.TrueRow {
					continue
				}
				if c := env.Mod.RowCounter(victimBank, r); c > pt.MaxOther {
					pt.MaxOther = c
				}
			}
			res.Timeline = append(res.Timeline, pt)
		})
	}

	// Spike-threshold calibration before any victim activity. The probe
	// bank (rank 0) and watcher bank (rank 1) sit in different ranks so
	// the coincidence detector can separate RFMs from per-rank refresh.
	watcher, err := NewProber(env, 37, []int{1}, 0)
	if err != nil {
		return AESResult{}, err
	}
	watcher.Start()
	calib, err := NewProber(env, 9, []int{1}, 0)
	if err != nil {
		return AESResult{}, err
	}
	calib.Start()
	env.Run(ticks.FromUS(40))
	calib.Stop()
	detector, err := NewCoincidenceDetector(calib.Samples, watcher.Samples)
	if err != nil {
		return AESResult{}, err
	}

	// Phase 1: the victim encrypts; every first-round T-table lookup
	// becomes a DRAM access to row (index >> 4) because the attacker
	// flushes the lines in parallel.
	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := runVictim(env, cipher, cfg, rng); err != nil {
		return AESResult{}, err
	}
	for l := 0; l < aes.CacheLinesPerTable; l++ {
		res.VictimRowActs[l] = env.Mod.RowCounter(victimBank, tableRow(table, l))
	}

	// Phase 2: the attacker probes the target table's 16 rows
	// round-robin, one activation each, until an RFM appears: a probe
	// spike coincident with a watcher spike in the other rank. Under
	// TPRAC the first such RFM is a TB-RFM whose timing is unrelated to
	// the probing, so the attributed row is noise (Figure 9b).
	spikeRow, spikeCount, order, samples, err := probeRoundRobin(env, watcher, detector, table, cfg.NBO)
	watcher.Stop()
	res.Samples = samples
	res.ProbeRowsOrder = order
	if err != nil {
		return res, err
	}
	res.SpikeRow = spikeRow
	res.AttackerCount = spikeCount

	// Attribution: the ABOACT allowance lets the controller issue up to
	// three more activations between the Alert and the RFM block, so the
	// row whose access observed the spike trails the triggering row by a
	// small constant. The attacker compensates by stepping back to the
	// probe that crossed the threshold.
	res.RecoveredRow = spikeRow
	res.RecoveredNib = (res.RecoveredRow - table*aes.CacheLinesPerTable) ^ int(cfg.Plaintext>>4)
	res.Hit = res.RecoveredRow == res.TrueRow
	res.ABORFMs = env.Ctrl.Stats().ABORFMs
	res.TotalRFMs = env.Mod.Stats().RFMs
	return res, nil
}

// runVictim performs the encryptions, issuing the 16 first-round accesses
// of each encryption as chained DRAM reads.
func runVictim(env *Env, cipher *aes.Cipher, cfg AESConfig, rng *rand.Rand) error {
	pt := make([]byte, aes.BlockSize)
	for enc := 0; enc < cfg.Encryptions; enc++ {
		rng.Read(pt)
		pt[cfg.TargetByte] = cfg.Plaintext
		accs, err := cipher.FirstRoundAccesses(pt)
		if err != nil {
			return err
		}
		done := false
		issueChain(env, accs, 0, &done)
		deadline := env.Eng.Now() + ticks.FromUS(40)
		for !done && env.Eng.Now() < deadline {
			env.Run(env.Eng.Now() + ticks.FromUS(1))
		}
		if !done {
			return fmt.Errorf("attack: victim encryption %d stalled", enc)
		}
	}
	return nil
}

func issueChain(env *Env, accs []aes.FirstRoundAccess, i int, done *bool) {
	if i >= len(accs) {
		*done = true
		return
	}
	row := tableRow(accs[i].Table, accs[i].Line())
	ok := env.Read(victimBank, row, 0, func(at ticks.T) {
		env.Eng.At(at, func(ticks.T) { issueChain(env, accs, i+1, done) })
	})
	if !ok {
		env.RetryAt(func() { issueChain(env, accs, i, done) })
	}
}

// probeShift is how many probes the observed RFM block trails the probe
// that pushed the hot row across NBO: the crossing is detected at the
// following probe's precharge, and the tABOACT window then admits a few
// more activations before the controller issues the RFM. The value is a
// deterministic property of the probing loop's pacing against the 180 ns
// allowance and is calibrated once per system configuration
// (TestProbeShiftCalibration pins it).
const probeShift = 3

// probeRoundRobin activates the target table's 16 rows cyclically,
// recording every probe's latency; it stops once a probe spike is confirmed
// coincident with a watcher spike (an RFM), and returns the row whose probe
// crossed the Back-Off threshold, the number of probes that row had
// received, the probing order and all samples.
func probeRoundRobin(env *Env, watcher *Prober, det *CoincidenceDetector, table, nbo int) (row, count int, order []int, samples []Sample, err error) {
	perRow := make([]int, aes.CacheLinesPerTable)
	rowAt := make([]int, 0, 1024) // probed line per sample index
	cntAt := make([]int, 0, 1024) // perRow count of that line at that sample
	finished := false
	idx := 0
	var step func()
	step = func() {
		if finished {
			return
		}
		line := idx % aes.CacheLinesPerTable
		idx++
		arrive := env.Eng.Now()
		ok := env.Read(victimBank, tableRow(table, line), 0, func(at ticks.T) {
			perRow[line]++
			order = append(order, tableRow(table, line))
			samples = append(samples, Sample{At: arrive, Latency: at - arrive, Row: tableRow(table, line)})
			rowAt = append(rowAt, line)
			cntAt = append(cntAt, perRow[line])
			// Stop probing shortly after a raw spike so the offline
			// coincidence check has watcher samples past it.
			if at-arrive > det.ThrA && len(samples) > 8 {
				env.Eng.After(ticks.FromUS(3), func(ticks.T) { finished = true })
			}
			// Chain at column-command issue (now), not at data return:
			// the ~57ns activation cadence keeps three probes inside
			// the 180ns tABOACT window, so the ACT allowance — not the
			// deadline — bounds the Alert-to-RFM distance and the
			// probe-index shift stays deterministic.
			step()
		})
		if !ok {
			env.RetryAt(step)
		}
	}
	step()
	// Upper bound: every row may need up to NBO activations.
	deadline := env.Eng.Now() + ticks.T(16*(nbo+16))*ticks.FromNS(120) + ticks.FromUS(200)
	spikeIdx := -1
	for env.Eng.Now() < deadline {
		env.Run(env.Eng.Now() + ticks.FromUS(2))
		for i := range samples {
			if samples[i].Latency > det.ThrA && det.HasCoincident(watcher.Samples, samples[i].At) {
				spikeIdx = i
				break
			}
		}
		if spikeIdx >= 0 {
			break
		}
		if finished { // raw spike seen but not confirmed: resume probing
			finished = false
			step()
		}
	}
	finished = true
	if spikeIdx < 0 {
		return 0, 0, order, samples, fmt.Errorf("attack: no RFM observed while probing")
	}
	trigIdx := spikeIdx - probeShift
	if trigIdx < 0 {
		trigIdx = 0
	}
	return tableRow(table, rowAt[trigIdx]), cntAt[trigIdx], order, samples, nil
}
