// Package cache implements the simulated cache hierarchy: set-associative
// caches with LRU or SRRIP replacement, MSHR-based miss handling with miss
// merging, write-back/write-allocate semantics, and an IP-stride prefetcher.
//
// Timing is functional: a lookup either completes at a computed future time
// (hit) or turns into a fetch from the next level whose completion time
// flows back through callbacks. All levels are single-threaded, driven by
// the core/engine clock.
package cache

import (
	"fmt"

	"pracsim/internal/ticks"
)

// Fetcher is anything that can supply cache lines: a lower cache level or
// the memory-controller adapter.
type Fetcher interface {
	// Fetch requests a line; done runs when data is available, with the
	// completion time. It reports false if the request cannot be
	// accepted right now (MSHRs or queues full) — the caller must retry.
	Fetch(line uint64, now ticks.T, done func(at ticks.T)) bool

	// WriteBack hands a dirty line downstream. It reports false if the
	// request cannot be accepted right now.
	WriteBack(line uint64, now ticks.T) bool
}

// ReplKind selects the replacement policy.
type ReplKind int

const (
	// LRU evicts the least recently used way.
	LRU ReplKind = iota
	// SRRIP is static re-reference interval prediction (Jaleel et al.,
	// ISCA'10), the paper's LLC policy.
	SRRIP
)

// Config describes one cache level.
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency ticks.T // lookup latency added on the hit path
	Repl    ReplKind
	MSHRs   int
}

// KB is a convenience for sizing caches in bytes.
const KB = 1024

// SetsFor computes the set count for a capacity/associativity/line size.
func SetsFor(capacityBytes, ways, lineBytes int) int {
	return capacityBytes / (ways * lineBytes)
}

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	MSHRMerges int64
	Writebacks int64
	Prefetches int64
	Stalls     int64 // rejected accesses (MSHR/downstream full)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
	rrpv  uint8
}

type mshr struct {
	line    uint64
	waiters []func(at ticks.T)
	write   bool // at least one merged request was a store
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg  Config
	sets [][]line
	next Fetcher

	mshrs   map[uint64]*mshr
	lruTick uint64

	prefetcher *IPStride

	stats Stats
}

const srripMax = 3 // 2-bit RRPV

// New builds a cache level over the given downstream fetcher.
func New(cfg Config, next Fetcher) (*Cache, error) {
	switch {
	case next == nil:
		return nil, fmt.Errorf("cache %s: downstream fetcher required", cfg.Name)
	case cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0:
		return nil, fmt.Errorf("cache %s: sets (%d) must be a positive power of two", cfg.Name, cfg.Sets)
	case cfg.Ways <= 0:
		return nil, fmt.Errorf("cache %s: ways must be positive", cfg.Name)
	case cfg.MSHRs <= 0:
		return nil, fmt.Errorf("cache %s: MSHRs must be positive", cfg.Name)
	case cfg.Latency < 0:
		return nil, fmt.Errorf("cache %s: negative latency", cfg.Name)
	}
	sets := make([][]line, cfg.Sets)
	backing := make([]line, cfg.Sets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		next:  next,
		mshrs: make(map[uint64]*mshr, cfg.MSHRs),
	}, nil
}

// AttachIPStride enables an IP-stride prefetcher on this level.
func (c *Cache) AttachIPStride(tableSize, degree int) error {
	p, err := NewIPStride(tableSize, degree)
	if err != nil {
		return err
	}
	c.prefetcher = p
	return nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// InFlight reports how many MSHRs are occupied by outstanding fetches.
func (c *Cache) InFlight() int { return len(c.mshrs) }

// NextWork implements the demand-driven clocking protocol for the cache
// hierarchy: caches are purely reactive — every lookup, fill and
// writeback runs inside the caller's cycle, and completions are delivered
// through callbacks — so a cache never schedules work of its own and is
// always quiescent from the clock's point of view. Outstanding MSHRs
// (see InFlight) are the downstream clock domain's work, not this one's.
func (c *Cache) NextWork(ticks.T) ticks.T { return ticks.Never }

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setOf(lineAddr uint64) []line { return c.sets[lineAddr&uint64(c.cfg.Sets-1)] }
func (c *Cache) tagOf(lineAddr uint64) uint64 { return lineAddr >> uintLog2(c.cfg.Sets) }

func uintLog2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// Access performs a demand access from above (core or upper level). pc is
// the accessing instruction's address, used by the prefetcher. It reports
// false if the access cannot be accepted right now.
func (c *Cache) Access(lineAddr uint64, write bool, pc uint64, now ticks.T, done func(at ticks.T)) bool {
	ok := c.access(lineAddr, write, now, done, false)
	if ok && c.prefetcher != nil {
		for _, target := range c.prefetcher.Observe(pc, lineAddr) {
			if c.access(target, false, now, nil, true) {
				c.stats.Prefetches++
			}
		}
	}
	return ok
}

func (c *Cache) access(lineAddr uint64, write bool, now ticks.T, done func(at ticks.T), prefetch bool) bool {
	set := c.setOf(lineAddr)
	tag := c.tagOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.touch(&set[i])
			if write {
				set[i].dirty = true
			}
			if !prefetch {
				c.stats.Hits++
			}
			if done != nil {
				done(now + c.cfg.Latency)
			}
			return true
		}
	}
	if prefetch {
		// Prefetches are best-effort: drop rather than stall.
		if len(c.mshrs) >= c.cfg.MSHRs {
			return false
		}
		if _, pending := c.mshrs[lineAddr]; pending {
			return false
		}
	}
	// Miss: merge into an existing MSHR if the line is already in flight.
	if m, pending := c.mshrs[lineAddr]; pending {
		if done != nil {
			m.waiters = append(m.waiters, done)
		}
		m.write = m.write || write
		if !prefetch {
			c.stats.Misses++
			c.stats.MSHRMerges++
		}
		return true
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.stats.Stalls++
		return false
	}
	m := &mshr{line: lineAddr, write: write}
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	// Register before fetching: a downstream hit may complete (and fill)
	// synchronously, and fill must find the MSHR it is retiring.
	c.mshrs[lineAddr] = m
	accepted := c.next.Fetch(lineAddr, now+c.cfg.Latency, func(at ticks.T) {
		c.fill(lineAddr, m, at)
	})
	if !accepted {
		delete(c.mshrs, lineAddr)
		c.stats.Stalls++
		return false
	}
	if !prefetch {
		c.stats.Misses++
	}
	return true
}

// fill installs a fetched line, evicting (and writing back) as needed, then
// wakes all merged waiters.
func (c *Cache) fill(lineAddr uint64, m *mshr, at ticks.T) {
	delete(c.mshrs, lineAddr)
	set := c.setOf(lineAddr)
	victim := c.pickVictim(set)
	if victim.valid && victim.dirty {
		// The victim shares the incoming line's set index.
		victimAddr := victim.tag<<uintLog2(c.cfg.Sets) | (lineAddr & uint64(c.cfg.Sets-1))
		if !c.next.WriteBack(victimAddr, at) {
			// Caches always accept writebacks and the MC adapter
			// buffers them, so a refusal is a wiring bug, not a
			// runtime condition to absorb.
			panic(fmt.Sprintf("cache %s: writeback refused by downstream", c.cfg.Name))
		}
		c.stats.Writebacks++
	}
	victim.valid = true
	victim.dirty = m.write
	victim.tag = c.tagOf(lineAddr)
	c.insertMeta(victim)
	for _, w := range m.waiters {
		w(at + c.cfg.Latency)
	}
}

// touch updates replacement metadata on a hit.
func (c *Cache) touch(l *line) {
	switch c.cfg.Repl {
	case LRU:
		c.lruTick++
		l.lru = c.lruTick
	case SRRIP:
		l.rrpv = 0
	}
}

// insertMeta initializes replacement metadata on fill.
func (c *Cache) insertMeta(l *line) {
	switch c.cfg.Repl {
	case LRU:
		c.lruTick++
		l.lru = c.lruTick
	case SRRIP:
		l.rrpv = srripMax - 1 // long re-reference prediction on insert
	}
}

// pickVictim chooses the way to replace in a set.
func (c *Cache) pickVictim(set []line) *line {
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
	}
	switch c.cfg.Repl {
	case LRU:
		victim := &set[0]
		for i := 1; i < len(set); i++ {
			if set[i].lru < victim.lru {
				victim = &set[i]
			}
		}
		return victim
	case SRRIP:
		for {
			for i := range set {
				if set[i].rrpv >= srripMax {
					return &set[i]
				}
			}
			for i := range set {
				set[i].rrpv++
			}
		}
	default:
		panic("cache: unknown replacement policy")
	}
}

// Fetch implements Fetcher, letting caches stack: an upper level's miss is
// a demand access here without prefetcher involvement.
func (c *Cache) Fetch(lineAddr uint64, now ticks.T, done func(at ticks.T)) bool {
	return c.access(lineAddr, false, now, done, false)
}

// WriteBack implements Fetcher: a dirty line arriving from above is
// installed dirty (allocating if needed). Writebacks are accepted
// unconditionally; if the line must be fetched space, it is installed
// without a downstream read since the data arrives complete.
func (c *Cache) WriteBack(lineAddr uint64, now ticks.T) bool {
	set := c.setOf(lineAddr)
	tag := c.tagOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			c.touch(&set[i])
			return true
		}
	}
	victim := c.pickVictim(set)
	if victim.valid && victim.dirty {
		victimAddr := victim.tag<<uintLog2(c.cfg.Sets) | (lineAddr & uint64(c.cfg.Sets-1))
		if !c.next.WriteBack(victimAddr, now) {
			panic(fmt.Sprintf("cache %s: writeback refused by downstream", c.cfg.Name))
		}
		c.stats.Writebacks++
	}
	victim.valid = true
	victim.dirty = true
	victim.tag = tag
	c.insertMeta(victim)
	return true
}
