package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pracsim/internal/ticks"
)

// fakeMem is a downstream Fetcher with fixed latency.
type fakeMem struct {
	latency    ticks.T
	fetches    []uint64
	writebacks []uint64
	refuse     bool
}

func (f *fakeMem) Fetch(line uint64, now ticks.T, done func(ticks.T)) bool {
	if f.refuse {
		return false
	}
	f.fetches = append(f.fetches, line)
	done(now + f.latency)
	return true
}

func (f *fakeMem) WriteBack(line uint64, now ticks.T) bool {
	if f.refuse {
		return false
	}
	f.writebacks = append(f.writebacks, line)
	return true
}

func smallCache(t *testing.T, repl ReplKind, next Fetcher) *Cache {
	t.Helper()
	c, err := New(Config{Name: "test", Sets: 4, Ways: 2, Latency: 20, Repl: repl, MSHRs: 4}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMissThenHit(t *testing.T) {
	mem := &fakeMem{latency: 400}
	c := smallCache(t, LRU, mem)
	var first, second ticks.T
	if !c.Access(100, false, 0, 0, func(at ticks.T) { first = at }) {
		t.Fatal("access refused")
	}
	if first != 20+400+20 {
		t.Fatalf("miss completion = %v, want lookup+mem+fill = 440", first)
	}
	if !c.Access(100, false, 0, first, func(at ticks.T) { second = at }) {
		t.Fatal("access refused")
	}
	if second != first+20 {
		t.Fatalf("hit completion = %v, want %v", second, first+20)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", s.Hits, s.Misses)
	}
	if len(mem.fetches) != 1 {
		t.Fatalf("memory fetches = %d, want 1", len(mem.fetches))
	}
}

func TestMSHRMerging(t *testing.T) {
	mem := &fakeMem{latency: 400}
	// Delay the fill so both accesses overlap: use a manual fill control.
	var fill func(ticks.T)
	manual := &manualMem{onFetch: func(line uint64, now ticks.T, done func(ticks.T)) bool {
		fill = done
		return true
	}}
	c := smallCache(t, LRU, manual)
	done1, done2 := ticks.T(0), ticks.T(0)
	c.Access(7, false, 0, 0, func(at ticks.T) { done1 = at })
	c.Access(7, false, 0, 1, func(at ticks.T) { done2 = at })
	if got := c.Stats().MSHRMerges; got != 1 {
		t.Fatalf("MSHRMerges = %d, want 1", got)
	}
	if len(manual.fetched) != 1 {
		t.Fatalf("downstream fetches = %d, want 1 (merged)", len(manual.fetched))
	}
	fill(500)
	if done1 == 0 || done2 == 0 {
		t.Fatal("merged waiters not woken on fill")
	}
	_ = mem
}

type manualMem struct {
	onFetch func(uint64, ticks.T, func(ticks.T)) bool
	fetched []uint64
	wbs     []uint64
}

func (m *manualMem) Fetch(line uint64, now ticks.T, done func(ticks.T)) bool {
	ok := m.onFetch(line, now, done)
	if ok {
		m.fetched = append(m.fetched, line)
	}
	return ok
}
func (m *manualMem) WriteBack(line uint64, now ticks.T) bool {
	m.wbs = append(m.wbs, line)
	return true
}

func TestMSHRLimitStalls(t *testing.T) {
	manual := &manualMem{onFetch: func(uint64, ticks.T, func(ticks.T)) bool { return true }}
	c, err := New(Config{Name: "t", Sets: 4, Ways: 2, Latency: 1, Repl: LRU, MSHRs: 2}, manual)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Access(1, false, 0, 0, func(ticks.T) {}) {
		t.Fatal("first miss refused")
	}
	if !c.Access(2, false, 0, 0, func(ticks.T) {}) {
		t.Fatal("second miss refused")
	}
	if c.Access(3, false, 0, 0, func(ticks.T) {}) {
		t.Fatal("third miss accepted beyond MSHR limit")
	}
	if c.Stats().Stalls == 0 {
		t.Fatal("stall not counted")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	mem := &fakeMem{latency: 10}
	c := smallCache(t, LRU, mem) // 4 sets, 2 ways
	// Three lines mapping to set 0: 0, 4, 8 (sets=4).
	c.Access(0, true, 0, 0, func(ticks.T) {}) // dirty
	c.Access(4, false, 0, 100, func(ticks.T) {})
	c.Access(8, false, 0, 200, func(ticks.T) {}) // evicts line 0 (LRU, dirty)
	if len(mem.writebacks) != 1 || mem.writebacks[0] != 0 {
		t.Fatalf("writebacks = %v, want [0]", mem.writebacks)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("Writebacks stat = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	mem := &fakeMem{latency: 10}
	c := smallCache(t, LRU, mem)
	c.Access(0, false, 0, 0, func(ticks.T) {})
	c.Access(4, false, 0, 100, func(ticks.T) {})
	c.Access(8, false, 0, 200, func(ticks.T) {})
	if len(mem.writebacks) != 0 {
		t.Fatalf("clean eviction produced writebacks: %v", mem.writebacks)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	mem := &fakeMem{latency: 10}
	c := smallCache(t, LRU, mem)
	c.Access(0, false, 0, 0, func(ticks.T) {})
	c.Access(4, false, 0, 100, func(ticks.T) {})
	c.Access(0, false, 0, 200, func(ticks.T) {}) // refresh line 0
	c.Access(8, false, 0, 300, func(ticks.T) {}) // must evict 4, not 0
	hitsBefore := c.Stats().Hits
	c.Access(0, false, 0, 400, func(ticks.T) {})
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatal("line 0 evicted despite recent use")
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	mem := &fakeMem{latency: 10}
	c := smallCache(t, SRRIP, mem)
	c.Access(0, false, 0, 0, func(ticks.T) {})
	c.Access(4, false, 0, 100, func(ticks.T) {})
	c.Access(0, false, 0, 200, func(ticks.T) {}) // rrpv(0) -> 0
	c.Access(8, false, 0, 300, func(ticks.T) {}) // should evict 4 (rrpv 2)
	hitsBefore := c.Stats().Hits
	c.Access(0, false, 0, 400, func(ticks.T) {})
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatal("SRRIP evicted the re-referenced line")
	}
}

func TestWriteAllocate(t *testing.T) {
	mem := &fakeMem{latency: 10}
	c := smallCache(t, LRU, mem)
	done := ticks.T(0)
	c.Access(3, true, 0, 0, func(at ticks.T) { done = at })
	if done == 0 {
		t.Fatal("write miss never completed")
	}
	if len(mem.fetches) != 1 {
		t.Fatalf("write miss fetches = %d, want 1 (write-allocate)", len(mem.fetches))
	}
	// Evict it: must write back because the fill was for a store.
	c.Access(7, false, 0, 100, func(ticks.T) {})
	c.Access(11, false, 0, 200, func(ticks.T) {})
	if len(mem.writebacks) != 1 {
		t.Fatalf("writebacks = %v, want the stored line", mem.writebacks)
	}
}

func TestWriteBackIntoCacheInstallsDirty(t *testing.T) {
	mem := &fakeMem{latency: 10}
	c := smallCache(t, LRU, mem)
	if !c.WriteBack(5, 0) {
		t.Fatal("WriteBack refused")
	}
	// Hit it and evict it; it must reach memory exactly once.
	c.Access(1, false, 0, 50, func(ticks.T) {})
	c.Access(9, false, 0, 100, func(ticks.T) {})
	c.Access(13, false, 0, 150, func(ticks.T) {})
	found := false
	for _, wb := range mem.writebacks {
		if wb == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("writebacks = %v, want to include line 5", mem.writebacks)
	}
}

func TestStackedLevels(t *testing.T) {
	mem := &fakeMem{latency: 400}
	l2, err := New(Config{Name: "l2", Sets: 16, Ways: 4, Latency: 40, Repl: LRU, MSHRs: 8}, mem)
	if err != nil {
		t.Fatal(err)
	}
	l1 := smallCache(t, LRU, l2)
	var at ticks.T
	l1.Access(42, false, 0, 0, func(a ticks.T) { at = a })
	if at != 20+40+400+40+20 {
		t.Fatalf("two-level miss completion = %v, want 520", at)
	}
	at = 0
	l1.Access(42, false, 0, 1000, func(a ticks.T) { at = a })
	if at != 1020 {
		t.Fatalf("L1 hit = %v, want 1020", at)
	}
	// Evict 42 from tiny L1; L2 should still hold it.
	l1.Access(46, false, 0, 2000, func(ticks.T) {})
	l1.Access(50, false, 0, 3000, func(ticks.T) {})
	at = 0
	l1.Access(42, false, 0, 4000, func(a ticks.T) { at = a })
	if at != 4000+20+40+20 {
		t.Fatalf("L2 hit completion = %v, want 4080", at)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	mem := &fakeMem{}
	if _, err := New(Config{Name: "x", Sets: 3, Ways: 1, MSHRs: 1}, mem); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(Config{Name: "x", Sets: 4, Ways: 0, MSHRs: 1}, mem); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(Config{Name: "x", Sets: 4, Ways: 1, MSHRs: 0}, mem); err == nil {
		t.Error("zero MSHRs accepted")
	}
	if _, err := New(Config{Name: "x", Sets: 4, Ways: 1, MSHRs: 1}, nil); err == nil {
		t.Error("nil downstream accepted")
	}
}

func TestIPStrideDetectsStride(t *testing.T) {
	p, err := NewIPStride(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x400100)
	var got []uint64
	for i := uint64(0); i < 5; i++ {
		got = p.Observe(pc, 100+i*3)
	}
	if len(got) != 2 || got[0] != 112+3 || got[1] != 112+6 {
		t.Fatalf("prefetch targets = %v, want [115 118]", got)
	}
}

func TestIPStrideIgnoresIrregular(t *testing.T) {
	p, err := NewIPStride(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x400100)
	seq := []uint64{10, 90, 17, 4, 1000}
	var got []uint64
	for _, l := range seq {
		got = p.Observe(pc, l)
	}
	if len(got) != 0 {
		t.Fatalf("irregular stream produced prefetches: %v", got)
	}
}

func TestIPStrideRejectsBadConfig(t *testing.T) {
	if _, err := NewIPStride(0, 1); err == nil {
		t.Error("zero table accepted")
	}
	if _, err := NewIPStride(63, 1); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	if _, err := NewIPStride(64, 0); err == nil {
		t.Error("zero degree accepted")
	}
}

func TestPrefetcherFillsAhead(t *testing.T) {
	mem := &fakeMem{latency: 100}
	c, err := New(Config{Name: "l1", Sets: 64, Ways: 4, Latency: 10, Repl: LRU, MSHRs: 8}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachIPStride(64, 2); err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x400200)
	now := ticks.T(0)
	for i := uint64(0); i < 8; i++ {
		c.Access(200+i, false, pc, now, func(ticks.T) {})
		now += 500
	}
	if c.Stats().Prefetches == 0 {
		t.Fatal("unit-stride stream triggered no prefetches")
	}
	// Later lines should now hit thanks to prefetching.
	hitsBefore := c.Stats().Hits
	c.Access(208, false, pc, now, func(ticks.T) {})
	if c.Stats().Hits != hitsBefore+1 {
		t.Error("prefetched line 208 was not a hit")
	}
}

// Property: a cache never loses dirty data — every store is eventually
// visible as either a resident dirty line or a downstream writeback.
func TestNoDirtyDataLossProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := &fakeMem{latency: 10}
		c, err := New(Config{Name: "p", Sets: 4, Ways: 2, Latency: 1, Repl: LRU, MSHRs: 64}, mem)
		if err != nil {
			return false
		}
		stored := map[uint64]bool{}
		now := ticks.T(0)
		for i := 0; i < int(n)+1; i++ {
			line := uint64(rng.Intn(32))
			write := rng.Intn(2) == 0
			if write {
				stored[line] = true
			}
			c.Access(line, write, 0, now, func(ticks.T) {})
			now += 100
		}
		// Flush by thrashing every set with clean lines.
		for line := uint64(1000); line < 1000+64; line++ {
			c.Access(line, false, 0, now, func(ticks.T) {})
			now += 100
		}
		wb := map[uint64]bool{}
		for _, l := range mem.writebacks {
			wb[l] = true
		}
		for line := range stored {
			if !wb[line] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// pendingFetcher accepts fetches but never completes them.
type pendingFetcher struct{ done []func(ticks.T) }

func (p *pendingFetcher) Fetch(line uint64, now ticks.T, done func(ticks.T)) bool {
	p.done = append(p.done, done)
	return true
}
func (p *pendingFetcher) WriteBack(uint64, ticks.T) bool { return true }

// TestCacheIsAlwaysQuiescent pins the cache's role in the demand-driven
// clocking protocol: it never schedules work of its own, even with
// fetches outstanding — those belong to the downstream clock domain.
func TestCacheIsAlwaysQuiescent(t *testing.T) {
	next := &pendingFetcher{}
	c := smallCache(t, LRU, next)
	if got := c.NextWork(0); got != ticks.Never {
		t.Fatalf("NextWork = %v on an empty cache, want Never", got)
	}
	if !c.Access(1, false, 0, 0, func(ticks.T) {}) {
		t.Fatal("access refused")
	}
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	if got := c.NextWork(5); got != ticks.Never {
		t.Fatalf("NextWork = %v with an outstanding fetch, want Never", got)
	}
	next.done[0](100)
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after fill, want 0", got)
	}
}
