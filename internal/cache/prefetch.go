package cache

import "fmt"

// IPStride is the instruction-pointer stride prefetcher the paper attaches
// to the L1 data cache (Table 3). It tracks, per instruction address, the
// last accessed line and the last observed stride; two consecutive accesses
// with the same stride trigger prefetches of the next `degree` lines along
// that stride.
type IPStride struct {
	entries []ipEntry
	mask    uint64
	degree  int
}

type ipEntry struct {
	pc       uint64
	lastLine uint64
	stride   int64
	conf     int8
	valid    bool
}

// NewIPStride builds a prefetcher with a power-of-two table size.
func NewIPStride(tableSize, degree int) (*IPStride, error) {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		return nil, fmt.Errorf("cache: IP-stride table size (%d) must be a positive power of two", tableSize)
	}
	if degree <= 0 {
		return nil, fmt.Errorf("cache: IP-stride degree must be positive, got %d", degree)
	}
	return &IPStride{
		entries: make([]ipEntry, tableSize),
		mask:    uint64(tableSize - 1),
		degree:  degree,
	}, nil
}

// Observe records a demand access and returns the lines to prefetch.
func (p *IPStride) Observe(pc, lineAddr uint64) []uint64 {
	e := &p.entries[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = ipEntry{pc: pc, lastLine: lineAddr, valid: true}
		return nil
	}
	stride := int64(lineAddr) - int64(e.lastLine)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastLine = lineAddr
	if e.conf < 2 {
		return nil
	}
	targets := make([]uint64, 0, p.degree)
	next := int64(lineAddr)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		targets = append(targets, uint64(next))
	}
	return targets
}
