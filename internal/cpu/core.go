// Package cpu implements the trace-driven out-of-order-lite core model used
// for the paper's performance studies. It captures the properties the
// memory-system results depend on — a reorder-buffer-limited instruction
// window, bounded issue/retire width, loads that block retirement until data
// returns, and posted stores — without simulating a full pipeline (the
// paper's own footnote reports <1% sensitivity to front-end policies).
package cpu

import (
	"fmt"

	"pracsim/internal/ticks"
	"pracsim/internal/trace"
)

// CyclePeriod is one core clock at 4 GHz.
const CyclePeriod = ticks.T(1)

// MemPort is where the core sends memory accesses (the L1 data cache).
type MemPort interface {
	Access(line uint64, write bool, pc uint64, now ticks.T, done func(at ticks.T)) bool
}

// Config sizes the core per the paper's Table 3.
type Config struct {
	IssueWidth  int
	RetireWidth int
	ROBSize     int
}

// DefaultConfig is the paper's 6-issue, 4-retire, 352-entry ROB core.
func DefaultConfig() Config {
	return Config{IssueWidth: 6, RetireWidth: 4, ROBSize: 352}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.RetireWidth <= 0 || c.ROBSize <= 0 {
		return fmt.Errorf("cpu: widths and ROB size must be positive: %+v", c)
	}
	return nil
}

// Stats counts core progress.
type Stats struct {
	Instructions int64
	Cycles       int64
	Loads        int64
	Stores       int64
	StallCycles  int64 // cycles where issue made no progress
	// ElidedCycles counts cycles that were accounted (into Cycles and,
	// when applicable, StallCycles) without being simulated, because
	// demand-driven clocking proved them to be no-ops. It is telemetry:
	// all other counters are bit-identical with per-cycle ticking.
	ElidedCycles int64
}

// IPC reports retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

const pendingCompletion = ticks.T(-1)

type robEntry struct {
	completeAt ticks.T // pendingCompletion until the load's data returns
}

// Core is one simulated hardware context.
type Core struct {
	id     int
	cfg    Config
	stream trace.Stream
	mem    MemPort

	rob   []robEntry
	head  int
	count int

	stalled    *trace.Record
	streamDone bool

	offset uint64 // address-space offset in cache lines
	lines  uint64 // address-space size for wrapping

	lastTick  ticks.T               // previous Tick time, for idle-cycle crediting
	waker     func(at ticks.T)      // wakes a parked clock when the ROB head's data returns
	retrySlot func(ticks.T) ticks.T // next cycle a refused memory access can usefully retry

	stats Stats
}

// New builds a core reading from stream and accessing memory through mem.
// offset and lines place the core's address space: every trace line address
// is relocated to (line+offset) mod lines, modeling per-process physical
// allocations like ChampSim's per-core address spaces.
func New(id int, cfg Config, stream trace.Stream, mem MemPort, offset, lines uint64) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stream == nil || mem == nil {
		return nil, fmt.Errorf("cpu: core %d needs a stream and a memory port", id)
	}
	if lines == 0 {
		return nil, fmt.Errorf("cpu: core %d has an empty address space", id)
	}
	return &Core{
		id:       id,
		cfg:      cfg,
		stream:   stream,
		mem:      mem,
		rob:      make([]robEntry, cfg.ROBSize),
		offset:   offset,
		lines:    lines,
		lastTick: -CyclePeriod,
	}, nil
}

// ID reports the core's index.
func (c *Core) ID() int { return c.id }

// Stats returns a snapshot of the counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats clears the counters (used at the warmup/measurement boundary).
func (c *Core) ResetStats() { c.stats = Stats{} }

// Done reports whether the trace is exhausted and the pipeline drained.
func (c *Core) Done() bool { return c.streamDone && c.count == 0 && c.stalled == nil }

// SetWaker registers fn, invoked when the load blocking the ROB head
// completes — the event that can turn a fully-stalled core (parked by a
// demand-driven clock after NextWork returned ticks.Never) runnable again.
// The argument is the completion time: the first cycle retirement can
// make progress.
func (c *Core) SetWaker(fn func(at ticks.T)) { c.waker = fn }

// SetRetrySlot tells the core when a memory access refused at a given
// cycle can next be retried with any chance of success. Downstream
// resources (MSHRs, controller queue slots) are only released when the
// memory controller ticks, so the driving clock injects the controller's
// cycle grid here. A nil fn (the default) makes NextWork assume a refused
// access must retry every cycle.
func (c *Core) SetRetrySlot(fn func(now ticks.T) ticks.T) { c.retrySlot = fn }

// SyncClock aligns the idle-crediting baseline with the driving clock:
// the next Tick at or before now+CyclePeriod credits no elided cycles.
// Clock drivers call it when (re)attaching a ticker to the core, so gaps
// in which the core deliberately did not tick (e.g. between measurement
// phases after it retired its budget) are not misread as elided idle time.
func (c *Core) SyncClock(now ticks.T) { c.lastTick = now - CyclePeriod }

// Tick advances the core by one cycle: retire then issue. A gap since the
// previous Tick is credited as elided idle cycles: demand-driven clocks
// only skip cycles they have proven would neither retire nor issue, so
// those cycles contribute exactly what the per-cycle baseline would have
// counted — one Cycle each, and one StallCycle each while the stream has
// instructions left.
func (c *Core) Tick(now ticks.T) {
	if gap := now - c.lastTick; gap > CyclePeriod {
		idle := int64((gap - CyclePeriod) / CyclePeriod)
		c.stats.Cycles += idle
		c.stats.ElidedCycles += idle
		if !c.streamDone {
			c.stats.StallCycles += idle
		}
	}
	c.lastTick = now
	c.stats.Cycles++
	c.retire(now)
	c.issue(now)
}

// NextWork reports a conservative lower bound on the next time Tick can
// make progress, assuming no new completions arrive: now+CyclePeriod when
// the core may progress next cycle, the ROB head's completion time when
// the core is fully stalled behind a known-latency load, the next useful
// retry slot when a memory access was refused, or ticks.Never when only
// an as-yet-unscheduled completion (see SetWaker) can create work. Every
// cycle strictly before the reported time is provably a no-op, so a
// demand-driven clock may skip it and credit it via the Tick gap.
func (c *Core) NextWork(now ticks.T) ticks.T {
	retireAt := ticks.Never
	if c.count > 0 {
		if h := c.rob[c.head].completeAt; h != pendingCompletion {
			if h <= now {
				return now + CyclePeriod // retirement progresses next cycle
			}
			retireAt = h
		}
	}
	issueAt := ticks.Never
	if c.count < len(c.rob) {
		switch {
		case c.stalled != nil:
			// A refused access can only succeed after downstream
			// resources free up; retries before then are no-ops.
			if c.retrySlot != nil {
				issueAt = c.retrySlot(now)
			} else {
				issueAt = now + CyclePeriod
			}
		case !c.streamDone:
			return now + CyclePeriod // fresh instructions can dispatch
		}
	}
	return ticks.Min(retireAt, issueAt)
}

func (c *Core) retire(now ticks.T) {
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if e.completeAt == pendingCompletion || e.completeAt > now {
			return
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.stats.Instructions++
	}
}

func (c *Core) issue(now ticks.T) {
	progressed := false
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.count == len(c.rob) {
			break
		}
		rec, ok := c.nextRecord()
		if !ok {
			break
		}
		if !c.dispatch(rec, now) {
			c.stalled = rec
			break
		}
		progressed = true
	}
	if !progressed && !c.streamDone {
		c.stats.StallCycles++
	}
}

// nextRecord returns the stalled record if any, else pulls from the stream.
func (c *Core) nextRecord() (*trace.Record, bool) {
	if c.stalled != nil {
		r := c.stalled
		c.stalled = nil
		return r, true
	}
	if c.streamDone {
		return nil, false
	}
	rec, ok := c.stream.Next()
	if !ok {
		c.streamDone = true
		return nil, false
	}
	return &rec, true
}

// dispatch places one instruction into the ROB. It reports false when the
// memory system refused the access (the instruction must retry next cycle).
func (c *Core) dispatch(rec *trace.Record, now ticks.T) bool {
	slot := (c.head + c.count) % len(c.rob)
	e := &c.rob[slot]
	if !rec.IsMem {
		e.completeAt = now + CyclePeriod
		c.count++
		return true
	}
	line := (rec.Line + c.offset) % c.lines
	if rec.Write {
		// Stores retire without waiting: the store buffer posts them.
		if !c.mem.Access(line, true, rec.PC, now, nil) {
			return false
		}
		e.completeAt = now + CyclePeriod
		c.count++
		c.stats.Stores++
		return true
	}
	e.completeAt = pendingCompletion
	accepted := c.mem.Access(line, false, rec.PC, now, func(at ticks.T) {
		e.completeAt = at
		// Waking matters only when this load gates retirement: a parked
		// core's head cannot move, so slot identity is stable.
		if c.waker != nil && slot == c.head {
			c.waker(at)
		}
	})
	if !accepted {
		return false
	}
	c.count++
	c.stats.Loads++
	return true
}
