// Package cpu implements the trace-driven out-of-order-lite core model used
// for the paper's performance studies. It captures the properties the
// memory-system results depend on — a reorder-buffer-limited instruction
// window, bounded issue/retire width, loads that block retirement until data
// returns, and posted stores — without simulating a full pipeline (the
// paper's own footnote reports <1% sensitivity to front-end policies).
package cpu

import (
	"fmt"

	"pracsim/internal/ticks"
	"pracsim/internal/trace"
)

// CyclePeriod is one core clock at 4 GHz.
const CyclePeriod = ticks.T(1)

// MemPort is where the core sends memory accesses (the L1 data cache).
type MemPort interface {
	Access(line uint64, write bool, pc uint64, now ticks.T, done func(at ticks.T)) bool
}

// Config sizes the core per the paper's Table 3.
type Config struct {
	IssueWidth  int
	RetireWidth int
	ROBSize     int
}

// DefaultConfig is the paper's 6-issue, 4-retire, 352-entry ROB core.
func DefaultConfig() Config {
	return Config{IssueWidth: 6, RetireWidth: 4, ROBSize: 352}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.RetireWidth <= 0 || c.ROBSize <= 0 {
		return fmt.Errorf("cpu: widths and ROB size must be positive: %+v", c)
	}
	return nil
}

// Stats counts core progress.
type Stats struct {
	Instructions int64
	Cycles       int64
	Loads        int64
	Stores       int64
	StallCycles  int64 // cycles where issue made no progress
}

// IPC reports retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

const pendingCompletion = ticks.T(-1)

type robEntry struct {
	completeAt ticks.T // pendingCompletion until the load's data returns
}

// Core is one simulated hardware context.
type Core struct {
	id     int
	cfg    Config
	stream trace.Stream
	mem    MemPort

	rob   []robEntry
	head  int
	count int

	stalled    *trace.Record
	streamDone bool

	offset uint64 // address-space offset in cache lines
	lines  uint64 // address-space size for wrapping

	stats Stats
}

// New builds a core reading from stream and accessing memory through mem.
// offset and lines place the core's address space: every trace line address
// is relocated to (line+offset) mod lines, modeling per-process physical
// allocations like ChampSim's per-core address spaces.
func New(id int, cfg Config, stream trace.Stream, mem MemPort, offset, lines uint64) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stream == nil || mem == nil {
		return nil, fmt.Errorf("cpu: core %d needs a stream and a memory port", id)
	}
	if lines == 0 {
		return nil, fmt.Errorf("cpu: core %d has an empty address space", id)
	}
	return &Core{
		id:     id,
		cfg:    cfg,
		stream: stream,
		mem:    mem,
		rob:    make([]robEntry, cfg.ROBSize),
		offset: offset,
		lines:  lines,
	}, nil
}

// ID reports the core's index.
func (c *Core) ID() int { return c.id }

// Stats returns a snapshot of the counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats clears the counters (used at the warmup/measurement boundary).
func (c *Core) ResetStats() { c.stats = Stats{} }

// Done reports whether the trace is exhausted and the pipeline drained.
func (c *Core) Done() bool { return c.streamDone && c.count == 0 && c.stalled == nil }

// Tick advances the core by one cycle: retire then issue.
func (c *Core) Tick(now ticks.T) {
	c.stats.Cycles++
	c.retire(now)
	c.issue(now)
}

func (c *Core) retire(now ticks.T) {
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if e.completeAt == pendingCompletion || e.completeAt > now {
			return
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.stats.Instructions++
	}
}

func (c *Core) issue(now ticks.T) {
	progressed := false
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.count == len(c.rob) {
			break
		}
		rec, ok := c.nextRecord()
		if !ok {
			break
		}
		if !c.dispatch(rec, now) {
			c.stalled = rec
			break
		}
		progressed = true
	}
	if !progressed && !c.streamDone {
		c.stats.StallCycles++
	}
}

// nextRecord returns the stalled record if any, else pulls from the stream.
func (c *Core) nextRecord() (*trace.Record, bool) {
	if c.stalled != nil {
		r := c.stalled
		c.stalled = nil
		return r, true
	}
	if c.streamDone {
		return nil, false
	}
	rec, ok := c.stream.Next()
	if !ok {
		c.streamDone = true
		return nil, false
	}
	return &rec, true
}

// dispatch places one instruction into the ROB. It reports false when the
// memory system refused the access (the instruction must retry next cycle).
func (c *Core) dispatch(rec *trace.Record, now ticks.T) bool {
	slot := (c.head + c.count) % len(c.rob)
	e := &c.rob[slot]
	if !rec.IsMem {
		e.completeAt = now + CyclePeriod
		c.count++
		return true
	}
	line := (rec.Line + c.offset) % c.lines
	if rec.Write {
		// Stores retire without waiting: the store buffer posts them.
		if !c.mem.Access(line, true, rec.PC, now, nil) {
			return false
		}
		e.completeAt = now + CyclePeriod
		c.count++
		c.stats.Stores++
		return true
	}
	e.completeAt = pendingCompletion
	accepted := c.mem.Access(line, false, rec.PC, now, func(at ticks.T) {
		e.completeAt = at
	})
	if !accepted {
		return false
	}
	c.count++
	c.stats.Loads++
	return true
}
