package cpu

import (
	"testing"

	"pracsim/internal/ticks"
	"pracsim/internal/trace"
)

// fakeMem completes loads after a fixed latency, optionally refusing the
// first few accesses.
type fakeMem struct {
	latency ticks.T
	refuse  int
	loads   int
	stores  int
}

func (m *fakeMem) Access(line uint64, write bool, pc uint64, now ticks.T, done func(ticks.T)) bool {
	if m.refuse > 0 {
		m.refuse--
		return false
	}
	if write {
		m.stores++
		return true
	}
	m.loads++
	if done != nil {
		done(now + m.latency)
	}
	return true
}

func run(t *testing.T, c *Core, cycles int) {
	t.Helper()
	for i := 0; i < cycles; i++ {
		c.Tick(ticks.T(i))
	}
}

func nonMem(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{PC: uint64(0x400000 + i*4)}
	}
	return recs
}

func newCore(t *testing.T, cfg Config, recs []trace.Record, mem MemPort) *Core {
	t.Helper()
	c, err := New(0, cfg, trace.NewSliceStream(recs), mem, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNonMemIPCBoundedByRetireWidth(t *testing.T) {
	cfg := Config{IssueWidth: 6, RetireWidth: 4, ROBSize: 64}
	c := newCore(t, cfg, nonMem(4000), &fakeMem{})
	run(t, c, 1000)
	ipc := c.Stats().IPC()
	if ipc < 3.5 || ipc > 4.0 {
		t.Fatalf("IPC = %.2f, want close to retire width 4", ipc)
	}
}

func TestLoadLatencyThrottlesIPC(t *testing.T) {
	cfg := Config{IssueWidth: 4, RetireWidth: 4, ROBSize: 8}
	recs := make([]trace.Record, 2000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, IsMem: true, Line: uint64(i)}
	}
	slow := newCore(t, cfg, recs, &fakeMem{latency: 400})
	run(t, slow, 4000)
	fastCore := newCore(t, cfg, recs, &fakeMem{latency: 4})
	run(t, fastCore, 4000)
	if slow.Stats().Instructions >= fastCore.Stats().Instructions {
		t.Fatalf("slow memory retired %d, fast %d; latency must throttle",
			slow.Stats().Instructions, fastCore.Stats().Instructions)
	}
	// With an 8-entry ROB and 400-cycle loads, throughput is bounded by
	// ROB/latency = 0.02 IPC.
	if ipc := slow.Stats().IPC(); ipc > 0.05 {
		t.Fatalf("slow IPC = %.3f, want ROB-bound (about 0.02)", ipc)
	}
}

func TestStoresArePosted(t *testing.T) {
	cfg := Config{IssueWidth: 4, RetireWidth: 4, ROBSize: 16}
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, IsMem: true, Write: true, Line: uint64(i)}
	}
	mem := &fakeMem{latency: 10000} // latency irrelevant to stores
	c := newCore(t, cfg, recs, mem)
	for i := 0; i < 600 && !c.Done(); i++ {
		c.Tick(ticks.T(i))
	}
	if ipc := c.Stats().IPC(); ipc < 3 {
		t.Fatalf("store-only IPC = %.2f; stores must not block retirement", ipc)
	}
	if mem.stores == 0 {
		t.Fatal("no stores reached memory")
	}
}

func TestRefusedAccessRetries(t *testing.T) {
	cfg := Config{IssueWidth: 1, RetireWidth: 1, ROBSize: 4}
	recs := []trace.Record{{PC: 1, IsMem: true, Line: 42}}
	mem := &fakeMem{latency: 2, refuse: 3}
	c := newCore(t, cfg, recs, mem)
	run(t, c, 20)
	if mem.loads != 1 {
		t.Fatalf("loads reaching memory = %d, want 1 (after retries)", mem.loads)
	}
	if got := c.Stats().Instructions; got != 1 {
		t.Fatalf("retired = %d, want 1", got)
	}
}

func TestDoneAfterDrain(t *testing.T) {
	cfg := Config{IssueWidth: 2, RetireWidth: 2, ROBSize: 8}
	c := newCore(t, cfg, nonMem(10), &fakeMem{})
	if c.Done() {
		t.Fatal("Done before any work")
	}
	run(t, c, 100)
	if !c.Done() {
		t.Fatal("not Done after stream drained")
	}
	if got := c.Stats().Instructions; got != 10 {
		t.Fatalf("retired = %d, want 10", got)
	}
}

func TestROBLimitsOutstanding(t *testing.T) {
	cfg := Config{IssueWidth: 8, RetireWidth: 8, ROBSize: 4}
	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, IsMem: true, Line: uint64(i)}
	}
	var outstanding, maxOutstanding int
	mem := &manualMem{onAccess: func(done func(ticks.T)) {
		outstanding++
		if outstanding > maxOutstanding {
			maxOutstanding = outstanding
		}
	}}
	c := newCore(t, cfg, recs, mem)
	for i := 0; i < 50; i++ {
		c.Tick(ticks.T(i))
	}
	if maxOutstanding > 4 {
		t.Fatalf("outstanding loads = %d, exceeds ROB size 4", maxOutstanding)
	}
}

type manualMem struct {
	onAccess func(done func(ticks.T))
}

func (m *manualMem) Access(line uint64, write bool, pc uint64, now ticks.T, done func(ticks.T)) bool {
	m.onAccess(done) // never completes: loads pile up
	return true
}

func TestAddressRelocation(t *testing.T) {
	cfg := Config{IssueWidth: 1, RetireWidth: 1, ROBSize: 4}
	recs := []trace.Record{{PC: 1, IsMem: true, Line: 5}}
	var seen uint64
	mem := &recordingMem{onLine: func(l uint64) { seen = l }}
	c, err := New(3, cfg, trace.NewSliceStream(recs), mem, 1000, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	run(t, c, 10)
	if seen != 1005 {
		t.Fatalf("relocated line = %d, want 1005", seen)
	}
}

type recordingMem struct{ onLine func(uint64) }

func (m *recordingMem) Access(line uint64, write bool, pc uint64, now ticks.T, done func(ticks.T)) bool {
	m.onLine(line)
	if done != nil {
		done(now + 1)
	}
	return true
}

func TestResetStats(t *testing.T) {
	cfg := DefaultConfig()
	c := newCore(t, cfg, nonMem(100), &fakeMem{})
	run(t, c, 10)
	if c.Stats().Instructions == 0 {
		t.Fatal("no progress before reset")
	}
	c.ResetStats()
	if s := c.Stats(); s.Instructions != 0 || s.Cycles != 0 {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}, trace.NewSliceStream(nil), &fakeMem{}, 0, 1); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(0, DefaultConfig(), nil, &fakeMem{}, 0, 1); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := New(0, DefaultConfig(), trace.NewSliceStream(nil), nil, 0, 1); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := New(0, DefaultConfig(), trace.NewSliceStream(nil), &fakeMem{}, 0, 0); err == nil {
		t.Error("empty address space accepted")
	}
}
