package cpu

import (
	"testing"

	"pracsim/internal/ticks"
	"pracsim/internal/trace"
)

// pendingMem accepts loads but never completes them until released.
type pendingMem struct {
	done []func(ticks.T)
}

func (m *pendingMem) Access(line uint64, write bool, pc uint64, now ticks.T, done func(ticks.T)) bool {
	if done != nil {
		m.done = append(m.done, done)
	}
	return true
}

func loads(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, IsMem: true, Line: uint64(i)}
	}
	return recs
}

func TestNextWorkFreshInstructionsIsNextCycle(t *testing.T) {
	c := newCore(t, DefaultConfig(), nonMem(100), &fakeMem{})
	c.Tick(0)
	if next := c.NextWork(0); next != 1 {
		t.Fatalf("NextWork = %v, want next cycle while the stream has work", next)
	}
}

func TestNextWorkROBFullPendingHeadIsNever(t *testing.T) {
	cfg := Config{IssueWidth: 6, RetireWidth: 4, ROBSize: 8}
	mem := &pendingMem{}
	c := newCore(t, cfg, loads(100), mem)
	for i := 0; c.Stats().Loads < 8 && i < 10; i++ {
		c.Tick(ticks.T(i))
	}
	if next := c.NextWork(10); next != ticks.Never {
		t.Fatalf("NextWork = %v with a full ROB behind a pending load, want Never", next)
	}
}

func TestNextWorkROBFullKnownHeadIsCompletionTime(t *testing.T) {
	cfg := Config{IssueWidth: 8, RetireWidth: 4, ROBSize: 8}
	mem := &pendingMem{}
	c := newCore(t, cfg, loads(100), mem)
	c.Tick(0) // fills the ROB with 8 pending loads
	if c.Stats().Loads != 8 {
		t.Fatalf("loads = %d, want 8", c.Stats().Loads)
	}
	for _, d := range mem.done {
		d(500) // all complete at t=500
	}
	if next := c.NextWork(1); next != 500 {
		t.Fatalf("NextWork = %v, want 500 (head completion)", next)
	}
}

func TestNextWorkStalledUsesRetrySlot(t *testing.T) {
	mem := &fakeMem{latency: 10, refuse: 50}
	c := newCore(t, DefaultConfig(), loads(100), mem)
	c.SetRetrySlot(func(now ticks.T) ticks.T { return now + 4 })
	c.Tick(0) // first dispatch refused: record parks in c.stalled
	if next := c.NextWork(0); next != 4 {
		t.Fatalf("NextWork = %v while stalled, want the injected retry slot 4", next)
	}
}

func TestNextWorkDrainedCoreIsNever(t *testing.T) {
	c := newCore(t, DefaultConfig(), nonMem(4), &fakeMem{})
	run(t, c, 20)
	if !c.Done() {
		t.Fatal("core not drained")
	}
	if next := c.NextWork(20); next != ticks.Never {
		t.Fatalf("NextWork = %v for a drained core, want Never", next)
	}
}

// TestIdleCreditingMatchesPerCycleTicking is the bit-identity contract at
// the core level: skipping provably-idle cycles and crediting them on the
// next Tick must leave every counter except ElidedCycles exactly where
// per-cycle ticking puts it.
func TestIdleCreditingMatchesPerCycleTicking(t *testing.T) {
	build := func() (*Core, *pendingMem) {
		cfg := Config{IssueWidth: 8, RetireWidth: 4, ROBSize: 8}
		mem := &pendingMem{}
		c, err := New(0, cfg, trace.NewSliceStream(loads(16)), mem, 0, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		return c, mem
	}

	// Per-cycle reference: tick 0..99, completions land at 50.
	ref, refMem := build()
	for now := ticks.T(0); now < 100; now++ {
		if now == 50 {
			for _, d := range refMem.done {
				d(50)
			}
			refMem.done = nil
		}
		ref.Tick(now)
	}

	// Elided: tick until the ROB is full (t=0), skip straight to the
	// completion at 50, resume ticking there.
	el, elMem := build()
	el.Tick(0)
	if next := el.NextWork(0); next != ticks.Never {
		t.Fatalf("NextWork = %v, want Never (parked)", next)
	}
	for _, d := range elMem.done {
		d(50)
	}
	elMem.done = nil
	for now := ticks.T(50); now < 100; now++ {
		el.Tick(now)
	}

	rs, es := ref.Stats(), el.Stats()
	es.ElidedCycles = 0 // the one legitimately differing field
	if rs != es {
		t.Fatalf("stats diverge:\nper-cycle: %+v\nelided:    %+v", rs, es)
	}
	if el.Stats().ElidedCycles != 49 {
		t.Errorf("ElidedCycles = %d, want 49 (cycles 1..49 skipped)", el.Stats().ElidedCycles)
	}
}

func TestSyncClockSuppressesSpuriousCredit(t *testing.T) {
	c := newCore(t, DefaultConfig(), nonMem(1000), &fakeMem{})
	c.Tick(0)
	cyc := c.Stats().Cycles
	// A deliberate gap (e.g. a measurement-phase boundary) must not be
	// misread as elided idle time once the clock is resynced.
	c.SyncClock(500)
	c.Tick(500)
	if got := c.Stats().Cycles; got != cyc+1 {
		t.Fatalf("Cycles = %d after resynced tick, want %d", got, cyc+1)
	}
	if c.Stats().ElidedCycles != 0 {
		t.Fatalf("ElidedCycles = %d, want 0", c.Stats().ElidedCycles)
	}
}

// TestWakerFiresOnHeadCompletionOnly: only the load blocking retirement
// wakes a parked clock.
func TestWakerFiresOnHeadCompletionOnly(t *testing.T) {
	cfg := Config{IssueWidth: 4, RetireWidth: 4, ROBSize: 4}
	mem := &pendingMem{}
	c := newCore(t, cfg, loads(100), mem)
	var wakes []ticks.T
	c.SetWaker(func(at ticks.T) { wakes = append(wakes, at) })
	c.Tick(0) // ROB fills with 4 pending loads
	if len(mem.done) != 4 {
		t.Fatalf("outstanding loads = %d, want 4", len(mem.done))
	}
	mem.done[2](30) // non-head completion: no wake
	if len(wakes) != 0 {
		t.Fatalf("non-head completion woke the core: %v", wakes)
	}
	mem.done[0](40) // head completion: wake at data-return time
	if len(wakes) != 1 || wakes[0] != 40 {
		t.Fatalf("wakes = %v, want [40]", wakes)
	}
}
