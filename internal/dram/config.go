// Package dram models a DDR5 DRAM channel with Per Row Activation Counting
// (PRAC) as specified by JESD79-5C and studied in the paper "When Mitigations
// Backfire" (ISCA 2025).
//
// The model is command-level and cycle-accurate with respect to the JEDEC
// timing parameters in the paper's Table 3: the memory controller asks
// whether a command is legal at the current tick (CanIssue) and then commits
// it (Issue); the module tracks per-bank state machines, per-row activation
// counters, the Alert Back-Off protocol, refresh, and Refresh Management
// (RFM) commands.
package dram

import (
	"fmt"

	"pracsim/internal/ticks"
)

// Org describes the physical organization of one DRAM channel.
type Org struct {
	Ranks         int // ranks per channel
	BankGroups    int // bank groups per rank
	BanksPerGroup int // banks per bank group
	Rows          int // rows per bank
	Columns       int // cache-line-sized columns per row
	LineBytes     int // bytes per column (cache line)
}

// DDR5Org32Gb is the paper's Table 3 organization: a single channel of
// quad-rank 32 Gb DDR5 chips with 128K rows per bank and 8 KB rows.
func DDR5Org32Gb() Org {
	return Org{
		Ranks:         4,
		BankGroups:    8,
		BanksPerGroup: 4,
		Rows:          128 * 1024,
		Columns:       128,
		LineBytes:     64,
	}
}

// Banks reports the total number of banks in the channel.
func (o Org) Banks() int { return o.Ranks * o.BankGroups * o.BanksPerGroup }

// BanksPerRank reports the number of banks in one rank.
func (o Org) BanksPerRank() int { return o.BankGroups * o.BanksPerGroup }

// RankOf reports which rank a flat bank index belongs to.
func (o Org) RankOf(bank int) int { return bank / o.BanksPerRank() }

// RowBytes reports the size of one row in bytes.
func (o Org) RowBytes() int { return o.Columns * o.LineBytes }

// CapacityBytes reports the total channel capacity in bytes.
func (o Org) CapacityBytes() int64 {
	return int64(o.Banks()) * int64(o.Rows) * int64(o.RowBytes())
}

// Validate reports whether the organization is self-consistent.
func (o Org) Validate() error {
	switch {
	case o.Ranks <= 0, o.BankGroups <= 0, o.BanksPerGroup <= 0:
		return fmt.Errorf("dram: organization has non-positive bank dimensions: %+v", o)
	case o.Rows <= 0 || o.Columns <= 0 || o.LineBytes <= 0:
		return fmt.Errorf("dram: organization has non-positive row dimensions: %+v", o)
	}
	return nil
}

// Timing holds the JEDEC timing parameters used by the model, in ticks.
// Field names follow the DDR5 specification.
type Timing struct {
	TRCD    ticks.T // ACT to RD/WR delay
	TCL     ticks.T // RD to data start
	TCWL    ticks.T // WR to data start
	TRAS    ticks.T // ACT to PRE minimum
	TRP     ticks.T // PRE to ACT delay (PRAC-extended)
	TRTP    ticks.T // RD to PRE delay
	TWR     ticks.T // write recovery (end of data to PRE)
	TRC     ticks.T // ACT to ACT delay, same bank
	TRFC    ticks.T // all-bank refresh duration
	TREFI   ticks.T // average refresh interval
	TREFW   ticks.T // refresh window (retention period)
	TABOACT ticks.T // max time from Alert to RFM service
	TRFMab  ticks.T // RFM All Bank blocking duration
	TRFMpb  ticks.T // Per-bank RFM blocking duration (Section 7.2 extension)
	TBURST  ticks.T // data burst duration for one cache line
}

// DDR5_8000B returns the paper's Table 3 timings for a 32 Gb DDR5-8000B
// device with the PRAC-extended precharge (tRP = 36 ns).
func DDR5_8000B() Timing {
	return Timing{
		TRCD:    ticks.FromNS(16),
		TCL:     ticks.FromNS(16),
		TCWL:    ticks.FromNS(16),
		TRAS:    ticks.FromNS(16),
		TRP:     ticks.FromNS(36),
		TRTP:    ticks.FromNS(5),
		TWR:     ticks.FromNS(10),
		TRC:     ticks.FromNS(52),
		TRFC:    ticks.FromNS(410),
		TREFI:   ticks.FromNS(3900),
		TREFW:   ticks.FromMS(32),
		TABOACT: ticks.FromNS(180),
		TRFMab:  ticks.FromNS(350),
		TRFMpb:  ticks.FromNS(210),
		TBURST:  ticks.FromNS(2),
	}
}

// Validate reports whether the timings are usable.
func (t Timing) Validate() error {
	if t.TRC < t.TRAS+0 || t.TRC <= 0 || t.TRP <= 0 || t.TRCD <= 0 {
		return fmt.Errorf("dram: inconsistent core timings: %+v", t)
	}
	if t.TREFI <= 0 || t.TREFW <= 0 || t.TRFC <= 0 {
		return fmt.Errorf("dram: inconsistent refresh timings: %+v", t)
	}
	if t.TRFMab <= 0 {
		return fmt.Errorf("dram: non-positive tRFMab: %+v", t)
	}
	if t.TRFMpb < 0 {
		return fmt.Errorf("dram: negative tRFMpb: %+v", t)
	}
	return nil
}

// PRACSpec configures Per Row Activation Counting and the Alert Back-Off
// protocol (the paper's Table 1).
type PRACSpec struct {
	Enabled bool // count activations and assert Alert at NBO

	// NBO is the Back-Off threshold: a row whose activation counter
	// reaches NBO asserts the Alert signal.
	NBO int

	// NMit is the PRAC level: the number of RFMab commands the memory
	// controller issues per Alert (1, 2, or 4).
	NMit int

	// ABOActAllowance is the number of additional activations the
	// controller may issue between Alert assertion and RFM service.
	ABOActAllowance int

	// ResetOnREFW resets all per-row counters at each refresh window
	// boundary, as proposed by MOAT and analyzed in Section 4.2.
	ResetOnREFW bool
}

// DefaultPRAC returns the paper's default PRAC configuration for a given
// Back-Off threshold: PRAC level 1, ABOACT allowance 3, counter reset on.
func DefaultPRAC(nbo int) PRACSpec {
	return PRACSpec{
		Enabled:         true,
		NBO:             nbo,
		NMit:            1,
		ABOActAllowance: 3,
		ResetOnREFW:     true,
	}
}

// Validate reports whether the PRAC configuration is usable.
func (p PRACSpec) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.NBO <= 0 {
		return fmt.Errorf("dram: PRAC NBO must be positive, got %d", p.NBO)
	}
	switch p.NMit {
	case 1, 2, 4:
	default:
		return fmt.Errorf("dram: PRAC level must be 1, 2 or 4, got %d", p.NMit)
	}
	if p.ABOActAllowance < 0 {
		return fmt.Errorf("dram: negative ABOACT allowance %d", p.ABOActAllowance)
	}
	return nil
}

// QueueKind selects the in-DRAM mitigation queue design.
type QueueKind int

const (
	// QueueSingleEntry is TPRAC's single-entry frequency-based queue:
	// it retains the address and count of the most activated row.
	QueueSingleEntry QueueKind = iota

	// QueuePriority is a QPRAC-style bounded priority queue holding the
	// top-K rows by activation count.
	QueuePriority

	// QueueIdeal is the UPRAC idealized design: every mitigation targets
	// the row with the truly highest live counter in the bank.
	QueueIdeal

	// QueueFIFO is a bounded FIFO of recently alerted rows. Prior work
	// showed this design is vulnerable to targeted attacks; it is
	// included as an ablation baseline.
	QueueFIFO
)

// String returns the queue kind name used in experiment output.
func (k QueueKind) String() string {
	switch k {
	case QueueSingleEntry:
		return "single-entry"
	case QueuePriority:
		return "priority"
	case QueueIdeal:
		return "ideal"
	case QueueFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// Config assembles a full DRAM channel configuration.
type Config struct {
	Org        Org
	Timing     Timing
	PRAC       PRACSpec
	Queue      QueueKind
	QueueDepth int // entries for QueuePriority / QueueFIFO; ignored otherwise
}

// DefaultConfig returns the paper's evaluated device: 32 Gb DDR5-8000B with
// PRAC level 1 at the given Back-Off threshold and TPRAC's single-entry
// mitigation queue.
func DefaultConfig(nbo int) Config {
	return Config{
		Org:        DDR5Org32Gb(),
		Timing:     DDR5_8000B(),
		PRAC:       DefaultPRAC(nbo),
		Queue:      QueueSingleEntry,
		QueueDepth: 1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Org.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.PRAC.Validate(); err != nil {
		return err
	}
	switch c.Queue {
	case QueueSingleEntry, QueueIdeal:
	case QueuePriority, QueueFIFO:
		if c.QueueDepth <= 0 {
			return fmt.Errorf("dram: %v queue needs positive depth, got %d", c.Queue, c.QueueDepth)
		}
	default:
		return fmt.Errorf("dram: unknown queue kind %d", int(c.Queue))
	}
	return nil
}
