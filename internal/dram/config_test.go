package dram

import (
	"testing"

	"pracsim/internal/ticks"
)

func TestDDR5Org32GbMatchesPaperTable3(t *testing.T) {
	o := DDR5Org32Gb()
	if got := o.Banks(); got != 128 {
		t.Errorf("Banks() = %d, want 128 (4 ranks x 8 groups x 4 banks)", got)
	}
	if got := o.RowBytes(); got != 8*1024 {
		t.Errorf("RowBytes() = %d, want 8KB", got)
	}
	if got := o.Rows; got != 128*1024 {
		t.Errorf("Rows = %d, want 128K", got)
	}
	if got := o.CapacityBytes(); got != 128<<30 {
		t.Errorf("CapacityBytes() = %d, want 128GB", got)
	}
}

func TestRankOf(t *testing.T) {
	o := DDR5Org32Gb()
	cases := []struct{ bank, rank int }{
		{0, 0}, {31, 0}, {32, 1}, {63, 1}, {96, 3}, {127, 3},
	}
	for _, c := range cases {
		if got := o.RankOf(c.bank); got != c.rank {
			t.Errorf("RankOf(%d) = %d, want %d", c.bank, got, c.rank)
		}
	}
}

func TestDDR58000BMatchesPaperTable3(t *testing.T) {
	tm := DDR5_8000B()
	cases := []struct {
		name string
		got  ticks.T
		ns   float64
	}{
		{"tRCD", tm.TRCD, 16},
		{"tCL", tm.TCL, 16},
		{"tRAS", tm.TRAS, 16},
		{"tRP", tm.TRP, 36},
		{"tRTP", tm.TRTP, 5},
		{"tWR", tm.TWR, 10},
		{"tRC", tm.TRC, 52},
		{"tRFC", tm.TRFC, 410},
		{"tREFI", tm.TREFI, 3900},
		{"tABOACT", tm.TABOACT, 180},
		{"tRFMab", tm.TRFMab, 350},
	}
	for _, c := range cases {
		if c.got.NS() != c.ns {
			t.Errorf("%s = %vns, want %vns", c.name, c.got.NS(), c.ns)
		}
	}
	if tm.TREFW.MS() != 32 {
		t.Errorf("tREFW = %vms, want 32ms", tm.TREFW.MS())
	}
}

func TestPRACSpecValidate(t *testing.T) {
	if err := DefaultPRAC(1024).Validate(); err != nil {
		t.Errorf("default PRAC spec invalid: %v", err)
	}
	bad := DefaultPRAC(1024)
	bad.NMit = 3
	if err := bad.Validate(); err == nil {
		t.Error("PRAC level 3 accepted; JEDEC allows only 1, 2 or 4")
	}
	bad = DefaultPRAC(0)
	if err := bad.Validate(); err == nil {
		t.Error("NBO=0 accepted")
	}
	off := PRACSpec{Enabled: false}
	if err := off.Validate(); err != nil {
		t.Errorf("disabled PRAC should validate trivially: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1024).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig(1024)
	c.Queue = QueuePriority
	c.QueueDepth = 0
	if err := c.Validate(); err == nil {
		t.Error("priority queue with depth 0 accepted")
	}
	c = DefaultConfig(1024)
	c.Org.Ranks = 0
	if err := c.Validate(); err == nil {
		t.Error("zero ranks accepted")
	}
	c = DefaultConfig(1024)
	c.Queue = QueueKind(99)
	if err := c.Validate(); err == nil {
		t.Error("unknown queue kind accepted")
	}
}

func TestQueueKindString(t *testing.T) {
	kinds := map[QueueKind]string{
		QueueSingleEntry: "single-entry",
		QueuePriority:    "priority",
		QueueIdeal:       "ideal",
		QueueFIFO:        "fifo",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
