package dram

import (
	"fmt"

	"pracsim/internal/ticks"
)

// CmdKind identifies a DRAM command.
type CmdKind int

const (
	CmdACT   CmdKind = iota // activate a row in a bank
	CmdPRE                  // precharge a bank (PRAC counter update happens here)
	CmdRD                   // read one cache line from the open row
	CmdWR                   // write one cache line to the open row
	CmdREFab                // all-bank refresh for one rank
	CmdRFMab                // Refresh Management, all banks, whole channel
	CmdRFMpb                // Per-bank Refresh Management (the paper's Section 7.2 extension)
)

// String returns the JEDEC-style command mnemonic.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREFab:
		return "REFab"
	case CmdRFMab:
		return "RFMab"
	case CmdRFMpb:
		return "RFMpb"
	default:
		return fmt.Sprintf("CmdKind(%d)", int(k))
	}
}

// Cmd is one command as issued by the memory controller.
type Cmd struct {
	Kind CmdKind
	Bank int  // flat bank index for ACT/PRE/RD/WR; rank index for REFab
	Row  int  // row for ACT
	TREF bool // for REFab: this refresh also performs a targeted mitigation
}

// Result reports the timing consequences of an issued command.
type Result struct {
	// DataAt is when read data is fully transferred (CmdRD only).
	DataAt ticks.T
	// MitigatedRows lists rows mitigated by this command (RFMab / TREF).
	MitigatedRows int
}

// Stats counts device activity. All fields are cumulative.
type Stats struct {
	ACTs            int64
	PREs            int64
	RDs             int64
	WRs             int64
	REFs            int64
	RFMs            int64
	RFMpbs          int64
	TREFMitigations int64
	MitigatedRows   int64
	AlertsAsserted  int64
	CounterResets   int64 // refresh-window-wide counter wipes
}

type bankState int

const (
	bankIdle bankState = iota
	bankActive
)

// bank holds one bank's timing state machine, PRAC counters and queue.
type bank struct {
	state   bankState
	openRow int

	actReadyAt   ticks.T // earliest next ACT (tRP after PRE, tRC after ACT)
	rwReadyAt    ticks.T // earliest RD/WR after ACT (tRCD)
	preReadyAt   ticks.T // earliest PRE (tRAS / tRTP / tWR)
	lastACTAt    ticks.T
	blockedUntil ticks.T // per-bank RFMpb in flight

	counters map[int]uint32
	queue    MitigationQueue
}

// Module is one DRAM channel.
type Module struct {
	cfg   Config
	banks []bank

	rankBlockedUntil    []ticks.T // REFab in flight
	channelBlockedUntil ticks.T   // RFMab in flight
	busFreeAt           ticks.T   // shared data bus

	// Alert Back-Off state.
	alertAsserted  bool
	alertArmed     bool
	rfmsSinceAlert int
	actsSinceRFM   int

	nextCounterReset ticks.T

	stats Stats
}

// New builds a module from a validated configuration.
func New(cfg Config) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Module{
		cfg:              cfg,
		banks:            make([]bank, cfg.Org.Banks()),
		rankBlockedUntil: make([]ticks.T, cfg.Org.Ranks),
		alertArmed:       true,
		nextCounterReset: cfg.Timing.TREFW,
	}
	for i := range m.banks {
		b := &m.banks[i]
		b.counters = make(map[int]uint32)
		b.queue = newQueue(cfg, b.counters)
	}
	return m, nil
}

// MustNew is New but panics on configuration errors; intended for tests and
// experiment setup where the configuration is a literal.
func MustNew(cfg Config) *Module {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the module configuration.
func (m *Module) Config() Config { return m.cfg }

// Stats returns a snapshot of the activity counters.
func (m *Module) Stats() Stats { return m.stats }

// AlertAsserted reports whether the DRAM is currently asserting the Alert
// signal, requesting mitigation time from the memory controller.
func (m *Module) AlertAsserted() bool { return m.alertAsserted }

// OpenRow reports the row open in a bank, if any.
func (m *Module) OpenRow(bankIdx int) (row int, open bool) {
	b := &m.banks[bankIdx]
	return b.openRow, b.state == bankActive
}

// RowCounter reports the PRAC activation counter of a row.
func (m *Module) RowCounter(bankIdx, row int) uint32 {
	return m.banks[bankIdx].counters[row]
}

// HottestRow reports the row with the highest live counter in a bank.
func (m *Module) HottestRow(bankIdx int) (row int, count uint32) {
	for r, c := range m.banks[bankIdx].counters {
		if c > count || (c == count && r < row) {
			row, count = r, c
		}
	}
	return row, count
}

// ChannelBlockedUntil reports when the channel-wide RFM block ends.
func (m *Module) ChannelBlockedUntil() ticks.T { return m.channelBlockedUntil }

// Maintain performs time-driven housekeeping: the per-tREFW activation
// counter reset (when configured). The controller calls it once per
// controller cycle.
func (m *Module) Maintain(now ticks.T) {
	if !m.cfg.PRAC.Enabled || !m.cfg.PRAC.ResetOnREFW {
		return
	}
	for now >= m.nextCounterReset {
		for i := range m.banks {
			b := &m.banks[i]
			clear(b.counters)
			b.queue.Clear()
		}
		m.stats.CounterResets++
		m.nextCounterReset += m.cfg.Timing.TREFW
	}
}

// NextMaintenance reports the next time Maintain will act — the upcoming
// per-tREFW counter reset — or ticks.Never when no time-driven
// housekeeping is configured. Demand-driven controller clocks fold this
// into their wake deadline so a skipped idle window never slides a
// counter reset to a later cycle than per-cycle polling would have.
func (m *Module) NextMaintenance(ticks.T) ticks.T {
	if !m.cfg.PRAC.Enabled || !m.cfg.PRAC.ResetOnREFW {
		return ticks.Never
	}
	return m.nextCounterReset
}

// CanIssue reports whether cmd is legal at time now under all timing
// constraints and blocking conditions.
func (m *Module) CanIssue(cmd Cmd, now ticks.T) bool {
	if now < m.channelBlockedUntil {
		return false
	}
	switch cmd.Kind {
	case CmdACT:
		b := &m.banks[cmd.Bank]
		return b.state == bankIdle &&
			now >= b.actReadyAt &&
			now >= b.blockedUntil &&
			now >= m.rankBlockedUntil[m.cfg.Org.RankOf(cmd.Bank)]
	case CmdPRE:
		b := &m.banks[cmd.Bank]
		return b.state == bankActive && now >= b.preReadyAt
	case CmdRD, CmdWR:
		// The shared data bus is modeled as a serialized resource in
		// Issue: a burst that would collide queues behind the previous
		// one instead of blocking the command, so only bank state and
		// tRCD gate legality here.
		b := &m.banks[cmd.Bank]
		if b.state != bankActive || now < b.rwReadyAt || now < b.blockedUntil {
			return false
		}
		return now >= m.rankBlockedUntil[m.cfg.Org.RankOf(cmd.Bank)]
	case CmdREFab:
		rank := cmd.Bank
		if now < m.rankBlockedUntil[rank] {
			return false
		}
		lo := rank * m.cfg.Org.BanksPerRank()
		for i := lo; i < lo+m.cfg.Org.BanksPerRank(); i++ {
			if m.banks[i].state != bankIdle || now < m.banks[i].actReadyAt {
				return false
			}
		}
		return true
	case CmdRFMab:
		for i := range m.banks {
			if m.banks[i].state != bankIdle {
				return false
			}
		}
		for r := range m.rankBlockedUntil {
			if now < m.rankBlockedUntil[r] {
				return false
			}
		}
		return true
	case CmdRFMpb:
		b := &m.banks[cmd.Bank]
		return b.state == bankIdle &&
			now >= b.blockedUntil &&
			now >= m.rankBlockedUntil[m.cfg.Org.RankOf(cmd.Bank)]
	default:
		return false
	}
}

// Issue commits a command at time now. The command must be legal; Issue
// panics otherwise, because an illegal command indicates a controller bug
// that must not be silently absorbed into results.
func (m *Module) Issue(cmd Cmd, now ticks.T) Result {
	if !m.CanIssue(cmd, now) {
		panic(fmt.Sprintf("dram: illegal %v to bank %d at %v", cmd.Kind, cmd.Bank, now))
	}
	t := &m.cfg.Timing
	var res Result
	switch cmd.Kind {
	case CmdACT:
		b := &m.banks[cmd.Bank]
		b.state = bankActive
		b.openRow = cmd.Row
		b.lastACTAt = now
		b.actReadyAt = now + t.TRC
		b.rwReadyAt = now + t.TRCD
		b.preReadyAt = now + t.TRAS
		m.stats.ACTs++
		m.noteActivation()
	case CmdPRE:
		b := &m.banks[cmd.Bank]
		b.state = bankIdle
		b.actReadyAt = ticks.Max(b.actReadyAt, now+t.TRP)
		m.stats.PREs++
		m.countActivation(cmd.Bank, b.openRow)
	case CmdRD:
		b := &m.banks[cmd.Bank]
		start := ticks.Max(now+t.TCL, m.busFreeAt)
		m.busFreeAt = start + t.TBURST
		res.DataAt = start + t.TBURST
		b.preReadyAt = ticks.Max(b.preReadyAt, now+t.TRTP)
		m.stats.RDs++
	case CmdWR:
		b := &m.banks[cmd.Bank]
		start := ticks.Max(now+t.TCWL, m.busFreeAt)
		m.busFreeAt = start + t.TBURST
		b.preReadyAt = ticks.Max(b.preReadyAt, start+t.TBURST+t.TWR)
		m.stats.WRs++
	case CmdREFab:
		rank := cmd.Bank
		m.rankBlockedUntil[rank] = now + t.TRFC
		m.stats.REFs++
		if cmd.TREF {
			res.MitigatedRows = m.mitigateRank(rank)
			m.stats.TREFMitigations++
		}
	case CmdRFMab:
		m.channelBlockedUntil = now + t.TRFMab
		m.stats.RFMs++
		for rank := 0; rank < m.cfg.Org.Ranks; rank++ {
			res.MitigatedRows += m.mitigateRank(rank)
		}
		if m.alertAsserted {
			m.rfmsSinceAlert++
			if m.rfmsSinceAlert >= m.cfg.PRAC.NMit {
				// Alert serviced: deassert and arm ABODelay — the
				// Alert may only reassert after NMit activations.
				m.alertAsserted = false
				m.alertArmed = false
				m.actsSinceRFM = 0
				m.rfmsSinceAlert = 0
			}
		}
	case CmdRFMpb:
		b := &m.banks[cmd.Bank]
		b.blockedUntil = now + t.TRFMpb
		m.stats.RFMpbs++
		if row, ok := b.queue.PopVictim(); ok {
			delete(b.counters, row)
			m.stats.MitigatedRows++
			res.MitigatedRows = 1
		}
	}
	return res
}

// countActivation applies the PRAC read-modify-write that happens while a
// row is being closed: the counter increments and the mitigation queue
// observes the new value. Crossing NBO asserts the Alert.
func (m *Module) countActivation(bankIdx, row int) {
	if !m.cfg.PRAC.Enabled {
		return
	}
	b := &m.banks[bankIdx]
	b.counters[row]++
	c := b.counters[row]
	b.queue.Observe(row, c)
	if int(c) >= m.cfg.PRAC.NBO && m.alertArmed && !m.alertAsserted {
		m.alertAsserted = true
		m.stats.AlertsAsserted++
	}
}

// noteActivation advances the ABODelay arming counter.
func (m *Module) noteActivation() {
	if m.alertArmed {
		return
	}
	m.actsSinceRFM++
	if m.actsSinceRFM >= m.cfg.PRAC.NMit {
		m.alertArmed = true
	}
}

// mitigateRank services the mitigation queue of every bank in a rank:
// the chosen victim row's neighbors are refreshed and its counter resets.
// It returns the number of rows mitigated.
func (m *Module) mitigateRank(rank int) int {
	lo := rank * m.cfg.Org.BanksPerRank()
	n := 0
	for i := lo; i < lo+m.cfg.Org.BanksPerRank(); i++ {
		b := &m.banks[i]
		row, ok := b.queue.PopVictim()
		if !ok {
			continue
		}
		delete(b.counters, row)
		m.stats.MitigatedRows++
		n++
	}
	return n
}
