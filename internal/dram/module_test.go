package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pracsim/internal/ticks"
)

// smallConfig keeps row counts small so tests exercising full banks run fast.
func smallConfig(nbo int) Config {
	cfg := DefaultConfig(nbo)
	cfg.Org.Ranks = 1
	cfg.Org.BankGroups = 2
	cfg.Org.BanksPerGroup = 2
	cfg.Org.Rows = 64
	return cfg
}

func TestActivateReadPrechargeTiming(t *testing.T) {
	m := MustNew(smallConfig(1024))
	tm := m.Config().Timing

	if !m.CanIssue(Cmd{Kind: CmdACT, Bank: 0, Row: 1}, 0) {
		t.Fatal("ACT to idle bank at t=0 must be legal")
	}
	m.Issue(Cmd{Kind: CmdACT, Bank: 0, Row: 1}, 0)

	if m.CanIssue(Cmd{Kind: CmdRD, Bank: 0}, tm.TRCD-1) {
		t.Error("RD legal before tRCD")
	}
	if !m.CanIssue(Cmd{Kind: CmdRD, Bank: 0}, tm.TRCD) {
		t.Error("RD illegal at tRCD")
	}
	res := m.Issue(Cmd{Kind: CmdRD, Bank: 0}, tm.TRCD)
	wantData := tm.TRCD + tm.TCL + tm.TBURST
	if res.DataAt != wantData {
		t.Errorf("RD DataAt = %v, want %v", res.DataAt, wantData)
	}

	preAt := tm.TRCD + tm.TRTP // tRAS(16ns) < tRCD+tRTP(21ns)
	if m.CanIssue(Cmd{Kind: CmdPRE, Bank: 0}, preAt-1) {
		t.Error("PRE legal before read-to-precharge window")
	}
	if !m.CanIssue(Cmd{Kind: CmdPRE, Bank: 0}, preAt) {
		t.Error("PRE illegal at tRCD+tRTP")
	}
	m.Issue(Cmd{Kind: CmdPRE, Bank: 0}, preAt)

	if m.CanIssue(Cmd{Kind: CmdACT, Bank: 0, Row: 2}, preAt+tm.TRP-1) {
		t.Error("ACT legal before tRP after PRE")
	}
	if !m.CanIssue(Cmd{Kind: CmdACT, Bank: 0, Row: 2}, preAt+tm.TRP) {
		t.Error("ACT illegal at PRE+tRP")
	}
}

func TestTRCSameBank(t *testing.T) {
	m := MustNew(smallConfig(1024))
	tm := m.Config().Timing
	m.Issue(Cmd{Kind: CmdACT, Bank: 0, Row: 0}, 0)
	m.Issue(Cmd{Kind: CmdPRE, Bank: 0}, tm.TRAS)
	// After tRAS(16)+tRP(36)=52ns = tRC, so both constraints coincide here.
	if m.CanIssue(Cmd{Kind: CmdACT, Bank: 0, Row: 1}, tm.TRC-1) {
		t.Error("ACT legal before tRC")
	}
	if !m.CanIssue(Cmd{Kind: CmdACT, Bank: 0, Row: 1}, tm.TRC) {
		t.Error("ACT illegal at tRC")
	}
}

func TestWriteRecoveryBlocksPrecharge(t *testing.T) {
	m := MustNew(smallConfig(1024))
	tm := m.Config().Timing
	m.Issue(Cmd{Kind: CmdACT, Bank: 0, Row: 0}, 0)
	m.Issue(Cmd{Kind: CmdWR, Bank: 0}, tm.TRCD)
	preAt := tm.TRCD + tm.TCWL + tm.TBURST + tm.TWR
	if m.CanIssue(Cmd{Kind: CmdPRE, Bank: 0}, preAt-1) {
		t.Error("PRE legal during write recovery")
	}
	if !m.CanIssue(Cmd{Kind: CmdPRE, Bank: 0}, preAt) {
		t.Error("PRE illegal after write recovery")
	}
}

func TestDataBusSerializesReads(t *testing.T) {
	m := MustNew(smallConfig(1024))
	tm := m.Config().Timing
	m.Issue(Cmd{Kind: CmdACT, Bank: 0, Row: 0}, 0)
	m.Issue(Cmd{Kind: CmdACT, Bank: 1, Row: 0}, 1)
	r0 := m.Issue(Cmd{Kind: CmdRD, Bank: 0}, tm.TRCD)
	// Bank 1's read issued one tick later must queue behind bank 0's burst.
	r1 := m.Issue(Cmd{Kind: CmdRD, Bank: 1}, tm.TRCD+1)
	if r1.DataAt != r0.DataAt+tm.TBURST {
		t.Errorf("second read DataAt = %v, want %v (bus serialized)", r1.DataAt, r0.DataAt+tm.TBURST)
	}
}

func TestPRACCounterIncrementsOnPrecharge(t *testing.T) {
	m := MustNew(smallConfig(1024))
	tm := m.Config().Timing
	now := ticks.T(0)
	for i := 0; i < 3; i++ {
		m.Issue(Cmd{Kind: CmdACT, Bank: 2, Row: 7}, now)
		if got := m.RowCounter(2, 7); got != uint32(i) {
			t.Fatalf("counter after ACT %d = %d; increments must happen at PRE", i+1, got)
		}
		m.Issue(Cmd{Kind: CmdPRE, Bank: 2}, now+tm.TRAS)
		if got := m.RowCounter(2, 7); got != uint32(i+1) {
			t.Fatalf("counter after PRE %d = %d, want %d", i+1, got, i+1)
		}
		now += tm.TRC
	}
}

func hammer(t *testing.T, m *Module, bank, row, n int, start ticks.T) ticks.T {
	t.Helper()
	tm := m.Config().Timing
	now := start
	for i := 0; i < n; i++ {
		for !m.CanIssue(Cmd{Kind: CmdACT, Bank: bank, Row: row}, now) {
			now++
		}
		m.Issue(Cmd{Kind: CmdACT, Bank: bank, Row: row}, now)
		pre := now + tm.TRAS
		for !m.CanIssue(Cmd{Kind: CmdPRE, Bank: bank}, pre) {
			pre++
		}
		m.Issue(Cmd{Kind: CmdPRE, Bank: bank}, pre)
		now += tm.TRC
	}
	return now
}

func TestAlertAssertsAtNBO(t *testing.T) {
	m := MustNew(smallConfig(8))
	hammer(t, m, 0, 3, 7, 0)
	if m.AlertAsserted() {
		t.Fatal("Alert asserted before NBO")
	}
	hammer(t, m, 0, 3, 1, ticks.T(8)*m.Config().Timing.TRC)
	if !m.AlertAsserted() {
		t.Fatal("Alert not asserted at NBO")
	}
	if got := m.Stats().AlertsAsserted; got != 1 {
		t.Fatalf("AlertsAsserted = %d, want 1", got)
	}
}

func TestRFMabServicesAlertAndMitigates(t *testing.T) {
	cfg := smallConfig(8)
	cfg.PRAC.NMit = 1
	m := MustNew(cfg)
	end := hammer(t, m, 0, 3, 8, 0)
	if !m.AlertAsserted() {
		t.Fatal("Alert not asserted")
	}
	res := m.Issue(Cmd{Kind: CmdRFMab}, end)
	if res.MitigatedRows != 1 {
		t.Fatalf("RFMab mitigated %d rows, want 1", res.MitigatedRows)
	}
	if m.AlertAsserted() {
		t.Fatal("Alert still asserted after NMit RFMs")
	}
	if got := m.RowCounter(0, 3); got != 0 {
		t.Fatalf("mitigated row counter = %d, want 0", got)
	}
	if m.ChannelBlockedUntil() != end+m.Config().Timing.TRFMab {
		t.Fatalf("channel block = %v, want %v", m.ChannelBlockedUntil(), end+m.Config().Timing.TRFMab)
	}
}

func TestRFMabRequiresIdleBanksAndBlocksChannel(t *testing.T) {
	m := MustNew(smallConfig(1024))
	tm := m.Config().Timing
	m.Issue(Cmd{Kind: CmdACT, Bank: 0, Row: 0}, 0)
	if m.CanIssue(Cmd{Kind: CmdRFMab}, 1) {
		t.Fatal("RFMab legal with an open row")
	}
	m.Issue(Cmd{Kind: CmdPRE, Bank: 0}, tm.TRAS)
	m.Issue(Cmd{Kind: CmdRFMab}, tm.TRAS+1)
	if m.CanIssue(Cmd{Kind: CmdACT, Bank: 1, Row: 0}, tm.TRAS+tm.TRFMab) {
		t.Error("ACT legal during RFM channel block")
	}
	if !m.CanIssue(Cmd{Kind: CmdACT, Bank: 1, Row: 0}, tm.TRAS+1+tm.TRFMab) {
		t.Error("ACT illegal after RFM block expires")
	}
}

func TestABODelayGatesReassertion(t *testing.T) {
	cfg := smallConfig(4)
	cfg.PRAC.NMit = 2
	m := MustNew(cfg)
	end := hammer(t, m, 0, 1, 4, 0)
	if !m.AlertAsserted() {
		t.Fatal("Alert not asserted at NBO")
	}
	// First RFM does not finish servicing at PRAC level 2.
	m.Issue(Cmd{Kind: CmdRFMab}, end)
	if !m.AlertAsserted() {
		t.Fatal("Alert cleared after 1 of 2 RFMs")
	}
	end2 := end + m.Config().Timing.TRFMab
	m.Issue(Cmd{Kind: CmdRFMab}, end2)
	if m.AlertAsserted() {
		t.Fatal("Alert still set after NMit RFMs")
	}
	// Hammer another row past NBO using a single activation; with
	// ABODelay = NMit = 2, the first post-RFM activation cannot alert.
	end3 := hammer(t, m, 1, 2, 4, end2+m.Config().Timing.TRFMab)
	_ = end3
	if got := m.Stats().AlertsAsserted; got != 2 {
		t.Fatalf("AlertsAsserted = %d, want 2 (reassert allowed after ABODelay)", got)
	}
}

func TestREFabBlocksRankOnly(t *testing.T) {
	cfg := DefaultConfig(1024)
	cfg.Org.Rows = 64
	m := MustNew(cfg)
	tm := m.Config().Timing
	m.Issue(Cmd{Kind: CmdREFab, Bank: 0}, 0) // rank 0
	if m.CanIssue(Cmd{Kind: CmdACT, Bank: 0, Row: 0}, tm.TRFC-1) {
		t.Error("ACT to refreshing rank legal before tRFC")
	}
	otherRank := cfg.Org.BanksPerRank() // first bank of rank 1
	if !m.CanIssue(Cmd{Kind: CmdACT, Bank: otherRank, Row: 0}, 1) {
		t.Error("ACT to non-refreshing rank blocked by REFab")
	}
}

func TestTREFPerformsMitigation(t *testing.T) {
	m := MustNew(smallConfig(1024))
	end := hammer(t, m, 0, 5, 3, 0)
	res := m.Issue(Cmd{Kind: CmdREFab, Bank: 0, TREF: true}, end)
	if res.MitigatedRows != 1 {
		t.Fatalf("TREF mitigated %d rows, want 1", res.MitigatedRows)
	}
	if got := m.RowCounter(0, 5); got != 0 {
		t.Fatalf("row counter after TREF = %d, want 0", got)
	}
	if got := m.Stats().TREFMitigations; got != 1 {
		t.Fatalf("TREFMitigations = %d, want 1", got)
	}
}

func TestCounterResetOnREFW(t *testing.T) {
	cfg := smallConfig(1 << 30)
	cfg.Timing.TREFW = ticks.FromNS(1000)
	m := MustNew(cfg)
	hammer(t, m, 0, 9, 3, 0)
	if got := m.RowCounter(0, 9); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	m.Maintain(ticks.FromNS(1000))
	if got := m.RowCounter(0, 9); got != 0 {
		t.Fatalf("counter after tREFW reset = %d, want 0", got)
	}
	if got := m.Stats().CounterResets; got != 1 {
		t.Fatalf("CounterResets = %d, want 1", got)
	}
}

func TestNoResetWhenDisabled(t *testing.T) {
	cfg := smallConfig(1 << 30)
	cfg.Timing.TREFW = ticks.FromNS(1000)
	cfg.PRAC.ResetOnREFW = false
	m := MustNew(cfg)
	hammer(t, m, 0, 9, 3, 0)
	m.Maintain(ticks.FromNS(5000))
	if got := m.RowCounter(0, 9); got != 3 {
		t.Fatalf("counter = %d, want 3 (reset disabled)", got)
	}
}

func TestHottestRow(t *testing.T) {
	m := MustNew(smallConfig(1 << 30))
	end := hammer(t, m, 0, 4, 2, 0)
	hammer(t, m, 0, 8, 5, end)
	row, count := m.HottestRow(0)
	if row != 8 || count != 5 {
		t.Fatalf("HottestRow = %d,%d; want 8,5", row, count)
	}
}

func TestIllegalIssuePanics(t *testing.T) {
	m := MustNew(smallConfig(1024))
	defer func() {
		if recover() == nil {
			t.Fatal("Issue of illegal command did not panic")
		}
	}()
	m.Issue(Cmd{Kind: CmdRD, Bank: 0}, 0) // no open row
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(1024)
	cfg.Org.Ranks = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

// Property: for any legal interleaving of ACT/PRE pairs across banks, a
// row's PRAC counter equals the number of completed ACT+PRE cycles on it.
func TestCounterMatchesActivationsProperty(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(smallConfig(1 << 30))
		tm := m.Config().Timing
		now := ticks.T(0)
		want := map[[2]int]uint32{}
		for i := 0; i < int(steps)+1; i++ {
			bank := rng.Intn(4)
			row := rng.Intn(8)
			for !m.CanIssue(Cmd{Kind: CmdACT, Bank: bank, Row: row}, now) {
				now++
			}
			m.Issue(Cmd{Kind: CmdACT, Bank: bank, Row: row}, now)
			pre := now + tm.TRAS
			for !m.CanIssue(Cmd{Kind: CmdPRE, Bank: bank}, pre) {
				pre++
			}
			m.Issue(Cmd{Kind: CmdPRE, Bank: bank}, pre)
			want[[2]int{bank, row}]++
			now++
		}
		for key, w := range want {
			if m.RowCounter(key[0], key[1]) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats conservation — ACT count always equals PRE count after
// every bank is closed, and mitigated rows never exceed issued RFMs * banks.
func TestStatsConservationProperty(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(smallConfig(1 << 30))
		tm := m.Config().Timing
		now := ticks.T(0)
		for i := 0; i < int(steps)+1; i++ {
			bank := rng.Intn(4)
			now = hammerOne(m, bank, rng.Intn(8), now)
			if rng.Intn(8) == 0 {
				for !m.CanIssue(Cmd{Kind: CmdRFMab}, now) {
					now++
				}
				m.Issue(Cmd{Kind: CmdRFMab}, now)
				now += tm.TRFMab
			}
		}
		s := m.Stats()
		if s.ACTs != s.PREs {
			return false
		}
		return s.MitigatedRows <= s.RFMs*int64(m.Config().Org.Banks())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func hammerOne(m *Module, bank, row int, start ticks.T) ticks.T {
	tm := m.Config().Timing
	now := start
	for !m.CanIssue(Cmd{Kind: CmdACT, Bank: bank, Row: row}, now) {
		now++
	}
	m.Issue(Cmd{Kind: CmdACT, Bank: bank, Row: row}, now)
	pre := now + tm.TRAS
	for !m.CanIssue(Cmd{Kind: CmdPRE, Bank: bank}, pre) {
		pre++
	}
	m.Issue(Cmd{Kind: CmdPRE, Bank: bank}, pre)
	return pre + 1
}
