package dram

// MitigationQueue is the in-DRAM per-bank structure that decides which row
// is mitigated when an RFM (or a targeted refresh) gives the device time to
// act. The PRAC specification leaves this design to vendors; the paper's
// Section 4.1 argues a single-entry frequency-based queue suffices for TPRAC.
type MitigationQueue interface {
	// Observe records that row now has the given activation count.
	// It is called every time the row's counter is incremented.
	Observe(row int, count uint32)

	// PopVictim returns the row the device chooses to mitigate next and
	// removes it from the queue. ok is false when the queue is empty.
	PopVictim() (row int, ok bool)

	// Clear empties the queue. It is called when the device resets all
	// activation counters (e.g. at a refresh-window boundary).
	Clear()
}

// singleEntryQueue is TPRAC's design: it retains the single most activated
// row seen since the last mitigation (Section 4.1, item 2 in Figure 6).
type singleEntryQueue struct {
	row   int
	count uint32
	valid bool
}

func newSingleEntryQueue() *singleEntryQueue { return &singleEntryQueue{} }

func (q *singleEntryQueue) Observe(row int, count uint32) {
	if !q.valid || count > q.count || row == q.row {
		q.row, q.count, q.valid = row, count, true
	}
}

func (q *singleEntryQueue) PopVictim() (int, bool) {
	if !q.valid {
		return 0, false
	}
	q.valid = false
	row := q.row
	q.count = 0
	return row, true
}

func (q *singleEntryQueue) Clear() { q.valid, q.count = false, 0 }

// priorityQueue is a QPRAC-style bounded structure retaining the top-K rows
// by activation count. Eviction replaces the minimum entry when a hotter row
// appears.
type priorityQueue struct {
	rows   []int
	counts []uint32
	index  map[int]int // row -> slot
	depth  int
}

func newPriorityQueue(depth int) *priorityQueue {
	return &priorityQueue{
		rows:   make([]int, 0, depth),
		counts: make([]uint32, 0, depth),
		index:  make(map[int]int, depth),
		depth:  depth,
	}
}

func (q *priorityQueue) Observe(row int, count uint32) {
	if slot, ok := q.index[row]; ok {
		q.counts[slot] = count
		return
	}
	if len(q.rows) < q.depth {
		q.index[row] = len(q.rows)
		q.rows = append(q.rows, row)
		q.counts = append(q.counts, count)
		return
	}
	min := 0
	for i := 1; i < len(q.counts); i++ {
		if q.counts[i] < q.counts[min] {
			min = i
		}
	}
	if count <= q.counts[min] {
		return
	}
	delete(q.index, q.rows[min])
	q.rows[min], q.counts[min] = row, count
	q.index[row] = min
}

func (q *priorityQueue) PopVictim() (int, bool) {
	if len(q.rows) == 0 {
		return 0, false
	}
	max := 0
	for i := 1; i < len(q.counts); i++ {
		if q.counts[i] > q.counts[max] {
			max = i
		}
	}
	row := q.rows[max]
	last := len(q.rows) - 1
	delete(q.index, row)
	if max != last {
		q.rows[max], q.counts[max] = q.rows[last], q.counts[last]
		q.index[q.rows[max]] = max
	}
	q.rows, q.counts = q.rows[:last], q.counts[:last]
	return row, true
}

func (q *priorityQueue) Clear() {
	q.rows = q.rows[:0]
	q.counts = q.counts[:0]
	clear(q.index)
}

// fifoQueue is the insecure bounded FIFO design highlighted by prior work
// (Section 2.3): rows enter in arrival order once they first cross half the
// queue owner's observation, and mitigation serves the head regardless of
// how hot the row actually is.
type fifoQueue struct {
	rows  []int
	in    map[int]bool
	depth int
}

func newFIFOQueue(depth int) *fifoQueue {
	return &fifoQueue{in: make(map[int]bool, depth), depth: depth}
}

func (q *fifoQueue) Observe(row int, count uint32) {
	if q.in[row] || len(q.rows) >= q.depth {
		return
	}
	q.rows = append(q.rows, row)
	q.in[row] = true
}

func (q *fifoQueue) PopVictim() (int, bool) {
	if len(q.rows) == 0 {
		return 0, false
	}
	row := q.rows[0]
	q.rows = q.rows[1:]
	delete(q.in, row)
	return row, true
}

func (q *fifoQueue) Clear() {
	q.rows = q.rows[:0]
	clear(q.in)
}

// idealQueue models UPRAC's idealized mitigation: it has full knowledge of
// the bank's live counters and always mitigates the hottest row. It keeps a
// reference to the bank's counter map rather than copying state.
type idealQueue struct {
	counters map[int]uint32
}

func newIdealQueue(counters map[int]uint32) *idealQueue {
	return &idealQueue{counters: counters}
}

func (q *idealQueue) Observe(int, uint32) {}

func (q *idealQueue) PopVictim() (int, bool) {
	best, bestCount, found := 0, uint32(0), false
	for row, c := range q.counters {
		if !found || c > bestCount || (c == bestCount && row < best) {
			best, bestCount, found = row, c, true
		}
	}
	if !found || bestCount == 0 {
		return 0, false
	}
	return best, true
}

func (q *idealQueue) Clear() {}

// newQueue builds the queue implementation selected by the configuration.
// counters is the owning bank's live counter map, used by the ideal design.
func newQueue(cfg Config, counters map[int]uint32) MitigationQueue {
	switch cfg.Queue {
	case QueueSingleEntry:
		return newSingleEntryQueue()
	case QueuePriority:
		return newPriorityQueue(cfg.QueueDepth)
	case QueueFIFO:
		return newFIFOQueue(cfg.QueueDepth)
	case QueueIdeal:
		return newIdealQueue(counters)
	default:
		panic("dram: unknown queue kind (validate config first)")
	}
}
