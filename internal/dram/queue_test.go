package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleEntryQueueTracksHottest(t *testing.T) {
	q := newSingleEntryQueue()
	q.Observe(5, 1)
	q.Observe(7, 3)
	q.Observe(5, 2) // row 5 is now at 2, still colder than row 7
	if row, ok := q.PopVictim(); !ok || row != 7 {
		t.Fatalf("PopVictim() = %d,%v; want 7,true", row, ok)
	}
	if _, ok := q.PopVictim(); ok {
		t.Fatal("queue should be empty after pop")
	}
}

func TestSingleEntryQueueUpdatesOwnRow(t *testing.T) {
	q := newSingleEntryQueue()
	q.Observe(3, 10)
	q.Observe(3, 11) // same row keeps its slot even without exceeding others
	if row, ok := q.PopVictim(); !ok || row != 3 {
		t.Fatalf("PopVictim() = %d,%v; want 3,true", row, ok)
	}
}

func TestSingleEntryQueueClear(t *testing.T) {
	q := newSingleEntryQueue()
	q.Observe(1, 100)
	q.Clear()
	if _, ok := q.PopVictim(); ok {
		t.Fatal("cleared queue must be empty")
	}
}

// The single-entry queue's defining invariant (Section 4.2.3): after any
// observation sequence, the queued row is one whose final observed count is
// maximal among all observed rows.
func TestSingleEntryQueueHoldsMaxProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newSingleEntryQueue()
		counts := map[int]uint32{}
		for i := 0; i < int(n)+1; i++ {
			row := rng.Intn(8)
			counts[row]++
			q.Observe(row, counts[row])
		}
		row, ok := q.PopVictim()
		if !ok {
			return false
		}
		for _, c := range counts {
			if c > counts[row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityQueueEvictsColdest(t *testing.T) {
	q := newPriorityQueue(2)
	q.Observe(1, 5)
	q.Observe(2, 9)
	q.Observe(3, 7) // evicts row 1 (count 5)
	if row, ok := q.PopVictim(); !ok || row != 2 {
		t.Fatalf("first PopVictim() = %d,%v; want 2,true", row, ok)
	}
	if row, ok := q.PopVictim(); !ok || row != 3 {
		t.Fatalf("second PopVictim() = %d,%v; want 3,true", row, ok)
	}
	if _, ok := q.PopVictim(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestPriorityQueueIgnoresColderThanMin(t *testing.T) {
	q := newPriorityQueue(2)
	q.Observe(1, 5)
	q.Observe(2, 9)
	q.Observe(3, 4) // colder than both; dropped
	got := map[int]bool{}
	for {
		row, ok := q.PopVictim()
		if !ok {
			break
		}
		got[row] = true
	}
	if !got[1] || !got[2] || got[3] {
		t.Fatalf("queue contents = %v, want rows 1 and 2 only", got)
	}
}

func TestPriorityQueueUpdateExisting(t *testing.T) {
	q := newPriorityQueue(2)
	q.Observe(1, 5)
	q.Observe(2, 9)
	q.Observe(1, 12)
	if row, _ := q.PopVictim(); row != 1 {
		t.Fatalf("hottest after update = %d, want 1", row)
	}
}

// The priority queue must always pop rows in non-increasing count order and
// contain the hottest observed row when at least one row was observed more
// than the (depth)th hottest.
func TestPriorityQueuePopOrderProperty(t *testing.T) {
	prop := func(seed int64, n uint8, depthRaw uint8) bool {
		depth := int(depthRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		q := newPriorityQueue(depth)
		counts := map[int]uint32{}
		for i := 0; i < int(n)+1; i++ {
			row := rng.Intn(10)
			counts[row]++
			q.Observe(row, counts[row])
		}
		prev := uint32(1 << 31)
		for {
			row, ok := q.PopVictim()
			if !ok {
				return true
			}
			if counts[row] > prev {
				return false
			}
			prev = counts[row]
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOQueueOrderAndBound(t *testing.T) {
	q := newFIFOQueue(2)
	q.Observe(4, 1)
	q.Observe(9, 1)
	q.Observe(2, 50) // full: dropped despite being hottest (the design flaw)
	if row, _ := q.PopVictim(); row != 4 {
		t.Fatalf("FIFO head = %d, want 4", row)
	}
	if row, _ := q.PopVictim(); row != 9 {
		t.Fatalf("FIFO second = %d, want 9", row)
	}
	if _, ok := q.PopVictim(); ok {
		t.Fatal("FIFO should be empty")
	}
}

func TestFIFOQueueNoDuplicates(t *testing.T) {
	q := newFIFOQueue(4)
	q.Observe(1, 1)
	q.Observe(1, 2)
	q.Observe(1, 3)
	if row, ok := q.PopVictim(); !ok || row != 1 {
		t.Fatalf("PopVictim() = %d,%v; want 1,true", row, ok)
	}
	if _, ok := q.PopVictim(); ok {
		t.Fatal("row 1 was enqueued more than once")
	}
}

func TestIdealQueuePopsLiveMax(t *testing.T) {
	counters := map[int]uint32{10: 3, 20: 8, 30: 8}
	q := newIdealQueue(counters)
	row, ok := q.PopVictim()
	if !ok || row != 20 { // ties break toward the lower row index
		t.Fatalf("PopVictim() = %d,%v; want 20,true", row, ok)
	}
}

func TestIdealQueueEmptyCounters(t *testing.T) {
	q := newIdealQueue(map[int]uint32{})
	if _, ok := q.PopVictim(); ok {
		t.Fatal("ideal queue over empty counters must report empty")
	}
}

func TestNewQueueSelectsKind(t *testing.T) {
	counters := map[int]uint32{}
	cases := []struct {
		kind QueueKind
		want string
	}{
		{QueueSingleEntry, "*dram.singleEntryQueue"},
		{QueuePriority, "*dram.priorityQueue"},
		{QueueFIFO, "*dram.fifoQueue"},
		{QueueIdeal, "*dram.idealQueue"},
	}
	for _, c := range cases {
		cfg := DefaultConfig(1024)
		cfg.Queue = c.kind
		cfg.QueueDepth = 4
		q := newQueue(cfg, counters)
		if got := typeName(q); got != c.want {
			t.Errorf("newQueue(%v) = %s, want %s", c.kind, got, c.want)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *singleEntryQueue:
		return "*dram.singleEntryQueue"
	case *priorityQueue:
		return "*dram.priorityQueue"
	case *fifoQueue:
		return "*dram.fifoQueue"
	case *idealQueue:
		return "*dram.idealQueue"
	default:
		return "unknown"
	}
}
