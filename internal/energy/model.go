// Package energy models DRAM energy for the paper's Table 5: the overhead
// of TPRAC split into mitigation energy (the five extra activations each
// RFM-driven mitigation performs: four victim refreshes plus one
// counter-reset activation) and non-mitigation energy (longer execution
// time under reduced bandwidth).
//
// Absolute per-operation energies are datasheet-typical DDR5 estimates —
// the authors' testbed constants are not public — so, exactly like the
// paper, results are reported as overheads relative to a baseline run.
package energy

import (
	"fmt"

	"pracsim/internal/dram"
	"pracsim/internal/ticks"
)

// Params holds per-operation energies in picojoules and background power
// in milliwatts per rank.
type Params struct {
	ACTPrePJ            float64 // one ACT+PRE pair
	ReadPJ              float64 // one 64B read burst
	WritePJ             float64 // one 64B write burst
	RefabPJ             float64 // one all-bank refresh of one rank
	MitigationPJ        float64 // one mitigated row: 4 victim refreshes + 1 reset ACT
	BackgroundMWPerRank float64
}

// DefaultParams returns the model's DDR5-class constants.
func DefaultParams() Params {
	const actPre = 170
	return Params{
		ACTPrePJ:            actPre,
		ReadPJ:              300,
		WritePJ:             330,
		RefabPJ:             28_000,
		MitigationPJ:        5 * actPre,
		BackgroundMWPerRank: 120,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.ACTPrePJ <= 0 || p.ReadPJ <= 0 || p.WritePJ <= 0 || p.RefabPJ <= 0 ||
		p.MitigationPJ <= 0 || p.BackgroundMWPerRank <= 0 {
		return fmt.Errorf("energy: all parameters must be positive: %+v", p)
	}
	return nil
}

// Breakdown is the energy of one simulation interval, in picojoules.
type Breakdown struct {
	AccessPJ     float64 // demand ACT/PRE/RD/WR
	RefreshPJ    float64 // periodic refresh
	MitigationPJ float64 // RFM- and TREF-driven row mitigations
	BackgroundPJ float64 // static power over the interval
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.AccessPJ + b.RefreshPJ + b.MitigationPJ + b.BackgroundPJ
}

// Compute derives the energy breakdown from device stats over an interval.
func Compute(p Params, st dram.Stats, ranks int, elapsed ticks.T) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if ranks <= 0 || elapsed < 0 {
		return Breakdown{}, fmt.Errorf("energy: ranks must be positive and elapsed non-negative")
	}
	seconds := elapsed.Seconds()
	return Breakdown{
		AccessPJ:     float64(st.ACTs)*p.ACTPrePJ + float64(st.RDs)*p.ReadPJ + float64(st.WRs)*p.WritePJ,
		RefreshPJ:    float64(st.REFs) * p.RefabPJ,
		MitigationPJ: float64(st.MitigatedRows) * p.MitigationPJ,
		BackgroundPJ: p.BackgroundMWPerRank * float64(ranks) * seconds * 1e9, // mW*s = 1e9 pJ
	}, nil
}

// Overhead is the paper's Table 5 row: mitigation and non-mitigation energy
// overheads of a defended run relative to a baseline run, in percent.
type Overhead struct {
	MitigationPct    float64
	NonMitigationPct float64
	TotalPct         float64
}

// CompareRuns computes Table 5 numbers. Both runs must have executed the
// same work (the harness runs the same instruction budget).
func CompareRuns(p Params, baseline, defended dram.Stats, ranks int, baseElapsed, defElapsed ticks.T) (Overhead, error) {
	base, err := Compute(p, baseline, ranks, baseElapsed)
	if err != nil {
		return Overhead{}, err
	}
	def, err := Compute(p, defended, ranks, defElapsed)
	if err != nil {
		return Overhead{}, err
	}
	baseTotal := base.Total()
	if baseTotal <= 0 {
		return Overhead{}, fmt.Errorf("energy: baseline total is zero")
	}
	mit := def.MitigationPJ - base.MitigationPJ
	total := def.Total() - baseTotal
	o := Overhead{
		MitigationPct: 100 * mit / baseTotal,
		TotalPct:      100 * total / baseTotal,
	}
	o.NonMitigationPct = o.TotalPct - o.MitigationPct
	return o, nil
}
