package energy

import (
	"testing"
	"testing/quick"

	"pracsim/internal/dram"
	"pracsim/internal/ticks"
)

func TestComputeBreakdown(t *testing.T) {
	p := DefaultParams()
	st := dram.Stats{ACTs: 100, RDs: 50, WRs: 20, REFs: 10, MitigatedRows: 4}
	b, err := Compute(p, st, 4, ticks.FromUS(10))
	if err != nil {
		t.Fatal(err)
	}
	wantAccess := 100*p.ACTPrePJ + 50*p.ReadPJ + 20*p.WritePJ
	if b.AccessPJ != wantAccess {
		t.Errorf("AccessPJ = %v, want %v", b.AccessPJ, wantAccess)
	}
	if b.RefreshPJ != 10*p.RefabPJ {
		t.Errorf("RefreshPJ = %v, want %v", b.RefreshPJ, 10*p.RefabPJ)
	}
	if b.MitigationPJ != 4*p.MitigationPJ {
		t.Errorf("MitigationPJ = %v, want %v", b.MitigationPJ, 4*p.MitigationPJ)
	}
	// 120mW * 4 ranks * 10us = 4.8uJ = 4.8e6 pJ.
	if b.BackgroundPJ < 4.7e6 || b.BackgroundPJ > 4.9e6 {
		t.Errorf("BackgroundPJ = %v, want about 4.8e6", b.BackgroundPJ)
	}
	if b.Total() <= 0 {
		t.Error("zero total energy")
	}
}

func TestCompareRunsSplitsOverheads(t *testing.T) {
	p := DefaultParams()
	base := dram.Stats{ACTs: 1000, RDs: 1000, REFs: 100}
	defended := base
	defended.MitigatedRows = 200
	defended.ACTs += 0
	// Defended run takes 10% longer wall-clock.
	o, err := CompareRuns(p, base, defended, 4, ticks.FromUS(100), ticks.FromUS(110))
	if err != nil {
		t.Fatal(err)
	}
	if o.MitigationPct <= 0 {
		t.Errorf("MitigationPct = %v, want positive", o.MitigationPct)
	}
	if o.NonMitigationPct <= 0 {
		t.Errorf("NonMitigationPct = %v, want positive (longer execution)", o.NonMitigationPct)
	}
	diff := o.TotalPct - o.MitigationPct - o.NonMitigationPct
	if diff > 1e-9 || diff < -1e-9 {
		t.Errorf("overhead split does not add up: %+v", o)
	}
}

func TestCompareRunsIdenticalIsZero(t *testing.T) {
	p := DefaultParams()
	st := dram.Stats{ACTs: 10, RDs: 10, REFs: 1}
	o, err := CompareRuns(p, st, st, 4, ticks.FromUS(10), ticks.FromUS(10))
	if err != nil {
		t.Fatal(err)
	}
	if o.TotalPct != 0 || o.MitigationPct != 0 {
		t.Errorf("identical runs produced overhead %+v", o)
	}
}

func TestValidation(t *testing.T) {
	bad := DefaultParams()
	bad.ReadPJ = 0
	if _, err := Compute(bad, dram.Stats{}, 4, 0); err == nil {
		t.Error("zero ReadPJ accepted")
	}
	if _, err := Compute(DefaultParams(), dram.Stats{}, 0, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := CompareRuns(DefaultParams(), dram.Stats{}, dram.Stats{}, 4, 0, 0); err == nil {
		t.Error("zero-energy baseline accepted")
	}
}

// Property: energy is monotone in every stat counter.
func TestEnergyMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(acts, rds, wrs, refs, mits uint16, extra uint8) bool {
		st := dram.Stats{
			ACTs: int64(acts), RDs: int64(rds), WRs: int64(wrs),
			REFs: int64(refs), MitigatedRows: int64(mits),
		}
		b1, err := Compute(p, st, 4, ticks.FromUS(10))
		if err != nil {
			return false
		}
		st.ACTs += int64(extra)
		st.MitigatedRows += int64(extra)
		b2, err := Compute(p, st, 4, ticks.FromUS(10))
		if err != nil {
			return false
		}
		return b2.Total() >= b1.Total()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
