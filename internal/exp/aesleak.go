package exp

import (
	"fmt"

	"pracsim/internal/aes"
	"pracsim/internal/attack"
	"pracsim/internal/mitigation"
	"pracsim/internal/stats"
	"pracsim/internal/ticks"
)

// Fig4Result is one attack instance with its timeline (the paper's Figure 4:
// p0 = 0, k0 = 0, watching Row 0 versus the other rows).
type Fig4Result struct {
	Attack   attack.AESResult
	NBO      int
	VictimBy []attack.TimelinePoint
}

// RunFig4 reproduces Figure 4.
func RunFig4(encryptions int) (Fig4Result, error) {
	if encryptions <= 0 {
		encryptions = 200
	}
	key := make([]byte, aes.KeySize) // k0 = 0, as in the paper's example
	res, err := attack.RunAESAttackVoted(attack.AESConfig{
		Key:         key,
		TargetByte:  0,
		Plaintext:   0,
		Encryptions: encryptions,
		NBO:         256,
		Seed:        1,
		TimelineRes: ticks.FromUS(10),
	}, 3)
	if err != nil {
		return Fig4Result{}, fmt.Errorf("fig4: %w", err)
	}
	return Fig4Result{Attack: res, NBO: 256, VictimBy: res.Timeline}, nil
}

// Render returns the human-readable report.
func (r Fig4Result) Render() string {
	a := r.Attack
	t := &stats.Table{Header: []string{"quantity", "value"}}
	t.Add("victim activations to hot row", a.VictimRowActs[a.TrueRow%aes.CacheLinesPerTable])
	maxOther := uint32(0)
	for l, c := range a.VictimRowActs {
		if l != a.TrueRow%aes.CacheLinesPerTable && c > maxOther {
			maxOther = c
		}
	}
	t.Add("max other-row activations", maxOther)
	t.Add("attacker activations to ABO", a.AttackerCount)
	t.Add("victim+attacker on hot row", int(a.VictimRowActs[a.TrueRow%aes.CacheLinesPerTable])+a.AttackerCount)
	t.Add("NBO", r.NBO)
	t.Add("row triggering ABO", a.RecoveredRow)
	t.Add("true hot row", a.TrueRow)

	target := make([]float64, 0, len(r.VictimBy))
	other := make([]float64, 0, len(r.VictimBy))
	rfms := make([]float64, 0, len(r.VictimBy))
	for _, p := range r.VictimBy {
		target = append(target, float64(p.TargetActs))
		other = append(other, float64(p.MaxOther))
		rfms = append(rfms, float64(p.RFMs))
	}
	return "Figure 4: PRACLeak side channel on AES T-tables (p0=0, k0=0)\n" +
		t.String() +
		"hot-row activations over time: " + stats.Sparkline(target) + "\n" +
		"other-row activations over time: " + stats.Sparkline(other) + "\n" +
		"cumulative RFMs over time:       " + stats.Sparkline(rfms) + "\n"
}

// CSV returns the timeline as CSV.
func (r Fig4Result) CSV() string {
	t := &stats.Table{Header: []string{"time_us", "hot_row_acts", "max_other_acts", "rfms"}}
	for _, p := range r.VictimBy {
		t.Add(p.At.US(), int(p.TargetActs), int(p.MaxOther), p.RFMs)
	}
	return t.CSV()
}

// Fig5Result sweeps the key byte value and records, per k0, the victim's
// per-row activation profile (panel a) and the attacker count on the row
// that triggered the first ABO (panel b).
type Fig5Result struct {
	K0Values      []int
	VictimActs    [][]float64 // [row][k0 index]
	AttackerCount []int
	TriggerRow    []int
	TrueRow       []int
	Hits          int
}

// RunFig5 reproduces Figure 5, sweeping k0 across the byte range with the
// given stride (paper: stride 1; use larger strides for quick runs). Each
// key value is an independent attack instance; the sweep fans out across
// workers (optional; all cores by default) with results slotted by key
// index.
func RunFig5(encryptions, stride int, workers ...int) (Fig5Result, error) {
	if encryptions <= 0 {
		encryptions = 200
	}
	if stride <= 0 {
		stride = 16
	}
	var ks []int
	for k0 := 0; k0 < 256; k0 += stride {
		ks = append(ks, k0)
	}
	res := Fig5Result{
		K0Values:      ks,
		VictimActs:    make([][]float64, aes.CacheLinesPerTable),
		AttackerCount: make([]int, len(ks)),
		TriggerRow:    make([]int, len(ks)),
		TrueRow:       make([]int, len(ks)),
	}
	for row := range res.VictimActs {
		res.VictimActs[row] = make([]float64, len(ks))
	}
	hits := make([]bool, len(ks))
	err := sweepPool(workers).Run(len(ks), func(i int) error {
		k0 := ks[i]
		key := make([]byte, aes.KeySize)
		key[0] = byte(k0)
		a, err := attack.RunAESAttackVoted(attack.AESConfig{
			Key:         key,
			TargetByte:  0,
			Plaintext:   0,
			Encryptions: encryptions,
			NBO:         256,
			Seed:        int64(k0) + 7,
		}, 3)
		if err != nil {
			return fmt.Errorf("fig5 k0=%d: %w", k0, err)
		}
		for row := 0; row < aes.CacheLinesPerTable; row++ {
			res.VictimActs[row][i] = float64(a.VictimRowActs[row])
		}
		res.AttackerCount[i] = a.AttackerCount
		res.TriggerRow[i] = a.RecoveredRow
		res.TrueRow[i] = a.TrueRow
		hits[i] = a.Hit
		return nil
	})
	if err != nil {
		return res, err
	}
	for _, hit := range hits {
		if hit {
			res.Hits++
		}
	}
	return res, nil
}

// HitRate reports the fraction of key values whose hot row was identified.
func (r Fig5Result) HitRate() float64 {
	if len(r.K0Values) == 0 {
		return 0
	}
	return float64(r.Hits) / float64(len(r.K0Values))
}

// Render returns the human-readable report.
func (r Fig5Result) Render() string {
	s := fmt.Sprintf("Figure 5: AES key byte sweep (%d key values, hit rate %.0f%%)\n",
		len(r.K0Values), 100*r.HitRate())
	s += "(a) victim activations heatmap (rows 0-15 top to bottom, k0 left to right):\n"
	s += stats.Heatmap(r.VictimActs)
	s += "(b) attacker activations to the row causing the first ABO:\n"
	counts := make([]float64, len(r.AttackerCount))
	for i, c := range r.AttackerCount {
		counts[i] = float64(c)
	}
	s += stats.Sparkline(counts) + "\n"
	t := &stats.Table{Header: []string{"k0", "trigger_row", "true_row", "attacker_acts"}}
	for i, k0 := range r.K0Values {
		t.Add(k0, r.TriggerRow[i], r.TrueRow[i], r.AttackerCount[i])
	}
	return s + t.String()
}

// CSV returns panel (b) plus attribution as CSV.
func (r Fig5Result) CSV() string {
	t := &stats.Table{Header: []string{"k0", "trigger_row", "true_row", "attacker_acts"}}
	for i, k0 := range r.K0Values {
		t.Add(k0, r.TriggerRow[i], r.TrueRow[i], r.AttackerCount[i])
	}
	return t.CSV()
}

// Fig9Result compares the row triggering the first RFM with and without
// TPRAC across a key sweep.
type Fig9Result struct {
	K0Values    []int
	TrueRows    []int
	Undefended  []int
	Defended    []int
	UndefHits   int
	DefendedHit int
}

// RunFig9 reproduces Figure 9: without the defense the first-RFM row tracks
// the key; with TPRAC it does not. Like Figure 5, the key sweep fans out
// across workers (optional; all cores by default) with per-index result
// slots.
func RunFig9(encryptions, stride int, workers ...int) (Fig9Result, error) {
	if encryptions <= 0 {
		encryptions = 200
	}
	if stride <= 0 {
		stride = 32
	}
	defense := func() (mitigation.Policy, error) {
		// 0.25 tREFI: comfortably below the solved window for NBO=256.
		return mitigation.NewTPRAC(ticks.FromNS(975), false)
	}
	var ks []int
	for k0 := 0; k0 < 256; k0 += stride {
		ks = append(ks, k0)
	}
	res := Fig9Result{
		K0Values:   ks,
		TrueRows:   make([]int, len(ks)),
		Undefended: make([]int, len(ks)),
		Defended:   make([]int, len(ks)),
	}
	undefHits := make([]bool, len(ks))
	defHits := make([]bool, len(ks))
	err := sweepPool(workers).Run(len(ks), func(i int) error {
		k0 := ks[i]
		key := make([]byte, aes.KeySize)
		key[0] = byte(k0)
		base := attack.AESConfig{
			Key: key, TargetByte: 0, Plaintext: 0,
			Encryptions: encryptions, NBO: 256, Seed: int64(k0) + 3,
		}
		undef, err := attack.RunAESAttackVoted(base, 3)
		if err != nil {
			return fmt.Errorf("fig9 undefended k0=%d: %w", k0, err)
		}
		withDef := base
		withDef.Defense = defense
		def, err := attack.RunAESAttack(withDef)
		if err != nil {
			return fmt.Errorf("fig9 defended k0=%d: %w", k0, err)
		}
		res.TrueRows[i] = undef.TrueRow
		res.Undefended[i] = undef.RecoveredRow
		res.Defended[i] = def.RecoveredRow
		undefHits[i] = undef.Hit
		defHits[i] = def.Hit
		return nil
	})
	if err != nil {
		return res, err
	}
	for i := range ks {
		if undefHits[i] {
			res.UndefHits++
		}
		if defHits[i] {
			res.DefendedHit++
		}
	}
	return res, nil
}

func (r Fig9Result) table() *stats.Table {
	t := &stats.Table{Header: []string{"k0", "true_row", "first_rfm_row_undefended", "first_rfm_row_tprac"}}
	for i, k0 := range r.K0Values {
		t.Add(k0, r.TrueRows[i], r.Undefended[i], r.Defended[i])
	}
	return t
}

// Render returns the human-readable report.
func (r Fig9Result) Render() string {
	n := len(r.K0Values)
	return fmt.Sprintf(
		"Figure 9: row triggering first RFM (undefended leak rate %d/%d, under TPRAC %d/%d)\n",
		r.UndefHits, n, r.DefendedHit, n) + r.table().String()
}

// CSV returns the machine-readable report.
func (r Fig9Result) CSV() string { return r.table().CSV() }
