package exp

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pracsim/internal/exp/dispatch"
	"pracsim/internal/exp/store"
	storeserver "pracsim/internal/exp/store/server"
	"pracsim/internal/fault"
	"pracsim/internal/sim"
)

// enableFaults parses and activates a fault schedule for one test.
func enableFaults(t *testing.T, spec string) {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	t.Cleanup(fault.Disable)
}

// TestChaosFaultySharedStoreBitIdentical is the storm half of the chaos
// contract: a session reading through a misbehaving pracstored — truncated
// and corrupted frames, injected 500s, client-side transport errors and
// timeouts — must neither crash nor change a single output byte. Every
// injected failure degrades to a recompute; the figures stay identical
// to a session that never had a store.
func TestChaosFaultySharedStoreBitIdentical(t *testing.T) {
	reference := NewRunner(storeScale())
	want, err := reference.Fig12()
	if err != nil {
		t.Fatal(err)
	}

	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(storeserver.New(disk, storeserver.Options{}))
	defer ts.Close()

	// Warm the server cleanly so the storm has real frames to mangle.
	warmBackend, err := store.OpenHTTP(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewRunnerWith(storeScale(), SessionOptions{Store: store.NewStore(warmBackend)})
	if _, err := warm.Fig12(); err != nil {
		t.Fatal(err)
	}

	enableFaults(t, "seed=7;"+
		"server.get:trunc@0.3;server.get:corrupt@0.25;server.get:err@0.15;"+
		"store.http.get:err@0.2;store.http.get:timeout@0.1;store.http.put:err@0.3")
	backend, err := store.OpenHTTPWith(ts.URL, store.HTTPOptions{
		Timeout:   2 * time.Second,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := store.NewStore(backend)
	chaos := NewRunnerWith(storeScale(), SessionOptions{Store: front})
	got, err := chaos.Fig12()
	if err != nil {
		t.Fatalf("session under fault storm failed: %v", err)
	}
	if fault.Fired() == 0 {
		t.Fatal("fault storm never fired; the test proved nothing")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fault storm changed results:\n got %+v\nwant %+v", got, want)
	}
	if got.Render() != want.Render() || got.CSV() != want.CSV() {
		t.Error("fault-storm render/CSV not byte-identical to store-less run")
	}
	// The storm must be visible in the counters, not silently absorbed.
	rs := front.Stats().Remote
	if rs.Errors == 0 {
		t.Errorf("injected remote failures left no trace in stats: %+v", rs)
	}
}

// TestChaosSameSeedSameFaultLog pins determinism: two serial sessions
// under the same schedule, seed and store state draw the identical fault
// sequence — the replay property debugging a chaos failure depends on —
// and both still render byte-identical figures.
func TestChaosSameSeedSameFaultLog(t *testing.T) {
	serial := storeScale()
	serial.Serial = true
	reference := NewRunner(serial)
	want, err := reference.Fig12()
	if err != nil {
		t.Fatal(err)
	}

	const spec = "seed=11;store.disk.get:corrupt@0.4"
	run := func() ([]string, string) {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		warm := NewRunnerWith(serial, SessionOptions{Store: st})
		if _, err := warm.Fig12(); err != nil {
			t.Fatal(err)
		}

		enableFaults(t, spec)
		st2, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		sess := NewRunnerWith(serial, SessionOptions{Store: st2})
		got, err := sess.Fig12()
		if err != nil {
			t.Fatalf("serial session under faults failed: %v", err)
		}
		log := fault.Log()
		fault.Disable()
		return log, got.Render() + got.CSV()
	}

	logA, outA := run()
	logB, outB := run()
	if len(logA) == 0 {
		t.Fatal("schedule never fired; the determinism check proved nothing")
	}
	if !reflect.DeepEqual(logA, logB) {
		t.Errorf("same seed drew different fault logs:\n A: %q\n B: %q", logA, logB)
	}
	if outA != outB || outA != want.Render()+want.CSV() {
		t.Error("corrupt-store sessions not byte-identical to the reference")
	}
}

// TestChaosDispatchFleetKillStormConverges: a dispatch fleet under an
// injected worker-kill storm converges with the expected retry count and
// the merged figures stay bit-identical — the `-dispatch N` acceptance
// contract, driven through the library.
func TestChaosDispatchFleetKillStormConverges(t *testing.T) {
	reference := NewRunner(storeScale())
	want, err := reference.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	pre := t.TempDir()
	exportShardFiles(t, pre, 3)

	// Workers stay alive long enough for the 100ms kill to land; the
	// x2 cap makes the storm's cost exactly two retried attempts.
	tmpl := fmt.Sprintf("sleep 0.3; cp %s/pre-{index}.runs {out}", pre)
	enableFaults(t, "seed=5;dispatch.worker:kill=100msx2")

	var log bytes.Buffer
	res, err := dispatch.Run(dispatch.Options{
		Shards:    3,
		Workers:   3,
		Template:  tmpl,
		Attempts:  3,
		Dir:       t.TempDir(),
		Schema:    sim.SchemaVersion,
		Log:       &log,
		RetryBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dispatch under kill storm: %v\nlog:\n%s", err, log.String())
	}
	if res.Retries() != 2 {
		t.Errorf("kill storm (x2) should cost exactly 2 retries, got %d\nlog:\n%s", res.Retries(), log.String())
	}
	if n := fault.Fired(); n != 2 {
		t.Errorf("fault.Fired() = %d, want 2", n)
	}
	var totalBackoff time.Duration
	for _, rep := range res.Reports {
		totalBackoff += rep.Backoff
	}
	if totalBackoff <= 0 {
		t.Errorf("retried fleet reports no backoff: %+v", res.Reports)
	}

	merge := NewRunner(storeScale())
	if _, err := merge.ImportShards(res.Files...); err != nil {
		t.Fatal(err)
	}
	got, err := merge.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := merge.Executed(); n != 0 {
		t.Errorf("merged session executed %d simulations, want 0", n)
	}
	if got.Render() != want.Render() || got.CSV() != want.CSV() {
		t.Error("kill-storm fleet result not byte-identical to unsharded run")
	}
}
