// Package dispatch turns the shard/merge workflow into a one-command
// fleet run. Shards are work units on a shared queue: given a shard
// count and a worker command — by default a re-exec of the current
// binary, or any fleet reachable through a shell command template (ssh,
// containers) — the driver pulls the next queued shard onto each worker
// slot as it frees up, spawning `-shard i/n -shardout F` workers,
// streaming their output, and handing back validated shard files for
// the caller to merge through the session's ImportShards path, so the
// assembled figures are bit-identical to an unsharded run.
//
// The slot pool is either fixed (Workers) or elastic (MinWorkers /
// MaxWorkers): an elastic pool grows toward its maximum against queue
// depth and straggler demand, retires idle slots when the queue drains,
// and journals every resize so a resumed driver adopts the surviving
// pool shape.
//
// Failures are the driver's job, not the operator's: a worker that
// exits non-zero, dies mid-shard, or produces an unreadable shard file
// is retried on a different worker slot (the failed slot is excluded
// while any other is idle) within a per-shard attempt budget. A shard
// that keeps running long after its peers finished is rebalanced: with
// per-worker journals its attempt is stolen — killed and requeued onto
// a fresh slot, where the replacement resumes the runs the straggler
// completed — and without journals it gets a speculative backup attempt
// instead, first complete file winning. Only a shard that exhausts its
// budget fails the run, carrying the worker's last stderr lines.
package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/shard"
	"pracsim/internal/fault"
	"pracsim/internal/retry"
)

// Options configures one dispatch run.
type Options struct {
	// Shards is n: the grid is partitioned into this many deterministic
	// shards and every shard must converge for the run to succeed.
	Shards int
	// Workers bounds how many worker processes run at once (the slot
	// pool; slots are what retry exclusion and templates' {slot} refer
	// to). 0 means one slot per shard. Ignored when MaxWorkers enables
	// elastic autoscaling.
	Workers int
	// MaxWorkers, when > 0, makes the pool elastic: it starts at
	// MinWorkers slots and autoscales between MinWorkers and MaxWorkers
	// against queue depth (enough slots for every dispatchable shard)
	// and straggler demand (a steal or backup that finds no idle slot
	// grows the pool), shrinking back when the queue drains. Every
	// resize is journaled (when a Journal is attached) so a resumed
	// driver adopts the surviving pool shape.
	MaxWorkers int
	// MinWorkers floors the elastic pool (default 1). Ignored unless
	// MaxWorkers is set.
	MinWorkers int
	// Argv is the base worker command (binary plus arguments); the
	// driver appends `-shard i/n -shardout FILE` per attempt. Required
	// unless Template is set.
	Argv []string
	// Template, when non-empty, is a shell command template run via
	// `sh -c` instead of executing Argv directly — the fleet hook
	// (ssh/container fan-out). Placeholders: {args} expands to the
	// complete shell-quoted worker command (Argv plus the shard flags),
	// {shard} to "i/n", {index}, {count} and {slot} to the obvious
	// integers, and {out} to the shard file path this attempt must
	// write. Templates should `exec` the final command so signals reach
	// the worker. The driver validates and merges {out} on its own
	// filesystem, so a remote fleet needs Dir on a filesystem shared
	// with the workers — or a template that runs the worker against a
	// remote path and copies the file to {out} before exiting.
	Template string
	// Attempts is the per-shard attempt budget (initial launch included).
	// 0 means 3.
	Attempts int
	// Dir is where shard files are written. "" creates a temporary
	// directory, reported in Result.Dir; the caller owns its cleanup.
	Dir string
	// Schema is the simulator schema version shard files must carry
	// (sim.SchemaVersion); a worker from a stale build fails validation
	// and is retried, never merged.
	Schema int
	// Log receives the driver's progress lines and every worker's
	// prefixed output. nil discards.
	Log io.Writer
	// StragglerFactor enables speculative re-dispatch: once at least
	// half the shards have converged, a shard still running longer than
	// factor x the median converged wall-clock gets a backup attempt on
	// an idle slot. 0 disables.
	StragglerFactor float64
	// StragglerMin floors the straggler threshold (quick shards finish
	// in noise-level time; a tiny median must not trigger backups).
	// 0 means 15s.
	StragglerMin time.Duration
	// RetryBase paces shard re-dispatch after a failed attempt: the
	// retry waits RetryBase before the second attempt, doubling per
	// retry (capped at RetryMax) with deterministic jitter — so a
	// systematic failure (a dead store, a bad binary) does not hammer
	// the fleet in a tight loop. 0 means 250ms. Backoff only delays the
	// failed shard; other shards keep dispatching on idle slots.
	RetryBase time.Duration
	// RetryMax caps a single re-dispatch wait. 0 means 8×RetryBase.
	RetryMax time.Duration
	// Journal, when non-nil, makes the fleet crash-safe: the driver
	// records its fleet plan and every shard convergence, and on a
	// restarted invocation with the same plan it adopts recovered shard
	// files that still validate instead of re-spawning their workers.
	Journal *journal.Journal
	// Context, when non-nil, cancels the fleet: on Done the driver
	// group-kills every running worker, checkpoints the journal, and
	// returns ErrInterrupted — the graceful drain half of signal
	// handling (the caller owns the second-signal hard exit).
	Context context.Context
	// WorkerJournalDir, when non-empty, gives each shard worker its own
	// journal: the driver appends `-journal DIR/shard-i` to the worker
	// command, so a retried attempt resumes the runs its predecessor
	// completed. Backup (speculative) attempts get a separate directory
	// — two live workers must never share a journal file.
	WorkerJournalDir string
}

// ShardReport summarizes one converged shard.
type ShardReport struct {
	Shard    shard.Spec
	File     string        // validated shard file (final path)
	Slot     int           // slot of the winning attempt
	Attempts int           // attempts launched (retries = Attempts-1)
	Runs     int           // entries in the shard file
	Wall     time.Duration // winning attempt's wall-clock
	Backoff  time.Duration // total re-dispatch backoff this shard waited
	// Stolen counts attempts of this shard that were killed as
	// stragglers and requeued onto a fresh slot (work stealing; the
	// replacement resumed from the shard's worker journal).
	Stolen int
	// Summary is the worker's self-reported session trailer (runs
	// executed, store traffic); zero when the worker printed none —
	// fake workers in tests and non-tpracsim fleets need not emit it.
	Summary    Summary
	HasSummary bool
	// Adopted marks a shard served from the driver journal's recovered
	// state: its file was validated and merged without spawning any
	// worker this invocation (Attempts is 0, Wall is 0).
	Adopted bool
}

// ErrInterrupted reports a dispatch cancelled through Options.Context.
// Converged shards are checkpointed in the journal (when one is
// attached); a re-invocation with the same plan adopts them.
var ErrInterrupted = errors.New("dispatch: interrupted")

// Result is a successful dispatch: every shard converged.
type Result struct {
	// Dir is the shard-file directory; the caller owns its cleanup.
	// Losing attempts (cancelled backups, killed workers) are swept
	// best-effort on return, but a worker lingering past Run can still
	// drop a stray attempt file here — use a throwaway directory, as
	// the CLI does.
	Dir     string
	Files   []string // one validated shard file per shard, index order
	Reports []ShardReport
	Wall    time.Duration
	// ScaleUps / ScaleDowns count elastic pool resizes; PeakWorkers is
	// the largest pool the run reached (all zero for a fixed pool —
	// PeakWorkers then reports the fixed size).
	ScaleUps    int
	ScaleDowns  int
	PeakWorkers int
}

// Steals reports the total number of straggler attempts killed and
// requeued onto fresh slots across all shards.
func (r *Result) Steals() int {
	n := 0
	for _, rep := range r.Reports {
		n += rep.Stolen
	}
	return n
}

// Retries reports the total number of re-dispatched attempts across all
// shards.
func (r *Result) Retries() int {
	n := 0
	for _, rep := range r.Reports {
		// Adopted shards launched nothing (Attempts == 0).
		if rep.Attempts > 0 {
			n += rep.Attempts - 1
		}
	}
	return n
}

// Adopted reports how many shards were served from the driver journal's
// recovered state without spawning a worker.
func (r *Result) Adopted() int {
	n := 0
	for _, rep := range r.Reports {
		if rep.Adopted {
			n++
		}
	}
	return n
}

// attempt is one worker process trying one shard.
type attempt struct {
	sp     shard.Spec
	slot   int
	n      int // 1-based attempt ordinal for its shard
	out    string
	start  time.Time
	cancel context.CancelFunc

	// Written by the attempt's output-copy goroutines, read by the
	// event loop after the attempt reports done. cmd.WaitDelay can
	// abandon a copy goroutine that a worker's orphaned child keeps
	// alive, so the mutex is load-bearing, not ceremony.
	mu         sync.Mutex
	stderrTail []string
	summary    Summary
	hasSummary bool
}

func (a *attempt) lastStderr() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.stderrTail) == 0 {
		return "(no stderr)"
	}
	return strings.Join(a.stderrTail, "\n")
}

func (a *attempt) workerSummary() (Summary, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.summary, a.hasSummary
}

// shardState is the driver's book-keeping for one shard.
type shardState struct {
	sp       shard.Spec
	attempts int          // launched so far
	excluded map[int]bool // slots a failed attempt ran on
	running  []*attempt
	backoff  time.Duration // total re-dispatch backoff waited
	stealing bool          // a straggling attempt was killed; requeue on its done event
	stolen   int           // straggler attempts stolen so far
	done     bool
	report   ShardReport
}

// pendingShard is one shard awaiting (re-)dispatch; readyAt holds its
// retry backoff — zero for first launches.
type pendingShard struct {
	index   int
	readyAt time.Time
}

type doneEvent struct {
	a   *attempt
	err error
}

// dispatcher carries one Run's resolved options and shared state.
type dispatcher struct {
	opts   Options
	dir    string
	events chan doneEvent
	ctx    context.Context
	policy retry.Policy // paces shard re-dispatch (Delay only; no sleeping in the loop)

	logMu sync.Mutex
	log   io.Writer
}

func (d *dispatcher) logf(format string, args ...any) {
	d.logMu.Lock()
	fmt.Fprintf(d.log, format+"\n", args...)
	d.logMu.Unlock()
}

// Run dispatches every shard and blocks until all have converged or one
// exhausts its attempt budget. On success the returned Result lists one
// validated shard file per shard; the caller merges them (exp
// ImportShards) and assembles figures bit-identical to an unsharded run.
func Run(opts Options) (*Result, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("dispatch: need at least 1 shard, got %d", opts.Shards)
	}
	if opts.Template == "" && len(opts.Argv) == 0 {
		return nil, fmt.Errorf("dispatch: no worker command (set Argv or Template)")
	}
	elastic := opts.MaxWorkers > 0
	minWorkers := opts.MinWorkers
	if minWorkers < 1 {
		minWorkers = 1
	}
	maxWorkers := opts.MaxWorkers
	if maxWorkers < minWorkers {
		maxWorkers = minWorkers
	}
	workers := opts.Workers
	if elastic {
		workers = minWorkers
	} else if workers <= 0 {
		workers = opts.Shards
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.StragglerMin <= 0 {
		opts.StragglerMin = 15 * time.Second
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 250 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	dir := opts.Dir
	createdDir := false
	if dir == "" {
		var err error
		//praclint:allow failpoint workdir creation happens before any attempt starts; chaos schedules target the attempt/store/journal I/O, and a setup failure here already fails the whole Run loudly
		if dir, err = os.MkdirTemp("", "pracsim-dispatch-"); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		createdDir = true
	}

	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancelAll := context.WithCancel(parent)
	defer cancelAll()
	d := &dispatcher{
		opts: opts,
		dir:  dir,
		// Buffered past the worst case so attempt goroutines can always
		// deliver their event and exit, even after Run has returned.
		events: make(chan doneEvent, opts.Shards*opts.Attempts+workers+maxWorkers),
		ctx:    ctx,
		policy: retry.Policy{Base: opts.RetryBase, Max: opts.RetryMax},
		log:    opts.Log,
	}

	// With a journal attached, recover: under an unchanged fleet plan,
	// shards the interrupted driver already converged are adopted from
	// their recorded files (re-validated — a deleted or torn file just
	// re-dispatches) instead of re-spawning workers, and an elastic pool
	// adopts the journaled pool size instead of re-growing from its
	// minimum.
	adoptable := map[int]journal.ShardRecord{}
	samePlan := false
	if opts.Journal != nil {
		fp := planFingerprint(opts)
		if opts.Journal.RecoveredPlan() == fp {
			samePlan = true
			for i := 0; i < opts.Shards; i++ {
				sp := shard.Spec{Index: i, Count: opts.Shards}
				if sr, ok := opts.Journal.RecoveredShard(sp.String()); ok {
					adoptable[i] = sr
				}
			}
		} else {
			// A new (or first) plan: journal it, superseding any shard
			// records a different plan left behind.
			_ = opts.Journal.AppendPlan(fp)
		}
	}
	if elastic && samePlan {
		if rp := opts.Journal.RecoveredPool(); rp > 0 {
			if rp > maxWorkers {
				rp = maxWorkers
			}
			if rp < minWorkers {
				rp = minWorkers
			}
			if rp != workers {
				workers = rp
				d.logf("dispatch: adopting journaled pool of %d slot(s)", workers)
			}
		}
	}

	states := make([]*shardState, opts.Shards)
	pending := make([]pendingShard, 0, opts.Shards)
	completed := 0
	for i := range states {
		states[i] = &shardState{
			sp:       shard.Spec{Index: i, Count: opts.Shards},
			excluded: make(map[int]bool),
		}
		if sr, ok := adoptable[i]; ok {
			if runs, verr := validateFile(sr.File, opts.Schema); verr == nil {
				states[i].done = true
				states[i].report = ShardReport{
					Shard:   states[i].sp,
					File:    sr.File,
					Runs:    runs,
					Adopted: true,
				}
				completed++
				d.logf("dispatch: shard %s adopted from journal (%d runs, %s)", states[i].sp, runs, sr.File)
				continue
			}
			d.logf("dispatch: shard %s journaled but its file no longer validates — re-dispatching", states[i].sp)
		}
		pending = append(pending, pendingShard{index: i})
	}
	p := newSlotPool(workers, minWorkers, maxWorkers, elastic)
	lastPool := p.size
	// logScale journals and logs a pool resize exactly once per change,
	// wherever in the loop it happened (queue-depth resize, straggler
	// demand inside rebalance).
	logScale := func(why string) {
		if p.size == lastPool {
			return
		}
		dirWord := "up"
		if p.size < lastPool {
			dirWord = "down"
		}
		d.logf("dispatch: pool scaled %s to %d slot(s) (%s)", dirWord, p.size, why)
		if opts.Journal != nil {
			_ = opts.Journal.AppendScale(p.size)
		}
		lastPool = p.size
	}

	var tick <-chan time.Time
	if opts.StragglerFactor > 0 {
		interval := opts.StragglerMin / 2
		if interval > time.Second {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}

	start := time.Now()
	if elastic {
		d.logf("dispatch: %d shards on an elastic pool (%d..%d slots, starting at %d), %d attempt(s) per shard",
			opts.Shards, minWorkers, maxWorkers, p.size, opts.Attempts)
	} else {
		d.logf("dispatch: %d shards across %d worker slot(s), %d attempt(s) per shard", opts.Shards, workers, opts.Attempts)
	}
	var converged []time.Duration
	for completed < opts.Shards {
		// Elastic resize against queue depth: grow until every
		// dispatchable shard has a slot (capped at max), and retire the
		// idle surplus once nothing is queued.
		if p.elastic {
			ready := countReady(pending, time.Now())
			if ready > len(p.idle) {
				p.growTo(p.busy() + ready)
				logScale(fmt.Sprintf("%d shard(s) queued", ready))
			} else if len(pending) == 0 {
				p.shrinkTo(p.busy())
				logScale("queue drained")
			}
		}
		// Launch every pending shard whose backoff has elapsed onto an
		// idle slot; shards still backing off stay queued without
		// blocking their peers.
		for len(p.idle) > 0 {
			pi := nextReady(pending, time.Now())
			if pi < 0 {
				break
			}
			st := states[pending[pi].index]
			pending = append(pending[:pi], pending[pi+1:]...)
			d.launch(st, p.take(st.excluded))
		}
		if len(pending) == 0 && (len(p.idle) > 0 || p.canGrow()) && completed*2 >= opts.Shards {
			d.rebalance(states, p, converged)
			logScale("straggler demand")
		}

		// When the only runnable work is a shard waiting out its backoff,
		// arm a wake-up for it so the loop never stalls on the event
		// channel with dispatchable work queued.
		var backoffCh <-chan time.Time
		var backoffTimer *time.Timer
		if len(p.idle) > 0 || p.canGrow() {
			if wait, ok := earliestReady(pending, time.Now()); ok {
				backoffTimer = time.NewTimer(wait)
				backoffCh = backoffTimer.C
			}
		}

		select {
		case <-d.ctx.Done():
			// Drain-and-checkpoint: group-kill every running worker (their
			// own journals keep their completed runs), sync this driver's
			// journal, and report how far the fleet got. A re-invocation
			// with the same plan adopts every converged shard.
			if backoffTimer != nil {
				backoffTimer.Stop()
			}
			cancelAll()
			sweepAttempts(states)
			if opts.Journal != nil {
				_ = opts.Journal.Sync()
			}
			return nil, fmt.Errorf("%w: %d/%d shard(s) converged and checkpointed", ErrInterrupted, completed, opts.Shards)
		case ev := <-d.events:
			if backoffTimer != nil {
				backoffTimer.Stop()
			}
			st := states[ev.a.sp.Index]
			p.release(ev.a.slot)
			st.running = removeAttempt(st.running, ev.a)
			if st.done {
				// Loser of a backup race; its file (if any) is redundant.
				//praclint:allow failpoint best-effort cleanup of a redundant attempt file; a failure leaves garbage in a throwaway dir, never wrong results
				os.Remove(ev.a.out)
				continue
			}
			if ev.err == nil {
				runs, verr := validateFile(ev.a.out, opts.Schema)
				if verr == nil {
					// A stolen attempt can finish its file in the narrow
					// window before the kill lands; a converged shard is a
					// converged shard.
					st.stealing = false
					completed++
					converged = append(converged, time.Since(ev.a.start))
					d.finish(st, ev.a, runs)
					continue
				}
				// The worker exited clean but its file does not parse —
				// the exact torn/stale case the merge must never see.
				ev.err = verr
			}
			st.excluded[ev.a.slot] = true
			if st.stealing {
				// The kill rebalance asked for: not a failure, so no
				// backoff — requeue immediately, and the replacement
				// resumes from the shard's worker journal on a fresh slot.
				st.stealing = false
				//praclint:allow failpoint best-effort cleanup of a killed attempt's partial file; the requeued attempt writes a fresh one regardless
				os.Remove(ev.a.out)
				d.logf("dispatch: shard %s stolen from slot %d — requeued", st.sp, ev.a.slot)
				pending = append(pending, pendingShard{index: st.sp.Index})
				continue
			}
			d.logf("dispatch: shard %s attempt %d failed on slot %d: %v", st.sp, ev.a.n, ev.a.slot, ev.err)
			if len(st.running) > 0 {
				continue // a backup attempt is still in flight
			}
			if st.attempts >= opts.Attempts {
				cancelAll()
				sweepAttempts(states)
				if createdDir {
					//praclint:allow failpoint teardown of the temp workdir on the failure path; nothing downstream reads it
					defer os.RemoveAll(dir)
				}
				return nil, fmt.Errorf("dispatch: shard %s failed after %d attempt(s): %w\nworker stderr (last lines):\n%s",
					st.sp, st.attempts, ev.err, ev.a.lastStderr())
			}
			// Requeue under the retry policy: capped exponential backoff
			// with deterministic jitter, keyed by shard so concurrent
			// failures decorrelate.
			delay := d.policy.Delay("shard "+st.sp.String(), st.attempts)
			st.backoff += delay
			if delay > 0 {
				d.logf("dispatch: shard %s backing off %dms before attempt %d", st.sp, delay.Milliseconds(), st.attempts+1)
			}
			pending = append(pending, pendingShard{index: st.sp.Index, readyAt: time.Now().Add(delay)})
		case <-tick:
			if backoffTimer != nil {
				backoffTimer.Stop()
			}
		case <-backoffCh:
		}
	}

	// The last shard can converge through a backup while its original
	// attempt is still being killed; the loop exits without seeing the
	// loser's event, so sweep its files here instead.
	sweepAttempts(states)
	res := &Result{
		Dir: dir, Wall: time.Since(start),
		ScaleUps: p.ups, ScaleDowns: p.downs, PeakWorkers: p.peak,
	}
	for _, st := range states {
		res.Files = append(res.Files, st.report.File)
		res.Reports = append(res.Reports, st.report)
	}
	line := fmt.Sprintf("dispatch: %d/%d shards converged in %.1fs (%d retried attempt(s)",
		completed, opts.Shards, res.Wall.Seconds(), res.Retries())
	if n := res.Steals(); n > 0 {
		line += fmt.Sprintf(", %d stolen", n)
	}
	if elastic {
		line += fmt.Sprintf(", pool peaked at %d slot(s)", p.peak)
	}
	d.logf("%s)", line)
	return res, nil
}

// launch starts one attempt for st on the given slot.
func (d *dispatcher) launch(st *shardState, slot int) {
	st.attempts++
	a := &attempt{
		sp:   st.sp,
		slot: slot,
		n:    st.attempts,
		out:  filepath.Join(d.dir, fmt.Sprintf("shard-%d-of-%d.attempt%d.runs", st.sp.Index, st.sp.Count, st.attempts)),
	}
	actx, cancel := context.WithCancel(d.ctx)
	a.cancel = cancel
	a.start = time.Now()

	workerArgv := append(append([]string{}, d.opts.Argv...), "-shard", st.sp.String(), "-shardout", a.out)
	if d.opts.WorkerJournalDir != "" {
		jdir := filepath.Join(d.opts.WorkerJournalDir, fmt.Sprintf("shard-%d", st.sp.Index))
		if len(st.running) > 0 {
			// A backup runs concurrently with the original attempt, and
			// two live workers must never share a journal file — the
			// backup gets a throwaway journal of its own.
			jdir = filepath.Join(d.opts.WorkerJournalDir, fmt.Sprintf("shard-%d.backup%d", st.sp.Index, st.attempts))
		}
		workerArgv = append(workerArgv, "-journal", jdir)
	}
	var cmd *exec.Cmd
	if d.opts.Template != "" {
		cmd = exec.CommandContext(actx, "sh", "-c", expandTemplate(d.opts.Template, workerArgv, st.sp, slot, a.out))
	} else {
		cmd = exec.CommandContext(actx, workerArgv[0], workerArgv[1:]...)
	}
	// Each attempt gets a distinct fault salt, so a worker retried under
	// an inherited -faults schedule draws a fresh fault sequence instead
	// of deterministically re-hitting the exact failure that killed it.
	cmd.Env = append(os.Environ(), fmt.Sprintf("%s=shard-%d-attempt-%d", fault.SaltEnvVar, st.sp.Index, st.attempts))
	d.logf("dispatch: shard %s attempt %d -> slot %d", st.sp, st.attempts, slot)
	st.running = append(st.running, a)
	// The dispatch.spawn failpoint fails or delays the launch itself —
	// a fleet hook (ssh, scheduler) that errors before the worker runs.
	spawn := fault.Fire(fault.DispatchSpawn)
	if spawn != nil && spawn.Kind == fault.Err {
		go func() { d.events <- doneEvent{a, spawn.Err("spawn shard " + st.sp.String())} }()
		return
	}
	go func() {
		if spawn != nil && spawn.Kind == fault.Delay {
			select {
			case <-time.After(spawn.Value):
			case <-actx.Done():
			}
		}
		d.events <- doneEvent{a, d.runAttempt(cmd, a)}
	}()
}

// finish records a converged shard and kills its redundant siblings.
func (d *dispatcher) finish(st *shardState, a *attempt, runs int) {
	st.done = true
	for _, sib := range st.running {
		sib.cancel()
	}
	final := filepath.Join(d.dir, fmt.Sprintf("shard-%d-of-%d.runs", st.sp.Index, st.sp.Count))
	//praclint:allow failpoint publish rename already degrades to the attempt file on failure (below); injecting here would exercise no path a real failure doesn't
	if err := os.Rename(a.out, final); err != nil {
		// Same-directory rename failing is exotic; the attempt file is
		// just as valid, so fall back to it rather than failing a
		// converged shard.
		final = a.out
	}
	// Checkpoint the convergence durably before reporting it: this
	// record (synced by AppendShard) is exactly what a restarted driver
	// adopts instead of re-running the shard.
	if d.opts.Journal != nil {
		_ = d.opts.Journal.AppendShard(journal.ShardRecord{Shard: st.sp.String(), File: final, Runs: runs})
	}
	wall := time.Since(a.start)
	sum, ok := a.workerSummary()
	st.report = ShardReport{
		Shard:      st.sp,
		File:       final,
		Slot:       a.slot,
		Attempts:   st.attempts,
		Runs:       runs,
		Wall:       wall,
		Backoff:    st.backoff,
		Stolen:     st.stolen,
		Summary:    sum,
		HasSummary: ok,
	}
	d.logf("dispatch: shard %s converged on slot %d (attempt %d, %d runs, %.1fs)",
		st.sp, a.slot, a.n, runs, wall.Seconds())
}

// rebalance sheds load from stragglers. With no pending work and at
// least half the shards converged, a shard whose sole running attempt
// has outlived StragglerFactor x the median converged wall-clock
// (floored at StragglerMin) is rebalanced one of two ways:
//
//   - Steal (WorkerJournalDir set): the straggling attempt is killed and
//     the shard requeued immediately onto a fresh slot, where the
//     replacement worker resumes from the shard's journal — the
//     straggler's completed runs are kept, only its remaining work
//     moves. An elastic pool grows a slot for the requeue when none is
//     idle.
//
//   - Speculative backup (no worker journals): killing the straggler
//     would discard everything it has done, so it keeps running and a
//     duplicate attempt races it on an idle slot — first complete file
//     wins.
func (d *dispatcher) rebalance(states []*shardState, p *slotPool, converged []time.Duration) {
	threshold := time.Duration(float64(medianDuration(converged)) * d.opts.StragglerFactor)
	if threshold < d.opts.StragglerMin {
		threshold = d.opts.StragglerMin
	}
	for _, st := range states {
		if st.done || st.stealing || len(st.running) != 1 || st.attempts >= d.opts.Attempts {
			continue
		}
		a := st.running[0]
		if time.Since(a.start) < threshold {
			continue
		}
		if d.opts.WorkerJournalDir != "" {
			// Steal. Make sure the requeue will have somewhere to land
			// before killing anything.
			if len(p.idle) == 0 && p.growTo(p.size+1) == 0 {
				return
			}
			st.stealing = true
			st.stolen++
			d.logf("dispatch: shard %s straggling on slot %d (%.1fs, median %.1fs) — stealing: killing the attempt, its journal resumes elsewhere",
				st.sp, a.slot, time.Since(a.start).Seconds(), medianDuration(converged).Seconds())
			a.cancel()
			continue
		}
		avoid := map[int]bool{a.slot: true}
		for s := range st.excluded {
			avoid[s] = true
		}
		slot, ok := p.takeAvoiding(avoid)
		if !ok && p.growTo(p.size+1) > 0 {
			slot, ok = p.takeAvoiding(avoid)
		}
		if !ok {
			continue // only the straggler's own slot is idle
		}
		d.logf("dispatch: shard %s straggling on slot %d (%.1fs, median %.1fs) — dispatching backup",
			st.sp, a.slot, time.Since(a.start).Seconds(), medianDuration(converged).Seconds())
		d.launch(st, slot)
	}
}

// runAttempt runs one worker process to completion, streaming its
// output line-by-line with a shard prefix, collecting the stderr tail
// and parsing the optional summary trailer.
func (d *dispatcher) runAttempt(cmd *exec.Cmd, a *attempt) error {
	prefix := fmt.Sprintf("[shard %s #%d] ", a.sp, a.n)
	stdout := &lineWriter{emit: func(line string) {
		if s, ok := ParseSummaryLine(line); ok {
			a.mu.Lock()
			a.summary, a.hasSummary = s, true
			a.mu.Unlock()
			return // machine trailer, not progress
		}
		d.logf("%s%s", prefix, line)
	}}
	stderr := &lineWriter{emit: func(line string) {
		a.mu.Lock()
		a.stderrTail = append(a.stderrTail, line)
		if len(a.stderrTail) > stderrTailLines {
			a.stderrTail = a.stderrTail[len(a.stderrTail)-stderrTailLines:]
		}
		a.mu.Unlock()
		d.logf("%s%s", prefix, line)
	}}
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	// Bound Wait on the worker's pipes: a template that backgrounds a
	// child (or a kill that orphans one) must not wedge the whole
	// dispatch behind an inherited file descriptor.
	cmd.WaitDelay = 5 * time.Second
	// Each worker runs in its own process group, and cancellation kills
	// the group, not just the immediate child — a `sh -c` template
	// worker's grandchildren must never outlive the fleet.
	setProcGroup(cmd)
	cmd.Cancel = func() error { return killGroup(cmd) }
	// The dispatch.worker failpoint delays or kills this worker from the
	// outside — the machine-reboot / OOM-kill case the retry budget and
	// atomic shard writes exist for.
	act := fault.Fire(fault.DispatchWorker)
	if act != nil && act.Kind == fault.Delay {
		select {
		case <-time.After(act.Value):
		case <-d.ctx.Done():
		}
	}
	if err := cmd.Start(); err != nil {
		stdout.flush()
		stderr.flush()
		return err
	}
	if act != nil && act.Kind == fault.Kill {
		after := act.Value
		if after <= 0 {
			after = time.Second
		}
		t := time.AfterFunc(after, func() { killGroup(cmd) })
		defer t.Stop()
	}
	err := cmd.Wait()
	stdout.flush()
	stderr.flush()
	return err
}

// stderrTailLines bounds how much worker stderr a budget-exhaustion
// error carries.
const stderrTailLines = 40

// planFingerprint condenses everything that defines the fleet's work —
// shard count, schema version and the full worker command — so a
// restarted driver only adopts shard state recorded under an identical
// plan. Any argv change re-dispatches everything: conservative, never
// wrong.
func planFingerprint(opts Options) string {
	parts := []string{
		"shards=" + strconv.Itoa(opts.Shards),
		"schema=" + strconv.Itoa(opts.Schema),
		"tmpl=" + opts.Template,
	}
	parts = append(parts, opts.Argv...)
	return journal.Fingerprint(parts...)
}

// validateFile checks that a worker's output is a complete,
// schema-matching shard file and reports how many runs it holds. An
// exit status of 0 is not trusted on its own — only a file the merge
// will accept counts as convergence. Validation streams (shard
// .Validate) instead of loading the file: the merge re-reads it anyway,
// and a full-scale shard should not be held in memory twice.
func validateFile(path string, schema int) (int, error) {
	return shard.Validate(path, schema)
}

// sweepAttempts removes the output (and atomic-write temp) files of
// every attempt still marked running — cancelled backup-race losers and
// killed workers whose events the loop never drained. Best-effort: a
// worker lingering inside its WaitDelay can still publish after the
// sweep, which is why Result.Dir tells callers to use a throwaway
// directory.
func sweepAttempts(states []*shardState) {
	for _, st := range states {
		for _, a := range st.running {
			a.cancel()
			//praclint:allow failpoint best-effort teardown sweep; failures leave stale temp files in a throwaway dir
			os.Remove(a.out)
			//praclint:allow failpoint best-effort teardown sweep; failures leave stale temp files in a throwaway dir
			if tmps, err := filepath.Glob(a.out + ".tmp*"); err == nil {
				for _, t := range tmps {
					//praclint:allow failpoint best-effort teardown sweep; failures leave stale temp files in a throwaway dir
					os.Remove(t)
				}
			}
		}
	}
}

// countReady reports how many pending shards are dispatchable now (their
// backoff has elapsed) — the queue depth the elastic pool sizes against.
func countReady(pending []pendingShard, now time.Time) int {
	n := 0
	for _, p := range pending {
		if !p.readyAt.After(now) {
			n++
		}
	}
	return n
}

// nextReady returns the index in pending of the first shard whose
// backoff has elapsed, or -1.
func nextReady(pending []pendingShard, now time.Time) int {
	for i, p := range pending {
		if !p.readyAt.After(now) {
			return i
		}
	}
	return -1
}

// earliestReady reports how long until the soonest pending shard becomes
// dispatchable (ok false when nothing is pending).
func earliestReady(pending []pendingShard, now time.Time) (time.Duration, bool) {
	ok := false
	var min time.Duration
	for _, p := range pending {
		d := p.readyAt.Sub(now)
		if d < 0 {
			d = 0
		}
		if !ok || d < min {
			min, ok = d, true
		}
	}
	return min, ok
}

// slotPool manages the worker slots shards are pulled onto: a fixed set
// of slot ids, or — in elastic mode — a pool that grows toward max on
// queue pressure and straggler demand and retires idle slots when the
// queue drains. Slot ids are never reused after retirement, so {slot}
// in templates and the retry-exclusion maps stay unambiguous.
type slotPool struct {
	size, min, max int
	elastic        bool
	idle           []int
	next           int // next fresh slot id (monotonic)
	ups, downs     int
	peak           int
}

func newSlotPool(size, min, max int, elastic bool) *slotPool {
	p := &slotPool{size: size, min: min, max: max, elastic: elastic, next: size, peak: size}
	for s := 0; s < size; s++ {
		p.idle = append(p.idle, s)
	}
	return p
}

func (p *slotPool) busy() int     { return p.size - len(p.idle) }
func (p *slotPool) canGrow() bool { return p.elastic && p.size < p.max }

// release returns a slot to the idle set.
func (p *slotPool) release(slot int) { p.idle = append(p.idle, slot) }

// growTo adds fresh idle slots until the pool reaches target (capped at
// max), reporting how many were added.
func (p *slotPool) growTo(target int) int {
	if !p.elastic {
		return 0
	}
	if target > p.max {
		target = p.max
	}
	added := 0
	for p.size < target {
		p.idle = append(p.idle, p.next)
		p.next++
		p.size++
		added++
	}
	if added > 0 {
		p.ups++
		if p.size > p.peak {
			p.peak = p.size
		}
	}
	return added
}

// shrinkTo retires idle slots until the pool is down to target (floored
// at min and at the busy count), reporting how many were retired.
func (p *slotPool) shrinkTo(target int) int {
	if !p.elastic {
		return 0
	}
	if target < p.min {
		target = p.min
	}
	if b := p.busy(); target < b {
		target = b
	}
	removed := 0
	for p.size > target && len(p.idle) > 0 {
		p.idle = p.idle[:len(p.idle)-1]
		p.size--
		removed++
	}
	if removed > 0 {
		p.downs++
	}
	return removed
}

// take pops an idle slot, preferring one no failed attempt of this
// shard ran on; when every idle slot is excluded the first is used
// anyway (a retry beats starvation).
func (p *slotPool) take(excluded map[int]bool) int {
	if slot, ok := p.takeAvoiding(excluded); ok {
		return slot
	}
	slot := p.idle[0]
	p.idle = p.idle[1:]
	return slot
}

// takeAvoiding pops the first idle slot not in avoid.
func (p *slotPool) takeAvoiding(avoid map[int]bool) (int, bool) {
	for i, slot := range p.idle {
		if !avoid[slot] {
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			return slot, true
		}
	}
	return 0, false
}

func removeAttempt(as []*attempt, a *attempt) []*attempt {
	for i, x := range as {
		if x == a {
			return append(as[:i], as[i+1:]...)
		}
	}
	return as
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	c := append([]time.Duration(nil), ds...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// expandTemplate substitutes the worker placeholders into a fleet
// command template; see Options.Template for the placeholder set.
func expandTemplate(tmpl string, argv []string, sp shard.Spec, slot int, out string) string {
	quoted := make([]string, len(argv))
	for i, arg := range argv {
		quoted[i] = shellQuote(arg)
	}
	return strings.NewReplacer(
		"{args}", strings.Join(quoted, " "),
		"{shard}", sp.String(),
		"{index}", strconv.Itoa(sp.Index),
		"{count}", strconv.Itoa(sp.Count),
		"{slot}", strconv.Itoa(slot),
		"{out}", out,
	).Replace(tmpl)
}

// shellQuote renders one argv word safely for sh -c.
func shellQuote(s string) string {
	if s == "" {
		return "''"
	}
	if !strings.ContainsAny(s, " \t\n\"'\\$&|;<>()*?[]#~`!{}") {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

// lineWriter splits a worker output stream into lines for the emit
// callback, tolerating writes that span or split lines. The mutex
// matters for the same reason as attempt.mu: cmd.WaitDelay can abandon
// the exec copy goroutine that calls Write while runAttempt flushes.
type lineWriter struct {
	emit func(string)

	mu  sync.Mutex
	buf []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		w.emit(strings.TrimSuffix(string(w.buf[:i]), "\r"))
		w.buf = w.buf[i+1:]
	}
}

func (w *lineWriter) flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) > 0 {
		w.emit(string(w.buf))
		w.buf = nil
	}
}
