package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
	"pracsim/internal/fault"
)

// testSchema stamps the fake shard files the tests exchange.
const testSchema = 3

// TestMain doubles as the fake worker binary: when the fake-worker env
// var is set, the test binary behaves like a shard worker — it parses
// the -shard/-shardout flags the driver appended, writes a valid shard
// file for its owned slice of a fixed key set, prints a summary trailer
// and exits. That exercises the driver's default re-exec path (argv
// construction, output streaming, summary parsing) without needing a
// real simulator binary on disk.
func TestMain(m *testing.M) {
	if os.Getenv("PRACSIM_DISPATCH_FAKE_WORKER") == "1" {
		fakeWorkerMain()
		return
	}
	os.Exit(m.Run())
}

// fakeWorkerKeys is the run-key universe the fake worker partitions.
func fakeWorkerKeys() []string {
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = fmt.Sprintf("pracsim/run/v%d/fake-key-%d", testSchema, i)
	}
	return keys
}

func fakeWorkerMain() {
	var spArg, out string
	args := os.Args[1:]
	for i := 0; i < len(args)-1; i++ {
		switch args[i] {
		case "-shard":
			spArg = args[i+1]
		case "-shardout":
			out = args[i+1]
		}
	}
	sp, err := shard.Parse(spArg)
	if err != nil || out == "" {
		fmt.Fprintf(os.Stderr, "fake worker: bad args %q: %v\n", args, err)
		os.Exit(2)
	}
	var entries []shard.Entry
	for _, k := range fakeWorkerKeys() {
		if sp.Owns(k) {
			entries = append(entries, shard.Entry{Key: k, Payload: []byte("payload:" + k)})
		}
	}
	fmt.Printf("fake worker running shard %s\n", sp)
	// Surface the per-attempt fault salt the driver injects, and stay
	// alive long enough for a dispatch.worker kill fault to land.
	fmt.Printf("fake worker salt %s\n", os.Getenv(fault.SaltEnvVar))
	if ms, err := strconv.Atoi(os.Getenv("PRACSIM_DISPATCH_FAKE_SLEEP_MS")); err == nil && ms > 0 {
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
	if err := shard.WriteFile(out, testSchema, sp, entries); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(Summary{
		Shard:    sp.String(),
		Runs:     len(entries),
		Executed: int64(len(entries)),
		WallMS:   1,
		Store:    store.Stats{Hits: 7},
	}.Line())
}

// writeFakeShardFiles pre-generates one valid shard file per shard of a
// partition, for template-mode fakes that just `cp` their file into
// place.
func writeFakeShardFiles(t *testing.T, dir string, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		sp := shard.Spec{Index: i, Count: count}
		var entries []shard.Entry
		for _, k := range fakeWorkerKeys() {
			if sp.Owns(k) {
				entries = append(entries, shard.Entry{Key: k, Payload: []byte("payload:" + k)})
			}
		}
		if err := shard.WriteFile(filepath.Join(dir, fmt.Sprintf("pre-%d.runs", i)), testSchema, sp, entries); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunReexecPool drives the default path end to end: the driver
// re-execs this test binary as the worker for every shard, validates
// the shard files, parses the summaries and reports zero retries.
func TestRunReexecPool(t *testing.T) {
	t.Setenv("PRACSIM_DISPATCH_FAKE_WORKER", "1")
	var log bytes.Buffer
	res, err := Run(Options{
		Shards: 3,
		Argv:   []string{os.Args[0]},
		Dir:    t.TempDir(),
		Schema: testSchema,
		Log:    &log,
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	if len(res.Files) != 3 || len(res.Reports) != 3 {
		t.Fatalf("got %d files, %d reports; want 3 each", len(res.Files), len(res.Reports))
	}
	if res.Retries() != 0 {
		t.Errorf("clean run reported %d retries", res.Retries())
	}
	seen := map[string]bool{}
	total := 0
	for i, f := range res.Files {
		entries, err := shard.ReadFile(f, testSchema)
		if err != nil {
			t.Fatalf("shard file %d: %v", i, err)
		}
		for _, e := range entries {
			if seen[e.Key] {
				t.Errorf("key %s appears in two shard files", e.Key)
			}
			seen[e.Key] = true
		}
		total += len(entries)
		rep := res.Reports[i]
		if rep.Shard.Index != i || rep.Runs != len(entries) {
			t.Errorf("report %d: %+v does not match file (%d entries)", i, rep, len(entries))
		}
		if !rep.HasSummary || rep.Summary.Executed != int64(len(entries)) || rep.Summary.Store.Hits != 7 {
			t.Errorf("report %d summary not parsed: %+v", i, rep.Summary)
		}
	}
	if total != len(fakeWorkerKeys()) {
		t.Errorf("shard files hold %d keys, universe has %d", total, len(fakeWorkerKeys()))
	}
	// Worker stdout is streamed with a shard prefix; the summary
	// trailer is lifted out of the stream, not echoed.
	if !strings.Contains(log.String(), "[shard 0/3 #1] fake worker running shard 0/3") {
		t.Errorf("worker output not streamed with prefix:\n%s", log.String())
	}
	if strings.Contains(log.String(), SummaryPrefix) {
		t.Errorf("summary trailer echoed into the progress stream:\n%s", log.String())
	}
}

// TestRetryExcludesFailedSlot: a worker that dies is retried on a
// different slot; the attempt that ran on the bad slot is excluded.
func TestRetryExcludesFailedSlot(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 1)
	slotDir := t.TempDir()
	// Slot 0 always fails (recording that it ran); other slots succeed.
	tmpl := fmt.Sprintf(": > %s/slot-{slot}; if [ {slot} = 0 ]; then echo 'slot 0 is broken' >&2; exit 1; fi; cp %s/pre-{index}.runs {out}",
		slotDir, pre)
	var log bytes.Buffer
	res, err := Run(Options{
		Shards:   1,
		Workers:  2,
		Template: tmpl,
		Dir:      t.TempDir(),
		Schema:   testSchema,
		Log:      &log,
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	rep := res.Reports[0]
	if rep.Attempts != 2 || rep.Slot != 1 {
		t.Errorf("want retry on slot 1 after slot 0 failed; got attempts=%d slot=%d", rep.Attempts, rep.Slot)
	}
	for _, slot := range []string{"slot-0", "slot-1"} {
		if _, err := os.Stat(filepath.Join(slotDir, slot)); err != nil {
			t.Errorf("no attempt ran on %s", slot)
		}
	}
	if !strings.Contains(log.String(), "attempt 2 -> slot 1") {
		t.Errorf("retry not visible in progress log:\n%s", log.String())
	}
}

// TestBudgetExhaustionSurfacesStderr: a shard that fails every attempt
// fails the run, and the error carries the worker's stderr.
func TestBudgetExhaustionSurfacesStderr(t *testing.T) {
	_, err := Run(Options{
		Shards:   2,
		Template: "echo 'kaboom-7af3: no DRAM model here' >&2; exit 9",
		Attempts: 2,
		Dir:      t.TempDir(),
		Schema:   testSchema,
	})
	if err == nil {
		t.Fatal("exhausted budget did not fail the run")
	}
	for _, want := range []string{"after 2 attempt(s)", "kaboom-7af3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestCleanExitWithBadFileIsRetried: exit status 0 with a torn or
// stale shard file counts as a failure — only a file the merge will
// accept is convergence.
func TestCleanExitWithBadFileIsRetried(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 1)
	mark := filepath.Join(t.TempDir(), "garbled-once")
	tmpl := fmt.Sprintf("if [ ! -e %s ]; then : > %s; echo 'torn output' > {out}; exit 0; fi; cp %s/pre-{index}.runs {out}",
		mark, mark, pre)
	res, err := Run(Options{
		Shards:   1,
		Template: tmpl,
		Dir:      t.TempDir(),
		Schema:   testSchema,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports[0].Attempts != 2 {
		t.Errorf("bad-file attempt not retried: attempts=%d", res.Reports[0].Attempts)
	}
	if _, err := shard.ReadFile(res.Files[0], testSchema); err != nil {
		t.Errorf("final file invalid after retry: %v", err)
	}
}

// TestStragglerBackup: once peers have converged, a shard stuck on a
// slow slot gets a speculative backup on an idle slot and converges
// through it without waiting out the straggler.
func TestStragglerBackup(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 2)
	// Slot 0 hangs far beyond the test horizon; any other slot is fast.
	tmpl := fmt.Sprintf("if [ {slot} = 0 ]; then sleep 300; exit 1; fi; cp %s/pre-{index}.runs {out}", pre)
	var log bytes.Buffer
	start := time.Now()
	res, err := Run(Options{
		Shards:          2,
		Workers:         2,
		Template:        tmpl,
		Dir:             t.TempDir(),
		Schema:          testSchema,
		Log:             &log,
		StragglerFactor: 1.5,
		StragglerMin:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Errorf("dispatch waited out the straggler (%.1fs)", took.Seconds())
	}
	slow := res.Reports[0] // shard 0 landed on slot 0 first
	if slow.Attempts != 2 || slow.Slot == 0 {
		t.Errorf("straggling shard should converge via backup on another slot; got attempts=%d slot=%d",
			slow.Attempts, slow.Slot)
	}
	if !strings.Contains(log.String(), "straggling") {
		t.Errorf("straggler backup not visible in progress log:\n%s", log.String())
	}
}

// TestWorkerKillFaultRetriedWithBackoff pins the retry accounting under
// an injected worker crash: a dispatch.worker kill fault SIGKILLs the
// first attempt mid-run, the driver backs off per the retry policy and
// re-dispatches, and the converged report carries the attempt, backoff
// and salt evidence — the chaos-mode observability contract.
func TestWorkerKillFaultRetriedWithBackoff(t *testing.T) {
	t.Setenv("PRACSIM_DISPATCH_FAKE_WORKER", "1")
	t.Setenv("PRACSIM_DISPATCH_FAKE_SLEEP_MS", "500")
	p, err := fault.Parse("seed=3;dispatch.worker:kill=50msx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()

	var log bytes.Buffer
	res, err := Run(Options{
		Shards:    1,
		Workers:   2,
		Argv:      []string{os.Args[0]},
		Dir:       t.TempDir(),
		Schema:    testSchema,
		Log:       &log,
		RetryBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	rep := res.Reports[0]
	if rep.Attempts != 2 {
		t.Errorf("killed worker should cost exactly one retry; got attempts=%d", rep.Attempts)
	}
	if res.Retries() != 1 {
		t.Errorf("Retries() = %d, want 1", res.Retries())
	}
	if rep.Backoff <= 0 {
		t.Errorf("retried shard reports no backoff: %+v", rep)
	}
	if !strings.Contains(log.String(), "backing off") {
		t.Errorf("backoff not visible in progress log:\n%s", log.String())
	}
	// The driver decorrelates retried workers: each attempt carries a
	// distinct fault salt through the environment.
	for _, want := range []string{"fake worker salt shard-0-attempt-1", "fake worker salt shard-0-attempt-2"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("log missing %q:\n%s", want, log.String())
		}
	}
	if _, err := shard.ReadFile(res.Files[0], testSchema); err != nil {
		t.Errorf("final file invalid after injected kill: %v", err)
	}
}

// TestSpawnFaultRetried: a dispatch.spawn err fault fails the launch
// before any process runs; the driver retries it like any worker
// failure.
func TestSpawnFaultRetried(t *testing.T) {
	t.Setenv("PRACSIM_DISPATCH_FAKE_WORKER", "1")
	p, err := fault.Parse("seed=1;dispatch.spawn:errx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()

	var log bytes.Buffer
	res, err := Run(Options{
		Shards:    1,
		Workers:   2,
		Argv:      []string{os.Args[0]},
		Dir:       t.TempDir(),
		Schema:    testSchema,
		Log:       &log,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	if got := res.Reports[0].Attempts; got != 2 {
		t.Errorf("failed spawn should cost exactly one retry; got attempts=%d", got)
	}
	if !strings.Contains(log.String(), "injected") {
		t.Errorf("injected spawn failure not visible in progress log:\n%s", log.String())
	}
}

// TestSummaryRoundTrip pins the worker trailer wire format.
func TestSummaryRoundTrip(t *testing.T) {
	in := Summary{
		Shard:    "1/3",
		Runs:     16,
		Executed: 9,
		WallMS:   1234,
		Store:    store.Stats{Hits: 7, Misses: 9, Writes: 9, BytesRead: 100, BytesWritten: 300},
		Faults:   3,
	}
	out, ok := ParseSummaryLine(in.Line())
	if !ok || out != in {
		t.Errorf("round trip: got %+v, %v; want %+v", out, ok, in)
	}
	for _, line := range []string{"", "running fig12...", SummaryPrefix + "not json"} {
		if _, ok := ParseSummaryLine(line); ok {
			t.Errorf("ParseSummaryLine(%q) accepted", line)
		}
	}
}

// TestExpandTemplate pins the placeholder contract fleet templates
// (ssh/container wrappers) rely on.
func TestExpandTemplate(t *testing.T) {
	argv := []string{"/bin/tpracsim", "-exp", "all", "-store", "/tmp/my store", "-shard", "1/3", "-shardout", "/w/out.runs"}
	sp := shard.Spec{Index: 1, Count: 3}
	got := expandTemplate("ssh host{slot} {args} # {shard} {index}/{count} -> {out}", argv, sp, 2, "/w/out.runs")
	want := "ssh host2 /bin/tpracsim -exp all -store '/tmp/my store' -shard 1/3 -shardout /w/out.runs # 1/3 1/3 -> /w/out.runs"
	if got != want {
		t.Errorf("expandTemplate:\n got %q\nwant %q", got, want)
	}
}

// TestShellQuote: quoting must survive sh -c for the characters argv
// words actually contain.
func TestShellQuote(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"":             "''",
		"with space":   "'with space'",
		"don't":        `'don'\''t'`,
		"$HOME;rm -rf": `'$HOME;rm -rf'`,
	}
	for in, want := range cases {
		if got := shellQuote(in); got != want {
			t.Errorf("shellQuote(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRunOptionValidation: nonsense options fail fast, before any
// process spawns.
func TestRunOptionValidation(t *testing.T) {
	if _, err := Run(Options{Shards: 0, Argv: []string{"x"}}); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := Run(Options{Shards: 2}); err == nil {
		t.Error("no worker command accepted")
	}
}

// TestJournalAdoption: a fleet that converged with a journal attached is
// not re-run — a second dispatch with the same plan and journal adopts
// every shard from its checkpointed state without spawning a worker.
func TestJournalAdoption(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 3)
	tmpl := fmt.Sprintf("cp %s/pre-{index}.runs {out}", pre)
	workDir := t.TempDir() // shared: shard files must survive into run 2
	jpath := filepath.Join(t.TempDir(), "s.journal")
	jopts := journal.Options{Schema: testSchema, Fingerprint: journal.Fingerprint("adoption-test")}

	run := func(jl *journal.Journal, log *bytes.Buffer) (*Result, error) {
		return Run(Options{
			Shards:   3,
			Template: tmpl,
			Dir:      workDir,
			Schema:   testSchema,
			Log:      log,
			Journal:  jl,
		})
	}

	jl1, _, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	var log1 bytes.Buffer
	res1, err := run(jl1, &log1)
	if err != nil {
		t.Fatalf("run 1: %v\nlog:\n%s", err, log1.String())
	}
	if res1.Adopted() != 0 {
		t.Errorf("first run adopted %d shards from an empty journal", res1.Adopted())
	}
	jl1.Close()

	jl2, rec, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if len(rec.Shards) != 3 {
		t.Fatalf("journal recovered %d shard records, want 3 (%+v)", len(rec.Shards), rec)
	}
	var log2 bytes.Buffer
	res2, err := run(jl2, &log2)
	if err != nil {
		t.Fatalf("run 2: %v\nlog:\n%s", err, log2.String())
	}
	if res2.Adopted() != 3 {
		t.Errorf("Adopted() = %d, want 3\nlog:\n%s", res2.Adopted(), log2.String())
	}
	for i, rep := range res2.Reports {
		if !rep.Adopted || rep.Attempts != 0 {
			t.Errorf("report %d not adopted: %+v", i, rep)
		}
	}
	if res2.Retries() != 0 {
		t.Errorf("adopted fleet reported %d retries", res2.Retries())
	}
	if !strings.Contains(log2.String(), "adopted from journal") {
		t.Errorf("adoption not visible in progress log:\n%s", log2.String())
	}
	// The adopted files are the run-1 files, still merge-valid.
	for i, f := range res2.Files {
		if f != res1.Files[i] {
			t.Errorf("adopted file %d = %s, run 1 produced %s", i, f, res1.Files[i])
		}
		if _, err := shard.ReadFile(f, testSchema); err != nil {
			t.Errorf("adopted file %d invalid: %v", i, err)
		}
	}
}

// TestJournalAdoptionRevalidates: a journaled shard whose file was lost
// or torn since the checkpoint is re-dispatched, not trusted.
func TestJournalAdoptionRevalidates(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 2)
	tmpl := fmt.Sprintf("cp %s/pre-{index}.runs {out}", pre)
	workDir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "s.journal")
	jopts := journal.Options{Schema: testSchema, Fingerprint: journal.Fingerprint("revalidate-test")}

	jl1, _, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Run(Options{
		Shards: 2, Template: tmpl, Dir: workDir, Schema: testSchema, Journal: jl1,
	})
	if err != nil {
		t.Fatal(err)
	}
	jl1.Close()
	// Tear shard 0's file behind the journal's back.
	if err := os.WriteFile(res1.Files[0], []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	jl2, _, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	var log bytes.Buffer
	res2, err := Run(Options{
		Shards: 2, Template: tmpl, Dir: workDir, Schema: testSchema, Journal: jl2, Log: &log,
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	if res2.Adopted() != 1 {
		t.Errorf("Adopted() = %d, want 1 (shard 1 only)\nlog:\n%s", res2.Adopted(), log.String())
	}
	if res2.Reports[0].Adopted || res2.Reports[0].Attempts == 0 {
		t.Errorf("shard with a torn file was adopted: %+v", res2.Reports[0])
	}
	if !res2.Reports[1].Adopted {
		t.Errorf("shard with a valid file was re-run: %+v", res2.Reports[1])
	}
	if !strings.Contains(log.String(), "no longer validates") {
		t.Errorf("re-dispatch reason not logged:\n%s", log.String())
	}
	if _, err := shard.ReadFile(res2.Files[0], testSchema); err != nil {
		t.Errorf("re-dispatched shard file invalid: %v", err)
	}
}

// TestPlanMismatchIgnoresJournal: shard records from a different plan
// (different shard count) are never adopted.
func TestPlanMismatchIgnoresJournal(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 2)
	workDir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "s.journal")
	jopts := journal.Options{Schema: testSchema, Fingerprint: journal.Fingerprint("plan-test")}

	jl1, _, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{
		Shards: 2, Template: fmt.Sprintf("cp %s/pre-{index}.runs {out}", pre),
		Dir: workDir, Schema: testSchema, Journal: jl1,
	}); err != nil {
		t.Fatal(err)
	}
	jl1.Close()

	pre3 := t.TempDir()
	writeFakeShardFiles(t, pre3, 3)
	jl2, _, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	res, err := Run(Options{
		Shards: 3, Template: fmt.Sprintf("cp %s/pre-{index}.runs {out}", pre3),
		Dir: workDir, Schema: testSchema, Journal: jl2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adopted() != 0 {
		t.Errorf("shard records from a 2-shard plan adopted into a 3-shard fleet (%d adopted)", res.Adopted())
	}
}

// TestInterruptCheckpoints: cancelling Options.Context mid-fleet drains
// the workers and returns ErrInterrupted instead of hanging or
// reporting success.
func TestInterruptCheckpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	var log bytes.Buffer
	start := time.Now()
	_, err := Run(Options{
		Shards:   2,
		Template: "sleep 300",
		Dir:      t.TempDir(),
		Schema:   testSchema,
		Log:      &log,
		Context:  ctx,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted\nlog:\n%s", err, log.String())
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Errorf("drain waited out the workers (%.1fs)", took.Seconds())
	}
}

// TestElasticPoolScalesWithQueue: an elastic fleet starts at
// MinWorkers, grows to cover the queued shards, and retires idle slots
// as the queue drains — with the scale trajectory visible in the
// progress log and the result counters.
func TestElasticPoolScalesWithQueue(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 4)
	var log bytes.Buffer
	res, err := Run(Options{
		Shards:     4,
		MinWorkers: 1,
		MaxWorkers: 4,
		Template:   fmt.Sprintf("cp %s/pre-{index}.runs {out}", pre),
		Dir:        t.TempDir(),
		Schema:     testSchema,
		Log:        &log,
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	if res.PeakWorkers != 4 {
		t.Errorf("PeakWorkers = %d, want 4 (queue depth should grow the pool to max)", res.PeakWorkers)
	}
	if res.ScaleUps < 1 || res.ScaleDowns < 1 {
		t.Errorf("scale counters = %d up / %d down, want >=1 each", res.ScaleUps, res.ScaleDowns)
	}
	if !strings.Contains(log.String(), "pool scaled up to 4 slot(s)") {
		t.Errorf("grow not visible in progress log:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "pool scaled down") {
		t.Errorf("shrink not visible in progress log:\n%s", log.String())
	}
	seen := map[string]bool{}
	for i, f := range res.Files {
		entries, err := shard.ReadFile(f, testSchema)
		if err != nil {
			t.Fatalf("shard file %d: %v", i, err)
		}
		for _, e := range entries {
			if seen[e.Key] {
				t.Errorf("key %s appears in two shard files", e.Key)
			}
			seen[e.Key] = true
		}
	}
	if len(seen) != len(fakeWorkerKeys()) {
		t.Errorf("elastic fleet covered %d keys, universe has %d", len(seen), len(fakeWorkerKeys()))
	}
}

// TestStragglerStolenResumesOnFreshSlot: with worker journals, a
// straggling shard is stolen — its attempt killed and the shard
// requeued onto a fresh slot — instead of speculatively duplicated, and
// the shard file the replacement produces is merge-valid.
func TestStragglerStolenResumesOnFreshSlot(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 2)
	// Slot 0 hangs far beyond the test horizon; any other slot is fast.
	tmpl := fmt.Sprintf("if [ {slot} = 0 ]; then sleep 300; exit 1; fi; cp %s/pre-{index}.runs {out}", pre)
	var log bytes.Buffer
	start := time.Now()
	res, err := Run(Options{
		Shards:           2,
		MinWorkers:       1,
		MaxWorkers:       2,
		Template:         tmpl,
		Dir:              t.TempDir(),
		Schema:           testSchema,
		Log:              &log,
		StragglerFactor:  1.5,
		StragglerMin:     100 * time.Millisecond,
		WorkerJournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Errorf("dispatch waited out the straggler (%.1fs)", took.Seconds())
	}
	slow := res.Reports[0] // shard 0 landed on slot 0 first
	if slow.Stolen != 1 || slow.Slot == 0 || slow.Attempts != 2 {
		t.Errorf("straggling shard should converge via a stolen requeue on a fresh slot; got %+v", slow)
	}
	if res.Steals() != 1 {
		t.Errorf("Steals() = %d, want 1", res.Steals())
	}
	for _, want := range []string{"stealing", "stolen from slot 0"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("steal not visible in progress log (missing %q):\n%s", want, log.String())
		}
	}
	if _, err := shard.ReadFile(res.Files[0], testSchema); err != nil {
		t.Errorf("stolen shard's final file invalid: %v", err)
	}
}

// TestElasticScaleJournaled: pool resizes are checkpointed, so a
// resumed driver can adopt the surviving pool shape.
func TestElasticScaleJournaled(t *testing.T) {
	pre := t.TempDir()
	writeFakeShardFiles(t, pre, 3)
	jpath := filepath.Join(t.TempDir(), "s.journal")
	jopts := journal.Options{Schema: testSchema, Fingerprint: journal.Fingerprint("scale-test")}
	jl1, _, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{
		Shards:     3,
		MinWorkers: 1,
		MaxWorkers: 3,
		Template:   fmt.Sprintf("cp %s/pre-{index}.runs {out}", pre),
		Dir:        t.TempDir(),
		Schema:     testSchema,
		Journal:    jl1,
	}); err != nil {
		t.Fatal(err)
	}
	jl1.Close()

	jl2, rec, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if rec.Pool < 1 {
		t.Errorf("recovered pool = %d, want the elastic run's checkpointed size (>=1)", rec.Pool)
	}
	if jl2.RecoveredPool() != rec.Pool {
		t.Errorf("RecoveredPool() = %d, recovery says %d", jl2.RecoveredPool(), rec.Pool)
	}
}
