//go:build !unix

package dispatch

import "os/exec"

// setProcGroup is a no-op where process groups are unavailable.
func setProcGroup(cmd *exec.Cmd) {}

// killGroup kills the immediate worker process; grandchild cleanup is
// best-effort without process groups.
func killGroup(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	return cmd.Process.Kill()
}
