//go:build unix

package dispatch

import (
	"os/exec"
	"syscall"
)

// setProcGroup puts the worker in its own process group, so killGroup
// reaches every descendant a template worker spawned — not just the
// immediate `sh -c`.
func setProcGroup(cmd *exec.Cmd) {
	if cmd.SysProcAttr == nil {
		cmd.SysProcAttr = &syscall.SysProcAttr{}
	}
	cmd.SysProcAttr.Setpgid = true
}

// killGroup SIGKILLs the worker's whole process group, falling back to
// the process alone when the group is already gone.
func killGroup(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err == nil {
		return nil
	}
	return cmd.Process.Kill()
}
