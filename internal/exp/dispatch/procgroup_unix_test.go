//go:build unix

package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestGroupKillReapsGrandchildren: cancelling a worker must take its
// whole process group with it — a grandchild (here a background sleep
// under the worker's sh) must not survive as an orphan holding slots,
// files or store connections.
func TestGroupKillReapsGrandchildren(t *testing.T) {
	pidDir := t.TempDir()
	pidFile := filepath.Join(pidDir, "grandchild.pid")
	// The worker spawns a long-lived grandchild, records its pid (via
	// rename, so the file never exists empty), then hangs — only a group
	// kill reaches the sleep.
	tmpl := fmt.Sprintf("sleep 300 & echo $! > %s.tmp && mv %s.tmp %s; wait", pidFile, pidFile, pidFile)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Cancel once the grandchild exists, so the test races nothing.
		for i := 0; i < 200; i++ {
			if _, err := os.Stat(pidFile); err == nil {
				cancel()
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		cancel()
	}()

	var log bytes.Buffer
	_, err := Run(Options{
		Shards:   1,
		Template: tmpl,
		Dir:      t.TempDir(),
		Schema:   testSchema,
		Log:      &log,
		Context:  ctx,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted\nlog:\n%s", err, log.String())
	}

	raw, rerr := os.ReadFile(pidFile)
	if rerr != nil {
		t.Fatalf("grandchild pid never recorded: %v", rerr)
	}
	pid, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
	if perr != nil || pid <= 0 {
		t.Fatalf("bad grandchild pid %q: %v", raw, perr)
	}
	// The group kill is issued before Run returns; give the kernel a
	// moment to reap, then the pid must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		kerr := syscall.Kill(pid, 0)
		if errors.Is(kerr, syscall.ESRCH) {
			return
		}
		if time.Now().After(deadline) {
			syscall.Kill(pid, syscall.SIGKILL) // don't leak it past the test
			t.Fatalf("grandchild %d survived the group kill (kill(0) = %v)", pid, kerr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
