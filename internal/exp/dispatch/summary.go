package dispatch

import (
	"encoding/json"
	"strings"

	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/store"
)

// SummaryPrefix marks the machine-readable trailer a shard worker
// prints on stdout. The driver lifts the trailer out of the stream into
// the shard's report instead of echoing it, so the per-shard session
// summary (runs, executed simulations, wall-clock, store traffic)
// survives the fan-out without scraping human-formatted output.
const SummaryPrefix = "dispatch-summary: "

// Summary is one shard worker's self-reported session outcome.
type Summary struct {
	Shard    string      `json:"shard"`
	Runs     int         `json:"runs"`     // owned runs in the shard file
	Executed int64       `json:"executed"` // simulations actually run (store hits excluded)
	WallMS   int64       `json:"wall_ms"`  // worker wall-clock
	Store    store.Stats `json:"store"`    // worker's store traffic (zero without a store)
	// Faults counts failpoints the worker's -faults schedule injected in
	// its process (fault.Fired); zero without a schedule.
	Faults int64 `json:"faults,omitempty"`
	// Journal is the worker's session-journal traffic (appends, replays,
	// resume hits); zero without a journal.
	Journal journal.Stats `json:"journal,omitzero"`
}

// Line renders the trailer as the single stdout line workers print.
func (s Summary) Line() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Summary is plain data; Marshal cannot fail on it. Keep the
		// trailer contract anyway.
		return SummaryPrefix + "{}"
	}
	return SummaryPrefix + string(b)
}

// ParseSummaryLine recognizes and decodes a worker summary trailer;
// ok is false for any other line.
func ParseSummaryLine(line string) (Summary, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(line), SummaryPrefix)
	if !ok {
		return Summary{}, false
	}
	var s Summary
	if err := json.Unmarshal([]byte(rest), &s); err != nil {
		return Summary{}, false
	}
	return s, true
}
