package exp

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pracsim/internal/exp/dispatch"
	"pracsim/internal/exp/shard"
	"pracsim/internal/sim"
)

// exportShardFiles runs a sharded session per shard at storeScale and
// exports real shard files — the ground truth a fake dispatch worker
// copies into place, so the dispatcher's retry/merge path is exercised
// against genuine simulation results without rebuilding the CLI binary.
func exportShardFiles(t *testing.T, dir string, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		sp := shard.Spec{Index: i, Count: count}
		sess := NewRunnerWith(storeScale(), SessionOptions{Shard: sp})
		if _, err := sess.Fig12(); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if _, err := sess.ExportShard(filepath.Join(dir, fmt.Sprintf("pre-%d.runs", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDispatchWorkerKilledRetriesAndMergesBitIdentical is the dispatch
// contract end to end: shard 1's first worker is killed mid-shard, the
// driver retries it on another slot, and the merged session assembles
// figures bit-identical to an unsharded run with zero new simulations.
func TestDispatchWorkerKilledRetriesAndMergesBitIdentical(t *testing.T) {
	reference := NewRunner(storeScale())
	want, err := reference.Fig12()
	if err != nil {
		t.Fatal(err)
	}

	pre := t.TempDir()
	exportShardFiles(t, pre, 2)
	mark := filepath.Join(t.TempDir(), "killed-once")
	// First attempt at shard 1 dies by SIGKILL before producing a file;
	// every other attempt copies the real shard file into place.
	tmpl := fmt.Sprintf(
		"if [ {index} = 1 ] && [ ! -e %s ]; then : > %s; echo 'worker lost' >&2; kill -KILL $$; fi; cp %s/pre-{index}.runs {out}",
		mark, mark, pre)

	var log bytes.Buffer
	res, err := dispatch.Run(dispatch.Options{
		Shards:   2,
		Workers:  2,
		Template: tmpl,
		Attempts: 3,
		Dir:      t.TempDir(),
		Schema:   sim.SchemaVersion,
		Log:      &log,
	})
	if err != nil {
		t.Fatalf("dispatch: %v\nlog:\n%s", err, log.String())
	}
	if res.Retries() != 1 || res.Reports[1].Attempts != 2 {
		t.Errorf("killed worker should cost exactly one retry on shard 1; reports: %+v", res.Reports)
	}
	if !strings.Contains(log.String(), "shard 1/2 attempt 2") {
		t.Errorf("retry not visible in progress log:\n%s", log.String())
	}

	merge := NewRunner(storeScale())
	imported, err := merge.ImportShards(res.Files...)
	if err != nil {
		t.Fatal(err)
	}
	if int64(imported) != reference.Executed() {
		t.Errorf("imported %d runs, unsharded reference executed %d", imported, reference.Executed())
	}
	got, err := merge.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := merge.Executed(); n != 0 {
		t.Errorf("merged session executed %d simulations, want 0", n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dispatched result differs:\n got %+v\nwant %+v", got, want)
	}
	if got.Render() != want.Render() || got.CSV() != want.CSV() {
		t.Error("dispatched render/CSV not byte-identical to unsharded run")
	}
}

// TestDispatchBudgetExhaustedFailsWithStderr: a shard whose every
// attempt fails must fail the whole dispatch, surfacing the worker's
// stderr so the operator sees why the fleet could not converge.
func TestDispatchBudgetExhaustedFailsWithStderr(t *testing.T) {
	pre := t.TempDir()
	exportShardFiles(t, pre, 2)
	// Shard 0 converges; shard 1 is beyond saving.
	tmpl := fmt.Sprintf(
		"if [ {index} = 1 ]; then echo 'trace catalog missing on this host' >&2; exit 7; fi; cp %s/pre-{index}.runs {out}",
		pre)
	_, err := dispatch.Run(dispatch.Options{
		Shards:   2,
		Workers:  2,
		Template: tmpl,
		Attempts: 2,
		Dir:      t.TempDir(),
		Schema:   sim.SchemaVersion,
	})
	if err == nil {
		t.Fatal("exhausted shard did not fail the dispatch")
	}
	for _, want := range []string{"shard 1/2", "after 2 attempt(s)", "trace catalog missing on this host"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("dispatch error %q missing %q", err, want)
		}
	}
}

// TestImportShardsRejectsEmptyPath: a torn -merge list reaching the
// session must fail as an empty path, not as a confusing open("").
func TestImportShardsRejectsEmptyPath(t *testing.T) {
	sess := NewRunner(storeScale())
	if _, err := sess.ImportShards(""); err == nil || !strings.Contains(err.Error(), "empty shard file path") {
		t.Errorf("ImportShards(\"\") = %v, want empty-path error", err)
	}
}

// TestSessionSummary: the worker-trailer counters agree with the
// session's own accessors.
func TestSessionSummary(t *testing.T) {
	st := openStore(t)
	sess := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	if _, err := sess.Fig12(); err != nil {
		t.Fatal(err)
	}
	sum := sess.Summary()
	if sum.Executed != sess.Executed() || sum.CachedRuns != sess.CachedRuns() || sum.Store != sess.StoreStats() {
		t.Errorf("summary %+v disagrees with session accessors", sum)
	}
	if sum.Executed == 0 || sum.Store.Writes == 0 {
		t.Errorf("cold session summary implausible: %+v", sum)
	}
}
