//go:build unix

package exp

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"pracsim/internal/exp/dispatch"
	"pracsim/internal/exp/journal"
	"pracsim/internal/sim"
)

// killDriverMidFleet spawns this test binary as a real dispatch driver
// (see TestMain), waits until the journal shows at least one converged
// shard, then SIGKILLs the driver's whole process group — no drain, no
// checkpoint call, exactly the crash the journal exists for. It returns
// the driver's combined output for debugging.
func killDriverMidFleet(t *testing.T, jpath, workDir, tmpl string) string {
	t.Helper()
	return killDriverAfterShards(t, jpath, workDir, tmpl, 1)
}

// killDriverAfterShards is killDriverMidFleet generalized: the kill
// lands once the journal holds at least shards convergence records.
func killDriverAfterShards(t *testing.T, jpath, workDir, tmpl string, shards int) string {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"PRACSIM_EXP_FAKE_DRIVER=1",
		"PRACSIM_EXP_DRIVER_JOURNAL="+jpath,
		"PRACSIM_EXP_DRIVER_DIR="+workDir,
		"PRACSIM_EXP_DRIVER_TEMPLATE="+tmpl,
	)
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		raw, _ := os.ReadFile(jpath)
		if bytes.Count(raw, []byte(`"t":"shard"`)) >= shards {
			break
		}
		if time.Now().After(deadline) {
			syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
			cmd.Wait()
			t.Fatalf("driver never checkpointed %d shard(s)\ndriver output:\n%s", shards, out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		t.Fatalf("killing driver group: %v", err)
	}
	cmd.Wait()
	return out.String()
}

// resumeKilledDriver re-runs the killed driver's dispatch in-process
// over the reopened journal and pins the resume contract: converged
// shards adopted, the fleet completes, and the merged figures are
// byte-identical to an undispatched serial reference with zero
// re-executed simulations.
func resumeKilledDriver(t *testing.T, jpath, workDir, tmpl, driverOut string) {
	t.Helper()
	jl, rec, err := journal.Open(jpath, driverJournalOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if len(rec.Shards) == 0 {
		t.Fatalf("journal recovered no shard records after the kill: %+v\ndriver output:\n%s", rec, driverOut)
	}
	var log bytes.Buffer
	res, err := dispatch.Run(dispatch.Options{
		Shards:   3,
		Template: tmpl,
		Dir:      workDir,
		Schema:   sim.SchemaVersion,
		Journal:  jl,
		Log:      &log,
	})
	if err != nil {
		t.Fatalf("resumed dispatch: %v\nlog:\n%s\ndriver output:\n%s", err, log.String(), driverOut)
	}
	if res.Adopted() == 0 {
		t.Errorf("resumed dispatch re-ran every shard\nlog:\n%s", log.String())
	}

	serial := storeScale()
	serial.Serial = true
	reference := NewRunner(serial)
	want, err := reference.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	merge := NewRunner(storeScale())
	if _, err := merge.ImportShards(res.Files...); err != nil {
		t.Fatal(err)
	}
	got, err := merge.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := merge.Executed(); n != 0 {
		t.Errorf("resumed fleet re-executed %d simulations, want 0", n)
	}
	if got.Render() != want.Render() || got.CSV() != want.CSV() {
		t.Error("resumed fleet result not byte-identical to the serial reference")
	}
}

// TestDriverSIGKILLResumeBitIdentical is the acceptance e2e: a real
// driver process is SIGKILLed mid-fleet and a re-invocation with the
// same arguments completes the fleet from the journal — zero
// re-executed runs, byte-identical CSVs versus a serial session.
func TestDriverSIGKILLResumeBitIdentical(t *testing.T) {
	pre := t.TempDir()
	exportShardFiles(t, pre, 3)
	workDir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "session.journal")
	mark := filepath.Join(t.TempDir(), "resume-mark")
	// Before the mark exists only shard 0 converges, so the kill lands
	// with the fleet reliably half-done; the resumed run is fast.
	tmpl := fmt.Sprintf("if [ {index} != 0 ] && [ ! -e %s ]; then sleep 300; fi; cp %s/pre-{index}.runs {out}", mark, pre)

	out := killDriverMidFleet(t, jpath, workDir, tmpl)
	if err := os.WriteFile(mark, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	resumeKilledDriver(t, jpath, workDir, tmpl, out)
}

// TestDriverSIGKILLTornJournalResume repeats the kill/resume e2e with
// the journal itself torn at the kill point — the partial frame a
// SIGKILL lands mid-append. Recovery truncates the tear and the resumed
// fleet still converges bit-identically: a torn journal can only cost
// re-execution, never correctness.
func TestDriverSIGKILLTornJournalResume(t *testing.T) {
	pre := t.TempDir()
	exportShardFiles(t, pre, 3)
	workDir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "session.journal")
	mark := filepath.Join(t.TempDir(), "resume-mark")
	tmpl := fmt.Sprintf("if [ {index} != 0 ] && [ ! -e %s ]; then sleep 300; fi; cp %s/pre-{index}.runs {out}", mark, pre)

	out := killDriverMidFleet(t, jpath, workDir, tmpl)
	// The frame the driver was mid-way through when the kill landed.
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{120, 0, 0, 0, '{', '"', 't', '"', ':'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(mark, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	resumeKilledDriver(t, jpath, workDir, tmpl, out)
}

// TestDriverKillStormResumesBitIdentical is the storm version: the
// driver is SIGKILLed twice at successive stages of the fleet, each
// restart adopting strictly more journaled shards, and the final resume
// still converges bit-identically — repeated crashes compose.
func TestDriverKillStormResumesBitIdentical(t *testing.T) {
	pre := t.TempDir()
	exportShardFiles(t, pre, 3)
	workDir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "session.journal")
	// Staggered convergence: shard i takes ~i seconds, so "kill after k
	// shard records" reliably lands mid-fleet.
	tmpl := fmt.Sprintf("sleep {index}; cp %s/pre-{index}.runs {out}", pre)

	var out string
	for kill := 1; kill <= 2; kill++ {
		out += killDriverAfterShards(t, jpath, workDir, tmpl, kill)
	}
	resumeKilledDriver(t, jpath, workDir, tmpl, out)
}
