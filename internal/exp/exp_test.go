package exp

import (
	"strings"
	"testing"

	"pracsim/internal/ticks"
)

// tinyScale keeps unit tests fast while exercising the full pipeline.
func tinyScale() Scale {
	return Scale{
		Warmup:    5_000,
		Measured:  10_000,
		Workloads: []string{"433.milc", "444.namd"},
	}
}

func TestRunFig3(t *testing.T) {
	res, err := RunFig3(ticks.FromUS(120))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Fig3 rows = %d, want 4", len(res.Rows))
	}
	if res.Rows[0].NMit != 0 || res.Rows[0].ABOs != 0 {
		t.Errorf("first row should be the No-ABO panel: %+v", res.Rows[0])
	}
	// Spike magnitude must grow with the PRAC level.
	if !(res.Rows[3].SpikeNS > res.Rows[1].SpikeNS) {
		t.Errorf("PRAC-4 spike %.0fns not above PRAC-1 %.0fns", res.Rows[3].SpikeNS, res.Rows[1].SpikeNS)
	}
	if !strings.Contains(res.Render(), "Figure 3") || res.CSV() == "" {
		t.Error("rendering broken")
	}
}

func TestRunTable2(t *testing.T) {
	res, err := RunTable2(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("Table2 rows = %d, want 6", len(res.Rows))
	}
	// Bitrate decreases with NBO within each channel type, and the
	// count-based channel beats the activity channel at equal NBO.
	if !(res.Rows[0].BitrateKbps > res.Rows[2].BitrateKbps) {
		t.Errorf("activity bitrate should fall with NBO: %+v", res.Rows[:3])
	}
	if !(res.Rows[3].BitrateKbps > res.Rows[0].BitrateKbps) {
		t.Errorf("count channel (%.1f) should outpace activity (%.1f)",
			res.Rows[3].BitrateKbps, res.Rows[0].BitrateKbps)
	}
	for _, row := range res.Rows {
		if row.ErrorRate > 0.25 {
			t.Errorf("%s NBO=%d error rate %.2f too high", row.Type, row.NBO, row.ErrorRate)
		}
	}
}

func TestRunFig4(t *testing.T) {
	res, err := RunFig4(150)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Attack.Hit {
		t.Errorf("Fig4 attack missed: got row %d want %d", res.Attack.RecoveredRow, res.Attack.TrueRow)
	}
	if len(res.VictimBy) == 0 {
		t.Error("no timeline points")
	}
	if !strings.Contains(res.Render(), "Figure 4") || res.CSV() == "" {
		t.Error("rendering broken")
	}
}

func TestRunFig5(t *testing.T) {
	res, err := RunFig5(150, 64) // 4 key values
	if err != nil {
		t.Fatal(err)
	}
	if len(res.K0Values) != 4 {
		t.Fatalf("swept %d key values, want 4", len(res.K0Values))
	}
	if res.HitRate() < 0.75 {
		t.Errorf("hit rate %.2f, want mostly hits", res.HitRate())
	}
	if !strings.Contains(res.Render(), "heatmap") {
		t.Error("rendering broken")
	}
}

func TestRunFig9(t *testing.T) {
	res, err := RunFig9(150, 64) // 4 key values
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.K0Values)
	if res.UndefHits < n-1 {
		t.Errorf("undefended hit rate %d/%d; the attack should leak", res.UndefHits, n)
	}
	if res.DefendedHit == n {
		t.Errorf("TPRAC leaked the key for every value (%d/%d)", res.DefendedHit, n)
	}
	if !strings.Contains(res.Render(), "Figure 9") {
		t.Error("rendering broken")
	}
}

func TestRunFig7(t *testing.T) {
	res, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 || len(res.Windows) != 6 {
		t.Fatalf("points=%d windows=%d, want 6 each", len(res.Points), len(res.Windows))
	}
	prev := 0.0
	for _, w := range res.Windows {
		if w.WithResetTREFI <= prev {
			t.Errorf("solved window not increasing with NBO: %+v", res.Windows)
			break
		}
		prev = w.WithResetTREFI
	}
	if !strings.Contains(res.Render(), "Figure 7") || res.CSV() == "" {
		t.Error("rendering broken")
	}
}

func TestRunFig10Tiny(t *testing.T) {
	res, err := RunFig10(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 2 || len(res.Variants) != 3 {
		t.Fatalf("shape = %d workloads x %d variants", len(res.Workloads), len(res.Variants))
	}
	for j, v := range res.Variants {
		g := res.GeomeanAll[j]
		if g <= 0.5 || g > 1.05 {
			t.Errorf("%s geomean = %.3f, implausible", v, g)
		}
	}
	// TPRAC must cost more than ABO-Only (which is nearly free).
	if !(res.GeomeanAll[2] < res.GeomeanAll[0]+0.005) {
		t.Errorf("TPRAC (%.3f) not below ABO-Only (%.3f)", res.GeomeanAll[2], res.GeomeanAll[0])
	}
	if !strings.Contains(res.Render(), "GEOMEAN") {
		t.Error("rendering broken")
	}
}

func TestRunFig12Tiny(t *testing.T) {
	scale := tinyScale()
	scale.Workloads = []string{"433.milc"}
	res, err := RunFig12(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Geomean) != 5 {
		t.Fatalf("Fig12 x values = %d, want 5", len(res.Geomean))
	}
	// One TREF per tREFI fully replaces TB-RFMs: performance at least as
	// good as TPRAC without TREF.
	none := res.Geomean[0][0]
	full := res.Geomean[4][0]
	if full < none-0.01 {
		t.Errorf("TREF/1 (%.3f) worse than no TREF (%.3f)", full, none)
	}
}

func TestRunTable5Tiny(t *testing.T) {
	scale := tinyScale()
	scale.Workloads = []string{"433.milc"}
	res, err := RunTable5(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("Table5 rows = %d, want 6", len(res.Rows))
	}
	// Energy overhead decreases as NRH rises (fewer TB-RFMs needed).
	if !(res.Rows[0].TotalPct > res.Rows[5].TotalPct) {
		t.Errorf("overhead at NRH=128 (%.2f%%) not above NRH=4096 (%.2f%%)",
			res.Rows[0].TotalPct, res.Rows[5].TotalPct)
	}
	if res.Rows[0].MitigationPct <= 0 {
		t.Errorf("no mitigation energy at NRH=128: %+v", res.Rows[0])
	}
}

func TestRunRFMpbTiny(t *testing.T) {
	scale := tinyScale()
	scale.Workloads = []string{"433.milc"}
	res, err := RunRFMpb(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NRHs) != 3 {
		t.Fatalf("NRH points = %d, want 3", len(res.NRHs))
	}
	for i, nrh := range res.NRHs {
		if res.Alerts[i] != 0 {
			t.Errorf("NRH %d: %d alerts under per-bank TB-RFM", nrh, res.Alerts[i])
		}
		// The whole point of RFMpb: cheaper than channel-wide RFMab.
		if res.RFMpb[i] < res.RFMab[i]-0.01 {
			t.Errorf("NRH %d: RFMpb (%.3f) worse than RFMab (%.3f)", nrh, res.RFMpb[i], res.RFMab[i])
		}
	}
	if !strings.Contains(res.Render(), "per-bank") {
		t.Error("rendering broken")
	}
}

func TestConfigureVariants(t *testing.T) {
	cfg, err := configure(Variant{Name: "TPRAC", Policy: 2 /* PolicyTPRAC */, NRH: 1024}, "433.milc")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TBWindow <= 0 {
		t.Error("TPRAC variant got no TB-Window")
	}
	cfg, err = configure(Variant{Name: "ACB", Policy: 1 /* PolicyACB */, NRH: 1024}, "433.milc")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BAT < 2 {
		t.Errorf("ACB variant BAT = %d", cfg.BAT)
	}
	if _, err := configure(Variant{Name: "bad", Policy: 2, NRH: 4}, "433.milc"); err == nil {
		t.Error("unprotectable NRH accepted")
	}
}

func TestTBWindowFor(t *testing.T) {
	w, err := TBWindowFor(1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Error("zero window")
	}
}
