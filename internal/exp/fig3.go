// Package exp contains one runner per table and figure of the paper's
// evaluation. Each runner executes the relevant simulations, returns a
// structured result, and can render itself as an aligned ASCII table (for
// terminals) and CSV (for plotting).
package exp

import (
	"fmt"

	"pracsim/internal/attack"
	"pracsim/internal/exp/pool"
	"pracsim/internal/stats"
	"pracsim/internal/ticks"
)

// Fig3Row is one panel of Figure 3: probe latency under a given PRAC level.
type Fig3Row struct {
	NMit            int // 0 = No ABO
	BaselineNS      float64
	SpikeNS         float64
	Spikes          int
	ABOs            int64
	SamplesObserved int
}

// Fig3Result holds all four panels.
type Fig3Result struct {
	Rows     []Fig3Row
	Duration ticks.T
}

// sweepPool builds the pool for an attack-side sweep from an optional
// trailing workers argument (0 or absent = all cores). Sweep results
// never depend on the worker count.
func sweepPool(workers []int) *pool.Pool {
	n := 0
	if len(workers) > 0 {
		n = workers[0]
	}
	return pool.New(n)
}

// RunFig3 reproduces Figure 3: timing variation seen by a concurrent
// observer with no ABO and with 1, 2 and 4 RFMs per ABO. The four
// panels are independent simulations and run in parallel across
// workers (optional; all cores by default).
func RunFig3(duration ticks.T, workers ...int) (Fig3Result, error) {
	if duration <= 0 {
		duration = ticks.FromUS(500)
	}
	nmits := []int{0, 1, 2, 4}
	res := Fig3Result{Duration: duration, Rows: make([]Fig3Row, len(nmits))}
	err := sweepPool(workers).Run(len(nmits), func(i int) error {
		nmit := nmits[i]
		r, err := attack.RunCharacterization(attack.CharacterizeConfig{
			NBO:      256,
			NMit:     nmit,
			Duration: duration,
		})
		if err != nil {
			return fmt.Errorf("fig3 nmit=%d: %w", nmit, err)
		}
		res.Rows[i] = Fig3Row{
			NMit:            nmit,
			BaselineNS:      r.BaselineLatency.NS(),
			SpikeNS:         r.SpikeLatency.NS(),
			Spikes:          r.Spikes,
			ABOs:            r.ABOs,
			SamplesObserved: len(r.Samples),
		}
		return nil
	})
	return res, err
}

func (r Fig3Result) table() *stats.Table {
	t := &stats.Table{Header: []string{
		"RFMs/ABO", "baseline(ns)", "spike(ns)", "spikes", "ABOs", "samples",
	}}
	for _, row := range r.Rows {
		label := fmt.Sprint(row.NMit)
		if row.NMit == 0 {
			label = "No ABO"
		}
		t.Add(label, row.BaselineNS, row.SpikeNS, row.Spikes, row.ABOs, row.SamplesObserved)
	}
	return t
}

// Render returns the human-readable report.
func (r Fig3Result) Render() string {
	return "Figure 3: probe latency during Alert Back-Off (NBO=256, " +
		r.Duration.String() + " observation)\n" + r.table().String()
}

// CSV returns the machine-readable report.
func (r Fig3Result) CSV() string { return r.table().CSV() }
