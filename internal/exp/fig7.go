package exp

import (
	"fmt"

	"pracsim/internal/analysis"
	"pracsim/internal/stats"
)

// Fig7Result is the security analysis sweep plus the solved TB-Window per
// RowHammer threshold (the configuration table the performance experiments
// consume).
type Fig7Result struct {
	Points  []analysis.Fig7Point
	Windows []SolvedWindow
}

// SolvedWindow is the largest safe TB-Window for one threshold.
type SolvedWindow struct {
	NBO            int
	WithResetTREFI float64
	NoResetTREFI   float64
}

// RunFig7 reproduces Figure 7 and solves TB-Windows for the paper's NRH
// sweep. The per-threshold solves are independent and run in parallel
// across workers (optional; all cores by default).
func RunFig7(workers ...int) (Fig7Result, error) {
	p := analysis.DefaultParams()
	nbos := []int{128, 256, 512, 1024, 2048, 4096}
	res := Fig7Result{Points: p.Fig7(), Windows: make([]SolvedWindow, len(nbos))}
	err := sweepPool(workers).Run(len(nbos), func(i int) error {
		nbo := nbos[i]
		wr, err := p.SolveWindow(nbo, true, 0)
		if err != nil {
			return fmt.Errorf("fig7 solve reset nbo=%d: %w", nbo, err)
		}
		wn, err := p.SolveWindow(nbo, false, 0)
		if err != nil {
			return fmt.Errorf("fig7 solve no-reset nbo=%d: %w", nbo, err)
		}
		res.Windows[i] = SolvedWindow{
			NBO:            nbo,
			WithResetTREFI: float64(wr) / float64(p.TREFI),
			NoResetTREFI:   float64(wn) / float64(p.TREFI),
		}
		return nil
	})
	return res, err
}

func (r Fig7Result) tables() (*stats.Table, *stats.Table) {
	tmax := &stats.Table{Header: []string{"TB-Window(tREFI)", "TMAX(with reset)", "TMAX(no reset)"}}
	for _, pt := range r.Points {
		tmax.Add(pt.WindowTREFI, pt.WithReset, pt.NoReset)
	}
	win := &stats.Table{Header: []string{"NBO", "TB-Window(reset, tREFI)", "TB-Window(no reset, tREFI)"}}
	for _, w := range r.Windows {
		win.Add(w.NBO, w.WithResetTREFI, w.NoResetTREFI)
	}
	return tmax, win
}

// Render returns the human-readable report.
func (r Fig7Result) Render() string {
	tmax, win := r.tables()
	return "Figure 7: theoretical max activations to a target row under TPRAC\n" +
		tmax.String() +
		"\nSolved TB-Windows per Back-Off threshold:\n" + win.String()
}

// CSV returns the TMAX sweep as CSV.
func (r Fig7Result) CSV() string {
	tmax, _ := r.tables()
	return tmax.CSV()
}
