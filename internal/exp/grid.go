package exp

import (
	"fmt"
	"sort"

	"pracsim/internal/sim"
)

// Report is the common shape of every experiment result: a rendered
// human-readable table and its machine-readable CSV. tpracsim prints
// the first and writes the second; the experiment service serves the
// second by job id.
type Report interface {
	Render() string
	CSV() string
}

// experimentOrder is the canonical experiment sequence — the order
// `-exp all` runs and the order grid specs are normalized into.
var experimentOrder = []string{"fig10", "fig11", "fig12", "fig13", "fig14", "table5", "rfmpb"}

// Experiments returns the experiment names in canonical order.
func Experiments() []string {
	return append([]string(nil), experimentOrder...)
}

// Run runs one named experiment within this session. The name grammar
// is exactly tpracsim's -exp flag (minus "all", which callers expand
// via ExpandExperiments).
func (s *Runner) Run(name string) (Report, error) {
	switch name {
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "fig12":
		return s.Fig12()
	case "fig13":
		return s.Fig13()
	case "fig14":
		return s.Fig14()
	case "table5":
		return s.Table5()
	case "rfmpb":
		return s.RFMpb()
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", name)
}

// ExpandExperiments validates a selection against the canonical set,
// expands "all", drops duplicates and returns the selection in
// canonical order — the one grid-spec grammar tpracsim and the
// experiment service share.
func ExpandExperiments(names []string) ([]string, error) {
	known := make(map[string]bool, len(experimentOrder))
	for _, n := range experimentOrder {
		known[n] = true
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "all" {
			for _, k := range experimentOrder {
				want[k] = true
			}
			continue
		}
		if !known[n] {
			return nil, fmt.Errorf("exp: unknown experiment %q", n)
		}
		want[n] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("exp: no experiments selected")
	}
	var out []string
	for _, n := range experimentOrder {
		if want[n] {
			out = append(out, n)
		}
	}
	return out, nil
}

// sweepNRHs is the threshold axis Figures 13/14 and Table 5 share.
var sweepNRHs = []int{128, 256, 512, 1024, 2048, 4096}

// experimentVariants enumerates the distinct mitigation variants one
// named experiment simulates, mirroring each run function's grid
// exactly (the per-workload baseline is implicit and excluded here).
// TestGridKeysMatchSession pins the mirror against the real runs.
func experimentVariants(name string) ([]Variant, error) {
	switch name {
	case "fig10":
		return Fig10Variants(1024), nil
	case "fig11":
		var vs []Variant
		for _, level := range []int{1, 2, 4} {
			for _, v := range Fig10Variants(1024) {
				v.PRACLevel = level
				vs = append(vs, v)
			}
		}
		return vs, nil
	case "fig12":
		var vs []Variant
		for _, every := range []int{0, 4, 3, 2, 1} {
			v := Variant{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: 1024}
			if every > 0 {
				v.TREFEvery = every
				v.SkipOnTREF = true
			}
			vs = append(vs, v)
		}
		return vs, nil
	case "fig13":
		var vs []Variant
		for _, nrh := range sweepNRHs {
			vs = append(vs, Fig10Variants(nrh)...)
			vs = append(vs,
				Variant{Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 4, SkipOnTREF: true},
				Variant{Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 1, SkipOnTREF: true})
		}
		return vs, nil
	case "fig14":
		var vs []Variant
		for _, nrh := range sweepNRHs {
			vs = append(vs,
				Variant{Policy: sim.PolicyTPRAC, NRH: nrh},
				Variant{Policy: sim.PolicyTPRAC, NRH: nrh, NoReset: true},
				Variant{Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 1, SkipOnTREF: true},
				Variant{Policy: sim.PolicyTPRAC, NRH: nrh, NoReset: true, TREFEvery: 1, SkipOnTREF: true})
		}
		return vs, nil
	case "table5":
		var vs []Variant
		for _, nrh := range sweepNRHs {
			vs = append(vs, Variant{Policy: sim.PolicyTPRAC, NRH: nrh})
		}
		return vs, nil
	case "rfmpb":
		var vs []Variant
		for _, nrh := range []int{256, 512, 1024} {
			vs = append(vs,
				Variant{Policy: sim.PolicyTPRAC, NRH: nrh},
				Variant{Policy: sim.PolicyTPRACpb, NRH: nrh})
		}
		return vs, nil
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", name)
}

// GridKeys returns the sorted, deduplicated store keys of every
// simulation the named experiments resolve at a scale — per-workload
// baselines included. This is the experiment service's dedup oracle: a
// submitted grid whose keys are all warm in the store needs zero work,
// and two experiments sharing configurations (Table 5 re-runs Figure
// 13's TPRAC points) share keys here exactly as the session's
// single-flight cache shares their executions.
func GridKeys(names []string, scale Scale) ([]string, error) {
	names, err := ExpandExperiments(names)
	if err != nil {
		return nil, err
	}
	workloads := scale.workloads()
	seen := make(map[string]bool)
	for _, name := range names {
		vs, err := experimentVariants(name)
		if err != nil {
			return nil, err
		}
		vs = append(vs, Variant{Policy: sim.PolicyNone}) // the shared baseline
		for _, v := range vs {
			for _, w := range workloads {
				seen[storeKey(scale, canonicalKey(v, w))] = true
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}
