package exp

import (
	"reflect"
	"sort"
	"testing"

	"pracsim/internal/exp/store"
)

func TestExpandExperiments(t *testing.T) {
	got, err := ExpandExperiments([]string{"table5", "fig12", "fig12"})
	if err != nil {
		t.Fatalf("ExpandExperiments: %v", err)
	}
	if want := []string{"fig12", "table5"}; !reflect.DeepEqual(got, want) {
		t.Errorf("selection = %v, want %v (canonical order, deduped)", got, want)
	}
	all, err := ExpandExperiments([]string{"all"})
	if err != nil || !reflect.DeepEqual(all, Experiments()) {
		t.Errorf("all = %v (err %v), want the full canonical set", all, err)
	}
	if _, err := ExpandExperiments([]string{"fig12", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := ExpandExperiments(nil); err == nil {
		t.Error("empty selection accepted")
	}
}

// TestGridKeysMatchSession pins the GridKeys mirror against the real
// run functions: the set of keys an experiment actually resolves at a
// scale must equal what GridKeys enumerates — the experiment service's
// warm-resubmit dedup ("zero work enqueued") depends on exact equality
// in both directions.
func TestGridKeysMatchSession(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) simulations")
	}
	scale := Scale{Warmup: 1_000, Measured: 2_000, Workloads: []string{"433.milc", "444.namd"}}
	for _, name := range []string{"fig10", "fig12", "rfmpb"} {
		t.Run(name, func(t *testing.T) {
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatalf("store.Open: %v", err)
			}
			sess := NewRunnerWith(scale, SessionOptions{Store: st})
			if _, err := sess.Run(name); err != nil {
				t.Fatalf("running %s: %v", name, err)
			}
			var got []string
			err = store.ListEach(st.Backend(), func(info store.Info) error {
				got = append(got, info.Key)
				return nil
			})
			if err != nil {
				t.Fatalf("listing store: %v", err)
			}
			sort.Strings(got)
			want, err := GridKeys([]string{name}, scale)
			if err != nil {
				t.Fatalf("GridKeys: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: store keys diverge from GridKeys\nstore (%d): %v\ngridkeys (%d): %v",
					name, len(got), got, len(want), want)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	sess := NewRunner(Scale{Warmup: 1, Measured: 1, Workloads: []string{"433.milc"}})
	if _, err := sess.Run("fig99"); err == nil {
		t.Error("unknown experiment name accepted by Run")
	}
}
