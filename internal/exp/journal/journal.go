// Package journal is the durable spine of a session: an append-only,
// fsync-batched, per-record-checksummed event log that records what a
// session has already accomplished — the session open (schema and
// argument fingerprint), every completed run (key and result payload),
// the dispatch fleet plan and per-shard convergence, and merge/export
// completion — so a driver process that is SIGKILLed, OOM-killed or
// preempted mid-grid resumes from the journal with zero lost work
// instead of starting over.
//
// The journal is strictly a redo log, never a correctness dependency: a
// lost, truncated or corrupt journal costs re-execution, nothing else.
// That asymmetry shapes recovery — Open scans the file record by
// record, keeps every frame whose checksum validates, and truncates the
// first torn or corrupt frame and everything after it (a crash mid-
// append tears the tail; keeping the valid prefix is strictly better
// than failing the session), reporting what it replayed and what it
// cut.
//
// Layout: a one-line magic header, then length-prefixed frames
//
//	[uint32 length][JSON record][uint32 CRC32-C of the record]
//
// The first record is always the session-open record carrying the
// simulator schema version and the caller's argument fingerprint; a
// journal whose open record does not match the resuming process is
// rotated aside (renamed *.stale) rather than replayed — results from a
// different grid must never leak into this one.
//
// Appends are batched for durability: records are written immediately
// but fsync'd every SyncEvery records or SyncInterval, whichever comes
// first, and checkpoints the caller cannot afford to lose (a converged
// dispatch shard) call Sync explicitly. A record that misses its fsync
// before a crash is simply re-executed on resume.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pracsim/internal/fault"
)

// magic stamps the journal file format; a layout change bumps the
// suffix and orphans old journals (they rotate aside as stale).
const magic = "pracsim-journal/1\n"

// maxRecord bounds a single record frame. A length prefix beyond it is
// corruption by definition (run payloads are KBs), and the bound keeps
// recovery from allocating garbage-length buffers.
const maxRecord = 64 << 20

// crcTable is the Castagnoli polynomial — hardware-accelerated on
// every platform this runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record types.
const (
	typeOpen   = "open"
	typeRun    = "run"
	typePlan   = "plan"
	typeShard  = "shard"
	typeScale  = "scale"
	typeMerge  = "merge"
	typeExport = "export"
	typeDone   = "done"
	typeJob    = "job"
	typeLease  = "lease"
	typeAck    = "ack"
)

// record is one journal entry. A single struct covers every type; JSON
// omits the fields a type does not use.
type record struct {
	Type    string   `json:"t"`
	Schema  int      `json:"schema,omitempty"`  // open
	FP      string   `json:"fp,omitempty"`      // open, plan
	Key     string   `json:"key,omitempty"`     // run
	Payload []byte   `json:"p,omitempty"`       // run, job (grid spec)
	Shard   string   `json:"shard,omitempty"`   // shard, lease, ack ("i/n")
	File    string   `json:"file,omitempty"`    // shard, ack
	Runs    int      `json:"runs,omitempty"`    // shard, merge, export, job, ack
	Files   []string `json:"files,omitempty"`   // merge
	Name    string   `json:"name,omitempty"`    // done (experiment name)
	Pool    int      `json:"pool,omitempty"`    // scale (surviving worker-pool size)
	Job     string   `json:"job,omitempty"`     // job, lease, ack (job id)
	Token   string   `json:"token,omitempty"`   // job (tenant identity)
	Prio    int      `json:"prio,omitempty"`    // job
	Status  string   `json:"status,omitempty"`  // job ("" = submitted)
	Worker  string   `json:"worker,omitempty"`  // lease
	Msg     string   `json:"msg,omitempty"`     // job (failure detail)
	Exec    int64    `json:"exec,omitempty"`    // ack (simulations the worker executed)
}

// ShardRecord is a journaled per-shard convergence: the validated shard
// file the dispatch driver can adopt on resume instead of re-spawning
// the worker.
type ShardRecord struct {
	Shard string // "i/n"
	File  string
	Runs  int
}

// JobRecord is a journaled experiment-service job event: the submission
// (Status empty, Spec carrying the grid) or a later terminal transition
// for the same id (Status "done"/"failed"/"canceled", Spec empty). The
// queue folds the sequence per id; the last status wins.
type JobRecord struct {
	ID       string
	Token    string // tenant identity (quotas, fairness)
	Priority int
	Spec     []byte // grid spec JSON; submission records only
	Status   string // "" = submitted
	Runs     int    // done: simulations the job executed in total
	Msg      string // failed: what went wrong
}

// LeaseRecord is a journaled work-item lease grant. A restarted daemon
// voids live leases and requeues every unacked item, so these replay
// only to preserve per-item attempt counts across a crash.
type LeaseRecord struct {
	Job    string
	Item   string // shard "i/n"
	Worker string
}

// AckRecord is a journaled work-item completion: the durable shard file
// a worker delivered. Replayed acks are exactly what keeps a resumed
// queue from re-executing finished work.
type AckRecord struct {
	Job  string
	Item string // shard "i/n"
	File string
	Runs int
	// Exec counts the simulations the worker actually executed for this
	// item (store hits excluded) — telemetry a resumed queue reports
	// faithfully instead of guessing.
	Exec int64
}

// Options configures Open.
type Options struct {
	// Schema is the simulator schema version stamped into (and checked
	// against) the session-open record. Required.
	Schema int
	// Fingerprint identifies the session's arguments (see Fingerprint);
	// a journal opened with a different fingerprint is rotated aside
	// and the session starts fresh. Required.
	Fingerprint string
	// SyncEvery is the fsync batch size in records (default 8).
	SyncEvery int
	// SyncInterval bounds how long an appended record waits for its
	// batch fsync (default 100ms).
	SyncInterval time.Duration
}

// Recovery reports what Open found in an existing journal.
type Recovery struct {
	// Records counts valid records replayed (the open record included).
	Records int
	// Runs counts replayed run records.
	Runs int
	// TruncatedBytes is the torn tail Open cut (0 for a clean file).
	TruncatedBytes int64
	// Rotated names why a prior journal was moved aside ("" when the
	// file was adopted or absent).
	Rotated string
	// Fresh reports that no prior state was replayed.
	Fresh bool
	// Shards lists replayed per-shard convergence records.
	Shards []ShardRecord
	// Plan is the replayed fleet-plan fingerprint ("" without one).
	Plan string
	// Pool is the replayed worker-pool size from the last scale record
	// (0 without one) — the surviving fleet shape an elastic dispatch
	// adopts on resume.
	Pool int
	// Done lists replayed completion markers (experiment names).
	Done []string
	// Merges counts replayed merge-completion records.
	Merges int
	// Jobs lists replayed experiment-service job events in append order
	// (submissions and terminal transitions alike; the queue folds them).
	Jobs []JobRecord
	// Leases lists replayed lease grants, for attempt accounting.
	Leases []LeaseRecord
	// Acks lists replayed work-item completions.
	Acks []AckRecord
}

// Stats snapshots a journal's traffic counters — what session telemetry
// and worker summaries surface.
type Stats struct {
	// Appended counts records appended by this process.
	Appended int64 `json:"appended"`
	// Replayed counts records recovered from the prior journal at open.
	Replayed int64 `json:"replayed"`
	// ResumeHits counts runs this process served from the recovered
	// journal instead of executing.
	ResumeHits int64 `json:"resume_hits"`
	// TruncatedBytes is the torn tail cut at open.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// Syncs counts fsync batches.
	Syncs int64 `json:"syncs,omitempty"`
	// AppendErrors counts failed appends (each degraded to "this record
	// will be re-executed on resume", never a session failure).
	AppendErrors int64 `json:"append_errors,omitempty"`
	// Dropped counts appends discarded after the journal broke (a torn
	// write that could not be repaired).
	Dropped int64 `json:"dropped,omitempty"`
}

// Report renders the one-line journal summary the CLIs print.
func (st Stats) Report(path string) string {
	out := fmt.Sprintf("journal: %d replayed (%d resume hits), %d appended",
		st.Replayed, st.ResumeHits, st.Appended)
	if st.TruncatedBytes > 0 {
		out += fmt.Sprintf(", %d torn-tail bytes truncated", st.TruncatedBytes)
	}
	if st.AppendErrors > 0 {
		out += fmt.Sprintf(", %d append errors", st.AppendErrors)
	}
	if st.Dropped > 0 {
		out += fmt.Sprintf(", %d dropped", st.Dropped)
	}
	return out + fmt.Sprintf(" (%s)", path)
}

// Journal is an open session journal. All methods are safe for
// concurrent use.
type Journal struct {
	path string
	opts Options

	mu      sync.Mutex
	f       *os.File
	off     int64 // end of the last known-good frame
	pending int   // appends since the last fsync
	timer   *time.Timer
	broken  bool // a torn write could not be repaired; appends drop
	closed  bool

	// Recovered state, immutable after Open.
	runs   map[string][]byte
	shards map[string]ShardRecord
	plan   string
	pool   int

	appended, replayed, resumeHits, truncated, syncs, appendErrs, dropped int64

	statsMu sync.Mutex
}

// Fingerprint condenses the parts that define a session's identity
// (schema, experiment selection, scale budgets, workload set …) into a
// short stable hex string. Two invocations resume each other exactly
// when their fingerprints match.
func Fingerprint(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x1f")))
	return hex.EncodeToString(h[:8])
}

// errBroken reports appends after an unrepairable torn write.
var errBroken = errors.New("journal: disabled after unrepairable torn write")

// Open opens (creating if needed) the journal at path, replays its
// valid records, truncates any torn tail, and positions it for append.
// A journal whose open record names a different schema or fingerprint
// is rotated to path+".stale" and a fresh journal started — resuming a
// different session's journal would be worse than starting over.
func Open(path string, opts Options) (*Journal, *Recovery, error) {
	if opts.Fingerprint == "" {
		return nil, nil, errors.New("journal: empty fingerprint")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 8
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	//praclint:allow failpoint Open-time setup runs before the journal is published; recovery behavior is exercised by writing real torn/stale files, not by injection
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}

	rec := &Recovery{}
	for attempt := 0; ; attempt++ {
		//praclint:allow failpoint Open-time setup; see the MkdirAll note above
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		j, reason, err := adopt(f, path, opts, rec)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if j != nil {
			return j, rec, nil
		}
		// The file is not this session's journal (wrong magic, schema or
		// fingerprint, or an unreadably short header). Rotate it aside and
		// start fresh — once; a second failure means the path itself is
		// unusable.
		f.Close()
		if attempt > 0 {
			return nil, nil, fmt.Errorf("journal: %s unusable after rotation (%s)", path, reason)
		}
		//praclint:allow failpoint Open-time rotation of a foreign journal; see the MkdirAll note above
		if err := os.Rename(path, path+".stale"); err != nil {
			return nil, nil, fmt.Errorf("journal: rotating mismatched %s: %w", path, err)
		}
		rec.Rotated = reason
	}
}

// adopt scans an opened journal file. It returns a ready journal, or
// (nil, reason, nil) when the file belongs to a different session and
// must be rotated.
func adopt(f *os.File, path string, opts Options, rec *Recovery) (*Journal, string, error) {
	//praclint:allow failpoint adopt is the recovery scan itself, pre-publish; chaos injection begins once the journal is live
	fi, err := f.Stat()
	if err != nil {
		return nil, "", fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		path:   path,
		opts:   opts,
		f:      f,
		runs:   make(map[string][]byte),
		shards: make(map[string]ShardRecord),
	}

	if fi.Size() == 0 {
		// Fresh file: stamp the header and open record now, durably —
		// the one sync correctness of recovery does depend on, because
		// it anchors fingerprint matching.
		//praclint:allow failpoint pre-publish header stamp; see the adopt note above
		if _, err := f.WriteString(magic); err != nil {
			return nil, "", fmt.Errorf("journal: %w", err)
		}
		j.off = int64(len(magic))
		if err := j.appendRecord(record{Type: typeOpen, Schema: opts.Schema, FP: opts.Fingerprint}); err != nil {
			return nil, "", fmt.Errorf("journal: writing open record: %w", err)
		}
		if err := j.Sync(); err != nil {
			return nil, "", fmt.Errorf("journal: %w", err)
		}
		rec.Fresh = true
		return j, "", nil
	}

	// Existing file: check the magic, replay frames, truncate the tail.
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != magic {
		return nil, "not a pracsim journal", nil
	}
	off := int64(len(magic))
	sawOpen := false
	for {
		r, frameLen, ok := readFrame(f)
		if !ok {
			break
		}
		if !sawOpen {
			if r.Type != typeOpen {
				return nil, "first record is not a session-open record", nil
			}
			if r.Schema != opts.Schema {
				return nil, fmt.Sprintf("schema %d, this simulator is schema %d", r.Schema, opts.Schema), nil
			}
			if r.FP != opts.Fingerprint {
				return nil, fmt.Sprintf("session fingerprint %s, this invocation is %s (different arguments)", r.FP, opts.Fingerprint), nil
			}
			sawOpen = true
		}
		off += frameLen
		rec.Records++
		switch r.Type {
		case typeRun:
			j.runs[r.Key] = r.Payload
			rec.Runs++
		case typePlan:
			j.plan = r.FP
			// A new plan supersedes any shard state recorded under the
			// old one — and the pool shape that served it.
			if len(j.shards) > 0 {
				j.shards = make(map[string]ShardRecord)
				rec.Shards = nil
			}
			j.pool = 0
			rec.Pool = 0
		case typeShard:
			sr := ShardRecord{Shard: r.Shard, File: r.File, Runs: r.Runs}
			j.shards[r.Shard] = sr
			rec.Shards = append(rec.Shards, sr)
		case typeScale:
			j.pool = r.Pool
			rec.Pool = r.Pool
		case typeMerge:
			rec.Merges++
		case typeDone:
			rec.Done = append(rec.Done, r.Name)
		case typeJob:
			rec.Jobs = append(rec.Jobs, JobRecord{
				ID: r.Job, Token: r.Token, Priority: r.Prio,
				Spec: r.Payload, Status: r.Status, Runs: r.Runs, Msg: r.Msg,
			})
		case typeLease:
			rec.Leases = append(rec.Leases, LeaseRecord{Job: r.Job, Item: r.Shard, Worker: r.Worker})
		case typeAck:
			rec.Acks = append(rec.Acks, AckRecord{Job: r.Job, Item: r.Shard, File: r.File, Runs: r.Runs, Exec: r.Exec})
		}
	}
	if !sawOpen {
		return nil, "no valid session-open record", nil
	}
	if cut := fi.Size() - off; cut > 0 {
		//praclint:allow failpoint torn-tail truncation during recovery, pre-publish; see the adopt note above
		if err := f.Truncate(off); err != nil {
			return nil, "", fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
		rec.TruncatedBytes = cut
		j.truncated = cut
	}
	//praclint:allow failpoint recovery repositioning, pre-publish; see the adopt note above
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, "", fmt.Errorf("journal: %w", err)
	}
	j.off = off
	j.replayed = int64(rec.Records)
	rec.Plan = j.plan
	rec.Fresh = rec.Records <= 1 // just the open record
	return j, "", nil
}

// readFrame reads one frame at the reader's position; ok is false at a
// clean EOF or at the first sign of tearing or corruption (short frame,
// absurd length, checksum mismatch, undecodable record).
func readFrame(r io.Reader) (rec record, frameLen int64, ok bool) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return record{}, 0, false
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxRecord {
		return record{}, 0, false
	}
	buf := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return record{}, 0, false
	}
	body, sumBytes := buf[:n], buf[n:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(sumBytes) {
		return record{}, 0, false
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return record{}, 0, false
	}
	return rec, int64(len(lenBuf)) + int64(len(buf)), true
}

// encodeFrame renders a record as one append frame.
func encodeFrame(r record) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	frame := make([]byte, 4+len(body)+4)
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	binary.LittleEndian.PutUint32(frame[4+len(body):], crc32.Checksum(body, crcTable))
	return frame, nil
}

// Path reports the journal file's location.
func (j *Journal) Path() string { return j.path }

// Run returns the recovered result payload for a run key, counting a
// resume hit — the session's crash-safe warm layer, independent of any
// store.
func (j *Journal) Run(key string) ([]byte, bool) {
	data, ok := j.runs[key]
	if ok {
		j.statsMu.Lock()
		j.resumeHits++
		j.statsMu.Unlock()
	}
	return data, ok
}

// RecoveredRuns reports how many run records the journal replayed.
func (j *Journal) RecoveredRuns() int { return len(j.runs) }

// RecoveredShard returns the replayed convergence record for shard
// "i/n", if any.
func (j *Journal) RecoveredShard(shard string) (ShardRecord, bool) {
	sr, ok := j.shards[shard]
	return sr, ok
}

// RecoveredPlan reports the replayed fleet-plan fingerprint ("" without
// one).
func (j *Journal) RecoveredPlan() string { return j.plan }

// RecoveredPool reports the replayed worker-pool size from the last
// scale record under the current plan (0 without one) — what an elastic
// dispatch adopts instead of re-growing from its minimum.
func (j *Journal) RecoveredPool() int { return j.pool }

// AppendRun journals one completed run. Best-effort like every append:
// an error means this run re-executes after a crash, nothing more.
func (j *Journal) AppendRun(key string, payload []byte) error {
	return j.append(record{Type: typeRun, Key: key, Payload: payload})
}

// AppendPlan journals the dispatch fleet plan fingerprint; shard
// records only count toward resume under a matching plan.
func (j *Journal) AppendPlan(fp string) error {
	return j.append(record{Type: typePlan, FP: fp})
}

// AppendShard journals one converged dispatch shard, then syncs — a
// converged shard is exactly the checkpoint a crashed driver must not
// lose.
func (j *Journal) AppendShard(sr ShardRecord) error {
	if err := j.append(record{Type: typeShard, Shard: sr.Shard, File: sr.File, Runs: sr.Runs}); err != nil {
		return err
	}
	return j.Sync()
}

// AppendScale journals an elastic-dispatch pool resize, so a resumed
// driver adopts the surviving pool shape instead of re-learning it.
// Unsynced on purpose: losing a scale record costs one re-grow, nothing
// else.
func (j *Journal) AppendScale(pool int) error {
	return j.append(record{Type: typeScale, Pool: pool})
}

// AppendMerge journals a completed shard merge.
func (j *Journal) AppendMerge(files []string, runs int) error {
	return j.append(record{Type: typeMerge, Files: files, Runs: runs})
}

// AppendExport journals a written shard-export file.
func (j *Journal) AppendExport(path string, runs int) error {
	return j.append(record{Type: typeExport, File: path, Runs: runs})
}

// AppendDone journals a completed experiment (or session phase).
func (j *Journal) AppendDone(name string) error {
	return j.append(record{Type: typeDone, Name: name})
}

// AppendJob journals a job submission or terminal transition, then
// syncs — a job id already handed to a client (or a completion already
// reported) must survive the next crash.
func (j *Journal) AppendJob(r JobRecord) error {
	err := j.append(record{
		Type: typeJob, Job: r.ID, Token: r.Token, Prio: r.Priority,
		Payload: r.Spec, Status: r.Status, Runs: r.Runs, Msg: r.Msg,
	})
	if err != nil {
		return err
	}
	return j.Sync()
}

// AppendLease journals a work-item lease grant. Unsynced on purpose:
// losing one costs an attempt count on resume, never work.
func (j *Journal) AppendLease(r LeaseRecord) error {
	return j.append(record{Type: typeLease, Job: r.Job, Shard: r.Item, Worker: r.Worker})
}

// AppendAck journals a completed work item, then syncs — an acked item
// is exactly the checkpoint that makes a resumed queue re-execute
// nothing.
func (j *Journal) AppendAck(r AckRecord) error {
	if err := j.append(record{Type: typeAck, Job: r.Job, Shard: r.Item, File: r.File, Runs: r.Runs, Exec: r.Exec}); err != nil {
		return err
	}
	return j.Sync()
}

func (j *Journal) append(r record) error {
	frame, err := encodeFrame(r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.broken {
		j.statsMu.Lock()
		j.dropped++
		j.statsMu.Unlock()
		return errBroken
	}
	//praclint:allow locks the append failpoint must fire inside the critical section to model a fault at the exact write site; the torn-write repair relies on mu serializing it
	return j.appendLockedWithFaults(frame)
}

// appendRecord writes a frame during Open, before the journal is
// published — no fault injection, no batching arithmetic beyond off.
func (j *Journal) appendRecord(r record) error {
	frame, err := encodeFrame(r)
	if err != nil {
		return err
	}
	//praclint:allow failpoint pre-publish Open-time write path, deliberately without injection; the live path is appendLockedWithFaults
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	j.off += int64(len(frame))
	j.pending++
	return nil
}

// appendLockedWithFaults is the live append path: the journal.append
// failpoint, the write, and the torn-write self-repair.
func (j *Journal) appendLockedWithFaults(frame []byte) error {
	countErr := func(err error) error {
		j.statsMu.Lock()
		j.appendErrs++
		j.statsMu.Unlock()
		return err
	}
	if a := fault.Fire(fault.JournalAppend); a != nil {
		switch a.Kind {
		case fault.Err:
			return countErr(a.Err("append " + j.path))
		case fault.Short:
			// A partial frame lands on disk; the repair path below cuts
			// it back out, exactly as for a real short write.
			j.f.Write(frame[:len(frame)/2])
			j.repairLocked()
			return countErr(fmt.Errorf("journal: append %s: injected %w", j.path, io.ErrShortWrite))
		case fault.Torn:
			// The crash-mid-append case: a partial frame stays on disk
			// and this process stops journaling, as if it had died here.
			// The next Open truncates the tear and resumes from the
			// valid prefix.
			j.f.Write(frame[:3*len(frame)/4])
			j.broken = true
			return countErr(fmt.Errorf("journal: append %s: injected torn write", j.path))
		}
	}
	n, err := j.f.Write(frame)
	if err != nil || n < len(frame) {
		j.repairLocked()
		if err == nil {
			err = io.ErrShortWrite
		}
		return countErr(fmt.Errorf("journal: append %s: %w", j.path, err))
	}
	j.off += int64(len(frame))
	j.statsMu.Lock()
	j.appended++
	j.statsMu.Unlock()
	j.pending++
	if j.pending >= j.opts.SyncEvery {
		return j.syncLocked()
	}
	j.armTimerLocked()
	return nil
}

// repairLocked cuts a partial frame back off the file after a failed
// write. If even the truncate fails the journal is broken: further
// appends would land after the tear and be unrecoverable, so they drop
// instead.
func (j *Journal) repairLocked() {
	if j.f.Truncate(j.off) != nil {
		j.broken = true
		return
	}
	if _, err := j.f.Seek(j.off, io.SeekStart); err != nil {
		j.broken = true
	}
}

// armTimerLocked schedules the batch fsync for records that would
// otherwise wait on a slow trickle of appends.
func (j *Journal) armTimerLocked() {
	if j.timer != nil {
		return
	}
	j.timer = time.AfterFunc(j.opts.SyncInterval, func() { j.Sync() })
}

// Sync flushes appended records to stable storage. A failed sync leaves
// the journal usable — the records are written, their durability is
// simply not yet proven, and the next sync retries.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	//praclint:allow locks the sync failpoint must fire under mu so an injected sync error and a real one leave identical pending state
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	if j.closed || j.pending == 0 {
		return nil
	}
	if a := fault.Fire(fault.JournalSync); a != nil && a.Kind == fault.Err {
		return a.Err("sync " + j.path)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", j.path, err)
	}
	j.pending = 0
	j.statsMu.Lock()
	j.syncs++
	j.statsMu.Unlock()
	return nil
}

// Close syncs and closes the journal. Further appends drop.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	//praclint:allow locks final sync under mu; same contract as Sync above
	serr := j.syncLocked()
	j.closed = true
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.statsMu.Lock()
	defer j.statsMu.Unlock()
	return Stats{
		Appended:       j.appended,
		Replayed:       j.replayed,
		ResumeHits:     j.resumeHits,
		TruncatedBytes: j.truncated,
		Syncs:          j.syncs,
		AppendErrors:   j.appendErrs,
		Dropped:        j.dropped,
	}
}
