package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pracsim/internal/fault"
)

func testOpts() Options {
	return Options{Schema: 3, Fingerprint: Fingerprint("test-session")}
}

func open(t *testing.T, path string, opts Options) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

// TestRoundTrip: a closed journal replays exactly what was appended.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, rec := open(t, path, testOpts())
	if !rec.Fresh {
		t.Errorf("fresh journal reported non-fresh recovery: %+v", rec)
	}
	for i := 0; i < 5; i++ {
		if err := j.AppendRun(fmt.Sprintf("run-%d", i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("AppendRun: %v", err)
		}
	}
	if err := j.AppendShard(ShardRecord{Shard: "1/3", File: "/w/shard-1.runs", Runs: 4}); err != nil {
		t.Fatalf("AppendShard: %v", err)
	}
	if err := j.AppendDone("fig12"); err != nil {
		t.Fatalf("AppendDone: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec2 := open(t, path, testOpts())
	defer j2.Close()
	if rec2.Fresh {
		t.Error("recovery of a populated journal reported fresh")
	}
	// open + 5 runs + shard + done = 8
	if rec2.Records != 8 || rec2.Runs != 5 || rec2.TruncatedBytes != 0 {
		t.Errorf("recovery = %+v; want 8 records, 5 runs, 0 truncated", rec2)
	}
	for i := 0; i < 5; i++ {
		data, ok := j2.Run(fmt.Sprintf("run-%d", i))
		if !ok || string(data) != fmt.Sprintf("payload-%d", i) {
			t.Errorf("run-%d not recovered (ok=%v data=%q)", i, ok, data)
		}
	}
	if sr, ok := j2.RecoveredShard("1/3"); !ok || sr.File != "/w/shard-1.runs" || sr.Runs != 4 {
		t.Errorf("shard record not recovered: %+v ok=%v", sr, ok)
	}
	if got := rec2.Done; len(got) != 1 || got[0] != "fig12" {
		t.Errorf("done markers = %v, want [fig12]", got)
	}
	if st := j2.Stats(); st.Replayed != 8 || st.ResumeHits != 5 {
		t.Errorf("stats = %+v; want 8 replayed, 5 resume hits", st)
	}
}

// TestTornTailTruncated: a partial frame at the tail (the crash-mid-
// append case) is cut off on open; every record before it survives.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, _ := open(t, path, testOpts())
	j.AppendRun("keep-1", []byte("a"))
	j.AppendRun("keep-2", []byte("b"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: half of a plausible next frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{40, 0, 0, 0, '{', '"', 't', '"'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rec := open(t, path, testOpts())
	defer j2.Close()
	if rec.TruncatedBytes != int64(len(torn)) {
		t.Errorf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(torn))
	}
	for _, k := range []string{"keep-1", "keep-2"} {
		if _, ok := j2.Run(k); !ok {
			t.Errorf("%s lost to tail truncation", k)
		}
	}
	// The truncated journal must be appendable and replayable again.
	if err := j2.AppendRun("after-repair", []byte("c")); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	j2.Close()
	j3, rec3 := open(t, path, testOpts())
	defer j3.Close()
	if rec3.Runs != 3 || rec3.TruncatedBytes != 0 {
		t.Errorf("post-repair recovery = %+v; want 3 runs, clean tail", rec3)
	}
}

// TestCorruptMidRecordTruncatesFrom: a bit flipped inside an interior
// record invalidates that record and everything after it — the valid
// prefix is kept, never a gap-toleration that could resurrect stale
// records out of order.
func TestCorruptMidRecordTruncatesFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, _ := open(t, path, testOpts())
	j.AppendRun("first", []byte(strings.Repeat("x", 100)))
	off := j.off // end of [open, first]
	j.AppendRun("second", []byte(strings.Repeat("y", 100)))
	j.AppendRun("third", []byte(strings.Repeat("z", 100)))
	j.Close()

	// Flip a byte inside "second"'s frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off+20] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := open(t, path, testOpts())
	defer j2.Close()
	if _, ok := j2.Run("first"); !ok {
		t.Error("record before the corruption lost")
	}
	if _, ok := j2.Run("second"); ok {
		t.Error("corrupt record replayed")
	}
	if _, ok := j2.Run("third"); ok {
		t.Error("record after the corruption replayed (recovery must truncate, not skip)")
	}
	if rec.TruncatedBytes == 0 {
		t.Error("corruption not reported as truncation")
	}
}

// TestFingerprintMismatchRotates: a journal from a session with
// different arguments is moved to *.stale, never replayed.
func TestFingerprintMismatchRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, _ := open(t, path, Options{Schema: 3, Fingerprint: Fingerprint("grid-A")})
	j.AppendRun("a-run", []byte("a"))
	j.Close()

	j2, rec := open(t, path, Options{Schema: 3, Fingerprint: Fingerprint("grid-B")})
	defer j2.Close()
	if !rec.Fresh || rec.Rotated == "" {
		t.Errorf("mismatched journal not rotated: %+v", rec)
	}
	if _, ok := j2.Run("a-run"); ok {
		t.Error("another session's run replayed")
	}
	if _, err := os.Stat(path + ".stale"); err != nil {
		t.Errorf("stale journal not preserved: %v", err)
	}
}

// TestSchemaMismatchRotates: a schema bump orphans the journal the same
// way it orphans store entries.
func TestSchemaMismatchRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	fp := Fingerprint("same-args")
	j, _ := open(t, path, Options{Schema: 3, Fingerprint: fp})
	j.AppendRun("old-schema-run", []byte("a"))
	j.Close()

	j2, rec := open(t, path, Options{Schema: 4, Fingerprint: fp})
	defer j2.Close()
	if !rec.Fresh || !strings.Contains(rec.Rotated, "schema") {
		t.Errorf("schema-mismatched journal not rotated: %+v", rec)
	}
}

// TestGarbageFileRotates: a non-journal file at the path is rotated
// aside, not a fatal error.
func TestGarbageFileRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	if err := os.WriteFile(path, []byte("this is not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, rec := open(t, path, testOpts())
	defer j.Close()
	if !rec.Fresh || rec.Rotated == "" {
		t.Errorf("garbage file not rotated: %+v", rec)
	}
	if err := j.AppendRun("r", []byte("p")); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
}

// TestPlanSupersedesShards: shard records only count under the plan
// that produced them; a new plan record voids earlier convergences.
func TestPlanSupersedesShards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, _ := open(t, path, testOpts())
	j.AppendPlan("plan-1")
	j.AppendShard(ShardRecord{Shard: "0/2", File: "/w/s0.runs", Runs: 3})
	j.AppendPlan("plan-2")
	j.Close()

	j2, rec := open(t, path, testOpts())
	defer j2.Close()
	if j2.RecoveredPlan() != "plan-2" {
		t.Errorf("recovered plan = %q, want plan-2", j2.RecoveredPlan())
	}
	if _, ok := j2.RecoveredShard("0/2"); ok {
		t.Error("shard converged under plan-1 survived plan-2")
	}
	if len(rec.Shards) != 0 {
		t.Errorf("recovery lists superseded shards: %+v", rec.Shards)
	}
}

// TestAppendErrFault: journal.append:err fails the append cleanly — the
// journal stays usable and the record is simply not durable.
func TestAppendErrFault(t *testing.T) {
	p, err := fault.Parse("seed=1;journal.append:errx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()

	path := filepath.Join(t.TempDir(), "s.journal")
	j, _ := open(t, path, testOpts())
	if err := j.AppendRun("victim", []byte("a")); err == nil {
		t.Fatal("injected append error not surfaced")
	}
	if err := j.AppendRun("survivor", []byte("b")); err != nil {
		t.Fatalf("append after injected error: %v", err)
	}
	if st := j.Stats(); st.AppendErrors != 1 || st.Appended != 1 {
		t.Errorf("stats = %+v; want 1 append error, 1 appended", st)
	}
	j.Close()

	j2, rec := open(t, path, testOpts())
	defer j2.Close()
	if _, ok := j2.Run("victim"); ok {
		t.Error("failed append replayed")
	}
	if _, ok := j2.Run("survivor"); !ok {
		t.Error("append after the failure lost")
	}
	if rec.TruncatedBytes != 0 {
		t.Errorf("err-kind fault left bytes to truncate: %+v", rec)
	}
}

// TestAppendShortFault: journal.append:short lands a partial frame that
// the self-repair truncates immediately — later appends and the final
// file are clean.
func TestAppendShortFault(t *testing.T) {
	p, err := fault.Parse("seed=1;journal.append:shortx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()

	path := filepath.Join(t.TempDir(), "s.journal")
	j, _ := open(t, path, testOpts())
	if err := j.AppendRun("victim", []byte("a")); err == nil {
		t.Fatal("injected short write not surfaced")
	}
	if err := j.AppendRun("survivor", []byte("b")); err != nil {
		t.Fatalf("append after self-repair: %v", err)
	}
	j.Close()

	j2, rec := open(t, path, testOpts())
	defer j2.Close()
	if rec.TruncatedBytes != 0 {
		t.Errorf("self-repaired journal still has a torn tail: %+v", rec)
	}
	if _, ok := j2.Run("survivor"); !ok {
		t.Error("append after the short write lost")
	}
}

// TestAppendTornFault: journal.append:torn is the crash simulation — a
// partial frame stays on disk, the journal stops accepting appends, and
// the next open truncates the tear and resumes from the valid prefix.
func TestAppendTornFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, _ := open(t, path, testOpts())
	j.AppendRun("before", []byte("a"))

	p, err := fault.Parse("seed=1;journal.append:tornx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()
	if err := j.AppendRun("torn-victim", []byte("b")); err == nil {
		t.Fatal("injected torn write not surfaced")
	}
	if err := j.AppendRun("after", []byte("c")); err == nil {
		t.Fatal("append accepted after an unrepaired tear (would be unrecoverable)")
	}
	if st := j.Stats(); st.Dropped != 1 {
		t.Errorf("post-tear append not counted dropped: %+v", st)
	}
	j.Close()

	j2, rec := open(t, path, testOpts())
	defer j2.Close()
	if rec.TruncatedBytes == 0 {
		t.Error("torn frame not truncated on recovery")
	}
	if _, ok := j2.Run("before"); !ok {
		t.Error("record before the tear lost")
	}
	if _, ok := j2.Run("torn-victim"); ok {
		t.Error("torn record replayed")
	}
}

// TestSyncErrFaultRetries: a failed fsync leaves the journal usable and
// the next sync covers the same records.
func TestSyncErrFaultRetries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	// SyncEvery high enough that only explicit Syncs fire.
	j, _, err := Open(path, Options{Schema: 3, Fingerprint: Fingerprint("t"), SyncEvery: 1000, SyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p, err := fault.Parse("seed=1;journal.sync:errx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()

	j.AppendRun("r", []byte("p"))
	if err := j.Sync(); err == nil {
		t.Fatal("injected sync error not surfaced")
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("retried sync failed: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rec := open(t, path, Options{Schema: 3, Fingerprint: Fingerprint("t")})
	defer j2.Close()
	if rec.Runs != 1 {
		t.Errorf("record lost across a failed-then-retried sync: %+v", rec)
	}
}

// TestSyncBatching: appends below SyncEvery don't fsync; crossing the
// threshold does.
func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, _, err := Open(path, Options{Schema: 3, Fingerprint: Fingerprint("t"), SyncEvery: 4, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	base := j.Stats().Syncs // open-record sync
	for i := 0; i < 3; i++ {
		j.AppendRun(fmt.Sprintf("r%d", i), []byte("p"))
	}
	if got := j.Stats().Syncs; got != base {
		t.Errorf("synced below the batch threshold (%d -> %d)", base, got)
	}
	j.AppendRun("r3", []byte("p"))
	if got := j.Stats().Syncs; got != base+1 {
		t.Errorf("batch threshold did not sync (%d -> %d)", base, got)
	}
}

// TestFingerprintStability: same parts, same fingerprint; any part
// changing moves it.
func TestFingerprintStability(t *testing.T) {
	a := Fingerprint("schema=3", "exp=fig12")
	if a != Fingerprint("schema=3", "exp=fig12") {
		t.Error("fingerprint not deterministic")
	}
	for _, other := range [][]string{
		{"schema=4", "exp=fig12"},
		{"schema=3", "exp=fig13"},
		{"schema=3"},
		{"schema=3", "exp", "=fig12"}, // separator must prevent gluing
	} {
		if Fingerprint(other...) == a {
			t.Errorf("fingerprint collision with %v", other)
		}
	}
}

// TestStatsReport spot-checks the one-line renderer.
func TestStatsReport(t *testing.T) {
	s := Stats{Appended: 5, Replayed: 3, ResumeHits: 2, TruncatedBytes: 17}
	line := s.Report("/tmp/s.journal")
	for _, want := range []string{"3 replayed", "2 resume hits", "5 appended", "17 torn-tail bytes", "/tmp/s.journal"} {
		if !strings.Contains(line, want) {
			t.Errorf("report %q missing %q", line, want)
		}
	}
}

// BenchmarkJournalAppend measures the hot append path (no explicit
// syncs; batching at the default cadence).
func BenchmarkJournalAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "s.journal")
	j, _, err := Open(path, Options{Schema: 3, Fingerprint: Fingerprint("bench"), SyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	payload := []byte(strings.Repeat("x", 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.AppendRun(fmt.Sprintf("run-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalRecovery measures replaying a 1k-record journal.
func BenchmarkJournalRecovery(b *testing.B) {
	path := filepath.Join(b.TempDir(), "s.journal")
	opts := Options{Schema: 3, Fingerprint: Fingerprint("bench")}
	j, _, err := Open(path, opts)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte(strings.Repeat("x", 256))
	for i := 0; i < 1000; i++ {
		j.AppendRun(fmt.Sprintf("run-%d", i), payload)
	}
	j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j2, rec, err := Open(path, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Runs != 1000 {
			b.Fatalf("replayed %d runs", rec.Runs)
		}
		j2.Close()
	}
}

// TestScaleRecordRoundTrip: the last checkpointed pool size survives a
// reopen, and a new plan supersedes it — a resumed driver only adopts a
// pool shape that belongs to its own fleet plan.
func TestScaleRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.journal")
	j, _, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if j.RecoveredPool() != 0 {
		t.Errorf("fresh journal recovered pool %d, want 0", j.RecoveredPool())
	}
	if err := j.AppendPlan("plan-a"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 3} {
		if err := j.AppendScale(n); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, rec, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pool != 3 || j2.RecoveredPool() != 3 {
		t.Errorf("recovered pool = %d/%d, want 3 (the last scale record)", rec.Pool, j2.RecoveredPool())
	}
	// A new plan resets the pool along with the shard records.
	if err := j2.AppendPlan("plan-b"); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, rec3, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if rec3.Pool != 0 || j3.RecoveredPool() != 0 {
		t.Errorf("pool survived a plan supersession: %d/%d, want 0", rec3.Pool, j3.RecoveredPool())
	}
}

// TestJobQueueRecordsRoundTrip: the experiment-service job/lease/ack
// records replay in order, with field fidelity, across a close/reopen —
// the queue-resume contract.
func TestJobQueueRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	j, _ := open(t, path, testOpts())
	spec := []byte(`{"exps":["fig12"],"scale":"quick","shards":2}`)
	if err := j.AppendJob(JobRecord{ID: "j1", Token: "tokA", Priority: 2, Spec: spec}); err != nil {
		t.Fatalf("AppendJob: %v", err)
	}
	if err := j.AppendLease(LeaseRecord{Job: "j1", Item: "0/2", Worker: "w-1"}); err != nil {
		t.Fatalf("AppendLease: %v", err)
	}
	if err := j.AppendAck(AckRecord{Job: "j1", Item: "0/2", File: "/w/j1-0.runs", Runs: 24, Exec: 20}); err != nil {
		t.Fatalf("AppendAck: %v", err)
	}
	if err := j.AppendAck(AckRecord{Job: "j1", Item: "1/2", File: "/w/j1-1.runs", Runs: 24}); err != nil {
		t.Fatalf("AppendAck: %v", err)
	}
	if err := j.AppendJob(JobRecord{ID: "j1", Status: "done", Runs: 48}); err != nil {
		t.Fatalf("AppendJob(done): %v", err)
	}
	if err := j.AppendJob(JobRecord{ID: "j2", Token: "tokB", Spec: spec}); err != nil {
		t.Fatalf("AppendJob(j2): %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec := open(t, path, testOpts())
	defer j2.Close()
	if len(rec.Jobs) != 3 {
		t.Fatalf("recovered %d job records, want 3: %+v", len(rec.Jobs), rec.Jobs)
	}
	if r := rec.Jobs[0]; r.ID != "j1" || r.Token != "tokA" || r.Priority != 2 || string(r.Spec) != string(spec) || r.Status != "" {
		t.Errorf("job submission record mangled: %+v", r)
	}
	if r := rec.Jobs[1]; r.ID != "j1" || r.Status != "done" || r.Runs != 48 {
		t.Errorf("job terminal record mangled: %+v", r)
	}
	if r := rec.Jobs[2]; r.ID != "j2" || r.Token != "tokB" {
		t.Errorf("second job record mangled: %+v", r)
	}
	if len(rec.Leases) != 1 || rec.Leases[0] != (LeaseRecord{Job: "j1", Item: "0/2", Worker: "w-1"}) {
		t.Errorf("lease records = %+v, want the one grant", rec.Leases)
	}
	if len(rec.Acks) != 2 || rec.Acks[0] != (AckRecord{Job: "j1", Item: "0/2", File: "/w/j1-0.runs", Runs: 24, Exec: 20}) {
		t.Errorf("ack records = %+v", rec.Acks)
	}
}
