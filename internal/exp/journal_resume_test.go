package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"pracsim/internal/exp/dispatch"
	"pracsim/internal/exp/journal"
	"pracsim/internal/fault"
	"pracsim/internal/sim"
)

// interruptOnceConverged cancels the returned context as soon as the
// journal holds at least n shard-convergence records — the moment an
// operator's Ctrl-C would find a half-done fleet.
func interruptOnceConverged(t *testing.T, jl *journal.Journal, n int) (context.Context, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for i := 0; i < 1200; i++ {
			raw, _ := os.ReadFile(jl.Path())
			if bytes.Count(raw, []byte(`"t":"shard"`)) >= n {
				cancel()
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		cancel()
	}()
	return ctx, cancel
}

func errorsIsInterrupted(err error) bool { return errors.Is(err, dispatch.ErrInterrupted) }

// TestMain doubles as the fake dispatch driver for the SIGKILL e2e
// tests: with the fake-driver env var set, the test binary opens a
// journal and runs a real dispatch fleet — a process the tests can kill
// mid-flight exactly like an interrupted tpracsim invocation.
func TestMain(m *testing.M) {
	if os.Getenv("PRACSIM_EXP_FAKE_DRIVER") == "1" {
		fakeDriverMain()
		return
	}
	os.Exit(m.Run())
}

// driverJournalOpts is the one journal identity the fake driver and the
// resuming test share — a fingerprint mismatch would rotate the journal
// instead of resuming it.
func driverJournalOpts() journal.Options {
	return journal.Options{
		Schema:      sim.SchemaVersion,
		Fingerprint: journal.Fingerprint("driver-kill-e2e"),
	}
}

func fakeDriverMain() {
	if _, err := fault.EnableFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "fake driver:", err)
		os.Exit(2)
	}
	jl, _, err := journal.Open(os.Getenv("PRACSIM_EXP_DRIVER_JOURNAL"), driverJournalOpts())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fake driver:", err)
		os.Exit(2)
	}
	defer jl.Close()
	if _, err := dispatch.Run(dispatch.Options{
		Shards:   3,
		Template: os.Getenv("PRACSIM_EXP_DRIVER_TEMPLATE"),
		Dir:      os.Getenv("PRACSIM_EXP_DRIVER_DIR"),
		Schema:   sim.SchemaVersion,
		Journal:  jl,
		Log:      os.Stdout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "fake driver:", err)
		os.Exit(1)
	}
}

// journaledScale matches the journal-resume tests' session shape.
func journaledScale() Scale { return storeScale() }

// TestJournalResumeStoreOffExecutesNothing is the session half of the
// crash-recovery contract: with no store at all, a second session over
// the same journal replays every run — zero simulations, byte-identical
// figures.
func TestJournalResumeStoreOffExecutesNothing(t *testing.T) {
	path := t.TempDir() + "/session.journal"
	jopts := journal.Options{Schema: sim.SchemaVersion, Fingerprint: journal.Fingerprint("session-resume")}

	jl1, rec, err := journal.Open(path, jopts)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Fresh {
		t.Fatalf("fresh journal reported recovery: %+v", rec)
	}
	cold := NewRunnerWith(journaledScale(), SessionOptions{Journal: jl1})
	first, err := cold.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Executed() == 0 {
		t.Fatal("cold session executed nothing")
	}
	if err := jl1.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, rec2, err := journal.Open(path, jopts)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if int64(rec2.Runs) != cold.Executed() {
		t.Errorf("journal replayed %d runs, cold session executed %d", rec2.Runs, cold.Executed())
	}
	warm := NewRunnerWith(journaledScale(), SessionOptions{Journal: jl2})
	second, err := warm.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Executed(); n != 0 {
		t.Errorf("resumed session executed %d simulations, want 0", n)
	}
	if hits := warm.JournalStats().ResumeHits; hits == 0 {
		t.Error("resumed session reported no journal resume hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("resumed results differ:\ncold: %+v\nwarm: %+v", first, second)
	}
	if first.Render() != second.Render() || first.CSV() != second.CSV() {
		t.Error("resumed render/CSV not byte-identical")
	}
	if !strings.Contains(warm.TelemetryReport(0), "journal: ") {
		t.Error("telemetry report missing the journal line")
	}
}

// TestJournalTornTailPartialResume: a journal cut mid-frame (the
// crash-during-append case) resumes from its valid prefix — the second
// session re-executes exactly the lost runs and nothing else, and the
// figures still match.
func TestJournalTornTailPartialResume(t *testing.T) {
	path := t.TempDir() + "/session.journal"
	jopts := journal.Options{Schema: sim.SchemaVersion, Fingerprint: journal.Fingerprint("torn-resume")}

	jl1, _, err := journal.Open(path, jopts)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewRunnerWith(journaledScale(), SessionOptions{Journal: jl1})
	first, err := cold.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	executed := cold.Executed()
	if err := jl1.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the file mid-way through its last frame: the tail record is
	// torn, everything before it intact.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	jl2, rec, err := journal.Open(path, jopts)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if rec.TruncatedBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	lost := executed - int64(rec.Runs)
	if lost <= 0 {
		t.Fatalf("tear lost no runs (replayed %d of %d); the test proved nothing", rec.Runs, executed)
	}
	warm := NewRunnerWith(journaledScale(), SessionOptions{Journal: jl2})
	second, err := warm.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Executed(); n != lost {
		t.Errorf("resumed session executed %d simulations, want exactly the %d torn-off runs", n, lost)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("partial resume changed the figures")
	}
}

// TestValidationModesBypassJournal: differential and per-cycle sessions
// never read stale journal entries nor pollute the journal with
// non-warmable payloads.
func TestValidationModesBypassJournal(t *testing.T) {
	path := t.TempDir() + "/session.journal"
	jopts := journal.Options{Schema: sim.SchemaVersion, Fingerprint: journal.Fingerprint("bypass")}
	jl, _, err := journal.Open(path, jopts)
	if err != nil {
		t.Fatal(err)
	}
	scale := journaledScale()
	scale.Differential = true
	sess := NewRunnerWith(scale, SessionOptions{Journal: jl})
	if _, err := sess.Fig12(); err != nil {
		t.Fatal(err)
	}
	if sess.Executed() == 0 {
		t.Fatal("differential session executed nothing")
	}
	st := sess.JournalStats()
	if st.Appended != 0 || st.ResumeHits != 0 {
		t.Errorf("differential session touched the journal: %+v", st)
	}
	jl.Close()
}

// TestDispatchInterruptedResumeBitIdentical is the in-process half of
// the driver-crash contract: a dispatch cancelled mid-fleet (the signal
// drain path) checkpoints converged shards; a second dispatch over the
// same journal adopts them, converges the rest, and the merged figures
// are byte-identical to an undispatched run with zero re-executed
// simulations.
func TestDispatchInterruptedResumeBitIdentical(t *testing.T) {
	reference := NewRunner(storeScale())
	want, err := reference.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	pre := t.TempDir()
	exportShardFiles(t, pre, 3)

	workDir := t.TempDir()
	jpath := t.TempDir() + "/session.journal"
	jopts := journal.Options{Schema: sim.SchemaVersion, Fingerprint: journal.Fingerprint("interrupt-resume")}
	mark := t.TempDir() + "/resume-mark"
	// Until the mark exists, only shard 0 makes progress — the fleet is
	// reliably mid-flight when the interrupt lands.
	tmpl := fmt.Sprintf("if [ {index} != 0 ] && [ ! -e %s ]; then sleep 300; fi; cp %s/pre-{index}.runs {out}", mark, pre)
	runOpts := func(jl *journal.Journal, log *bytes.Buffer) dispatch.Options {
		return dispatch.Options{
			Shards:   3,
			Template: tmpl,
			Dir:      workDir,
			Schema:   sim.SchemaVersion,
			Journal:  jl,
			Log:      log,
		}
	}

	jl1, _, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := interruptOnceConverged(t, jl1, 1)
	defer cancel()
	var log1 bytes.Buffer
	opts1 := runOpts(jl1, &log1)
	opts1.Context = ctx
	if _, err := dispatch.Run(opts1); !errorsIsInterrupted(err) {
		t.Fatalf("interrupted dispatch returned %v\nlog:\n%s", err, log1.String())
	}
	jl1.Close()
	if err := os.WriteFile(mark, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	jl2, rec, err := journal.Open(jpath, jopts)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if len(rec.Shards) == 0 {
		t.Fatalf("interrupt checkpointed no shards: %+v\nlog:\n%s", rec, log1.String())
	}
	var log2 bytes.Buffer
	res, err := dispatch.Run(runOpts(jl2, &log2))
	if err != nil {
		t.Fatalf("resumed dispatch: %v\nlog:\n%s", err, log2.String())
	}
	if res.Adopted() == 0 {
		t.Errorf("resumed dispatch adopted nothing\nlog:\n%s", log2.String())
	}

	merge := NewRunner(storeScale())
	if _, err := merge.ImportShards(res.Files...); err != nil {
		t.Fatal(err)
	}
	got, err := merge.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := merge.Executed(); n != 0 {
		t.Errorf("merged session executed %d simulations, want 0", n)
	}
	if got.Render() != want.Render() || got.CSV() != want.CSV() {
		t.Error("resumed fleet result not byte-identical to undispatched run")
	}
}
