package exp

import (
	"reflect"
	"sync"
	"testing"
)

// quickDeterminismScale is QuickScale's workload set at unit-test
// instruction budgets: large enough to exercise the full 8-workload
// grid, small enough for the race detector.
func quickDeterminismScale() Scale {
	s := QuickScale()
	s.Warmup = 5_000
	s.Measured = 10_000
	return s
}

// TestFig10ParallelMatchesSerial is the determinism contract: the same
// grid executed with one worker and with eight must produce bit-identical
// result matrices, because results are assembled by grid position and
// every simulation is self-contained.
func TestFig10ParallelMatchesSerial(t *testing.T) {
	serialScale := quickDeterminismScale()
	serialScale.Workers = 1
	parallelScale := quickDeterminismScale()
	parallelScale.Workers = 8

	serial, err := RunFig10(serialScale)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFig10(parallelScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Normalized, parallel.Normalized) {
		t.Errorf("Normalized matrices differ:\nserial:   %v\nparallel: %v",
			serial.Normalized, parallel.Normalized)
	}
	if !reflect.DeepEqual(serial.GeomeanAll, parallel.GeomeanAll) {
		t.Errorf("GeomeanAll differs: %v vs %v", serial.GeomeanAll, parallel.GeomeanAll)
	}
	if !reflect.DeepEqual(serial.GeomeanHigh, parallel.GeomeanHigh) {
		t.Errorf("GeomeanHigh differs: %v vs %v", serial.GeomeanHigh, parallel.GeomeanHigh)
	}
	if !reflect.DeepEqual(serial.Workloads, parallel.Workloads) ||
		!reflect.DeepEqual(serial.Variants, parallel.Variants) ||
		!reflect.DeepEqual(serial.Classes, parallel.Classes) {
		t.Error("axis labels differ between serial and parallel runs")
	}
}

// TestSweepParallelMatchesSerial covers the sweep path (Figures 11-14
// share runSweep): Workers=8 must reproduce the Serial matrix exactly.
func TestSweepParallelMatchesSerial(t *testing.T) {
	serialScale := Scale{
		Warmup: 5_000, Measured: 10_000,
		Workloads: []string{"433.milc", "444.namd"},
		Serial:    true,
	}
	parallelScale := serialScale
	parallelScale.Serial = false
	parallelScale.Workers = 8

	serial, err := RunFig12(serialScale)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFig12(parallelScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Geomean, parallel.Geomean) {
		t.Errorf("Geomean matrices differ:\nserial:   %v\nparallel: %v",
			serial.Geomean, parallel.Geomean)
	}
	if !reflect.DeepEqual(serial.Variants, parallel.Variants) ||
		!reflect.DeepEqual(serial.XValues, parallel.XValues) {
		t.Error("axis labels differ between serial and parallel runs")
	}
}

// TestBaselineSingleFlight hammers one runner's baseline from many
// goroutines: all callers must share one simulation (the cache holds a
// single key afterwards) and receive identical results. Run under
// -race this doubles as the concurrency-safety test for the memoized
// baseline the old plain-map runner could not provide.
func TestBaselineSingleFlight(t *testing.T) {
	r := newRunner(Scale{Warmup: 2_000, Measured: 4_000, Workers: 8})
	const callers = 16
	results := make([]float64, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := r.baseline("444.namd")
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res.IPCSum
		}()
	}
	close(start)
	wg.Wait()
	for g := 1; g < callers; g++ {
		if results[g] != results[0] {
			t.Fatalf("caller %d saw IPCSum %v, caller 0 saw %v", g, results[g], results[0])
		}
	}
	if n := r.cache.Len(); n != 1 {
		t.Fatalf("cache holds %d runs, want 1 (baseline deduplicated)", n)
	}
}

// TestRunnerSessionReusesRuns verifies the cross-experiment dedup: a
// second identical experiment on the same Runner session must not
// execute any new simulations.
func TestRunnerSessionReusesRuns(t *testing.T) {
	session := NewRunner(Scale{
		Warmup: 2_000, Measured: 4_000,
		Workloads: []string{"433.milc"},
	})
	first, err := session.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	runs := session.CachedRuns()
	if runs == 0 {
		t.Fatal("no runs cached after Fig12")
	}
	second, err := session.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if session.CachedRuns() != runs {
		t.Errorf("rerun executed %d new simulations, want 0", session.CachedRuns()-runs)
	}
	if !reflect.DeepEqual(first.Geomean, second.Geomean) {
		t.Error("cached rerun produced different results")
	}
}

// TestCanonicalKeySharing pins the canonicalization rules: names never
// split the cache, defaulted NRH and PRACLevel collapse onto their
// effective values, and genuinely different configurations stay apart.
func TestCanonicalKeySharing(t *testing.T) {
	a := canonicalKey(Variant{Name: "TPRAC", Policy: 2, NRH: 1024}, "433.milc")
	b := canonicalKey(Variant{Name: "renamed", Policy: 2, NRH: 0, PRACLevel: 1}, "433.milc")
	if a != b {
		t.Errorf("equivalent variants got distinct keys: %+v vs %+v", a, b)
	}
	c := canonicalKey(Variant{Name: "TPRAC", Policy: 2, NRH: 512}, "433.milc")
	if a == c {
		t.Error("different NRH collapsed onto one key")
	}
	d := canonicalKey(Variant{Name: "TPRAC", Policy: 2, NRH: 1024}, "444.namd")
	if a == d {
		t.Error("different workloads collapsed onto one key")
	}
}
