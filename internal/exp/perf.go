package exp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pracsim/internal/analysis"
	"pracsim/internal/energy"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/pool"
	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
	"pracsim/internal/sim"
	"pracsim/internal/stats"
	"pracsim/internal/ticks"
	"pracsim/internal/trace"
)

// Scale controls how much work the performance experiments simulate and
// how that work is scheduled.
type Scale struct {
	Warmup    int64    // warmup instructions per core
	Measured  int64    // measured instructions per core
	Workloads []string // nil = all 50 catalog workloads

	// Workers caps experiment concurrency: 0 fans the (variant,
	// workload) grid across every GOMAXPROCS core, otherwise exactly
	// Workers simulations run at once. Results are bit-identical at
	// any setting — each simulation is self-contained and results are
	// assembled by grid position, never by completion order.
	Workers int
	// Serial forces single-threaded execution (equivalent to
	// Workers=1); the debugging knob.
	Serial bool

	// PerCycle forces the reference per-cycle clocking instead of
	// demand-driven idle elision — the clock-model debugging knob.
	PerCycle bool
	// Differential runs every simulation under both clockings and fails
	// on any divergence: the paranoid validation mode for the elision
	// machinery, at roughly the cost of both clockings combined.
	Differential bool
}

// QuickScale is a minutes-not-days configuration: a representative subset
// of workloads and short instruction budgets. Shapes are preserved;
// absolute averages move by a few tenths of a percent versus FullScale.
func QuickScale() Scale {
	return Scale{
		Warmup:   20_000,
		Measured: 40_000,
		Workloads: []string{
			"433.milc", "470.lbm", "429.mcf", "nutch", // High
			"401.bzip2", "657.xz", // Medium
			"444.namd", "631.deepsjeng", // Low
		},
	}
}

// FullScale runs the whole 50-workload catalog with larger budgets.
func FullScale() Scale {
	return Scale{Warmup: 50_000, Measured: 150_000}
}

func (s Scale) workloads() []string {
	if len(s.Workloads) > 0 {
		return s.Workloads
	}
	var names []string
	for _, w := range trace.Catalog() {
		names = append(names, w.Name)
	}
	return names
}

// Variant is one mitigation configuration under test.
type Variant struct {
	Name       string
	Policy     sim.PolicyKind
	NRH        int // RowHammer threshold; NBO is set to NRH
	PRACLevel  int // RFMs per ABO (0 = 1)
	TREFEvery  int // targeted refresh every k tREFI (0 = off)
	SkipOnTREF bool
	NoReset    bool // disable per-tREFW counter reset
}

// configure builds the system configuration for a variant and workload.
func configure(v Variant, workload string) (sim.SystemConfig, error) {
	nrh := v.NRH
	if nrh <= 0 {
		nrh = 1024
	}
	cfg := sim.DefaultSystemConfig(nrh)
	cfg.Workload = workload
	cfg.Policy = v.Policy
	if v.PRACLevel > 0 {
		cfg.DRAM.PRAC.NMit = v.PRACLevel
	}
	cfg.DRAM.PRAC.ResetOnREFW = !v.NoReset
	cfg.Ctrl.TREFEvery = v.TREFEvery
	cfg.SkipOnTREF = v.SkipOnTREF

	p := analysis.ParamsFromDRAM(cfg.DRAM)
	// A TB-Window must leave room to actually service one RFM (tRFMab
	// plus drain) or the RFM debt accrues faster than it retires and the
	// channel livelocks. Solved windows below the floor are clamped: the
	// defense then runs at its feasibility limit, which only the
	// NRH=128-without-reset corner reaches (the paper's Section 6.6
	// observation that disabling counter reset hurts at ultra-low
	// thresholds, taken to its end point).
	minWindow := cfg.DRAM.Timing.TRFMab + ticks.FromNS(250)
	switch v.Policy {
	case sim.PolicyTPRAC, sim.PolicyTPRACpb:
		w, err := p.SolveWindow(nrh, !v.NoReset, 0)
		if err != nil {
			return cfg, fmt.Errorf("exp: variant %s: %w", v.Name, err)
		}
		if w < minWindow {
			w = minWindow
		}
		cfg.TBWindow = w
	case sim.PolicyACB:
		w, err := p.SolveWindow(nrh, !v.NoReset, 0)
		if err != nil {
			return cfg, fmt.Errorf("exp: variant %s: %w", v.Name, err)
		}
		// The same worst-case mitigation rate, but activity-triggered:
		// one RFM per BAT activations of a bank.
		bat := p.ActsPerWindow(w)
		if bat < 2 {
			bat = 2
		}
		cfg.BAT = bat
	}
	return cfg, nil
}

// PerfRun is one measured simulation.
type PerfRun struct {
	Workload string
	Variant  string
	Result   sim.RunResult
}

// runKey identifies one simulation up to result equality: the display
// name never affects a run, and defaulted fields are canonicalized
// (NRH=0 means 1024, PRACLevel=0 means 1), so variants spelled
// differently by different figures still share one execution.
type runKey struct {
	v        Variant
	workload string
}

func canonicalKey(v Variant, workload string) runKey {
	v.Name = ""
	if v.NRH <= 0 {
		v.NRH = 1024
	}
	if v.PRACLevel <= 0 {
		v.PRACLevel = 1
	}
	return runKey{v: v, workload: workload}
}

// runner executes experiment grids on a worker pool. A single-flight
// cache keyed by canonicalized (variant, workload) deduplicates
// identical simulations — per-workload baselines run once no matter how
// many variants normalize against them, and configurations shared
// between experiments (Table 5 re-runs Figure 13's TPRAC points)
// execute once per runner. Underneath the in-process cache sit the
// cross-process layers (see SessionOptions): the persistent run store,
// imported shard results, and the shard ownership filter.
type runner struct {
	scale Scale
	pool  *pool.Pool
	cache pool.Cache[runKey, sim.RunResult]
	tlog  telemetryLog

	store     *store.Store
	journal   *journal.Journal
	shardSpec shard.Spec
	executed  atomic.Int64

	mu   sync.Mutex
	seed map[string][]byte // imported shard entries, by store key
	ran  []shard.Entry     // executed runs, collected for ExportShard
}

func newRunner(scale Scale) *runner { return newRunnerWith(scale, SessionOptions{}) }

func newRunnerWith(scale Scale, opts SessionOptions) *runner {
	workers := scale.Workers
	if scale.Serial {
		workers = 1
	}
	return &runner{
		scale:     scale,
		pool:      pool.New(workers),
		store:     opts.Store,
		journal:   opts.Journal,
		shardSpec: opts.Shard,
	}
}

// run returns one simulation's result, trying the cheapest source first:
// the in-process single-flight cache, the persistent store, imported
// shard results, and only then an actual execution — which this shard
// performs only for the run keys it owns. Concurrent callers with
// equivalent configurations share a single lookup-or-execution.
func (r *runner) run(v Variant, workload string) (sim.RunResult, error) {
	return r.cache.Do(canonicalKey(v, workload), func() (sim.RunResult, error) {
		skey := storeKey(r.scale, canonicalKey(v, workload))
		// The validation/debugging clockings exist to actually execute
		// the simulation (Differential runs both clockings and compares;
		// PerCycle forces the reference model) — a warm store serving
		// the result would silently validate nothing, so those modes
		// bypass the persistent layer entirely.
		warmable := !r.scale.Differential && !r.scale.PerCycle
		if warmable && r.journal != nil {
			// The crash-recovery layer: a run the interrupted invocation
			// already completed is served from its journal, store or no
			// store. No re-append — the record is already durable.
			if data, ok := r.journal.Run(skey); ok {
				if res, err := sim.DecodeResult(data); err == nil {
					r.recordOwned(skey, data)
					return res, nil
				}
			}
		}
		if warmable && r.store != nil {
			if data, ok := r.store.Get(skey); ok {
				if res, err := sim.DecodeResult(data); err == nil {
					r.journalRun(skey, data)
					r.recordOwned(skey, data)
					return res, nil
				}
				// Checksum-valid but schema-stale entry: recompute and
				// overwrite below.
			}
		}
		if warmable {
			r.mu.Lock()
			data, imported := r.seed[skey]
			r.mu.Unlock()
			if imported {
				if res, err := sim.DecodeResult(data); err == nil {
					r.journalRun(skey, data)
					r.recordOwned(skey, data)
					return res, nil
				}
			}
		}
		if !r.shardSpec.Owns(skey) {
			return sim.RunResult{}, fmt.Errorf("%w: %s", ErrShardSkipped, skey)
		}
		cfg, err := configure(v, workload)
		if err != nil {
			return sim.RunResult{}, err
		}
		if r.scale.PerCycle {
			cfg.Clock = sim.ClockPerCycle
		}
		var res sim.RunResult
		if r.scale.Differential {
			res, err = sim.RunDifferential(cfg, r.scale.Warmup, r.scale.Measured)
		} else {
			var sys *sim.System
			sys, err = sim.NewSystem(cfg)
			if err != nil {
				return sim.RunResult{}, err
			}
			res, err = sys.Run(r.scale.Warmup, r.scale.Measured)
		}
		if err != nil {
			return sim.RunResult{}, fmt.Errorf("exp: %s on %s: %w", v.Name, workload, err)
		}
		r.executed.Add(1)
		r.tlog.add(RunTelemetry{Variant: v.Name, Workload: workload, T: res.Telemetry})
		if r.store != nil || r.journal != nil || r.shardSpec.Count > 0 {
			if data, eerr := sim.EncodeResult(res); eerr == nil {
				if warmable && r.store != nil {
					// Best-effort: a failed write costs a future
					// recompute, never correctness.
					_ = r.store.Put(skey, data)
				}
				if warmable {
					r.journalRun(skey, data)
				}
				r.recordOwned(skey, data)
			}
		}
		return res, nil
	})
}

// journalRun appends a resolved run to the session journal. Every
// source counts — executed, store hit, imported seed — because the
// journal must stand alone on resume: the store may be gone, degraded,
// or turned off next time. Best-effort, like every durability write.
func (r *runner) journalRun(skey string, data []byte) {
	if r.journal != nil {
		_ = r.journal.AppendRun(skey, data)
	}
}

// recordOwned collects a result for ExportShard. Store and seed hits are
// recorded exactly like executions: a shard file must hold every run its
// shard owns — a warm store making the simulation free must not make the
// run silently vanish from the merge.
func (r *runner) recordOwned(skey string, data []byte) {
	if r.shardSpec.Count == 0 || !r.shardSpec.Owns(skey) {
		return
	}
	r.mu.Lock()
	r.ran = append(r.ran, shard.Entry{Key: skey, Payload: data})
	r.mu.Unlock()
}

func (r *runner) baseline(workload string) (sim.RunResult, error) {
	res, err := r.run(Variant{Name: "Baseline", Policy: sim.PolicyNone}, workload)
	if err != nil {
		return res, fmt.Errorf("exp: baseline %s: %w", workload, err)
	}
	return res, nil
}

// prefetchBaselines primes the per-workload baselines across the pool
// so grid jobs don't stack up behind their shared baseline's single
// flight. Baselines owned by another shard are simply not primed.
func (r *runner) prefetchBaselines(names []string) error {
	return r.pool.Run(len(names), func(i int) error {
		_, err := r.baseline(names[i])
		return ignoreSkip(err)
	})
}

// normalized runs a variant over a workload and returns performance
// normalized to the no-ABO baseline (the paper's metric: weighted speedup
// relative to baseline, which for homogeneous mixes reduces to the IPC-sum
// ratio).
//
// Both legs are always attempted: in a sharded grid this shard may own
// the variant run while another shard owns the baseline (or vice versa),
// and the eventual merge depends on every owned run executing here even
// when its cell cannot be normalized yet. A skip on either leg skips the
// cell; real failures win over skips.
func (r *runner) normalized(v Variant, workload string) (float64, sim.RunResult, error) {
	res, runErr := r.run(v, workload)
	base, baseErr := r.baseline(workload)
	if err := realError(runErr, baseErr); err != nil {
		return 0, sim.RunResult{}, err
	}
	if runErr != nil {
		return 0, sim.RunResult{}, runErr
	}
	if baseErr != nil {
		return 0, sim.RunResult{}, baseErr
	}
	if base.IPCSum <= 0 {
		return 0, res, fmt.Errorf("exp: zero baseline IPC for %s", workload)
	}
	return res.IPCSum / base.IPCSum, res, nil
}

// Runner is a shareable experiment session. Experiments run through the
// same Runner share its worker pool and its keyed run cache, so a
// driver running several figures back to back (cmd/tpracsim -exp all)
// never executes the same (variant, workload, scale) simulation twice.
type Runner struct {
	r *runner
}

// NewRunner returns a session for the given scale.
func NewRunner(scale Scale) *Runner { return &Runner{r: newRunner(scale)} }

// CachedRuns reports how many distinct simulations the session has
// executed (or has in flight) — the dedup observability counter.
func (s *Runner) CachedRuns() int { return s.r.cache.Len() }

// Fig10 runs Figure 10 within this session.
func (s *Runner) Fig10() (Fig10Result, error) { return runFig10(s.r) }

// Fig11 runs Figure 11 within this session.
func (s *Runner) Fig11() (SweepResult, error) { return runFig11(s.r) }

// Fig12 runs Figure 12 within this session.
func (s *Runner) Fig12() (SweepResult, error) { return runFig12(s.r) }

// Fig13 runs Figure 13 within this session.
func (s *Runner) Fig13() (SweepResult, error) { return runFig13(s.r) }

// Fig14 runs Figure 14 within this session.
func (s *Runner) Fig14() (SweepResult, error) { return runFig14(s.r) }

// Table5 runs Table 5 within this session.
func (s *Runner) Table5() (Table5Result, error) { return runTable5(s.r) }

// RFMpb runs the Section 7.2 extension within this session.
func (s *Runner) RFMpb() (RFMpbResult, error) { return runRFMpb(s.r) }

// Fig10Result is the main performance comparison at NRH 1024.
type Fig10Result struct {
	Workloads []string
	Classes   []trace.Class
	Variants  []string
	// Normalized[i][j] is workload i under variant j.
	Normalized  [][]float64
	GeomeanAll  []float64
	GeomeanHigh []float64
}

// Fig10Variants returns the paper's three compared configurations.
func Fig10Variants(nrh int) []Variant {
	return []Variant{
		{Name: "ABO-Only", Policy: sim.PolicyABOOnly, NRH: nrh},
		{Name: "ABO+ACB-RFM", Policy: sim.PolicyACB, NRH: nrh},
		{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: nrh},
	}
}

// RunFig10 reproduces Figure 10: normalized performance of ABO-Only,
// ABO+ACB-RFM and TPRAC at NRH=1024 across the workload set.
func RunFig10(scale Scale) (Fig10Result, error) { return runFig10(newRunner(scale)) }

func runFig10(r *runner) (Fig10Result, error) {
	variants := Fig10Variants(1024)
	names := r.scale.workloads()
	res := Fig10Result{Workloads: names}
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Name)
	}
	for _, name := range names {
		w, err := trace.Lookup(name)
		if err != nil {
			return res, err
		}
		res.Classes = append(res.Classes, w.Class)
	}
	if err := r.prefetchBaselines(names); err != nil {
		return res, err
	}
	res.Normalized = make([][]float64, len(names))
	for i := range res.Normalized {
		res.Normalized[i] = make([]float64, len(variants))
	}
	err := r.pool.Run(len(names)*len(variants), func(k int) error {
		i, j := k/len(variants), k%len(variants)
		n, _, err := r.normalized(variants[j], names[i])
		if err != nil {
			return ignoreSkip(err)
		}
		res.Normalized[i][j] = n
		return nil
	})
	if err != nil {
		return res, err
	}
	for j := range variants {
		var all, high []float64
		for i := range names {
			all = append(all, res.Normalized[i][j])
			if res.Classes[i] == trace.ClassHigh {
				high = append(high, res.Normalized[i][j])
			}
		}
		res.GeomeanAll = append(res.GeomeanAll, stats.Geomean(all))
		res.GeomeanHigh = append(res.GeomeanHigh, stats.Geomean(high))
	}
	return res, nil
}

func (r Fig10Result) table() *stats.Table {
	header := append([]string{"workload", "class"}, r.Variants...)
	t := &stats.Table{Header: header}
	for i, w := range r.Workloads {
		cells := []any{w, string(r.Classes[i])}
		for _, n := range r.Normalized[i] {
			cells = append(cells, n)
		}
		t.Add(cells...)
	}
	high := []any{"GEOMEAN(High)", ""}
	all := []any{"GEOMEAN(All)", ""}
	for j := range r.Variants {
		high = append(high, r.GeomeanHigh[j])
		all = append(all, r.GeomeanAll[j])
	}
	t.Add(high...)
	t.Add(all...)
	return t
}

// Render returns the human-readable report.
func (r Fig10Result) Render() string {
	return "Figure 10: normalized performance at NRH=1024 (1.0 = no-ABO baseline)\n" +
		r.table().String()
}

// CSV returns the machine-readable report.
func (r Fig10Result) CSV() string { return r.table().CSV() }

// SweepResult is the generic outcome of Figures 11-14: geometric-mean
// normalized performance per (x value, variant).
type SweepResult struct {
	Title    string
	XLabel   string
	XValues  []string
	Variants []string
	// Geomean[i][j] is x value i under variant j.
	Geomean [][]float64
}

// runSweep fans the whole (x, variant, workload) grid across the pool
// in one batch — every cell is an independent simulation — then reduces
// the geomeans serially, in grid order, once all cells are in place.
func runSweep(r *runner, title, xlabel string, xs []string, variants func(x int) []Variant, xvals []int) (SweepResult, error) {
	names := r.scale.workloads()
	res := SweepResult{Title: title, XLabel: xlabel, XValues: xs}
	grid := make([][]Variant, len(xvals))
	for i, x := range xvals {
		grid[i] = variants(x)
	}
	for _, v := range grid[0] {
		res.Variants = append(res.Variants, v.Name)
	}
	if err := r.prefetchBaselines(names); err != nil {
		return res, err
	}
	type cellRef struct{ xi, vj, wi int }
	var cells []cellRef
	ns := make([][][]float64, len(xvals))
	for xi := range grid {
		ns[xi] = make([][]float64, len(grid[xi]))
		for vj := range grid[xi] {
			ns[xi][vj] = make([]float64, len(names))
			for wi := range names {
				cells = append(cells, cellRef{xi, vj, wi})
			}
		}
	}
	err := r.pool.Run(len(cells), func(k int) error {
		c := cells[k]
		n, _, err := r.normalized(grid[c.xi][c.vj], names[c.wi])
		if err != nil {
			return ignoreSkip(err)
		}
		ns[c.xi][c.vj][c.wi] = n
		return nil
	})
	if err != nil {
		return res, err
	}
	for xi := range ns {
		row := make([]float64, len(ns[xi]))
		for vj := range ns[xi] {
			row[vj] = stats.Geomean(ns[xi][vj])
		}
		res.Geomean = append(res.Geomean, row)
	}
	return res, nil
}

func (r SweepResult) table() *stats.Table {
	t := &stats.Table{Header: append([]string{r.XLabel}, r.Variants...)}
	for i, x := range r.XValues {
		cells := []any{x}
		for _, g := range r.Geomean[i] {
			cells = append(cells, g)
		}
		t.Add(cells...)
	}
	return t
}

// Render returns the human-readable report.
func (r SweepResult) Render() string { return r.Title + "\n" + r.table().String() }

// CSV returns the machine-readable report.
func (r SweepResult) CSV() string { return r.table().CSV() }

// RunFig11 reproduces Figure 11: sensitivity to the PRAC level at NRH=1024.
func RunFig11(scale Scale) (SweepResult, error) { return runFig11(newRunner(scale)) }

func runFig11(r *runner) (SweepResult, error) {
	return runSweep(r,
		"Figure 11: normalized performance across PRAC levels (NRH=1024)",
		"PRAC-level",
		[]string{"PRAC-1", "PRAC-2", "PRAC-4"},
		func(level int) []Variant {
			vs := Fig10Variants(1024)
			for i := range vs {
				vs[i].PRACLevel = level
			}
			return vs
		},
		[]int{1, 2, 4},
	)
}

// RunFig12 reproduces Figure 12: sensitivity to targeted-refresh rate.
func RunFig12(scale Scale) (SweepResult, error) { return runFig12(newRunner(scale)) }

func runFig12(r *runner) (SweepResult, error) {
	return runSweep(r,
		"Figure 12: TPRAC with targeted refreshes (NRH=1024)",
		"TREF-per-tREFI",
		[]string{"none", "1/4", "1/3", "1/2", "1/1"},
		func(every int) []Variant {
			v := Variant{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: 1024}
			if every > 0 {
				v.Name = fmt.Sprintf("TPRAC+TREF/%d", every)
				v.TREFEvery = every
				v.SkipOnTREF = true
			}
			return []Variant{v}
		},
		[]int{0, 4, 3, 2, 1},
	)
}

// RunFig13 reproduces Figure 13: sensitivity to the RowHammer threshold.
func RunFig13(scale Scale) (SweepResult, error) { return runFig13(newRunner(scale)) }

func runFig13(r *runner) (SweepResult, error) {
	return runSweep(r,
		"Figure 13: normalized performance across RowHammer thresholds",
		"NRH",
		[]string{"128", "256", "512", "1024", "2048", "4096"},
		func(nrh int) []Variant {
			vs := Fig10Variants(nrh)
			vs = append(vs,
				Variant{Name: "TPRAC+TREF/4", Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 4, SkipOnTREF: true},
				Variant{Name: "TPRAC+TREF/1", Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 1, SkipOnTREF: true},
			)
			return vs
		},
		[]int{128, 256, 512, 1024, 2048, 4096},
	)
}

// RunFig14 reproduces Figure 14: activation-counter reset sensitivity.
func RunFig14(scale Scale) (SweepResult, error) { return runFig14(newRunner(scale)) }

func runFig14(r *runner) (SweepResult, error) {
	return runSweep(r,
		"Figure 14: TPRAC with and without per-tREFW counter reset",
		"NRH",
		[]string{"128", "256", "512", "1024", "2048", "4096"},
		func(nrh int) []Variant {
			return []Variant{
				{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: nrh},
				{Name: "TPRAC-NoReset", Policy: sim.PolicyTPRAC, NRH: nrh, NoReset: true},
				{Name: "TPRAC+TREF/1", Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 1, SkipOnTREF: true},
				{Name: "TPRAC-NoReset+TREF/1", Policy: sim.PolicyTPRAC, NRH: nrh, NoReset: true, TREFEvery: 1, SkipOnTREF: true},
			}
		},
		[]int{128, 256, 512, 1024, 2048, 4096},
	)
}

// Table5Row is one row of the energy-overhead table.
type Table5Row struct {
	NRH              int
	MitigationPct    float64
	NonMitigationPct float64
	TotalPct         float64
}

// Table5Result is the paper's Table 5.
type Table5Result struct {
	Rows []Table5Row
}

// RunTable5 reproduces Table 5: TPRAC's energy overhead versus the no-ABO
// baseline, split into mitigation (RFM) and non-mitigation (execution time)
// energy, across RowHammer thresholds.
func RunTable5(scale Scale) (Table5Result, error) { return runTable5(newRunner(scale)) }

func runTable5(r *runner) (Table5Result, error) {
	params := energy.DefaultParams()
	names := r.scale.workloads()
	nrhs := []int{128, 256, 512, 1024, 2048, 4096}
	var res Table5Result
	if err := r.prefetchBaselines(names); err != nil {
		return res, err
	}
	type overheads struct{ mit, non, tot float64 }
	cells := make([][]overheads, len(nrhs))
	for i := range cells {
		cells[i] = make([]overheads, len(names))
	}
	err := r.pool.Run(len(nrhs)*len(names), func(k int) error {
		ni, wi := k/len(names), k%len(names)
		v := Variant{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: nrhs[ni]}
		name := names[wi]
		// Both legs always attempted; see normalized for the shard rationale.
		run, runErr := r.run(v, name)
		base, baseErr := r.baseline(name)
		if err := realError(runErr, baseErr); err != nil {
			return err
		}
		if runErr != nil || baseErr != nil {
			return nil
		}
		cfg, err := configure(v, name)
		if err != nil {
			return err
		}
		o, err := energy.CompareRuns(params, base.DRAM, run.DRAM,
			cfg.DRAM.Org.Ranks, base.MeasuredTime, run.MeasuredTime)
		if err != nil {
			return err
		}
		cells[ni][wi] = overheads{o.MitigationPct, o.NonMitigationPct, o.TotalPct}
		return nil
	})
	if err != nil {
		return res, err
	}
	for ni, nrh := range nrhs {
		mit := make([]float64, len(names))
		non := make([]float64, len(names))
		tot := make([]float64, len(names))
		for wi := range names {
			mit[wi] = cells[ni][wi].mit
			non[wi] = cells[ni][wi].non
			tot[wi] = cells[ni][wi].tot
		}
		res.Rows = append(res.Rows, Table5Row{
			NRH:              nrh,
			MitigationPct:    stats.Mean(mit),
			NonMitigationPct: stats.Mean(non),
			TotalPct:         stats.Mean(tot),
		})
	}
	return res, nil
}

func (r Table5Result) table() *stats.Table {
	t := &stats.Table{Header: []string{"NRH", "Mitigation(RFM)%", "Non-Mitigation(ExecTime)%", "Total%"}}
	for _, row := range r.Rows {
		t.Add(row.NRH, row.MitigationPct, row.NonMitigationPct, row.TotalPct)
	}
	return t
}

// Render returns the human-readable report.
func (r Table5Result) Render() string {
	return "Table 5: TPRAC energy overhead vs no-ABO baseline\n" + r.table().String()
}

// CSV returns the machine-readable report.
func (r Table5Result) CSV() string { return r.table().CSV() }

// TBWindowFor exposes the solved TB-Window for a threshold, for reports.
func TBWindowFor(nrh int, reset bool) (ticks.T, error) {
	return analysis.DefaultParams().SolveWindow(nrh, reset, 0)
}
