package exp

import (
	"fmt"

	"pracsim/internal/analysis"
	"pracsim/internal/energy"
	"pracsim/internal/sim"
	"pracsim/internal/stats"
	"pracsim/internal/ticks"
	"pracsim/internal/trace"
)

// Scale controls how much work the performance experiments simulate.
type Scale struct {
	Warmup    int64    // warmup instructions per core
	Measured  int64    // measured instructions per core
	Workloads []string // nil = all 50 catalog workloads
}

// QuickScale is a minutes-not-days configuration: a representative subset
// of workloads and short instruction budgets. Shapes are preserved;
// absolute averages move by a few tenths of a percent versus FullScale.
func QuickScale() Scale {
	return Scale{
		Warmup:   20_000,
		Measured: 40_000,
		Workloads: []string{
			"433.milc", "470.lbm", "429.mcf", "nutch", // High
			"401.bzip2", "657.xz", // Medium
			"444.namd", "631.deepsjeng", // Low
		},
	}
}

// FullScale runs the whole 50-workload catalog with larger budgets.
func FullScale() Scale {
	return Scale{Warmup: 50_000, Measured: 150_000}
}

func (s Scale) workloads() []string {
	if len(s.Workloads) > 0 {
		return s.Workloads
	}
	var names []string
	for _, w := range trace.Catalog() {
		names = append(names, w.Name)
	}
	return names
}

// Variant is one mitigation configuration under test.
type Variant struct {
	Name       string
	Policy     sim.PolicyKind
	NRH        int // RowHammer threshold; NBO is set to NRH
	PRACLevel  int // RFMs per ABO (0 = 1)
	TREFEvery  int // targeted refresh every k tREFI (0 = off)
	SkipOnTREF bool
	NoReset    bool // disable per-tREFW counter reset
}

// configure builds the system configuration for a variant and workload.
func configure(v Variant, workload string) (sim.SystemConfig, error) {
	nrh := v.NRH
	if nrh <= 0 {
		nrh = 1024
	}
	cfg := sim.DefaultSystemConfig(nrh)
	cfg.Workload = workload
	cfg.Policy = v.Policy
	if v.PRACLevel > 0 {
		cfg.DRAM.PRAC.NMit = v.PRACLevel
	}
	cfg.DRAM.PRAC.ResetOnREFW = !v.NoReset
	cfg.Ctrl.TREFEvery = v.TREFEvery
	cfg.SkipOnTREF = v.SkipOnTREF

	p := analysis.ParamsFromDRAM(cfg.DRAM)
	// A TB-Window must leave room to actually service one RFM (tRFMab
	// plus drain) or the RFM debt accrues faster than it retires and the
	// channel livelocks. Solved windows below the floor are clamped: the
	// defense then runs at its feasibility limit, which only the
	// NRH=128-without-reset corner reaches (the paper's Section 6.6
	// observation that disabling counter reset hurts at ultra-low
	// thresholds, taken to its end point).
	minWindow := cfg.DRAM.Timing.TRFMab + ticks.FromNS(250)
	switch v.Policy {
	case sim.PolicyTPRAC, sim.PolicyTPRACpb:
		w, err := p.SolveWindow(nrh, !v.NoReset, 0)
		if err != nil {
			return cfg, fmt.Errorf("exp: variant %s: %w", v.Name, err)
		}
		if w < minWindow {
			w = minWindow
		}
		cfg.TBWindow = w
	case sim.PolicyACB:
		w, err := p.SolveWindow(nrh, !v.NoReset, 0)
		if err != nil {
			return cfg, fmt.Errorf("exp: variant %s: %w", v.Name, err)
		}
		// The same worst-case mitigation rate, but activity-triggered:
		// one RFM per BAT activations of a bank.
		bat := p.ActsPerWindow(w)
		if bat < 2 {
			bat = 2
		}
		cfg.BAT = bat
	}
	return cfg, nil
}

// PerfRun is one measured simulation.
type PerfRun struct {
	Workload string
	Variant  string
	Result   sim.RunResult
}

// runner caches per-workload baselines so each variant comparison reuses
// them.
type runner struct {
	scale     Scale
	baselines map[string]sim.RunResult
}

func newRunner(scale Scale) *runner {
	return &runner{scale: scale, baselines: make(map[string]sim.RunResult)}
}

func (r *runner) baseline(workload string) (sim.RunResult, error) {
	if res, ok := r.baselines[workload]; ok {
		return res, nil
	}
	cfg, err := configure(Variant{Name: "Baseline", Policy: sim.PolicyNone}, workload)
	if err != nil {
		return sim.RunResult{}, err
	}
	sys, err := sim.NewSystem(cfg)
	if err != nil {
		return sim.RunResult{}, err
	}
	res, err := sys.Run(r.scale.Warmup, r.scale.Measured)
	if err != nil {
		return sim.RunResult{}, fmt.Errorf("exp: baseline %s: %w", workload, err)
	}
	r.baselines[workload] = res
	return res, nil
}

func (r *runner) run(v Variant, workload string) (sim.RunResult, error) {
	cfg, err := configure(v, workload)
	if err != nil {
		return sim.RunResult{}, err
	}
	sys, err := sim.NewSystem(cfg)
	if err != nil {
		return sim.RunResult{}, err
	}
	res, err := sys.Run(r.scale.Warmup, r.scale.Measured)
	if err != nil {
		return sim.RunResult{}, fmt.Errorf("exp: %s on %s: %w", v.Name, workload, err)
	}
	return res, nil
}

// normalized runs a variant over a workload and returns performance
// normalized to the no-ABO baseline (the paper's metric: weighted speedup
// relative to baseline, which for homogeneous mixes reduces to the IPC-sum
// ratio).
func (r *runner) normalized(v Variant, workload string) (float64, sim.RunResult, error) {
	base, err := r.baseline(workload)
	if err != nil {
		return 0, sim.RunResult{}, err
	}
	res, err := r.run(v, workload)
	if err != nil {
		return 0, sim.RunResult{}, err
	}
	if base.IPCSum <= 0 {
		return 0, res, fmt.Errorf("exp: zero baseline IPC for %s", workload)
	}
	return res.IPCSum / base.IPCSum, res, nil
}

// Fig10Result is the main performance comparison at NRH 1024.
type Fig10Result struct {
	Workloads []string
	Classes   []trace.Class
	Variants  []string
	// Normalized[i][j] is workload i under variant j.
	Normalized  [][]float64
	GeomeanAll  []float64
	GeomeanHigh []float64
}

// Fig10Variants returns the paper's three compared configurations.
func Fig10Variants(nrh int) []Variant {
	return []Variant{
		{Name: "ABO-Only", Policy: sim.PolicyABOOnly, NRH: nrh},
		{Name: "ABO+ACB-RFM", Policy: sim.PolicyACB, NRH: nrh},
		{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: nrh},
	}
}

// RunFig10 reproduces Figure 10: normalized performance of ABO-Only,
// ABO+ACB-RFM and TPRAC at NRH=1024 across the workload set.
func RunFig10(scale Scale) (Fig10Result, error) {
	r := newRunner(scale)
	variants := Fig10Variants(1024)
	res := Fig10Result{}
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Name)
	}
	perVariantAll := make([][]float64, len(variants))
	perVariantHigh := make([][]float64, len(variants))
	for _, name := range scale.workloads() {
		w, err := trace.Lookup(name)
		if err != nil {
			return res, err
		}
		res.Workloads = append(res.Workloads, name)
		res.Classes = append(res.Classes, w.Class)
		row := make([]float64, len(variants))
		for j, v := range variants {
			n, _, err := r.normalized(v, name)
			if err != nil {
				return res, err
			}
			row[j] = n
			perVariantAll[j] = append(perVariantAll[j], n)
			if w.Class == trace.ClassHigh {
				perVariantHigh[j] = append(perVariantHigh[j], n)
			}
		}
		res.Normalized = append(res.Normalized, row)
	}
	for j := range variants {
		res.GeomeanAll = append(res.GeomeanAll, stats.Geomean(perVariantAll[j]))
		res.GeomeanHigh = append(res.GeomeanHigh, stats.Geomean(perVariantHigh[j]))
	}
	return res, nil
}

func (r Fig10Result) table() *stats.Table {
	header := append([]string{"workload", "class"}, r.Variants...)
	t := &stats.Table{Header: header}
	for i, w := range r.Workloads {
		cells := []any{w, string(r.Classes[i])}
		for _, n := range r.Normalized[i] {
			cells = append(cells, n)
		}
		t.Add(cells...)
	}
	high := []any{"GEOMEAN(High)", ""}
	all := []any{"GEOMEAN(All)", ""}
	for j := range r.Variants {
		high = append(high, r.GeomeanHigh[j])
		all = append(all, r.GeomeanAll[j])
	}
	t.Add(high...)
	t.Add(all...)
	return t
}

// Render returns the human-readable report.
func (r Fig10Result) Render() string {
	return "Figure 10: normalized performance at NRH=1024 (1.0 = no-ABO baseline)\n" +
		r.table().String()
}

// CSV returns the machine-readable report.
func (r Fig10Result) CSV() string { return r.table().CSV() }

// SweepResult is the generic outcome of Figures 11-14: geometric-mean
// normalized performance per (x value, variant).
type SweepResult struct {
	Title    string
	XLabel   string
	XValues  []string
	Variants []string
	// Geomean[i][j] is x value i under variant j.
	Geomean [][]float64
}

func runSweep(title, xlabel string, scale Scale, xs []string, variants func(x int) []Variant, xvals []int) (SweepResult, error) {
	r := newRunner(scale)
	res := SweepResult{Title: title, XLabel: xlabel, XValues: xs}
	for i, x := range xvals {
		vs := variants(x)
		if i == 0 {
			for _, v := range vs {
				res.Variants = append(res.Variants, v.Name)
			}
		}
		row := make([]float64, len(vs))
		for j, v := range vs {
			var ns []float64
			for _, name := range scale.workloads() {
				n, _, err := r.normalized(v, name)
				if err != nil {
					return res, err
				}
				ns = append(ns, n)
			}
			row[j] = stats.Geomean(ns)
		}
		res.Geomean = append(res.Geomean, row)
	}
	return res, nil
}

func (r SweepResult) table() *stats.Table {
	t := &stats.Table{Header: append([]string{r.XLabel}, r.Variants...)}
	for i, x := range r.XValues {
		cells := []any{x}
		for _, g := range r.Geomean[i] {
			cells = append(cells, g)
		}
		t.Add(cells...)
	}
	return t
}

// Render returns the human-readable report.
func (r SweepResult) Render() string { return r.Title + "\n" + r.table().String() }

// CSV returns the machine-readable report.
func (r SweepResult) CSV() string { return r.table().CSV() }

// RunFig11 reproduces Figure 11: sensitivity to the PRAC level at NRH=1024.
func RunFig11(scale Scale) (SweepResult, error) {
	return runSweep(
		"Figure 11: normalized performance across PRAC levels (NRH=1024)",
		"PRAC-level", scale,
		[]string{"PRAC-1", "PRAC-2", "PRAC-4"},
		func(level int) []Variant {
			vs := Fig10Variants(1024)
			for i := range vs {
				vs[i].PRACLevel = level
			}
			return vs
		},
		[]int{1, 2, 4},
	)
}

// RunFig12 reproduces Figure 12: sensitivity to targeted-refresh rate.
func RunFig12(scale Scale) (SweepResult, error) {
	return runSweep(
		"Figure 12: TPRAC with targeted refreshes (NRH=1024)",
		"TREF-per-tREFI", scale,
		[]string{"none", "1/4", "1/3", "1/2", "1/1"},
		func(every int) []Variant {
			v := Variant{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: 1024}
			if every > 0 {
				v.Name = fmt.Sprintf("TPRAC+TREF/%d", every)
				v.TREFEvery = every
				v.SkipOnTREF = true
			}
			return []Variant{v}
		},
		[]int{0, 4, 3, 2, 1},
	)
}

// RunFig13 reproduces Figure 13: sensitivity to the RowHammer threshold.
func RunFig13(scale Scale) (SweepResult, error) {
	return runSweep(
		"Figure 13: normalized performance across RowHammer thresholds",
		"NRH", scale,
		[]string{"128", "256", "512", "1024", "2048", "4096"},
		func(nrh int) []Variant {
			vs := Fig10Variants(nrh)
			vs = append(vs,
				Variant{Name: "TPRAC+TREF/4", Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 4, SkipOnTREF: true},
				Variant{Name: "TPRAC+TREF/1", Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 1, SkipOnTREF: true},
			)
			return vs
		},
		[]int{128, 256, 512, 1024, 2048, 4096},
	)
}

// RunFig14 reproduces Figure 14: activation-counter reset sensitivity.
func RunFig14(scale Scale) (SweepResult, error) {
	return runSweep(
		"Figure 14: TPRAC with and without per-tREFW counter reset",
		"NRH", scale,
		[]string{"128", "256", "512", "1024", "2048", "4096"},
		func(nrh int) []Variant {
			return []Variant{
				{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: nrh},
				{Name: "TPRAC-NoReset", Policy: sim.PolicyTPRAC, NRH: nrh, NoReset: true},
				{Name: "TPRAC+TREF/1", Policy: sim.PolicyTPRAC, NRH: nrh, TREFEvery: 1, SkipOnTREF: true},
				{Name: "TPRAC-NoReset+TREF/1", Policy: sim.PolicyTPRAC, NRH: nrh, NoReset: true, TREFEvery: 1, SkipOnTREF: true},
			}
		},
		[]int{128, 256, 512, 1024, 2048, 4096},
	)
}

// Table5Row is one row of the energy-overhead table.
type Table5Row struct {
	NRH              int
	MitigationPct    float64
	NonMitigationPct float64
	TotalPct         float64
}

// Table5Result is the paper's Table 5.
type Table5Result struct {
	Rows []Table5Row
}

// RunTable5 reproduces Table 5: TPRAC's energy overhead versus the no-ABO
// baseline, split into mitigation (RFM) and non-mitigation (execution time)
// energy, across RowHammer thresholds.
func RunTable5(scale Scale) (Table5Result, error) {
	r := newRunner(scale)
	params := energy.DefaultParams()
	var res Table5Result
	for _, nrh := range []int{128, 256, 512, 1024, 2048, 4096} {
		v := Variant{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: nrh}
		var mit, non, tot []float64
		for _, name := range scale.workloads() {
			base, err := r.baseline(name)
			if err != nil {
				return res, err
			}
			run, err := r.run(v, name)
			if err != nil {
				return res, err
			}
			cfg, err := configure(v, name)
			if err != nil {
				return res, err
			}
			o, err := energy.CompareRuns(params, base.DRAM, run.DRAM,
				cfg.DRAM.Org.Ranks, base.MeasuredTime, run.MeasuredTime)
			if err != nil {
				return res, err
			}
			mit = append(mit, o.MitigationPct)
			non = append(non, o.NonMitigationPct)
			tot = append(tot, o.TotalPct)
		}
		res.Rows = append(res.Rows, Table5Row{
			NRH:              nrh,
			MitigationPct:    stats.Mean(mit),
			NonMitigationPct: stats.Mean(non),
			TotalPct:         stats.Mean(tot),
		})
	}
	return res, nil
}

func (r Table5Result) table() *stats.Table {
	t := &stats.Table{Header: []string{"NRH", "Mitigation(RFM)%", "Non-Mitigation(ExecTime)%", "Total%"}}
	for _, row := range r.Rows {
		t.Add(row.NRH, row.MitigationPct, row.NonMitigationPct, row.TotalPct)
	}
	return t
}

// Render returns the human-readable report.
func (r Table5Result) Render() string {
	return "Table 5: TPRAC energy overhead vs no-ABO baseline\n" + r.table().String()
}

// CSV returns the machine-readable report.
func (r Table5Result) CSV() string { return r.table().CSV() }

// TBWindowFor exposes the solved TB-Window for a threshold, for reports.
func TBWindowFor(nrh int, reset bool) (ticks.T, error) {
	return analysis.DefaultParams().SolveWindow(nrh, reset, 0)
}
