// Package pool is the concurrent experiment execution engine: a worker
// pool that fans independent jobs across GOMAXPROCS goroutines with
// deterministic, position-indexed result assembly, and a single-flight
// cache that deduplicates identical simulations.
//
// Every experiment in the paper's evaluation is a grid of fully
// independent (variant, workload) simulations, so sweep throughput
// scales with cores: callers enumerate the grid as indexed jobs, each
// job writes into its own slot of a preallocated result matrix, and all
// aggregation happens serially after Run returns. Parallel output is
// therefore bit-identical to serial output at any worker count.
package pool

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool executes batches of independent jobs across a fixed number of
// workers.
type Pool struct {
	workers int
}

// New returns a pool with the given concurrency. workers <= 0 selects
// GOMAXPROCS; workers == 1 executes jobs serially in index order on the
// calling goroutine (the debugging configuration).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// Run executes jobs 0..n-1 and blocks until all have finished. Each job
// must write its output into caller-owned storage at its own index;
// jobs must not depend on each other's completion (single-flight
// sharing through a Cache is fine: the blocked caller's worker waits,
// the computing job finishes on its own worker).
//
// If any jobs fail, Run reports the error of the lowest-indexed
// failure, and workers stop claiming new jobs once a failure is
// recorded (in-flight jobs finish). Indices are claimed in ascending
// order, so every job below the first observed failure still runs and
// the returned error is independent of scheduling order. With one
// worker, Run stops at the first failing job, mirroring a plain serial
// loop.
func (p *Pool) Run(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := job(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Cache memoizes keyed computations with single-flight semantics:
// concurrent Do calls with the same key share one execution of fn, and
// later calls return the memoized result without re-running it. Errors
// are cached like values, so a failing key fails every caller
// identically. The zero Cache is ready to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the value for key, computing it with fn on first use.
// Calls arriving while the key is in flight block until the computing
// caller's fn returns, then share its result.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*flight[V])
	}
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()
	completed := false
	defer func() {
		// A panicking fn propagates to its own caller, but the flight
		// must still complete or every waiter on this key blocks forever.
		if !completed {
			f.err = errors.New("pool: cached computation panicked")
		}
		close(f.done)
	}()
	f.val, f.err = fn()
	completed = true
	return f.val, f.err
}

// Len reports how many keys have been computed or are in flight.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
