package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAssemblesByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const n = 100
		got := make([]int, n)
		err := New(workers).Run(n, func(i int) error {
			got[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	want := errors.New("boom-17")
	err := New(8).Run(64, func(i int) error {
		if i == 17 || i == 40 {
			return fmt.Errorf("boom-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != want.Error() {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestRunSerialStopsAtFirstError(t *testing.T) {
	var ran int
	err := New(1).Run(10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("err=%v ran=%d, want error after 4 jobs", err, ran)
	}
}

func TestRunEmpty(t *testing.T) {
	if err := New(4).Run(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("zero workers")
	}
	if New(-3).Workers() < 1 {
		t.Fatal("negative workers accepted")
	}
	if New(5).Workers() != 5 {
		t.Fatal("explicit worker count not honored")
	}
}

// TestCacheSingleFlight drives one key from many goroutines and checks
// the computation ran exactly once with every caller sharing its
// result. Run under -race this also proves the cache is data-race
// free.
func TestCacheSingleFlight(t *testing.T) {
	var c Cache[string, int]
	var executions atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 32
	results := make([]int, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do("baseline/433.milc", func() (int, error) {
				executions.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}()
	}
	close(start)
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d, want 42", g, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d keys, want 1", c.Len())
	}
}

func TestCacheDistinctKeysComputeIndependently(t *testing.T) {
	var c Cache[int, int]
	var wg sync.WaitGroup
	const keys = 16
	for k := 0; k < keys; k++ {
		for dup := 0; dup < 4; dup++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := c.Do(k, func() (int, error) { return k * 10, nil })
				if err != nil || v != k*10 {
					t.Errorf("key %d: got %d, %v", k, v, err)
				}
			}()
		}
	}
	wg.Wait()
	if c.Len() != keys {
		t.Fatalf("cache holds %d keys, want %d", c.Len(), keys)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	var c Cache[string, int]
	var executions int
	fail := func() (int, error) {
		executions++
		return 0, errors.New("no window")
	}
	if _, err := c.Do("bad", fail); err == nil {
		t.Fatal("first call should fail")
	}
	if _, err := c.Do("bad", fail); err == nil {
		t.Fatal("second call should return the cached error")
	}
	if executions != 1 {
		t.Fatalf("fn executed %d times, want 1", executions)
	}
}

func TestCacheSurvivesPanickingFn(t *testing.T) {
	var c Cache[string, int]
	func() {
		defer func() { recover() }()
		c.Do("bad", func() (int, error) { panic("boom") })
		t.Error("panic did not propagate")
	}()
	// The flight must have completed: a second Do must not block and
	// must surface an error rather than a zero-value success.
	done := make(chan error, 1)
	go func() {
		_, err := c.Do("bad", func() (int, error) { return 1, nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panicked flight cached a success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do blocked forever on a panicked flight")
	}
}

// TestPoolWithCacheUnderRace mirrors the runner's real shape: a grid of
// jobs where several jobs single-flight the same expensive dependency.
func TestPoolWithCacheUnderRace(t *testing.T) {
	var c Cache[int, int]
	var executions atomic.Int32
	const groups, perGroup = 8, 6
	out := make([]int, groups*perGroup)
	err := New(8).Run(len(out), func(i int) error {
		g := i / perGroup
		v, err := c.Do(g, func() (int, error) {
			executions.Add(1)
			return g * 100, nil
		})
		if err != nil {
			return err
		}
		out[i] = v + i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != groups {
		t.Fatalf("dependencies computed %d times, want %d", n, groups)
	}
	for i, v := range out {
		if want := (i/perGroup)*100 + i; v != want {
			t.Fatalf("slot %d = %d, want %d", i, v, want)
		}
	}
}
