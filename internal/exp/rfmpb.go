package exp

import (
	"fmt"

	"pracsim/internal/sim"
	"pracsim/internal/stats"
)

// RFMpbResult compares channel-wide TB-RFM (RFMab) against the Section 7.2
// per-bank extension (RFMpb) at equal per-bank mitigation rates.
type RFMpbResult struct {
	NRHs   []int
	RFMab  []float64 // geomean normalized performance
	RFMpb  []float64
	Alerts []int64 // alerts under RFMpb (must stay zero)
}

// RunRFMpb evaluates the future-work extension the paper sketches in
// Section 7.2: issuing TPRAC's Timing-Based RFMs as per-bank RFMpb commands
// that block one bank for tRFMpb instead of stalling the whole channel for
// tRFMab. Each bank still receives one activity-independent mitigation per
// TB-Window, preserving the Section 4.2 security argument per bank.
func RunRFMpb(scale Scale) (RFMpbResult, error) { return runRFMpb(newRunner(scale)) }

func runRFMpb(r *runner) (RFMpbResult, error) {
	names := r.scale.workloads()
	nrhs := []int{256, 512, 1024}
	res := RFMpbResult{NRHs: nrhs}
	if err := r.prefetchBaselines(names); err != nil {
		return res, err
	}
	type pair struct {
		ab, pb float64
		alerts int64
	}
	cells := make([][]pair, len(nrhs))
	for i := range cells {
		cells[i] = make([]pair, len(names))
	}
	err := r.pool.Run(len(nrhs)*len(names), func(k int) error {
		ni, wi := k/len(names), k%len(names)
		nrh, name := nrhs[ni], names[wi]
		// Both variants always attempted; see normalized for the shard
		// rationale.
		nAB, _, errAB := r.normalized(Variant{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: nrh}, name)
		nPB, run, errPB := r.normalized(Variant{Name: "TPRAC-pb", Policy: sim.PolicyTPRACpb, NRH: nrh}, name)
		if err := realError(errAB, errPB); err != nil {
			return fmt.Errorf("rfmpb nrh=%d: %w", nrh, err)
		}
		if errAB != nil || errPB != nil {
			return nil
		}
		cells[ni][wi] = pair{ab: nAB, pb: nPB, alerts: run.DRAM.AlertsAsserted}
		return nil
	})
	if err != nil {
		return res, err
	}
	for ni := range nrhs {
		ab := make([]float64, len(names))
		pb := make([]float64, len(names))
		var alerts int64
		for wi := range names {
			ab[wi] = cells[ni][wi].ab
			pb[wi] = cells[ni][wi].pb
			alerts += cells[ni][wi].alerts
		}
		res.RFMab = append(res.RFMab, stats.Geomean(ab))
		res.RFMpb = append(res.RFMpb, stats.Geomean(pb))
		res.Alerts = append(res.Alerts, alerts)
	}
	return res, nil
}

func (r RFMpbResult) table() *stats.Table {
	t := &stats.Table{Header: []string{"NRH", "TPRAC(RFMab)", "TPRAC-pb(RFMpb)", "alerts_under_pb"}}
	for i, nrh := range r.NRHs {
		t.Add(nrh, r.RFMab[i], r.RFMpb[i], r.Alerts[i])
	}
	return t
}

// Render returns the human-readable report.
func (r RFMpbResult) Render() string {
	return "Section 7.2 extension: per-bank Timing-Based RFMs (normalized performance)\n" +
		r.table().String()
}

// CSV returns the machine-readable report.
func (r RFMpbResult) CSV() string { return r.table().CSV() }
