package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pracsim/internal/fault"
)

// ErrLeaseLost reports that the daemon no longer holds the worker's
// lease (expired, restarted, or the job was canceled): the worker
// discards its attempt — the item is someone else's now.
var ErrLeaseLost = errors.New("service: lease lost")

// Client talks to a pracsimd daemon: the worker verbs (lease,
// heartbeat, ack, fail) and the submitter verbs (submit, status, wait,
// results) the CLI and tests share.
type Client struct {
	base  string
	token string
	hc    *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://host:8080"); token may be empty against an open daemon.
func NewClient(base, token string) *Client {
	return &Client{
		base:  strings.TrimRight(base, "/"),
		token: token,
		hc:    &http.Client{Timeout: 5 * time.Minute},
	}
}

// send issues one authenticated request — the client's single HTTP
// boundary (every verb funnels through it).
func (c *Client) send(ctx context.Context, method, path, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: %s %s: %w", method, path, err)
	}
	return resp, nil
}

// do issues one request; a non-nil out decodes a JSON response body.
// HTTP-level errors (non-2xx) come back as *StatusError.
func (c *Client) do(ctx context.Context, method, path string, contentType string, body io.Reader, out any) error {
	resp, err := c.send(ctx, method, path, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// StatusError is a non-2xx daemon response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("service: daemon returned %d: %s", e.Code, e.Msg)
}

// IsStatus reports whether err is a daemon response with the given code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// leaseLost maps the daemon's gone/not-found responses onto
// ErrLeaseLost.
func leaseLost(err error) error {
	if IsStatus(err, http.StatusGone) || IsStatus(err, http.StatusNotFound) {
		return ErrLeaseLost
	}
	return err
}

// Lease polls for a work item; (nil, nil) means the queue is idle.
// The queue.lease failpoint fires here — the worker-side half of the
// grant boundary (the daemon's handler is the other).
func (c *Client) Lease(ctx context.Context, worker string) (*LeaseGrant, error) {
	if act := fault.Fire(fault.QueueLease); act != nil && act.Kind == fault.Err {
		return nil, act.Err("lease request")
	}
	var g LeaseGrant
	err := c.do(ctx, http.MethodPost, "/v1/lease?worker="+worker, "", nil, &g)
	if err != nil {
		return nil, err
	}
	if g.ID == "" { // 204: nothing ready
		return nil, nil
	}
	return &g, nil
}

// Heartbeat renews a lease; ErrLeaseLost means stop working on it.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return leaseLost(c.do(ctx, http.MethodPost, "/v1/lease/"+leaseID+"/heartbeat", "", nil, nil))
}

// Ack uploads the item's shard result file; ErrLeaseLost means the
// work was re-leased and this copy is discarded.
func (c *Client) Ack(ctx context.Context, leaseID, shardFile string, executed int64) error {
	f, err := os.Open(shardFile)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	defer f.Close()
	path := fmt.Sprintf("/v1/lease/%s/ack?executed=%d", leaseID, executed)
	return leaseLost(c.do(ctx, http.MethodPost, path, "application/octet-stream", f, nil))
}

// Fail releases a lease the worker could not complete.
func (c *Client) Fail(ctx context.Context, leaseID, msg string) error {
	return leaseLost(c.do(ctx, http.MethodPost, "/v1/lease/"+leaseID+"/fail", "text/plain", strings.NewReader(msg), nil))
}

// Submit posts a grid spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec GridSpec) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, fmt.Errorf("service: %w", err)
	}
	err = c.do(ctx, http.MethodPost, "/v1/jobs", "application/json", bytes.NewReader(body), &st)
	return st, err
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, "", nil, &st)
	return st, err
}

// Result fetches a finished job's CSV by name (e.g. "fig12.csv").
func (c *Client) Result(ctx context.Context, id, name string) ([]byte, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/jobs/"+id+"/results/"+name, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	return io.ReadAll(resp.Body)
}

// Wait polls a job until it reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err == nil && terminal(st.State) {
			return st, nil
		}
		if err != nil && ctx.Err() != nil {
			return st, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
