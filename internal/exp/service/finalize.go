package service

import (
	"os"
	"path/filepath"

	"pracsim/internal/exp"
)

// startFinalize launches a job's finalize exactly once (the queue's
// finalizeStarted latch gates callers); the semaphore serializes
// finalize sessions so concurrent job completions do not contend for
// cores.
func (s *Server) startFinalize(id string) {
	go func() {
		s.finalizeSem <- struct{}{}
		defer func() { <-s.finalizeSem }()
		s.finalizeJob(id)
	}()
}

// finalizeJob assembles a completed job's results: the acked shard
// files merge into a session over the daemon's store (write-through, so
// the store ends fully warm), each selected experiment renders from the
// warm caches, and the CSVs land under the job directory. With every
// key warm the session executes nothing; FinalizeExecuted reports the
// repair work if results were lost (a wiped store plus missing shard
// files) — correctness never depends on the fast path.
func (s *Server) finalizeJob(id string) {
	exps, scale, ok := s.queue.jobForFinalize(id)
	if !ok {
		return
	}
	sess := exp.NewRunnerWith(scale, exp.SessionOptions{Store: s.store})
	for _, file := range s.queue.ackedFiles(id) {
		// Each file merges independently and best-effort: a missing or
		// corrupt shard file only matters if the store also lost those
		// runs, in which case the session re-executes them below.
		if _, err := os.Stat(file); err != nil {
			s.logf("service: job %s: acked shard file %s missing, relying on store: %v", id, file, err)
			continue
		}
		if _, err := sess.ImportShards(file); err != nil {
			s.logf("service: job %s: merging %s: %v (relying on store)", id, file, err)
		}
	}
	dir := filepath.Join(s.jobDir(id), "results")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.queue.FinalizeDone(id, sess.Executed(), nil, err)
		return
	}
	var results []string
	for _, name := range exps {
		rep, err := sess.Run(name)
		if err != nil {
			s.queue.FinalizeDone(id, sess.Executed(), nil, err)
			return
		}
		csv := name + ".csv"
		if err := os.WriteFile(filepath.Join(dir, csv), []byte(rep.CSV()), 0o644); err != nil {
			s.queue.FinalizeDone(id, sess.Executed(), nil, err)
			return
		}
		results = append(results, csv)
	}
	s.logf("service: job %s done (%d result(s), %d finalize execution(s))", id, len(results), sess.Executed())
	s.queue.FinalizeDone(id, sess.Executed(), results, nil)
}
