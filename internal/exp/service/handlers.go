package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/shard"
	"pracsim/internal/fault"
	"pracsim/internal/httpd"
	"pracsim/internal/sim"
)

// maxSpecBytes bounds a grid-spec body; a spec is a few hundred bytes.
const maxSpecBytes = 64 << 10

// maxShardBytes bounds an acked shard-file upload. A full-scale shard
// file is tens of MB at most.
const maxShardBytes = 256 << 20

// fireDelay applies a fired failpoint's Delay kind, bounded by the
// request's lifetime, and reports whether the action was an error.
func fireDelay(act *fault.Action, r *http.Request) {
	if act != nil && act.Kind == fault.Delay {
		select {
		case <-time.After(act.Value):
		case <-r.Context().Done():
		}
	}
}

// writeJSON sends a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit accepts a grid spec, dedupes it against the store, and
// queues the cold shard slices.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The service.submit failpoint fails the submission before anything
	// is journaled — the client retries and gets a fresh job id, exactly
	// like any pre-accept 500.
	act := fault.Fire(fault.ServiceSubmit)
	if act != nil && act.Kind == fault.Err {
		http.Error(w, act.Err("submit").Error(), http.StatusInternalServerError)
		return
	}
	fireDelay(act, r)
	var spec GridSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad grid spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	exps, scale, err := spec.normalize(s.opts.Scales)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scale.Workers = s.opts.Workers
	keys, err := exp.GridKeys(exps, scale)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The dedup probe: a key whose Stat succeeds is warm; any error —
	// absent, corrupt, unreadable — degrades to cold, which only costs
	// (re-)execution. Shard slices owning no cold key enqueue nothing.
	cold := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, serr := s.store.Backend().Stat(k); serr != nil {
			cold = append(cold, k)
		}
	}
	var items []shard.Spec
	for i := 0; i < spec.Shards; i++ {
		sp := shard.Spec{Index: i, Count: spec.Shards}
		for _, k := range cold {
			if sp.Owns(k) {
				items = append(items, sp)
				break
			}
		}
	}
	token := httpd.Token(r.Context())
	st, err := s.queue.Submit(token, spec, exps, scale, len(keys), len(keys)-len(cold), items)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrQuota):
			code = http.StatusTooManyRequests
		case errors.Is(err, ErrClosed):
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.logf("service: job %s submitted (%s, scale %s, %d/%d keys cold, %d item(s))",
		st.ID, strings.Join(exps, ","), spec.Scale, len(cold), len(keys), len(items))
	if st.State == StateFinalizing {
		s.startFinalize(st.ID)
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.List(httpd.Token(r.Context()))
	if jobs == nil {
		jobs = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.queue.Status(r.PathValue("id"), httpd.Token(r.Context()))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.queue.Cancel(r.PathValue("id"), httpd.Token(r.Context()))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's status transitions as server-sent
// events: one `event: status` per transition, `event: done` with the
// final state when the job reaches a terminal one.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel, ok := s.queue.Subscribe(r.PathValue("id"), httpd.Token(r.Context()))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func(event string, st JobStatus) bool {
		data, _ := json.Marshal(st)
		_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
		return err == nil
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case st, open := <-ch:
			if !open {
				// Terminal transition: the channel closed after its last
				// event; re-fetch the final state for the done marker.
				if final, ok := s.queue.Status(r.PathValue("id"), httpd.Token(r.Context())); ok {
					emit("done", final)
				}
				return
			}
			// The service.stream failpoint drops the SSE connection
			// mid-stream (err) or stalls it (delay) — the client falls
			// back to polling; job state is untouched.
			act := fault.Fire(fault.ServiceStream)
			if act != nil && act.Kind == fault.Err {
				return
			}
			fireDelay(act, r)
			if !emit("status", st) {
				return
			}
			if terminal(st.State) {
				emit("done", st)
				return
			}
		}
	}
}

// resultName validates a results path segment: an experiment CSV name,
// nothing that can traverse.
func resultName(name string) bool {
	base, ok := strings.CutSuffix(name, ".csv")
	if !ok {
		return false
	}
	for _, e := range exp.Experiments() {
		if base == e {
			return true
		}
	}
	return false
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	st, ok := s.queue.Status(id, httpd.Token(r.Context()))
	if !ok || !resultName(name) {
		http.Error(w, "no such result", http.StatusNotFound)
		return
	}
	if st.State != StateDone {
		http.Error(w, fmt.Sprintf("job is %s, results exist once it is done", st.State), http.StatusConflict)
		return
	}
	//praclint:allow failpoint serving a finalized, immutable CSV; the chaos surface is the job pipeline (service.submit, queue.lease, queue.ack, service.stream), not a static file read
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "results", name))
	if err != nil {
		http.Error(w, "no such result", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Write(data)
}

// handleLease grants the next work item to a pull worker; 204 when the
// queue has nothing ready.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	// The queue.lease failpoint fails or delays the grant — the worker's
	// poll loop absorbs it with retry pacing.
	act := fault.Fire(fault.QueueLease)
	if act != nil && act.Kind == fault.Err {
		http.Error(w, act.Err("lease").Error(), http.StatusInternalServerError)
		return
	}
	fireDelay(act, r)
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		worker = r.RemoteAddr
	}
	grant, ok := s.queue.Lease(worker, time.Now())
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.logf("service: job %s item %s leased to %s (%s)", grant.Job, grant.Item, worker, grant.ID)
	writeJSON(w, http.StatusOK, grant)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.queue.Heartbeat(r.PathValue("id"), time.Now()) {
		http.Error(w, ErrNoLease.Error(), http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleAck accepts a completed work item's shard result file: the file
// is validated, stored durably under the job's directory, its runs are
// imported into the daemon's store (warming the dedup oracle), and the
// item completes. The last item of a job kicks finalize.
func (s *Server) handleAck(w http.ResponseWriter, r *http.Request) {
	// The queue.ack failpoint fails the delivery — the worker retries;
	// past its budget the lease expires and the item re-leases.
	act := fault.Fire(fault.QueueAck)
	if act != nil && act.Kind == fault.Err {
		http.Error(w, act.Err("ack").Error(), http.StatusInternalServerError)
		return
	}
	fireDelay(act, r)
	leaseID := r.PathValue("id")
	executed, _ := strconv.ParseInt(r.URL.Query().Get("executed"), 10, 64)
	// Peek the lease before the expensive body work; the authoritative
	// check is the queue.Ack below.
	if !s.queue.Heartbeat(leaseID, time.Now()) {
		http.Error(w, ErrNoLease.Error(), http.StatusGone)
		return
	}
	path, runs, err := s.saveShardFile(leaseID, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	imported := s.importShardFile(path)
	out, err := s.queue.Ack(leaseID, path, runs, executed)
	if err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	s.logf("service: job %s item %s acked (%d runs, %d executed, %d imported to store)",
		out.Job, out.Item, runs, executed, imported)
	if out.Ready {
		s.startFinalize(out.Job)
	}
	w.WriteHeader(http.StatusNoContent)
}

// saveShardFile persists an ack body under the lease's job directory
// (atomically: temp + rename) and validates it as a shard file of this
// simulator's schema.
func (s *Server) saveShardFile(leaseID string, r *http.Request) (path string, runs int, err error) {
	jobID, item, ok := s.queue.leaseTarget(leaseID)
	if !ok {
		return "", 0, ErrNoLease
	}
	dir := filepath.Join(s.jobDir(jobID), "shards")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("service: %w", err)
	}
	path = filepath.Join(dir, strings.ReplaceAll(item, "/", "-of-")+".runs")
	tmp := fmt.Sprintf("%s.tmp%d", path, os.Getpid())
	f, err := os.Create(tmp)
	if err != nil {
		return "", 0, fmt.Errorf("service: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename
	_, cerr := f.ReadFrom(http.MaxBytesReader(nil, r.Body, maxShardBytes))
	if cerr == nil {
		cerr = f.Close()
	} else {
		f.Close()
	}
	if cerr != nil {
		return "", 0, fmt.Errorf("service: reading shard upload: %w", cerr)
	}
	// Validate before publishing: format, schema, per-entry decode, the
	// header run count. A torn or stale upload never lands.
	runs, err = shard.Validate(tmp, sim.SchemaVersion)
	if err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", 0, fmt.Errorf("service: %w", err)
	}
	return path, runs, nil
}

// importShardFile writes a validated shard file's runs through to the
// daemon's store — the dedup oracle and the durable result layer.
// Best-effort, Stat-before-Put: a warm entry is skipped, a failed Put
// costs a future re-execution, never this ack.
func (s *Server) importShardFile(path string) int {
	entries, err := shard.ReadFile(path, sim.SchemaVersion)
	if err != nil {
		s.logf("service: re-reading %s for store import: %v", path, err)
		return 0
	}
	n := 0
	for _, e := range entries {
		if _, serr := s.store.Backend().Stat(e.Key); serr == nil {
			continue
		}
		if s.store.Put(e.Key, e.Payload) == nil {
			n++
		}
	}
	return n
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	msg, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
	if err := s.queue.Fail(r.PathValue("id"), strings.TrimSpace(string(msg)), time.Now()); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
