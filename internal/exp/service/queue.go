package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/shard"
	"pracsim/internal/retry"
)

// Job states. A job moves queued → running → finalizing → done; failed
// and canceled are the other terminal states.
const (
	StateQueued     = "queued"
	StateRunning    = "running"
	StateFinalizing = "finalizing"
	StateDone       = "done"
	StateFailed     = "failed"
	StateCanceled   = "canceled"
)

// terminal reports whether a job state accepts no further transitions.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Queue errors the HTTP layer maps onto status codes.
var (
	// ErrQuota rejects a submission that would exceed the token's
	// concurrent-job quota (429).
	ErrQuota = errors.New("service: active-job quota exceeded")
	// ErrNoLease rejects an ack/heartbeat/fail for a lease this daemon
	// does not hold — expired, already acked, or voided by a restart.
	// The worker discards its attempt; the item is (or will be) re-leased.
	ErrNoLease = errors.New("service: unknown or expired lease")
	// ErrClosed rejects operations on a draining queue.
	ErrClosed = errors.New("service: queue is draining")
)

// JobStatus is the wire form of a job's state — what GET /v1/jobs/{id}
// returns and what every SSE event carries.
type JobStatus struct {
	ID       string   `json:"id"`
	State    string   `json:"state"`
	Priority int      `json:"priority"`
	Exps     []string `json:"exps"`
	Scale    string   `json:"scale"`
	// Items counts this job's shard work items; a fully-warm grid has
	// zero and goes straight to finalizing.
	Items   int `json:"items"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Acked   int `json:"acked"`
	// TotalKeys is the grid's distinct run-key count; WarmKeys of those
	// were already in the store at submission.
	TotalKeys int `json:"total_keys"`
	WarmKeys  int `json:"warm_keys"`
	// Executed sums the simulations workers actually ran for this job
	// (store hits excluded); FinalizeExecuted counts runs the finalize
	// session had to execute itself (0 unless results were lost).
	Executed         int64    `json:"executed"`
	FinalizeExecuted int64    `json:"finalize_executed"`
	Results          []string `json:"results,omitempty"`
	Error            string   `json:"error,omitempty"`
}

// LeaseGrant is the wire form of a leased work item: everything a pull
// worker needs to execute its shard slice of the grid and nothing more.
// Scale budgets travel resolved (not by name) so workers never need the
// daemon's scale table.
type LeaseGrant struct {
	ID        string   `json:"id"`
	Job       string   `json:"job"`
	Item      string   `json:"item"` // shard "i/n"
	Exps      []string `json:"exps"`
	Warmup    int64    `json:"warmup"`
	Measured  int64    `json:"measured"`
	Workloads []string `json:"workloads"`
	// TTLSecs is the lease's heartbeat budget: miss it and the item is
	// re-leased to someone else.
	TTLSecs int `json:"ttl_secs"`
}

// item states.
const (
	itemPending = iota
	itemLeased
	itemAcked
)

// workItem is one shard slice of a job's grid.
type workItem struct {
	shard     shard.Spec
	state     int
	attempts  int       // lease grants so far (journal-replayed across restarts)
	notBefore time.Time // requeue pacing after an expiry or failure
	file      string    // acked shard result file
	runs      int       // runs in the acked file
}

// job is the queue's record of one submitted grid.
type job struct {
	id       string
	token    string
	priority int
	spec     GridSpec
	exps     []string
	scale    exp.Scale
	state    string
	items    []*workItem
	seq      int // submission order within a priority (FIFO per token)

	totalKeys, warmKeys int
	executed            int64 // worker-reported new simulations
	finalizeExec        int64
	errMsg              string
	results             []string
	finalizeStarted     bool

	subs map[chan JobStatus]struct{}
}

// lease is one outstanding grant.
type lease struct {
	id      string
	job     *job
	item    int
	worker  string
	expires time.Time
}

// QueueOptions configures the job queue.
type QueueOptions struct {
	// Journal persists submissions, grants and acks; required.
	Journal *journal.Journal
	// LeaseTTL is how long a worker may go without a heartbeat before
	// its item is re-leased (default 30s).
	LeaseTTL time.Duration
	// Attempts is the per-item lease budget; an item granted this many
	// times without an ack fails its job (default 3).
	Attempts int
	// Quota caps a token's concurrently active jobs (0 = unlimited).
	Quota int
	// Requeue paces re-leasing after an expiry or failure, so a
	// crash-looping worker does not hot-spin one item.
	Requeue retry.Policy
}

// Queue is the journal-backed job/work-item state machine. All methods
// are safe for concurrent use; journal appends and event delivery happen
// outside the state lock.
type Queue struct {
	opts QueueOptions

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job // submission order
	leases  map[string]*lease
	jobSeq  int // persistent: restored from journaled ids
	leaseSe int // process-local: restarts void leases
	rr      map[int]string // per-priority round-robin cursor (last token served)
	closed  bool

	// counters for /metrics, guarded by mu
	submits, dedupJobs, grants, acks, expiries, itemFails int64
}

// NewQueue builds an empty queue; Restore folds journal state in.
func NewQueue(opts QueueOptions) *Queue {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.Requeue.Base <= 0 {
		opts.Requeue = retry.Policy{Base: 500 * time.Millisecond, Max: 10 * time.Second}
	}
	return &Queue{
		opts:   opts,
		jobs:   make(map[string]*job),
		leases: make(map[string]*lease),
		rr:     make(map[int]string),
	}
}

// statusLocked snapshots a job for the wire.
func statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID: j.id, State: j.state, Priority: j.priority,
		Exps: j.exps, Scale: j.spec.Scale,
		Items: len(j.items), TotalKeys: j.totalKeys, WarmKeys: j.warmKeys,
		Executed: j.executed, FinalizeExecuted: j.finalizeExec,
		Results: j.results, Error: j.errMsg,
	}
	for _, it := range j.items {
		switch it.state {
		case itemPending:
			st.Pending++
		case itemLeased:
			st.Leased++
		case itemAcked:
			st.Acked++
		}
	}
	return st
}

// publishLocked delivers a job's current status to its subscribers
// (non-blocking: a slow SSE consumer drops intermediate events, never
// stalls the queue) and, on a terminal transition, closes them — the
// stream's end-of-job marker.
func publishLocked(j *job) {
	st := statusLocked(j)
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
	if terminal(j.state) {
		for ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
}

// activeLocked counts a token's non-terminal jobs.
func (q *Queue) activeLocked(token string) int {
	n := 0
	for _, j := range q.order {
		if j.token == token && !terminal(j.state) {
			n++
		}
	}
	return n
}

// Submit registers a validated, store-deduped job: items lists the
// shard slices that still own cold keys (empty for a fully-warm grid,
// which goes straight to finalizing). The returned status's State tells
// the caller whether to kick finalize.
func (q *Queue) Submit(token string, spec GridSpec, exps []string, scale exp.Scale, totalKeys, warmKeys int, items []shard.Spec) (JobStatus, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if q.opts.Quota > 0 && q.activeLocked(token) >= q.opts.Quota {
		q.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w (%d active)", ErrQuota, q.opts.Quota)
	}
	q.jobSeq++
	q.submits++
	j := &job{
		id:       fmt.Sprintf("j%d", q.jobSeq),
		token:    token,
		priority: spec.Priority,
		spec:     spec,
		exps:     exps,
		scale:    scale,
		state:    StateQueued,
		seq:      q.jobSeq,
		totalKeys: totalKeys,
		warmKeys:  warmKeys,
		subs:      make(map[chan JobStatus]struct{}),
	}
	for _, sp := range items {
		j.items = append(j.items, &workItem{shard: sp})
	}
	if len(j.items) == 0 {
		// Every key is warm: no work to hand out, just assembly. The
		// caller sees StateFinalizing and kicks finalize exactly once.
		j.state = StateFinalizing
		j.finalizeStarted = true
		q.dedupJobs++
	}
	q.jobs[j.id] = j
	q.order = append(q.order, j)
	st := statusLocked(j)
	q.mu.Unlock()

	// The submission record is what makes the id durable — AppendJob
	// syncs before Submit's caller can hand the id to the client.
	_ = q.opts.Journal.AppendJob(journal.JobRecord{
		ID: j.id, Token: token, Priority: spec.Priority, Spec: spec.encode(),
	})
	return st, nil
}

// readyLocked reports whether an item can be granted now.
func readyLocked(j *job, it *workItem, now time.Time) bool {
	return !terminal(j.state) && j.state != StateFinalizing &&
		it.state == itemPending && !now.Before(it.notBefore)
}

// Lease grants the next work item to a worker, or reports none ready.
// Selection is by priority level first; within a level, tokens take
// round-robin turns (one tenant's burst of low-priority grids cannot
// starve another's), and within a token, jobs go FIFO.
func (q *Queue) Lease(worker string, now time.Time) (*LeaseGrant, bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, false
	}
	var (
		grant *LeaseGrant
		lr    journal.LeaseRecord
	)
	for prio := PriorityHigh; prio <= PriorityLow && grant == nil; prio++ {
		// Distinct tokens with a ready item at this priority, sorted for
		// a stable round-robin orbit.
		var tokens []string
		seen := map[string]bool{}
		for _, j := range q.order {
			if j.priority != prio || seen[j.token] {
				continue
			}
			for _, it := range j.items {
				if readyLocked(j, it, now) {
					tokens = append(tokens, j.token)
					seen[j.token] = true
					break
				}
			}
		}
		if len(tokens) == 0 {
			continue
		}
		sort.Strings(tokens)
		start := 0
		if last, ok := q.rr[prio]; ok {
			// The first token strictly after the last one served, wrapping.
			start = sort.SearchStrings(tokens, last)
			if start < len(tokens) && tokens[start] == last {
				start++
			}
			start %= len(tokens)
		}
		tok := tokens[start]
		q.rr[prio] = tok
		for _, j := range q.order { // FIFO within the token
			if j.token != tok || j.priority != prio {
				continue
			}
			for i, it := range j.items {
				if !readyLocked(j, it, now) {
					continue
				}
				it.state = itemLeased
				it.attempts++
				if j.state == StateQueued {
					j.state = StateRunning
				}
				q.leaseSe++
				l := &lease{
					id: fmt.Sprintf("l%d", q.leaseSe), job: j, item: i,
					worker: worker, expires: now.Add(q.opts.LeaseTTL),
				}
				q.leases[l.id] = l
				q.grants++
				grant = &LeaseGrant{
					ID: l.id, Job: j.id, Item: it.shard.String(),
					Exps: j.exps, Warmup: j.scale.Warmup, Measured: j.scale.Measured,
					Workloads: j.scale.Workloads,
					TTLSecs:   int(q.opts.LeaseTTL / time.Second),
				}
				lr = journal.LeaseRecord{Job: j.id, Item: it.shard.String(), Worker: worker}
				publishLocked(j)
				break
			}
			if grant != nil {
				break
			}
		}
	}
	q.mu.Unlock()
	if grant == nil {
		return nil, false
	}
	// Unsynced append: losing it costs an attempt count after a crash,
	// never work.
	_ = q.opts.Journal.AppendLease(lr)
	return grant, true
}

// Heartbeat extends a lease.
func (q *Queue) Heartbeat(leaseID string, now time.Time) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[leaseID]
	if !ok {
		return false
	}
	l.expires = now.Add(q.opts.LeaseTTL)
	return true
}

// AckOutcome reports what an ack did.
type AckOutcome struct {
	Job  string
	Item string
	// Ready means this was the job's last outstanding item: the caller
	// must kick finalize exactly once.
	Ready bool
}

// Ack completes a leased item with its validated shard result file.
// Idempotent per item: a duplicate ack (a straggler's late retry after
// re-lease) is absorbed without double-counting.
func (q *Queue) Ack(leaseID, file string, runs int, executed int64) (AckOutcome, error) {
	q.mu.Lock()
	l, ok := q.leases[leaseID]
	if !ok {
		q.mu.Unlock()
		return AckOutcome{}, ErrNoLease
	}
	delete(q.leases, leaseID)
	j := l.job
	it := j.items[l.item]
	out := AckOutcome{Job: j.id, Item: it.shard.String()}
	if terminal(j.state) || it.state == itemAcked {
		q.mu.Unlock()
		return out, nil
	}
	it.state = itemAcked
	it.file = file
	it.runs = runs
	j.executed += executed
	q.acks++
	allAcked := true
	for _, o := range j.items {
		if o.state != itemAcked {
			allAcked = false
			break
		}
	}
	if allAcked {
		j.state = StateFinalizing
		if !j.finalizeStarted {
			j.finalizeStarted = true
			out.Ready = true
		}
	}
	publishLocked(j)
	q.mu.Unlock()

	// Synced append: an acked item is the checkpoint a restarted daemon
	// must not re-execute.
	_ = q.opts.Journal.AppendAck(journal.AckRecord{
		Job: j.id, Item: out.Item, File: file, Runs: runs, Exec: executed,
	})
	return out, nil
}

// requeueLocked returns a leased item to the pending pool with backoff
// pacing, failing the whole job when the item's attempt budget is
// exhausted. Returns the job's terminal record to journal, if any.
func (q *Queue) requeueLocked(l *lease, now time.Time, cause string) (rec *journal.JobRecord) {
	j := l.job
	it := j.items[l.item]
	delete(q.leases, l.id)
	if terminal(j.state) || it.state != itemLeased {
		return nil
	}
	if it.attempts >= q.opts.Attempts {
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("item %s: %s after %d attempts", it.shard, cause, it.attempts)
		q.itemFails++
		publishLocked(j)
		return &journal.JobRecord{ID: j.id, Status: StateFailed, Msg: j.errMsg}
	}
	it.state = itemPending
	it.notBefore = now.Add(q.opts.Requeue.Delay(j.id+"/"+it.shard.String(), it.attempts))
	publishLocked(j)
	return nil
}

// Fail releases a lease a worker could not complete; the item requeues
// (or fails its job past the attempt budget).
func (q *Queue) Fail(leaseID, msg string, now time.Time) error {
	q.mu.Lock()
	l, ok := q.leases[leaseID]
	if !ok {
		q.mu.Unlock()
		return ErrNoLease
	}
	rec := q.requeueLocked(l, now, "worker failure: "+msg)
	q.mu.Unlock()
	if rec != nil {
		_ = q.opts.Journal.AppendJob(*rec)
	}
	return nil
}

// Sweep requeues every expired lease; the server's ticker calls it.
// It reports the items it requeued, for the daemon log.
func (q *Queue) Sweep(now time.Time) []string {
	q.mu.Lock()
	var expired []*lease
	for _, l := range q.leases {
		if now.After(l.expires) {
			expired = append(expired, l)
		}
	}
	var requeued []string
	var recs []journal.JobRecord
	for _, l := range expired {
		q.expiries++
		requeued = append(requeued, l.job.id+"/"+l.job.items[l.item].shard.String())
		if rec := q.requeueLocked(l, now, "lease expired"); rec != nil {
			recs = append(recs, *rec)
		}
	}
	q.mu.Unlock()
	sort.Strings(requeued)
	for _, rec := range recs {
		_ = q.opts.Journal.AppendJob(rec)
	}
	return requeued
}

// FinalizeDone records a finalize outcome as the job's terminal state.
func (q *Queue) FinalizeDone(id string, executed int64, results []string, ferr error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || terminal(j.state) {
		q.mu.Unlock()
		return
	}
	j.finalizeExec = executed
	if ferr != nil {
		j.state = StateFailed
		j.errMsg = "finalize: " + ferr.Error()
	} else {
		j.state = StateDone
		j.results = results
	}
	rec := journal.JobRecord{ID: j.id, Status: j.state, Runs: int(j.executed + executed), Msg: j.errMsg}
	publishLocked(j)
	q.mu.Unlock()
	_ = q.opts.Journal.AppendJob(rec)
}

// Cancel terminates a job; its outstanding leases are voided (late acks
// are absorbed as no-ops). Only the submitting token may cancel.
func (q *Queue) Cancel(id, token string) (JobStatus, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.token != token {
		q.mu.Unlock()
		return JobStatus{}, false
	}
	if terminal(j.state) {
		st := statusLocked(j)
		q.mu.Unlock()
		return st, true
	}
	j.state = StateCanceled
	for lid, l := range q.leases {
		if l.job == j {
			delete(q.leases, lid)
		}
	}
	publishLocked(j)
	st := statusLocked(j)
	q.mu.Unlock()
	_ = q.opts.Journal.AppendJob(journal.JobRecord{ID: id, Status: StateCanceled})
	return st, true
}

// Status returns a job visible to the token.
func (q *Queue) Status(id, token string) (JobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.token != token {
		return JobStatus{}, false
	}
	return statusLocked(j), true
}

// List returns the token's jobs in submission order.
func (q *Queue) List(token string) []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []JobStatus
	for _, j := range q.order {
		if j.token == token {
			out = append(out, statusLocked(j))
		}
	}
	return out
}

// Subscribe attaches an event stream to a job: the current status
// arrives first, every transition after, and the channel closes on the
// terminal one. The cancel func detaches an abandoned stream.
func (q *Queue) Subscribe(id, token string) (<-chan JobStatus, func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.token != token {
		return nil, nil, false
	}
	ch := make(chan JobStatus, 16)
	ch <- statusLocked(j)
	if terminal(j.state) {
		close(ch)
		return ch, func() {}, true
	}
	j.subs[ch] = struct{}{}
	cancel := func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		delete(j.subs, ch)
	}
	return ch, cancel, true
}

// Item returns an acked item's result file for finalize.
func (q *Queue) ackedFiles(id string) []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil
	}
	var files []string
	for _, it := range j.items {
		if it.state == itemAcked && it.file != "" {
			files = append(files, it.file)
		}
	}
	return files
}

// leaseTarget names the job and item a live lease covers.
func (q *Queue) leaseTarget(leaseID string) (jobID, item string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, found := q.leases[leaseID]
	if !found {
		return "", "", false
	}
	return l.job.id, l.job.items[l.item].shard.String(), true
}

// allFinalizing lists jobs in the finalizing state — what a restarted
// server must assemble on start.
func (q *Queue) allFinalizing() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	var ids []string
	for _, j := range q.order {
		if j.state == StateFinalizing {
			ids = append(ids, j.id)
		}
	}
	return ids
}

// jobForFinalize returns what finalize needs without exposing the job.
func (q *Queue) jobForFinalize(id string) (exps []string, scale exp.Scale, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, found := q.jobs[id]
	if !found {
		return nil, exp.Scale{}, false
	}
	return j.exps, j.scale, true
}

// Depth snapshots the queue gauges for /metrics.
type Depth struct {
	Pending, Leased, ActiveJobs int
	Submits, DedupJobs, Grants, Acks, Expiries, ItemFails int64
}

// Stats snapshots queue depth and traffic.
func (q *Queue) Stats() Depth {
	q.mu.Lock()
	defer q.mu.Unlock()
	d := Depth{
		Leased: len(q.leases),
		Submits: q.submits, DedupJobs: q.dedupJobs, Grants: q.grants,
		Acks: q.acks, Expiries: q.expiries, ItemFails: q.itemFails,
	}
	for _, j := range q.order {
		if terminal(j.state) {
			continue
		}
		d.ActiveJobs++
		for _, it := range j.items {
			if it.state == itemPending {
				d.Pending++
			}
		}
	}
	return d
}

// Close drains the queue: no new submissions or grants; outstanding
// state is already journaled.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// RestoreSummary reports what a queue adopted from its journal.
type RestoreSummary struct {
	// Jobs counts adopted jobs (terminal ones included).
	Jobs int
	// Terminal of those were already done/failed/canceled.
	Terminal int
	// ItemsAcked counts completed work items adopted — exactly the work
	// a restart does not redo.
	ItemsAcked int
	// ItemsRequeued counts items that were pending or leased at the
	// crash; leases are voided, the items re-lease from scratch.
	ItemsRequeued int
	// Finalizing lists jobs whose work is complete but whose results
	// were never assembled — the server kicks their finalize on start.
	Finalizing []string
}

// Restore folds replayed journal records into the queue: submissions
// re-expand (the journal fingerprint pins schema and scale table, so a
// spec that validated once validates again), terminal transitions
// retire, acks mark their items complete, and lease grants count toward
// attempt budgets. Live leases are not restored — a restarted daemon
// cannot heartbeat-check workers it never talked to, so unacked items
// simply re-lease.
func (q *Queue) Restore(rec *journal.Recovery, scales map[string]exp.Scale) (RestoreSummary, error) {
	var sum RestoreSummary
	if rec == nil {
		return sum, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, jr := range rec.Jobs {
		if jr.Status != "" { // terminal transition for an earlier id
			if j, ok := q.jobs[jr.ID]; ok && !terminal(j.state) {
				j.state = jr.Status
				j.errMsg = jr.Msg
			}
			continue
		}
		spec, err := decodeSpec(jr.Spec)
		if err != nil {
			return sum, fmt.Errorf("restoring %s: %w", jr.ID, err)
		}
		exps, scale, err := spec.normalize(scales)
		if err != nil {
			return sum, fmt.Errorf("restoring %s: %w", jr.ID, err)
		}
		total, err := exp.GridKeys(exps, scale)
		if err != nil {
			return sum, fmt.Errorf("restoring %s: %w", jr.ID, err)
		}
		j := &job{
			id: jr.ID, token: jr.Token, priority: jr.Priority,
			spec: spec, exps: exps, scale: scale,
			state: StateQueued, totalKeys: len(total),
			subs: make(map[chan JobStatus]struct{}),
		}
		// A numeric id beyond the counter advances it; ids never reuse.
		var n int
		if _, err := fmt.Sscanf(jr.ID, "j%d", &n); err == nil && n > q.jobSeq {
			q.jobSeq = n
		}
		j.seq = n
		for i := 0; i < spec.Shards; i++ {
			j.items = append(j.items, &workItem{shard: shard.Spec{Index: i, Count: spec.Shards}})
		}
		q.jobs[j.id] = j
		q.order = append(q.order, j)
	}
	itemOf := func(jobID, item string) (*job, *workItem) {
		j, ok := q.jobs[jobID]
		if !ok {
			return nil, nil
		}
		for _, it := range j.items {
			if it.shard.String() == item {
				return j, it
			}
		}
		return nil, nil
	}
	for _, lr := range rec.Leases {
		if _, it := itemOf(lr.Job, lr.Item); it != nil {
			it.attempts++
		}
	}
	for _, ar := range rec.Acks {
		j, it := itemOf(ar.Job, ar.Item)
		if it == nil || it.state == itemAcked {
			continue
		}
		it.state = itemAcked
		it.file = ar.File
		it.runs = ar.Runs
		j.executed += ar.Exec
	}
	for _, j := range q.order {
		sum.Jobs++
		if terminal(j.state) {
			sum.Terminal++
			continue
		}
		acked := 0
		for _, it := range j.items {
			if it.state == itemAcked {
				acked++
			} else {
				sum.ItemsRequeued++
			}
		}
		sum.ItemsAcked += acked
		switch {
		case acked == len(j.items):
			// Work complete, results never assembled: finalize on start.
			j.state = StateFinalizing
			j.finalizeStarted = true
			sum.Finalizing = append(sum.Finalizing, j.id)
		case acked > 0:
			j.state = StateRunning
		}
	}
	return sum, nil
}

// String renders the restore summary as the daemon's one-line resume log.
func (s RestoreSummary) String() string {
	return fmt.Sprintf("queue resumed: %d job(s) (%d terminal), %d item(s) acked adopted, %d item(s) requeued, %d finalize(s) pending",
		s.Jobs, s.Terminal, s.ItemsAcked, s.ItemsRequeued, len(s.Finalizing))
}
