package service

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/shard"
	"pracsim/internal/retry"
	"pracsim/internal/sim"
)

// testScales injects a budget small enough that restore-time GridKeys
// enumeration (and, in the service tests, actual execution) stays fast.
func testScales() map[string]exp.Scale {
	return map[string]exp.Scale{
		"tiny": {Warmup: 1_000, Measured: 2_000, Workloads: []string{"433.milc"}},
	}
}

// openQueueJournal opens (or reopens) the queue journal under dir,
// exactly as service.New does.
func openQueueJournal(t *testing.T, dir string) (*journal.Journal, *journal.Recovery) {
	t.Helper()
	jl, rec, err := journal.Open(filepath.Join(dir, "queue.journal"), journal.Options{
		Schema:      sim.SchemaVersion,
		Fingerprint: journal.Fingerprint(queueFingerprint),
	})
	if err != nil {
		t.Fatal(err)
	}
	return jl, rec
}

// newTestQueue builds a queue over a fresh (or existing) journal in dir
// and folds any replayed state in.
func newTestQueue(t *testing.T, dir string, opts QueueOptions) (*Queue, RestoreSummary) {
	t.Helper()
	jl, rec := openQueueJournal(t, dir)
	t.Cleanup(func() { jl.Close() })
	opts.Journal = jl
	q := NewQueue(opts)
	sum, err := q.Restore(rec, testScales())
	if err != nil {
		t.Fatal(err)
	}
	return q, sum
}

// submitJob registers a normalized tiny-grid job the way handleSubmit
// does, with every shard slice as a cold work item.
func submitJob(t *testing.T, q *Queue, token string, prio, shards int) JobStatus {
	t.Helper()
	spec := GridSpec{Exps: []string{"fig12"}, Scale: "tiny", Shards: shards, Priority: prio}
	exps, scale, err := spec.normalize(testScales())
	if err != nil {
		t.Fatal(err)
	}
	var items []shard.Spec
	for i := 0; i < shards; i++ {
		items = append(items, shard.Spec{Index: i, Count: shards})
	}
	st, err := q.Submit(token, spec, exps, scale, 8, 0, items)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestQueuePriorityBeforeFairness(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{})
	now := time.Now()
	normal := submitJob(t, q, "a", PriorityNormal, 1)
	high := submitJob(t, q, "b", PriorityHigh, 1)
	low := submitJob(t, q, "c", PriorityLow, 1)

	var got []string
	for i := 0; i < 3; i++ {
		g, ok := q.Lease("w", now)
		if !ok {
			t.Fatalf("lease %d: nothing ready", i)
		}
		got = append(got, g.Job)
	}
	want := []string{high.ID, normal.ID, low.ID}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lease order = %v, want %v (high before normal before low)", got, want)
		}
	}
	if _, ok := q.Lease("w", now); ok {
		t.Error("empty queue still granted a lease")
	}
}

func TestQueueRoundRobinTokenFairness(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{})
	now := time.Now()
	// Token a floods the queue first; token b arrives after. Round-robin
	// within the priority level must alternate tokens, not drain a's
	// backlog first.
	a1 := submitJob(t, q, "a", PriorityNormal, 2)
	a2 := submitJob(t, q, "a", PriorityNormal, 2)
	b1 := submitJob(t, q, "b", PriorityNormal, 2)

	owner := map[string]string{a1.ID: "a", a2.ID: "a", b1.ID: "b"}
	var tokens []string
	for i := 0; i < 6; i++ {
		g, ok := q.Lease("w", now)
		if !ok {
			t.Fatalf("lease %d: nothing ready", i)
		}
		tokens = append(tokens, owner[g.Job])
	}
	// b has 2 items to a's 4: strict alternation while both have work,
	// then a's remainder.
	want := []string{"a", "b", "a", "b", "a", "a"}
	for i := range want {
		if tokens[i] != want[i] {
			t.Fatalf("token service order = %v, want %v", tokens, want)
		}
	}
}

func TestQueueQuota(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{Quota: 1})
	st := submitJob(t, q, "a", PriorityNormal, 1)
	spec := GridSpec{Exps: []string{"fig12"}, Scale: "tiny", Shards: 1, Priority: PriorityNormal}
	exps, scale, err := spec.normalize(testScales())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("a", spec, exps, scale, 8, 0, []shard.Spec{{Index: 0, Count: 1}}); !errors.Is(err, ErrQuota) {
		t.Fatalf("second active job: err = %v, want ErrQuota", err)
	}
	// The quota is per token, and a terminal job frees its slot.
	submitJob(t, q, "b", PriorityNormal, 1)
	if _, ok := q.Cancel(st.ID, "a"); !ok {
		t.Fatal("cancel failed")
	}
	submitJob(t, q, "a", PriorityNormal, 1)
}

func TestQueueAckFlow(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{})
	now := time.Now()
	st := submitJob(t, q, "a", PriorityNormal, 2)

	g1, ok := q.Lease("w1", now)
	if !ok {
		t.Fatal("no lease")
	}
	g2, ok := q.Lease("w2", now)
	if !ok {
		t.Fatal("no second lease")
	}
	if g1.Item == g2.Item {
		t.Fatalf("both leases granted item %s", g1.Item)
	}
	out, err := q.Ack(g1.ID, "f1", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ready {
		t.Error("first of two acks reported Ready")
	}
	if cur, _ := q.Status(st.ID, "a"); cur.State != StateRunning || cur.Acked != 1 {
		t.Errorf("after first ack: state %s acked %d, want running/1", cur.State, cur.Acked)
	}
	// A consumed lease is gone: duplicate acks and heartbeats bounce.
	if _, err := q.Ack(g1.ID, "f1", 4, 3); !errors.Is(err, ErrNoLease) {
		t.Errorf("duplicate ack err = %v, want ErrNoLease", err)
	}
	if q.Heartbeat(g1.ID, now) {
		t.Error("heartbeat on a consumed lease succeeded")
	}
	out, err = q.Ack(g2.ID, "f2", 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ready {
		t.Error("last ack did not report Ready")
	}
	cur, _ := q.Status(st.ID, "a")
	if cur.State != StateFinalizing || cur.Executed != 8 {
		t.Errorf("after last ack: state %s executed %d, want finalizing/8", cur.State, cur.Executed)
	}
	q.FinalizeDone(st.ID, 0, []string{"fig12.csv"}, nil)
	cur, _ = q.Status(st.ID, "a")
	if cur.State != StateDone || len(cur.Results) != 1 {
		t.Errorf("after finalize: state %s results %v, want done/[fig12.csv]", cur.State, cur.Results)
	}
}

func TestQueueExpiryRequeueAndAttemptBudget(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{
		LeaseTTL: 50 * time.Millisecond,
		Attempts: 2,
		Requeue:  retry.Policy{Base: time.Nanosecond, Max: time.Nanosecond},
	})
	now := time.Now()
	st := submitJob(t, q, "a", PriorityNormal, 1)

	if _, ok := q.Lease("w", now); !ok {
		t.Fatal("no lease")
	}
	requeued := q.Sweep(now.Add(time.Second))
	if len(requeued) != 1 {
		t.Fatalf("sweep requeued %v, want one item", requeued)
	}
	if cur, _ := q.Status(st.ID, "a"); cur.Pending != 1 {
		t.Errorf("after expiry: pending %d, want 1", cur.Pending)
	}
	// Second grant exhausts the 2-attempt budget; its expiry fails the job.
	if _, ok := q.Lease("w", now.Add(2*time.Second)); !ok {
		t.Fatal("no re-lease after requeue")
	}
	q.Sweep(now.Add(4 * time.Second))
	cur, _ := q.Status(st.ID, "a")
	if cur.State != StateFailed || cur.Error == "" {
		t.Errorf("after budget exhaustion: state %s error %q, want failed with a cause", cur.State, cur.Error)
	}
	d := q.Stats()
	if d.Expiries != 2 || d.ItemFails != 1 {
		t.Errorf("stats expiries %d itemFails %d, want 2/1", d.Expiries, d.ItemFails)
	}
}

func TestQueueWorkerFailRequeues(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{
		Attempts: 3,
		Requeue:  retry.Policy{Base: time.Nanosecond, Max: time.Nanosecond},
	})
	now := time.Now()
	st := submitJob(t, q, "a", PriorityNormal, 1)
	g, _ := q.Lease("w", now)
	if err := q.Fail(g.ID, "boom", now); err != nil {
		t.Fatal(err)
	}
	if cur, _ := q.Status(st.ID, "a"); cur.State == StateFailed || cur.Pending != 1 {
		t.Errorf("after one failure: state %s pending %d, want requeued", cur.State, cur.Pending)
	}
	if err := q.Fail(g.ID, "again", now); !errors.Is(err, ErrNoLease) {
		t.Errorf("fail on a released lease err = %v, want ErrNoLease", err)
	}
}

func TestQueueCancelVoidsLeases(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{})
	now := time.Now()
	st := submitJob(t, q, "a", PriorityNormal, 1)
	g, _ := q.Lease("w", now)
	if _, ok := q.Cancel(st.ID, "b"); ok {
		t.Error("another token canceled the job")
	}
	cur, ok := q.Cancel(st.ID, "a")
	if !ok || cur.State != StateCanceled {
		t.Fatalf("cancel: ok=%v state=%s", ok, cur.State)
	}
	if q.Heartbeat(g.ID, now) {
		t.Error("heartbeat on a canceled job's lease succeeded")
	}
	if _, err := q.Ack(g.ID, "f", 1, 1); !errors.Is(err, ErrNoLease) {
		t.Errorf("ack after cancel err = %v, want ErrNoLease", err)
	}
}

func TestQueueStatusTokenScoped(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{})
	st := submitJob(t, q, "a", PriorityNormal, 1)
	if _, ok := q.Status(st.ID, "b"); ok {
		t.Error("another token read the job's status")
	}
	if jobs := q.List("b"); len(jobs) != 0 {
		t.Errorf("another token listed %d job(s)", len(jobs))
	}
	if jobs := q.List("a"); len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Errorf("owner list = %+v, want the one job", jobs)
	}
}

func TestQueueSubscribe(t *testing.T) {
	q, _ := newTestQueue(t, t.TempDir(), QueueOptions{})
	now := time.Now()
	st := submitJob(t, q, "a", PriorityNormal, 1)
	ch, cancel, ok := q.Subscribe(st.ID, "a")
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	next := func() (JobStatus, bool) {
		select {
		case ev, open := <-ch:
			return ev, open
		case <-time.After(5 * time.Second):
			t.Fatal("no event")
			return JobStatus{}, false
		}
	}
	if ev, _ := next(); ev.State != StateQueued {
		t.Errorf("initial snapshot state %s, want queued", ev.State)
	}
	q.Lease("w", now)
	if ev, _ := next(); ev.State != StateRunning {
		t.Errorf("post-lease event state %s, want running", ev.State)
	}
	q.Cancel(st.ID, "a")
	if ev, _ := next(); ev.State != StateCanceled {
		t.Errorf("terminal event state %s, want canceled", ev.State)
	}
	if _, open := next(); open {
		t.Error("channel still open after the terminal event")
	}
}

// TestQueueRestoreResumes is the crash contract at the queue layer: a
// journal replay adopts acked items (their work is never redone),
// requeues in-flight ones, and never reuses a job id.
func TestQueueRestoreResumes(t *testing.T) {
	dir := t.TempDir()
	q1, _ := newTestQueue(t, dir, QueueOptions{})
	now := time.Now()
	st := submitJob(t, q1, "a", PriorityNormal, 2)
	g1, _ := q1.Lease("w", now)
	if _, err := q1.Ack(g1.ID, "shard-file", 4, 7); err != nil {
		t.Fatal(err)
	}
	q1.Lease("w", now) // second item leased, never acked: the crash victim
	q1.Close()
	q1.opts.Journal.Close()

	q2, sum := newTestQueue(t, dir, QueueOptions{})
	if sum.Jobs != 1 || sum.Terminal != 0 || sum.ItemsAcked != 1 || sum.ItemsRequeued != 1 {
		t.Fatalf("restore summary %+v, want 1 job, 1 acked, 1 requeued", sum)
	}
	cur, ok := q2.Status(st.ID, "a")
	if !ok {
		t.Fatal("restored job not visible to its token")
	}
	if cur.State != StateRunning || cur.Acked != 1 || cur.Pending != 1 || cur.Executed != 7 {
		t.Errorf("restored status %+v, want running, 1 acked, 1 pending, 7 executed", cur)
	}
	// The restart voided the orphan lease: only the unacked item re-leases.
	g, ok := q2.Lease("w2", now)
	if !ok {
		t.Fatal("restored queue granted nothing")
	}
	if g.Job != st.ID {
		t.Errorf("re-lease from job %s, want %s", g.Job, st.ID)
	}
	if _, ok := q2.Lease("w2", now); ok {
		t.Error("restored queue re-leased the acked item")
	}
	// Ids never reuse across restarts.
	st2 := submitJob(t, q2, "a", PriorityNormal, 1)
	if st2.ID == st.ID {
		t.Errorf("restored queue reused job id %s", st.ID)
	}
}

func TestQueueRestoreFinalizingAndTerminal(t *testing.T) {
	dir := t.TempDir()
	q1, _ := newTestQueue(t, dir, QueueOptions{})
	now := time.Now()
	st := submitJob(t, q1, "a", PriorityNormal, 1)
	done := submitJob(t, q1, "a", PriorityNormal, 1)
	g, _ := q1.Lease("w", now)
	if _, err := q1.Ack(g.ID, "f", 4, 4); err != nil {
		t.Fatal(err)
	}
	// Job 2 runs to done before the crash; job 1 is acked but unassembled.
	g2, _ := q1.Lease("w", now)
	if _, err := q1.Ack(g2.ID, "f2", 4, 4); err != nil {
		t.Fatal(err)
	}
	q1.FinalizeDone(done.ID, 0, []string{"fig12.csv"}, nil)
	q1.Close()
	q1.opts.Journal.Close()

	q2, sum := newTestQueue(t, dir, QueueOptions{})
	if sum.Terminal != 1 {
		t.Errorf("restore terminal = %d, want 1", sum.Terminal)
	}
	if len(sum.Finalizing) != 1 || sum.Finalizing[0] != st.ID {
		t.Fatalf("restore finalizing = %v, want [%s]", sum.Finalizing, st.ID)
	}
	if ids := q2.allFinalizing(); len(ids) != 1 || ids[0] != st.ID {
		t.Errorf("allFinalizing = %v, want [%s]", ids, st.ID)
	}
	if cur, _ := q2.Status(done.ID, "a"); cur.State != StateDone {
		t.Errorf("terminal job restored as %s, want done", cur.State)
	}
}
