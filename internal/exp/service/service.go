// Package service implements pracsimd, the experiment-as-a-service
// daemon: the paper's grids (Figures 10-14, Table 5, the RFMpb
// extension) exposed over HTTP/JSON so clients submit work instead of
// running tpracsim by hand, and a fleet of pull-model workers executes
// it against one shared content-addressed store.
//
// A submitted grid spec (experiments × scale × shard count, validated
// against exactly tpracsim's flag grammar) is deduplicated before it is
// queued: the daemon enumerates the grid's run keys (exp.GridKeys) and
// probes its store, and only shard slices that still own at least one
// cold key become work items — resubmitting a warm grid enqueues
// nothing and completes immediately from the store. Work items are
// leased to pull workers (`tpracsim -pull URL`) under heartbeat-renewed
// leases; a worker that dies simply stops heartbeating and its item is
// re-leased with retry-policy pacing. Acked shard results are imported
// into the daemon's store (which is both the dedup oracle and the
// durability layer) and, once a job's last item lands, a finalize
// session assembles the figures/tables from the fully-warm store into
// per-job CSVs.
//
// Every submission, lease grant and ack is journaled (the session
// journal's job/lease/ack record types), so a SIGKILLed daemon resumes
// its queue with zero re-executed runs: acked items are adopted, unacked
// items re-lease, completed-but-unassembled jobs re-finalize. Tenancy
// is by bearer token: per-token concurrent-job quotas, three priority
// levels, and round-robin token fairness within each level.
//
// Routes (all /v1/* under bearer auth when tokens are configured):
//
//	POST   /v1/jobs                      submit a grid spec; 201 + job status
//	GET    /v1/jobs                      list the token's jobs
//	GET    /v1/jobs/{id}                 job status
//	DELETE /v1/jobs/{id}                 cancel
//	GET    /v1/jobs/{id}/events          live progress (SSE)
//	GET    /v1/jobs/{id}/results/{name}  a finished job's CSV
//	POST   /v1/lease?worker=NAME         lease a work item (204 when idle)
//	POST   /v1/lease/{id}/heartbeat      keep a lease alive
//	POST   /v1/lease/{id}/ack?executed=N deliver a shard result file
//	POST   /v1/lease/{id}/fail           release a lease after a worker error
//	GET    /healthz                      liveness (no auth)
//	GET    /metrics                      Prometheus-style metrics (no auth)
package service

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/store"
	"pracsim/internal/fault"
	"pracsim/internal/httpd"
	"pracsim/internal/retry"
	"pracsim/internal/sim"
)

// queueFingerprint pins the queue journal to this daemon role; the
// schema version in journal.Options orphans it across simulator bumps
// exactly as store keys move.
const queueFingerprint = "pracsimd/queue/1"

// Options configures the daemon.
type Options struct {
	// Dir is the daemon's data directory: store/ (the run store and
	// dedup oracle), queue.journal, and jobs/{id}/ (acked shard files
	// and result CSVs). Required.
	Dir string
	// Tokens is the comma-separated bearer-token list ("" = open).
	Tokens string
	// Quota caps each token's concurrently active jobs (0 = unlimited).
	Quota int
	// LeaseTTL is the worker heartbeat budget (default 30s).
	LeaseTTL time.Duration
	// Attempts is the per-item lease budget before the job fails
	// (default 3).
	Attempts int
	// Scales overrides the -scale name table (tests inject tiny
	// budgets); nil means quick/full.
	Scales map[string]exp.Scale
	// Workers caps the finalize session's simulation concurrency
	// (0 = all cores); a fully-warm finalize executes nothing anyway.
	Workers int
	// Log, when non-nil, receives daemon progress lines.
	Log *log.Logger
	// Verbose additionally logs every request.
	Verbose bool
}

// Server is the experiment service. It implements http.Handler.
type Server struct {
	opts    Options
	store   *store.Store
	journal *journal.Journal
	queue   *Queue
	tokens  *httpd.Tokens
	reqs    *httpd.Metrics
	mux     *http.ServeMux
	start   time.Time

	// finalizeSem serializes finalize sessions: they are CPU-bound only
	// when results were lost, but even warm assembly is not free.
	finalizeSem chan struct{}
}

// New opens the daemon's store and queue journal under opts.Dir and
// restores the queue. The returned summary is the resume log line.
func New(opts Options) (*Server, RestoreSummary, error) {
	if opts.Scales == nil {
		opts.Scales = defaultScales()
	}
	//praclint:allow failpoint Open-time setup runs before the service is published; live I/O boundaries fire service.* and queue.* failpoints
	if err := os.MkdirAll(filepath.Join(opts.Dir, "jobs"), 0o755); err != nil {
		return nil, RestoreSummary{}, fmt.Errorf("service: %w", err)
	}
	st, err := store.Open(filepath.Join(opts.Dir, "store"))
	if err != nil {
		return nil, RestoreSummary{}, fmt.Errorf("service: %w", err)
	}
	jl, rec, err := journal.Open(filepath.Join(opts.Dir, "queue.journal"), journal.Options{
		Schema:      sim.SchemaVersion,
		Fingerprint: journal.Fingerprint(queueFingerprint),
	})
	if err != nil {
		return nil, RestoreSummary{}, fmt.Errorf("service: %w", err)
	}
	q := NewQueue(QueueOptions{
		Journal:  jl,
		LeaseTTL: opts.LeaseTTL,
		Attempts: opts.Attempts,
		Quota:    opts.Quota,
		Requeue:  retry.Policy{Base: 500 * time.Millisecond, Max: 10 * time.Second},
	})
	sum, err := q.Restore(rec, opts.Scales)
	if err != nil {
		jl.Close()
		return nil, sum, fmt.Errorf("service: %w", err)
	}
	s := &Server{
		opts:        opts,
		store:       st,
		journal:     jl,
		queue:       q,
		tokens:      httpd.ParseTokens(opts.Tokens),
		reqs:        httpd.NewMetrics(),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		finalizeSem: make(chan struct{}, 1),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("POST /v1/jobs", s.route("submit", s.handleSubmit))
	s.mux.Handle("GET /v1/jobs", s.route("jobs", s.handleJobs))
	s.mux.Handle("GET /v1/jobs/{id}", s.route("status", s.handleStatus))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.route("cancel", s.handleCancel))
	s.mux.Handle("GET /v1/jobs/{id}/events", s.route("events", s.handleEvents))
	s.mux.Handle("GET /v1/jobs/{id}/results/{name}", s.route("results", s.handleResults))
	s.mux.Handle("POST /v1/lease", s.route("lease", s.handleLease))
	s.mux.Handle("POST /v1/lease/{id}/heartbeat", s.route("heartbeat", s.handleHeartbeat))
	s.mux.Handle("POST /v1/lease/{id}/ack", s.route("ack", s.handleAck))
	s.mux.Handle("POST /v1/lease/{id}/fail", s.route("fail", s.handleFail))
	return s, sum, nil
}

// Start launches the background machinery: the lease sweeper and any
// finalizes the restore left pending. It returns immediately; ctx
// cancellation stops the sweeper.
func (s *Server) Start(ctx context.Context) {
	go s.sweep(ctx)
	// Jobs whose work completed before the crash but whose results were
	// never assembled finalize now.
	for _, id := range s.queue.allFinalizing() {
		s.startFinalize(id)
	}
}

// sweep requeues expired leases on a TTL-paced ticker.
func (s *Server) sweep(ctx context.Context) {
	period := s.queue.opts.LeaseTTL / 4
	if period < 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			if requeued := s.queue.Sweep(now); len(requeued) > 0 {
				s.logf("service: requeued expired lease item(s): %v", requeued)
			}
		}
	}
}

// Close drains the daemon: the queue stops granting, the journal syncs
// and closes. In-flight HTTP requests are the http.Server's to drain.
func (s *Server) Close() error {
	s.queue.Close()
	return s.journal.Close()
}

// ServeHTTP dispatches to the service routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.opts.Verbose && s.opts.Log != nil {
		s.opts.Log.Printf("%s %s from %s", r.Method, r.URL.Path, r.RemoteAddr)
	}
	s.mux.ServeHTTP(w, r)
}

// route wraps a /v1/* handler with the shared bearer-token check and
// per-endpoint request/latency accounting.
func (s *Server) route(endpoint string, h http.HandlerFunc) http.Handler {
	return s.reqs.Instrument(endpoint, s.tokens.Require(h))
}

func (s *Server) logf(format string, a ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, a...)
	}
}

// jobDir is where one job's acked shard files and results live.
func (s *Server) jobDir(id string) string {
	return filepath.Join(s.opts.Dir, "jobs", id)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) { httpd.Counter(w, name, help, v) }
	gauge := func(name, help string, v float64) { httpd.Gauge(w, name, help, v) }
	d := s.queue.Stats()
	counter("pracsimd_jobs_submitted_total", "Grid jobs accepted.", d.Submits)
	counter("pracsimd_jobs_deduped_total", "Jobs whose grid was fully warm at submission (zero work enqueued).", d.DedupJobs)
	counter("pracsimd_leases_granted_total", "Work-item leases granted.", d.Grants)
	counter("pracsimd_acks_total", "Work items completed by workers.", d.Acks)
	counter("pracsimd_lease_expiries_total", "Leases expired by missed heartbeats.", d.Expiries)
	counter("pracsimd_item_failures_total", "Work items that exhausted their attempt budget.", d.ItemFails)
	counter("pracsimd_auth_failures_total", "Requests with a missing or wrong bearer token.", s.tokens.AuthFailures())
	if n := fault.Fired(); n > 0 {
		counter("pracsimd_faults_injected_total", "Faults injected by the -faults schedule.", n)
	}
	gauge("pracsimd_queue_depth", "Work items waiting for a lease.", float64(d.Pending))
	gauge("pracsimd_leased", "Work items currently leased.", float64(d.Leased))
	gauge("pracsimd_active_jobs", "Jobs not yet in a terminal state.", float64(d.ActiveJobs))
	gauge("pracsimd_uptime_seconds", "Seconds since the daemon started.", time.Since(s.start).Seconds())
	s.reqs.Write(w, "pracsimd")
}
