package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/shard"
	"pracsim/internal/fault"
	"pracsim/internal/retry"
)

// reference runs the tiny grid once, directly (no store, no daemon), and
// memoizes the answer every service test compares against: the CSV every
// path must reproduce byte-identically and the execution count a
// zero-redundancy pipeline must exactly match.
var (
	refMu   sync.Mutex
	refCSV  string
	refExec int64
)

func reference(t *testing.T) (string, int64) {
	t.Helper()
	refMu.Lock()
	defer refMu.Unlock()
	if refCSV == "" {
		sess := exp.NewRunner(testScales()["tiny"])
		rep, err := sess.Run("fig12")
		if err != nil {
			t.Fatalf("reference run: %v", err)
		}
		refCSV = rep.CSV()
		refExec = sess.Executed()
	}
	return refCSV, refExec
}

// daemon is one in-process pracsimd over an httptest listener.
type daemon struct {
	svc    *Server
	sum    RestoreSummary
	ts     *httptest.Server
	cancel context.CancelFunc
}

func startDaemon(t *testing.T, opts Options) *daemon {
	t.Helper()
	if opts.Scales == nil {
		opts.Scales = testScales()
	}
	svc, sum, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	svc.Start(ctx)
	d := &daemon{svc: svc, sum: sum, ts: httptest.NewServer(svc), cancel: cancel}
	t.Cleanup(d.stop)
	return d
}

// stop is idempotent, so tests may kill a daemon explicitly and the
// cleanup still runs.
func (d *daemon) stop() {
	d.ts.Close()
	d.cancel()
	d.svc.Close()
}

// roundTrip issues one raw request with optional bearer token and body.
func roundTrip(t *testing.T, method, url, token, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func statusOf(t *testing.T, resp *http.Response) int {
	t.Helper()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func TestServiceAuth(t *testing.T) {
	d := startDaemon(t, Options{Dir: t.TempDir(), Tokens: "alice,bob"})
	if got := statusOf(t, roundTrip(t, "GET", d.ts.URL+"/v1/jobs", "", "")); got != http.StatusUnauthorized {
		t.Errorf("no token: %d, want 401", got)
	}
	if got := statusOf(t, roundTrip(t, "GET", d.ts.URL+"/v1/jobs", "mallory", "")); got != http.StatusUnauthorized {
		t.Errorf("wrong token: %d, want 401", got)
	}
	if got := statusOf(t, roundTrip(t, "GET", d.ts.URL+"/v1/jobs", "alice", "")); got != http.StatusOK {
		t.Errorf("good token: %d, want 200", got)
	}
	// Liveness and metrics stay open for scrapers.
	if got := statusOf(t, roundTrip(t, "GET", d.ts.URL+"/healthz", "", "")); got != http.StatusOK {
		t.Errorf("healthz: %d, want 200", got)
	}
	if got := statusOf(t, roundTrip(t, "GET", d.ts.URL+"/metrics", "", "")); got != http.StatusOK {
		t.Errorf("metrics: %d, want 200", got)
	}
}

func TestServiceSubmitValidation(t *testing.T) {
	d := startDaemon(t, Options{Dir: t.TempDir(), Tokens: "alice"})
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{`},
		{"unknown experiment", `{"exps":["fig99"],"scale":"tiny"}`},
		{"unknown scale", `{"exps":["fig12"],"scale":"huge"}`},
		{"shards out of range", `{"exps":["fig12"],"scale":"tiny","shards":999}`},
		{"priority out of range", `{"exps":["fig12"],"scale":"tiny","priority":9}`},
		{"unknown field", `{"exps":["fig12"],"scale":"tiny","bogus":1}`},
	}
	for _, tc := range cases {
		if got := statusOf(t, roundTrip(t, "POST", d.ts.URL+"/v1/jobs", "alice", tc.body)); got != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", tc.name, got)
		}
	}
}

func TestServiceQuotaRejects(t *testing.T) {
	d := startDaemon(t, Options{Dir: t.TempDir(), Tokens: "alice,bob", Quota: 1})
	ctx := context.Background()
	alice := NewClient(d.ts.URL, "alice")
	if _, err := alice.Submit(ctx, GridSpec{Exps: []string{"fig12"}, Scale: "tiny"}); err != nil {
		t.Fatal(err)
	}
	_, err := alice.Submit(ctx, GridSpec{Exps: []string{"fig12"}, Scale: "tiny"})
	if !IsStatus(err, http.StatusTooManyRequests) {
		t.Errorf("over-quota submit err = %v, want 429", err)
	}
	// The quota is per tenant, not global.
	bob := NewClient(d.ts.URL, "bob")
	if _, err := bob.Submit(ctx, GridSpec{Exps: []string{"fig12"}, Scale: "tiny"}); err != nil {
		t.Errorf("other tenant's submit err = %v, want nil", err)
	}
}

// TestServiceEndToEndWarmDedup is the tentpole contract: a submitted
// grid executes via a pull worker and reproduces the direct run
// byte-for-byte with zero redundant simulations; a second tenant
// resubmitting the warm grid gets it for free, immediately.
func TestServiceEndToEndWarmDedup(t *testing.T) {
	wantCSV, wantExec := reference(t)
	d := startDaemon(t, Options{Dir: t.TempDir(), Tokens: "alice,bob"})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	alice := NewClient(d.ts.URL, "alice")
	st, err := alice.Submit(ctx, GridSpec{Exps: []string{"fig12"}, Scale: "tiny", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.State == StateDone {
		t.Fatal("cold grid reported done before any worker ran")
	}
	if st.TotalKeys == 0 || st.WarmKeys != 0 || st.Items == 0 {
		t.Fatalf("cold submission status %+v, want all keys cold and items queued", st)
	}
	if _, err := alice.Result(ctx, st.ID, "fig12.csv"); !IsStatus(err, http.StatusConflict) {
		t.Errorf("result fetch before done err = %v, want 409", err)
	}

	sum, err := RunWorker(ctx, WorkerOptions{
		URL: d.ts.URL, Token: "alice", Name: "w1",
		IdleExit: 500 * time.Millisecond,
		Poll:     retry.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Items != st.Items || sum.Failures != 0 {
		t.Errorf("worker summary %+v, want %d item(s) and no failures", sum, st.Items)
	}

	fin, err := alice.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Executed != wantExec {
		t.Errorf("job executed %d simulations, want exactly %d (each key once)", fin.Executed, wantExec)
	}
	if fin.FinalizeExecuted != 0 {
		t.Errorf("finalize executed %d simulations, want 0 (store fully warm)", fin.FinalizeExecuted)
	}
	got, err := alice.Result(ctx, st.ID, "fig12.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCSV {
		t.Error("service CSV differs from the direct tpracsim run")
	}

	// The SSE stream on a finished job delivers its snapshot and the done
	// marker, then ends.
	resp := roundTrip(t, "GET", d.ts.URL+"/v1/jobs/"+st.ID+"/events", "alice", "")
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), "event: status") ||
		!strings.Contains(string(events), "event: done") ||
		!strings.Contains(string(events), `"state":"done"`) {
		t.Errorf("SSE stream missing status/done events:\n%s", events)
	}

	// Warm resubmit from a second tenant (different shard fan-out, same
	// grid): nothing enqueues, no worker runs, the answer is identical.
	bob := NewClient(d.ts.URL, "bob")
	st2, err := bob.Submit(ctx, GridSpec{Exps: []string{"fig12"}, Scale: "tiny", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Items != 0 || st2.WarmKeys != st2.TotalKeys {
		t.Errorf("warm resubmission status %+v, want zero items and all keys warm", st2)
	}
	fin2, err := bob.Wait(ctx, st2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.State != StateDone {
		t.Fatalf("warm job ended %s (%s), want done", fin2.State, fin2.Error)
	}
	if fin2.Executed != 0 || fin2.FinalizeExecuted != 0 {
		t.Errorf("warm resubmission executed %d+%d simulations, want 0",
			fin2.Executed, fin2.FinalizeExecuted)
	}
	got2, err := bob.Result(ctx, st2.ID, "fig12.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != wantCSV {
		t.Error("warm resubmission CSV differs from the direct run")
	}

	// Tenants are isolated: alice cannot see bob's job.
	if _, err := alice.Status(ctx, st2.ID); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("cross-tenant status err = %v, want 404", err)
	}

	// The daemon's metrics report the pipeline: submissions, the dedup,
	// and per-endpoint request accounting.
	resp = roundTrip(t, "GET", d.ts.URL+"/metrics", "", "")
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pracsimd_jobs_submitted_total 2",
		"pracsimd_jobs_deduped_total 1",
		"pracsimd_queue_depth 0",
		`pracsimd_requests_total{endpoint="submit"} 2`,
		`pracsimd_request_duration_seconds_count{endpoint="lease"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServiceKillRestartZeroReexecution is the crash contract
// end-to-end: kill the daemon after one of two work items acked, restart
// it over the same directory, finish the job — every simulation ran
// exactly once across both daemon lifetimes and the output is identical.
func TestServiceKillRestartZeroReexecution(t *testing.T) {
	wantCSV, wantExec := reference(t)
	dir := t.TempDir()
	d1 := startDaemon(t, Options{Dir: dir, Tokens: "alice"})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	alice := NewClient(d1.ts.URL, "alice")
	st, err := alice.Submit(ctx, GridSpec{Exps: []string{"fig12"}, Scale: "tiny", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != 2 {
		t.Fatalf("submission queued %d items, want 2", st.Items)
	}

	// Execute exactly one item by hand (a worker's steps, inline), so the
	// crash lands between the two.
	g, err := alice.Lease(ctx, "w1")
	if err != nil || g == nil {
		t.Fatalf("lease: grant=%v err=%v", g, err)
	}
	sp, err := shard.Parse(g.Item)
	if err != nil {
		t.Fatal(err)
	}
	sess := exp.NewRunnerWith(
		exp.Scale{Warmup: g.Warmup, Measured: g.Measured, Workloads: g.Workloads},
		exp.SessionOptions{Shard: sp})
	for _, name := range g.Exps {
		if _, err := sess.Run(name); err != nil {
			t.Fatal(err)
		}
	}
	shardFile := filepath.Join(t.TempDir(), "shard.runs")
	if _, err := sess.ExportShard(shardFile); err != nil {
		t.Fatal(err)
	}
	exec1 := sess.Executed()
	if err := alice.Ack(ctx, g.ID, shardFile, exec1); err != nil {
		t.Fatal(err)
	}

	// Kill. Submission and ack records were synced to the journal as they
	// happened, so dropping the daemon here loses nothing a SIGKILL
	// would not.
	d1.stop()

	d2 := startDaemon(t, Options{Dir: dir, Tokens: "alice"})
	if d2.sum.Jobs != 1 || d2.sum.ItemsAcked != 1 || d2.sum.ItemsRequeued != 1 {
		t.Fatalf("resume summary %q, want 1 job with 1 acked and 1 requeued item", d2.sum)
	}
	alice2 := NewClient(d2.ts.URL, "alice")
	if _, err := RunWorker(ctx, WorkerOptions{
		URL: d2.ts.URL, Token: "alice", Name: "w2",
		IdleExit: 500 * time.Millisecond,
		Poll:     retry.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	fin, err := alice2.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("resumed job ended %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Executed != wantExec {
		t.Errorf("executed %d simulations across the restart, want exactly %d (zero re-execution)",
			fin.Executed, wantExec)
	}
	if fin.FinalizeExecuted != 0 {
		t.Errorf("finalize executed %d simulations after restart, want 0", fin.FinalizeExecuted)
	}
	got, err := alice2.Result(ctx, st.ID, "fig12.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCSV {
		t.Error("post-restart CSV differs from the direct run")
	}
}

// TestServiceChaosJobAPI storms the job pipeline's failpoints — failed
// submissions, failed grants, dropped ack deliveries, severed SSE
// streams — and requires the standing chaos contract: degraded latency
// and retries, never a wrong byte in the results.
func TestServiceChaosJobAPI(t *testing.T) {
	wantCSV, _ := reference(t)
	p, err := fault.Parse("seed=11;" +
		"service.submit:err@0.4;queue.lease:err@0.25;" +
		"queue.ack:err@0.25;service.stream:err@0.5")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	t.Cleanup(fault.Disable)

	d := startDaemon(t, Options{
		Dir: t.TempDir(), Tokens: "alice",
		LeaseTTL: time.Second, Attempts: 25,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	alice := NewClient(d.ts.URL, "alice")

	// Submission retries through injected pre-accept 500s.
	var st JobStatus
	for i := 0; ; i++ {
		st, err = alice.Submit(ctx, GridSpec{Exps: []string{"fig12"}, Scale: "tiny", Shards: 2})
		if err == nil {
			break
		}
		if !IsStatus(err, http.StatusInternalServerError) || i > 50 {
			t.Fatalf("submit under chaos: %v", err)
		}
	}

	// A reader on the SSE stream while faults sever it mid-flight; job
	// state must not care.
	sseCtx, sseCancel := context.WithCancel(ctx)
	defer sseCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(sseCtx, "GET", d.ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
		req.Header.Set("Authorization", "Bearer alice")
		if resp, rerr := http.DefaultClient.Do(req); rerr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	if _, err := RunWorker(ctx, WorkerOptions{
		URL: d.ts.URL, Token: "alice", Name: "w1",
		IdleExit: 3 * time.Second,
		Poll:     retry.Policy{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	fin, err := alice.Wait(ctx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sseCancel()
	wg.Wait()
	if fin.State != StateDone {
		t.Fatalf("chaos job ended %s (%s), want done", fin.State, fin.Error)
	}
	if fault.Fired() == 0 {
		t.Fatal("no faults fired; the storm proved nothing")
	}
	got, err := alice.Result(ctx, st.ID, "fig12.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCSV {
		t.Error("chaos run changed the CSV; faults must degrade, never corrupt")
	}
}
