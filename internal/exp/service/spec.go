package service

import (
	"encoding/json"
	"fmt"

	"pracsim/internal/exp"
)

// Job priorities. The zero value (from a spec that omits the field)
// normalizes to PriorityNormal.
const (
	PriorityHigh   = 1
	PriorityNormal = 2
	PriorityLow    = 3
)

// MaxShards bounds how many work items one grid may fan into.
const MaxShards = 64

// GridSpec is the wire form of a job submission: which experiments, at
// which scale, split into how many shard work items, at which priority.
// The grammar is exactly tpracsim's: Exps take the -exp names (any of
// fig10..fig14, table5, rfmpb, or "all") and Scale takes the -scale
// names (quick, full).
type GridSpec struct {
	Exps     []string `json:"exps"`
	Scale    string   `json:"scale"`
	Shards   int      `json:"shards,omitempty"`   // work items (default 2, max MaxShards)
	Priority int      `json:"priority,omitempty"` // 1 high, 2 normal (default), 3 low
}

// defaultScales maps the -scale flag grammar onto the session scales.
func defaultScales() map[string]exp.Scale {
	return map[string]exp.Scale{
		"quick": exp.QuickScale(),
		"full":  exp.FullScale(),
	}
}

// normalize validates a spec against the shared flag grammar and
// resolves it: canonical experiment selection, resolved scale, defaults
// applied in place.
func (g *GridSpec) normalize(scales map[string]exp.Scale) (exps []string, scale exp.Scale, err error) {
	exps, err = exp.ExpandExperiments(g.Exps)
	if err != nil {
		return nil, exp.Scale{}, err
	}
	if scales == nil {
		scales = defaultScales()
	}
	scale, ok := scales[g.Scale]
	if !ok {
		return nil, exp.Scale{}, fmt.Errorf("service: unknown scale %q", g.Scale)
	}
	if g.Shards == 0 {
		g.Shards = 2
	}
	if g.Shards < 1 || g.Shards > MaxShards {
		return nil, exp.Scale{}, fmt.Errorf("service: shards %d out of range 1..%d", g.Shards, MaxShards)
	}
	if g.Priority == 0 {
		g.Priority = PriorityNormal
	}
	if g.Priority < PriorityHigh || g.Priority > PriorityLow {
		return nil, exp.Scale{}, fmt.Errorf("service: priority %d out of range %d..%d (high..low)", g.Priority, PriorityHigh, PriorityLow)
	}
	return exps, scale, nil
}

// encode renders the spec for the journal's job record.
func (g GridSpec) encode() []byte {
	data, _ := json.Marshal(g)
	return data
}

// decodeSpec parses a journaled spec.
func decodeSpec(data []byte) (GridSpec, error) {
	var g GridSpec
	if err := json.Unmarshal(data, &g); err != nil {
		return g, fmt.Errorf("service: journaled grid spec: %w", err)
	}
	return g, nil
}
