package service

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"pracsim/internal/exp"
	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
	"pracsim/internal/fault"
	"pracsim/internal/retry"
)

// WorkerOptions configures one pull worker (`tpracsim -pull URL`).
type WorkerOptions struct {
	// URL is the daemon base ("http://host:8080"). Required.
	URL string
	// Token authenticates against the daemon ("" for an open one).
	Token string
	// Name identifies this worker in leases and daemon logs.
	Name string
	// Store, when non-nil, is the worker's local run store: a re-leased
	// item whose first attempt died after executing becomes store hits
	// instead of re-simulation.
	Store *store.Store
	// Workers caps the per-item session's simulation concurrency
	// (0 = all cores).
	Workers int
	// IdleExit, when positive, makes the worker exit cleanly after this
	// long without a lease — the batch mode CI uses. Zero runs until
	// ctx ends.
	IdleExit time.Duration
	// Poll paces the lease loop (lease polls and transient-error
	// backoff); the zero value is a sane default.
	Poll retry.Policy
	// Log, when non-nil, receives per-item progress lines.
	Log *log.Logger
}

// WorkerSummary reports what a worker accomplished.
type WorkerSummary struct {
	// Items counts work items completed (acked).
	Items int
	// Runs counts runs delivered across those items.
	Runs int
	// Executed counts simulations actually run (store hits excluded).
	Executed int64
	// Failures counts items that errored or whose ack was lost.
	Failures int
}

func (ws WorkerSummary) String() string {
	return fmt.Sprintf("worker: %d item(s) completed, %d run(s) delivered (%d executed), %d failure(s)",
		ws.Items, ws.Runs, ws.Executed, ws.Failures)
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// RunWorker runs the pull loop: lease an item, execute its shard slice
// of the grid, deliver the shard result, repeat. It returns when ctx
// ends or the idle-exit budget expires; transient daemon errors are
// absorbed with retry-policy pacing, never fatal.
func RunWorker(ctx context.Context, opts WorkerOptions) (WorkerSummary, error) {
	if opts.URL == "" {
		return WorkerSummary{}, fmt.Errorf("service: worker needs a daemon URL")
	}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if opts.Poll.Base <= 0 {
		opts.Poll = retry.Policy{Base: 200 * time.Millisecond, Max: 3 * time.Second}
	}
	c := NewClient(opts.URL, opts.Token)
	var sum WorkerSummary
	idleSince := time.Now()
	backoff := 0
	for ctx.Err() == nil {
		grant, err := c.Lease(ctx, opts.Name)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			backoff++
			sleepCtx(ctx, opts.Poll.Delay("lease", min(backoff, 6)))
			continue
		}
		if grant == nil {
			if opts.IdleExit > 0 && time.Since(idleSince) >= opts.IdleExit {
				return sum, nil
			}
			backoff++
			sleepCtx(ctx, opts.Poll.Delay("idle", min(backoff, 6)))
			continue
		}
		backoff = 0
		runs, executed, err := runItem(ctx, c, grant, opts)
		idleSince = time.Now()
		if err != nil {
			sum.Failures++
			if opts.Log != nil {
				opts.Log.Printf("worker: job %s item %s: %v", grant.Job, grant.Item, err)
			}
			continue
		}
		sum.Items++
		sum.Runs += runs
		sum.Executed += executed
		if opts.Log != nil {
			opts.Log.Printf("worker: job %s item %s delivered (%d runs, %d executed)",
				grant.Job, grant.Item, runs, executed)
		}
	}
	return sum, nil
}

// runItem executes one leased shard slice and delivers its result. The
// queue.ack failpoint fires at the delivery boundary: an injected error
// drops the ack (the lease expires and the item re-leases elsewhere),
// which is exactly the crash-between-execute-and-deliver case.
func runItem(ctx context.Context, c *Client, g *LeaseGrant, opts WorkerOptions) (runs int, executed int64, err error) {
	sp, err := shard.Parse(g.Item)
	if err != nil {
		c.Fail(ctx, g.ID, err.Error())
		return 0, 0, err
	}
	// Heartbeat until the item is resolved; a lost lease flags the work
	// as orphaned so the ack is skipped.
	hbCtx, stopHB := context.WithCancel(ctx)
	var lost atomic.Bool
	go func() {
		interval := time.Duration(g.TTLSecs) * time.Second / 3
		if interval < 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if herr := c.Heartbeat(hbCtx, g.ID); herr == ErrLeaseLost {
					lost.Store(true)
					return
				}
			}
		}
	}()
	defer stopHB()

	scale := exp.Scale{
		Warmup: g.Warmup, Measured: g.Measured,
		Workloads: g.Workloads, Workers: opts.Workers,
	}
	sess := exp.NewRunnerWith(scale, exp.SessionOptions{Store: opts.Store, Shard: sp})
	for _, name := range g.Exps {
		if _, rerr := sess.Run(name); rerr != nil {
			c.Fail(ctx, g.ID, fmt.Sprintf("%s: %v", name, rerr))
			return 0, 0, rerr
		}
	}
	if lost.Load() {
		return 0, 0, ErrLeaseLost
	}
	if act := fault.Fire(fault.QueueAck); act != nil && act.Kind == fault.Err {
		return 0, 0, act.Err("deliver " + g.Job + "/" + g.Item)
	}
	tmp, err := os.CreateTemp("", "pracsim-ack-*.runs")
	if err != nil {
		return 0, 0, fmt.Errorf("service: %w", err)
	}
	tmpName := tmp.Name()
	tmp.Close()
	os.Remove(tmpName) // ExportShard publishes via its own temp+rename
	defer os.Remove(tmpName)
	runs, err = sess.ExportShard(tmpName)
	if err != nil {
		return 0, 0, err
	}
	executed = sess.Executed()
	// The upload retries through the shared policy; a lost lease is
	// permanent — the item is someone else's now.
	_, err = retry.Policy{Attempts: 5, Base: 300 * time.Millisecond}.Do(ctx, "ack "+g.ID,
		func(actx context.Context, attempt int) error {
			aerr := c.Ack(actx, g.ID, tmpName, executed)
			if aerr == ErrLeaseLost {
				return retry.Permanent(aerr)
			}
			return aerr
		})
	if err != nil {
		return 0, 0, err
	}
	return runs, executed, nil
}
