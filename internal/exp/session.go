package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
	"pracsim/internal/sim"
)

// SessionOptions attaches the cross-process scaling layers to a Runner
// session: a persistent run store (warm results survive across
// invocations and machines) and a shard spec (this process executes only
// its deterministic slice of the run keys). The zero value is a plain
// in-process session.
type SessionOptions struct {
	// Store, when non-nil, is consulted before executing any simulation
	// and receives every executed result; it layers under the in-process
	// single-flight cache.
	Store *store.Store
	// Shard restricts execution to the runs this shard owns. Runs owned
	// by other shards report ErrShardSkipped into their grid cells
	// (which stay zero) instead of executing; figures from a sharded
	// session are partial by design and are assembled by a later merge.
	Shard shard.Spec
	// Journal, when non-nil, is the session's crash-recovery layer:
	// runs it recovered from a prior interrupted invocation are served
	// without re-executing (even with no store attached), and every run
	// this session resolves is appended so the *next* crash loses
	// nothing either. It sits between the in-process cache and the
	// store in the lookup order.
	Journal *journal.Journal
}

// ErrShardSkipped marks a simulation that belongs to another shard of a
// partitioned grid. Grid jobs treat it as "cell not mine", never as a
// failure.
var ErrShardSkipped = errors.New("exp: run owned by another shard")

// ignoreSkip drops the shard-skip marker so a partitioned grid keeps
// going; real failures still abort the grid.
func ignoreSkip(err error) error {
	if errors.Is(err, ErrShardSkipped) {
		return nil
	}
	return err
}

// realError returns the first error that is a genuine failure rather
// than a shard skip, or nil.
func realError(errs ...error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrShardSkipped) {
			return err
		}
	}
	return nil
}

// storeKey is the versioned, content-addressable identity of one
// simulation: the simulator schema version, the scale's instruction
// budgets, the canonicalized variant fingerprint and the workload. Two
// invocations (or machines) build the same key exactly when the
// simulation is guaranteed to produce the same RunResult, so the key is
// safe to share through a persistent store. Scheduling knobs (Workers,
// Serial) and clocking knobs (PerCycle, Differential) are deliberately
// absent: they never change results, only how they are computed.
func storeKey(scale Scale, k runKey) string {
	v := k.v
	return fmt.Sprintf(
		"pracsim/run/v%d/warmup=%d/measured=%d/policy=%d/nrh=%d/prac=%d/trefevery=%d/skipontref=%t/noreset=%t/workload=%s",
		sim.SchemaVersion, scale.Warmup, scale.Measured,
		int(v.Policy), v.NRH, v.PRACLevel, v.TREFEvery, v.SkipOnTREF, v.NoReset,
		k.workload)
}

// NewRunnerWith returns a session with a persistent store and/or shard
// spec attached.
func NewRunnerWith(scale Scale, opts SessionOptions) *Runner {
	return &Runner{r: newRunnerWith(scale, opts)}
}

// Executed reports how many simulations this session actually ran —
// store hits and imported shard results are excluded, so a fully warm
// session reports zero.
func (s *Runner) Executed() int64 { return s.r.executed.Load() }

// StoreStats snapshots the persistent store's traffic counters; the zero
// Stats when the session has no store.
func (s *Runner) StoreStats() store.Stats {
	if s.r.store == nil {
		return store.Stats{}
	}
	return s.r.store.Stats()
}

// JournalStats snapshots the session journal's counters; the zero Stats
// when the session has no journal.
func (s *Runner) JournalStats() journal.Stats {
	if s.r.journal == nil {
		return journal.Stats{}
	}
	return s.r.journal.Stats()
}

// SessionSummary snapshots a session's execution counters in one plain
// struct — what a shard worker reports back to the dispatch driver and
// what the CLIs print per session.
type SessionSummary struct {
	// Executed counts simulations actually run (store hits and imported
	// shard results excluded).
	Executed int64
	// CachedRuns counts distinct resolved run keys (the single-flight
	// cache size).
	CachedRuns int
	// Store is the persistent store's traffic; zero without a store.
	Store store.Stats
	// Journal is the session journal's traffic; zero without a journal.
	Journal journal.Stats
}

// Summary snapshots the session's execution counters.
func (s *Runner) Summary() SessionSummary {
	return SessionSummary{
		Executed:   s.Executed(),
		CachedRuns: s.CachedRuns(),
		Store:      s.StoreStats(),
		Journal:    s.JournalStats(),
	}
}

// ExportShard writes every owned run this session resolved — executed,
// or served by a warm store or seed — to a shard result file (sorted by
// run key, so the file is deterministic), reporting how many runs it
// holds. It is the emit half of the multi-machine workflow; ImportShards
// is the merge half.
func (s *Runner) ExportShard(path string) (int, error) {
	s.r.mu.Lock()
	entries := make([]shard.Entry, len(s.r.ran))
	copy(entries, s.r.ran)
	s.r.mu.Unlock()
	return len(entries), shard.WriteFile(path, sim.SchemaVersion, s.r.shardSpec, entries)
}

// ImportShards merges shard result files into the session: their runs
// are served from memory instead of executing, and — when the session
// has a store — written through to it (best-effort, like every store
// write), so a merge also warms the persistent cache. It returns the
// number of imported runs.
//
// Every imported key must match this session's schema version and scale
// budgets: a shard produced at a different -scale would never match any
// of this grid's keys, and the session would silently re-simulate
// everything while reporting a successful merge. That mismatch is an
// error here, not a slow surprise later.
func (s *Runner) ImportShards(paths ...string) (int, error) {
	prefix := fmt.Sprintf("pracsim/run/v%d/warmup=%d/measured=%d/",
		sim.SchemaVersion, s.r.scale.Warmup, s.r.scale.Measured)
	total := 0
	for _, path := range paths {
		if path == "" {
			// A torn CLI list ("a.runs,") must fail as what it is, not
			// as a confusing open("") error.
			return total, errors.New("exp: empty shard file path")
		}
		entries, err := shard.ReadFile(path, sim.SchemaVersion)
		if err != nil {
			return total, err
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Key, prefix) {
				return total, fmt.Errorf(
					"exp: %s holds run %q, which this session (scale warmup=%d measured=%d) would never request — was the shard built at a different -scale?",
					path, e.Key, s.r.scale.Warmup, s.r.scale.Measured)
			}
		}
		s.r.mu.Lock()
		if s.r.seed == nil {
			s.r.seed = make(map[string][]byte, len(entries))
		}
		for _, e := range entries {
			s.r.seed[e.Key] = e.Payload
		}
		s.r.mu.Unlock()
		if s.r.store != nil {
			for _, e := range entries {
				// Stat-before-Put: a dispatch fleet's workers usually
				// resolved these runs *from* this very store, and a
				// remote Put re-uploads the whole grid the fleet just
				// downloaded. A cheap existence probe (header-only on
				// disk, one small request over HTTP) keeps the
				// fully-warm merge off the write path; anything absent
				// or implausible still writes through.
				if _, serr := s.r.store.Backend().Stat(e.Key); serr == nil {
					continue
				}
				_ = s.r.store.Put(e.Key, e.Payload)
			}
		}
		total += len(entries)
	}
	return total, nil
}

// Memo memoizes a whole experiment result in a persistent store: the
// attack sweeps (pracleak) and the analysis solves (secanalysis) produce
// one plain-data result struct per (experiment, parameters) pair, so the
// entire result is content-addressed instead of its individual
// simulations. A nil store runs fn directly.
//
// The strict decode catches only one drift direction: an entry with
// fields T no longer has fails (DisallowUnknownFields); an entry
// *missing* a field added to T later decodes with that field
// zero-valued. Any change to a memoized result's shape or meaning must
// therefore bump sim.SchemaVersion — that moves the key and orphans
// every old entry, which is the store's only reliable invalidation.
func Memo[T any](st *store.Store, key string, fn func() (T, error)) (T, error) {
	return MemoWith(st, nil, key, fn)
}

// MemoWith is Memo with an optional session journal layered in front of
// the store: a memoized experiment recovered from a crashed invocation's
// journal is served without touching the store or recomputing, and every
// computed (or store-served) result is journaled so the next crash skips
// it too. Either layer may be nil.
func MemoWith[T any](st *store.Store, jl *journal.Journal, key string, fn func() (T, error)) (T, error) {
	if st == nil && jl == nil {
		return fn()
	}
	full := fmt.Sprintf("pracsim/exp/v%d/%s", sim.SchemaVersion, key)
	decode := func(data []byte) (T, bool) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var res T
		return res, dec.Decode(&res) == nil
	}
	if jl != nil {
		if data, ok := jl.Run(full); ok {
			if res, ok := decode(data); ok {
				return res, nil
			}
		}
	}
	if st != nil {
		if data, ok := st.Get(full); ok {
			if res, ok := decode(data); ok {
				if jl != nil {
					_ = jl.AppendRun(full, data)
				}
				return res, nil
			}
		}
	}
	res, err := fn()
	if err != nil {
		return res, err
	}
	// Persisting is best-effort: a full disk costs future time, not
	// current correctness.
	if data, merr := json.Marshal(res); merr == nil {
		if st != nil {
			_ = st.Put(full, data)
		}
		if jl != nil {
			_ = jl.AppendRun(full, data)
		}
	}
	return res, nil
}
