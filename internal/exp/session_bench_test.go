package exp

import (
	"testing"

	"pracsim/internal/exp/store"
)

// BenchmarkStoreWarmSweep measures the persistent store's warm path —
// the whole Fig12 grid served from disk with zero simulations. The
// store is filled by an unmeasured cold session before the timer, so
// every measured iteration is a pure warm replay (what a repeat
// tpracsim/CI invocation pays). The custom store_* metrics flow into
// the bench artifact's top-level store section (cmd/benchjson), making
// hit/miss/byte behavior diffable across PRs in BENCH_pr3.json.
func BenchmarkStoreWarmSweep(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	scale := Scale{Warmup: 2_000, Measured: 4_000, Workloads: []string{"433.milc"}}
	cold := NewRunnerWith(scale, SessionOptions{Store: st})
	if _, err := cold.Fig12(); err != nil {
		b.Fatal(err)
	}
	coldStats := st.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := NewRunnerWith(scale, SessionOptions{Store: st})
		if _, err := sess.Fig12(); err != nil {
			b.Fatal(err)
		}
		if sess.Executed() != 0 {
			b.Fatalf("warm iteration executed %d simulations", sess.Executed())
		}
	}
	s := st.Stats()
	b.ReportMetric(float64(s.Hits-coldStats.Hits)/float64(b.N), "store_hits/op")
	b.ReportMetric(float64(s.Misses-coldStats.Misses)/float64(b.N), "store_misses/op")
	b.ReportMetric(float64(s.BytesRead-coldStats.BytesRead)/1024/float64(b.N), "store_kb_read/op")
	b.ReportMetric(float64(s.BytesWritten-coldStats.BytesWritten)/1024/float64(b.N), "store_kb_written/op")
}
