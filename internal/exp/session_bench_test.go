package exp

import (
	"net/http/httptest"
	"testing"

	"pracsim/internal/exp/store"
	"pracsim/internal/exp/store/server"
)

// BenchmarkStoreWarmSweep measures the persistent store's warm path —
// the whole Fig12 grid served from disk with zero simulations. The
// store is filled by an unmeasured cold session before the timer, so
// every measured iteration is a pure warm replay (what a repeat
// tpracsim/CI invocation pays). The custom store_* metrics flow into
// the bench artifact's top-level store section (cmd/benchjson), making
// hit/miss/byte behavior diffable across PRs in BENCH_pr3.json.
func BenchmarkStoreWarmSweep(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	scale := Scale{Warmup: 2_000, Measured: 4_000, Workloads: []string{"433.milc"}}
	cold := NewRunnerWith(scale, SessionOptions{Store: st})
	if _, err := cold.Fig12(); err != nil {
		b.Fatal(err)
	}
	coldStats := st.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := NewRunnerWith(scale, SessionOptions{Store: st})
		if _, err := sess.Fig12(); err != nil {
			b.Fatal(err)
		}
		if sess.Executed() != 0 {
			b.Fatalf("warm iteration executed %d simulations", sess.Executed())
		}
	}
	s := st.Stats()
	b.ReportMetric(float64(s.Hits-coldStats.Hits)/float64(b.N), "store_hits/op")
	b.ReportMetric(float64(s.Misses-coldStats.Misses)/float64(b.N), "store_misses/op")
	b.ReportMetric(float64(s.BytesRead-coldStats.BytesRead)/1024/float64(b.N), "store_kb_read/op")
	b.ReportMetric(float64(s.BytesWritten-coldStats.BytesWritten)/1024/float64(b.N), "store_kb_written/op")
}

// BenchmarkStoreRemoteWarmSweep measures the fleet-shared warm path —
// the whole Fig12 mini-grid served from a pracstored server over HTTP
// with zero simulations, through a fresh pure-HTTP client each
// iteration (no local tier, so every Get crosses the wire: what a new
// fleet worker pays against a warm server). The store_remote_* metrics
// flow into the bench artifact's store section (cmd/benchjson,
// BENCH_pr5.json).
func BenchmarkStoreRemoteWarmSweep(b *testing.B) {
	disk, err := store.OpenDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(disk, server.Options{}))
	defer ts.Close()
	newStore := func() *store.Store {
		h, err := store.OpenHTTP(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		return store.NewStore(h)
	}
	scale := Scale{Warmup: 2_000, Measured: 4_000, Workloads: []string{"433.milc"}}
	cold := NewRunnerWith(scale, SessionOptions{Store: newStore()})
	if _, err := cold.Fig12(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last store.Stats
	for i := 0; i < b.N; i++ {
		st := newStore()
		sess := NewRunnerWith(scale, SessionOptions{Store: st})
		if _, err := sess.Fig12(); err != nil {
			b.Fatal(err)
		}
		if sess.Executed() != 0 {
			b.Fatalf("warm iteration executed %d simulations", sess.Executed())
		}
		last = st.Stats()
	}
	b.ReportMetric(float64(last.Remote.Hits), "store_remote_hits/op")
	b.ReportMetric(float64(last.Remote.Misses), "store_remote_misses/op")
	b.ReportMetric(float64(last.Remote.BytesRead)/1024, "store_remote_kb_read/op")
}

// BenchmarkStoreRemoteColdSweep measures the cold half of the remote
// contract for the same mini-grid: every simulation executes and writes
// through to the server. Cold-vs-warm is the headline win a shared
// store buys a fleet.
func BenchmarkStoreRemoteColdSweep(b *testing.B) {
	scale := Scale{Warmup: 2_000, Measured: 4_000, Workloads: []string{"433.milc"}}
	b.ReportAllocs()
	var last store.Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		disk, err := store.OpenDisk(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(server.New(disk, server.Options{}))
		h, err := store.OpenHTTP(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		st := store.NewStore(h)
		b.StartTimer()
		sess := NewRunnerWith(scale, SessionOptions{Store: st})
		if _, err := sess.Fig12(); err != nil {
			b.Fatal(err)
		}
		if sess.Executed() == 0 {
			b.Fatal("cold iteration executed nothing")
		}
		last = st.Stats()
		b.StopTimer()
		ts.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(last.Remote.Writes), "store_remote_writes/op")
	b.ReportMetric(float64(last.Remote.BytesWritten)/1024, "store_remote_kb_written/op")
}
