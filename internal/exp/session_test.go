package exp

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
	"pracsim/internal/exp/store/server"
	"pracsim/internal/sim"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// storeScale is small enough that the store tests stay fast but still
// cross the full grid pipeline (baseline + 1-variant sweep).
func storeScale() Scale {
	return Scale{Warmup: 2_000, Measured: 4_000, Workloads: []string{"433.milc"}}
}

// TestWarmStoreSecondSessionExecutesNothing is the tentpole contract: a
// second session against a warm store performs zero simulations and its
// figures are bit-identical to the cold session's.
func TestWarmStoreSecondSessionExecutesNothing(t *testing.T) {
	st := openStore(t)

	cold := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	first, err := cold.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Executed() == 0 {
		t.Fatal("cold session executed nothing")
	}
	if hits := cold.StoreStats().Hits; hits != 0 {
		t.Errorf("cold session reported %d store hits", hits)
	}

	warm := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	second, err := warm.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Executed(); n != 0 {
		t.Errorf("warm session executed %d simulations, want 0", n)
	}
	if hits := warm.StoreStats().Hits; hits == 0 {
		t.Error("warm session reported no store hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("warm results differ:\ncold: %+v\nwarm: %+v", first, second)
	}
	if first.Render() != second.Render() || first.CSV() != second.CSV() {
		t.Error("warm render/CSV not byte-identical to cold")
	}
	if !strings.Contains(warm.TelemetryReport(0), "store: ") {
		t.Error("telemetry report missing the store line")
	}
}

// TestCorruptStoreEntryRecomputes: damaging one warm entry must cost
// exactly one recompute — never a crash or a changed figure.
func TestCorruptStoreEntryRecomputes(t *testing.T) {
	st := openStore(t)
	cold := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	first, err := cold.Fig12()
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries written")
	}
	victim := filepath.Join(st.Dir(), entries[0].Name())
	if err := os.WriteFile(victim, []byte("truncated garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	repair := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	second, err := repair.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := repair.Executed(); n != 1 {
		t.Errorf("corrupt entry cost %d recomputes, want exactly 1", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("recomputed figure differs from the original")
	}
	// The recompute's write-back must have repaired the store.
	healed := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	if _, err := healed.Fig12(); err != nil {
		t.Fatal(err)
	}
	if n := healed.Executed(); n != 0 {
		t.Errorf("store not healed: third session executed %d", n)
	}
}

// TestStoreKeyAnatomy pins the persistent key rules: the simulator
// schema version is embedded (a bump invalidates everything), display
// names and defaulted fields never split the key, and budgets, variant
// knobs and workloads all do.
func TestStoreKeyAnatomy(t *testing.T) {
	scale := storeScale()
	base := storeKey(scale, canonicalKey(Variant{Name: "TPRAC", Policy: sim.PolicyTPRAC, NRH: 1024}, "433.milc"))
	if !strings.Contains(base, fmt.Sprintf("/v%d/", sim.SchemaVersion)) {
		t.Errorf("key %q does not embed schema version %d", base, sim.SchemaVersion)
	}
	renamed := storeKey(scale, canonicalKey(Variant{Name: "other", Policy: sim.PolicyTPRAC, NRH: 0, PRACLevel: 1}, "433.milc"))
	if base != renamed {
		t.Errorf("display name split the key:\n%s\n%s", base, renamed)
	}
	distinct := []string{
		storeKey(scale, canonicalKey(Variant{Policy: sim.PolicyTPRAC, NRH: 512}, "433.milc")),
		storeKey(scale, canonicalKey(Variant{Policy: sim.PolicyTPRAC, NRH: 1024}, "444.namd")),
		storeKey(Scale{Warmup: 1, Measured: 4_000}, canonicalKey(Variant{Policy: sim.PolicyTPRAC, NRH: 1024}, "433.milc")),
		storeKey(Scale{Warmup: 2_000, Measured: 1}, canonicalKey(Variant{Policy: sim.PolicyTPRAC, NRH: 1024}, "433.milc")),
	}
	seen := map[string]bool{base: true}
	for _, k := range distinct {
		if seen[k] {
			t.Errorf("key collision: %s", k)
		}
		seen[k] = true
	}
	// Scheduling and clocking knobs never reach the key.
	perCycle := scale
	perCycle.PerCycle, perCycle.Workers, perCycle.Serial = true, 3, true
	if storeKey(perCycle, canonicalKey(Variant{Policy: sim.PolicyTPRAC, NRH: 1024}, "433.milc")) != base {
		t.Error("scheduling/clocking knobs split the key")
	}
}

// TestShardMergeBitIdentical is the sharding contract: two shard
// sessions execute disjoint halves of the grid, and merging their result
// files reproduces the unsharded figures byte-for-byte with zero new
// simulations.
func TestShardMergeBitIdentical(t *testing.T) {
	reference := NewRunner(storeScale())
	want, err := reference.Fig12()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var files []string
	var executed int64
	for i := 0; i < 2; i++ {
		sp := shard.Spec{Index: i, Count: 2}
		sess := NewRunnerWith(storeScale(), SessionOptions{Shard: sp})
		if _, err := sess.Fig12(); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		path := filepath.Join(dir, sp.String()[:1]+".shard")
		if _, err := sess.ExportShard(path); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
		executed += sess.Executed()
	}
	if executed != reference.Executed() {
		t.Errorf("shards executed %d runs total, unsharded executed %d (duplicate or missing work)",
			executed, reference.Executed())
	}

	merge := NewRunnerWith(storeScale(), SessionOptions{})
	imported, err := merge.ImportShards(files...)
	if err != nil {
		t.Fatal(err)
	}
	if int64(imported) != executed {
		t.Errorf("imported %d runs, shards executed %d", imported, executed)
	}
	got, err := merge.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := merge.Executed(); n != 0 {
		t.Errorf("merge executed %d simulations, want 0", n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged result differs:\n got %+v\nwant %+v", got, want)
	}
	if got.Render() != want.Render() || got.CSV() != want.CSV() {
		t.Error("merged render/CSV not byte-identical to unsharded run")
	}
}

// TestValidationModesBypassStore: -differential and -percycle exist to
// actually execute simulations (comparing clockings, forcing the
// reference model); a warm store must not serve their results and
// silently validate nothing.
func TestValidationModesBypassStore(t *testing.T) {
	st := openStore(t)
	cold := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	if _, err := cold.Fig12(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"differential", "percycle"} {
		scale := storeScale()
		if mode == "differential" {
			scale.Differential = true
		} else {
			scale.PerCycle = true
		}
		sess := NewRunnerWith(scale, SessionOptions{Store: st})
		if _, err := sess.Fig12(); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if n := sess.Executed(); n == 0 {
			t.Errorf("%s mode served from the warm store: 0 simulations executed", mode)
		}
		if hits := sess.StoreStats().Hits - cold.StoreStats().Hits; hits != 0 {
			t.Errorf("%s mode took %d store hits", mode, hits)
		}
	}
}

// TestShardExportIncludesStoreHits: a shard session running against a
// warm store executes nothing, but its shard file must still hold every
// owned run — a warm store makes the simulation free, it must not make
// the run vanish from the merge.
func TestShardExportIncludesStoreHits(t *testing.T) {
	st := openStore(t)
	cold := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	if _, err := cold.Fig12(); err != nil {
		t.Fatal(err)
	}

	sp := shard.Spec{Index: 0, Count: 2}
	warmShard := NewRunnerWith(storeScale(), SessionOptions{Store: st, Shard: sp})
	if _, err := warmShard.Fig12(); err != nil {
		t.Fatal(err)
	}
	if n := warmShard.Executed(); n != 0 {
		t.Fatalf("warm shard executed %d runs", n)
	}
	path := filepath.Join(t.TempDir(), "warm.shard")
	if _, err := warmShard.ExportShard(path); err != nil {
		t.Fatal(err)
	}

	coldShard := NewRunnerWith(storeScale(), SessionOptions{Shard: sp})
	if _, err := coldShard.Fig12(); err != nil {
		t.Fatal(err)
	}
	merge := NewRunnerWith(storeScale(), SessionOptions{})
	n, err := merge.ImportShards(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != coldShard.Executed() {
		t.Errorf("warm shard exported %d runs, cold shard owns %d", n, coldShard.Executed())
	}
}

// TestImportShardsRejectsScaleMismatch: a shard built at different
// instruction budgets holds keys this session would never request;
// merging it must error instead of silently re-simulating the grid.
func TestImportShardsRejectsScaleMismatch(t *testing.T) {
	sp := shard.Spec{Index: 0, Count: 1}
	other := storeScale()
	other.Measured *= 2
	sess := NewRunnerWith(other, SessionOptions{Shard: sp})
	if _, err := sess.Fig12(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other-scale.shard")
	if _, err := sess.ExportShard(path); err != nil {
		t.Fatal(err)
	}
	merge := NewRunnerWith(storeScale(), SessionOptions{})
	if _, err := merge.ImportShards(path); err == nil {
		t.Error("scale-mismatched shard merged silently")
	} else if !strings.Contains(err.Error(), "-scale") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

// TestShardMergeIntoStore: merging with a store attached writes the
// imported runs through, so a later store-only session is fully warm.
func TestShardMergeIntoStore(t *testing.T) {
	dir := t.TempDir()
	sp := shard.Spec{Index: 0, Count: 1}
	sess := NewRunnerWith(storeScale(), SessionOptions{Shard: sp})
	if _, err := sess.Fig12(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "all.shard")
	if _, err := sess.ExportShard(path); err != nil {
		t.Fatal(err)
	}

	st := openStore(t)
	merge := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	if _, err := merge.ImportShards(path); err != nil {
		t.Fatal(err)
	}
	warm := NewRunnerWith(storeScale(), SessionOptions{Store: st})
	if _, err := warm.Fig12(); err != nil {
		t.Fatal(err)
	}
	if n := warm.Executed(); n != 0 {
		t.Errorf("store-only session after merge executed %d, want 0", n)
	}
}

// TestMemoRoundTrip: whole-experiment memoization returns the cached
// result on the second call and recomputes when the store is nil.
func TestMemoRoundTrip(t *testing.T) {
	st := openStore(t)
	calls := 0
	fn := func() (Fig3Result, error) {
		calls++
		return Fig3Result{Rows: []Fig3Row{{NMit: 1, SpikeNS: 1.0 / 3.0, ABOs: 7}}, Duration: 42}, nil
	}
	first, err := Memo(st, "fig3/test", fn)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Memo(st, "fig3/test", fn)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("memoized result differs: %+v vs %+v", first, second)
	}
	if _, err := Memo(nil, "fig3/test", fn); err != nil || calls != 2 {
		t.Errorf("nil store should run fn directly (calls=%d, err=%v)", calls, err)
	}
}

// newRemoteStore spins a pracstored server over a fresh directory and
// returns a factory for pure-HTTP store fronts against it (no local
// tier, so every access crosses the wire) plus the server handle.
func newRemoteStore(t *testing.T) (func() *store.Store, *httptest.Server) {
	t.Helper()
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(disk, server.Options{}))
	t.Cleanup(ts.Close)
	return func() *store.Store {
		h, err := store.OpenHTTP(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		return store.NewStore(h)
	}, ts
}

// TestRemoteStoreWarmSessionExecutesNothing is the fleet contract at the
// session level: a cold session warms a pracstored server, and a second
// session on a "different machine" (fresh client, no local state)
// executes zero simulations with bit-identical figures.
func TestRemoteStoreWarmSessionExecutesNothing(t *testing.T) {
	newStore, _ := newRemoteStore(t)

	cold := NewRunnerWith(storeScale(), SessionOptions{Store: newStore()})
	first, err := cold.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Executed() == 0 {
		t.Fatal("cold session executed nothing")
	}

	warm := NewRunnerWith(storeScale(), SessionOptions{Store: newStore()})
	second, err := warm.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Executed(); n != 0 {
		t.Errorf("warm remote session executed %d simulations, want 0", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("warm results differ:\ncold: %+v\nwarm: %+v", first, second)
	}
	if first.Render() != second.Render() || first.CSV() != second.CSV() {
		t.Error("warm render/CSV not byte-identical to cold")
	}
	st := warm.StoreStats()
	if st.Remote.Hits == 0 || st.Remote.Errors != 0 {
		t.Errorf("warm remote stats = %+v, want hits and no errors", st.Remote)
	}
	if !strings.Contains(warm.TelemetryReport(0), "remote: ") {
		t.Error("telemetry report missing the remote traffic")
	}
}

// TestDeadRemoteStoreDegradesToRecompute is the acceptance contract for
// a mid-campaign server death: a session whose store points at a dead
// server recomputes everything locally and produces figures identical
// to a store-less run — never an error, never a changed figure.
func TestDeadRemoteStoreDegradesToRecompute(t *testing.T) {
	newStore, ts := newRemoteStore(t)
	dead := newStore()
	ts.Close() // the server dies before (equivalently: during) the sweep

	sess := NewRunnerWith(storeScale(), SessionOptions{Store: dead})
	got, err := sess.Fig12()
	if err != nil {
		t.Fatalf("dead server broke the session: %v", err)
	}
	ref := NewRunner(storeScale())
	want, err := ref.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("degraded figures differ:\ngot:  %+v\nwant: %+v", got, want)
	}
	if sess.Executed() != ref.Executed() {
		t.Errorf("degraded session executed %d, reference %d", sess.Executed(), ref.Executed())
	}
	st := sess.StoreStats()
	if st.Hits != 0 || st.Misses == 0 || st.Remote.Errors == 0 {
		t.Errorf("degraded stats = %+v, want all misses and remote errors", st)
	}
}

// TestCorruptRemoteStoreDegradesToRecompute: a server returning
// corrupted frames (bit rot, a proxy mangling bodies) must cost
// recomputes, not correctness — the client checksum end of the
// both-ends verification contract.
func TestCorruptRemoteStoreDegradesToRecompute(t *testing.T) {
	corrupting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		frame := store.EncodeFrame("pracsim/run/v0/not-what-you-asked-for", []byte("garbage"))
		frame[len(frame)-1] ^= 1
		w.Write(frame)
	}))
	defer corrupting.Close()
	h, err := store.OpenHTTP(corrupting.URL)
	if err != nil {
		t.Fatal(err)
	}

	sess := NewRunnerWith(storeScale(), SessionOptions{Store: store.NewStore(h)})
	got, err := sess.Fig12()
	if err != nil {
		t.Fatalf("corrupting server broke the session: %v", err)
	}
	ref := NewRunner(storeScale())
	want, err := ref.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("corrupt-server figures differ from the reference")
	}
	if st := sess.StoreStats(); st.Hits != 0 || st.Remote.Errors == 0 {
		t.Errorf("stats = %+v, want zero hits and remote errors", st)
	}
}
