// Package shard partitions an experiment grid across machines. The
// pool's indexed-job model already makes every (variant, workload) cell
// an independent simulation; sharding assigns each distinct run key to
// exactly one of n shards by key hash, so shards never duplicate work —
// not even the per-workload baselines that many grid cells share — and
// the union of the shards' executed runs is exactly the unsharded run
// set.
//
// A shard run executes only its owned cells and emits its results as one
// shard file: a header line naming the format, simulator schema and
// shard, followed by the executed (key, payload) entries sorted by key.
// Merging imports every shard's entries back into a session (and,
// optionally, its persistent store); the figures and tables are then
// assembled positionally from fully-warm caches, bit-identical to an
// unsharded run.
package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"pracsim/internal/fault"
)

// format stamps the shard-file header; a layout change bumps the suffix.
const format = "pracsim-shard/1"

// Spec selects one shard of a partition. The zero value means unsharded:
// every key is owned.
type Spec struct {
	Index int
	Count int
}

// Parse reads an "i/n" shard spec (0 <= i < n, n >= 1).
func Parse(s string) (Spec, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Spec{}, fmt.Errorf("shard: %q is not i/n", s)
	}
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil {
		return Spec{}, fmt.Errorf("shard: %q is not i/n", s)
	}
	if n < 1 || i < 0 || i >= n {
		return Spec{}, fmt.Errorf("shard: %q out of range (want 0 <= i < n)", s)
	}
	return Spec{Index: i, Count: n}, nil
}

// Enabled reports whether the spec actually partitions (an unset spec or
// 0/1 owns everything).
func (sp Spec) Enabled() bool { return sp.Count > 1 }

// String renders the spec as "i/n".
func (sp Spec) String() string { return fmt.Sprintf("%d/%d", sp.Index, sp.Count) }

// Owns reports whether this shard executes the given run key. The
// assignment hashes the canonical key string, so it is deterministic
// across machines, independent of grid enumeration order, and partitions
// the key space: for any key exactly one shard of a given Count owns it.
func (sp Spec) Owns(key string) bool {
	if !sp.Enabled() {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64()%uint64(sp.Count)) == sp.Index
}

// Entry is one executed run in a shard file: the versioned store key and
// the stable-encoded result payload.
type Entry struct {
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
}

// header is the shard file's first line.
type header struct {
	Format string `json:"format"`
	Schema int    `json:"schema"`
	Shard  string `json:"shard"`
	Runs   int    `json:"runs"`
}

// WriteFile emits a shard result file. Entries are written sorted by key,
// so a shard's output is deterministic regardless of execution order.
//
// The file is published atomically (temp file + rename, the store's
// pattern): a worker crashing or being killed mid-write leaves no file
// behind rather than a torn one, and a concurrent reader — the
// dispatcher merging while a straggler's backup attempt is still
// running — only ever observes a complete, self-consistent file.
func WriteFile(path string, schema int, sp Spec, entries []Entry) error {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(header{Format: format, Schema: schema, Shard: sp.String(), Runs: len(sorted)}); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	for _, e := range sorted {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
	}
	// The temp file is opened with the final 0644 (umask applies, as it
	// did under os.WriteFile) rather than CreateTemp's 0600-plus-chmod,
	// which would force world-readable files past a restrictive umask.
	// The pid suffix keeps concurrent processes apart; within a process
	// every attempt writes a distinct path.
	out := buf.Bytes()
	if a := fault.Fire(fault.ShardWrite); a != nil {
		switch a.Kind {
		case fault.Err:
			return a.Err("write " + path)
		case fault.Short:
			// Publish the torn write: the tmp suffix means no reader sees
			// it, exactly like a worker killed mid-write.
			out = out[:len(out)/2]
			tmpName := fmt.Sprintf("%s.tmp%d", path, os.Getpid())
			os.WriteFile(tmpName, out, 0o644)
			return fmt.Errorf("shard: write %s: injected %w", path, io.ErrShortWrite)
		}
	}
	tmpName := fmt.Sprintf("%s.tmp%d", path, os.Getpid())
	tmp, err := os.OpenFile(tmpName, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// ReadFile parses a shard result file, rejecting files from another
// format or simulator schema (a stale shard must never be merged into
// figures silently).
//
// Entries stream through a json.Decoder rather than a line scanner: a
// full-scale shard entry can exceed any fixed line buffer (the previous
// scanner capped lines at 16 MiB and failed with "token too long"), and
// the decoder reads values, not lines, so entry size is bounded only by
// memory. The header/Runs count check still catches truncation.
func ReadFile(path string, schema int) ([]Entry, error) {
	var entries []Entry
	if _, err := scanFile(path, schema, func(e Entry) { entries = append(entries, e) }); err != nil {
		return nil, err
	}
	return entries, nil
}

// Validate streams a shard file through the same format, schema and
// truncation checks as ReadFile but discards the entries, reporting
// only how many runs the file holds — the dispatcher's convergence
// check, which must not hold a full-scale shard in memory just to
// count it.
func Validate(path string, schema int) (int, error) {
	return scanFile(path, schema, nil)
}

// scanFile is the shared streaming reader: header checks, per-entry
// decode (delivered to each when non-nil) and the Runs count check.
func scanFile(path string, schema int, each func(Entry)) (int, error) {
	act := fault.Fire(fault.ShardRead)
	if act != nil && act.Kind == fault.Err {
		return 0, act.Err("read " + path)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	var rd io.Reader = bufio.NewReader(f)
	if act != nil && act.Kind == fault.Corrupt {
		// A bit flip in the stream: the JSON decode or the header/Runs
		// check downstream must catch it, never a silent bad merge.
		rd = &corruptReader{r: rd}
	}
	dec := json.NewDecoder(rd)
	var h header
	if err := dec.Decode(&h); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, fmt.Errorf("shard: %s: empty file", path)
		}
		return 0, fmt.Errorf("shard: %s is not a %s file", path, format)
	}
	if h.Format != format {
		return 0, fmt.Errorf("shard: %s is not a %s file", path, format)
	}
	if h.Schema != schema {
		return 0, fmt.Errorf("shard: %s has schema %d, this simulator is schema %d", path, h.Schema, schema)
	}
	count := 0
	for {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return 0, fmt.Errorf("shard: %s entry %d: %w", path, count, err)
		}
		if each != nil {
			each(e)
		}
		count++
	}
	if count != h.Runs {
		return 0, fmt.Errorf("shard: %s holds %d runs, header says %d (truncated?)", path, count, h.Runs)
	}
	return count, nil
}

// corruptReader flips one byte partway into the stream — the shard.read
// failpoint's bitrot vehicle.
type corruptReader struct {
	r    io.Reader
	read int64
	done bool
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	// Flip a byte once, past the header region, so the corruption lands
	// in entry data rather than trivially failing the first decode.
	if !c.done && n > 0 && c.read+int64(n) > 256 {
		i := 256 - c.read
		if i < 0 || i >= int64(n) {
			i = int64(n) - 1
		}
		p[i] ^= 0x80
		c.done = true
	}
	c.read += int64(n)
	return n, err
}
