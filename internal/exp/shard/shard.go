// Package shard partitions an experiment grid across machines. The
// pool's indexed-job model already makes every (variant, workload) cell
// an independent simulation; sharding assigns each distinct run key to
// exactly one of n shards by key hash, so shards never duplicate work —
// not even the per-workload baselines that many grid cells share — and
// the union of the shards' executed runs is exactly the unsharded run
// set.
//
// A shard run executes only its owned cells and emits its results as one
// shard file: a header line naming the format, simulator schema and
// shard, followed by the executed (key, payload) entries sorted by key.
// Merging imports every shard's entries back into a session (and,
// optionally, its persistent store); the figures and tables are then
// assembled positionally from fully-warm caches, bit-identical to an
// unsharded run.
package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
)

// format stamps the shard-file header; a layout change bumps the suffix.
const format = "pracsim-shard/1"

// Spec selects one shard of a partition. The zero value means unsharded:
// every key is owned.
type Spec struct {
	Index int
	Count int
}

// Parse reads an "i/n" shard spec (0 <= i < n, n >= 1).
func Parse(s string) (Spec, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Spec{}, fmt.Errorf("shard: %q is not i/n", s)
	}
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil {
		return Spec{}, fmt.Errorf("shard: %q is not i/n", s)
	}
	if n < 1 || i < 0 || i >= n {
		return Spec{}, fmt.Errorf("shard: %q out of range (want 0 <= i < n)", s)
	}
	return Spec{Index: i, Count: n}, nil
}

// Enabled reports whether the spec actually partitions (an unset spec or
// 0/1 owns everything).
func (sp Spec) Enabled() bool { return sp.Count > 1 }

// String renders the spec as "i/n".
func (sp Spec) String() string { return fmt.Sprintf("%d/%d", sp.Index, sp.Count) }

// Owns reports whether this shard executes the given run key. The
// assignment hashes the canonical key string, so it is deterministic
// across machines, independent of grid enumeration order, and partitions
// the key space: for any key exactly one shard of a given Count owns it.
func (sp Spec) Owns(key string) bool {
	if !sp.Enabled() {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64()%uint64(sp.Count)) == sp.Index
}

// Entry is one executed run in a shard file: the versioned store key and
// the stable-encoded result payload.
type Entry struct {
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
}

// header is the shard file's first line.
type header struct {
	Format string `json:"format"`
	Schema int    `json:"schema"`
	Shard  string `json:"shard"`
	Runs   int    `json:"runs"`
}

// WriteFile emits a shard result file. Entries are written sorted by key,
// so a shard's output is deterministic regardless of execution order.
func WriteFile(path string, schema int, sp Spec, entries []Entry) error {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(header{Format: format, Schema: schema, Shard: sp.String(), Runs: len(sorted)}); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	for _, e := range sorted {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// ReadFile parses a shard result file, rejecting files from another
// format or simulator schema (a stale shard must never be merged into
// figures silently).
func ReadFile(path string, schema int) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("shard: %s: empty file", path)
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Format != format {
		return nil, fmt.Errorf("shard: %s is not a %s file", path, format)
	}
	if h.Schema != schema {
		return nil, fmt.Errorf("shard: %s has schema %d, this simulator is schema %d", path, h.Schema, schema)
	}
	var entries []Entry
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("shard: %s entry %d: %w", path, len(entries), err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	if len(entries) != h.Runs {
		return nil, fmt.Errorf("shard: %s holds %d runs, header says %d (truncated?)", path, len(entries), h.Runs)
	}
	return entries, nil
}
