package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParse(t *testing.T) {
	good := map[string]Spec{
		"0/1": {0, 1},
		"0/2": {0, 2},
		"1/2": {1, 2},
		"7/8": {7, 8},
	}
	for s, want := range good {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "1", "2/2", "-1/2", "1/0", "a/b", "1/2/3x"} {
		if sp, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted as %v", s, sp)
		}
	}
}

// TestOwnsPartitions: for any Count, every key is owned by exactly one
// shard, ownership is deterministic, and the split is reasonably even.
func TestOwnsPartitions(t *testing.T) {
	for _, count := range []int{1, 2, 3, 8} {
		owners := make([]int, count)
		for k := 0; k < 1000; k++ {
			key := fmt.Sprintf("pracsim/run/v3/key-%d", k)
			n := 0
			for i := 0; i < count; i++ {
				sp := Spec{Index: i, Count: count}
				if sp.Owns(key) {
					n++
					owners[i]++
				}
				if got := sp.Owns(key); got != sp.Owns(key) {
					t.Fatalf("nondeterministic ownership for %q", key)
				}
			}
			if n != 1 {
				t.Fatalf("count=%d: key %q owned by %d shards", count, key, n)
			}
		}
		expected := 1000 / count
		for i, n := range owners {
			if count > 1 && (n < expected/2 || n > expected*2) {
				t.Errorf("count=%d: shard %d owns %d of 1000 keys, expected ~%d (badly skewed)", count, i, n, expected)
			}
		}
	}
}

func TestZeroSpecOwnsEverything(t *testing.T) {
	var sp Spec
	if sp.Enabled() || !sp.Owns("anything") {
		t.Errorf("zero spec should own every key")
	}
	one, _ := Parse("0/1")
	if one.Enabled() || !one.Owns("anything") {
		t.Errorf("0/1 should own every key")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.jsonl")
	entries := []Entry{
		{Key: "z-last", Payload: []byte(`{"r":3}`)},
		{Key: "a-first", Payload: []byte(`{"r":1}`)},
		{Key: "m-mid", Payload: []byte{0x00, 0xff, 0x10}}, // binary-safe
	}
	sp := Spec{Index: 0, Count: 2}
	if err := WriteFile(path, 3, sp, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{entries[1], entries[2], entries[0]} // sorted by key
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// Deterministic bytes regardless of input order.
	path2 := filepath.Join(t.TempDir(), "shard0b.jsonl")
	if err := WriteFile(path2, 3, sp, []Entry{entries[1], entries[0], entries[2]}); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Error("shard file bytes depend on entry order")
	}
}

// TestLargeEntryRoundTrips: a full-scale shard entry far exceeds any
// line buffer (the old scanner capped lines at 16 MiB and failed with
// "token too long"); the streaming decoder must round-trip it.
func TestLargeEntryRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.runs")
	big := make([]byte, 17*1024*1024) // >16 MiB raw, ~23 MiB as a base64 JSON line
	for i := range big {
		big[i] = byte(i)
	}
	entries := []Entry{{Key: "big-run", Payload: big}, {Key: "small", Payload: []byte("x")}}
	if err := WriteFile(path, 3, Spec{0, 1}, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 3)
	if err != nil {
		t.Fatalf("large entry failed to read back: %v", err)
	}
	if len(got) != 2 || got[0].Key != "big-run" || !reflect.DeepEqual(got[0].Payload, big) {
		t.Error("large entry did not round-trip intact")
	}
}

// TestWriteFileAtomic: WriteFile publishes via temp file + rename, so
// the target directory never holds a partial shard file or leftover
// temp debris, and overwriting an existing file swaps it whole.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.runs")
	if err := WriteFile(path, 3, Spec{0, 2}, []Entry{{Key: "a", Payload: []byte("1")}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, 3, Spec{0, 2}, []Entry{{Key: "a", Payload: []byte("2")}, {Key: "b", Payload: []byte("3")}}); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name() != "s.runs" {
		var names []string
		for _, f := range files {
			names = append(names, f.Name())
		}
		t.Errorf("directory holds %v, want just s.runs (temp debris?)", names)
	}
	if got, err := ReadFile(path, 3); err != nil || len(got) != 2 {
		t.Errorf("overwrite not whole: %d entries, %v", len(got), err)
	}
	// A write into a missing directory fails cleanly instead of leaving
	// anything behind.
	if err := WriteFile(filepath.Join(dir, "absent", "s.runs"), 3, Spec{0, 2}, nil); err == nil {
		t.Error("write into missing directory succeeded")
	}
}

// TestReadFileRejects: wrong schema, wrong format and truncation are
// refused — a stale or torn shard must never merge silently.
func TestReadFileRejects(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	if err := WriteFile(path, 3, Spec{0, 2}, []Entry{{Key: "k", Payload: []byte("p")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, 4); err == nil {
		t.Error("schema mismatch accepted")
	}
	data, _ := os.ReadFile(path)
	trunc := filepath.Join(dir, "trunc.jsonl")
	if err := os.WriteFile(trunc, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(trunc, 3); err == nil {
		t.Error("truncated shard accepted")
	}
	junk := filepath.Join(dir, "junk.jsonl")
	if err := os.WriteFile(junk, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(junk, 3); err == nil {
		t.Error("junk file accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.jsonl"), 3); err == nil {
		t.Error("missing file accepted")
	}
}
