package store

import (
	"errors"
	"time"
)

// ErrNotFound marks the one expected Get/Stat/Delete outcome that is not
// a failure: the store simply has no entry for the key. Every backend
// returns exactly this error (wrapped or not) for an absent entry, so
// callers can tell a cold cache from a broken one.
var ErrNotFound = errors.New("store: entry not found")

// Info describes one stored entry, as reported by Stat and List. Size is
// payload bytes (the encoded result), not entry-file overhead.
type Info struct {
	Key     string    `json:"key"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// Backend is one storage implementation under the Store front: a local
// directory (Disk), a pracstored server (HTTP), or a local read-through
// cache over a remote (Tiered). All operations address entries by their
// full versioned run key; content addressing (SHA-256 of the key) is an
// implementation detail of the backends.
//
// Backends are safe for concurrent use. Get returns ErrNotFound for an
// absent entry and a descriptive error for anything else (corruption,
// transport failure); the Store front degrades both to a miss, so a
// backend never needs to hide a failure to honor the cache contract.
type Backend interface {
	// Get returns the validated payload stored under key.
	Get(key string) ([]byte, error)
	// Put durably and atomically publishes payload under key,
	// replacing any previous entry. Concurrent writers are safe; the
	// last one wins (with deterministic payloads all carry identical
	// bytes).
	Put(key string, payload []byte) error
	// Stat describes the entry under key without fetching its payload
	// to the caller.
	Stat(key string) (Info, error)
	// List enumerates every valid entry. Corrupt or foreign files are
	// skipped, not errors — List is the maintenance surface and must
	// work on the stores most in need of maintenance.
	List() ([]Info, error)
	// Delete removes the entry under key (ErrNotFound when absent).
	Delete(key string) error
	// Spec returns the -store argument that reopens this backend: the
	// directory for Disk, the base URL for HTTP and Tiered. The
	// dispatch driver forwards it to every fleet worker.
	Spec() string
}

// entryWalker is the optional streaming enumeration: backends that can
// deliver entries one at a time implement it, and the maintenance layer
// (Collect, Prune) prefers it over List so summarizing a million-entry
// store never materializes a million Infos.
type entryWalker interface {
	ListEach(fn func(Info) error) error
}

// ListEach streams b's entries to fn, using the backend's streaming
// enumeration when it has one and degrading to a materialized List
// otherwise. An error from fn stops the walk and is returned.
func ListEach(b Backend, fn func(Info) error) error {
	if w, ok := b.(entryWalker); ok {
		return w.ListEach(fn)
	}
	infos, err := b.List()
	if err != nil {
		return err
	}
	for _, info := range infos {
		if err := fn(info); err != nil {
			return err
		}
	}
	return nil
}

// RemoteStats counts a remote (HTTP) backend's wire traffic, kept apart
// from the front counters so a tiered session can show how many hits the
// local cache absorbed versus how many crossed the network — and how
// often the network failed.
type RemoteStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`
	Errors int64 `json:"errors"`
	// Skipped counts operations the client failed fast without dialing,
	// after consecutive transport failures opened its circuit breaker —
	// how a sweep against a black-holed server stays seconds, not
	// timeout-minutes.
	Skipped int64 `json:"skipped"`
	// Retries counts request attempts beyond each operation's first —
	// transient failures the retry policy absorbed before the operation
	// succeeded or degraded.
	Retries      int64 `json:"retries"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
}

// remoteStatser is implemented by backends with a remote leg (HTTP
// itself, Tiered by delegation); the Store front folds the snapshot into
// Stats.Remote.
type remoteStatser interface {
	RemoteStats() RemoteStats
}
