package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pracsim/internal/fault"
)

// magic stamps the entry-file format; a format change bumps the suffix.
const magic = "pracstore1\n"

// EncodeFrame frames a (key, payload) pair into the self-validating
// entry format shared by the disk files and the pracstored wire
// protocol:
//
//	magic | keyLen uvarint | key | payloadLen uvarint | payload | sha256(payload)
func EncodeFrame(key string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var lenbuf [binary.MaxVarintLen64]byte
	buf.Write(lenbuf[:binary.PutUvarint(lenbuf[:], uint64(len(key)))])
	buf.WriteString(key)
	buf.Write(lenbuf[:binary.PutUvarint(lenbuf[:], uint64(len(payload)))])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes()
}

// DecodeFrame validates a framed entry against the expected key and
// returns its payload. Any deviation — wrong magic, truncation, a
// different key under the same hash, a checksum mismatch — is an error.
func DecodeFrame(data []byte, key string) ([]byte, error) {
	gotKey, payload, err := DecodeFrameAny(data)
	if err != nil {
		return nil, err
	}
	if gotKey != key {
		return nil, fmt.Errorf("store: key mismatch (hash collision or tampering)")
	}
	return payload, nil
}

// parseFrameHeader reads a frame's prefix — magic, key, payload length —
// without touching the payload, reporting where the payload starts. The
// one parser both full validation (DecodeFrameAny) and cheap metadata
// (Disk.Stat) build on.
func parseFrameHeader(data []byte) (key string, payLen uint64, headerLen int, err error) {
	if !bytes.HasPrefix(data, []byte(magic)) {
		return "", 0, 0, fmt.Errorf("store: bad magic")
	}
	rest := data[len(magic):]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < keyLen {
		return "", 0, 0, fmt.Errorf("store: truncated key")
	}
	rest = rest[n:]
	key = string(rest[:keyLen])
	rest = rest[keyLen:]
	payLen, m := binary.Uvarint(rest)
	if m <= 0 {
		return "", 0, 0, fmt.Errorf("store: truncated payload length")
	}
	return key, payLen, len(magic) + n + int(keyLen) + m, nil
}

// DecodeFrameAny validates a framed entry without an expected key and
// returns the key it carries alongside the payload — the server's PUT
// validation, which learns the key from the frame itself.
func DecodeFrameAny(data []byte) (key string, payload []byte, err error) {
	key, payLen, headerLen, err := parseFrameHeader(data)
	if err != nil {
		return "", nil, err
	}
	rest := data[headerLen:]
	// Compare without adding to payLen: a crafted length near 2^64 must
	// fail here, not wrap around and panic in the slice expression.
	if uint64(len(rest)) < payLen || uint64(len(rest))-payLen != sha256.Size {
		return "", nil, fmt.Errorf("store: truncated payload")
	}
	payload = rest[:payLen]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], rest[payLen:]) {
		return "", nil, fmt.Errorf("store: payload checksum mismatch")
	}
	return key, payload, nil
}

// Disk is the local-directory backend: one checksummed entry file per
// key, named by the key's hash. Writes go through a temp file and an
// atomic rename, so concurrent writers (even across processes sharing
// one store directory) only ever publish complete, self-validating
// entries. The on-disk format predates the Backend split and is
// unchanged: stores written by earlier releases read back as-is.
type Disk struct {
	dir    string
	tmpAge time.Duration

	// lc is the budget/eviction layer, nil unless DiskOptions.BudgetBytes
	// was set — a budget-less Disk pays one nil check per operation.
	lc *lifecycle

	// quarantined counts entries Get moved aside after they failed
	// validation; see Quarantined.
	quarantined atomic.Int64
	// tmpSwept counts orphaned put-*.tmp files removed at Open; see
	// TmpSwept.
	tmpSwept atomic.Int64
}

// DefaultTmpSweepAge gates the Open-time temp sweep: only put-*.tmp
// files this stale are orphans. A younger temp file may belong to a
// concurrent writer mid-writeAtomic (another fleet worker sharing the
// directory), and deleting it would fail that writer's rename.
const DefaultTmpSweepAge = time.Hour

// DiskOptions tunes the disk backend. The zero value means defaults, so
// OpenDiskWith(dir, DiskOptions{}) == OpenDisk(dir).
type DiskOptions struct {
	// BudgetBytes caps the store's entry-file footprint: when a Put
	// pushes past it, a background sweep evicts least-recently-accessed
	// entries until the footprint is ~90% of the budget. 0 disables
	// eviction (the default — the store grows unbounded, as before).
	BudgetBytes int64
	// TmpSweepAge overrides how stale a put-*.tmp file must be before
	// the Open-time sweep treats it as an orphan (default
	// DefaultTmpSweepAge). Chaos tests shrink it instead of faking
	// mtimes.
	TmpSweepAge time.Duration
}

// OpenDisk creates (if needed) and returns the disk backend rooted at dir.
func OpenDisk(dir string) (*Disk, error) {
	return OpenDiskWith(dir, DiskOptions{})
}

// OpenDiskWith is OpenDisk with explicit lifecycle options. When a
// budget is configured, the access-time index is rebuilt from the
// directory (sharpened by the persisted sidecar) and an immediately
// over-budget store starts a sweep right away.
func OpenDiskWith(dir string, opts DiskOptions) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	//praclint:allow failpoint open-time setup; chaos schedules target the live get/put/evict paths, and a setup failure fails Open loudly
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{dir: dir, tmpAge: opts.TmpSweepAge}
	if d.tmpAge <= 0 {
		d.tmpAge = DefaultTmpSweepAge
	}
	if opts.BudgetBytes > 0 {
		d.lc = &lifecycle{budget: opts.BudgetBytes}
		d.lc.rebuild(dir)
	}
	d.sweepTmp()
	d.maybeSweep()
	return d, nil
}

// sweepTmp removes stale put-*.tmp files — the debris a process killed
// mid-writeAtomic leaves behind, which the deferred cleanup never ran
// for. Age-gated (tmpSweepAge) and best-effort: a sweep failure costs
// disk space, never correctness.
func (d *Disk) sweepTmp() {
	//praclint:allow failpoint best-effort debris sweep; a failure costs disk space, never correctness
	tmps, err := filepath.Glob(filepath.Join(d.dir, "put-*.tmp"))
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-d.tmpAge)
	for _, path := range tmps {
		//praclint:allow failpoint best-effort debris sweep; a failure costs disk space, never correctness
		fi, err := os.Stat(path)
		if err != nil || fi.ModTime().After(cutoff) {
			continue
		}
		//praclint:allow failpoint best-effort debris sweep; a failure costs disk space, never correctness
		if os.Remove(path) == nil {
			d.tmpSwept.Add(1)
		}
	}
}

// TmpSwept reports how many orphaned temp files Open removed.
func (d *Disk) TmpSwept() int64 { return d.tmpSwept.Load() }

// Dir reports the backend's root directory.
func (d *Disk) Dir() string { return d.dir }

// Spec reports the -store argument that reopens this backend.
func (d *Disk) Spec() string { return d.dir }

func (d *Disk) path(key string) string { return d.hashPath(Hash(key)) }

func (d *Disk) hashPath(hash string) string {
	return filepath.Join(d.dir, hash+".run")
}

// Get returns the payload stored under key: ErrNotFound when absent, a
// validation error when the entry is truncated, corrupted or colliding.
// An entry that fails validation is quarantined — renamed to
// *.quarantine, out of the .run namespace — so the bad bytes are read
// and rejected once, not on every access, while staying on disk for
// diagnosis.
func (d *Disk) Get(key string) ([]byte, error) {
	hash := Hash(key)
	path := d.hashPath(hash)
	if a := fault.Fire(fault.StoreDiskEvict); a != nil && a.Kind == fault.Evict {
		// Injected eviction: the entry vanishes before it is served, so
		// this read (and every later one until a re-Put) is a plain miss.
		d.injectEvict(hash)
	}
	act := fault.Fire(fault.StoreDiskGet)
	if act != nil && act.Kind == fault.Err {
		return nil, act.Err("get " + path)
	}
	d.lcPin(hash)
	defer d.lcUnpin(hash)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	if act != nil && act.Kind == fault.Corrupt {
		data = fault.CorruptByte(data)
	}
	payload, err := DecodeFrame(data, key)
	if err != nil {
		d.quarantine(path)
		d.lcForget(hash)
		return nil, err
	}
	d.lcTouchGet(hash)
	return payload, nil
}

// quarantine moves a failed-validation entry aside, best-effort: the
// rename removes it from the .run namespace (List, Stat and future Gets
// see it as absent) while keeping the bytes for diagnosis. A re-Put of
// the key publishes a fresh entry at the original path.
func (d *Disk) quarantine(path string) {
	if os.Rename(path, path+".quarantine") == nil {
		d.quarantined.Add(1)
	}
}

// Quarantined reports how many corrupt entries this backend moved aside.
func (d *Disk) Quarantined() int64 { return d.quarantined.Load() }

// Put stores payload under key via the atomic temp-file + rename path.
func (d *Disk) Put(key string, payload []byte) error {
	if a := fault.Fire(fault.StoreDiskPut); a != nil {
		switch a.Kind {
		case fault.ENOSPC:
			return fmt.Errorf("store: put %s: injected %w", d.dir, syscall.ENOSPC)
		case fault.Short:
			return fmt.Errorf("store: put %s: injected %w", d.dir, io.ErrShortWrite)
		case fault.Err:
			return a.Err("put " + d.dir)
		}
	}
	hash := Hash(key)
	frame := EncodeFrame(key, payload)
	// Pinned across the publish so a concurrent budget sweep cannot
	// select the entry while it is being (re)written — the sweep would
	// otherwise race the rename and delete what was just published.
	d.lcPin(hash)
	defer d.lcUnpin(hash)
	if err := d.writeAtomic(d.hashPath(hash), frame); err != nil {
		return err
	}
	d.lcTouchPut(hash, int64(len(frame)))
	return nil
}

// Stat describes the entry under key without reading its payload: only
// the frame header is parsed, and the file size is checked against the
// declared payload length (so truncation reads as absent). The payload
// checksum is Get's job — Stat answers "is a plausible entry there and
// how big is it", which is what Stat-before-Put and maintenance need.
func (d *Disk) Stat(key string) (Info, error) {
	//praclint:allow failpoint maintenance surface, not on any hot path; a Stat error degrades to a Put retry, never to wrong data
	f, err := os.Open(d.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return Info{}, ErrNotFound
		}
		return Info{}, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	//praclint:allow failpoint maintenance surface; see the Open note above
	fi, err := f.Stat()
	if err != nil {
		return Info{}, fmt.Errorf("store: %w", err)
	}
	// Run keys are a couple hundred bytes; a header that does not fit
	// in this prefix is not one of ours.
	buf := make([]byte, 4096)
	n, rerr := io.ReadFull(f, buf)
	if rerr != nil && rerr != io.ErrUnexpectedEOF {
		return Info{}, fmt.Errorf("store: %w", rerr)
	}
	gotKey, payLen, headerLen, err := parseFrameHeader(buf[:n])
	if err != nil {
		return Info{}, err
	}
	if gotKey != key {
		return Info{}, fmt.Errorf("store: key mismatch (hash collision or tampering)")
	}
	if uint64(fi.Size()) != uint64(headerLen)+payLen+sha256.Size {
		return Info{}, fmt.Errorf("store: truncated payload")
	}
	return Info{Key: key, Size: int64(payLen), ModTime: fi.ModTime()}, nil
}

// List enumerates every valid entry in the directory. Files that are not
// entries or fail validation are skipped: the maintenance surface must
// work on damaged stores.
func (d *Disk) List() ([]Info, error) {
	//praclint:allow failpoint maintenance enumeration, tolerant of damage by design; failures skip entries rather than corrupt results
	dirents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var infos []Info
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".run") {
			continue
		}
		//praclint:allow failpoint maintenance enumeration; see the ReadDir note above
		data, err := os.ReadFile(filepath.Join(d.dir, name))
		if err != nil {
			continue
		}
		key, payload, err := DecodeFrameAny(data)
		if err != nil || Hash(key)+".run" != name {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		infos = append(infos, Info{Key: key, Size: int64(len(payload)), ModTime: fi.ModTime()})
	}
	return infos, nil
}

// ListEach streams every plausible entry to fn without materializing
// the listing or reading payloads: per entry only the frame header is
// parsed (same discipline as Stat) and the file size checked against the
// declared payload length, so a million-entry store costs one header
// read per entry, not a resident []Info of full-file reads. Damaged or
// foreign files are skipped; an error from fn stops the walk and is
// returned as-is.
func (d *Disk) ListEach(fn func(Info) error) error {
	//praclint:allow failpoint maintenance enumeration; same contract as List
	dirents, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	buf := make([]byte, 4096)
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".run") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		//praclint:allow failpoint maintenance enumeration; same contract as List
		f, err := os.Open(filepath.Join(d.dir, name))
		if err != nil {
			continue
		}
		n, rerr := io.ReadFull(f, buf)
		f.Close()
		if rerr != nil && rerr != io.ErrUnexpectedEOF {
			continue
		}
		key, payLen, headerLen, err := parseFrameHeader(buf[:n])
		if err != nil || Hash(key)+".run" != name {
			continue
		}
		if uint64(fi.Size()) != uint64(headerLen)+payLen+sha256.Size {
			continue
		}
		if err := fn(Info{Key: key, Size: int64(payLen), ModTime: fi.ModTime()}); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the entry under key.
func (d *Disk) Delete(key string) error {
	hash := Hash(key)
	//praclint:allow failpoint eviction deletes are exercised through the store.disk.evict failpoint on the sweep path; a direct Delete error surfaces to the caller unchanged
	err := os.Remove(d.hashPath(hash))
	if os.IsNotExist(err) {
		return ErrNotFound
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.lcForget(hash)
	return nil
}

// Footprint reports the directory's raw entry count and file bytes
// without validating entries — cheap enough for a metrics scrape.
func (d *Disk) Footprint() (entries int, bytes int64, err error) {
	//praclint:allow failpoint metrics scrape; an error here feeds a gauge, never a result
	dirents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".run") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		entries++
		bytes += fi.Size()
	}
	return entries, bytes, nil
}

// GetFrame returns the raw framed entry stored under a content hash —
// the pracstored read path, which serves frames without knowing keys.
func (d *Disk) GetFrame(hash string) ([]byte, time.Time, error) {
	if a := fault.Fire(fault.StoreDiskEvict); a != nil && a.Kind == fault.Evict {
		d.injectEvict(hash)
	}
	path := d.hashPath(hash)
	d.lcPin(hash)
	defer d.lcUnpin(hash)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, time.Time{}, ErrNotFound
		}
		return nil, time.Time{}, fmt.Errorf("store: %w", err)
	}
	mtime := time.Time{}
	if fi, err := os.Stat(path); err == nil {
		mtime = fi.ModTime()
	}
	d.lcTouchGet(hash)
	return data, mtime, nil
}

// ErrBadFrame wraps PutFrame's validation failures, so callers (the
// pracstored PUT handler) can blame the uploader (HTTP 400) for a bad
// frame and the storage (HTTP 500) for everything else.
var ErrBadFrame = errors.New("store: invalid frame")

// PutFrame validates a raw framed entry and atomically publishes it
// under hash — the pracstored write path. The frame must decode cleanly
// (magic, lengths, payload checksum) and its embedded key must actually
// hash to the claimed address; anything else reports ErrBadFrame before
// a byte lands in the store.
func (d *Disk) PutFrame(hash string, frame []byte) (key string, payloadLen int, err error) {
	key, payload, err := DecodeFrameAny(frame)
	if err != nil {
		return "", 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if Hash(key) != hash {
		return "", 0, fmt.Errorf("%w: frame key hashes to %s, not the addressed %s", ErrBadFrame, Hash(key), hash)
	}
	d.lcPin(hash)
	defer d.lcUnpin(hash)
	if err := d.writeAtomic(d.hashPath(hash), frame); err != nil {
		return "", 0, err
	}
	d.lcTouchPut(hash, int64(len(frame)))
	return key, len(payload), nil
}

// DeleteFrame removes the entry under a content hash.
func (d *Disk) DeleteFrame(hash string) error {
	//praclint:allow failpoint same contract as Delete; the injected-eviction path fires store.disk.evict before reaching here
	err := os.Remove(d.hashPath(hash))
	if os.IsNotExist(err) {
		return ErrNotFound
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.lcForget(hash)
	return nil
}

// writeAtomic publishes data at path via a temp file in the store
// directory and an atomic rename, so readers and concurrent writers
// (same key or not, same process or not) never observe a partial entry.
func (d *Disk) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
