package store

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"pracsim/internal/fault"
	"pracsim/internal/retry"
)

// MaxEntryBytes bounds how much of an entry either end of the wire will
// buffer: a misbehaving peer must cost a bounded read, never an OOM.
// Real encoded RunResults are kilobytes. Shared with the server so the
// size bound cannot drift between the two ends.
const MaxEntryBytes = 256 << 20

// GzipMinBytes is the smallest body worth compressing in either
// direction; below it the gzip header overhead beats the savings.
const GzipMinBytes = 1 << 10

// breakerTrip is the client's failure memory: after this many
// consecutive transport failures (timeouts, refused or black-holed
// connections — not HTTP error statuses, which prove the server is
// reachable) the circuit opens and operations fail fast instead of
// dialing. After BreakerCooldown the breaker goes half-open: exactly one
// probe request is let through, and its outcome either closes the
// circuit (any response) or re-opens it for another cooldown. Without
// this, a firewalled-dead server would cost a full per-attempt timeout
// per run, serially, turning a seconds-long sweep into minutes of
// stalls — and without the half-open probe, a revived server would
// never be re-used.
const breakerTrip = 5

// TokenEnv names the environment variable the HTTP client (and
// cmd/pracstored, as its default -token) reads the bearer token from —
// an env var so the secret never appears in argv or shard-dispatch
// command lines.
const TokenEnv = "PRACSTORE_TOKEN"

// HTTPOptions tunes the client's failure policy. The zero value means
// defaults, so OpenHTTPWith(url, HTTPOptions{}) == OpenHTTP(url).
type HTTPOptions struct {
	// Timeout bounds each request attempt with a context deadline
	// (default 10s). This replaces a whole-client timeout: a retried
	// operation gets a fresh deadline per attempt, so one black-holed
	// GET costs Timeout, not Timeout×Attempts of stall before anything
	// is retried.
	Timeout time.Duration
	// Attempts is the per-operation try budget, including the first
	// (default 3). Only transport failures, timeouts and 5xx responses
	// are retried; 404s, other 4xx and frame-validation failures are
	// permanent.
	Attempts int
	// RetryBase is the backoff before the first retry (default 50ms);
	// waits double per retry, capped at 8×, with deterministic jitter.
	RetryBase time.Duration
	// BreakerCooldown is how long an open circuit rejects operations
	// before going half-open and probing the server again (default 2s).
	BreakerCooldown time.Duration
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Attempts < 1 {
		o.Attempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	return o
}

// HTTP is the remote backend: a client for the pracstored service. Every
// entry travels as the same self-validating frame the disk backend
// stores, so checksums are verified on both ends of both directions —
// the server rejects corrupt uploads before publishing, the client
// treats corrupt downloads as misses. Transport failures, timeouts and
// unexpected statuses are retried under one policy (per-attempt
// deadlines, capped jittered backoff) and then degrade to misses at the
// Store front; the remote stats keep every error, retry and fast-fail
// visible.
type HTTP struct {
	base   string // normalized base URL, no trailing slash
	token  string
	client *http.Client
	policy retry.Policy

	hits, misses, writes, errs, skipped, retries, bytesRead, bytesWritten atomic.Int64

	// failsSinceOK counts transport failures since the last response of
	// any kind; at breakerTrip the circuit opens until openUntil
	// (unix-nanos), after which probing gates a single half-open probe.
	failsSinceOK atomic.Int64
	openUntil    atomic.Int64
	probing      atomic.Bool
	cooldown     time.Duration
}

// OpenHTTP returns a client backend for a pracstored base URL with the
// default failure policy. The bearer token, when the server requires
// one, comes from $PRACSTORE_TOKEN. Only the URL is validated here — the
// server is contacted lazily, and an unreachable server degrades every
// operation rather than failing open.
func OpenHTTP(rawurl string) (*HTTP, error) {
	return OpenHTTPWith(rawurl, HTTPOptions{})
}

// OpenHTTPWith returns a client backend with an explicit failure policy
// — the -store-timeout / -store-retries surface.
func OpenHTTPWith(rawurl string, opts HTTPOptions) (*HTTP, error) {
	u, err := url.Parse(rawurl)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: invalid remote store URL %q (want http://host:port)", rawurl)
	}
	opts = opts.withDefaults()
	base := strings.TrimRight(u.String(), "/")
	return &HTTP{
		base:  base,
		token: os.Getenv(TokenEnv),
		// No whole-client timeout: each attempt carries its own context
		// deadline, so retries are paced by the policy, not serialized
		// behind one 30s stall.
		client: &http.Client{},
		policy: retry.Policy{
			Attempts: opts.Attempts,
			Base:     opts.RetryBase,
			PerTry:   opts.Timeout,
			Seed:     hashSeed(base),
		},
		cooldown: opts.BreakerCooldown,
	}, nil
}

// hashSeed derives a stable jitter seed from the base URL so two clients
// of the same server pace identically across runs.
func hashSeed(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Spec reports the server base URL.
func (h *HTTP) Spec() string { return h.base }

// RemoteStats snapshots the wire-traffic counters.
func (h *HTTP) RemoteStats() RemoteStats {
	return RemoteStats{
		Hits:         h.hits.Load(),
		Misses:       h.misses.Load(),
		Writes:       h.writes.Load(),
		Errors:       h.errs.Load(),
		Skipped:      h.skipped.Load(),
		Retries:      h.retries.Load(),
		BytesRead:    h.bytesRead.Load(),
		BytesWritten: h.bytesWritten.Load(),
	}
}

func (h *HTTP) entryURL(key string) string { return h.base + "/v1/e/" + Hash(key) }

// circuitOpen reports whether this attempt should fail fast instead of
// dialing a server that hasn't answered in breakerTrip attempts. Once
// the cooldown elapses the breaker is half-open: the first caller wins
// the probe slot and dials; everyone else keeps failing fast until that
// probe's outcome either closes the circuit or re-opens it.
func (h *HTTP) circuitOpen() bool {
	if h.failsSinceOK.Load() < breakerTrip {
		return false
	}
	if time.Now().UnixNano() < h.openUntil.Load() {
		return true
	}
	return !h.probing.CompareAndSwap(false, true)
}

// transportFail records a transport-level failure for the breaker.
func (h *HTTP) transportFail() {
	if h.failsSinceOK.Add(1) >= breakerTrip {
		h.openUntil.Store(time.Now().Add(h.cooldown).UnixNano())
	}
	h.probing.Store(false)
}

// transportOK records proof of server reachability: any response — a
// hit, a 404, even a 500 — closes the circuit.
func (h *HTTP) transportOK() {
	h.failsSinceOK.Store(0)
	h.probing.Store(false)
}

var errCircuitOpen = fmt.Errorf("store: remote unreachable, circuit open (failing fast)")

// do performs one request attempt. body is bytes, not a Reader, so a
// retried attempt rebuilds its own reader. The returned fault.Action is
// non-nil only for body-mangling kinds (trunc, corrupt) the caller must
// apply to what it reads; transport-shaped faults (err, timeout,
// http500) are realized here, feeding the breaker and error counters
// exactly like organic failures.
func (h *HTTP) do(ctx context.Context, method, url string, body []byte, contentEncoding, point string) (*http.Response, *fault.Action, error) {
	if h.circuitOpen() {
		h.skipped.Add(1)
		return nil, nil, retry.Permanent(errCircuitOpen)
	}
	var act *fault.Action
	if a := fault.Fire(point); a != nil {
		switch a.Kind {
		case fault.Err:
			h.transportFail()
			h.errs.Add(1)
			return nil, nil, a.Err(method + " " + url)
		case fault.Timeout:
			h.transportFail()
			h.errs.Add(1)
			return nil, nil, fmt.Errorf("store: %s %s: injected %w", method, url, context.DeadlineExceeded)
		case fault.HTTP500:
			h.transportOK()
			return &http.Response{
				Status:     "500 Internal Server Error (injected)",
				StatusCode: http.StatusInternalServerError,
				Body:       io.NopCloser(strings.NewReader("")),
			}, nil, nil
		default:
			act = a
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, nil, retry.Permanent(fmt.Errorf("store: %w", err))
	}
	if h.token != "" {
		req.Header.Set("Authorization", "Bearer "+h.token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if contentEncoding != "" {
		req.Header.Set("Content-Encoding", contentEncoding)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.transportFail()
		h.errs.Add(1)
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	h.transportOK()
	return resp, act, nil
}

// run executes op under the retry policy and folds its retry count into
// the remote stats.
func (h *HTTP) run(what string, fn func(ctx context.Context) error) error {
	retries, err := h.policy.Do(context.Background(), what+" "+h.base,
		func(ctx context.Context, _ int) error { return fn(ctx) })
	h.retries.Add(int64(retries))
	return err
}

// drain discards and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
}

// statusErr folds an unexpected status into the error counters. 5xx is
// transient — the server may recover — so it stays retryable; anything
// else (auth failures, bad requests) will not improve on retry.
func (h *HTTP) statusErr(resp *http.Response, what string) error {
	h.errs.Add(1)
	code := resp.StatusCode
	drain(resp)
	err := fmt.Errorf("store: %s %s: server returned %s", what, h.base, resp.Status)
	if code >= 500 {
		return err
	}
	return retry.Permanent(err)
}

// Get fetches and validates the frame stored under key. The response
// frame is checked exactly like a disk entry — checksum and embedded
// key — so a truncated body, a bit-flipped payload or a server bug all
// degrade to a miss. Transport failures and 5xx retry under the policy;
// a frame that fails validation does not (the copy is bad, not the
// wire).
func (h *HTTP) Get(key string) ([]byte, error) {
	var payload []byte
	err := h.run("get", func(ctx context.Context) error {
		resp, act, err := h.do(ctx, http.MethodGet, h.entryURL(key), nil, "", fault.StoreHTTPGet)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusNotFound {
			h.misses.Add(1)
			drain(resp)
			return retry.Permanent(ErrNotFound)
		}
		if resp.StatusCode != http.StatusOK {
			return h.statusErr(resp, "get")
		}
		frame, err := io.ReadAll(io.LimitReader(resp.Body, MaxEntryBytes))
		resp.Body.Close()
		if err != nil {
			h.errs.Add(1)
			return fmt.Errorf("store: reading %s: %w", h.base, err)
		}
		if act != nil {
			switch act.Kind {
			case fault.Trunc:
				frame = frame[:len(frame)/2]
			case fault.Corrupt:
				frame = fault.CorruptByte(frame)
			}
		}
		payload, err = DecodeFrame(frame, key)
		if err != nil {
			h.errs.Add(1)
			//praclint:allow degrade a corrupt remote copy is re-fetchable, not quarantinable from the client; the counting Store front classifies this error and degrades it to a miss
			return retry.Permanent(err)
		}
		h.hits.Add(1)
		h.bytesRead.Add(int64(len(payload)))
		return nil
	})
	if err != nil {
		//praclint:allow degrade propagates the closure's decode error; see the retry.Permanent note above — the Store front degrades it to a miss
		return nil, err
	}
	return payload, nil
}

// Put uploads the framed entry for key; bodies past GzipMinBytes travel
// gzip-compressed. The server validates the frame (checksum, key/hash
// agreement) before publishing atomically, so a connection cut mid-PUT
// can lose the write but never tear an entry — which is also what makes
// the retry safe: re-PUTting a content-addressed entry is idempotent.
func (h *HTTP) Put(key string, payload []byte) error {
	frame := EncodeFrame(key, payload)
	body, encoding := frame, ""
	if len(frame) >= GzipMinBytes {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(frame)
		if err := zw.Close(); err == nil {
			body, encoding = buf.Bytes(), "gzip"
		}
	}
	return h.run("put", func(ctx context.Context) error {
		resp, _, err := h.do(ctx, http.MethodPut, h.entryURL(key), body, encoding, fault.StoreHTTPPut)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusNoContent {
			return h.statusErr(resp, "put")
		}
		drain(resp)
		h.writes.Add(1)
		h.bytesWritten.Add(int64(len(payload)))
		return nil
	})
}

// Stat describes the entry under key without fetching its payload.
func (h *HTTP) Stat(key string) (Info, error) {
	var info Info
	err := h.run("stat", func(ctx context.Context) error {
		resp, _, err := h.do(ctx, http.MethodGet, h.base+"/v1/stat/"+Hash(key), nil, "", fault.StoreHTTPGet)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusNotFound {
			drain(resp)
			return retry.Permanent(ErrNotFound)
		}
		if resp.StatusCode != http.StatusOK {
			return h.statusErr(resp, "stat")
		}
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info)
		resp.Body.Close()
		if derr != nil {
			h.errs.Add(1)
			return retry.Permanent(fmt.Errorf("store: decoding stat from %s: %w", h.base, derr))
		}
		return nil
	})
	if err != nil {
		return Info{}, err
	}
	return info, nil
}

// List enumerates the server's entries — the maintenance surface, so
// -store-info and -store-prune work against a remote exactly like a
// directory.
func (h *HTTP) List() ([]Info, error) {
	var infos []Info
	err := h.run("list", func(ctx context.Context) error {
		resp, _, err := h.do(ctx, http.MethodGet, h.base+"/v1/list", nil, "", fault.StoreHTTPGet)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return h.statusErr(resp, "list")
		}
		derr := json.NewDecoder(io.LimitReader(resp.Body, MaxEntryBytes)).Decode(&infos)
		resp.Body.Close()
		if derr != nil {
			h.errs.Add(1)
			return retry.Permanent(fmt.Errorf("store: decoding list from %s: %w", h.base, derr))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}

// ListEach streams the server's listing entry by entry, decoding the
// JSON array tokenwise so a million-entry listing never materializes
// client-side. Once any entry has been delivered to fn the operation
// will not retry — a replay would hand the caller duplicates — so a
// mid-stream transport cut surfaces as an error instead.
func (h *HTTP) ListEach(fn func(Info) error) error {
	delivered := false
	return h.run("list", func(ctx context.Context) error {
		resp, _, err := h.do(ctx, http.MethodGet, h.base+"/v1/list", nil, "", fault.StoreHTTPGet)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return h.statusErr(resp, "list")
		}
		defer resp.Body.Close()
		noRetry := func(err error) error {
			h.errs.Add(1)
			if delivered {
				return retry.Permanent(err)
			}
			return err
		}
		dec := json.NewDecoder(io.LimitReader(resp.Body, MaxEntryBytes))
		if tok, err := dec.Token(); err != nil {
			return noRetry(fmt.Errorf("store: decoding list from %s: %w", h.base, err))
		} else if delim, ok := tok.(json.Delim); !ok || delim != '[' {
			return noRetry(fmt.Errorf("store: decoding list from %s: expected array, got %v", h.base, tok))
		}
		for dec.More() {
			var info Info
			if err := dec.Decode(&info); err != nil {
				return noRetry(fmt.Errorf("store: decoding list from %s: %w", h.base, err))
			}
			delivered = true
			if err := fn(info); err != nil {
				return retry.Permanent(err)
			}
		}
		return nil
	})
}

// Delete removes the entry under key on the server.
func (h *HTTP) Delete(key string) error {
	return h.run("delete", func(ctx context.Context) error {
		resp, _, err := h.do(ctx, http.MethodDelete, h.entryURL(key), nil, "", fault.StoreHTTPPut)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusNotFound {
			drain(resp)
			return retry.Permanent(ErrNotFound)
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			return h.statusErr(resp, "delete")
		}
		drain(resp)
		return nil
	})
}
