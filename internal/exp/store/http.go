package store

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// MaxEntryBytes bounds how much of an entry either end of the wire will
// buffer: a misbehaving peer must cost a bounded read, never an OOM.
// Real encoded RunResults are kilobytes. Shared with the server so the
// size bound cannot drift between the two ends.
const MaxEntryBytes = 256 << 20

// GzipMinBytes is the smallest body worth compressing in either
// direction; below it the gzip header overhead beats the savings.
const GzipMinBytes = 1 << 10

// breakerTrip and breakerProbe shape the client's failure memory: after
// breakerTrip consecutive transport failures (timeouts, refused or
// black-holed connections — not HTTP error statuses, which prove the
// server is reachable) the client stops dialing and fails operations
// immediately, probing the server again once every breakerProbe
// operations. Without this, a firewalled-dead server would cost a full
// client timeout per run, serially, turning a seconds-long sweep into
// tens of minutes of stalls.
const (
	breakerTrip  = 5
	breakerProbe = 50
)

// TokenEnv names the environment variable the HTTP client (and
// cmd/pracstored, as its default -token) reads the bearer token from —
// an env var so the secret never appears in argv or shard-dispatch
// command lines.
const TokenEnv = "PRACSTORE_TOKEN"

// HTTP is the remote backend: a client for the pracstored service. Every
// entry travels as the same self-validating frame the disk backend
// stores, so checksums are verified on both ends of both directions —
// the server rejects corrupt uploads before publishing, the client
// treats corrupt downloads as misses. Transport failures, timeouts and
// unexpected statuses all degrade to misses at the Store front; the
// remote stats keep them visible.
type HTTP struct {
	base   string // normalized base URL, no trailing slash
	token  string
	client *http.Client

	hits, misses, writes, errs, skipped, bytesRead, bytesWritten atomic.Int64

	// consecFails counts transport failures since the last response of
	// any kind; past breakerTrip the circuit opens and operations fail
	// fast instead of dialing (see circuitOpen).
	consecFails atomic.Int64
	breakerOps  atomic.Int64
}

// OpenHTTP returns a client backend for a pracstored base URL. The
// bearer token, when the server requires one, comes from $PRACSTORE_TOKEN.
// Only the URL is validated here — the server is contacted lazily, and an
// unreachable server degrades every operation rather than failing open.
func OpenHTTP(rawurl string) (*HTTP, error) {
	u, err := url.Parse(rawurl)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: invalid remote store URL %q (want http://host:port)", rawurl)
	}
	return &HTTP{
		base:  strings.TrimRight(u.String(), "/"),
		token: os.Getenv(TokenEnv),
		// A sweep blocked on a hung server is worse than a recompute:
		// bound every request.
		client: &http.Client{Timeout: 30 * time.Second},
	}, nil
}

// Spec reports the server base URL.
func (h *HTTP) Spec() string { return h.base }

// RemoteStats snapshots the wire-traffic counters.
func (h *HTTP) RemoteStats() RemoteStats {
	return RemoteStats{
		Hits:         h.hits.Load(),
		Misses:       h.misses.Load(),
		Writes:       h.writes.Load(),
		Errors:       h.errs.Load(),
		Skipped:      h.skipped.Load(),
		BytesRead:    h.bytesRead.Load(),
		BytesWritten: h.bytesWritten.Load(),
	}
}

func (h *HTTP) entryURL(key string) string { return h.base + "/v1/e/" + Hash(key) }

// circuitOpen reports whether this operation should fail fast instead
// of dialing a server that hasn't answered in breakerTrip attempts.
// Every breakerProbe-th operation still goes through: one probe's
// timeout rediscovers a revived server without re-stalling the sweep.
func (h *HTTP) circuitOpen() bool {
	if h.consecFails.Load() < breakerTrip {
		return false
	}
	return h.breakerOps.Add(1)%breakerProbe != 0
}

var errCircuitOpen = fmt.Errorf("store: remote unreachable, circuit open (failing fast)")

func (h *HTTP) do(method, url string, body io.Reader, contentEncoding string) (*http.Response, error) {
	if h.circuitOpen() {
		h.skipped.Add(1)
		return nil, errCircuitOpen
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if h.token != "" {
		req.Header.Set("Authorization", "Bearer "+h.token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if contentEncoding != "" {
		req.Header.Set("Content-Encoding", contentEncoding)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.consecFails.Add(1)
		h.errs.Add(1)
		return nil, fmt.Errorf("store: %w", err)
	}
	// Any response — a hit, a 404, even a 500 — proves the server is
	// reachable and answering promptly; only transport silence trips
	// the breaker.
	h.consecFails.Store(0)
	return resp, nil
}

// drain discards and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
}

func (h *HTTP) statusErr(resp *http.Response, what string) error {
	h.errs.Add(1)
	drain(resp)
	return fmt.Errorf("store: %s %s: server returned %s", what, h.base, resp.Status)
}

// Get fetches and validates the frame stored under key. The response
// frame is checked exactly like a disk entry — checksum and embedded
// key — so a truncated body, a bit-flipped payload or a server bug all
// degrade to a miss.
func (h *HTTP) Get(key string) ([]byte, error) {
	resp, err := h.do(http.MethodGet, h.entryURL(key), nil, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		h.misses.Add(1)
		drain(resp)
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, h.statusErr(resp, "get")
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, MaxEntryBytes))
	resp.Body.Close()
	if err != nil {
		h.errs.Add(1)
		return nil, fmt.Errorf("store: reading %s: %w", h.base, err)
	}
	payload, err := DecodeFrame(frame, key)
	if err != nil {
		h.errs.Add(1)
		return nil, err
	}
	h.hits.Add(1)
	h.bytesRead.Add(int64(len(payload)))
	return payload, nil
}

// Put uploads the framed entry for key; bodies past GzipMinBytes travel
// gzip-compressed. The server validates the frame (checksum, key/hash
// agreement) before publishing atomically, so a connection cut mid-PUT
// can lose the write but never tear an entry.
func (h *HTTP) Put(key string, payload []byte) error {
	frame := EncodeFrame(key, payload)
	body, encoding := frame, ""
	if len(frame) >= GzipMinBytes {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(frame)
		if err := zw.Close(); err == nil {
			body, encoding = buf.Bytes(), "gzip"
		}
	}
	resp, err := h.do(http.MethodPut, h.entryURL(key), bytes.NewReader(body), encoding)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusNoContent {
		return h.statusErr(resp, "put")
	}
	drain(resp)
	h.writes.Add(1)
	h.bytesWritten.Add(int64(len(payload)))
	return nil
}

// Stat describes the entry under key without fetching its payload.
func (h *HTTP) Stat(key string) (Info, error) {
	resp, err := h.do(http.MethodGet, h.base+"/v1/stat/"+Hash(key), nil, "")
	if err != nil {
		return Info{}, err
	}
	if resp.StatusCode == http.StatusNotFound {
		drain(resp)
		return Info{}, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return Info{}, h.statusErr(resp, "stat")
	}
	var info Info
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info)
	resp.Body.Close()
	if err != nil {
		h.errs.Add(1)
		return Info{}, fmt.Errorf("store: decoding stat from %s: %w", h.base, err)
	}
	return info, nil
}

// List enumerates the server's entries — the maintenance surface, so
// -store-info and -store-prune work against a remote exactly like a
// directory.
func (h *HTTP) List() ([]Info, error) {
	resp, err := h.do(http.MethodGet, h.base+"/v1/list", nil, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, h.statusErr(resp, "list")
	}
	var infos []Info
	err = json.NewDecoder(io.LimitReader(resp.Body, MaxEntryBytes)).Decode(&infos)
	resp.Body.Close()
	if err != nil {
		h.errs.Add(1)
		return nil, fmt.Errorf("store: decoding list from %s: %w", h.base, err)
	}
	return infos, nil
}

// Delete removes the entry under key on the server.
func (h *HTTP) Delete(key string) error {
	resp, err := h.do(http.MethodDelete, h.entryURL(key), nil, "")
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		drain(resp)
		return ErrNotFound
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return h.statusErr(resp, "delete")
	}
	drain(resp)
	return nil
}
