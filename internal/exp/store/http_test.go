package store_test

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pracsim/internal/exp/store"
	"pracsim/internal/exp/store/server"
)

func disk(t *testing.T) *store.Disk {
	t.Helper()
	d, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// httpClient opens a client with test-speed retry pacing (microsecond
// backoff instead of 50ms) and a breaker cooldown long past the test, so
// counter assertions are deterministic: an opened circuit stays open.
func httpClient(t *testing.T, url string) *store.HTTP {
	t.Helper()
	h, err := store.OpenHTTPWith(url, store.HTTPOptions{
		RetryBase:       time.Microsecond,
		BreakerCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestMisbehavingServerDegradesToMiss is the remote robustness contract:
// truncated bodies, checksum-corrupt frames, frames for a different key,
// server errors and a refused connection all surface as plain misses at
// the Store front — a broken server costs recomputes, never correctness
// or a crash.
func TestMisbehavingServerDegradesToMiss(t *testing.T) {
	const key = "pracsim/run/v3/victim"
	frame := store.EncodeFrame(key, []byte("a payload long enough to truncate meaningfully"))
	corrupt := append([]byte{}, frame...)
	corrupt[len(corrupt)-3] ^= 0x40

	cases := map[string]http.HandlerFunc{
		"truncated body": func(w http.ResponseWriter, r *http.Request) {
			w.Write(frame[:len(frame)/2])
		},
		"wrong checksum": func(w http.ResponseWriter, r *http.Request) {
			w.Write(corrupt)
		},
		"wrong key": func(w http.ResponseWriter, r *http.Request) {
			w.Write(store.EncodeFrame("pracsim/run/v3/other", []byte("other payload")))
		},
		"empty 200": func(w http.ResponseWriter, r *http.Request) {},
		"http 500": func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "internal chaos", http.StatusInternalServerError)
		},
		"garbage body": func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("<html>a captive portal, say</html>"))
		},
	}
	for name, handler := range cases {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(handler)
			defer ts.Close()
			front := store.NewStore(httpClient(t, ts.URL))
			if got, ok := front.Get(key); ok {
				t.Fatalf("served a hit: %q", got)
			}
			st := front.Stats()
			if st.Misses != 1 || st.Hits != 0 {
				t.Errorf("stats = %+v, want exactly one miss", st)
			}
			if st.Remote.Hits != 0 {
				t.Errorf("remote stats claim a hit: %+v", st.Remote)
			}
		})
	}
}

// TestUnreachableServerDegrades: a connection refused (the server died,
// the port is wrong) is a miss on Get and an error on Put — which every
// caller treats as best-effort — with every attempt, retry and fast-fail
// visible in the remote stats rather than silently swallowed. The Get
// burns its full 3-attempt budget (3 errors, 2 retries); the Put's first
// two attempts reach the trip threshold of 5 consecutive failures, so
// its third fails fast as a skip.
func TestUnreachableServerDegrades(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // now nothing listens there

	front := store.NewStore(httpClient(t, url))
	if _, ok := front.Get("pracsim/run/v3/k"); ok {
		t.Fatal("hit from a dead server")
	}
	if err := front.Put("pracsim/run/v3/k", []byte("payload")); err == nil {
		t.Fatal("Put to a dead server reported success")
	}
	st := front.Stats()
	if st.Misses != 1 || st.Writes != 0 {
		t.Errorf("stats = %+v, want 1 miss / 0 writes", st)
	}
	if r := st.Remote; r.Errors != 5 || r.Retries != 4 || r.Skipped != 1 {
		t.Errorf("remote stats = %+v, want 5 errors / 4 retries / 1 skip", r)
	}
}

// TestTieredReadThrough: a remote hit populates the local tier, after
// which the key is served locally — even once the server is gone. Keys
// the local tier never saw degrade to misses when the remote dies.
func TestTieredReadThrough(t *testing.T) {
	remoteDisk := disk(t)
	ts := httptest.NewServer(server.New(remoteDisk, server.Options{}))
	defer ts.Close()

	// Seed the server directly.
	if err := remoteDisk.Put("pracsim/run/v3/hot", []byte("hot payload")); err != nil {
		t.Fatal(err)
	}
	if err := remoteDisk.Put("pracsim/run/v3/cold", []byte("cold payload")); err != nil {
		t.Fatal(err)
	}

	local := disk(t)
	remote := httpClient(t, ts.URL)
	front := store.NewStore(store.NewTiered(local, remote))

	if got, ok := front.Get("pracsim/run/v3/hot"); !ok || string(got) != "hot payload" {
		t.Fatalf("tiered Get = %q, %v", got, ok)
	}
	if got, err := local.Get("pracsim/run/v3/hot"); err != nil || string(got) != "hot payload" {
		t.Fatalf("remote hit did not back-fill the local tier: %q, %v", got, err)
	}

	ts.Close() // the fleet's server dies mid-campaign
	if got, ok := front.Get("pracsim/run/v3/hot"); !ok || string(got) != "hot payload" {
		t.Errorf("local tier lost the hot key after server death: %q, %v", got, ok)
	}
	if _, ok := front.Get("pracsim/run/v3/cold"); ok {
		t.Error("cold key served from nowhere")
	}
	st := front.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", st)
	}
	if st.Remote.Hits != 1 || st.Remote.Errors == 0 {
		t.Errorf("remote stats = %+v, want 1 hit and the post-mortem errors", st.Remote)
	}
}

// TestTieredPutWritesBoth: one Put warms this machine and the shared
// server; a second worker (fresh local tier) reads it back remotely.
func TestTieredPutWritesBoth(t *testing.T) {
	remoteDisk := disk(t)
	ts := httptest.NewServer(server.New(remoteDisk, server.Options{}))
	defer ts.Close()

	local := disk(t)
	front := store.NewStore(store.NewTiered(local, httpClient(t, ts.URL)))
	payload := bytes.Repeat([]byte("result "), 512) // large enough to gzip
	if err := front.Put("pracsim/run/v3/k", payload); err != nil {
		t.Fatal(err)
	}
	if got, err := local.Get("pracsim/run/v3/k"); err != nil || !bytes.Equal(got, payload) {
		t.Errorf("local tier missing the write: %d bytes, %v", len(got), err)
	}
	if got, err := remoteDisk.Get("pracsim/run/v3/k"); err != nil || !bytes.Equal(got, payload) {
		t.Errorf("server missing the write: %d bytes, %v", len(got), err)
	}

	other := store.NewStore(store.NewTiered(disk(t), httpClient(t, ts.URL)))
	if got, ok := other.Get("pracsim/run/v3/k"); !ok || !bytes.Equal(got, payload) {
		t.Errorf("second worker Get = %d bytes, %v", len(got), ok)
	}
}

// TestTieredDeleteRemovesBothTiers: pruning must not leave local copies
// resurrecting a deleted entry.
func TestTieredDeleteRemovesBothTiers(t *testing.T) {
	remoteDisk := disk(t)
	ts := httptest.NewServer(server.New(remoteDisk, server.Options{}))
	defer ts.Close()

	local := disk(t)
	tiered := store.NewTiered(local, httpClient(t, ts.URL))
	front := store.NewStore(tiered)
	if err := front.Put("pracsim/run/v2/stale", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := tiered.Delete("pracsim/run/v2/stale"); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Get("pracsim/run/v2/stale"); err != store.ErrNotFound {
		t.Errorf("local copy survived the delete: %v", err)
	}
	if _, ok := front.Get("pracsim/run/v2/stale"); ok {
		t.Error("deleted entry still served")
	}
}

// TestCircuitBreakerFailsFast: after breakerTrip consecutive transport
// failures the client stops dialing and fails operations immediately
// (counted as skips), so a sweep against a black-holed server costs
// recomputes, not a timeout per run. The first two operations burn 5
// real attempts between them (tripping the breaker mid-second-op); with
// the cooldown far past the test, every later attempt is a fast-fail.
func TestCircuitBreakerFailsFast(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	front := store.NewStore(httpClient(t, url))
	for i := 0; i < 60; i++ {
		if _, ok := front.Get("pracsim/run/v3/k"); ok {
			t.Fatal("hit from a dead server")
		}
	}
	rs := front.Stats().Remote
	if rs.Errors != 5 {
		t.Errorf("real dials = %d, want exactly the 5 that tripped the breaker: %+v", rs.Errors, rs)
	}
	if rs.Skipped != 59 {
		t.Errorf("skips = %d, want 59 (one mid-op fast-fail + 58 whole ops): %+v", rs.Skipped, rs)
	}
}

// TestBreakerIgnoresServerErrors: HTTP error statuses prove the server
// is reachable and answering promptly — they must never open the
// breaker, or a server with one bad entry would lose its whole cache.
func TestBreakerIgnoresServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal chaos", http.StatusInternalServerError)
	}))
	defer ts.Close()
	front := store.NewStore(httpClient(t, ts.URL))
	for i := 0; i < 20; i++ {
		if _, ok := front.Get("pracsim/run/v3/k"); ok {
			t.Fatal("hit from a 500 server")
		}
	}
	// A 5xx is transient from the client's perspective, so every Get
	// burns its 3-attempt budget — 60 real requests, none skipped.
	rs := front.Stats().Remote
	if rs.Skipped != 0 || rs.Errors != 60 || rs.Retries != 40 {
		t.Errorf("remote stats = %+v, want 60 errors / 40 retries / no skips", rs)
	}
}

// TestBreakerHalfOpenRecovery is the recovery half of the breaker
// contract: a server that dies mid-run trips the circuit, and once it
// restarts (same address) the client's half-open probe rediscovers it —
// remote hits resume within one cooldown interval instead of the client
// failing fast forever.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	d := disk(t)
	if err := d.Put("pracsim/run/v3/hot", []byte("hot payload")); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := &http.Server{Handler: server.New(d, server.Options{})}
	go srv.Serve(l)

	const cooldown = 100 * time.Millisecond
	h, err := store.OpenHTTPWith("http://"+addr, store.HTTPOptions{
		Attempts:        1, // isolate the breaker from retry pacing
		RetryBase:       time.Microsecond,
		BreakerCooldown: cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := store.NewStore(h)
	if _, ok := front.Get("pracsim/run/v3/hot"); !ok {
		t.Fatal("no hit from the live server")
	}

	srv.Close() // the shared store dies mid-fleet
	for i := 0; i < 10; i++ {
		front.Get("pracsim/run/v3/hot") // misses; trips the breaker
	}
	if rs := front.Stats().Remote; rs.Skipped == 0 {
		t.Fatalf("breaker never opened: %+v", rs)
	}

	// Restart on the same address; the next half-open probe must close
	// the circuit. Allow a few cooldowns of slack for the restart itself,
	// then require a hit within roughly one interval of polling.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &http.Server{Handler: server.New(d, server.Options{})}
	go srv2.Serve(l2)
	defer srv2.Close()

	deadline := time.Now().Add(20 * cooldown)
	recovered := false
	for time.Now().Before(deadline) {
		before := front.Stats().Remote.Hits
		front.Get("pracsim/run/v3/hot")
		if front.Stats().Remote.Hits > before {
			recovered = true
			break
		}
		time.Sleep(cooldown / 10)
	}
	if !recovered {
		t.Fatalf("client never resumed remote hits after server restart: %+v", front.Stats().Remote)
	}
}

// TestPerAttemptTimeout: the deadline is per attempt, not per client —
// a black-holed request is abandoned after HTTPOptions.Timeout, and the
// operation (with Attempts:1) degrades to a miss on the Store front
// instead of stalling the worker.
func TestPerAttemptTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // black hole: hold until the client gives up
	}))
	defer ts.Close()

	h, err := store.OpenHTTPWith(ts.URL, store.HTTPOptions{
		Timeout:  50 * time.Millisecond,
		Attempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := store.NewStore(h)
	start := time.Now()
	if _, ok := front.Get("pracsim/run/v3/k"); ok {
		t.Fatal("hit from a black-holed server")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("timed-out Get took %v, want ~50ms", took)
	}
	if rs := front.Stats().Remote; rs.Errors != 1 {
		t.Errorf("remote stats = %+v, want the timeout counted once", rs)
	}
}

// TestTieredPruneReclaimsLocalOnlyOrphans: an orphaned-schema entry that
// exists only in the local tier (back-filled before someone pruned the
// server, or written while it was down) must still be listed and
// reclaimed by Prune.
func TestTieredPruneReclaimsLocalOnlyOrphans(t *testing.T) {
	remoteDisk := disk(t)
	ts := httptest.NewServer(server.New(remoteDisk, server.Options{}))
	defer ts.Close()
	local := disk(t)
	tiered := store.NewTiered(local, httpClient(t, ts.URL))

	if err := remoteDisk.Put("pracsim/run/v3/current", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := local.Put("pracsim/run/v1/orphan", []byte("local-only stale")); err != nil {
		t.Fatal(err)
	}

	infos, err := tiered.List()
	if err != nil || len(infos) != 2 {
		t.Fatalf("List = %v, %v; want both tiers' entries", infos, err)
	}
	pruned, _, err := store.Prune(tiered, "v3")
	if err != nil || pruned != 1 {
		t.Fatalf("Prune = %d, %v; want 1", pruned, err)
	}
	if _, err := local.Get("pracsim/run/v1/orphan"); err != store.ErrNotFound {
		t.Errorf("local-only orphan survived: %v", err)
	}
	if got, err := remoteDisk.Get("pracsim/run/v3/current"); err != nil || string(got) != "keep" {
		t.Errorf("current entry lost: %q, %v", got, err)
	}
}
