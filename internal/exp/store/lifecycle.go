package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// indexName is the compact access-time sidecar the lifecycle layer keeps
// next to the entry files. It is strictly a hint: a missing, stale or
// corrupt index costs recency precision (evictions fall back to file
// mtimes), never correctness.
const indexName = "access.idx"

// indexMagic stamps the sidecar format; anything else is ignored and the
// index rebuilt from file mtimes.
const indexMagic = "pracstore-atime/1"

// evictTarget is how far below the budget a sweep drains the store:
// evicting to exactly the budget would re-trigger a sweep on the very
// next Put, so each sweep frees a slack margin (10% of the budget).
const evictTarget = 0.9

// EvictionStats snapshots the lifecycle layer's counters. The zero value
// means "no budget configured".
type EvictionStats struct {
	// Budget is the configured disk budget in entry-file bytes (0 = no
	// budget, eviction disabled).
	Budget int64 `json:"budget,omitempty"`
	// Footprint is the tracked entry-file byte total.
	Footprint int64 `json:"footprint,omitempty"`
	// Evicted counts entries removed by budget sweeps and injected
	// evictions.
	Evicted int64 `json:"evicted,omitempty"`
	// EvictedBytes is their file-byte total.
	EvictedBytes int64 `json:"evicted_bytes,omitempty"`
	// Sweeps counts background eviction sweeps that ran.
	Sweeps int64 `json:"sweeps,omitempty"`
}

// lcEntry is one tracked entry: its file size and last access.
type lcEntry struct {
	size  int64
	atime int64 // unix seconds; coarse is fine for LRU
}

// lifecycle is the disk backend's self-regulation state, allocated only
// when a budget is configured — a budget-less Disk pays one nil check
// per operation (pinned by TestEvictionDisabledOverheadGuard).
type lifecycle struct {
	budget int64

	mu      sync.Mutex
	entries map[string]lcEntry // hash -> size/atime
	bytes   int64              // sum of tracked entry-file sizes
	pins    map[string]int     // in-flight Get/Put hashes a sweep must skip
	dirty   bool               // index changed since last persist

	sweeping atomic.Bool
	sweepWG  sync.WaitGroup

	evicted, evictedBytes, sweeps atomic.Int64
}

// stats snapshots the lifecycle counters.
func (lc *lifecycle) stats() EvictionStats {
	lc.mu.Lock()
	footprint := lc.bytes
	lc.mu.Unlock()
	return EvictionStats{
		Budget:       lc.budget,
		Footprint:    footprint,
		Evicted:      lc.evicted.Load(),
		EvictedBytes: lc.evictedBytes.Load(),
		Sweeps:       lc.sweeps.Load(),
	}
}

// rebuild scans the store directory and (re)builds the in-memory index:
// sizes and mtimes from the entry files themselves, access times
// overlaid from the persisted sidecar where the entry still exists. The
// directory is the truth; the sidecar only sharpens recency.
func (lc *lifecycle) rebuild(dir string) {
	persisted := loadIndex(filepath.Join(dir, indexName))
	//praclint:allow failpoint open-time index rebuild; a failure leaves the budget tracker empty, which only delays eviction
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.entries = make(map[string]lcEntry, len(dirents))
	lc.bytes = 0
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".run") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		hash := strings.TrimSuffix(name, ".run")
		e := lcEntry{size: fi.Size(), atime: fi.ModTime().Unix()}
		if at, ok := persisted[hash]; ok && at > e.atime {
			e.atime = at
		}
		lc.entries[hash] = e
		lc.bytes += e.size
	}
}

// loadIndex reads the sidecar's hash->atime map; nil on any problem.
func loadIndex(path string) map[string]int64 {
	//praclint:allow failpoint sidecar read at open time; nil on any problem, the directory stays the truth
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != indexMagic {
		return nil
	}
	m := make(map[string]int64)
	for sc.Scan() {
		hash, at, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(at, 10, 64); err == nil {
			m[hash] = n
		}
	}
	return m
}

// persistIndex writes the sidecar atomically (temp + rename), so a
// killed process never tears it. Best-effort: a failed persist costs
// recency across a restart, nothing else.
func (lc *lifecycle) persistIndex(dir string) {
	lc.mu.Lock()
	if !lc.dirty {
		lc.mu.Unlock()
		return
	}
	var b strings.Builder
	b.WriteString(indexMagic + "\n")
	for hash, e := range lc.entries {
		fmt.Fprintf(&b, "%s %d\n", hash, e.atime)
	}
	lc.dirty = false
	lc.mu.Unlock()

	tmp, err := os.CreateTemp(dir, "idx-*.tmp")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(b.String()); err == nil && tmp.Close() == nil {
		os.Rename(tmp.Name(), filepath.Join(dir, indexName))
	} else {
		tmp.Close()
	}
}

// touch records an access (or write) to an entry. size < 0 means "keep
// the tracked size" (reads); size >= 0 replaces it (writes).
func (lc *lifecycle) touch(hash string, size int64) {
	now := time.Now().Unix()
	lc.mu.Lock()
	e, ok := lc.entries[hash]
	if size >= 0 {
		lc.bytes += size - e.size
		e.size = size
	} else if !ok {
		// A read of an entry the index never saw (written by another
		// process sharing the directory): track it with an unknown size;
		// the next rebuild corrects it.
		e.size = 0
	}
	e.atime = now
	lc.entries[hash] = e
	lc.dirty = true
	lc.mu.Unlock()
}

// forget drops an entry from the index (deletes, quarantines, evictions
// by other processes discovered on read).
func (lc *lifecycle) forget(hash string) {
	lc.mu.Lock()
	if e, ok := lc.entries[hash]; ok {
		lc.bytes -= e.size
		delete(lc.entries, hash)
		lc.dirty = true
	}
	lc.mu.Unlock()
}

// pin marks a hash as in-flight: a sweep never evicts a pinned entry, so
// an entry mid-Put (or mid-read) cannot be selected while it is being
// produced or served.
func (lc *lifecycle) pin(hash string) {
	lc.mu.Lock()
	if lc.pins == nil {
		lc.pins = make(map[string]int)
	}
	lc.pins[hash]++
	lc.mu.Unlock()
}

func (lc *lifecycle) unpin(hash string) {
	lc.mu.Lock()
	if n := lc.pins[hash]; n <= 1 {
		delete(lc.pins, hash)
	} else {
		lc.pins[hash] = n - 1
	}
	lc.mu.Unlock()
}

// overBudget reports whether the tracked footprint exceeds the budget.
func (lc *lifecycle) overBudget() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.bytes > lc.budget
}

// lcTouchGet, lcTouchPut, lcPin, lcUnpin and lcForget are the disk
// backend's lifecycle hooks: one nil check when no budget is configured.
func (d *Disk) lcTouchGet(hash string) {
	if d.lc != nil {
		d.lc.touch(hash, -1)
	}
}

func (d *Disk) lcTouchPut(hash string, size int64) {
	if d.lc != nil {
		d.lc.touch(hash, size)
		d.maybeSweep()
	}
}

func (d *Disk) lcPin(hash string) {
	if d.lc != nil {
		d.lc.pin(hash)
	}
}

func (d *Disk) lcUnpin(hash string) {
	if d.lc != nil {
		d.lc.unpin(hash)
	}
}

func (d *Disk) lcForget(hash string) {
	if d.lc != nil {
		d.lc.forget(hash)
	}
}

// EvictionStats snapshots the lifecycle counters (zero without a
// budget).
func (d *Disk) EvictionStats() EvictionStats {
	if d.lc == nil {
		return EvictionStats{}
	}
	return d.lc.stats()
}

// evictEntry removes one entry as an eviction (budget sweep or the
// store.disk.evict failpoint): the file goes away, the index forgets it,
// and the counters record it. An eviction is always a future miss, never
// an error — a concurrent reader either read the complete file before
// the remove or sees ErrNotFound after it.
func (d *Disk) evictEntry(hash string, size int64) {
	if os.Remove(d.hashPath(hash)) != nil {
		return
	}
	if d.lc != nil {
		d.lc.forget(hash)
		d.lc.evicted.Add(1)
		d.lc.evictedBytes.Add(size)
	}
}

// injectEvict realizes the store.disk.evict failpoint: evict the entry
// under hash right now, whether or not a budget is configured. Absent
// entries are left alone — the read was already a miss.
func (d *Disk) injectEvict(hash string) {
	fi, err := os.Stat(d.hashPath(hash))
	if err != nil {
		return
	}
	d.evictEntry(hash, fi.Size())
}

// maybeSweep kicks off a background eviction sweep when the tracked
// footprint exceeds the budget and no sweep is already running.
func (d *Disk) maybeSweep() {
	lc := d.lc
	if lc == nil || lc.budget <= 0 || !lc.overBudget() {
		return
	}
	if !lc.sweeping.CompareAndSwap(false, true) {
		return
	}
	lc.sweepWG.Add(1)
	go func() {
		defer lc.sweepWG.Done()
		defer lc.sweeping.Store(false)
		d.sweepOnce()
	}()
}

// SweepNow runs one eviction sweep synchronously — the maintenance
// entry point (tests, pracstored's open-time drain). It waits for any
// in-flight background sweep first so counters are stable afterwards.
func (d *Disk) SweepNow() {
	lc := d.lc
	if lc == nil {
		return
	}
	lc.sweepWG.Wait()
	if lc.sweeping.CompareAndSwap(false, true) {
		d.sweepOnce()
		lc.sweeping.Store(false)
	}
}

// WaitSweeps blocks until no background sweep is running — the test
// hook that makes eviction assertions deterministic.
func (d *Disk) WaitSweeps() {
	if d.lc != nil {
		d.lc.sweepWG.Wait()
	}
}

// sweepOnce evicts least-recently-accessed entries until the footprint
// is back under evictTarget x budget. Victims are re-checked under the
// lock just before removal: a pin (in-flight Put/Get) or an access
// newer than the snapshot skips the entry, so the sweep never races a
// writer into deleting what it just published.
func (d *Disk) sweepOnce() {
	lc := d.lc
	target := int64(float64(lc.budget) * evictTarget)

	type victim struct {
		hash  string
		size  int64
		atime int64
	}
	lc.mu.Lock()
	over := lc.bytes - target
	if over <= 0 {
		lc.mu.Unlock()
		return
	}
	victims := make([]victim, 0, len(lc.entries))
	for hash, e := range lc.entries {
		victims = append(victims, victim{hash, e.size, e.atime})
	}
	lc.mu.Unlock()
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].atime != victims[j].atime {
			return victims[i].atime < victims[j].atime
		}
		return victims[i].hash < victims[j].hash // deterministic within a second
	})

	lc.sweeps.Add(1)
	var freed int64
	for _, v := range victims {
		if freed >= over {
			break
		}
		lc.mu.Lock()
		e, ok := lc.entries[v.hash]
		pinned := lc.pins[v.hash] > 0
		lc.mu.Unlock()
		if !ok || pinned || e.atime > v.atime {
			continue // gone, in-flight, or touched since the snapshot
		}
		d.evictEntry(v.hash, e.size)
		freed += e.size
	}
	lc.persistIndex(d.dir)
}
