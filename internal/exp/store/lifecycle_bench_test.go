package store

import (
	"fmt"
	"testing"
)

// BenchmarkStoreEvictionSweep measures the write path under sustained
// eviction pressure: every put of a fresh key lands over budget, so the
// background sweep continuously selects and evicts LRU entries while
// puts keep arriving — the steady state of a long campaign against a
// bounded store.
func BenchmarkStoreEvictionSweep(b *testing.B) {
	d, err := OpenDiskWith(b.TempDir(), DiskOptions{BudgetBytes: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(fmt.Sprintf("pracsim/run/v3/evict-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d.WaitSweeps()
	if ev := d.EvictionStats(); b.N > 64 && ev.Evicted == 0 {
		b.Fatal("budget pressure never evicted anything")
	}
}

// BenchmarkStoreEvictionSweepUnderBudget measures a sweep of a warm
// store sitting under its budget — the early-exit path every
// maintenance pass and SweepNow pays when there is nothing to do.
func BenchmarkStoreEvictionSweepUnderBudget(b *testing.B) {
	d, err := OpenDiskWith(b.TempDir(), DiskOptions{BudgetBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := 0; i < 64; i++ {
		if err := d.Put(fmt.Sprintf("pracsim/run/v3/warm-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SweepNow()
	}
}

// BenchmarkStoreEvictionDisabledGet is the warm-get path with no budget
// configured — the baseline TestEvictionDisabledOverheadGuard holds the
// lifecycle hooks against.
func BenchmarkStoreEvictionDisabledGet(b *testing.B) {
	d, err := OpenDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := 0; i < 64; i++ {
		if err := d.Put(fmt.Sprintf("pracsim/run/v3/base-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Get(fmt.Sprintf("pracsim/run/v3/base-%d", i%64)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEvictionDisabledOverheadGuard is the CI guard for the acceptance
// criterion that a budget-less store pays nothing for the lifecycle
// layer: the hooks on the warm-get path (pin, unpin, touch) must cost
// no more than a few nanoseconds — one nil check each — and zero
// allocations. A regression to unconditional locking or map traffic
// lands orders of magnitude above the 50ns bound.
func TestEvictionDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the ns/op budget; CI runs this guard in a non-race step")
	}
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash := Hash("pracsim/run/v3/guard")
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.lcPin(hash)
			d.lcTouchGet(hash)
			d.lcUnpin(hash)
		}
	})
	if ns := res.NsPerOp(); ns > 50 {
		t.Fatalf("disabled lifecycle hooks cost %dns/op, want <=50ns", ns)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled lifecycle hooks allocate %d/op, want 0", allocs)
	}
}
