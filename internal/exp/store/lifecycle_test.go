package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pracsim/internal/fault"
)

// lcKey returns a fixed-width test key so every entry's encoded frame
// has the same size and eviction arithmetic is exact.
func lcKey(i int) string { return fmt.Sprintf("pracsim/run/v3/lc-%02d", i) }

// lcFrameSize is the on-disk size of one test entry.
func lcFrameSize(payload []byte) int64 { return int64(len(EncodeFrame(lcKey(0), payload))) }

// TestBudgetSweepEvictsLRU: opening an over-budget store sweeps the
// least-recently-used entries (by file mtime on a fresh index) down to
// the eviction target, and an evicted entry is a plain miss that a
// re-Put repairs.
func TestBudgetSweepEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	now := time.Now()
	for i := 0; i < n; i++ {
		if err := d.Put(lcKey(i), payload); err != nil {
			t.Fatal(err)
		}
		// Age the entries: lc-00 is the coldest, lc-09 the hottest.
		mt := now.Add(-time.Duration(n-i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, Hash(lcKey(i))+".run"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	size := lcFrameSize(payload)
	budget := 5 * size // half the footprint
	d2, err := OpenDiskWith(dir, DiskOptions{BudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	d2.WaitSweeps()

	// over = 10s - 0.9*5s = 5.5s, so the sweep evicts the 6 coldest.
	for i := 0; i < 6; i++ {
		if _, err := d2.Get(lcKey(i)); !errors.Is(err, ErrNotFound) {
			t.Errorf("cold entry %d should be evicted; Get = %v", i, err)
		}
	}
	for i := 6; i < n; i++ {
		got, err := d2.Get(lcKey(i))
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("warm entry %d should survive the sweep; Get = %v", i, err)
		}
	}
	ev := d2.EvictionStats()
	if ev.Budget != budget || ev.Evicted != 6 || ev.EvictedBytes != 6*size || ev.Sweeps < 1 {
		t.Errorf("eviction stats = %+v, want budget=%d evicted=6 bytes=%d sweeps>=1", ev, budget, 6*size)
	}
	if ev.Footprint != 4*size {
		t.Errorf("footprint = %d, want %d", ev.Footprint, 4*size)
	}
	// The sweep persisted the sidecar index.
	idx, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil || !bytes.HasPrefix(idx, []byte(indexMagic)) {
		t.Errorf("sidecar index not persisted after sweep: %v", err)
	}
	// An eviction is a miss a re-Put repairs.
	if err := d2.Put(lcKey(0), payload); err != nil {
		t.Fatal(err)
	}
	if got, err := d2.Get(lcKey(0)); err != nil || !bytes.Equal(got, payload) {
		t.Errorf("re-Put after eviction did not restore the entry: %v", err)
	}
}

// TestSidecarSharpensRecency: a persisted access time newer than the
// file's mtime wins, so an old-but-recently-read entry outlives
// younger-but-cold peers across a reopen.
func TestSidecarSharpensRecency(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{0xCD}, 1024)
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	now := time.Now()
	for i := 0; i < n; i++ {
		if err := d.Put(lcKey(i), payload); err != nil {
			t.Fatal(err)
		}
		// lc-00 has the oldest mtime of all.
		mt := now.Add(-2 * time.Hour)
		if i > 0 {
			mt = now.Add(-1 * time.Hour)
		}
		if err := os.Chtimes(filepath.Join(dir, Hash(lcKey(i))+".run"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// The sidecar says lc-00 was read just now: recency beats mtime.
	idx := indexMagic + "\n" + fmt.Sprintf("%s %d\n", Hash(lcKey(0)), now.Unix())
	if err := os.WriteFile(filepath.Join(dir, indexName), []byte(idx), 0o644); err != nil {
		t.Fatal(err)
	}

	size := lcFrameSize(payload)
	d2, err := OpenDiskWith(dir, DiskOptions{BudgetBytes: 2 * size})
	if err != nil {
		t.Fatal(err)
	}
	d2.WaitSweeps()
	// over = 4s - 0.9*2s = 2.2s: the three cold entries go, the
	// mtime-oldest but sidecar-hottest one stays.
	if got, err := d2.Get(lcKey(0)); err != nil || !bytes.Equal(got, payload) {
		t.Errorf("sidecar-hot entry evicted despite its recent access: %v", err)
	}
	for i := 1; i < n; i++ {
		if _, err := d2.Get(lcKey(i)); !errors.Is(err, ErrNotFound) {
			t.Errorf("cold entry %d survived a sweep that needed its bytes: %v", i, err)
		}
	}
}

// TestInjectedEvictIsMiss: the store.disk.evict failpoint evicts the
// entry under a read — the Get degrades to a miss, never an error, with
// or without a budget, and a re-Put repairs it.
func TestInjectedEvictIsMiss(t *testing.T) {
	for _, budget := range []int64{0, 1 << 30} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			p, err := fault.Parse("seed=1;store.disk.evict:evictx1")
			if err != nil {
				t.Fatal(err)
			}
			fault.Enable(p)
			defer fault.Disable()

			dir := t.TempDir()
			d, err := OpenDiskWith(dir, DiskOptions{BudgetBytes: budget})
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("evict-me")
			if err := d.Put(lcKey(0), payload); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Get(lcKey(0)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("injected eviction should read as a miss, got %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, Hash(lcKey(0))+".run")); !os.IsNotExist(err) {
				t.Errorf("entry file survived the injected eviction: %v", err)
			}
			if budget > 0 {
				if ev := d.EvictionStats(); ev.Evicted != 1 {
					t.Errorf("injected eviction not counted: %+v", ev)
				}
			}
			// The schedule is exhausted (x1): a re-Put restores service.
			if err := d.Put(lcKey(0), payload); err != nil {
				t.Fatal(err)
			}
			if got, err := d.Get(lcKey(0)); err != nil || !bytes.Equal(got, payload) {
				t.Errorf("re-Put after injected eviction: %v", err)
			}
		})
	}
}

// TestEvictionRaceNeverTearsReads hammers a tightly-budgeted store with
// concurrent writers, readers and sweeps under the race detector: every
// Get must return either the complete payload or ErrNotFound — an
// eviction mid-read degrades to a miss, never a torn frame (which would
// show up as a quarantine).
func TestEvictionRaceNeverTearsReads(t *testing.T) {
	const keys = 32
	payloadFor := func(k int) []byte { return bytes.Repeat([]byte{byte(k + 1)}, 1024) }
	size := lcFrameSize(payloadFor(0))
	d, err := OpenDiskWith(t.TempDir(), DiskOptions{BudgetBytes: 8 * size})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) { // writer
			defer wg.Done()
			for i := 0; i < 150; i++ {
				k := (g*37 + i) % keys
				if err := d.Put(lcKey(k), payloadFor(k)); err != nil {
					errCh <- fmt.Errorf("Put(%d): %w", k, err)
					return
				}
			}
		}(g)
		go func(g int) { // reader
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := (g*53 + i) % keys
				got, err := d.Get(lcKey(k))
				switch {
				case errors.Is(err, ErrNotFound):
				case err != nil:
					errCh <- fmt.Errorf("Get(%d): %w", k, err)
					return
				case !bytes.Equal(got, payloadFor(k)):
					errCh <- fmt.Errorf("Get(%d): wrong payload (%d bytes)", k, len(got))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // concurrent synchronous sweeps
		defer wg.Done()
		for i := 0; i < 20; i++ {
			d.SweepNow()
		}
	}()
	wg.Wait()
	d.WaitSweeps()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if q := d.Quarantined(); q != 0 {
		t.Errorf("%d entries quarantined — an eviction raced a read into a torn frame", q)
	}
	if ev := d.EvictionStats(); ev.Evicted == 0 {
		t.Error("the budget never forced an eviction; the race test exercised nothing")
	}
}

// TestSweepSkipsPinnedEntries: an entry pinned by an in-flight operation
// is never selected, even when it is the coldest entry in an
// over-budget store.
func TestSweepSkipsPinnedEntries(t *testing.T) {
	payload := bytes.Repeat([]byte{0xEE}, 1024)
	size := lcFrameSize(payload)
	d, err := OpenDiskWith(t.TempDir(), DiskOptions{BudgetBytes: 4 * size})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Put(lcKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	d.WaitSweeps()
	// Pin the coldest entry as a reader would, then blow the budget.
	cold := Hash(lcKey(0))
	d.lc.pin(cold)
	for i := 4; i < 8; i++ {
		if err := d.Put(lcKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	d.SweepNow()
	if _, err := d.Get(lcKey(0)); err != nil {
		t.Errorf("pinned entry was evicted: %v", err)
	}
	d.lc.unpin(cold)
	d.SweepNow()
	d.WaitSweeps()
	if ev := d.EvictionStats(); ev.Footprint > 4*size {
		t.Errorf("store still over budget after unpinned sweep: %+v", ev)
	}
}

// TestTmpSweepAgeOption: the orphaned put-*.tmp threshold is an Open
// option, so tests can sweep young debris without faking mtimes.
func TestTmpSweepAgeOption(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-stale.tmp")
	if err := os.WriteFile(stale, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-10 * time.Millisecond)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskWith(dir, DiskOptions{TmpSweepAge: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("orphaned tmp not swept under a 1ms threshold: %v", err)
	}
	if d.TmpSwept() != 1 {
		t.Errorf("TmpSwept = %d, want 1", d.TmpSwept())
	}
}
