package store

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// KeySchema extracts the schema-version label ("v3") from a store key.
// Both key families embed it in the same position — "pracsim/run/v3/…"
// and "pracsim/exp/v3/…" — and anything else (foreign or malformed keys)
// reports "?" so maintenance never guesses.
func KeySchema(key string) string {
	parts := strings.SplitN(key, "/", 4)
	if len(parts) >= 3 && parts[0] == "pracsim" && len(parts[2]) >= 2 && parts[2][0] == 'v' {
		if _, err := strconv.Atoi(parts[2][1:]); err == nil {
			return parts[2]
		}
	}
	return "?"
}

// SchemaFootprint is one schema version's share of a store.
type SchemaFootprint struct {
	Schema  string
	Entries int
	Bytes   int64
}

// InfoReport summarizes a store's contents — what `tpracsim -store-info`
// prints for disk and remote backends alike.
type InfoReport struct {
	Spec           string
	Entries        int
	Bytes          int64
	Oldest, Newest time.Time
	Schemas        []SchemaFootprint
}

// Collect walks a backend and aggregates the maintenance summary. The
// walk streams (ListEach) and the aggregation is incremental, so
// summarizing a million-entry store holds one Info plus the per-schema
// totals in memory, never the full listing.
func Collect(b Backend) (InfoReport, error) {
	rep := InfoReport{Spec: b.Spec()}
	bySchema := map[string]*SchemaFootprint{}
	err := ListEach(b, func(info Info) error {
		rep.Entries++
		rep.Bytes += info.Size
		if rep.Oldest.IsZero() || info.ModTime.Before(rep.Oldest) {
			rep.Oldest = info.ModTime
		}
		if info.ModTime.After(rep.Newest) {
			rep.Newest = info.ModTime
		}
		schema := KeySchema(info.Key)
		fp := bySchema[schema]
		if fp == nil {
			fp = &SchemaFootprint{Schema: schema}
			bySchema[schema] = fp
		}
		fp.Entries++
		fp.Bytes += info.Size
		return nil
	})
	if err != nil {
		return InfoReport{}, err
	}
	for _, fp := range bySchema {
		rep.Schemas = append(rep.Schemas, *fp)
	}
	sort.Slice(rep.Schemas, func(i, j int) bool { return rep.Schemas[i].Schema < rep.Schemas[j].Schema })
	return rep, nil
}

// ParseByteSize parses the human-readable sizes the -store-budget /
// -budget flags accept: a plain integer is bytes, and K/KB/M/MB/G/GB
// suffixes (case-insensitive, 1024-based) scale it. "0" or "" disables
// whatever the size configures.
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range []struct {
		tag string
		m   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1}} {
		if strings.HasSuffix(upper, suf.tag) {
			mult = suf.m
			s = strings.TrimSpace(s[:len(s)-len(suf.tag)])
			break
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("store: invalid size %q (want e.g. 1048576, 512MB, 2GB)", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("store: size %q overflows", s)
	}
	return n * mult, nil
}

func kb(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.1f KB", float64(n)/1024)
}

func age(t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	return time.Since(t).Truncate(time.Second).String()
}

// Render returns the human-readable maintenance report.
func (r InfoReport) Render() string {
	out := fmt.Sprintf("store %s: %d entries, %s", r.Spec, r.Entries, kb(r.Bytes))
	if r.Entries > 0 {
		out += fmt.Sprintf(", oldest %s ago, newest %s ago", age(r.Oldest), age(r.Newest))
	}
	out += "\n"
	for _, fp := range r.Schemas {
		label := fp.Schema
		if label == "?" {
			label = "? (unrecognized keys)"
		}
		out += fmt.Sprintf("  schema %-22s %6d entries  %10s\n", label, fp.Entries, kb(fp.Bytes))
	}
	return strings.TrimRight(out, "\n")
}

// Prune deletes every entry from a recognized schema version other than
// current (e.g. "v3") — the orphans a schema bump leaves behind, which
// no future run can ever hit. Unrecognized keys are left alone: deleting
// what we cannot classify is how caches eat data. Entries that vanish
// mid-prune (a concurrent prune, a remote eviction) are counted as
// already gone, not failures.
func Prune(b Backend, current string) (pruned int, bytes int64, err error) {
	err = ListEach(b, func(info Info) error {
		schema := KeySchema(info.Key)
		if schema == "?" || schema == current {
			return nil
		}
		if derr := b.Delete(info.Key); derr != nil && derr != ErrNotFound {
			return derr
		}
		pruned++
		bytes += info.Size
		return nil
	})
	return pruned, bytes, err
}
