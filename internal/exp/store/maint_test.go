package store_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"pracsim/internal/exp/store"
	"pracsim/internal/exp/store/server"
)

func TestKeySchema(t *testing.T) {
	cases := map[string]string{
		"pracsim/run/v3/warmup=1/workload=milc": "v3",
		"pracsim/exp/v12/pracleak/fig3":         "v12",
		"pracsim/run/vX/oops":                   "?",
		"pracsim/run":                           "?",
		"someone-elses/key":                     "?",
		"":                                      "?",
	}
	for key, want := range cases {
		if got := store.KeySchema(key); got != want {
			t.Errorf("KeySchema(%q) = %q, want %q", key, got, want)
		}
	}
}

// seedSchemas fills a backend with entries across schema versions plus
// one unclassifiable key.
func seedSchemas(t *testing.T, b store.Backend) {
	t.Helper()
	entries := map[string]int{
		"pracsim/run/v3/a": 10,
		"pracsim/run/v3/b": 20,
		"pracsim/exp/v3/c": 30,
		"pracsim/run/v2/d": 40,
		"pracsim/exp/v1/e": 50,
		"foreign/key":      60,
	}
	for key, size := range entries {
		if err := b.Put(key, make([]byte, size)); err != nil {
			t.Fatal(err)
		}
	}
}

func checkMaintenance(t *testing.T, b store.Backend) {
	t.Helper()
	rep, err := store.Collect(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 6 || rep.Bytes != 210 {
		t.Errorf("Collect = %d entries, %d bytes; want 6, 210", rep.Entries, rep.Bytes)
	}
	want := []store.SchemaFootprint{
		{Schema: "?", Entries: 1, Bytes: 60},
		{Schema: "v1", Entries: 1, Bytes: 50},
		{Schema: "v2", Entries: 1, Bytes: 40},
		{Schema: "v3", Entries: 3, Bytes: 60},
	}
	if len(rep.Schemas) != len(want) {
		t.Fatalf("schemas = %+v", rep.Schemas)
	}
	for i, w := range want {
		if rep.Schemas[i] != w {
			t.Errorf("schema[%d] = %+v, want %+v", i, rep.Schemas[i], w)
		}
	}
	render := rep.Render()
	for _, frag := range []string{"6 entries", "schema v3", "schema v2", "unrecognized"} {
		if !strings.Contains(render, frag) {
			t.Errorf("Render missing %q:\n%s", frag, render)
		}
	}

	// Prune keeps the current schema and what it cannot classify;
	// orphaned versions go.
	pruned, bytes, err := store.Prune(b, "v3")
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 2 || bytes != 90 {
		t.Errorf("Prune = %d entries, %d bytes; want 2, 90", pruned, bytes)
	}
	rep, err = store.Collect(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 4 || rep.Bytes != 120 {
		t.Errorf("after prune: %d entries, %d bytes; want 4, 120", rep.Entries, rep.Bytes)
	}
	for _, fp := range rep.Schemas {
		if fp.Schema == "v1" || fp.Schema == "v2" {
			t.Errorf("orphaned schema %s survived the prune", fp.Schema)
		}
	}
	// Idempotent: a second prune finds nothing.
	if pruned, _, err := store.Prune(b, "v3"); err != nil || pruned != 0 {
		t.Errorf("second Prune = %d, %v; want 0", pruned, err)
	}
}

// TestMaintenanceOnDisk: -store-info and -store-prune semantics against
// a directory.
func TestMaintenanceOnDisk(t *testing.T) {
	d := disk(t)
	seedSchemas(t, d)
	checkMaintenance(t, d)
}

// TestMaintenanceOverHTTP: the identical maintenance pass against a
// pracstored server — the satellite contract that both backends share
// one maintenance surface.
func TestMaintenanceOverHTTP(t *testing.T) {
	remoteDisk := disk(t)
	ts := httptest.NewServer(server.New(remoteDisk, server.Options{}))
	defer ts.Close()
	h := httpClient(t, ts.URL)
	seedSchemas(t, h)
	checkMaintenance(t, h)
}

// TestMaintenanceOverTiered: a tiered backend lists and prunes the
// authoritative remote, and pruning clears local copies too.
func TestMaintenanceOverTiered(t *testing.T) {
	remoteDisk := disk(t)
	ts := httptest.NewServer(server.New(remoteDisk, server.Options{}))
	defer ts.Close()
	local := disk(t)
	tiered := store.NewTiered(local, httpClient(t, ts.URL))
	seedSchemas(t, tiered)
	checkMaintenance(t, tiered)
	if _, err := local.Get("pracsim/run/v2/d"); err != store.ErrNotFound {
		t.Errorf("pruned entry survives in the local tier: %v", err)
	}
}

// TestParseByteSize pins the -store-budget / -budget flag grammar.
func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"":        0,
		"0":       0,
		"1048576": 1 << 20,
		"512B":    512,
		"4K":      4 << 10,
		"4KB":     4 << 10,
		"512MB":   512 << 20,
		"512mb":   512 << 20,
		"2G":      2 << 30,
		"2GB":     2 << 30,
		" 64 MB ": 64 << 20,
	}
	for in, want := range good {
		got, err := store.ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"-1", "-4KB", "twelve", "12TB", "9999999999999GB", "MB"} {
		if got, err := store.ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error", in, got)
		}
	}
}
