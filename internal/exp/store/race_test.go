//go:build race

package store

// raceEnabled reports whether the race detector instruments this build;
// timing guards skip under it (CI runs them in a non-race step).
const raceEnabled = true
