// Package server implements the pracstored HTTP service: the
// content-addressed run store exposed over the wire, so a dispatch fleet
// (or a CI matrix, or several experiment campaigns sweeping the same
// PRAC variants) shares one warm store instead of each machine warming
// its own.
//
// The wire format is the store's own self-validating entry frame, so
// checksums are verified on both ends: a PUT is decoded and validated —
// frame integrity, payload checksum, embedded key hashing to the
// addressed path — before it is atomically published via the disk
// backend's temp-file + rename path, and a GET serves the stored frame
// for the client to validate. The server therefore never needs to trust
// a client, and a client never needs to trust the server.
//
// Routes:
//
//	GET    /v1/e/{hash}     fetch a frame (404 on miss; gzip when accepted)
//	PUT    /v1/e/{hash}     validate + atomically publish a frame (gzip accepted)
//	DELETE /v1/e/{hash}     remove an entry
//	GET    /v1/stat/{hash}  entry metadata as JSON
//	GET    /v1/list         all entries as JSON (the maintenance surface)
//	GET    /healthz         liveness (no auth)
//	GET    /metrics         Prometheus-style counters (no auth)
//
// When a bearer token is configured, every /v1/* route requires
// `Authorization: Bearer <token>`; /healthz and /metrics stay open so
// probes and scrapers work without credentials.
package server

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"pracsim/internal/exp/store"
	"pracsim/internal/fault"
	"pracsim/internal/httpd"
)

// Options configures a Server.
type Options struct {
	// Token, when non-empty, is the bearer token every /v1/* request
	// must present.
	Token string
	// Log, when non-nil, receives one line per request.
	Log *log.Logger
}

// Server serves one disk-backed store over HTTP. It implements
// http.Handler.
type Server struct {
	disk   *store.Disk
	opts   Options
	mux    *http.ServeMux
	tokens *httpd.Tokens
	reqs   *httpd.Metrics

	start time.Time

	gets, puts, deletes, hits, misses atomic.Int64
	putRejects                        atomic.Int64
	bytesIn, bytesOut                 atomic.Int64
}

// New returns a server over a disk backend.
func New(d *store.Disk, opts Options) *Server {
	s := &Server{
		disk:   d,
		opts:   opts,
		start:  time.Now(),
		mux:    http.NewServeMux(),
		tokens: httpd.NewTokens(opts.Token),
		reqs:   httpd.NewMetrics(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /v1/e/{hash}", s.route("get", s.handleGet))
	s.mux.Handle("PUT /v1/e/{hash}", s.route("put", s.handlePut))
	s.mux.Handle("DELETE /v1/e/{hash}", s.route("delete", s.handleDelete))
	s.mux.Handle("GET /v1/stat/{hash}", s.route("stat", s.handleStat))
	s.mux.Handle("GET /v1/list", s.route("list", s.handleList))
	return s
}

// ServeHTTP dispatches to the store routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.opts.Log != nil {
		s.opts.Log.Printf("%s %s from %s", r.Method, r.URL.Path, r.RemoteAddr)
	}
	s.mux.ServeHTTP(w, r)
}

// route wraps a /v1/* handler with the shared bearer-token check and
// per-endpoint request/latency accounting.
func (s *Server) route(endpoint string, h http.HandlerFunc) http.Handler {
	return s.reqs.Instrument(endpoint, s.tokens.Require(h))
}

// validHash reports whether a path segment is a well-formed content
// address (64 lowercase hex digits) — everything else is rejected before
// it can name a file.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) hash(w http.ResponseWriter, r *http.Request) (string, bool) {
	h := r.PathValue("hash")
	if !validHash(h) {
		http.Error(w, "malformed entry hash", http.StatusBadRequest)
		return "", false
	}
	return h, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.gets.Add(1)
	hash, ok := s.hash(w, r)
	if !ok {
		return
	}
	// The server.get failpoint fails the request (err -> 500) or mangles
	// the served frame (trunc, corrupt) — a misbehaving or bit-rotting
	// server for the client's validation to catch.
	act := fault.Fire(fault.ServerGet)
	if act != nil && act.Kind == fault.Err {
		http.Error(w, act.Err("get "+hash).Error(), http.StatusInternalServerError)
		return
	}
	frame, _, err := s.disk.GetFrame(hash)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			s.misses.Add(1)
			http.Error(w, "no such entry", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if act != nil {
		switch act.Kind {
		case fault.Trunc:
			frame = frame[:len(frame)/2]
		case fault.Corrupt:
			frame = fault.CorruptByte(append([]byte(nil), frame...))
		}
	}
	s.hits.Add(1)
	s.bytesOut.Add(int64(len(frame)))
	w.Header().Set("Content-Type", "application/octet-stream")
	if len(frame) >= store.GzipMinBytes && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		zw := gzip.NewWriter(w)
		zw.Write(frame)
		zw.Close()
		return
	}
	w.Write(frame)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	s.puts.Add(1)
	hash, ok := s.hash(w, r)
	if !ok {
		return
	}
	if a := fault.Fire(fault.ServerPut); a != nil && a.Kind == fault.Err {
		http.Error(w, a.Err("put "+hash).Error(), http.StatusInternalServerError)
		return
	}
	var body io.Reader = http.MaxBytesReader(w, r.Body, store.MaxEntryBytes)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			s.putRejects.Add(1)
			http.Error(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		defer zr.Close()
		body = io.LimitReader(zr, store.MaxEntryBytes)
	}
	frame, err := io.ReadAll(body)
	if err != nil {
		s.putRejects.Add(1)
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	// PutFrame validates — checksum, lengths, key/hash agreement —
	// before publishing; a corrupt or mis-addressed upload never touches
	// the store. Validation failures (ErrBadFrame) are the client's
	// fault (400, counted as rejects); a storage failure on a frame that
	// validated is the server's (500), so a full disk never reads as
	// "corrupt uploads" in the metrics.
	_, n, err := s.disk.PutFrame(hash, frame)
	if err != nil {
		if errors.Is(err, store.ErrBadFrame) {
			s.putRejects.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.bytesIn.Add(int64(n))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.deletes.Add(1)
	hash, ok := s.hash(w, r)
	if !ok {
		return
	}
	if err := s.disk.DeleteFrame(hash); err != nil {
		if errors.Is(err, store.ErrNotFound) {
			http.Error(w, "no such entry", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	hash, ok := s.hash(w, r)
	if !ok {
		return
	}
	frame, mtime, err := s.disk.GetFrame(hash)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			http.Error(w, "no such entry", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	key, payload, err := store.DecodeFrameAny(frame)
	if err != nil {
		// A corrupt entry is indistinguishable from an absent one to
		// clients — exactly the degrade-to-miss contract.
		http.Error(w, "no such entry", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(store.Info{Key: key, Size: int64(len(payload)), ModTime: mtime})
}

// handleList streams the listing as one JSON array, entry by entry, so
// a million-entry store is never materialized server-side. A walk
// failure after the first byte has left cannot become a 500; it
// truncates the array, which the client's decode rejects.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	wrote := false
	enc := json.NewEncoder(w)
	err := store.ListEach(s.disk, func(info store.Info) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, "[")
			wrote = true
		} else {
			io.WriteString(w, ",")
		}
		return enc.Encode(info)
	})
	if err != nil && !wrote {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !wrote {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "[")
	}
	io.WriteString(w, "]\n")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) { httpd.Counter(w, name, help, v) }
	gauge := func(name, help string, v float64) { httpd.Gauge(w, name, help, v) }
	counter("pracstored_gets_total", "Entry GET requests.", s.gets.Load())
	counter("pracstored_hits_total", "GETs served from the store.", s.hits.Load())
	counter("pracstored_misses_total", "GETs with no entry.", s.misses.Load())
	counter("pracstored_puts_total", "Entry PUT requests.", s.puts.Load())
	counter("pracstored_put_rejects_total", "PUTs rejected by frame validation.", s.putRejects.Load())
	counter("pracstored_deletes_total", "Entry DELETE requests.", s.deletes.Load())
	counter("pracstored_auth_failures_total", "Requests with a missing or wrong bearer token.", s.tokens.AuthFailures())
	counter("pracstored_bytes_out_total", "Frame bytes served.", s.bytesOut.Load())
	counter("pracstored_bytes_in_total", "Payload bytes accepted.", s.bytesIn.Load())
	if n := fault.Fired(); n > 0 {
		counter("pracstored_faults_injected_total", "Faults injected by the -faults schedule.", n)
	}
	gauge("pracstored_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
	if entries, bytes, err := s.disk.Footprint(); err == nil {
		gauge("pracstored_entries", "Entry files in the store.", float64(entries))
		gauge("pracstored_store_bytes", "Entry file bytes in the store.", float64(bytes))
	}
	// Lifecycle metrics are emitted whenever a budget is set (so a scraper
	// sees the gauge move toward the limit), and whenever anything was
	// evicted even without one (injected evictions).
	if ev := s.disk.EvictionStats(); ev.Budget > 0 || ev.Evicted > 0 {
		counter("pracstored_evicted_total", "Entries evicted by the store budget or injected evictions.", ev.Evicted)
		counter("pracstored_evicted_bytes_total", "Entry file bytes reclaimed by eviction.", ev.EvictedBytes)
		counter("pracstored_eviction_sweeps_total", "Eviction sweeps that ran.", ev.Sweeps)
		gauge("pracstored_store_budget_bytes", "Configured store budget (0 = unbounded).", float64(ev.Budget))
	}
	s.reqs.Write(w, "pracstored")
}
