package server_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pracsim/internal/exp/store"
	"pracsim/internal/exp/store/server"
)

func newServer(t *testing.T, opts server.Options) (*httptest.Server, *store.Disk) {
	t.Helper()
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(disk, opts))
	t.Cleanup(ts.Close)
	return ts, disk
}

func client(t *testing.T, ts *httptest.Server) *store.HTTP {
	t.Helper()
	h, err := store.OpenHTTP(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRoundTrip is the wire contract: a Put through one client is a
// validated Get through another, small and large (gzip-compressed)
// payloads alike, and the served directory is an ordinary disk store.
func TestRoundTrip(t *testing.T) {
	ts, disk := newServer(t, server.Options{})
	a, b := client(t, ts), client(t, ts)

	small := []byte("small payload")
	large := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KB: crosses both gzip thresholds
	if err := a.Put("pracsim/run/v3/small", small); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("pracsim/run/v3/large", large); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string][]byte{"pracsim/run/v3/small": small, "pracsim/run/v3/large": large} {
		got, err := b.Get(key)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("Get(%s) = %d bytes, %v; want %d bytes", key, len(got), err, len(want))
		}
		// The server published via the ordinary disk path: a local open
		// of the same directory sees the entry.
		if got, err := disk.Get(key); err != nil || !bytes.Equal(got, want) {
			t.Errorf("disk.Get(%s) = %d bytes, %v", key, len(got), err)
		}
	}
	if _, err := b.Get("pracsim/run/v3/absent"); err != store.ErrNotFound {
		t.Errorf("Get(absent) = %v, want ErrNotFound", err)
	}
	rs := b.RemoteStats()
	if rs.Hits != 2 || rs.Misses != 1 || rs.Errors != 0 {
		t.Errorf("client stats = %+v", rs)
	}
}

// TestStatListDelete covers the maintenance surface over the wire.
func TestStatListDelete(t *testing.T) {
	ts, _ := newServer(t, server.Options{})
	h := client(t, ts)
	if err := h.Put("pracsim/run/v3/x", []byte("xxxx")); err != nil {
		t.Fatal(err)
	}
	if err := h.Put("pracsim/run/v2/y", []byte("yy")); err != nil {
		t.Fatal(err)
	}

	info, err := h.Stat("pracsim/run/v3/x")
	if err != nil || info.Key != "pracsim/run/v3/x" || info.Size != 4 {
		t.Errorf("Stat = %+v, %v", info, err)
	}
	if _, err := h.Stat("absent"); err != store.ErrNotFound {
		t.Errorf("Stat(absent) = %v, want ErrNotFound", err)
	}

	infos, err := h.List()
	if err != nil || len(infos) != 2 {
		t.Fatalf("List = %v, %v", infos, err)
	}
	sizes := map[string]int64{}
	for _, i := range infos {
		sizes[i.Key] = i.Size
	}
	if sizes["pracsim/run/v3/x"] != 4 || sizes["pracsim/run/v2/y"] != 2 {
		t.Errorf("List sizes = %v", sizes)
	}

	if err := h.Delete("pracsim/run/v2/y"); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete("pracsim/run/v2/y"); err != store.ErrNotFound {
		t.Errorf("second Delete = %v, want ErrNotFound", err)
	}
	if _, err := h.Get("pracsim/run/v2/y"); err != store.ErrNotFound {
		t.Errorf("deleted entry still served: %v", err)
	}
}

// TestBearerTokenAuth: with a token configured, every /v1/* route
// refuses anonymous requests, the right token opens them, and the
// probe/scrape endpoints stay open — while the Store front keeps
// degrading the refusals to misses, never failures.
func TestBearerTokenAuth(t *testing.T) {
	ts, _ := newServer(t, server.Options{Token: "sekrit"})

	t.Setenv(store.TokenEnv, "sekrit")
	authed := client(t, ts)
	if err := authed.Put("pracsim/run/v3/k", []byte("payload")); err != nil {
		t.Fatal(err)
	}

	t.Setenv(store.TokenEnv, "wrong")
	anon := client(t, ts)
	if _, err := anon.Get("pracsim/run/v3/k"); err == nil || err == store.ErrNotFound {
		t.Errorf("wrong token read an entry: %v", err)
	}
	if err := anon.Put("pracsim/run/v3/k2", []byte("x")); err == nil {
		t.Error("wrong token wrote an entry")
	}
	if _, err := anon.List(); err == nil {
		t.Error("wrong token listed the store")
	}
	// The front degrades an auth failure like any other backend error.
	front := store.NewStore(anon)
	if _, ok := front.Get("pracsim/run/v3/k"); ok {
		t.Error("front served a hit through an auth failure")
	}
	if st := front.Stats(); st.Misses != 1 || st.Remote.Errors == 0 {
		t.Errorf("front stats = %+v, want a miss and remote errors", st)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %s (%q), want open 200", path, resp.Status, body)
		}
	}
}

// TestPutValidation: the server rejects—and never publishes—uploads
// that fail frame validation: garbage bodies, checksum flips, and
// well-formed frames addressed at the wrong hash.
func TestPutValidation(t *testing.T) {
	ts, disk := newServer(t, server.Options{})
	key := "pracsim/run/v3/k"
	frame := store.EncodeFrame(key, []byte("a payload worth protecting"))
	flipped := append([]byte{}, frame...)
	flipped[len(flipped)-5] ^= 0xff

	put := func(hash string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/e/"+hash, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp
	}

	if resp := put(store.Hash(key), []byte("not a frame")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage PUT = %s, want 400", resp.Status)
	}
	if resp := put(store.Hash(key), flipped); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("checksum-flipped PUT = %s, want 400", resp.Status)
	}
	if resp := put(store.Hash("some-other-key"), frame); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mis-addressed PUT = %s, want 400", resp.Status)
	}
	if resp := put(strings.Repeat("z", 64), frame); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed-hash PUT = %s, want 400", resp.Status)
	}
	if infos, err := disk.List(); err != nil || len(infos) != 0 {
		t.Errorf("rejected uploads landed in the store: %v, %v", infos, err)
	}

	if resp := put(store.Hash(key), frame); resp.StatusCode != http.StatusNoContent {
		t.Errorf("valid PUT = %s, want 204", resp.Status)
	}
	if got, err := disk.Get(key); err != nil || string(got) != "a payload worth protecting" {
		t.Errorf("valid PUT not stored: %q, %v", got, err)
	}
}

// TestMetrics: the Prometheus endpoint reports the request counters and
// the store footprint gauges.
func TestMetrics(t *testing.T) {
	ts, _ := newServer(t, server.Options{})
	h := client(t, ts)
	if err := h.Put("pracsim/run/v3/m", []byte("metric payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get("pracsim/run/v3/m"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get("pracsim/run/v3/absent"); err != store.ErrNotFound {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pracstored_gets_total 2",
		"pracstored_hits_total 1",
		"pracstored_misses_total 1",
		"pracstored_puts_total 1",
		"pracstored_entries 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestConcurrentClients hammers one server with racing writers and
// readers on shared and distinct keys — the fleet's actual access
// pattern; every read must observe a complete payload for its key.
func TestConcurrentClients(t *testing.T) {
	ts, _ := newServer(t, server.Options{})
	const clients = 8
	done := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			h, err := store.OpenHTTP(ts.URL)
			if err != nil {
				done <- err
				return
			}
			own := fmt.Sprintf("pracsim/run/v3/own-%d", c)
			for i := 0; i < 10; i++ {
				if err := h.Put("pracsim/run/v3/shared", []byte("shared payload")); err != nil {
					done <- err
					return
				}
				if err := h.Put(own, []byte(own)); err != nil {
					done <- err
					return
				}
				if got, err := h.Get("pracsim/run/v3/shared"); err != nil || string(got) != "shared payload" {
					done <- fmt.Errorf("shared read = %q, %v", got, err)
					return
				}
				if got, err := h.Get(own); err != nil || string(got) != own {
					done <- fmt.Errorf("own read = %q, %v", got, err)
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
