// Package store is the persistent, content-addressed run store: a
// directory of checksummed entry files keyed by the hash of a canonical
// run key, layered under the in-process single-flight cache so warm
// results survive across tpracsim/pracleak invocations, CI passes and
// machines.
//
// The store is strictly a cache: every failure mode (missing file,
// truncated or bit-flipped entry, hash collision, unreadable directory)
// degrades to a miss and the caller recomputes — a corrupt store can cost
// time, never correctness. Writes go through a temp file and an atomic
// rename, so concurrent writers (even across processes sharing one store
// directory) only ever publish complete, self-validating entries.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// magic stamps the entry-file format; a format change bumps the suffix.
const magic = "pracstore1\n"

// Stats counts store traffic. Bytes are entry payload bytes (the encoded
// results), not file overhead.
type Stats struct {
	Hits         int64
	Misses       int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// Store is one on-disk run store rooted at a directory.
type Store struct {
	dir string

	hits, misses, writes, bytesRead, bytesWritten atomic.Int64
}

// DefaultDir is the store location when no explicit directory is given:
// the user cache directory (~/.cache/tpracsim on Linux).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("store: no user cache directory: %w", err)
	}
	return filepath.Join(base, "tpracsim"), nil
}

// OpenMode resolves a CLI -store flag: "auto" opens the store at
// DefaultDir, "off"/"none"/"" disables persistence (nil store), and
// anything else is a directory path.
//
// "auto" is best-effort: the store is strictly a cache, so when the
// user cache directory cannot be resolved or created (no $HOME in a CI
// container, a read-only home) the mode degrades to store-off and
// returns a one-line warning for the CLI to print, instead of failing
// an invocation that never asked for persistence by name. An explicit
// directory still fails hard — the user asked for that location.
func OpenMode(mode string) (st *Store, warning string, err error) {
	switch mode {
	case "off", "none", "":
		return nil, "", nil
	case "auto":
		dir, derr := DefaultDir()
		if derr == nil {
			if st, err = Open(dir); err == nil {
				return st, "", nil
			}
			derr = err
		}
		return nil, fmt.Sprintf("run store disabled (%v); pass -store DIR to persist runs", derr), nil
	default:
		st, err = Open(mode)
		return st, "", err
	}
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Report renders the one-line traffic summary the CLIs and the session
// telemetry print, so the format lives in one place.
func (st Stats) Report(dir string) string {
	return fmt.Sprintf("store: %d hits, %d misses, %.1f KB read, %.1f KB written (%s)",
		st.Hits, st.Misses,
		float64(st.BytesRead)/1024, float64(st.BytesWritten)/1024, dir)
}

// Stats snapshots the store's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Writes:       s.writes.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// Hash is the content address of a key: SHA-256 over the key string. The
// full key is stored inside the entry and verified on read, so even a
// hash collision degrades to a miss, not a wrong result.
func Hash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, Hash(key)+".run")
}

// encodeEntry frames a (key, payload) pair:
//
//	magic | keyLen uvarint | key | payloadLen uvarint | payload | sha256(payload)
func encodeEntry(key string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var lenbuf [binary.MaxVarintLen64]byte
	buf.Write(lenbuf[:binary.PutUvarint(lenbuf[:], uint64(len(key)))])
	buf.WriteString(key)
	buf.Write(lenbuf[:binary.PutUvarint(lenbuf[:], uint64(len(payload)))])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes()
}

// decodeEntry validates a framed entry against the expected key and
// returns its payload. Any deviation — wrong magic, truncation, a
// different key under the same hash, a checksum mismatch — is an error.
func decodeEntry(data []byte, key string) ([]byte, error) {
	if !bytes.HasPrefix(data, []byte(magic)) {
		return nil, fmt.Errorf("store: bad magic")
	}
	rest := data[len(magic):]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < keyLen {
		return nil, fmt.Errorf("store: truncated key")
	}
	rest = rest[n:]
	if string(rest[:keyLen]) != key {
		return nil, fmt.Errorf("store: key mismatch (hash collision or tampering)")
	}
	rest = rest[keyLen:]
	payLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("store: truncated payload length")
	}
	rest = rest[n:]
	// Compare without adding to payLen: a crafted length near 2^64 must
	// fail here, not wrap around and panic in the slice expression.
	if uint64(len(rest)) < payLen || uint64(len(rest))-payLen != sha256.Size {
		return nil, fmt.Errorf("store: truncated payload")
	}
	payload := rest[:payLen]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], rest[payLen:]) {
		return nil, fmt.Errorf("store: payload checksum mismatch")
	}
	return payload, nil
}

// Get returns the stored payload for key. Every failure mode — absent,
// truncated, corrupted, colliding — reports (nil, false) and counts a
// miss; the caller recomputes and its Put replaces the bad entry.
func (s *Store) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(data, key)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(payload)))
	return payload, true
}

// Put stores payload under key, atomically: the entry is written to a
// temp file in the store directory and renamed into place, so readers
// and concurrent writers (same key or not, same process or not) never
// observe a partial entry. The last writer wins; with deterministic
// payloads all writers carry identical bytes.
func (s *Store) Put(key string, payload []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	entry := encodeEntry(key, payload)
	if _, err := tmp.Write(entry); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(payload)))
	return nil
}
