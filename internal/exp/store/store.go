// Package store is the persistent, content-addressed run store: entries
// of checksummed, self-validating frames keyed by the hash of a
// canonical run key, layered under the in-process single-flight cache so
// warm results survive across tpracsim/pracleak invocations, CI passes
// and machines.
//
// The package splits into a thin Store front (traffic counters plus the
// degrade-to-miss contract) over pluggable backends:
//
//   - Disk — a local directory of entry files (the original store; the
//     on-disk format is unchanged)
//   - HTTP — a client for the pracstored service (cmd/pracstored), so a
//     whole dispatch fleet shares one warm store
//   - Tiered — a local Disk read-through cache over a remote, serving
//     hot keys locally and populating both on a remote hit
//
// The store is strictly a cache: every failure mode (missing file,
// truncated or bit-flipped entry, hash collision, unreadable directory,
// unreachable server, corrupt response) degrades to a miss and the
// caller recomputes — a corrupt or absent store can cost time, never
// correctness. Writes publish atomically (temp file + rename on disk,
// validated-frame PUT over HTTP), so concurrent writers only ever
// publish complete, self-validating entries.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
)

// Stats counts store traffic as seen by the session: front hits and
// misses, payload bytes (not file or wire overhead), and — when the
// backend has a remote leg — the remote traffic underneath, so a tiered
// session shows how many hits the local cache absorbed versus how many
// crossed the network.
type Stats struct {
	Hits         int64
	Misses       int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	// Quarantined counts corrupt entries the disk tier moved aside
	// (renamed to *.quarantine) after they failed validation on read.
	Quarantined int64
	// TmpSwept counts orphaned put-*.tmp files (debris from a writer
	// killed mid-Put) the disk tier removed when it opened.
	TmpSwept int64
	// WritesDropped counts Puts the front discarded after the backing
	// storage reported itself full (see Store.Put's degrade contract).
	WritesDropped int64
	// Eviction is the disk tier's budget/eviction snapshot (zero when no
	// budget is configured).
	Eviction EvictionStats
	// Remote is the remote leg's wire traffic (zero for local-only
	// backends). Remote.Errors counts transport failures and corrupt
	// responses — every one degraded to a miss or a skipped write.
	Remote RemoteStats
}

// Store is the front every session talks to: it wraps a Backend with
// traffic counters and the degrade-to-miss contract (any backend error
// on Get reports a plain miss).
type Store struct {
	b Backend

	// Warn, when set, receives the store's degrade warnings (one line
	// each, each condition at most once); nil means stderr. Set it before
	// first use.
	Warn func(msg string)

	hits, misses, writes, bytesRead, bytesWritten, writesDropped atomic.Int64
	writeOff                                                     atomic.Bool
}

// NewStore wraps a backend in the counting, degrading front.
func NewStore(b Backend) *Store { return &Store{b: b} }

// Open creates (if needed) and returns a store over the disk backend
// rooted at dir.
func Open(dir string) (*Store, error) {
	d, err := OpenDisk(dir)
	if err != nil {
		return nil, err
	}
	return NewStore(d), nil
}

// Backend returns the store's backend — the maintenance surface
// (Stat/List/Delete) lives there.
func (s *Store) Backend() Backend { return s.b }

// Spec reports the -store argument that reopens this store: a directory
// for disk stores, the server URL for remote and tiered ones. The
// dispatch driver forwards it to every fleet worker.
func (s *Store) Spec() string { return s.b.Spec() }

// Dir reports the store's root directory (its Spec); kept for the
// callers that predate remote backends.
func (s *Store) Dir() string { return s.b.Spec() }

// DefaultDir is the store location when no explicit directory is given:
// the user cache directory (~/.cache/tpracsim on Linux).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("store: no user cache directory: %w", err)
	}
	return filepath.Join(base, "tpracsim"), nil
}

// IsRemoteSpec reports whether a -store argument names a pracstored
// server rather than a directory or a mode keyword.
func IsRemoteSpec(mode string) bool {
	return strings.HasPrefix(mode, "http://") || strings.HasPrefix(mode, "https://")
}

// ResolveBackend is the single entry point every CLI routes its -store
// flag through:
//
//   - "off", "none", "" — persistence disabled (nil store)
//   - "auto" — a disk store at DefaultDir
//   - "http://…" / "https://…" — a pracstored server, fronted by a local
//     disk read-through cache under DefaultDir so hot keys stay local
//   - anything else — a disk store at that directory
//
// "auto" and the remote local cache are best-effort: the store is
// strictly a cache, so when the user cache directory cannot be resolved
// or created (no $HOME in a CI container, a read-only home) "auto"
// degrades to store-off and a remote spec degrades to a pure remote
// store, each returning a one-line warning for the CLI to print instead
// of failing an invocation that never asked for that directory by name.
// An explicit directory or URL still fails hard — the user asked for
// that location.
func ResolveBackend(mode string) (st *Store, warning string, err error) {
	return ResolveBackendWith(mode, HTTPOptions{})
}

// ResolveBackendWith is ResolveBackend with an explicit failure policy
// for the remote leg — how -store-timeout and -store-retries reach the
// client.
func ResolveBackendWith(mode string, opts HTTPOptions) (st *Store, warning string, err error) {
	return Resolve(mode, Options{HTTP: opts})
}

// Options combines the per-tier tuning a CLI's -store-* flags select:
// the disk options apply to whichever disk tier the mode resolves to
// ("auto", an explicit directory, or the local read-through cache under
// a remote), the HTTP options to the remote leg.
type Options struct {
	Disk DiskOptions
	HTTP HTTPOptions
}

// Resolve is ResolveBackend with the full option surface — how
// -store-budget, -store-timeout and -store-retries reach the backends.
func Resolve(mode string, opts Options) (st *Store, warning string, err error) {
	openDisk := func(dir string) (*Store, error) {
		d, err := OpenDiskWith(dir, opts.Disk)
		if err != nil {
			return nil, err
		}
		return NewStore(d), nil
	}
	switch mode {
	case "off", "none", "":
		return nil, "", nil
	case "auto":
		dir, derr := DefaultDir()
		if derr == nil {
			if st, err = openDisk(dir); err == nil {
				return st, "", nil
			}
			derr = err
		}
		return nil, fmt.Sprintf("run store disabled (%v); pass -store DIR to persist runs", derr), nil
	}
	if IsRemoteSpec(mode) {
		remote, err := OpenHTTPWith(mode, opts.HTTP)
		if err != nil {
			return nil, "", err
		}
		dir, derr := DefaultDir()
		if derr == nil {
			// Each remote gets its own cache directory, so two servers
			// (or a server and a plain "auto" store) never mix entries.
			local, oerr := OpenDiskWith(filepath.Join(dir, "remote-"+Hash(remote.Spec())[:16]), opts.Disk)
			if oerr == nil {
				return NewStore(NewTiered(local, remote)), "", nil
			}
			derr = oerr
		}
		return NewStore(remote),
			fmt.Sprintf("remote store %s: local read-through cache disabled (%v)", remote.Spec(), derr), nil
	}
	st, err = openDisk(mode)
	return st, "", err
}

// Report renders the traffic summary the CLIs and the session telemetry
// print, so the format lives in one place. Remote traffic appears only
// when the session actually touched a remote.
func (st Stats) Report(spec string) string {
	out := fmt.Sprintf("store: %d hits, %d misses, %.1f KB read, %.1f KB written (%s)",
		st.Hits, st.Misses,
		float64(st.BytesRead)/1024, float64(st.BytesWritten)/1024, spec)
	if st.Remote != (RemoteStats{}) {
		r := st.Remote
		out += fmt.Sprintf("; remote: %d hits, %d misses, %d errors, %.1f KB down, %.1f KB up",
			r.Hits, r.Misses, r.Errors,
			float64(r.BytesRead)/1024, float64(r.BytesWritten)/1024)
		if r.Retries > 0 {
			out += fmt.Sprintf(", %d retries", r.Retries)
		}
		if r.Skipped > 0 {
			out += fmt.Sprintf(", %d skipped (circuit open)", r.Skipped)
		}
	}
	if st.Quarantined > 0 {
		out += fmt.Sprintf("; quarantined %d corrupt entries", st.Quarantined)
	}
	if st.TmpSwept > 0 {
		out += fmt.Sprintf("; swept %d orphaned temp files", st.TmpSwept)
	}
	if ev := st.Eviction; ev.Budget > 0 {
		out += fmt.Sprintf("; budget %.1f/%.1f MB",
			float64(ev.Footprint)/(1<<20), float64(ev.Budget)/(1<<20))
		if ev.Evicted > 0 {
			out += fmt.Sprintf(", evicted %d entries (%.1f MB) in %d sweeps",
				ev.Evicted, float64(ev.EvictedBytes)/(1<<20), ev.Sweeps)
		}
	} else if ev.Evicted > 0 {
		// Budget-less but non-zero: injected evictions (chaos schedules).
		out += fmt.Sprintf("; evicted %d entries (injected)", ev.Evicted)
	}
	if st.WritesDropped > 0 {
		out += fmt.Sprintf("; store full, %d writes dropped", st.WritesDropped)
	}
	return out
}

// Stats snapshots the store's traffic counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Writes:        s.writes.Load(),
		BytesRead:     s.bytesRead.Load(),
		BytesWritten:  s.bytesWritten.Load(),
		WritesDropped: s.writesDropped.Load(),
	}
	if rs, ok := s.b.(remoteStatser); ok {
		st.Remote = rs.RemoteStats()
	}
	if q, ok := s.b.(quarantiner); ok {
		st.Quarantined = q.Quarantined()
	}
	if t, ok := s.b.(tmpSweeper); ok {
		st.TmpSwept = t.TmpSwept()
	}
	if e, ok := s.b.(evictionStatser); ok {
		st.Eviction = e.EvictionStats()
	}
	return st
}

// quarantiner is implemented by backends with a disk tier that moves
// corrupt entries aside (Disk itself, Tiered by delegation).
type quarantiner interface {
	Quarantined() int64
}

// tmpSweeper is implemented by backends with a disk tier that sweeps
// orphaned temp files at open (Disk itself, Tiered by delegation).
type tmpSweeper interface {
	TmpSwept() int64
}

// evictionStatser is implemented by backends with a budgeted disk tier
// (Disk itself, Tiered by delegation).
type evictionStatser interface {
	EvictionStats() EvictionStats
}

// Hash is the content address of a key: SHA-256 over the key string. The
// full key is stored inside the entry and verified on read, so even a
// hash collision degrades to a miss, not a wrong result.
func Hash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// Get returns the stored payload for key. Every failure mode — absent,
// truncated, corrupted, colliding, unreachable — reports (nil, false)
// and counts a miss; the caller recomputes and its Put replaces the bad
// entry.
func (s *Store) Get(key string) ([]byte, bool) {
	payload, err := s.b.Get(key)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(payload)))
	return payload, true
}

// Put stores payload under key, atomically and durably. The last writer
// wins; with deterministic payloads all writers carry identical bytes.
//
// A backend that reports itself out of space (ENOSPC, quota, read-only
// filesystem, short write) does not fail the run: the store is strictly
// a cache, so Put degrades to store-off for the rest of the process —
// one warning line, every later write counted in Stats.WritesDropped,
// reads continuing to serve what was already stored.
func (s *Store) Put(key string, payload []byte) error {
	if s.writeOff.Load() {
		s.writesDropped.Add(1)
		return nil
	}
	if err := s.b.Put(key, payload); err != nil {
		if !isStorageFull(err) {
			return err
		}
		if s.writeOff.CompareAndSwap(false, true) {
			s.warnf("store: writes disabled for this process: %v (cached reads continue; new runs recompute)", err)
		}
		s.writesDropped.Add(1)
		return nil
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(payload)))
	return nil
}

func (s *Store) warnf(format string, a ...any) {
	msg := fmt.Sprintf(format, a...)
	if s.Warn != nil {
		s.Warn(msg)
		return
	}
	fmt.Fprintln(os.Stderr, msg)
}

// isStorageFull classifies write failures that mean "this storage cannot
// take writes right now" rather than "this write was malformed".
func isStorageFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT) ||
		errors.Is(err, syscall.EROFS) || errors.Is(err, io.ErrShortWrite)
}
