package store

import (
	"fmt"
	"testing"
)

// BenchmarkStorePut measures the entry write path (frame + checksum +
// temp file + atomic rename) at a typical encoded-RunResult size.
func BenchmarkStorePut(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("bench/key-%d", i%64), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures the warm read path (read + frame validation
// + checksum verify) — the cost of a store hit.
func BenchmarkStoreGet(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("bench/key-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(fmt.Sprintf("bench/key-%d", i%64)); !ok {
			b.Fatal("miss on warm store")
		}
	}
}
