package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pracsim/internal/fault"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// diskOf reaches through the Store front to its disk backend, for tests
// that corrupt entry files in place.
func diskOf(t *testing.T, s *Store) *Disk {
	t.Helper()
	d, ok := s.Backend().(*Disk)
	if !ok {
		t.Fatalf("backend is %T, want *Disk", s.Backend())
	}
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	payload := []byte(`{"result":42}`)
	if _, ok := s.Get("k"); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
	if st.BytesRead != int64(len(payload)) || st.BytesWritten != int64(len(payload)) {
		t.Errorf("byte counters = %+v", st)
	}
}

// TestKeysAreIndependent: different keys address different entries, and a
// second Put overwrites.
func TestKeysAreIndependent(t *testing.T) {
	s := open(t)
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		got, ok := s.Get(fmt.Sprintf("key-%d", i))
		if !ok || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("key-%d = %v, %v", i, got, ok)
		}
	}
	if err := s.Put("key-3", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("key-3"); !ok || string(got) != "replaced" {
		t.Fatalf("overwrite lost: %q, %v", got, ok)
	}
}

// TestCorruptEntryIsAMiss exercises the robustness contract: truncation
// and bit flips anywhere in the entry degrade to a miss, and a recompute's
// Put restores the entry.
func TestCorruptEntryIsAMiss(t *testing.T) {
	payload := []byte("a payload long enough to truncate meaningfully")
	s := open(t)
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	path := diskOf(t, s).path("k")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string][]byte{
		"empty":          {},
		"half":           pristine[:len(pristine)/2],
		"no magic":       pristine[1:],
		"flipped byte":   append(append([]byte{}, pristine[:len(magic)+5]...), append([]byte{pristine[len(magic)+5] ^ 0xff}, pristine[len(magic)+6:]...)...),
		"flipped output": append(append([]byte{}, pristine[:len(pristine)-1]...), pristine[len(pristine)-1]^1),
	}
	for name, data := range corruptions {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get("k"); ok {
			t.Errorf("%s: corrupt entry served as a hit: %q", name, got)
		}
		if err := s.Put("k", payload); err != nil {
			t.Fatalf("%s: re-put after corruption: %v", name, err)
		}
		if got, ok := s.Get("k"); !ok || !bytes.Equal(got, payload) {
			t.Errorf("%s: entry not restored: %q, %v", name, got, ok)
		}
	}
}

// TestCraftedLengthIsAMissNotAPanic: a payload-length uvarint near 2^64
// must fail the frame validation, not wrap the bounds arithmetic and
// panic — a crafted or badly corrupted entry in a shared store must
// never crash the reader.
func TestCraftedLengthIsAMissNotAPanic(t *testing.T) {
	s := open(t)
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Rebuild the entry with the payload length replaced by maxUint64 -
	// 31 (so payLen + 32 wraps to a small number).
	var frame bytes.Buffer
	frame.WriteString(magic)
	var lenbuf [binary.MaxVarintLen64]byte
	frame.Write(lenbuf[:binary.PutUvarint(lenbuf[:], uint64(len("k")))])
	frame.WriteString("k")
	frame.Write(lenbuf[:binary.PutUvarint(lenbuf[:], ^uint64(31))])
	frame.WriteString("short")
	if err := os.WriteFile(diskOf(t, s).path("k"), frame.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); ok {
		t.Errorf("crafted entry served as a hit: %q", got)
	}
}

// TestResolveBackend pins the CLI flag resolution shared by the cmd
// binaries: off modes, explicit directories, and remote URLs all route
// through the one entry point.
func TestResolveBackend(t *testing.T) {
	for _, mode := range []string{"off", "none", ""} {
		st, warn, err := ResolveBackend(mode)
		if st != nil || warn != "" || err != nil {
			t.Errorf("ResolveBackend(%q) = %v, %q, %v; want nil store", mode, st, warn, err)
		}
	}
	dir := t.TempDir()
	st, warn, err := ResolveBackend(dir)
	if err != nil || warn != "" || st == nil || st.Spec() != dir {
		t.Errorf("ResolveBackend(dir) = %v, %q, %v", st, warn, err)
	}
	if _, ok := st.Backend().(*Disk); !ok {
		t.Errorf("ResolveBackend(dir) backend is %T, want *Disk", st.Backend())
	}
}

// TestResolveBackendRemote: an http:// spec resolves to a tiered store
// (local read-through cache over the remote) whose Spec is the server
// URL — what dispatch forwards to fleet workers. Without a usable cache
// directory it degrades to a pure remote with a warning; a malformed URL
// fails hard, like any explicitly named location.
func TestResolveBackendRemote(t *testing.T) {
	t.Setenv("XDG_CACHE_HOME", t.TempDir())
	const url = "http://127.0.0.1:59999"
	st, warn, err := ResolveBackend(url)
	if err != nil || warn != "" || st == nil {
		t.Fatalf("ResolveBackend(url) = %v, %q, %v", st, warn, err)
	}
	if st.Spec() != url {
		t.Errorf("tiered Spec = %q, want the server URL %q", st.Spec(), url)
	}
	tiered, ok := st.Backend().(*Tiered)
	if !ok {
		t.Fatalf("backend is %T, want *Tiered", st.Backend())
	}
	if _, ok := tiered.Local().(*Disk); !ok {
		t.Errorf("tiered local leg is %T, want *Disk", tiered.Local())
	}
	if _, ok := tiered.Remote().(*HTTP); !ok {
		t.Errorf("tiered remote leg is %T, want *HTTP", tiered.Remote())
	}

	// Two different servers must not share one local tier.
	st2, _, err := ResolveBackend("http://127.0.0.1:59998")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := tiered.Local().Spec(), st2.Backend().(*Tiered).Local().Spec(); a == b {
		t.Errorf("two remotes share the local tier %q", a)
	}

	t.Setenv("HOME", "")
	t.Setenv("XDG_CACHE_HOME", "")
	st, warn, err = ResolveBackend(url)
	if err != nil || st == nil {
		t.Fatalf("ResolveBackend(url) without cache dir = %v, %q, %v", st, warn, err)
	}
	if _, ok := st.Backend().(*HTTP); !ok {
		t.Errorf("degraded backend is %T, want pure *HTTP", st.Backend())
	}
	if !strings.Contains(warn, "read-through cache disabled") {
		t.Errorf("degraded remote warning unhelpful: %q", warn)
	}

	if _, _, err := ResolveBackend("http://"); err == nil {
		t.Error("malformed URL accepted")
	}
}

// TestResolveBackendAutoDegradesToOff: the store is strictly a cache, so
// an environment where the user cache directory cannot be resolved (no
// $HOME — CI containers) must degrade "auto" to store-off with a
// warning, not fail the CLI. An explicit directory still fails hard.
func TestResolveBackendAutoDegradesToOff(t *testing.T) {
	t.Setenv("HOME", "")
	t.Setenv("XDG_CACHE_HOME", "")
	st, warn, err := ResolveBackend("auto")
	if err != nil {
		t.Fatalf("ResolveBackend(auto) hard-failed without a cache dir: %v", err)
	}
	if st != nil {
		t.Errorf("ResolveBackend(auto) opened a store at %q without a cache dir", st.Spec())
	}
	if warn == "" || !strings.Contains(warn, "-store DIR") {
		t.Errorf("degraded ResolveBackend(auto) warning unhelpful: %q", warn)
	}
	// The explicit-path contract is unchanged: the user named the
	// location, so failing to create it is an error.
	bad := filepath.Join(t.TempDir(), "not-a-dir")
	if werr := os.WriteFile(bad, []byte("file in the way"), 0o644); werr != nil {
		t.Fatal(werr)
	}
	if _, _, err := ResolveBackend(filepath.Join(bad, "sub")); err == nil {
		t.Error("ResolveBackend(explicit unusable dir) did not fail")
	}
}

// TestKeyMismatchIsAMiss simulates a hash collision: an entry file whose
// embedded key differs from the requested key must be a miss even though
// it is internally consistent.
func TestKeyMismatchIsAMiss(t *testing.T) {
	s := open(t)
	if err := s.Put("other-key", []byte("other payload")); err != nil {
		t.Fatal(err)
	}
	// Copy other-key's entry file to where "wanted-key" would live.
	data, err := os.ReadFile(diskOf(t, s).path("other-key"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(diskOf(t, s).path("wanted-key"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("wanted-key"); ok {
		t.Errorf("colliding entry served as a hit: %q", got)
	}
}

// TestConcurrentWriters hammers one store with racing writers and readers
// across shared and distinct keys; under -race this is the concurrency
// safety test, and every read must observe either a miss or a complete,
// valid payload for its key (atomic rename: never a torn entry).
func TestConcurrentWriters(t *testing.T) {
	s := open(t)
	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", g)
			for i := 0; i < rounds; i++ {
				if err := s.Put("shared", []byte("shared payload")); err != nil {
					t.Error(err)
				}
				if err := s.Put(own, []byte(own)); err != nil {
					t.Error(err)
				}
				if got, ok := s.Get("shared"); ok && string(got) != "shared payload" {
					t.Errorf("torn shared read: %q", got)
				}
				if got, ok := s.Get(own); !ok || string(got) != own {
					t.Errorf("own key %s read %q, %v", own, got, ok)
				}
			}
		}()
	}
	wg.Wait()
	// No temp files may survive.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if got := e.Name(); len(got) < 4 || got[len(got)-4:] != ".run" {
			t.Errorf("leftover non-entry file %s", got)
		}
	}
}

// TestVersionedKeysDoNotAlias: keys that differ only in an embedded
// version component address different entries — the invalidation
// mechanism a schema bump relies on.
func TestVersionedKeysDoNotAlias(t *testing.T) {
	s := open(t)
	if err := s.Put("run/v3/x", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("run/v4/x"); ok {
		t.Error("v4 key hit a v3 entry")
	}
	if got, ok := s.Get("run/v3/x"); !ok || string(got) != "v3" {
		t.Errorf("v3 entry lost: %q, %v", got, ok)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}

// TestConcurrentSameKeyPutOneAtomicWinner: two writers racing distinct
// payloads onto one key must resolve to exactly one complete payload —
// the atomic-rename contract means a reader can observe either writer's
// entry but never a torn mix, and the last rename wins outright.
func TestConcurrentSameKeyPutOneAtomicWinner(t *testing.T) {
	s := open(t)
	a := bytes.Repeat([]byte("A"), 8192)
	b := bytes.Repeat([]byte("B"), 8192)
	for round := 0; round < 50; round++ {
		var wg sync.WaitGroup
		var start sync.WaitGroup
		start.Add(1)
		for _, payload := range [][]byte{a, b} {
			wg.Add(1)
			go func(p []byte) {
				defer wg.Done()
				start.Wait()
				if err := s.Put("contested", p); err != nil {
					t.Error(err)
				}
			}(payload)
		}
		start.Done()
		wg.Wait()
		got, ok := s.Get("contested")
		if !ok {
			t.Fatalf("round %d: no winner published", round)
		}
		if !bytes.Equal(got, a) && !bytes.Equal(got, b) {
			t.Fatalf("round %d: torn entry: %d bytes, first=%q last=%q",
				round, len(got), got[0], got[len(got)-1])
		}
	}
	// The losers' temp files must not accumulate.
	entries, err := os.ReadDir(diskOf(t, s).Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".run") {
			t.Errorf("leftover non-entry file %s", e.Name())
		}
	}
}

// TestDiskBackendSurface covers the maintenance half of the Backend
// interface on disk: Stat, List and Delete over validated entries, with
// corrupt and foreign files skipped rather than listed.
func TestDiskBackendSurface(t *testing.T) {
	s := open(t)
	d := diskOf(t, s)
	keys := []string{"pracsim/run/v3/a", "pracsim/run/v3/b", "pracsim/exp/v2/c"}
	for i, k := range keys {
		if err := s.Put(k, bytes.Repeat([]byte{byte(i + 1)}, 10*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Debris: a corrupt entry and a foreign file must not surface.
	if err := os.WriteFile(filepath.Join(d.Dir(), Hash("junk")+".run"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d.Dir(), "README.txt"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	info, err := d.Stat("pracsim/run/v3/b")
	if err != nil || info.Key != "pracsim/run/v3/b" || info.Size != 20 {
		t.Errorf("Stat = %+v, %v", info, err)
	}
	if _, err := d.Stat("absent"); err != ErrNotFound {
		t.Errorf("Stat(absent) = %v, want ErrNotFound", err)
	}

	infos, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]int64{}
	for _, i := range infos {
		listed[i.Key] = i.Size
	}
	if len(listed) != len(keys) || listed["pracsim/run/v3/a"] != 10 || listed["pracsim/exp/v2/c"] != 30 {
		t.Errorf("List = %v", listed)
	}

	if err := d.Delete("pracsim/run/v3/a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("pracsim/run/v3/a"); err != ErrNotFound {
		t.Errorf("second Delete = %v, want ErrNotFound", err)
	}
	if _, ok := s.Get("pracsim/run/v3/a"); ok {
		t.Error("deleted entry still served")
	}
}

// TestStatRejectsTruncatedEntry: Stat skips the payload checksum for
// speed, but its size-consistency check still catches the common
// corruption (truncation) — a half-written or chopped file must not
// look like a present entry to Stat-before-Put callers.
func TestStatRejectsTruncatedEntry(t *testing.T) {
	s := open(t)
	d := diskOf(t, s)
	if err := s.Put("k", []byte("a payload long enough to truncate meaningfully")); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(d.path("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("k"), pristine[:len(pristine)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if info, err := d.Stat("k"); err == nil {
		t.Errorf("Stat served a truncated entry: %+v", info)
	}
}

// TestQuarantineCorruptEntry: an entry that fails validation on read is
// renamed aside (*.quarantine) so the bad bytes cost one read, not one
// per access, and the count is visible in Stats. A later Put publishes a
// fresh entry at the original path.
func TestQuarantineCorruptEntry(t *testing.T) {
	s := open(t)
	if err := s.Put("k", []byte("a payload long enough to corrupt meaningfully")); err != nil {
		t.Fatal(err)
	}
	d := diskOf(t, s)
	path := d.path("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still at %s: %v", path, err)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Errorf("no quarantine file: %v", err)
	}
	if d.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want 1", d.Quarantined())
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats().Quarantined = %d, want 1", st.Quarantined)
	}

	// The second access is a plain not-found miss: the bad entry is gone
	// from the .run namespace, so it is not re-read or re-counted.
	if _, ok := s.Get("k"); ok {
		t.Fatal("quarantined entry served as a hit")
	}
	if d.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d after second Get, want still 1", d.Quarantined())
	}

	// List and the maintenance surface must not see the quarantined file.
	if infos, err := d.List(); err != nil || len(infos) != 0 {
		t.Errorf("List = %v, %v; want empty", infos, err)
	}

	// A recompute's Put restores the entry at the original path.
	if err := s.Put("k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "fresh" {
		t.Errorf("entry not restored: %q, %v", got, ok)
	}
}

// TestPutDegradesWhenStorageFull: a backend reporting itself full turns
// the store write-off for the rest of the process — one warning line,
// dropped writes counted, reads still served — instead of failing runs
// over what is strictly a cache.
func TestPutDegradesWhenStorageFull(t *testing.T) {
	defer fault.Disable()
	s := open(t)
	if err := s.Put("warm", []byte("kept")); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	s.Warn = func(msg string) { warnings = append(warnings, msg) }

	plan, err := fault.Parse("store.disk.put:enospc")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(plan)
	if err := s.Put("k1", []byte("lost")); err != nil {
		t.Fatalf("ENOSPC Put failed the caller: %v", err)
	}
	fault.Disable()

	// The store is write-off now: even though the disk would accept this
	// write, the front drops it (and counts it) rather than flapping.
	if err := s.Put("k2", []byte("also dropped")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WritesDropped != 2 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 2 dropped / 1 write", st)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "writes disabled") {
		t.Errorf("warnings = %q, want exactly one store-off line", warnings)
	}
	if got, ok := s.Get("warm"); !ok || string(got) != "kept" {
		t.Errorf("reads broken after write-off: %q, %v", got, ok)
	}
	if _, ok := s.Get("k1"); ok {
		t.Error("dropped write served as a hit")
	}
}

// TestShortWriteDegradesToo: io.ErrShortWrite is in the storage-full
// class — same degrade, not a failed run.
func TestShortWriteDegradesToo(t *testing.T) {
	defer fault.Disable()
	s := open(t)
	s.Warn = func(string) {}
	plan, err := fault.Parse("store.disk.put:shortx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(plan)
	if err := s.Put("k", []byte("x")); err != nil {
		t.Fatalf("short-write Put failed the caller: %v", err)
	}
	if st := s.Stats(); st.WritesDropped != 1 {
		t.Errorf("stats = %+v, want 1 dropped write", st)
	}
}

// TestDiskGetFaultInjection: the store.disk.get failpoint's corrupt kind
// mangles the read bytes, which the validation catches and quarantines —
// the whole bitrot path, driven end-to-end by the fault layer.
func TestDiskGetFaultInjection(t *testing.T) {
	defer fault.Disable()
	s := open(t)
	if err := s.Put("k", []byte("payload to be bitrotted")); err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("store.disk.get:corruptx1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(plan)
	if _, ok := s.Get("k"); ok {
		t.Fatal("bitrotted read served as a hit")
	}
	fault.Disable()
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v, want the bitrotted entry quarantined", st)
	}
	// The on-disk entry was quarantined, so a fault-free Get misses.
	if _, ok := s.Get("k"); ok {
		t.Fatal("quarantined entry served")
	}
}

// TestOpenSweepsOrphanedTmpFiles: put-*.tmp debris from a writer killed
// mid-Put is removed the next time the store opens — but only once it
// is old enough that it cannot belong to a concurrent writer — and the
// sweep is visible in Stats and the report line.
func TestOpenSweepsOrphanedTmpFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-dead1.tmp")
	young := filepath.Join(dir, "put-live2.tmp")
	other := filepath.Join(dir, "unrelated.tmp")
	for _, p := range []string{stale, young, other} {
		if err := os.WriteFile(p, []byte("half-written frame"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-2 * DefaultTmpSweepAge)
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(other, past, past); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(stale); !os.IsNotExist(statErr) {
		t.Errorf("stale temp file survived the sweep: %v", statErr)
	}
	if _, statErr := os.Stat(young); statErr != nil {
		t.Errorf("young temp file swept (could be a live writer's): %v", statErr)
	}
	if _, statErr := os.Stat(other); statErr != nil {
		t.Errorf("non-Put file swept: %v", statErr)
	}
	st := s.Stats()
	if st.TmpSwept != 1 {
		t.Errorf("Stats.TmpSwept = %d, want 1", st.TmpSwept)
	}
	if !strings.Contains(st.Report(dir), "swept 1 orphaned temp file") {
		t.Errorf("sweep missing from report: %q", st.Report(dir))
	}

	// A store with nothing to sweep reports nothing.
	clean := open(t)
	if got := clean.Stats().Report("x"); strings.Contains(got, "swept") {
		t.Errorf("clean store reports a sweep: %q", got)
	}
}

// TestTieredReportsLocalTmpSweep: the sweep counter surfaces through a
// tiered backend the same way quarantines do.
func TestTieredReportsLocalTmpSweep(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-dead.tmp")
	if err := os.WriteFile(stale, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-2 * DefaultTmpSweepAge)
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}
	local, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(NewTiered(local, remote))
	if got := s.Stats().TmpSwept; got != 1 {
		t.Errorf("tiered Stats.TmpSwept = %d, want 1", got)
	}
}
