package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	payload := []byte(`{"result":42}`)
	if _, ok := s.Get("k"); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
	if st.BytesRead != int64(len(payload)) || st.BytesWritten != int64(len(payload)) {
		t.Errorf("byte counters = %+v", st)
	}
}

// TestKeysAreIndependent: different keys address different entries, and a
// second Put overwrites.
func TestKeysAreIndependent(t *testing.T) {
	s := open(t)
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		got, ok := s.Get(fmt.Sprintf("key-%d", i))
		if !ok || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("key-%d = %v, %v", i, got, ok)
		}
	}
	if err := s.Put("key-3", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("key-3"); !ok || string(got) != "replaced" {
		t.Fatalf("overwrite lost: %q, %v", got, ok)
	}
}

// TestCorruptEntryIsAMiss exercises the robustness contract: truncation
// and bit flips anywhere in the entry degrade to a miss, and a recompute's
// Put restores the entry.
func TestCorruptEntryIsAMiss(t *testing.T) {
	payload := []byte("a payload long enough to truncate meaningfully")
	s := open(t)
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	path := s.path("k")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string][]byte{
		"empty":          {},
		"half":           pristine[:len(pristine)/2],
		"no magic":       pristine[1:],
		"flipped byte":   append(append([]byte{}, pristine[:len(magic)+5]...), append([]byte{pristine[len(magic)+5] ^ 0xff}, pristine[len(magic)+6:]...)...),
		"flipped output": append(append([]byte{}, pristine[:len(pristine)-1]...), pristine[len(pristine)-1]^1),
	}
	for name, data := range corruptions {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get("k"); ok {
			t.Errorf("%s: corrupt entry served as a hit: %q", name, got)
		}
		if err := s.Put("k", payload); err != nil {
			t.Fatalf("%s: re-put after corruption: %v", name, err)
		}
		if got, ok := s.Get("k"); !ok || !bytes.Equal(got, payload) {
			t.Errorf("%s: entry not restored: %q, %v", name, got, ok)
		}
	}
}

// TestCraftedLengthIsAMissNotAPanic: a payload-length uvarint near 2^64
// must fail the frame validation, not wrap the bounds arithmetic and
// panic — a crafted or badly corrupted entry in a shared store must
// never crash the reader.
func TestCraftedLengthIsAMissNotAPanic(t *testing.T) {
	s := open(t)
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Rebuild the entry with the payload length replaced by maxUint64 -
	// 31 (so payLen + 32 wraps to a small number).
	var frame bytes.Buffer
	frame.WriteString(magic)
	var lenbuf [binary.MaxVarintLen64]byte
	frame.Write(lenbuf[:binary.PutUvarint(lenbuf[:], uint64(len("k")))])
	frame.WriteString("k")
	frame.Write(lenbuf[:binary.PutUvarint(lenbuf[:], ^uint64(31))])
	frame.WriteString("short")
	if err := os.WriteFile(s.path("k"), frame.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); ok {
		t.Errorf("crafted entry served as a hit: %q", got)
	}
}

// TestOpenMode pins the CLI flag resolution shared by the cmd binaries.
func TestOpenMode(t *testing.T) {
	for _, mode := range []string{"off", "none", ""} {
		st, warn, err := OpenMode(mode)
		if st != nil || warn != "" || err != nil {
			t.Errorf("OpenMode(%q) = %v, %q, %v; want nil store", mode, st, warn, err)
		}
	}
	dir := t.TempDir()
	st, warn, err := OpenMode(dir)
	if err != nil || warn != "" || st == nil || st.Dir() != dir {
		t.Errorf("OpenMode(dir) = %v, %q, %v", st, warn, err)
	}
}

// TestOpenModeAutoDegradesToOff: the store is strictly a cache, so an
// environment where the user cache directory cannot be resolved (no
// $HOME — CI containers) must degrade "auto" to store-off with a
// warning, not fail the CLI. An explicit directory still fails hard.
func TestOpenModeAutoDegradesToOff(t *testing.T) {
	t.Setenv("HOME", "")
	t.Setenv("XDG_CACHE_HOME", "")
	st, warn, err := OpenMode("auto")
	if err != nil {
		t.Fatalf("OpenMode(auto) hard-failed without a cache dir: %v", err)
	}
	if st != nil {
		t.Errorf("OpenMode(auto) opened a store at %q without a cache dir", st.Dir())
	}
	if warn == "" || !strings.Contains(warn, "-store DIR") {
		t.Errorf("degraded OpenMode(auto) warning unhelpful: %q", warn)
	}
	// The explicit-path contract is unchanged: the user named the
	// location, so failing to create it is an error.
	bad := filepath.Join(t.TempDir(), "not-a-dir")
	if werr := os.WriteFile(bad, []byte("file in the way"), 0o644); werr != nil {
		t.Fatal(werr)
	}
	if _, _, err := OpenMode(filepath.Join(bad, "sub")); err == nil {
		t.Error("OpenMode(explicit unusable dir) did not fail")
	}
}

// TestKeyMismatchIsAMiss simulates a hash collision: an entry file whose
// embedded key differs from the requested key must be a miss even though
// it is internally consistent.
func TestKeyMismatchIsAMiss(t *testing.T) {
	s := open(t)
	if err := s.Put("other-key", []byte("other payload")); err != nil {
		t.Fatal(err)
	}
	// Copy other-key's entry file to where "wanted-key" would live.
	data, err := os.ReadFile(s.path("other-key"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("wanted-key"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("wanted-key"); ok {
		t.Errorf("colliding entry served as a hit: %q", got)
	}
}

// TestConcurrentWriters hammers one store with racing writers and readers
// across shared and distinct keys; under -race this is the concurrency
// safety test, and every read must observe either a miss or a complete,
// valid payload for its key (atomic rename: never a torn entry).
func TestConcurrentWriters(t *testing.T) {
	s := open(t)
	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", g)
			for i := 0; i < rounds; i++ {
				if err := s.Put("shared", []byte("shared payload")); err != nil {
					t.Error(err)
				}
				if err := s.Put(own, []byte(own)); err != nil {
					t.Error(err)
				}
				if got, ok := s.Get("shared"); ok && string(got) != "shared payload" {
					t.Errorf("torn shared read: %q", got)
				}
				if got, ok := s.Get(own); !ok || string(got) != own {
					t.Errorf("own key %s read %q, %v", own, got, ok)
				}
			}
		}()
	}
	wg.Wait()
	// No temp files may survive.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if got := e.Name(); len(got) < 4 || got[len(got)-4:] != ".run" {
			t.Errorf("leftover non-entry file %s", got)
		}
	}
}

// TestVersionedKeysDoNotAlias: keys that differ only in an embedded
// version component address different entries — the invalidation
// mechanism a schema bump relies on.
func TestVersionedKeysDoNotAlias(t *testing.T) {
	s := open(t)
	if err := s.Put("run/v3/x", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("run/v4/x"); ok {
		t.Error("v4 key hit a v3 entry")
	}
	if got, ok := s.Get("run/v3/x"); !ok || string(got) != "v3" {
		t.Errorf("v3 entry lost: %q, %v", got, ok)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}
