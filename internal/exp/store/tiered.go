package store

// Tiered layers a local read-through cache (normally Disk) over a remote
// backend (normally HTTP): hot keys are served from the local tier
// without touching the network, remote hits populate the local tier on
// the way through, and writes go to both — so a fleet worker warms its
// machine and the shared server with one Put. The remote is
// authoritative: the maintenance surface (Stat/List/Delete) and the
// reopen Spec both speak for it.
type Tiered struct {
	local, remote Backend
}

// NewTiered returns the tiered backend over a local cache and a remote.
func NewTiered(local, remote Backend) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Local returns the local tier.
func (t *Tiered) Local() Backend { return t.local }

// Remote returns the remote tier.
func (t *Tiered) Remote() Backend { return t.remote }

// Spec reports the remote's spec: reopening a tiered store means
// pointing at the same server (each machine grows its own local tier).
func (t *Tiered) Spec() string { return t.remote.Spec() }

// RemoteStats reports the remote leg's wire traffic.
func (t *Tiered) RemoteStats() RemoteStats {
	if rs, ok := t.remote.(remoteStatser); ok {
		return rs.RemoteStats()
	}
	return RemoteStats{}
}

// Quarantined reports the local tier's quarantined-entry count.
func (t *Tiered) Quarantined() int64 {
	if q, ok := t.local.(quarantiner); ok {
		return q.Quarantined()
	}
	return 0
}

// TmpSwept reports the local tier's orphaned-temp-file sweep count.
func (t *Tiered) TmpSwept() int64 {
	if s, ok := t.local.(tmpSweeper); ok {
		return s.TmpSwept()
	}
	return 0
}

// EvictionStats reports the local tier's budget/eviction snapshot: the
// budget governs this machine's cache, not the authoritative remote
// (which accounts for its own disk in its own process).
func (t *Tiered) EvictionStats() EvictionStats {
	if e, ok := t.local.(evictionStatser); ok {
		return e.EvictionStats()
	}
	return EvictionStats{}
}

// Get serves the local tier first; a local miss falls through to the
// remote, and a remote hit back-fills the local tier (best-effort) so
// the next Get stays off the network. A remote failure is the remote's
// error — the Store front degrades it to a miss.
func (t *Tiered) Get(key string) ([]byte, error) {
	if payload, err := t.local.Get(key); err == nil {
		return payload, nil
	}
	payload, err := t.remote.Get(key)
	if err != nil {
		return nil, err
	}
	_ = t.local.Put(key, payload) // cache back-fill: a failure costs a future fetch
	return payload, nil
}

// Put publishes to both tiers. The local write is best-effort (a full
// local disk must not stop the fleet-visible write); the remote write's
// error is the result, since the remote is what other workers see.
func (t *Tiered) Put(key string, payload []byte) error {
	_ = t.local.Put(key, payload)
	return t.remote.Put(key, payload)
}

// Stat asks the local tier first, then the remote.
func (t *Tiered) Stat(key string) (Info, error) {
	if info, err := t.local.Stat(key); err == nil {
		return info, nil
	}
	return t.remote.Stat(key)
}

// List enumerates the authoritative remote, plus any entries that exist
// only in the local tier (back-filled before a server-side prune, or
// written while the server was down) — otherwise maintenance could
// never see, and Prune could never reclaim, local-only orphans.
func (t *Tiered) List() ([]Info, error) {
	infos, err := t.remote.List()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(infos))
	for _, info := range infos {
		seen[info.Key] = true
	}
	// The local tier is a plain cache on this machine; if it cannot
	// even be listed, the remote listing still stands.
	locals, lerr := t.local.List()
	if lerr == nil {
		for _, info := range locals {
			if !seen[info.Key] {
				infos = append(infos, info)
			}
		}
	}
	return infos, nil
}

// ListEach streams the authoritative remote's entries, then the
// local-only extras — the streaming twin of List, with the same
// tolerance for an unlistable local tier.
func (t *Tiered) ListEach(fn func(Info) error) error {
	seen := make(map[string]bool)
	if err := ListEach(t.remote, func(info Info) error {
		seen[info.Key] = true
		return fn(info)
	}); err != nil {
		return err
	}
	var fnErr error
	// The local tier is a plain cache on this machine; if it cannot even
	// be walked, the remote walk still stands — but an error from fn
	// itself must surface.
	_ = ListEach(t.local, func(info Info) error {
		if seen[info.Key] {
			return nil
		}
		if err := fn(info); err != nil {
			fnErr = err
			return err
		}
		return nil
	})
	return fnErr
}

// Delete removes the entry from both tiers: pruning a stale schema
// version must not leave local copies resurrecting it, so a failed
// local delete (not ErrNotFound — an entry that is already gone is
// fine) is reported even when the remote delete succeeded. An entry
// present in either tier counts as deleted when both tiers end up
// without it.
func (t *Tiered) Delete(key string) error {
	lerr := t.local.Delete(key)
	rerr := t.remote.Delete(key)
	if lerr != nil && lerr != ErrNotFound {
		return lerr
	}
	if rerr == ErrNotFound && lerr == nil {
		return nil
	}
	return rerr
}
