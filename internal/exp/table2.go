package exp

import (
	"fmt"

	"pracsim/internal/attack"
	"pracsim/internal/stats"
)

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Type        string
	NBO         int
	PeriodUS    float64
	BitrateKbps float64
	ErrorRate   float64
	Symbols     int
}

// Table2Result holds the covert-channel characterization.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 reproduces Table 2: transmission period and bitrate of the
// activity-based and activation-count-based covert channels for NBO in
// {256, 512, 1024}, over the given number of symbols per configuration.
// The six channel configurations are independent and run in parallel
// across workers (optional; all cores by default); rows keep their
// fixed order (three activity, then three count).
func RunTable2(symbols int, workers ...int) (Table2Result, error) {
	if symbols <= 0 {
		symbols = 16
	}
	nbos := []int{256, 512, 1024}
	res := Table2Result{Rows: make([]Table2Row, 2*len(nbos))}
	err := sweepPool(workers).Run(len(res.Rows), func(i int) error {
		nbo := nbos[i%len(nbos)]
		if i < len(nbos) {
			a, err := attack.RunActivityChannel(attack.ActivityConfig{
				NBO:     nbo,
				NumBits: symbols,
				Seed:    int64(nbo),
			})
			if err != nil {
				return fmt.Errorf("table2 activity nbo=%d: %w", nbo, err)
			}
			res.Rows[i] = Table2Row{
				Type:        "Activity-Based",
				NBO:         nbo,
				PeriodUS:    a.Period.US(),
				BitrateKbps: a.BitrateKbps,
				ErrorRate:   a.ErrorRate,
				Symbols:     a.Symbols,
			}
			return nil
		}
		c, err := attack.RunCountChannel(attack.CountConfig{
			NBO:     nbo,
			NumVals: symbols,
			Seed:    int64(nbo),
		})
		if err != nil {
			return fmt.Errorf("table2 count nbo=%d: %w", nbo, err)
		}
		res.Rows[i] = Table2Row{
			Type:        "Activation-Count-Based",
			NBO:         nbo,
			PeriodUS:    c.Period.US(),
			BitrateKbps: c.BitrateKbps,
			ErrorRate:   c.ErrorRate,
			Symbols:     c.Symbols,
		}
		return nil
	})
	return res, err
}

func (r Table2Result) table() *stats.Table {
	t := &stats.Table{Header: []string{
		"Type", "NBO", "Period(us)", "Bitrate(Kbps)", "ErrorRate", "Symbols",
	}}
	for _, row := range r.Rows {
		t.Add(row.Type, row.NBO, row.PeriodUS, row.BitrateKbps, row.ErrorRate, row.Symbols)
	}
	return t
}

// Render returns the human-readable report.
func (r Table2Result) Render() string {
	return "Table 2: covert channel transmission period and bitrate\n" + r.table().String()
}

// CSV returns the machine-readable report.
func (r Table2Result) CSV() string { return r.table().CSV() }
