package exp

import (
	"fmt"
	"sort"
	"sync"

	"pracsim/internal/fault"
	"pracsim/internal/sim"
	"pracsim/internal/stats"
)

// RunTelemetry is one executed simulation's execution record: which grid
// cell it was and how it ran. Cached cache hits do not add entries — the
// log holds one record per simulation actually executed, so wall-clock
// sums are real compute time.
type RunTelemetry struct {
	Variant  string
	Workload string
	T        sim.Telemetry
}

// telemetryLog collects per-simulation telemetry across pool workers.
type telemetryLog struct {
	mu      sync.Mutex
	entries []RunTelemetry
}

func (l *telemetryLog) add(e RunTelemetry) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

func (l *telemetryLog) snapshot() []RunTelemetry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunTelemetry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Telemetry returns the per-simulation execution records of every run
// this session executed, in completion order.
func (s *Runner) Telemetry() []RunTelemetry { return s.r.tlog.snapshot() }

// TelemetryReport renders the session's execution telemetry: aggregate
// simulation rate and elision wins, plus the slowest `top` simulations so
// stragglers in large sweeps are visible at a glance. Sessions with a
// persistent store lead with the store's hit/miss/byte counters — on a
// fully warm store the session executes nothing and the store line is
// the whole story.
func (s *Runner) TelemetryReport(top int) string {
	out := ""
	if s.r.store != nil {
		out += s.r.store.Stats().Report(s.r.store.Spec()) + "\n"
	}
	if s.r.journal != nil {
		out += s.r.journal.Stats().Report(s.r.journal.Path()) + "\n"
	}
	// A fault schedule makes a session's numbers suspect by design; say
	// so whenever one actually fired.
	if p := fault.Active(); p != nil && fault.Fired() > 0 {
		out += fmt.Sprintf("faults: %d injected by schedule %q\n", fault.Fired(), p.Spec)
	}
	entries := s.r.tlog.snapshot()
	if len(entries) == 0 {
		return out + "telemetry: no simulations executed\n"
	}
	var wallNS, steps, elided, simTicks int64
	for _, e := range entries {
		wallNS += e.T.WallNS
		steps += e.T.EngineSteps
		elided += e.T.ElidedCycles()
		simTicks += int64(e.T.SimTicks)
	}
	// A per-cycle engine pays one timestep per simulated tick, so the
	// step reduction is simTicks/steps; elided is the raw component-cycle
	// count (cores and controller sum separately).
	out += fmt.Sprintf(
		"telemetry: %d simulations, %.2fs total sim compute, %.1f Mticks/s aggregate, %d engine steps (%.1fx fewer than per-cycle), %d component cycles elided\n",
		len(entries), float64(wallNS)/1e9,
		float64(simTicks)/(float64(wallNS)/1e9)/1e6,
		steps, float64(simTicks)/float64(steps),
		elided)
	sort.Slice(entries, func(i, j int) bool { return entries[i].T.WallNS > entries[j].T.WallNS })
	if top > len(entries) {
		top = len(entries)
	}
	if top > 0 {
		t := &stats.Table{Header: []string{"slowest runs", "workload", "wall-ms", "Mticks/s", "elided-cycles", "clock"}}
		for _, e := range entries[:top] {
			t.Add(e.Variant, e.Workload,
				float64(e.T.WallNS)/1e6, e.T.TicksPerSec/1e6, e.T.ElidedCycles(), e.T.Clock)
		}
		out += t.String()
	}
	return out
}
