// Package fault is the deterministic, seed-driven failpoint framework:
// named injection points at every I/O boundary of the store/shard/
// dispatch pipeline, activated per-process by a compact schedule spec
// (the -faults flag or $PRACSIM_FAULTS), so "what happens when several
// things fail at once" is a reproducible input to a run rather than an
// anecdote from production.
//
// A schedule is a semicolon-separated list of rules:
//
//	seed=7;store.http.get:err@0.2;dispatch.worker:kill=2sx1
//
// Each rule is `point:kind[=duration][@probability][xmax]`: the kind of
// fault to inject at the named point, an optional duration operand
// (delays, kill timers), the per-hit firing probability (default 1) and
// a cap on total firings (default unlimited). Every firing decision is a
// pure function of (seed, salt, point, rule, hit ordinal), so the same
// spec replays the same fault sequence — the salt ($PRACSIM_FAULT_SALT,
// set per attempt by the dispatch driver) decorrelates retried worker
// processes that would otherwise re-draw the exact faults that killed
// their predecessor.
//
// When no plan is enabled the per-hit cost is one atomic pointer load
// and a nil check — the framework is free on the hot path, pinned by
// BenchmarkFireDisabled and TestDisabledOverheadGuard.
package fault

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable a process reads its fault
// schedule from (the -faults flag defaults to it). Child processes — a
// dispatch fleet's re-exec'd workers — inherit it, so one spec faults a
// whole process tree.
const EnvVar = "PRACSIM_FAULTS"

// SaltEnvVar names the per-process salt mixed into every firing draw.
// The dispatch driver sets it per worker attempt so a retried worker
// does not deterministically re-draw the faults that failed its
// predecessor, while the run as a whole stays replayable.
const SaltEnvVar = "PRACSIM_FAULT_SALT"

// The failpoints threaded through the pipeline. Each site documents the
// kinds it honors; a rule with a kind the site never checks simply never
// fires behavior (but still draws, keeping schedules stable).
const (
	// StoreDiskGet fires in the disk backend's entry read: err, corrupt.
	StoreDiskGet = "store.disk.get"
	// StoreDiskPut fires in the disk backend's atomic write: err,
	// enospc, short.
	StoreDiskPut = "store.disk.put"
	// StoreDiskEvict fires in the disk backend's read paths: evict
	// (the entry is evicted before it is served, so the read degrades to
	// a miss — never an error). Chaos schedules use it to fire eviction
	// storms mid-session without needing a store that actually overflows
	// its budget.
	StoreDiskEvict = "store.disk.evict"
	// StoreHTTPGet fires in the store client's read-side requests
	// (GET/stat/list): err (transport failure), timeout, http500, trunc
	// (truncated response body), corrupt (bit-flipped response body).
	StoreHTTPGet = "store.http.get"
	// StoreHTTPPut fires in the store client's write-side requests
	// (PUT/DELETE): err, timeout, http500.
	StoreHTTPPut = "store.http.put"
	// ServerGet fires in the pracstored GET handler: err (500), trunc,
	// corrupt.
	ServerGet = "server.get"
	// ServerPut fires in the pracstored PUT handler: err (500).
	ServerPut = "server.put"
	// ShardRead fires in the shard-file reader (validate and merge):
	// err, corrupt.
	ShardRead = "shard.read"
	// ShardWrite fires in the shard-file writer: err, short.
	ShardWrite = "shard.write"
	// DispatchSpawn fires when the dispatch driver launches a worker
	// attempt: err (spawn fails), delay (launch is delayed).
	DispatchSpawn = "dispatch.spawn"
	// DispatchWorker fires against a running worker attempt: kill
	// (SIGKILL after the duration operand), delay.
	DispatchWorker = "dispatch.worker"
	// JournalAppend fires in the session journal's record append: err
	// (append fails, nothing written), short (a partial frame lands on
	// disk and is immediately repaired by truncation), torn (a partial
	// frame lands on disk and stays there — the crash-mid-append case
	// recovery must truncate on the next open).
	JournalAppend = "journal.append"
	// JournalSync fires in the session journal's fsync batch: err (the
	// sync fails; the journal stays usable and the next sync retries).
	JournalSync = "journal.sync"
	// ServiceSubmit fires in pracsimd's job-submit handler: err (500 —
	// the job is not journaled and the client must retry), delay.
	ServiceSubmit = "service.submit"
	// QueueLease fires on the work-item lease path — the daemon's grant
	// handler and the pull worker's lease request alike: err, delay.
	QueueLease = "queue.lease"
	// QueueAck fires on the work-item ack path — the daemon's shard
	// upload handler and the pull worker's delivery alike: err (the ack
	// fails; the lease expires and the item requeues), delay.
	QueueAck = "queue.ack"
	// ServiceStream fires per SSE progress event in pracsimd: err (the
	// stream drops mid-job; polling still serves the status), delay.
	ServiceStream = "service.stream"
)

// Kind names what a fired failpoint does at its site.
type Kind string

// The fault kinds. Sites interpret them; Parse validates them.
const (
	Err     Kind = "err"     // a generic injected error
	Timeout Kind = "timeout" // a transport timeout (HTTP client)
	HTTP500 Kind = "http500" // a synthetic 500 response (HTTP client)
	Trunc   Kind = "trunc"   // truncate the data stream
	Corrupt Kind = "corrupt" // flip a byte in the data stream
	ENOSPC  Kind = "enospc"  // disk-full on write
	Short   Kind = "short"   // short write
	Kill    Kind = "kill"    // SIGKILL the worker process
	Delay   Kind = "delay"   // sleep the duration operand
	Torn    Kind = "torn"    // leave a torn partial write behind (journal)
	Evict   Kind = "evict"   // evict the store entry being read (degrades to a miss)
)

var knownPoints = map[string]bool{
	StoreDiskGet: true, StoreDiskPut: true, StoreDiskEvict: true,
	StoreHTTPGet: true, StoreHTTPPut: true,
	ServerGet: true, ServerPut: true,
	ShardRead: true, ShardWrite: true,
	DispatchSpawn: true, DispatchWorker: true,
	JournalAppend: true, JournalSync: true,
	ServiceSubmit: true, QueueLease: true, QueueAck: true, ServiceStream: true,
}

var knownKinds = map[Kind]bool{
	Err: true, Timeout: true, HTTP500: true, Trunc: true, Corrupt: true,
	ENOSPC: true, Short: true, Kill: true, Delay: true, Torn: true,
	Evict: true,
}

// Points enumerates every failpoint, for docs and usage errors.
func Points() []string {
	pts := make([]string, 0, len(knownPoints))
	for p := range knownPoints {
		pts = append(pts, p)
	}
	sort.Strings(pts) // stable order for help text and error messages
	return pts
}

// Action is one fired failpoint: what the site should do.
type Action struct {
	Point string
	Kind  Kind
	// Value is the duration operand (kill timers, delays); zero when the
	// rule carried none.
	Value time.Duration
	// Hit is the 1-based hit ordinal at this point that fired, for logs.
	Hit int64
}

// Err renders the injected failure as an error a site can return.
func (a *Action) Err(op string) error {
	return fmt.Errorf("fault: injected %s at %s (%s)", a.Kind, a.Point, op)
}

// rule is one parsed schedule entry.
type rule struct {
	kind  Kind
	value time.Duration
	prob  float64 // (0, 1]
	max   int64   // 0 = unlimited

	hits  atomic.Int64 // draws at this rule (every hit of its point)
	fired atomic.Int64
}

// Plan is a parsed, activatable fault schedule.
type Plan struct {
	// Spec is the schedule string the plan was parsed from.
	Spec string
	// Seed drives every firing draw (default 1).
	Seed uint64
	// Salt decorrelates processes sharing a spec; see SaltEnvVar.
	Salt string
	// LogTo, when non-nil, receives one line per fired fault — worker
	// stderr by default, so a dispatch fleet's injected faults surface
	// in the driver's prefixed stream.
	LogTo io.Writer

	rules map[string][]*rule

	mu  sync.Mutex
	log []string

	fired atomic.Int64
}

// Parse reads a fault schedule spec. Unknown points and kinds are
// errors: a typo that silently injects nothing would make a green chaos
// run meaningless.
func Parse(spec string) (*Plan, error) {
	p := &Plan{Spec: spec, Seed: 1, rules: make(map[string][]*rule)}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", rest)
			}
			p.Seed = seed
			continue
		}
		point, action, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("fault: rule %q is not point:kind[=dur][@prob][xN]", part)
		}
		if !knownPoints[point] {
			return nil, fmt.Errorf("fault: unknown failpoint %q (known: %s)", point, strings.Join(Points(), ", "))
		}
		r, err := parseAction(action)
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: %w", part, err)
		}
		p.rules[point] = append(p.rules[point], r)
	}
	return p, nil
}

// parseAction reads `kind[=dur][@prob][xN]`.
func parseAction(s string) (*rule, error) {
	r := &rule{prob: 1}
	// xN suffix: a trailing 'x' followed only by digits. Checked first so
	// it cannot be confused with duration units or kind names.
	if i := strings.LastIndexByte(s, 'x'); i >= 0 && i < len(s)-1 && allDigits(s[i+1:]) {
		n, err := strconv.ParseInt(s[i+1:], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad max %q", s[i+1:])
		}
		r.max, s = n, s[:i]
	}
	if kind, prob, ok := strings.Cut(s, "@"); ok {
		f, err := strconv.ParseFloat(prob, 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad probability %q (want (0, 1])", prob)
		}
		r.prob, s = f, kind
	}
	if kind, val, ok := strings.Cut(s, "="); ok {
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad duration %q", val)
		}
		r.value, s = d, kind
	}
	if !knownKinds[Kind(s)] {
		return nil, fmt.Errorf("unknown fault kind %q", s)
	}
	r.kind = Kind(s)
	return r, nil
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// active is the process's enabled plan; nil means every Fire is a no-op.
var active atomic.Pointer[Plan]

// Enable activates a plan process-wide (replacing any previous one).
func Enable(p *Plan) { active.Store(p) }

// Disable deactivates fault injection.
func Disable() { active.Store(nil) }

// Active returns the enabled plan, or nil.
func Active() *Plan { return active.Load() }

// EnableFromEnv parses and enables $PRACSIM_FAULTS (with
// $PRACSIM_FAULT_SALT mixed in) when set, reporting whether a plan was
// enabled. CLIs call it so fault schedules propagate to re-exec'd fleet
// workers through the environment.
func EnableFromEnv() (bool, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return false, nil
	}
	p, err := Parse(spec)
	if err != nil {
		return false, err
	}
	p.Salt = os.Getenv(SaltEnvVar)
	p.LogTo = os.Stderr
	Enable(p)
	return true, nil
}

// Fire evaluates a failpoint: nil when no plan is enabled (the fast
// path — one atomic load), no rule matches, the draw misses, or the
// rule's firing cap is spent.
func Fire(point string) *Action {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fire(point)
}

// Fired reports how many faults the enabled plan has injected (0
// without a plan) — the counter sessions and worker trailers surface.
func Fired() int64 {
	if p := active.Load(); p != nil {
		return p.fired.Load()
	}
	return 0
}

// Log snapshots the enabled plan's injected-fault log (nil without a
// plan). With a fixed seed and a serial workload the log is identical
// across runs — the reproducibility contract chaos tests pin.
func Log() []string {
	if p := active.Load(); p != nil {
		return p.snapshotLog()
	}
	return nil
}

func (p *Plan) fire(point string) *Action {
	rules := p.rules[point]
	if rules == nil {
		return nil
	}
	for ri, r := range rules {
		n := r.hits.Add(1)
		if r.prob < 1 && draw(p.Seed, p.Salt, point, ri, n) >= r.prob {
			continue
		}
		if r.max > 0 && r.fired.Add(1) > r.max {
			continue
		}
		p.fired.Add(1)
		a := &Action{Point: point, Kind: r.kind, Value: r.value, Hit: n}
		p.record(a)
		return a
	}
	return nil
}

func (p *Plan) record(a *Action) {
	line := fmt.Sprintf("fault: %s hit %d -> %s", a.Point, a.Hit, a.Kind)
	if a.Value > 0 {
		line += "=" + a.Value.String()
	}
	if p.Salt != "" {
		line = fmt.Sprintf("fault[%s]: %s hit %d -> %s", p.Salt, a.Point, a.Hit, a.Kind)
	}
	p.mu.Lock()
	p.log = append(p.log, line)
	w := p.LogTo
	p.mu.Unlock()
	if w != nil {
		fmt.Fprintln(w, line)
	}
}

func (p *Plan) snapshotLog() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.log...)
}

// Fired reports how many faults this plan has injected.
func (p *Plan) Fired() int64 { return p.fired.Load() }

// draw maps (seed, salt, point, rule, hit) to a uniform float in [0, 1)
// — splitmix64 over an FNV-mixed key, so firing decisions are
// deterministic and independent across points and hits.
func draw(seed uint64, salt, point string, rule int, hit int64) float64 {
	h := fnv.New64a()
	io.WriteString(h, salt)
	io.WriteString(h, "\x00")
	io.WriteString(h, point)
	x := seed ^ h.Sum64() ^ uint64(rule)<<48 ^ uint64(hit)
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// CorruptByte flips one byte of data in place (the middle byte — enough
// to break any checksum) and returns it; the shared helper for
// corrupt-kind sites.
func CorruptByte(data []byte) []byte {
	if len(data) > 0 {
		data[len(data)/2] ^= 0x80
	}
	return data
}
