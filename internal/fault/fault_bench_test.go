package fault

import "testing"

// BenchmarkFaultFireDisabled pins the disabled fast path: one atomic pointer
// load and a nil check. The warm-sweep hot loop crosses failpoints
// millions of times; this must stay free.
func BenchmarkFaultFireDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Fire(StoreDiskGet) != nil {
			b.Fatal("fired with no plan")
		}
	}
}

// BenchmarkFaultFireEnabledMiss measures an enabled plan whose rules target a
// different point — the cost paid at every non-faulted site during a
// chaos run.
func BenchmarkFaultFireEnabledMiss(b *testing.B) {
	p, err := Parse("store.http.get:err@0.5")
	if err != nil {
		b.Fatal(err)
	}
	Enable(p)
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fire(StoreDiskGet)
	}
}

// TestDisabledOverheadGuard is the CI guard for the zero-overhead
// acceptance criterion: with no plan enabled, a Fire must cost no more
// than a handful of nanoseconds and zero allocations. The bound is
// generous (50ns covers slow shared runners); a regression to map
// lookups or locking on the fast path lands two orders of magnitude
// above it.
func TestDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the ns/op budget; CI runs this guard in a non-race step")
	}
	Disable()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if Fire(StoreDiskGet) != nil {
				b.Fatal("fired with no plan")
			}
		}
	})
	if ns := res.NsPerOp(); ns > 50 {
		t.Fatalf("disabled Fire costs %dns/op, want <=50ns", ns)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled Fire allocates %d/op, want 0", allocs)
	}
}
