package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("seed=42; store.http.get:err@0.25; dispatch.worker:kill=2sx1; store.disk.put:enospc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d, want 42", p.Seed)
	}
	httpGet := p.rules[StoreHTTPGet]
	if len(httpGet) != 1 || httpGet[0].kind != Err || httpGet[0].prob != 0.25 || httpGet[0].max != 0 {
		t.Fatalf("store.http.get rule = %+v", httpGet)
	}
	kill := p.rules[DispatchWorker]
	if len(kill) != 1 || kill[0].kind != Kill || kill[0].value != 2*time.Second || kill[0].max != 1 {
		t.Fatalf("dispatch.worker rule = %+v", kill)
	}
	enospc := p.rules[StoreDiskPut]
	if len(enospc) != 1 || enospc[0].kind != ENOSPC || enospc[0].prob != 1 {
		t.Fatalf("store.disk.put rule = %+v", enospc)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"seed=nope",
		"store.http.get",             // no kind
		"no.such.point:err",          // unknown point
		"store.http.get:frob",        // unknown kind
		"store.http.get:err@0",       // probability out of range
		"store.http.get:err@1.5",     // probability out of range
		"store.http.get:err@bad",     // unparseable probability
		"store.http.get:errx0",       // zero max
		"dispatch.worker:kill=-1s",   // negative duration
		"dispatch.worker:kill=later", // unparseable duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseEmptySpecIsEmptyPlan(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if a := p.fire(StoreHTTPGet); a != nil {
		t.Fatalf("empty plan fired %+v", a)
	}
}

func TestFireRespectsMaxAndCounts(t *testing.T) {
	p, err := Parse("shard.read:errx2")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if p.fire(ShardRead) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (x2 cap)", fired)
	}
	if p.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", p.Fired())
	}
}

func TestFireProbabilityIsDeterministic(t *testing.T) {
	const spec = "seed=7;store.http.get:err@0.3"
	run := func(salt string) []bool {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		p.Salt = salt
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.fire(StoreHTTPGet) != nil
		}
		return out
	}
	a, b := run(""), run("")
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical plans", i)
		}
		if a[i] {
			fired++
		}
	}
	// ~30% of 200 hits; generous bounds, but deterministic anyway.
	if fired < 30 || fired > 90 {
		t.Fatalf("fired %d/200 at p=0.3", fired)
	}
	// A different salt draws a different sequence.
	c := run("shard-1-attempt-2")
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("salted plan drew the identical sequence")
	}
}

func TestSeedChangesSequence(t *testing.T) {
	seq := func(spec string) string {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 100; i++ {
			if p.fire(StoreHTTPGet) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	if seq("seed=1;store.http.get:err@0.5") == seq("seed=2;store.http.get:err@0.5") {
		t.Fatal("different seeds drew identical sequences")
	}
}

func TestEnableDisableAndGlobalFire(t *testing.T) {
	defer Disable()
	if a := Fire(StoreDiskGet); a != nil {
		t.Fatalf("Fire with no plan = %+v, want nil", a)
	}
	if Fired() != 0 || Log() != nil {
		t.Fatal("disabled framework reported activity")
	}
	p, err := Parse("store.disk.get:corrupt")
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	a := Fire(StoreDiskGet)
	if a == nil || a.Kind != Corrupt || a.Point != StoreDiskGet || a.Hit != 1 {
		t.Fatalf("Fire = %+v", a)
	}
	if Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", Fired())
	}
	log := Log()
	if len(log) != 1 || !strings.Contains(log[0], "store.disk.get") || !strings.Contains(log[0], "corrupt") {
		t.Fatalf("Log() = %q", log)
	}
	Disable()
	if a := Fire(StoreDiskGet); a != nil {
		t.Fatalf("Fire after Disable = %+v", a)
	}
}

func TestSameSeedSameLog(t *testing.T) {
	run := func() []string {
		p, err := Parse("seed=11;shard.read:corrupt@0.4;store.disk.put:enospc@0.2x3")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			p.fire(ShardRead)
			p.fire(StoreDiskPut)
		}
		return p.snapshotLog()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("storm injected nothing")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("same seed produced different fault logs:\n%v\n---\n%v", a, b)
	}
}

func TestEnableFromEnv(t *testing.T) {
	defer Disable()
	t.Setenv(EnvVar, "seed=3;server.get:trunc@0.5")
	t.Setenv(SaltEnvVar, "w3")
	ok, err := EnableFromEnv()
	if err != nil || !ok {
		t.Fatalf("EnableFromEnv = %v, %v", ok, err)
	}
	p := Active()
	if p == nil || p.Seed != 3 || p.Salt != "w3" {
		t.Fatalf("Active() = %+v", p)
	}

	t.Setenv(EnvVar, "")
	Disable()
	if ok, err := EnableFromEnv(); ok || err != nil {
		t.Fatalf("empty env enabled a plan: %v, %v", ok, err)
	}

	t.Setenv(EnvVar, "bogus spec")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("bad env spec did not error")
	}
}

func TestActionErr(t *testing.T) {
	a := &Action{Point: StoreHTTPGet, Kind: Err, Hit: 4}
	err := a.Err("GET /v1/e/abc")
	if !strings.Contains(err.Error(), "injected err") || !strings.Contains(err.Error(), StoreHTTPGet) {
		t.Fatalf("Err() = %v", err)
	}
}

func TestCorruptByte(t *testing.T) {
	data := []byte("hello world")
	orig := string(data)
	if got := string(CorruptByte(data)); got == orig {
		t.Fatal("CorruptByte left data unchanged")
	}
	if len(data) != len(orig) {
		t.Fatal("CorruptByte changed length")
	}
	CorruptByte(nil) // must not panic
}
