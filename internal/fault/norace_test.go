//go:build !race

package fault

const raceEnabled = false
