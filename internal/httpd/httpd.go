// Package httpd holds the HTTP plumbing the pracsim daemons share:
// bearer-token authentication and Prometheus text-format metrics,
// including per-endpoint request counters and a coarse latency
// histogram. pracstored (the store service) and pracsimd (the
// experiment service) both mount their routes through this package, so
// the two daemons present one auth contract and one metrics dialect
// instead of drifting apart.
package httpd

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
)

// Tokens is a bearer-token set. An empty set means the server is open:
// every request passes and authenticates as the empty identity. A
// non-empty set requires `Authorization: Bearer <token>` where the
// token is a member; the matched token doubles as the caller's tenant
// identity (per-token quotas and fairness key off it).
type Tokens struct {
	set      map[string]bool
	failures atomic.Int64
}

// ParseTokens builds a token set from a comma-separated list, the CLI
// flag form. Empty elements are dropped; an empty spec is the open set.
func ParseTokens(spec string) *Tokens {
	var list []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			list = append(list, t)
		}
	}
	return NewTokens(list...)
}

// NewTokens builds a token set from explicit tokens.
func NewTokens(list ...string) *Tokens {
	t := &Tokens{set: make(map[string]bool, len(list))}
	for _, tok := range list {
		if tok != "" {
			t.set[tok] = true
		}
	}
	return t
}

// Open reports whether the set accepts unauthenticated requests.
func (t *Tokens) Open() bool { return len(t.set) == 0 }

// AuthFailures counts requests rejected for a missing or wrong token.
func (t *Tokens) AuthFailures() int64 { return t.failures.Load() }

// Match checks a request's Authorization header against the set,
// returning the authenticated token (empty on an open set).
func (t *Tokens) Match(r *http.Request) (string, bool) {
	if t.Open() {
		return "", true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || !t.set[got] {
		return "", false
	}
	return got, true
}

// tokenKey carries the authenticated bearer token through the request
// context.
type tokenKey struct{}

// Require wraps a handler with the bearer-token check: 401 on a missing
// or wrong token, and the authenticated token injected into the request
// context (see Token) on success.
func (t *Tokens) Require(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tok, ok := t.Match(r)
		if !ok {
			t.failures.Add(1)
			http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
			return
		}
		if tok != "" {
			r = r.WithContext(context.WithValue(r.Context(), tokenKey{}, tok))
		}
		h(w, r)
	})
}

// Token returns the authenticated bearer token stored by Require, or ""
// for an open server.
func Token(ctx context.Context) string {
	tok, _ := ctx.Value(tokenKey{}).(string)
	return tok
}
