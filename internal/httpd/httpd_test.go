package httpd

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTokensOpen(t *testing.T) {
	tok := ParseTokens("")
	if !tok.Open() {
		t.Fatalf("empty spec should be the open set")
	}
	h := tok.Require(func(w http.ResponseWriter, r *http.Request) {
		if got := Token(r.Context()); got != "" {
			t.Errorf("open set authenticated as %q, want empty", got)
		}
		w.WriteHeader(http.StatusNoContent)
	})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusNoContent {
		t.Fatalf("open set rejected a request: %d", rr.Code)
	}
}

func TestTokensRequire(t *testing.T) {
	tok := ParseTokens("alpha, beta,")
	if tok.Open() {
		t.Fatalf("two-token spec parsed as open")
	}
	var seen string
	h := tok.Require(func(w http.ResponseWriter, r *http.Request) {
		seen = Token(r.Context())
		w.WriteHeader(http.StatusNoContent)
	})

	cases := []struct {
		header string
		code   int
	}{
		{"", http.StatusUnauthorized},
		{"Bearer wrong", http.StatusUnauthorized},
		{"alpha", http.StatusUnauthorized}, // missing Bearer prefix
		{"Bearer alpha", http.StatusNoContent},
		{"Bearer beta", http.StatusNoContent},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/x", nil)
		if c.header != "" {
			req.Header.Set("Authorization", c.header)
		}
		h.ServeHTTP(rr, req)
		if rr.Code != c.code {
			t.Errorf("header %q: got %d, want %d", c.header, rr.Code, c.code)
		}
	}
	if seen != "beta" {
		t.Errorf("context token = %q, want beta (last accepted)", seen)
	}
	if got := tok.AuthFailures(); got != 3 {
		t.Errorf("auth failures = %d, want 3", got)
	}
}

func TestMetricsWrite(t *testing.T) {
	m := NewMetrics()
	m.Observe("get", 500*time.Microsecond)
	m.Observe("get", 50*time.Millisecond)
	m.Observe("put", 2*time.Second)

	var sb strings.Builder
	m.Write(&sb, "testd")
	out := sb.String()

	for _, want := range []string{
		`testd_requests_total{endpoint="get"} 2`,
		`testd_requests_total{endpoint="put"} 1`,
		`testd_request_duration_seconds_bucket{endpoint="get",le="0.001"} 1`,
		`testd_request_duration_seconds_bucket{endpoint="get",le="0.1"} 2`,
		`testd_request_duration_seconds_bucket{endpoint="get",le="+Inf"} 2`,
		`testd_request_duration_seconds_bucket{endpoint="put",le="1"} 0`,
		`testd_request_duration_seconds_bucket{endpoint="put",le="10"} 1`,
		`testd_request_duration_seconds_count{endpoint="put"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestInstrument(t *testing.T) {
	m := NewMetrics()
	h := m.Instrument("probe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusTeapot {
		t.Fatalf("instrumented handler lost the response: %d", rr.Code)
	}
	var sb strings.Builder
	m.Write(&sb, "testd")
	if !strings.Contains(sb.String(), `testd_requests_total{endpoint="probe"} 1`) {
		t.Fatalf("instrument did not record the request:\n%s", sb.String())
	}
}
