package httpd

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Counter writes one Prometheus text-format counter.
func Counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// Gauge writes one Prometheus text-format gauge.
func Gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// latencyBuckets are the coarse histogram bounds, in seconds. Requests
// here split into "served from memory", "one disk round trip" and
// "ran simulations"; decade buckets separate those regimes without the
// cardinality of a tuned histogram.
var latencyBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10}

// endpointStats accumulates one endpoint's request count and latency
// histogram.
type endpointStats struct {
	count   int64
	sum     float64 // seconds
	buckets [len(latencyBuckets) + 1]int64
}

// Metrics is a per-endpoint request-count and latency registry shared
// by the daemons' /metrics handlers. The zero value is not usable; use
// NewMetrics.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*endpointStats)}
}

// Observe records one request against an endpoint label.
func (m *Metrics) Observe(endpoint string, d time.Duration) {
	secs := d.Seconds()
	bucket := len(latencyBuckets)
	for i, le := range latencyBuckets {
		if secs <= le {
			bucket = i
			break
		}
	}
	m.mu.Lock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{}
		m.endpoints[endpoint] = st
	}
	st.count++
	st.sum += secs
	st.buckets[bucket]++
	m.mu.Unlock()
}

// Instrument wraps a handler so every request is counted and timed
// under the given endpoint label.
func (m *Metrics) Instrument(endpoint string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		m.Observe(endpoint, time.Since(start))
	})
}

// Write emits the registry in Prometheus text format:
// <prefix>_requests_total{endpoint="..."} per endpoint and a
// <prefix>_request_duration_seconds histogram labeled the same way.
func (m *Metrics) Write(w io.Writer, prefix string) {
	type row struct {
		name string
		st   endpointStats
	}
	m.mu.Lock()
	rows := make([]row, 0, len(m.endpoints))
	for name, st := range m.endpoints {
		rows = append(rows, row{name, *st})
	}
	m.mu.Unlock()
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	reqs := prefix + "_requests_total"
	fmt.Fprintf(w, "# HELP %s Requests per endpoint.\n# TYPE %s counter\n", reqs, reqs)
	for _, r := range rows {
		fmt.Fprintf(w, "%s{endpoint=%q} %d\n", reqs, r.name, r.st.count)
	}
	hist := prefix + "_request_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Request latency per endpoint.\n# TYPE %s histogram\n", hist, hist)
	for _, r := range rows {
		cum := int64(0)
		for i, le := range latencyBuckets {
			cum += r.st.buckets[i]
			fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d\n", hist, r.name, trimFloat(le), cum)
		}
		cum += r.st.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", hist, r.name, cum)
		fmt.Fprintf(w, "%s_sum{endpoint=%q} %g\n", hist, r.name, r.st.sum)
		fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", hist, r.name, r.st.count)
	}
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
