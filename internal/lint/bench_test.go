package lint

import "testing"

// BenchmarkPraclintRepo measures a full praclint pass over the repo —
// load, type-check and all four analyzers. CI runs it at -benchtime=1x
// and records the wall time in the bench-delta artifact, so a praclint
// slowdown shows up next to the engine and store numbers.
func BenchmarkPraclintRepo(b *testing.B) {
	for b.Loop() {
		findings, err := Run("../..", []string{"./..."}, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("repo not clean: %v", findings)
		}
	}
}
