package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// canonType renders a named type as "pkgpath.Name" (no pointer star).
func canonType(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name() // error, comparable, ...
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// canonFunc renders a function or method as "pkgpath.Func" /
// "pkgpath.Type.Method" — the form Config lists use.
func canonFunc(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if recv := canonType(sig.Recv().Type()); recv != "" {
			return recv + "." + fn.Name()
		}
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// callee resolves the static target of a call, or nil (interface
// dynamic dispatch still resolves — to the interface method object).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ioSite is one direct I/O call inside a function.
type ioSite struct {
	pos  token.Pos
	what string // e.g. "os.ReadFile", "os.File.Write"
}

// funcNode is one function in the cross-package static call graph.
// Calls made inside func literals are attributed to the enclosing
// declared function.
type funcNode struct {
	obj   *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	fires bool      // contains a FireFuncs call (set by failpoint pass)
	io    []ioSite  // direct I/O calls in the body
	calls []*types.Func
}

// index is the analysis-wide view shared by the analyzers.
type index struct {
	prog  *Program
	funcs map[*types.Func]*funcNode
	// byName resolves canonical names to declared functions (used to
	// match Config lists against loaded declarations).
	byName map[string][]*funcNode
}

// buildIndex walks every declared function once, recording its static
// callees and direct I/O sites.
func buildIndex(prog *Program) *index {
	idx := &index{
		prog:   prog,
		funcs:  map[*types.Func]*funcNode{},
		byName: map[string][]*funcNode{},
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{obj: obj, decl: fd, pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := callee(pkg.Info, call)
					if fn == nil {
						return true
					}
					node.calls = append(node.calls, fn)
					if what, ok := directIO(fn); ok {
						node.io = append(node.io, ioSite{pos: call.Pos(), what: what})
					}
					return true
				})
				idx.funcs[obj] = node
				name := canonFunc(obj)
				idx.byName[name] = append(idx.byName[name], node)
			}
		}
	}
	return idx
}

// ioPkgFuncs are package-level functions that perform I/O directly.
var ioPkgFuncs = map[string]map[string]bool{
	"os": set("Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
		"Remove", "RemoveAll", "Rename", "Stat", "Lstat", "ReadDir", "Mkdir",
		"MkdirAll", "MkdirTemp", "Truncate", "Chmod", "Chtimes", "Readlink",
		"Symlink", "Link", "Pipe", "StartProcess"),
	"net/http":      set("Get", "Post", "PostForm", "Head", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS"),
	"net":           set("Dial", "DialTimeout", "Listen", "ListenPacket"),
	"path/filepath": set("Glob", "Walk", "WalkDir"),
}

// ioMethods are methods that perform I/O directly, keyed by the
// receiver's canonical type.
var ioMethods = map[string]map[string]bool{
	"os.File": set("Read", "ReadAt", "ReadFrom", "Write", "WriteAt", "WriteString",
		"WriteTo", "Sync", "Seek", "Truncate", "Stat", "Readdir", "ReadDir",
		"Readdirnames", "Chmod"),
	"net/http.Client": set("Do", "Get", "Post", "PostForm", "Head"),
	"net/http.Server": set("ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS"),
	"os/exec.Cmd":     set("Start", "Run", "Output", "CombinedOutput"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// directIO classifies a resolved callee as a direct I/O primitive.
func directIO(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() != nil {
		recv := canonType(sig.Recv().Type())
		if ioMethods[recv][fn.Name()] {
			return recv + "." + fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	if ioPkgFuncs[fn.Pkg().Path()][fn.Name()] {
		return fn.Pkg().Path() + "." + fn.Name(), true
	}
	return "", false
}

// markFires flags every function containing a call to one of the
// configured failpoint-firing functions.
func (idx *index) markFires(fireFuncs []string) {
	fire := map[string]bool{}
	for _, f := range fireFuncs {
		fire[f] = true
	}
	for _, node := range idx.funcs {
		for _, c := range node.calls {
			if fire[canonFunc(c)] {
				node.fires = true
				break
			}
		}
	}
}

// reachableFromFires computes the functions on some call path below a
// firing function: the set a failpoint can interpose on. A firing
// function covers itself and everything it (transitively) calls.
func (idx *index) reachableFromFires() map[*types.Func]bool {
	covered := map[*types.Func]bool{}
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if covered[fn] {
			return
		}
		covered[fn] = true
		if node := idx.funcs[fn]; node != nil {
			for _, c := range node.calls {
				walk(c)
			}
		}
	}
	for _, node := range idx.funcs {
		if node.fires {
			walk(node.obj)
		}
	}
	return covered
}

// transitively computes the set of declared functions whose call closure
// satisfies pred (including functions satisfying it directly).
func (idx *index) transitively(pred func(*funcNode) bool) map[*types.Func]bool {
	// Reverse edges: callee -> callers (declared functions only).
	callers := map[*types.Func][]*types.Func{}
	result := map[*types.Func]bool{}
	var queue []*types.Func
	for obj, node := range idx.funcs {
		for _, c := range node.calls {
			callers[c] = append(callers[c], obj)
		}
		if pred(node) {
			result[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range callers[fn] {
			if !result[caller] {
				result[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return result
}
