package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Exit codes for Main.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage or load/type-check failure
)

// Main is the praclint command driver, separated from cmd/praclint so
// tests can run the full CLI in-process. args excludes the program name.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("praclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	enable := fs.String("enable", "", "comma-separated checks to run (default: all)")
	disable := fs.String("disable", "", "comma-separated checks to skip")
	dir := fs.String("C", "", "run as if started in this directory")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: praclint [flags] [packages]\n\nchecks: %s\n\nflags:\n",
			strings.Join(Checks(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	cfg := DefaultConfig()
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c] = true
	}
	var badCheck string
	split := func(s string) []string {
		var out []string
		for _, p := range strings.Split(s, ",") {
			if p = strings.TrimSpace(p); p != "" {
				if !known[p] {
					badCheck = p
				}
				out = append(out, p)
			}
		}
		return out
	}
	cfg.Enable = split(*enable)
	cfg.Disable = split(*disable)
	if badCheck != "" {
		fmt.Fprintf(stderr, "praclint: unknown check %q (known: %s)\n",
			badCheck, strings.Join(Checks(), ", "))
		return ExitError
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Run(*dir, patterns, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return ExitError
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "praclint: %v\n", err)
			return ExitError
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "praclint: %d finding(s)\n", len(findings))
		}
		return ExitFindings
	}
	return ExitClean
}
