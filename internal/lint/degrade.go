package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// degrade enforces the store's degrade-to-miss contract on both sides
// of the Backend seam:
//
//  1. Inside the store package, a Get-path implementation (methods
//     named Get/GetFrame) must not return an error that originated in a
//     decode/validation function unless a degrade action (quarantine,
//     forget) ran first — corruption must become a future miss, not a
//     sticky error the caller re-hits on every access.
//  2. Outside the store package, entries must be read through the
//     counting Store front: calling a Backend's Get directly bypasses
//     the front's miss classification, so a corrupt entry would surface
//     as an error instead of a recompute.
func degrade(prog *Program, idx *index, cfg Config) []Finding {
	decode := map[string]bool{}
	for _, d := range cfg.DecodeFuncs {
		decode[d] = true
	}
	action := set(cfg.DegradeActions...)
	backend := map[string]bool{}
	for _, b := range cfg.BackendTypes {
		backend[b] = true
	}

	var out []Finding
	for _, pkg := range prog.Pkgs {
		inStore := inScope(cfg.DegradeScope, pkg.Path)
		for _, file := range pkg.Files {
			if isTestFile(prog.Fset, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if inStore {
					if fd.Recv != nil && (fd.Name.Name == "Get" || fd.Name.Name == "GetFrame") {
						out = append(out, checkGetPath(prog, pkg, fd, decode, action)...)
					}
					continue
				}
				// Outside the store: no direct Backend reads.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := callee(pkg.Info, call)
					if fn == nil || fn.Name() != "Get" && fn.Name() != "GetFrame" {
						return true
					}
					sig, _ := fn.Type().(*types.Signature)
					if sig == nil || sig.Recv() == nil {
						return true
					}
					if recv := canonType(sig.Recv().Type()); backend[recv] {
						out = append(out, finding(prog.Fset, call.Pos(), CheckDegrade,
							"direct %s.%s bypasses the degrading Store front — read through Store.Get so corruption classifies as a miss", recv, fn.Name()))
					}
					return true
				})
			}
		}
	}
	return out
}

// checkGetPath taint-tracks decode errors through one Get-path method
// (func literals inside it included — the HTTP client's retry closures
// return through them). A return that carries a decode-originated error
// is flagged unless a degrade action ran between the decode and the
// return.
func checkGetPath(prog *Program, pkg *Package, fd *ast.FuncDecl, decode, action map[string]bool) []Finding {
	// tainted maps error objects to the position of the decode call that
	// produced them.
	tainted := map[types.Object]token.Pos{}
	var actions []token.Pos

	isDecodeCall := func(call *ast.CallExpr) bool {
		fn := callee(pkg.Info, call)
		return fn != nil && decode[canonFunc(fn)]
	}
	// taintIn reports whether expr (recursively through wrapping calls
	// like fmt.Errorf or retry.Permanent) carries a tainted value, and
	// the taint origin.
	var taintIn func(e ast.Expr) (token.Pos, bool)
	taintIn = func(e ast.Expr) (token.Pos, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; obj != nil {
				if pos, ok := tainted[obj]; ok {
					return pos, true
				}
			}
		case *ast.CallExpr:
			if isDecodeCall(e) {
				return e.Pos(), true
			}
			for _, arg := range e.Args {
				if pos, ok := taintIn(arg); ok {
					return pos, true
				}
			}
		}
		return token.NoPos, false
	}

	var out []Finding
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// err (re)assigned from a decode call taints it; any other
			// assignment clears it. Only error-typed objects carry taint —
			// the decoded payload on the success path is fine to return.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil {
					if pos, ok := taintIn(rhs); ok {
						tainted[obj] = pos
						continue
					}
				}
				delete(tainted, obj)
			}
		case *ast.CallExpr:
			if fn := callee(pkg.Info, n); fn != nil && action[fn.Name()] {
				actions = append(actions, n.Pos())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				pos, ok := taintIn(res)
				if !ok {
					continue
				}
				if degradedBetween(actions, pos, n.Pos()) {
					continue
				}
				out = append(out, finding(prog.Fset, n.Pos(), CheckDegrade,
					"%s returns a raw decode/corruption error — degrade it to a miss (quarantine/forget, then ErrNotFound) or classify it as transport", fd.Name.Name))
			}
		}
		return true
	})
	return out
}

// isErrorType reports whether t is assignable to the error interface.
func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// degradedBetween reports whether a degrade action ran between the taint
// origin and the return (source-position order, which matches the
// straight-line quarantine-then-return shape the store uses).
func degradedBetween(actions []token.Pos, taint, ret token.Pos) bool {
	for _, a := range actions {
		if a > taint && a < ret {
			return true
		}
	}
	return false
}
