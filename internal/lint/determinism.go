package lint

import (
	"go/ast"
	"go/types"
)

// bannedTimeFuncs are the wall-clock and timer entry points the sim core
// must not touch: simulated time is ticks.T, and a single stray
// time.Now() turns a bit-identical CSV into a flaky one.
var bannedTimeFuncs = set("Now", "Since", "Until", "After", "Tick",
	"AfterFunc", "NewTimer", "NewTicker", "Sleep")

// randConstructors are the math/rand entry points that take an explicit
// seed or source — the only acceptable way to draw randomness in the
// sim core. Everything else (Intn, Float64, Shuffle, ...) reads the
// process-global source, which is seeded differently every run.
var randConstructors = set("New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8")

// sinkMethods are method names that emit, encode or schedule: feeding
// them from a map range makes the output order nondeterministic.
var sinkMethods = set("Write", "WriteString", "WriteByte", "WriteRune",
	"WriteAll", "Encode", "Schedule", "AddTicker", "RescheduleTicker")

// determinism enforces the sim-core purity contract: no wall clock
// outside the telemetry allowlist, no global-source randomness, and no
// map iteration feeding output, encoding or event scheduling.
func determinism(prog *Program, idx *index, cfg Config) []Finding {
	allow := map[string]bool{}
	for _, a := range cfg.WallClockAllow {
		allow[a] = true
	}
	var out []Finding
	for _, pkg := range prog.Pkgs {
		if !inScope(cfg.DeterminismScope, pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			if isTestFile(prog.Fset, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fnObj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				allowed := fnObj != nil && allow[canonFunc(fnObj)]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						out = append(out, checkDetCall(prog, pkg, n, allowed)...)
					case *ast.RangeStmt:
						out = append(out, checkMapRange(prog, pkg, n)...)
					}
					return true
				})
			}
		}
	}
	return out
}

// checkDetCall flags banned wall-clock and global-randomness calls.
func checkDetCall(prog *Program, pkg *Package, call *ast.CallExpr, wallAllowed bool) []Finding {
	fn := callee(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return nil // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[fn.Name()] && !wallAllowed {
			return []Finding{finding(prog.Fset, call.Pos(), CheckDeterminism,
				"wall-clock call time.%s in the sim core; simulated time is ticks.T — route telemetry through the wall-clock allowlist", fn.Name())}
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return []Finding{finding(prog.Fset, call.Pos(), CheckDeterminism,
				"global-source randomness rand.%s in the sim core; draw from a seeded rand.New(rand.NewSource(seed)) instead", fn.Name())}
		}
	}
	return nil
}

// checkMapRange flags `range` over a map whose body feeds a
// nondeterministically-ordered stream into output, encoding or event
// scheduling. Sorting the keys first (and ranging the sorted slice)
// clears the finding.
func checkMapRange(prog *Program, pkg *Package, rng *ast.RangeStmt) []Finding {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var out []Finding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what, ok := detSink(pkg.Info, call); ok {
			out = append(out, finding(prog.Fset, rng.Pos(), CheckDeterminism,
				"map iteration feeds %s — map order is nondeterministic; iterate a sorted key slice instead", what))
			return false // one finding per map range is enough
		}
		return true
	})
	return out
}

// detSink classifies a call as an ordered output/encoding/scheduling
// sink.
func detSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := callee(info, call)
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sinkMethods[fn.Name()] {
			return canonType(sig.Recv().Type()) + "." + fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		// Every formatter except Scan*: printing, string building and
		// error construction all freeze an ordering.
		switch name := fn.Name(); {
		case len(name) >= 5 && name[:5] == "Print",
			len(name) >= 6 && (name[:6] == "Fprint" || name[:6] == "Sprint"),
			name == "Errorf", name == "Appendf", name == "Append", name == "Appendln":
			return "fmt." + fn.Name(), true
		}
	case "encoding/json":
		if fn.Name() == "Marshal" || fn.Name() == "MarshalIndent" {
			return "json." + fn.Name(), true
		}
	}
	return "", false
}
