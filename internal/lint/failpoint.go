package lint

import (
	"go/ast"
	"go/constant"
	"sort"
	"strings"
)

// failpoint enforces the chaos-coverage contract:
//
//  1. Registry: a constant point name passed to fault.Fire, and every
//     point named in a constant schedule passed to fault.Parse, must
//     exist in the fault package's registry — a typo'd name would draw
//     nothing and quietly turn a chaos run green.
//  2. Coverage: every direct I/O call in the pipeline packages must be
//     reachable through a function that fires a failpoint, so a fault
//     schedule can actually interpose on that I/O.
func failpoint(prog *Program, idx *index, cfg Config) []Finding {
	var out []Finding
	registry, regFindings := extractRegistry(prog, cfg)
	out = append(out, regFindings...)

	idx.markFires(cfg.FireFuncs)

	// Registry cross-check over every analyzed package.
	if registry != nil {
		fire := map[string]bool{}
		for _, f := range cfg.FireFuncs {
			fire[f] = true
		}
		sched := map[string]bool{}
		for _, f := range cfg.ScheduleFuncs {
			sched[f] = true
		}
		points := sortedKeys(registry)
		for _, pkg := range prog.Pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						return true
					}
					fn := callee(pkg.Info, call)
					if fn == nil {
						return true
					}
					name := canonFunc(fn)
					arg, lit := call.Args[0], ""
					if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						lit = constant.StringVal(tv.Value)
					} else {
						return true // dynamic argument; runtime Parse validates
					}
					switch {
					case fire[name]:
						if !registry[lit] {
							out = append(out, finding(prog.Fset, arg.Pos(), CheckFailpoint,
								"failpoint %q is not in the %s registry (known: %s) — this Fire can never match a schedule", lit, cfg.FaultPkg, points))
						}
					case sched[name]:
						for _, p := range schedulePoints(lit) {
							if !registry[p] {
								out = append(out, finding(prog.Fset, arg.Pos(), CheckFailpoint,
									"schedule names failpoint %q, not in the %s registry (known: %s) — the rule would silently never fire", p, cfg.FaultPkg, points))
							}
						}
					}
					return true
				})
			}
		}
	}

	// Coverage: direct I/O in pipeline packages must sit below a firing
	// function on some call path.
	covered := idx.reachableFromFires()
	for _, pkg := range prog.Pkgs {
		if !inScope(cfg.FailpointScope, pkg.Path) {
			continue
		}
		var nodes []*funcNode
		for _, node := range idx.funcs {
			if node.pkg == pkg && len(node.io) > 0 && !covered[node.obj] {
				nodes = append(nodes, node)
			}
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].decl.Pos() < nodes[j].decl.Pos() })
		for _, node := range nodes {
			for _, io := range node.io {
				out = append(out, finding(prog.Fset, io.pos, CheckFailpoint,
					"direct I/O (%s) in %s is not reachable through any function that fires a fault failpoint — chaos schedules cannot interpose; wire a failpoint on this path or annotate why it is exempt", io.what, node.obj.Name()))
			}
		}
	}
	return out
}

// extractRegistry reads the known-point set out of the fault package's
// registry map literal (RegistryVar), resolving each key to its constant
// string value. A missing registry is a meta finding: without it the
// cross-check would pass everything vacuously.
func extractRegistry(prog *Program, cfg Config) (map[string]bool, []Finding) {
	if cfg.FaultPkg == "" {
		return nil, nil
	}
	var faultPkg *Package
	for _, pkg := range prog.Pkgs {
		if pkg.Path == cfg.FaultPkg {
			faultPkg = pkg
			break
		}
	}
	if faultPkg == nil {
		return nil, []Finding{{Check: MetaCheck, File: cfg.FaultPkg,
			Message: "fault registry package was not loaded; failpoint names cannot be cross-checked"}}
	}
	registry := map[string]bool{}
	for _, file := range faultPkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			spec, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range spec.Names {
				if name.Name != cfg.RegistryVar || i >= len(spec.Values) {
					continue
				}
				lit, ok := spec.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if tv, ok := faultPkg.Info.Types[kv.Key]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						registry[constant.StringVal(tv.Value)] = true
					}
				}
			}
			return true
		})
	}
	if len(registry) == 0 {
		return nil, []Finding{{Check: MetaCheck, File: cfg.FaultPkg,
			Message: "no registry map " + cfg.RegistryVar + " found in the fault package; failpoint names cannot be cross-checked"}}
	}
	return registry, nil
}

// schedulePoints extracts the point names from a fault-schedule literal
// (`seed=N;point:kind[=dur][@prob][xN];...`), mirroring fault.Parse's
// grammar closely enough to name-check without importing it.
func schedulePoints(spec string) []string {
	var points []string
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" || strings.HasPrefix(part, "seed=") {
			continue
		}
		if point, _, ok := strings.Cut(part, ":"); ok {
			points = append(points, point)
		}
	}
	return points
}

func sortedKeys(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
