// Package lint is praclint: a project-invariant static-analysis suite
// that mechanically enforces the contracts every PR in this repo stakes
// its correctness on, turning reviewer folklore into CI-enforced law:
//
//   - determinism — the simulation core (sim, memctrl, dram, cache,
//     mitigation, attack, exp/pool) must be a pure function of its
//     seeds: no wall-clock reads outside the telemetry allowlist, no
//     math/rand global-source draws, and no map iteration feeding
//     output, encoding or event scheduling (map order would make CSVs
//     flip run to run).
//   - failpoint — every direct os/file/network I/O call in the
//     store/shard/journal/dispatch pipeline must be reachable through a
//     function that fires a fault failpoint (so chaos schedules can
//     reach it), and every failpoint name used in code or in a schedule
//     literal must exist in internal/fault's registry (a typo'd point
//     would silently never fire).
//   - degrade — store.Backend Get-path implementations may only surface
//     ErrNotFound or transport errors the counting front classifies;
//     a raw decode/corruption error must not escape without the degrade
//     action (quarantine/forget) that turns the bad entry into a miss.
//     Code outside the store package must read entries through the
//     degrading Store front, never a Backend directly.
//   - locks — no I/O and no fault.Fire while holding a sync.Mutex or
//     RWMutex acquired in the same function (the eviction/pinning-race
//     shape: an injected fault or a slow disk inside a critical section
//     turns a cheap lock into a stall or a deadlock).
//
// Intentional exceptions are annotated in source:
//
//	//praclint:allow <check> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; a malformed or unknown-check directive is itself a finding
// (check "praclint"), so suppressions stay auditable.
//
// The suite is stdlib-only (go/ast, go/parser, go/types); packages are
// loaded and type-checked via `go list -deps -export` and the gc
// importer, so praclint adds zero module dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Check names. MetaCheck is praclint's own hygiene (directive syntax,
// configuration errors) and cannot be disabled or suppressed.
const (
	CheckDeterminism = "determinism"
	CheckFailpoint   = "failpoint"
	CheckDegrade     = "degrade"
	CheckLocks       = "locks"
	MetaCheck        = "praclint"
)

// Checks enumerates the toggleable analyzers, in reporting order.
func Checks() []string {
	return []string{CheckDeterminism, CheckFailpoint, CheckDegrade, CheckLocks}
}

// Finding is one rule violation at one position.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Config scopes and parameterizes the analyzers. Scopes are import-path
// prefixes: a package is in scope when its path equals an entry or lives
// under it ("p" covers "p/sub"). Function names are canonical
// "pkgpath.Func" or "pkgpath.Type.Method" (no pointer stars).
type Config struct {
	// Enable/Disable toggle individual checks; empty Enable means all.
	Enable, Disable []string

	// DeterminismScope is the sim-core package set.
	DeterminismScope []string
	// WallClockAllow lists the telemetry functions allowed to read the
	// wall clock (canonical names).
	WallClockAllow []string

	// FailpointScope is the I/O-pipeline package set for the
	// failpoint-coverage rule.
	FailpointScope []string
	// FaultPkg is the import path of the failpoint registry package; it
	// is loaded (and analyzed) even when the patterns do not match it.
	FaultPkg string
	// RegistryVar names the map[string]bool of known points in FaultPkg.
	RegistryVar string
	// FireFuncs are the failpoint-firing functions (canonical names).
	FireFuncs []string
	// ScheduleFuncs take a schedule spec string as their first argument.
	ScheduleFuncs []string

	// DegradeScope is the store package set; code outside it must not
	// call Backend Get methods directly.
	DegradeScope []string
	// BackendTypes are the named Backend implementations plus the
	// Backend interface itself (canonical "pkgpath.Type").
	BackendTypes []string
	// DecodeFuncs are the decode/validation functions whose errors mean
	// "this copy is corrupt" (canonical names).
	DecodeFuncs []string
	// DegradeActions are method/function names that realize the degrade
	// (quarantine, forget): a tainted error may be returned only after
	// one of them ran.
	DegradeActions []string

	// LocksScope is the lock-hygiene package set; empty means every
	// analyzed package.
	LocksScope []string
}

// DefaultConfig is the project configuration `cmd/praclint` runs with.
func DefaultConfig() Config {
	return Config{
		DeterminismScope: []string{
			"pracsim/internal/sim",
			"pracsim/internal/memctrl",
			"pracsim/internal/dram",
			"pracsim/internal/cache",
			"pracsim/internal/mitigation",
			"pracsim/internal/attack",
			"pracsim/internal/exp/pool",
		},
		WallClockAllow: []string{
			// The one telemetry boundary: System.Run measures its own wall
			// time into RunResult.Telemetry. Figures never depend on it.
			"pracsim/internal/sim.System.Run",
		},
		FailpointScope: []string{
			"pracsim/internal/exp/store",
			"pracsim/internal/exp/shard",
			"pracsim/internal/exp/journal",
			"pracsim/internal/exp/dispatch",
			"pracsim/internal/exp/service",
		},
		FaultPkg:      "pracsim/internal/fault",
		RegistryVar:   "knownPoints",
		FireFuncs:     []string{"pracsim/internal/fault.Fire"},
		ScheduleFuncs: []string{"pracsim/internal/fault.Parse"},
		DegradeScope:  []string{"pracsim/internal/exp/store"},
		BackendTypes: []string{
			"pracsim/internal/exp/store.Backend",
			"pracsim/internal/exp/store.Disk",
			"pracsim/internal/exp/store.HTTP",
			"pracsim/internal/exp/store.Tiered",
		},
		DecodeFuncs: []string{
			"pracsim/internal/exp/store.DecodeFrame",
			"pracsim/internal/exp/store.DecodeFrameAny",
			"pracsim/internal/exp/store.parseFrameHeader",
			"pracsim/internal/sim.DecodeResult",
			"encoding/json.Unmarshal",
		},
		DegradeActions: []string{"quarantine", "forget", "lcForget", "injectEvict"},
	}
}

// enabled reports whether a check runs under this config.
func (c Config) enabled(check string) bool {
	for _, d := range c.Disable {
		if d == check {
			return false
		}
	}
	if len(c.Enable) == 0 {
		return true
	}
	for _, e := range c.Enable {
		if e == check {
			return true
		}
	}
	return false
}

// inScope reports whether pkgPath is covered by the scope prefix list.
func inScope(scope []string, pkgPath string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// Run loads the packages matched by patterns (resolved relative to dir,
// "" = cwd) and runs every enabled analyzer, returning the surviving
// (unsuppressed) findings sorted by position. Findings of the meta check
// (malformed suppression directives, registry extraction failures) are
// always included.
func Run(dir string, patterns []string, cfg Config) ([]Finding, error) {
	prog, err := Load(dir, patterns, cfg.FaultPkg)
	if err != nil {
		return nil, err
	}
	return Analyze(prog, cfg), nil
}

// Analyze runs the enabled analyzers over an already-loaded program.
func Analyze(prog *Program, cfg Config) []Finding {
	idx := buildIndex(prog)
	var raw []Finding
	if cfg.enabled(CheckDeterminism) {
		raw = append(raw, determinism(prog, idx, cfg)...)
	}
	if cfg.enabled(CheckFailpoint) {
		raw = append(raw, failpoint(prog, idx, cfg)...)
	}
	if cfg.enabled(CheckDegrade) {
		raw = append(raw, degrade(prog, idx, cfg)...)
	}
	if cfg.enabled(CheckLocks) {
		raw = append(raw, locks(prog, idx, cfg)...)
	}
	findings := applySuppressions(prog, raw)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return findings
}

// finding builds a Finding at a token position.
func finding(fset *token.FileSet, pos token.Pos, check, format string, args ...any) Finding {
	p := fset.Position(pos)
	return Finding{
		Check:   check,
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// directiveRe matches a suppression comment. The check name and a
// non-empty reason are both mandatory.
var directiveRe = regexp.MustCompile(`^//praclint:allow\s+([A-Za-z0-9_-]+)\s+(\S.*)$`)

// allowDirective is one parsed //praclint:allow comment.
type allowDirective struct {
	check string
	line  int // line the comment sits on
}

// applySuppressions drops findings covered by a //praclint:allow
// directive for their check on the same line or the line directly above,
// and adds meta findings for malformed directives. Meta findings are
// never suppressible: an unauditable suppression is worse than noise.
func applySuppressions(prog *Program, raw []Finding) []Finding {
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c] = true
	}
	// file -> line -> set of allowed checks.
	allowed := map[string]map[int]map[string]bool{}
	var out []Finding
	addAllow := func(file string, line int, check string) {
		if allowed[file] == nil {
			allowed[file] = map[int]map[string]bool{}
		}
		if allowed[file][line] == nil {
			allowed[file][line] = map[string]bool{}
		}
		allowed[file][line][check] = true
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					if !strings.HasPrefix(text, "//praclint:") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					m := directiveRe.FindStringSubmatch(text)
					if m == nil {
						out = append(out, Finding{
							Check: MetaCheck, File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("malformed directive %q: want //praclint:allow <check> <reason>", text),
						})
						continue
					}
					if !known[m[1]] {
						out = append(out, Finding{
							Check: MetaCheck, File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("directive allows unknown check %q (known: %s)", m[1], strings.Join(Checks(), ", ")),
						})
						continue
					}
					// The directive covers its own line and the line below,
					// so it works both trailing and as a lead-in comment.
					addAllow(pos.Filename, pos.Line, m[1])
					addAllow(pos.Filename, pos.Line+1, m[1])
				}
			}
		}
	}
	for _, f := range raw {
		if f.Check != MetaCheck && allowed[f.File][f.Line][f.Check] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// isTestFile reports whether the AST file is a _test.go file. The loader
// only feeds non-test files, but fixtures guard against drift.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
