package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixPrefix is the import-path prefix of the fixture packages.
const fixPrefix = "pracsim/internal/lint/testdata/src/"

// expect is one `// want <check> "<regexp>"` annotation in a fixture.
type expect struct {
	file    string // base name
	line    int
	check   string
	pattern *regexp.Regexp
}

var wantPairRe = regexp.MustCompile(`([A-Za-z][\w-]*)\s+"([^"]*)"`)

// readWants collects the want annotations from every .go file under the
// given fixture dirs. A line may carry several `check "regexp"` pairs
// after one `// want` marker.
func readWants(t *testing.T, dirs ...string) []expect {
	t.Helper()
	var wants []expect
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range entries {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				idx := strings.Index(line, "// want ")
				if idx < 0 {
					continue
				}
				pairs := wantPairRe.FindAllStringSubmatch(line[idx+len("// want "):], -1)
				if len(pairs) == 0 {
					t.Fatalf("%s:%d: unparsable want annotation: %s", de.Name(), i+1, line)
				}
				for _, p := range pairs {
					re, err := regexp.Compile(p[2])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", de.Name(), i+1, p[2], err)
					}
					wants = append(wants, expect{file: de.Name(), line: i + 1, check: p[1], pattern: re})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over the fixture patterns and asserts
// the findings match the want annotations exactly — every want matched,
// no unexpected finding.
func checkFixture(t *testing.T, cfg Config, patterns ...string) {
	t.Helper()
	var dirs []string
	for _, p := range patterns {
		dirs = append(dirs, filepath.FromSlash(p))
	}
	wants := readWants(t, dirs...)
	findings, err := Run("", patterns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || filepath.Base(f.File) != w.file || f.Line != w.line ||
				f.Check != w.check || !w.pattern.MatchString(f.Message) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing finding: %s:%d [%s] matching %q", w.file, w.line, w.check, w.pattern)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, Config{
		DeterminismScope: []string{fixPrefix + "det"},
		WallClockAllow:   []string{fixPrefix + "det.Allowed"},
	}, "./testdata/src/det")
}

func TestFailpointRegistryFixture(t *testing.T) {
	cfg := DefaultConfig()
	checkFixture(t, cfg, "./testdata/src/fpreg")
}

func TestFailpointCoverageFixture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailpointScope = []string{fixPrefix + "fpio"}
	checkFixture(t, cfg, "./testdata/src/fpio")
}

func TestDegradeFixture(t *testing.T) {
	checkFixture(t, Config{
		DegradeScope:   []string{fixPrefix + "degrade"},
		BackendTypes:   []string{fixPrefix + "degrade.Backend"},
		DecodeFuncs:    []string{fixPrefix + "degrade.decode"},
		DegradeActions: []string{"quarantine"},
	}, "./testdata/src/degrade", "./testdata/src/degradeclient")
}

func TestLocksFixture(t *testing.T) {
	checkFixture(t, Config{
		FireFuncs: []string{"pracsim/internal/fault.Fire"},
	}, "./testdata/src/locks")
}

func TestAllowFixture(t *testing.T) {
	checkFixture(t, Config{}, "./testdata/src/allowfix")
}

// TestSeededFixture proves every analyzer fires: the seeded fixture
// carries one violation per check, and each must surface.
func TestSeededFixture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeterminismScope = []string{fixPrefix + "seeded"}
	cfg.FailpointScope = []string{fixPrefix + "seeded"}
	cfg.DegradeScope = []string{fixPrefix + "seeded"}
	cfg.DecodeFuncs = []string{fixPrefix + "seeded.decode"}
	checkFixture(t, cfg, "./testdata/src/seeded")

	findings, err := Run("", []string{"./testdata/src/seeded"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byCheck := map[string]int{}
	for _, f := range findings {
		byCheck[f.Check]++
	}
	for _, check := range Checks() {
		if byCheck[check] == 0 {
			t.Errorf("analyzer %q produced no finding on the seeded fixture; got %v", check, byCheck)
		}
	}
}

// TestCLISeeded runs the full CLI in-process on the seeded fixture: it
// must exit 1 and, with -json, emit findings whose shape round-trips.
func TestCLISeeded(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-json", "./testdata/src/seeded"}, &stdout, &stderr)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, ExitFindings, stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json emitted an empty findings array for a dirty tree")
	}
	seen := map[string]bool{}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Check == "" || f.Message == "" {
			t.Errorf("finding with missing fields: %+v", f)
		}
		seen[f.Check] = true
	}
	// Under the project config only the scope-independent checks apply to
	// the fixture: the registry cross-check and lock hygiene.
	for _, check := range []string{CheckFailpoint, CheckLocks} {
		if !seen[check] {
			t.Errorf("expected a %s finding from the project config, got %v", check, seen)
		}
	}
}

func TestCLIDisable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-disable", "failpoint,locks", "./testdata/src/seeded"}, &stdout, &stderr)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, stdout.String(), stderr.String())
	}
}

func TestCLIEnable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Only the failpoint registry check applies under -enable failpoint.
	if code := Main([]string{"-enable", "failpoint", "./testdata/src/seeded"}, &stdout, &stderr); code != ExitFindings {
		t.Fatalf("-enable failpoint: exit = %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(stdout.String(), "[failpoint]") || strings.Contains(stdout.String(), "[locks]") {
		t.Fatalf("-enable failpoint emitted the wrong checks:\n%s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	// determinism's project scope does not cover the fixture: clean.
	if code := Main([]string{"-enable", "determinism", "./testdata/src/seeded"}, &stdout, &stderr); code != ExitClean {
		t.Fatalf("-enable determinism: exit = %d, want %d\n%s", code, ExitClean, stdout.String())
	}
}

func TestCLIUnknownCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-enable", "speling", "./testdata/src/seeded"}, &stdout, &stderr); code != ExitError {
		t.Fatalf("exit = %d, want %d", code, ExitError)
	}
	if !strings.Contains(stderr.String(), "unknown check") {
		t.Fatalf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestCLIBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"./no/such/dir/..."}, &stdout, &stderr); code != ExitError {
		t.Fatalf("exit = %d, want %d", code, ExitError)
	}
}

// TestSuppressionJSONShape pins the JSON field names the CI artifact and
// editor integrations key on.
func TestSuppressionJSONShape(t *testing.T) {
	f := Finding{Check: "locks", File: "x.go", Line: 3, Col: 7, Message: "m"}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"check":"locks","file":"x.go","line":3,"col":7,"message":"m"}`
	if string(data) != want {
		t.Fatalf("Finding JSON = %s, want %s", data, want)
	}
}

// TestRepoIsClean is the acceptance gate: the project config over the
// whole repo must produce zero findings. Skipped in -short runs — it
// type-checks every package.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint is not short")
	}
	findings, err := Run("../..", []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo finding: %s", f)
	}
}
