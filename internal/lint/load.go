package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded target set sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// listedPkg is the subset of `go list -json` praclint needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load resolves patterns with `go list -deps -export` (so every
// dependency carries compiled export data), parses the matched packages'
// non-test files and type-checks them against that export data — a full
// go/types load with zero dependencies beyond the standard library and
// the go tool itself. extra packages (the fault registry) are loaded
// even when the patterns don't match them.
func Load(dir string, patterns []string, extra ...string) (*Program, error) {
	args := []string{"list", "-deps", "-export",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles"}
	args = append(args, patterns...)
	for _, e := range extra {
		if e != "" {
			args = append(args, e)
		}
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("praclint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}

	exports := map[string]string{}
	var targets []listedPkg
	seen := map[string]bool{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("praclint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && !seen[p.ImportPath] {
			seen[p.ImportPath] = true
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (compile error?)", path)
		}
		return os.Open(f)
	})

	prog := &Program{Fset: fset}
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, g := range t.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(t.Dir, g), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("praclint: %v", err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("praclint: type-checking %s: %v", t.ImportPath, err)
		}
		prog.Pkgs = append(prog.Pkgs, &Package{
			Path: t.ImportPath, Dir: t.Dir, Files: files, Types: tpkg, Info: info,
		})
	}
	if len(prog.Pkgs) == 0 {
		return nil, fmt.Errorf("praclint: no packages matched %s", strings.Join(patterns, " "))
	}
	return prog, nil
}
