package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// locks enforces critical-section hygiene: no direct I/O, no call into a
// function that (transitively) performs I/O, and no failpoint firing
// while holding a sync.Mutex/RWMutex acquired in the same function. An
// injected fault or a slow disk inside a critical section is the PR-8
// eviction/pinning race shape: a cheap lock becomes a stall every other
// goroutine serializes behind.
//
// The analysis is source-position linear per function: a Lock on a mutex
// expression holds until an Unlock of the same expression; a deferred
// Unlock holds it to the end of the function. Branch-heavy shapes the
// linear model misreads are the job of a //praclint:allow annotation.
func locks(prog *Program, idx *index, cfg Config) []Finding {
	idx.markFires(cfg.FireFuncs) // idempotent; failpoint may be disabled
	fireSet := set(cfg.FireFuncs...)
	doesIO := idx.transitively(func(n *funcNode) bool { return len(n.io) > 0 })
	doesFire := idx.transitively(func(n *funcNode) bool { return n.fires })

	var nodes []*funcNode
	for _, node := range idx.funcs {
		if len(cfg.LocksScope) > 0 && !inScope(cfg.LocksScope, node.pkg.Path) {
			continue
		}
		if isTestFile(prog.Fset, fileOf(node.pkg, node.decl.Pos())) {
			continue
		}
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].decl.Pos() < nodes[j].decl.Pos() })

	var out []Finding
	for _, node := range nodes {
		out = append(out, checkLockBody(prog, node, fireSet, doesIO, doesFire)...)
	}
	return out
}

// fileOf returns the *ast.File of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return pkg.Files[0]
}

// lockEvent is one ordered event inside a function body.
type lockEvent struct {
	pos   token.Pos
	kind  int    // 0 lock, 1 unlock, 2 deferred unlock, 3 hazard
	mutex string // lock/unlock: rendered mutex expression
	what  string // hazard: description
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evHazard
)

// checkLockBody walks one function in source order and reports hazards
// that occur while any same-function mutex is held.
func checkLockBody(prog *Program, node *funcNode, fireSet map[string]bool, doesIO, doesFire map[*types.Func]bool) []Finding {
	info := node.pkg.Info
	var events []lockEvent
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// An unlock anywhere in a deferred call (including inside a
			// deferred closure) runs at return: the lock stays held.
			ast.Inspect(n.Call, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if mu, kind, ok := mutexOp(info, call); ok && (kind == "Unlock" || kind == "RUnlock") {
					events = append(events, lockEvent{pos: n.Pos(), kind: evDeferUnlock, mutex: mu})
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if mu, kind, ok := mutexOp(info, n); ok {
				switch kind {
				case "Lock", "RLock":
					events = append(events, lockEvent{pos: n.Pos(), kind: evLock, mutex: mu})
				case "Unlock", "RUnlock":
					events = append(events, lockEvent{pos: n.Pos(), kind: evUnlock, mutex: mu})
				}
				return true
			}
			if fn := callee(info, n); fn != nil {
				if what, ok := directIO(fn); ok {
					events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "direct I/O (" + what + ")"})
				} else if node.obj != fn { // ignore self-recursion
					switch {
					case fireSet[canonFunc(fn)]:
						// The firing function itself (fault.Fire) never marks
						// itself in doesFire, so match it by name.
						events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "failpoint firing (" + canonFunc(fn) + ")"})
					case doesFire[fn]:
						events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "call to " + fn.Name() + ", which fires a failpoint"})
					case doesIO[fn]:
						events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "call to " + fn.Name() + ", which performs I/O"})
					}
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]int{}
	var heldOrder []string // lock order, so reports name a deterministic mutex
	deferred := false
	holding := func() (string, bool) {
		for _, mu := range heldOrder {
			if held[mu] > 0 {
				return mu, true
			}
		}
		return "", false
	}
	var out []Finding
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			if held[ev.mutex] == 0 {
				heldOrder = append(heldOrder, ev.mutex)
			}
			held[ev.mutex]++
		case evUnlock:
			if held[ev.mutex] > 0 {
				held[ev.mutex]--
			}
		case evDeferUnlock:
			deferred = true
		case evHazard:
			if mu, ok := holding(); ok {
				out = append(out, finding(prog.Fset, ev.pos, CheckLocks,
					"%s while holding %s (locked in %s) — release the lock before I/O or failpoints", ev.what, mu, node.obj.Name()))
			} else if deferred {
				out = append(out, finding(prog.Fset, ev.pos, CheckLocks,
					"%s under a deferred unlock in %s — the lock is held until return; release it before I/O or failpoints", ev.what, node.obj.Name()))
			}
		}
	}
	return out
}

// mutexOp matches a call of the form expr.Lock() / expr.Unlock() (and
// RLock/RUnlock) where the method belongs to sync.Mutex or sync.RWMutex
// (including promoted methods of embedded mutexes). It reports the
// rendered mutex expression so locks and unlocks pair up textually.
func mutexOp(info *types.Info, call *ast.CallExpr) (mutex, kind string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	switch canonType(sig.Recv().Type()) {
	case "sync.Mutex", "sync.RWMutex":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}
