// Package allowfix is a praclint fixture: suppression directives.
package allowfix

import (
	"os"
	"sync"
)

// T guards a counter.
type T struct {
	mu sync.Mutex
	n  int
}

// Suppressed is covered by a lead-in directive: no finding.
func (t *T) Suppressed(path string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n--
	//praclint:allow locks teardown-only helper, contention is impossible here
	return os.Remove(path)
}

// Trailing is covered by a same-line directive: no finding.
func (t *T) Trailing(path string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return os.Remove(path) //praclint:allow locks teardown-only helper, contention is impossible here
}

// WrongCheck's directive names a different check, so it suppresses
// nothing.
func (t *T) WrongCheck(path string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	//praclint:allow determinism wrong check name, does not cover locks
	return os.Remove(path) // want locks "direct I/O \(os.Remove\) while holding t.mu"
}

// TooFar's directive is two lines above the violation: out of range.
func (t *T) TooFar(path string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	//praclint:allow locks directive out of range, two lines above the call
	t.n--
	return os.Remove(path) // want locks "direct I/O \(os.Remove\) while holding t.mu"
}

//praclint:allow // want praclint "malformed directive"

//praclint:allow bogus-check the check name here does not exist // want praclint "unknown check .bogus-check."
