// Package degrade is a praclint fixture: degrade-to-miss violations.
package degrade

import "errors"

// ErrNotFound is the miss sentinel the front classifies.
var ErrNotFound = errors.New("not found")

// decode is the corruption detector; its errors mean "this copy is bad".
func decode(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("corrupt frame")
	}
	return b, nil
}

// Backend leaks raw decode errors from its Get path.
type Backend struct{}

func (s *Backend) Get(key string) ([]byte, error) {
	payload, err := decode([]byte(key))
	if err != nil {
		return nil, err // want degrade "Get returns a raw decode/corruption error"
	}
	return payload, nil
}

// Quarantined degrades before surfacing the raw error: clean.
type Quarantined struct{}

func (q *Quarantined) quarantine(key string) {}

func (q *Quarantined) Get(key string) ([]byte, error) {
	payload, err := decode([]byte(key))
	if err != nil {
		q.quarantine(key)
		return nil, err
	}
	return payload, nil
}

// Missed converts corruption to the miss sentinel: clean.
type Missed struct{}

func (m *Missed) Get(key string) ([]byte, error) {
	payload, err := decode([]byte(key))
	if err != nil {
		return nil, ErrNotFound
	}
	return payload, nil
}
