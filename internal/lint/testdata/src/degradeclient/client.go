// Package degradeclient is a praclint fixture: Backend bypass outside
// the store scope.
package degradeclient

import degrade "pracsim/internal/lint/testdata/src/degrade"

// Read calls a Backend's Get directly instead of going through the
// counting front.
func Read(b *degrade.Backend, key string) ([]byte, error) {
	return b.Get(key) // want degrade "bypasses the degrading Store front"
}
