// Package det is a praclint fixture: determinism violations.
package det

import (
	"fmt"
	"math/rand"
	"time"
)

// Emit renders a map in iteration order — the CSV-flips-run-to-run bug.
func Emit(counts map[string]int) string {
	out := ""
	for k, v := range counts { // want determinism "map iteration feeds fmt.Sprintf"
		out += fmt.Sprintf("%s=%d\n", k, v)
	}
	return out
}

// EmitSorted is the fix: iterate a sorted key slice.
func EmitSorted(counts map[string]int, keys []string) string {
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d\n", k, counts[k])
	}
	return out
}

// Stamp reads the wall clock in the sim core.
func Stamp() int64 {
	return time.Now().UnixNano() // want determinism "wall-clock call time.Now"
}

// Draw reads the process-global randomness source.
func Draw() int {
	return rand.Intn(6) // want determinism "global-source randomness rand.Intn"
}

// Seeded draws from an explicit seed: methods on a seeded source are fine.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Allowed is on the wall-clock allowlist in the test config.
func Allowed() time.Time {
	return time.Now()
}
