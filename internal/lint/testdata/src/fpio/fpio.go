// Package fpio is a praclint fixture: failpoint coverage violations.
package fpio

import (
	"os"

	"pracsim/internal/fault"
)

// ReadCovered fires a failpoint before delegating: read below is covered.
func ReadCovered(path string) ([]byte, error) {
	if a := fault.Fire(fault.StoreDiskGet); a != nil {
		return nil, a.Err("read " + path)
	}
	return read(path)
}

// read is reachable from ReadCovered, a firing function: clean.
func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Orphan does I/O no failpoint can interpose on.
func Orphan(path string) error {
	return os.Remove(path) // want failpoint "direct I/O \(os.Remove\) in Orphan is not reachable"
}
