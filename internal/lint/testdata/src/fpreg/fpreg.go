// Package fpreg is a praclint fixture: failpoint registry violations.
package fpreg

import "pracsim/internal/fault"

// FireKnown names a registered point: clean.
func FireKnown() bool {
	return fault.Fire(fault.StoreDiskGet) != nil
}

// FireUnknown names a point the registry does not know.
func FireUnknown() bool {
	return fault.Fire("store.disk.bogus") != nil // want failpoint "is not in the pracsim/internal/fault registry"
}

// ParseBad schedules a nonexistent point.
func ParseBad() {
	fault.Parse("seed=1;no.such.point:err") // want failpoint "schedule names failpoint .no.such.point."
}

// ParseGood schedules a registered point: clean.
func ParseGood() {
	fault.Parse("seed=1;" + "store.disk.get:err@0.5")
}
