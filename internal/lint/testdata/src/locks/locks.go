// Package locks is a praclint fixture: lock-hygiene violations.
package locks

import (
	"os"
	"sync"

	"pracsim/internal/fault"
)

// Cache holds a mutex over an index, not over I/O.
type Cache struct {
	mu sync.Mutex
	n  int
}

// Bad removes a file while holding the mutex.
func (c *Cache) Bad(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	return os.Remove(path) // want locks "direct I/O \(os.Remove\) while holding c.mu"
}

// Good releases the mutex before the I/O.
func (c *Cache) Good(path string) error {
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
	return os.Remove(path)
}

// ViaHelper reaches I/O through a callee while holding the mutex.
func (c *Cache) ViaHelper(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spill(path) // want locks "call to spill, which performs I/O"
}

func (c *Cache) spill(path string) error {
	return os.WriteFile(path, nil, 0o644)
}

// FireHeld fires a failpoint inside the critical section.
func (c *Cache) FireHeld() {
	c.mu.Lock()
	fault.Fire(fault.StoreDiskGet) // want locks "failpoint firing \(pracsim/internal/fault.Fire\)"
	c.mu.Unlock()
}

// DeferredClosure keeps the lock held through a deferred closure unlock.
func (c *Cache) DeferredClosure(path string) error {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	return os.Remove(path) // want locks "direct I/O \(os.Remove\) while holding c.mu"
}
