// Package seeded is the praclint self-test fixture: exactly one seeded
// violation per analyzer, so the suite can prove each check fires and
// that the CLI exits nonzero on a dirty tree.
package seeded

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"pracsim/internal/fault"
)

// Stamp: determinism violation (wall clock in the sim core).
func Stamp() int64 {
	return time.Now().UnixNano() // want determinism "wall-clock call time.Now"
}

// Render: determinism violation (map range feeding output).
func Render(m map[string]int) {
	for k, v := range m { // want determinism "map iteration feeds fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// FireTypo: failpoint violation (unregistered point name). This one is
// scope-independent, so plain `praclint ./testdata/src/seeded` trips it.
func FireTypo() bool {
	return fault.Fire("store.disk.gte") != nil // want failpoint "is not in the pracsim/internal/fault registry"
}

// Orphan: failpoint violation (I/O unreachable from any firing func).
func Orphan(path string) error {
	return os.Remove(path) // want failpoint "direct I/O \(os.Remove\) in Orphan is not reachable"
}

// decode is the fixture's corruption detector.
func decode(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("corrupt frame")
	}
	return b, nil
}

// backend: degrade violation (raw decode error escapes the Get path).
type backend struct{}

func (b *backend) Get(key string) ([]byte, error) {
	payload, err := decode([]byte(key))
	if err != nil {
		return nil, err // want degrade "Get returns a raw decode/corruption error"
	}
	return payload, nil
}

// store: locks violation (I/O while holding the mutex).
type store struct {
	mu sync.Mutex
}

func (s *store) Flush(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(path, nil, 0o600) // want locks "direct I/O \(os.WriteFile\) while holding s.mu" failpoint "direct I/O \(os.WriteFile\) in Flush is not reachable"
}
