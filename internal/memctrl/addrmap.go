// Package memctrl implements the memory controller: address mapping,
// FR-FCFS command scheduling with an open-page policy, read/write queues,
// refresh management, Refresh Management (RFM) issuing and the Alert
// Back-Off servicing mandated by the PRAC specification.
package memctrl

import (
	"fmt"
	"math/bits"

	"pracsim/internal/dram"
)

// Loc is a decoded DRAM location.
type Loc struct {
	Bank int // flat bank index within the channel
	Row  int
	Col  int // cache-line-sized column
}

// AddressMapper translates physical cache-line addresses to DRAM locations.
// Decode and Encode must be exact inverses over the channel capacity.
type AddressMapper interface {
	Name() string
	Decode(addr uint64) Loc
	Encode(loc Loc) uint64
	// Lines reports the number of cache lines the mapping covers.
	Lines() uint64
}

// mapGeom holds the shared bit-slicing geometry for the mappers.
type mapGeom struct {
	org      dram.Org
	colBits  uint
	bankBits uint
	rowBits  uint
}

func newGeom(org dram.Org) (mapGeom, error) {
	if err := org.Validate(); err != nil {
		return mapGeom{}, err
	}
	g := mapGeom{org: org}
	for _, d := range []struct {
		n    int
		bits *uint
		name string
	}{
		{org.Columns, &g.colBits, "columns"},
		{org.Banks(), &g.bankBits, "banks"},
		{org.Rows, &g.rowBits, "rows"},
	} {
		if d.n&(d.n-1) != 0 {
			return mapGeom{}, fmt.Errorf("memctrl: %s (%d) must be a power of two", d.name, d.n)
		}
		*d.bits = uint(bits.TrailingZeros64(uint64(d.n)))
	}
	return g, nil
}

func (g mapGeom) lines() uint64 { return 1 << (g.colBits + g.bankBits + g.rowBits) }

// linearMapper is the simple Row:Bank:Column layout. Sequential lines walk
// a row before moving to the next bank, giving maximal row-buffer locality
// and no bank-level parallelism. Mostly useful as a baseline and for
// attack traces that want full control over bank/row placement.
type linearMapper struct{ g mapGeom }

// NewLinearMapper builds the Row:Bank:Column mapper.
func NewLinearMapper(org dram.Org) (AddressMapper, error) {
	g, err := newGeom(org)
	if err != nil {
		return nil, err
	}
	return &linearMapper{g}, nil
}

func (m *linearMapper) Name() string  { return "linear" }
func (m *linearMapper) Lines() uint64 { return m.g.lines() }

func (m *linearMapper) Decode(addr uint64) Loc {
	g := m.g
	return Loc{
		Col:  int(addr & (1<<g.colBits - 1)),
		Bank: int((addr >> g.colBits) & (1<<g.bankBits - 1)),
		Row:  int((addr >> (g.colBits + g.bankBits)) & (1<<g.rowBits - 1)),
	}
}

func (m *linearMapper) Encode(loc Loc) uint64 {
	g := m.g
	return uint64(loc.Col) |
		uint64(loc.Bank)<<g.colBits |
		uint64(loc.Row)<<(g.colBits+g.bankBits)
}

// mopMapper is Minimalist Open-Page (Kaseridis et al., MICRO'11), the
// paper's Table 3 policy: small groups of sequential cache lines stay in
// one row (preserving limited spatial locality), then the bank index
// advances, spreading a page across banks for bank-level parallelism.
// The bank index is additionally XORed with low row bits to break
// pathological bank conflicts.
type mopMapper struct {
	g        mapGeom
	mopBits  uint // log2 of consecutive lines per bank visit
	xorBanks bool
}

// NewMOPMapper builds a Minimalist Open-Page mapper with groupLines
// consecutive cache lines per bank visit (a power of two, e.g. 4).
func NewMOPMapper(org dram.Org, groupLines int, xorBanks bool) (AddressMapper, error) {
	g, err := newGeom(org)
	if err != nil {
		return nil, err
	}
	if groupLines <= 0 || groupLines&(groupLines-1) != 0 || groupLines > org.Columns {
		return nil, fmt.Errorf("memctrl: MOP group of %d lines must be a power of two <= columns (%d)", groupLines, org.Columns)
	}
	return &mopMapper{
		g:        g,
		mopBits:  uint(bits.TrailingZeros64(uint64(groupLines))),
		xorBanks: xorBanks,
	}, nil
}

func (m *mopMapper) Name() string  { return "mop" }
func (m *mopMapper) Lines() uint64 { return m.g.lines() }

// Address layout, low to high: [mop group offset][bank][column rest][row].
func (m *mopMapper) Decode(addr uint64) Loc {
	g := m.g
	lowCol := addr & (1<<m.mopBits - 1)
	addr >>= m.mopBits
	bank := addr & (1<<g.bankBits - 1)
	addr >>= g.bankBits
	highCol := addr & (1<<(g.colBits-m.mopBits) - 1)
	addr >>= g.colBits - m.mopBits
	row := addr & (1<<g.rowBits - 1)
	if m.xorBanks {
		bank ^= row & (1<<g.bankBits - 1)
	}
	return Loc{
		Bank: int(bank),
		Row:  int(row),
		Col:  int(highCol<<m.mopBits | lowCol),
	}
}

func (m *mopMapper) Encode(loc Loc) uint64 {
	g := m.g
	bank := uint64(loc.Bank)
	row := uint64(loc.Row)
	if m.xorBanks {
		bank ^= row & (1<<g.bankBits - 1)
	}
	lowCol := uint64(loc.Col) & (1<<m.mopBits - 1)
	highCol := uint64(loc.Col) >> m.mopBits
	addr := row
	addr = addr<<(g.colBits-m.mopBits) | highCol
	addr = addr<<g.bankBits | bank
	addr = addr<<m.mopBits | lowCol
	return addr
}
