package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pracsim/internal/dram"
)

func testOrg() dram.Org {
	o := dram.DDR5Org32Gb()
	o.Rows = 1024 // keep address space manageable for exhaustive-ish checks
	return o
}

func mappers(t *testing.T) []AddressMapper {
	t.Helper()
	org := testOrg()
	lin, err := NewLinearMapper(org)
	if err != nil {
		t.Fatal(err)
	}
	mop, err := NewMOPMapper(org, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	mopXOR, err := NewMOPMapper(org, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	return []AddressMapper{lin, mop, mopXOR}
}

// Decode and Encode must be exact inverses over the whole line space.
func TestMapperRoundTripProperty(t *testing.T) {
	for _, m := range mappers(t) {
		m := m
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			addr := uint64(rng.Int63()) % m.Lines()
			loc := m.Decode(addr)
			if m.Encode(loc) != addr {
				return false
			}
			// Decoded fields must be in range.
			org := testOrg()
			return loc.Bank >= 0 && loc.Bank < org.Banks() &&
				loc.Row >= 0 && loc.Row < org.Rows &&
				loc.Col >= 0 && loc.Col < org.Columns
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// Distinct addresses must decode to distinct locations (injectivity).
func TestMapperInjectiveProperty(t *testing.T) {
	for _, m := range mappers(t) {
		m := m
		prop := func(a, b uint32) bool {
			x := uint64(a) % m.Lines()
			y := uint64(b) % m.Lines()
			if x == y {
				return true
			}
			return m.Decode(x) != m.Decode(y)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestLinearMapperLayout(t *testing.T) {
	m, err := NewLinearMapper(testOrg())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential lines fill a row before changing banks.
	l0 := m.Decode(0)
	l1 := m.Decode(1)
	if l0.Bank != l1.Bank || l0.Row != l1.Row || l1.Col != l0.Col+1 {
		t.Errorf("lines 0,1 = %+v,%+v; want same row, adjacent columns", l0, l1)
	}
	cols := uint64(testOrg().Columns)
	lNext := m.Decode(cols)
	if lNext.Bank != l0.Bank+1 || lNext.Col != 0 {
		t.Errorf("line %d = %+v; want next bank, column 0", cols, lNext)
	}
}

func TestMOPMapperSpreadsGroupsAcrossBanks(t *testing.T) {
	m, err := NewMOPMapper(testOrg(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	// First 4 lines share a bank and row; line 4 moves to the next bank.
	base := m.Decode(0)
	for i := uint64(1); i < 4; i++ {
		l := m.Decode(i)
		if l.Bank != base.Bank || l.Row != base.Row {
			t.Fatalf("line %d = %+v; want same bank/row as line 0 (%+v)", i, l, base)
		}
	}
	l4 := m.Decode(4)
	if l4.Bank == base.Bank {
		t.Errorf("line 4 stayed in bank %d; MOP must advance the bank", base.Bank)
	}
	if l4.Row != base.Row {
		t.Errorf("line 4 row = %d, want %d (same row index in next bank)", l4.Row, base.Row)
	}
}

// The paper's activation-count channel requires that one OS page maps into
// the same DRAM row index across multiple banks, letting two processes
// share a physical row. MOP with 4-line groups has exactly this property.
func TestMOPMapperSharesRowAcrossPage(t *testing.T) {
	m, err := NewMOPMapper(testOrg(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	pageLines := uint64(4096 / 64)
	rows := map[int]bool{}
	banks := map[int]bool{}
	for i := uint64(0); i < pageLines; i++ {
		l := m.Decode(i)
		rows[l.Row] = true
		banks[l.Bank] = true
	}
	if len(rows) != 1 {
		t.Errorf("one page spans %d row indices, want 1", len(rows))
	}
	if len(banks) != int(pageLines)/4 {
		t.Errorf("one page spans %d banks, want %d", len(banks), pageLines/4)
	}
}

func TestMapperRejectsBadGeometry(t *testing.T) {
	org := testOrg()
	org.Rows = 1000 // not a power of two
	if _, err := NewLinearMapper(org); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
	if _, err := NewMOPMapper(testOrg(), 3, false); err == nil {
		t.Error("non-power-of-two MOP group accepted")
	}
	if _, err := NewMOPMapper(testOrg(), 0, false); err == nil {
		t.Error("zero MOP group accepted")
	}
	if _, err := NewMOPMapper(testOrg(), 512, false); err == nil {
		t.Error("MOP group larger than a row accepted")
	}
}

func TestMapperLinesMatchesCapacity(t *testing.T) {
	org := testOrg()
	for _, m := range mappers(t) {
		want := uint64(org.Banks()) * uint64(org.Rows) * uint64(org.Columns)
		if m.Lines() != want {
			t.Errorf("%s: Lines() = %d, want %d", m.Name(), m.Lines(), want)
		}
	}
}
