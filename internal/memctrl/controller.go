package memctrl

import (
	"fmt"

	"pracsim/internal/dram"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

// CyclePeriod is the controller clock: one DRAM command slot per nanosecond.
const CyclePeriod = ticks.T(4)

// Request is one cache-line transfer presented to the controller.
type Request struct {
	// Line is the physical cache-line index (address / line size); the
	// controller's address mapper turns it into a bank/row/column.
	Line  uint64
	Write bool

	// OnComplete, if non-nil, runs when read data has fully transferred
	// (writes are posted and complete on enqueue).
	OnComplete func(done ticks.T)

	arrive ticks.T
	loc    Loc
	missed bool
}

// Config parameterizes the controller.
type Config struct {
	ReadQueueCap  int
	WriteQueueCap int
	WriteHi       int // start draining writes at this occupancy
	WriteLo       int // stop draining at this occupancy
	FRFCFSCap     int // max row hits served over an older conflicting request
	TREFEvery     int // every k-th refresh is a Targeted Refresh (0 = off)
	NoRefresh     bool
}

// DefaultConfig matches the paper's Table 3 controller: FR-FCFS with a cap
// of 4, and targeted refreshes disabled unless an experiment enables them.
func DefaultConfig() Config {
	return Config{
		ReadQueueCap:  64,
		WriteQueueCap: 64,
		WriteHi:       48,
		WriteLo:       16,
		FRFCFSCap:     4,
	}
}

// Stats counts controller activity.
type Stats struct {
	Reads        int64
	Writes       int64
	RowHits      int64
	RowMisses    int64
	ABORFMs      int64 // RFMs issued to service Alert Back-Off
	PolicyRFMs   int64 // proactive RFMs (ACB or TB-RFM)
	Refreshes    int64
	TREFs        int64
	ReadLatency  ticks.T // cumulative arrive-to-data latency
	WriteForward int64
}

// Controller owns one DRAM channel.
type Controller struct {
	cfg    Config
	mod    *dram.Module
	mapper AddressMapper
	policy mitigation.Policy

	readQ  []*Request
	writeQ []*Request

	draining bool

	// Refresh state, per rank.
	nextRefAt []ticks.T
	refDebt   []int
	refCount  []int64
	trefSeen  int

	// RFM state.
	rfmPending int   // proactive RFMs waiting for the channel to drain
	pbPending  []int // banks with a pending per-bank RFM
	aboRFMs    int   // Alert-servicing RFMs waiting
	aboQueued  bool
	aboBudget  int
	aboDeadln  ticks.T

	hitStreak []int
	// triedBank is issueFrom's per-call "bank already considered" scratch,
	// stamped with triedGen so resetting it is one counter increment
	// instead of an O(banks) clear per call.
	triedBank []uint64
	triedGen  uint64

	// writeLines counts in-flight writes per line address, so read-after-
	// write forwarding in Enqueue is a map probe instead of an O(n) scan
	// of the write queue.
	writeLines map[uint64]int

	// waker, when set, is called as a request lands in an empty controller
	// (see SetWaker) so a demand-driven clock can resume ticking.
	waker func(now ticks.T)

	stats Stats
}

// New builds a controller over a DRAM module.
func New(cfg Config, mod *dram.Module, mapper AddressMapper, policy mitigation.Policy) (*Controller, error) {
	if mod == nil || mapper == nil || policy == nil {
		return nil, fmt.Errorf("memctrl: module, mapper and policy are required")
	}
	if cfg.ReadQueueCap <= 0 || cfg.WriteQueueCap <= 0 {
		return nil, fmt.Errorf("memctrl: queue capacities must be positive: %+v", cfg)
	}
	if cfg.FRFCFSCap <= 0 {
		return nil, fmt.Errorf("memctrl: FR-FCFS cap must be positive: %+v", cfg)
	}
	org := mod.Config().Org
	c := &Controller{
		cfg:        cfg,
		mod:        mod,
		mapper:     mapper,
		policy:     policy,
		nextRefAt:  make([]ticks.T, org.Ranks),
		refDebt:    make([]int, org.Ranks),
		refCount:   make([]int64, org.Ranks),
		hitStreak:  make([]int, org.Banks()),
		triedBank:  make([]uint64, org.Banks()),
		writeLines: make(map[uint64]int),
	}
	for r := range c.nextRefAt {
		// Stagger rank refreshes across the tREFI period, as real
		// controllers do, so refresh blackouts do not align.
		c.nextRefAt[r] = mod.Config().Timing.TREFI * ticks.T(r+1) / ticks.T(org.Ranks)
	}
	return c, nil
}

// Stats returns a snapshot of controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// Module exposes the underlying DRAM module (read-only use intended).
func (c *Controller) Module() *dram.Module { return c.mod }

// Mapper exposes the address mapper.
func (c *Controller) Mapper() AddressMapper { return c.mapper }

// Policy exposes the mitigation policy.
func (c *Controller) Policy() mitigation.Policy { return c.policy }

// QueueLen reports current read and write queue occupancy.
func (c *Controller) QueueLen() (reads, writes int) { return len(c.readQ), len(c.writeQ) }

// SetWaker registers fn, invoked when a request is accepted into a
// previously empty controller — the only event that can create work for a
// quiescent controller between its self-computed maintenance deadlines.
// Demand-driven clocks use it to resume a parked controller ticker.
func (c *Controller) SetWaker(fn func(now ticks.T)) { c.waker = fn }

// Enqueue presents a request to the controller. It reports false when the
// relevant queue is full; the caller must retry later.
func (c *Controller) Enqueue(req *Request, now ticks.T) bool {
	req.arrive = now
	req.loc = c.mapper.Decode(req.Line)
	if req.Write {
		if len(c.writeQ) >= c.cfg.WriteQueueCap {
			return false
		}
		c.writeQ = append(c.writeQ, req)
		c.writeLines[req.Line]++
		c.stats.Writes++
		c.wakeIfIdle(now)
		return true
	}
	// Read-after-write forwarding: pending writes hold the freshest data.
	if c.writeLines[req.Line] > 0 {
		c.stats.Reads++
		c.stats.WriteForward++
		if req.OnComplete != nil {
			req.OnComplete(now + CyclePeriod)
		}
		return true
	}
	if len(c.readQ) >= c.cfg.ReadQueueCap {
		return false
	}
	c.readQ = append(c.readQ, req)
	c.stats.Reads++
	c.wakeIfIdle(now)
	return true
}

// wakeIfIdle fires the waker when the request just accepted is the only
// queued work — any other occupancy means the controller is already awake.
func (c *Controller) wakeIfIdle(now ticks.T) {
	if c.waker != nil && len(c.readQ)+len(c.writeQ) == 1 {
		c.waker(now)
	}
}

// Tick advances the controller by one cycle; it issues at most one DRAM
// command. now must advance by CyclePeriod between calls.
func (c *Controller) Tick(now ticks.T) {
	c.mod.Maintain(now)
	c.accrueMaintenance(now)

	if c.serviceMaintenance(now) {
		return
	}
	c.schedule(now)
}

// NextWork reports a conservative earliest time the controller could
// possibly have work, assuming no new requests arrive: now+CyclePeriod
// while any demand or maintenance work is pending (commands may become
// legal any cycle as timing windows expire), otherwise the earliest
// time-driven maintenance deadline — refresh accrual, the policy's next
// scheduled RFM, or the DRAM's next housekeeping action — and ticks.Never
// when none exists. Every controller cycle strictly before the reported
// time is provably a no-op, so a demand-driven clock may skip it; a
// request arriving earlier re-arms the clock through SetWaker.
func (c *Controller) NextWork(now ticks.T) ticks.T {
	if len(c.readQ) > 0 || len(c.writeQ) > 0 ||
		c.rfmPending > 0 || len(c.pbPending) > 0 ||
		c.aboRFMs > 0 || c.aboQueued || c.aboDeadln != 0 ||
		c.mod.AlertAsserted() {
		return now + CyclePeriod
	}
	next := ticks.Never
	if !c.cfg.NoRefresh {
		for r, d := range c.refDebt {
			if d > 0 {
				return now + CyclePeriod
			}
			if at := c.nextRefAt[r]; at < next {
				next = at
			}
		}
	}
	if at := c.policy.NextDue(now); at < next {
		next = at
	}
	if at := c.mod.NextMaintenance(now); at < next {
		next = at
	}
	return next
}

// accrueMaintenance updates refresh debt, proactive-RFM debt and the Alert
// Back-Off state machine.
func (c *Controller) accrueMaintenance(now ticks.T) {
	t := c.mod.Config().Timing
	if !c.cfg.NoRefresh {
		for r := range c.nextRefAt {
			for now >= c.nextRefAt[r] {
				c.refDebt[r]++
				c.nextRefAt[r] += t.TREFI
			}
		}
	}

	c.rfmPending += c.policy.Due(now)
	if pb, ok := c.policy.(mitigation.PerBankPolicy); ok {
		c.pbPending = append(c.pbPending, pb.DuePerBank(now)...)
	}

	// Alert Back-Off: when the DRAM asserts Alert, the controller may
	// issue up to ABOActAllowance further ACTs (within tABOACT) before
	// it must issue NMit RFMs.
	if c.mod.AlertAsserted() {
		if !c.aboQueued {
			if c.aboDeadln == 0 {
				c.aboDeadln = now + t.TABOACT
				c.aboBudget = c.mod.Config().PRAC.ABOActAllowance
			}
			if c.aboBudget <= 0 || now >= c.aboDeadln {
				c.aboRFMs += c.mod.Config().PRAC.NMit
				c.aboQueued = true
			}
		}
	} else if c.aboQueued && c.aboRFMs == 0 {
		c.aboQueued = false
		c.aboDeadln = 0
	} else if !c.aboQueued {
		c.aboDeadln = 0
	}
}

// maintenanceBlocked reports whether bank may not receive new activations
// because maintenance needs its rank (or the whole channel) quiescent.
func (c *Controller) maintenanceBlocked(bank int) bool {
	if c.rfmPending > 0 || c.aboRFMs > 0 {
		return true
	}
	for _, b := range c.pbPending {
		if b == bank {
			return true
		}
	}
	return c.refDebt[c.mod.Config().Org.RankOf(bank)] > 0
}

// serviceMaintenance issues PRE/REFab/RFMab commands needed by refresh, RFM
// and Alert servicing. It reports whether it consumed this cycle's command
// slot.
func (c *Controller) serviceMaintenance(now ticks.T) bool {
	org := c.mod.Config().Org
	needRFM := c.rfmPending > 0 || c.aboRFMs > 0

	if needRFM {
		if c.mod.CanIssue(dram.Cmd{Kind: dram.CmdRFMab}, now) {
			c.mod.Issue(dram.Cmd{Kind: dram.CmdRFMab}, now)
			if c.aboRFMs > 0 {
				c.aboRFMs--
				c.stats.ABORFMs++
			} else {
				c.rfmPending--
				c.stats.PolicyRFMs++
			}
			return true
		}
		return c.prechargeForDrain(now, -1)
	}

	if len(c.pbPending) > 0 {
		b := c.pbPending[0]
		cmd := dram.Cmd{Kind: dram.CmdRFMpb, Bank: b}
		if c.mod.CanIssue(cmd, now) {
			c.mod.Issue(cmd, now)
			c.pbPending = c.pbPending[1:]
			c.stats.PolicyRFMs++
			return true
		}
		if _, open := c.mod.OpenRow(b); open {
			if c.mod.CanIssue(dram.Cmd{Kind: dram.CmdPRE, Bank: b}, now) {
				c.mod.Issue(dram.Cmd{Kind: dram.CmdPRE, Bank: b}, now)
				return true
			}
		}
		// The bank is draining (tRP or rank refresh); fall through so
		// other banks keep being served meanwhile.
	}

	for r := 0; r < org.Ranks; r++ {
		if c.refDebt[r] == 0 {
			continue
		}
		tref := c.cfg.TREFEvery > 0 && (c.refCount[r]+1)%int64(c.cfg.TREFEvery) == 0
		cmd := dram.Cmd{Kind: dram.CmdREFab, Bank: r, TREF: tref}
		if c.mod.CanIssue(cmd, now) {
			c.mod.Issue(cmd, now)
			c.refDebt[r]--
			c.refCount[r]++
			c.stats.Refreshes++
			if tref {
				c.stats.TREFs++
				c.trefSeen++
				if c.trefSeen >= org.Ranks {
					c.trefSeen = 0
					c.policy.OnTREF(now)
				}
			}
			return true
		}
		if c.prechargeForDrain(now, r) {
			return true
		}
	}
	return false
}

// prechargeForDrain closes one open row so pending maintenance can proceed.
// rank < 0 drains the whole channel (for RFMab).
func (c *Controller) prechargeForDrain(now ticks.T, rank int) bool {
	org := c.mod.Config().Org
	lo, hi := 0, org.Banks()
	if rank >= 0 {
		lo = rank * org.BanksPerRank()
		hi = lo + org.BanksPerRank()
	}
	for b := lo; b < hi; b++ {
		if _, open := c.mod.OpenRow(b); !open {
			continue
		}
		if c.mod.CanIssue(dram.Cmd{Kind: dram.CmdPRE, Bank: b}, now) {
			c.mod.Issue(dram.Cmd{Kind: dram.CmdPRE, Bank: b}, now)
			return true
		}
	}
	return false
}

// schedule issues one demand command following FR-FCFS with a hit cap.
func (c *Controller) schedule(now ticks.T) {
	if c.draining {
		if len(c.writeQ) <= c.cfg.WriteLo {
			c.draining = false
		}
	} else if len(c.writeQ) >= c.cfg.WriteHi {
		c.draining = true
	}

	if c.draining || len(c.readQ) == 0 {
		if c.issueFrom(&c.writeQ, now) {
			return
		}
	}
	if c.issueFrom(&c.readQ, now) {
		return
	}
	if !c.draining && len(c.readQ) == 0 {
		c.issueFrom(&c.writeQ, now)
	}
}

// issueFrom applies FR-FCFS to one queue. It reports whether a command was
// issued.
func (c *Controller) issueFrom(q *[]*Request, now ticks.T) bool {
	queue := *q
	if len(queue) == 0 {
		return false
	}

	// First Ready: oldest request whose row is already open, unless the
	// bank's hit streak exceeded the cap while an older conflicting
	// request waits (cap-4 FR-FCFS, Table 3).
	var hit *Request
	hitIdx := -1
	for i, r := range queue {
		row, open := c.mod.OpenRow(r.loc.Bank)
		if open && row == r.loc.Row {
			capped := c.hitStreak[r.loc.Bank] >= c.cfg.FRFCFSCap && c.olderConflict(queue, i)
			if !capped {
				hit, hitIdx = r, i
				break
			}
		}
	}
	if hit != nil && c.tryColumn(hit, now) {
		if c.olderConflict(queue, hitIdx) {
			c.hitStreak[hit.loc.Bank]++
		}
		if hit.Write {
			c.untrackWrite(hit.Line)
		}
		c.remove(q, hitIdx)
		return true
	}

	// First Come First Served: walk the queue in age order and serve the
	// first request that can make progress, considering each bank once.
	// Requests whose bank is held for pending maintenance or still inside
	// a timing window must not head-of-line-block younger requests to
	// other banks (bank-level parallelism). The scratch set is reset by
	// bumping the generation stamp, not by clearing the slice.
	c.triedGen++
	for _, r := range queue {
		b := r.loc.Bank
		if c.triedBank[b] == c.triedGen {
			continue
		}
		c.triedBank[b] = c.triedGen
		if c.maintenanceBlocked(b) {
			continue
		}
		if row, open := c.mod.OpenRow(b); open {
			if row == r.loc.Row {
				continue // column timing not ready; the hit scan serves it
			}
			if c.mod.CanIssue(dram.Cmd{Kind: dram.CmdPRE, Bank: b}, now) {
				c.mod.Issue(dram.Cmd{Kind: dram.CmdPRE, Bank: b}, now)
				return true
			}
			continue
		}
		if c.mod.CanIssue(dram.Cmd{Kind: dram.CmdACT, Bank: b, Row: r.loc.Row}, now) {
			c.mod.Issue(dram.Cmd{Kind: dram.CmdACT, Bank: b, Row: r.loc.Row}, now)
			c.hitStreak[b] = 0
			c.policy.OnActivate(b, now)
			if c.mod.AlertAsserted() && !c.aboQueued && c.aboBudget > 0 {
				c.aboBudget--
			}
			if !r.missed {
				r.missed = true
				c.stats.RowMisses++
			}
			return true
		}
	}
	return false
}

// olderConflict reports whether any request older than index i targets the
// same bank with a different row.
func (c *Controller) olderConflict(queue []*Request, i int) bool {
	r := queue[i]
	for _, o := range queue[:i] {
		if o.loc.Bank == r.loc.Bank && o.loc.Row != r.loc.Row {
			return true
		}
	}
	return false
}

// tryColumn issues the RD/WR for a request whose row is open.
func (c *Controller) tryColumn(r *Request, now ticks.T) bool {
	kind := dram.CmdRD
	if r.Write {
		kind = dram.CmdWR
	}
	cmd := dram.Cmd{Kind: kind, Bank: r.loc.Bank}
	if !c.mod.CanIssue(cmd, now) {
		return false
	}
	res := c.mod.Issue(cmd, now)
	if !r.missed {
		c.stats.RowHits++
	}
	if !r.Write && r.OnComplete != nil {
		c.stats.ReadLatency += res.DataAt - r.arrive
		r.OnComplete(res.DataAt)
	}
	return true
}

// untrackWrite drops one in-flight write to line from the forwarding
// index, deleting the key at zero so the map stays bounded by write-queue
// occupancy.
func (c *Controller) untrackWrite(line uint64) {
	if n := c.writeLines[line]; n > 1 {
		c.writeLines[line] = n - 1
	} else {
		delete(c.writeLines, line)
	}
}

func (c *Controller) remove(q *[]*Request, i int) {
	queue := *q
	copy(queue[i:], queue[i+1:])
	queue[len(queue)-1] = nil
	*q = queue[:len(queue)-1]
}
