package memctrl

import (
	"testing"

	"pracsim/internal/dram"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

// testRig wires a small controller for direct request-level tests.
type testRig struct {
	ctrl *Controller
	mod  *dram.Module
	now  ticks.T
}

func newRig(t *testing.T, dcfg dram.Config, ccfg Config, policy mitigation.Policy) *testRig {
	t.Helper()
	mod, err := dram.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewLinearMapper(dcfg.Org)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(ccfg, mod, mapper, policy)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{ctrl: ctrl, mod: mod}
}

func smallDRAM(nbo int) dram.Config {
	cfg := dram.DefaultConfig(nbo)
	cfg.Org.Ranks = 1
	cfg.Org.BankGroups = 2
	cfg.Org.BanksPerGroup = 2
	cfg.Org.Rows = 256
	return cfg
}

// run advances the controller until the deadline or until stop returns true.
func (r *testRig) run(deadline ticks.T, stop func() bool) {
	for r.now < deadline {
		r.ctrl.Tick(r.now)
		r.now += CyclePeriod
		if stop != nil && stop() {
			return
		}
	}
}

// lineFor builds a cache-line address for a bank/row/column location.
func (r *testRig) lineFor(bank, row, col int) uint64 {
	return r.ctrl.Mapper().Encode(Loc{Bank: bank, Row: row, Col: col})
}

func TestReadCompletesWithRowMissLatency(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	var done ticks.T
	req := &Request{Line: rig.lineFor(0, 5, 0), OnComplete: func(at ticks.T) { done = at }}
	if !rig.ctrl.Enqueue(req, 0) {
		t.Fatal("Enqueue refused")
	}
	rig.run(ticks.FromNS(500), func() bool { return done != 0 })
	if done == 0 {
		t.Fatal("read never completed")
	}
	tm := rig.mod.Config().Timing
	min := tm.TRCD + tm.TCL + tm.TBURST
	if done < min || done > min+ticks.FromNS(20) {
		t.Errorf("read latency = %v, want about tRCD+tCL+tBURST = %v", done, min)
	}
	s := rig.ctrl.Stats()
	if s.RowMisses != 1 || s.RowHits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/1", s.RowHits, s.RowMisses)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	var first, second ticks.T
	rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 5, 0), OnComplete: func(at ticks.T) { first = at }}, 0)
	rig.run(ticks.FromNS(1000), func() bool { return first != 0 })
	start := rig.now
	rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 5, 1), OnComplete: func(at ticks.T) { second = at }}, rig.now)
	rig.run(rig.now+ticks.FromNS(1000), func() bool { return second != 0 })
	missLat := first
	hitLat := second - start
	if hitLat >= missLat {
		t.Errorf("row hit latency %v not faster than miss %v", hitLat, missLat)
	}
	if s := rig.ctrl.Stats(); s.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1", s.RowHits)
	}
}

func TestWriteIsPostedAndForwarded(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	line := rig.lineFor(1, 9, 3)
	if !rig.ctrl.Enqueue(&Request{Line: line, Write: true}, 0) {
		t.Fatal("write refused")
	}
	var done ticks.T
	rig.ctrl.Enqueue(&Request{Line: line, OnComplete: func(at ticks.T) { done = at }}, 0)
	if done == 0 {
		t.Fatal("read of pending write was not forwarded")
	}
	if s := rig.ctrl.Stats(); s.WriteForward != 1 {
		t.Errorf("WriteForward = %d, want 1", s.WriteForward)
	}
}

func TestWriteDrainEventuallyWritesBack(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	for i := 0; i < 50; i++ {
		if !rig.ctrl.Enqueue(&Request{Line: rig.lineFor(i%4, i, 0), Write: true}, 0) {
			t.Fatalf("write %d refused", i)
		}
	}
	rig.run(ticks.FromUS(20), func() bool {
		_, w := rig.ctrl.QueueLen()
		return w == 0
	})
	if _, w := rig.ctrl.QueueLen(); w != 0 {
		t.Fatalf("write queue not drained: %d left", w)
	}
	if got := rig.mod.Stats().WRs; got != 50 {
		t.Errorf("WR commands = %d, want 50", got)
	}
}

func TestQueueBackpressure(t *testing.T) {
	ccfg := DefaultConfig()
	ccfg.ReadQueueCap = 2
	rig := newRig(t, smallDRAM(1024), ccfg, mitigation.NewABOOnly())
	ok1 := rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 1, 0)}, 0)
	ok2 := rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 2, 0)}, 0)
	ok3 := rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 3, 0)}, 0)
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("enqueue = %v,%v,%v; want true,true,false", ok1, ok2, ok3)
	}
}

func TestRefreshHappensAtTREFIRate(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	horizon := ticks.FromUS(40)
	rig.run(horizon, nil)
	tm := rig.mod.Config().Timing
	want := int64(horizon / tm.TREFI) // one rank in smallDRAM
	got := rig.ctrl.Stats().Refreshes
	if got < want-1 || got > want+1 {
		t.Errorf("refreshes = %d, want about %d", got, want)
	}
}

func TestTREFCadenceAndPolicyNotification(t *testing.T) {
	ccfg := DefaultConfig()
	ccfg.TREFEvery = 2
	pol, err := mitigation.NewTPRAC(ticks.FromUS(1000), true) // huge window: isolate TREF path
	if err != nil {
		t.Fatal(err)
	}
	rig := newRig(t, smallDRAM(1024), ccfg, pol)
	rig.run(ticks.FromUS(40), nil)
	s := rig.ctrl.Stats()
	if s.TREFs == 0 {
		t.Fatal("no targeted refreshes with TREFEvery=2")
	}
	if s.Refreshes < 2*s.TREFs {
		t.Errorf("TREFs = %d of %d refreshes; want at most every 2nd", s.TREFs, s.Refreshes)
	}
}

// hammerLoop keeps a row-conflict pair of requests in flight to generate
// activations as fast as tRC allows.
func hammerLoop(rig *testRig, bank, rowA, rowB int, deadline ticks.T, stop func() bool) {
	outstanding := 0
	next := rowA
	for rig.now < deadline {
		if outstanding == 0 {
			row := next
			if next == rowA {
				next = rowB
			} else {
				next = rowA
			}
			outstanding++
			rig.ctrl.Enqueue(&Request{
				Line:       rig.lineFor(bank, row, 0),
				OnComplete: func(ticks.T) { outstanding-- },
			}, rig.now)
		}
		rig.ctrl.Tick(rig.now)
		rig.now += CyclePeriod
		if stop != nil && stop() {
			return
		}
	}
}

func TestABOServiceIssuesRFMsAndMitigates(t *testing.T) {
	dcfg := smallDRAM(32)
	rig := newRig(t, dcfg, DefaultConfig(), mitigation.NewABOOnly())
	hammerLoop(rig, 0, 1, 2, ticks.FromUS(40), func() bool {
		return rig.ctrl.Stats().ABORFMs > 0
	})
	s := rig.ctrl.Stats()
	if s.ABORFMs == 0 {
		t.Fatal("hammering past NBO never produced an ABO RFM")
	}
	if rig.mod.Stats().MitigatedRows == 0 {
		t.Fatal("RFM performed no mitigation")
	}
	if s.PolicyRFMs != 0 {
		t.Errorf("PolicyRFMs = %d, want 0 under ABO-Only", s.PolicyRFMs)
	}
}

func TestABOServiceHonorsPRACLevel(t *testing.T) {
	dcfg := smallDRAM(32)
	dcfg.PRAC.NMit = 4
	rig := newRig(t, dcfg, DefaultConfig(), mitigation.NewABOOnly())
	hammerLoop(rig, 0, 1, 2, ticks.FromUS(60), func() bool {
		return rig.ctrl.Stats().ABORFMs >= 4
	})
	if got := rig.ctrl.Stats().ABORFMs; got < 4 {
		t.Fatalf("ABORFMs = %d, want the full PRAC level burst of 4", got)
	}
	// All four must belong to one Alert.
	if alerts := rig.mod.Stats().AlertsAsserted; alerts != 1 {
		t.Errorf("alerts = %d, want 1", alerts)
	}
}

func TestTPRACPreventsAlerts(t *testing.T) {
	dcfg := smallDRAM(64)
	// One TB-RFM per 32 activations' worth of time keeps every row far
	// below NBO=64 even under a focused hammer.
	window := dcfg.Timing.TRC * 32
	pol, err := mitigation.NewTPRAC(window, false)
	if err != nil {
		t.Fatal(err)
	}
	rig := newRig(t, dcfg, DefaultConfig(), pol)
	hammerLoop(rig, 0, 1, 2, ticks.FromUS(200), nil)
	s := rig.ctrl.Stats()
	if s.PolicyRFMs == 0 {
		t.Fatal("TPRAC issued no TB-RFMs")
	}
	if got := rig.mod.Stats().AlertsAsserted; got != 0 {
		t.Fatalf("alerts = %d under TPRAC, want 0", got)
	}
	if s.ABORFMs != 0 {
		t.Fatalf("ABORFMs = %d under TPRAC, want 0", s.ABORFMs)
	}
}

func TestTBRFMRateIsTimeNotActivityDependent(t *testing.T) {
	window := ticks.FromUS(2)
	horizon := ticks.FromUS(100)

	runWith := func(hammer bool) int64 {
		pol, err := mitigation.NewTPRAC(window, false)
		if err != nil {
			t.Fatal(err)
		}
		rig := newRig(t, smallDRAM(1<<30), DefaultConfig(), pol)
		if hammer {
			hammerLoop(rig, 0, 1, 2, horizon, nil)
		} else {
			rig.run(horizon, nil)
		}
		return rig.ctrl.Stats().PolicyRFMs
	}
	idle := runWith(false)
	busy := runWith(true)
	if idle != busy {
		t.Fatalf("TB-RFM count differs with activity: idle=%d busy=%d", idle, busy)
	}
	want := int64(horizon / window)
	if idle < want-1 || idle > want+1 {
		t.Errorf("TB-RFM count = %d, want about %d", idle, want)
	}
}

func TestACBFiresOnBankActivity(t *testing.T) {
	dcfg := smallDRAM(1 << 30)
	pol, err := mitigation.NewACB(dcfg.Org.Banks(), 16)
	if err != nil {
		t.Fatal(err)
	}
	rig := newRig(t, dcfg, DefaultConfig(), pol)
	hammerLoop(rig, 0, 1, 2, ticks.FromUS(40), func() bool {
		return rig.ctrl.Stats().PolicyRFMs > 0
	})
	if rig.ctrl.Stats().PolicyRFMs == 0 {
		t.Fatal("ACB never fired despite heavy bank activity")
	}
}

func TestNewRejectsBadArguments(t *testing.T) {
	dcfg := smallDRAM(1024)
	mod := dram.MustNew(dcfg)
	mapper, _ := NewLinearMapper(dcfg.Org)
	if _, err := New(DefaultConfig(), nil, mapper, mitigation.NewABOOnly()); err == nil {
		t.Error("nil module accepted")
	}
	bad := DefaultConfig()
	bad.ReadQueueCap = 0
	if _, err := New(bad, mod, mapper, mitigation.NewABOOnly()); err == nil {
		t.Error("zero read queue accepted")
	}
	bad = DefaultConfig()
	bad.FRFCFSCap = 0
	if _, err := New(bad, mod, mapper, mitigation.NewABOOnly()); err == nil {
		t.Error("zero FR-FCFS cap accepted")
	}
}
