package memctrl

import (
	"testing"

	"pracsim/internal/dram"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

// TestWriteForwardIndexTracksQueue pins the O(1) forwarding index against
// queue movement: forwarding must trigger exactly while a write to the
// line is queued, including duplicate writes, and stop once the last one
// drains to DRAM.
func TestWriteForwardIndexTracksQueue(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	line := rig.lineFor(1, 9, 3)
	other := rig.lineFor(2, 4, 1)

	// Two writes to the same line, one to another: forwarding must hit
	// while either same-line write is in flight.
	for i := 0; i < 2; i++ {
		if !rig.ctrl.Enqueue(&Request{Line: line, Write: true}, rig.now) {
			t.Fatal("write refused")
		}
	}
	if !rig.ctrl.Enqueue(&Request{Line: other, Write: true}, rig.now) {
		t.Fatal("write refused")
	}
	var done ticks.T
	rig.ctrl.Enqueue(&Request{Line: line, OnComplete: func(at ticks.T) { done = at }}, rig.now)
	if done == 0 {
		t.Fatal("read of doubly-pending write was not forwarded")
	}
	if s := rig.ctrl.Stats(); s.WriteForward != 1 {
		t.Fatalf("WriteForward = %d, want 1", s.WriteForward)
	}

	// Drain every write, then the index must be empty: reads go to DRAM.
	rig.run(rig.now+ticks.FromUS(20), func() bool {
		_, w := rig.ctrl.QueueLen()
		return w == 0
	})
	if n := len(rig.ctrl.writeLines); n != 0 {
		t.Fatalf("forwarding index holds %d lines after drain, want 0", n)
	}
	done = 0
	rig.ctrl.Enqueue(&Request{Line: line, OnComplete: func(at ticks.T) { done = at }}, rig.now)
	if done != 0 {
		t.Fatal("read forwarded after all writes drained")
	}
	if s := rig.ctrl.Stats(); s.WriteForward != 1 {
		t.Fatalf("WriteForward = %d after drain, want still 1", s.WriteForward)
	}
}

// TestWriteForwardDeepQueue forwards against a near-full write queue —
// the regime where the old O(n) scan was quadratic across enqueues.
func TestWriteForwardDeepQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteHi = 63 // don't start draining during setup
	rig := newRig(t, smallDRAM(1024), cfg, mitigation.NewABOOnly())
	var lines []uint64
	for i := 0; i < 60; i++ {
		l := rig.lineFor(i%4, i/4, i%8)
		lines = append(lines, l)
		if !rig.ctrl.Enqueue(&Request{Line: l, Write: true}, 0) {
			t.Fatalf("write %d refused", i)
		}
	}
	forwarded := 0
	for _, l := range lines {
		rig.ctrl.Enqueue(&Request{Line: l, OnComplete: func(ticks.T) { forwarded++ }}, 0)
	}
	if forwarded != len(lines) {
		t.Fatalf("forwarded %d of %d reads against a deep write queue", forwarded, len(lines))
	}
}

func TestNextWorkBusyThenQuiescent(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 5, 0)}, 0)
	if next := rig.ctrl.NextWork(0); next != CyclePeriod {
		t.Fatalf("NextWork = %v with a queued read, want next cycle", next)
	}
	// Drain the read; the controller then has only its refresh schedule.
	var done ticks.T
	rig.run(ticks.FromUS(2), func() bool {
		r, w := rig.ctrl.QueueLen()
		return r == 0 && w == 0 && done >= 0
	})
	next := rig.ctrl.NextWork(rig.now)
	if next <= rig.now || next == ticks.Never {
		t.Fatalf("NextWork = %v for an idle controller, want the refresh deadline", next)
	}
	trefi := rig.mod.Config().Timing.TREFI
	if next > trefi+rig.now {
		t.Fatalf("NextWork = %v, beyond one tREFI (%v) from now", next, trefi)
	}
}

func TestNextWorkNoRefreshQuiescentForever(t *testing.T) {
	dcfg := smallDRAM(1024)
	dcfg.PRAC.ResetOnREFW = false
	ccfg := DefaultConfig()
	ccfg.NoRefresh = true
	rig := newRig(t, dcfg, ccfg, mitigation.NewABOOnly())
	if next := rig.ctrl.NextWork(0); next != ticks.Never {
		t.Fatalf("NextWork = %v with refresh off and no policy deadline, want Never", next)
	}
}

func TestNextWorkSeesPolicyDeadline(t *testing.T) {
	window := ticks.FromNS(500)
	p, err := mitigation.NewTPRAC(window, false)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := smallDRAM(1024)
	dcfg.PRAC.ResetOnREFW = false
	ccfg := DefaultConfig()
	ccfg.NoRefresh = true
	rig := newRig(t, dcfg, ccfg, p)
	if next := rig.ctrl.NextWork(0); next != window {
		t.Fatalf("NextWork = %v, want the TB-Window deadline %v", next, window)
	}
}

func TestWakerFiresOnFirstEnqueueOnly(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	var wakes []ticks.T
	rig.ctrl.SetWaker(func(now ticks.T) { wakes = append(wakes, now) })
	rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 1, 0)}, 8)
	rig.ctrl.Enqueue(&Request{Line: rig.lineFor(0, 2, 0)}, 8)
	rig.ctrl.Enqueue(&Request{Line: rig.lineFor(1, 1, 0), Write: true}, 12)
	if len(wakes) != 1 || wakes[0] != 8 {
		t.Fatalf("wakes = %v, want exactly [8] (empty-to-occupied transition)", wakes)
	}
}

// TestTickAllocFree is the allocation-free assertion for the controller
// hot path: steady-state ticking — including FR-FCFS scans with the
// generation-stamped scratch state and maintenance accrual — must not
// allocate. Requests are pre-allocated and re-enqueued on completion so
// the workload itself adds nothing.
func TestTickAllocFree(t *testing.T) {
	rig := newRig(t, smallDRAM(1024), DefaultConfig(), mitigation.NewABOOnly())
	reqs := make([]*Request, 16)
	var recycle func(i int) func(ticks.T)
	recycle = func(i int) func(ticks.T) { return func(ticks.T) {} }
	for i := range reqs {
		reqs[i] = &Request{Line: rig.lineFor(i%4, i, 0), OnComplete: recycle(i)}
		if !rig.ctrl.Enqueue(reqs[i], 0) {
			t.Fatalf("request %d refused", i)
		}
	}
	rig.run(ticks.FromUS(2), nil) // steady state: queues warm, rows open
	allocs := testing.AllocsPerRun(2000, func() {
		rig.ctrl.Tick(rig.now)
		rig.now += CyclePeriod
	})
	// One refresh interval inside the measured window appends to no
	// queue; allow only rare incidental allocations (e.g. a map rehash),
	// not a per-tick cost.
	if allocs > 0.01 {
		t.Errorf("Tick allocates %.3f objects per call, want 0", allocs)
	}
}

// BenchmarkControllerTickSaturated drives the controller with a
// self-refilling read stream: every tick schedules against warm queues.
func BenchmarkControllerTickSaturated(b *testing.B) {
	dcfg := smallDRAM(1 << 20)
	mod, err := dram.New(dcfg)
	if err != nil {
		b.Fatal(err)
	}
	mapper, err := NewLinearMapper(dcfg.Org)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := New(DefaultConfig(), mod, mapper, mitigation.NewABOOnly())
	if err != nil {
		b.Fatal(err)
	}
	now := ticks.T(0)
	row := 0
	var refill func(at ticks.T)
	pending := 0
	refill = func(ticks.T) { pending-- }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pending < 16 {
			row++
			if ctrl.Enqueue(&Request{Line: mapper.Encode(Loc{Bank: row % 4, Row: row % 256}), OnComplete: refill}, now) {
				pending++
			} else {
				break
			}
		}
		ctrl.Tick(now)
		now += CyclePeriod
	}
}

// BenchmarkControllerEnqueueDeepWriteQueue measures read enqueue against
// a deep write queue — the path the forwarding index turned O(1).
func BenchmarkControllerEnqueueDeepWriteQueue(b *testing.B) {
	dcfg := smallDRAM(1 << 20)
	mod, err := dram.New(dcfg)
	if err != nil {
		b.Fatal(err)
	}
	mapper, err := NewLinearMapper(dcfg.Org)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WriteQueueCap = 256
	cfg.WriteHi = 255
	ctrl, err := New(cfg, mod, mapper, mitigation.NewABOOnly())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		if !ctrl.Enqueue(&Request{Line: mapper.Encode(Loc{Bank: i % 4, Row: i % 256}), Write: true}, 0) {
			b.Fatalf("write %d refused", i)
		}
	}
	miss := &Request{Line: mapper.Encode(Loc{Bank: 3, Row: 255, Col: 7})}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A non-forwarded read probes the index once; drop it from the
		// read queue again so the enqueue path stays the measured cost.
		if ctrl.Enqueue(miss, 0) {
			ctrl.readQ = ctrl.readQ[:0]
		}
	}
}
