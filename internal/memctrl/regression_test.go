package memctrl

import (
	"testing"

	"pracsim/internal/dram"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
)

// Regression: a refresh draining one rank must not head-of-line-block
// requests to other ranks. The original scheduler considered only the
// oldest queued request in the FCFS path; a request stuck behind its rank's
// refresh then stalled the whole channel for tRFC, which made per-rank
// refresh indistinguishable from channel-wide RFM blocking and broke the
// attacks' coincidence detector.
func TestNoCrossRankHeadOfLineBlocking(t *testing.T) {
	dcfg := dram.DefaultConfig(1 << 20)
	dcfg.Org.Rows = 1024
	rig := newRig(t, dcfg, DefaultConfig(), mitigation.NewABOOnly())

	banksPerRank := dcfg.Org.BanksPerRank()
	var maxLatRank0 ticks.T
	row := 0
	outstanding := 0

	// Keep one rank-1 request parked in the queue at all times (its rank
	// periodically refreshes), while measuring rank-0 miss latencies.
	var parkRank1 func()
	parkRank1 = func() {
		rig.ctrl.Enqueue(&Request{
			Line: rig.lineFor(banksPerRank, row%512, 0),
			OnComplete: func(at ticks.T) {
				parkRank1()
			},
		}, rig.now)
	}
	parkRank1()

	var probeRank0 func()
	probeRank0 = func() {
		row++
		arrive := rig.now
		outstanding++
		rig.ctrl.Enqueue(&Request{
			Line: rig.lineFor(0, row%512, 0),
			OnComplete: func(at ticks.T) {
				outstanding--
				if lat := at - arrive; lat > maxLatRank0 {
					// Exclude samples overlapping rank 0's own refresh
					// window: those are legitimately slow.
					phase := arrive % dcfg.Timing.TREFI
					rank0Phase := dcfg.Timing.TREFI / ticks.T(dcfg.Org.Ranks)
					d := phase - rank0Phase
					if d < 0 {
						d = -d
					}
					if d > ticks.FromNS(700) {
						maxLatRank0 = lat
					}
				}
			},
		}, rig.now)
	}
	for rig.now < ticks.FromUS(40) {
		if outstanding == 0 {
			probeRank0()
		}
		rig.ctrl.Tick(rig.now)
		rig.now += CyclePeriod
	}
	// A rank-0 miss is about 75ns; rank-1's refresh must not inflate it
	// toward tRFC (410ns).
	if maxLatRank0 > ticks.FromNS(300) {
		t.Fatalf("rank-0 probe latency reached %v outside its own refresh window; cross-rank head-of-line blocking is back", maxLatRank0)
	}
}
