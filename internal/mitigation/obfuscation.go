package mitigation

import (
	"fmt"
	"math/rand"

	"pracsim/internal/ticks"
)

// Obfuscation is the paper's Section 7.1 alternative defense: instead of
// eliminating ABO-RFMs, the memory controller injects decoy RFMs at random
// so an observer cannot tell a mitigation-induced latency spike from noise.
// It does not remove the leak — statistical attackers can still integrate
// over long windows — but it trades a tunable amount of bandwidth for
// reduced attacker precision, which the paper suggests for ultra-low
// thresholds where TPRAC's fixed schedule is expensive.
type Obfuscation struct {
	probability float64 // chance of one decoy RFM per evaluation interval
	interval    ticks.T
	rng         *rand.Rand
	next        ticks.T
	injected    int64
}

// NewObfuscation returns a policy injecting a decoy RFM with the given
// probability once per interval (typically tREFI), using a deterministic
// seed so simulations are reproducible.
func NewObfuscation(probability float64, interval ticks.T, seed int64) (*Obfuscation, error) {
	if probability < 0 || probability > 1 {
		return nil, fmt.Errorf("mitigation: obfuscation probability %v outside [0,1]", probability)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("mitigation: obfuscation interval must be positive, got %v", interval)
	}
	return &Obfuscation{
		probability: probability,
		interval:    interval,
		rng:         rand.New(rand.NewSource(seed)),
		next:        interval,
	}, nil
}

// Name implements Policy.
func (o *Obfuscation) Name() string { return "Obfuscation" }

// Injected reports how many decoy RFMs have been scheduled.
func (o *Obfuscation) Injected() int64 { return o.injected }

// Due implements Policy: at each interval boundary, flip the biased coin.
func (o *Obfuscation) Due(now ticks.T) int {
	n := 0
	for now >= o.next {
		if o.rng.Float64() < o.probability {
			n++
			o.injected++
		}
		o.next += o.interval
	}
	return n
}

// NextDue implements Policy: the next coin-flip boundary. The flip itself
// happens in Due at that boundary, so skipping the idle cycles before it
// consumes the deterministic RNG stream identically to per-cycle polling.
func (o *Obfuscation) NextDue(now ticks.T) ticks.T {
	if now >= o.next {
		return now
	}
	return o.next
}

// OnActivate implements Policy; injection is activity-independent.
func (o *Obfuscation) OnActivate(int, ticks.T) {}

// OnTREF implements Policy.
func (o *Obfuscation) OnTREF(ticks.T) {}
