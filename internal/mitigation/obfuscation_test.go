package mitigation

import (
	"testing"

	"pracsim/internal/ticks"
)

func TestObfuscationInjectionRate(t *testing.T) {
	interval := ticks.FromUS(1)
	o, err := NewObfuscation(0.5, interval, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	intervals := 4000
	for i := 1; i <= intervals; i++ {
		n += o.Due(ticks.T(i) * interval)
	}
	rate := float64(n) / float64(intervals)
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("injection rate = %.3f, want about 0.5", rate)
	}
	if o.Injected() != int64(n) {
		t.Fatalf("Injected() = %d, want %d", o.Injected(), n)
	}
}

func TestObfuscationDeterministic(t *testing.T) {
	mk := func() []int {
		o, err := NewObfuscation(0.3, ticks.FromUS(1), 7)
		if err != nil {
			t.Fatal(err)
		}
		var seq []int
		for i := 1; i <= 100; i++ {
			seq = append(seq, o.Due(ticks.FromUS(float64(i))))
		}
		return seq
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at interval %d", i)
		}
	}
}

func TestObfuscationExtremes(t *testing.T) {
	never, err := NewObfuscation(0, ticks.FromUS(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	always, err := NewObfuscation(1, ticks.FromUS(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		at := ticks.FromUS(float64(i))
		if never.Due(at) != 0 {
			t.Fatal("p=0 injected an RFM")
		}
		if always.Due(at) != 1 {
			t.Fatal("p=1 skipped an interval")
		}
	}
}

func TestObfuscationActivityIndependent(t *testing.T) {
	o, err := NewObfuscation(0.5, ticks.FromUS(1), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		o.OnActivate(i%8, ticks.T(i))
	}
	o2, err := NewObfuscation(0.5, ticks.FromUS(1), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		at := ticks.FromUS(float64(i))
		if o.Due(at) != o2.Due(at) {
			t.Fatal("activations changed the injection schedule")
		}
	}
}

func TestObfuscationValidation(t *testing.T) {
	if _, err := NewObfuscation(1.5, ticks.FromUS(1), 1); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewObfuscation(0.5, 0, 1); err == nil {
		t.Error("zero interval accepted")
	}
}
