package mitigation

import (
	"fmt"

	"pracsim/internal/ticks"
)

// PerBankPolicy is implemented by policies that issue fine-grained per-bank
// RFMs (RFMpb) instead of channel-blocking RFMab commands — the paper's
// Section 7.2 extension, which it leaves to future work.
type PerBankPolicy interface {
	Policy
	// DuePerBank reports the banks whose per-bank RFM is due at now.
	DuePerBank(now ticks.T) []int
}

// TPRACPerBank is Timing-Based RFM built on RFMpb: within each TB-Window it
// rotates one RFMpb through every bank, so each bank still receives exactly
// one activity-independent mitigation per window (the security guarantee of
// the analysis in Section 4.2 is per-bank), but each RFM blocks a single
// bank for tRFMpb instead of stalling the whole channel for tRFMab.
type TPRACPerBank struct {
	window ticks.T
	banks  int
	step   ticks.T
	next   ticks.T
	cursor int
	issued int64
}

// NewTPRACPerBank returns a per-bank TB-RFM policy for a channel with the
// given bank count.
func NewTPRACPerBank(window ticks.T, banks int) (*TPRACPerBank, error) {
	if window <= 0 {
		return nil, fmt.Errorf("mitigation: TB-Window must be positive, got %v", window)
	}
	if banks <= 0 {
		return nil, fmt.Errorf("mitigation: bank count must be positive, got %d", banks)
	}
	step := window / ticks.T(banks)
	if step <= 0 {
		return nil, fmt.Errorf("mitigation: window %v too small to rotate %d banks", window, banks)
	}
	return &TPRACPerBank{window: window, banks: banks, step: step, next: step}, nil
}

// Name implements Policy.
func (p *TPRACPerBank) Name() string { return "TPRAC-pb" }

// Window reports the configured TB-Window (one full bank rotation).
func (p *TPRACPerBank) Window() ticks.T { return p.window }

// Issued reports the number of per-bank RFMs scheduled.
func (p *TPRACPerBank) Issued() int64 { return p.issued }

// Due implements Policy: TPRACPerBank never requests channel-wide RFMs.
func (p *TPRACPerBank) Due(ticks.T) int { return 0 }

// NextDue implements Policy: the next slot of the per-bank rotation.
func (p *TPRACPerBank) NextDue(now ticks.T) ticks.T {
	if now >= p.next {
		return now
	}
	return p.next
}

// DuePerBank implements PerBankPolicy: one bank per window/banks interval,
// in a fixed rotation that is independent of memory activity.
func (p *TPRACPerBank) DuePerBank(now ticks.T) []int {
	var due []int
	for now >= p.next {
		due = append(due, p.cursor)
		p.cursor = (p.cursor + 1) % p.banks
		p.next += p.step
		p.issued++
	}
	return due
}

// OnActivate implements Policy; scheduling is activity-independent.
func (p *TPRACPerBank) OnActivate(int, ticks.T) {}

// OnTREF implements Policy. Skipping is not supported in the per-bank
// variant: a TREF mitigates whole ranks on the refresh cadence while the
// rotation targets single banks, so the substitution would be uneven.
func (p *TPRACPerBank) OnTREF(ticks.T) {}
