package mitigation

import (
	"testing"

	"pracsim/internal/ticks"
)

func TestPerBankRotation(t *testing.T) {
	window := ticks.FromUS(1.28)
	p, err := NewTPRACPerBank(window, 4)
	if err != nil {
		t.Fatal(err)
	}
	step := window / 4
	var order []int
	for i := 1; i <= 8; i++ {
		order = append(order, p.DuePerBank(step*ticks.T(i))...)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if p.Issued() != 8 {
		t.Fatalf("Issued() = %d, want 8", p.Issued())
	}
}

func TestPerBankRatePerBank(t *testing.T) {
	window := ticks.FromUS(1.28)
	p, err := NewTPRACPerBank(window, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	horizon := 20 * window
	for at := ticks.T(0); at <= horizon; at += window / 64 {
		for _, b := range p.DuePerBank(at) {
			counts[b]++
		}
	}
	// Every bank must receive one RFMpb per window: the same per-bank
	// mitigation rate as channel-wide TB-RFM.
	for b, c := range counts {
		if c < 19 || c > 21 {
			t.Errorf("bank %d received %d RFMpbs over 20 windows, want about 20", b, c)
		}
	}
}

func TestPerBankNeverRequestsChannelRFMs(t *testing.T) {
	p, err := NewTPRACPerBank(ticks.FromUS(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if p.Due(ticks.FromUS(float64(i))) != 0 {
			t.Fatal("per-bank policy requested a channel-wide RFM")
		}
	}
	if p.Name() != "TPRAC-pb" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestPerBankValidation(t *testing.T) {
	if _, err := NewTPRACPerBank(0, 4); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewTPRACPerBank(ticks.FromUS(1), 0); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := NewTPRACPerBank(2, 4); err == nil {
		t.Error("window smaller than one tick per bank accepted")
	}
}
