// Package mitigation implements the memory-controller-side RFM issuing
// policies compared in the paper:
//
//   - ABO-Only: rely purely on the DRAM's Alert Back-Off protocol.
//   - ABO+ACB-RFM: proactive Activation-Based RFMs at the JEDEC Bank
//     Activation Threshold (BAT), the standard's Targeted RFM.
//   - TPRAC: the paper's defense — Timing-Based RFMs issued at a fixed
//     interval (TB-Window) independent of memory activity, optionally
//     co-designed with Targeted Refreshes (TREF).
//
// A policy only decides when activity-independent or activity-dependent
// proactive RFMs are due; the ABO protocol itself is serviced by the memory
// controller regardless of policy, since JEDEC mandates it.
package mitigation

import (
	"fmt"

	"pracsim/internal/ticks"
)

// Policy decides when the memory controller should issue proactive RFMab
// commands. Implementations are single-threaded, driven by the controller.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string

	// Due reports how many proactive RFMs the controller should enqueue
	// at time now. The controller calls it once per controller cycle and
	// accumulates the result into its pending-RFM budget.
	Due(now ticks.T) int

	// NextDue reports the earliest future time at which Due (or, for
	// PerBankPolicy implementations, DuePerBank) can first report new
	// work, assuming no further activations are observed — the policy's
	// contribution to the controller's NextWork deadline under
	// demand-driven clocking. Purely activity-triggered policies return
	// ticks.Never: an idle channel can never make them due.
	NextDue(now ticks.T) ticks.T

	// OnActivate informs the policy of an activation to a bank.
	OnActivate(bank int, now ticks.T)

	// OnTREF informs the policy that a targeted refresh just performed a
	// mitigation, letting TPRAC skip an upcoming TB-RFM.
	OnTREF(now ticks.T)
}

// ABOOnly issues no proactive RFMs at all: mitigation happens only when the
// DRAM asserts Alert. This is the paper's insecure ABO-Only baseline.
type ABOOnly struct{}

// NewABOOnly returns the ABO-Only policy.
func NewABOOnly() *ABOOnly { return &ABOOnly{} }

// Name implements Policy.
func (*ABOOnly) Name() string { return "ABO-Only" }

// Due implements Policy; ABO-Only never schedules proactive RFMs.
func (*ABOOnly) Due(ticks.T) int { return 0 }

// NextDue implements Policy; ABO-Only has no scheduled work, ever.
func (*ABOOnly) NextDue(ticks.T) ticks.T { return ticks.Never }

// OnActivate implements Policy.
func (*ABOOnly) OnActivate(int, ticks.T) {}

// OnTREF implements Policy.
func (*ABOOnly) OnTREF(ticks.T) {}

// ACB issues an Activation-Based RFM whenever any bank accumulates BAT
// activations since the last RFM, per the JEDEC Targeted RFM mechanism.
// This is the paper's insecure ABO+ACB-RFM baseline: it avoids Alerts but
// remains activity-dependent and therefore leaks timing.
type ACB struct {
	bat     int
	perBank []int
	due     int
}

// NewACB returns an ACB policy for a channel with the given bank count and
// Bank Activation Threshold.
func NewACB(banks, bat int) (*ACB, error) {
	if banks <= 0 || bat <= 0 {
		return nil, fmt.Errorf("mitigation: ACB needs positive banks and BAT, got %d, %d", banks, bat)
	}
	return &ACB{bat: bat, perBank: make([]int, banks)}, nil
}

// Name implements Policy.
func (a *ACB) Name() string { return "ABO+ACB-RFM" }

// BAT reports the configured Bank Activation Threshold.
func (a *ACB) BAT() int { return a.bat }

// OnActivate implements Policy: crossing BAT on any bank schedules one RFM
// and rearms every bank counter, modeling the RAA-counter decrement an
// RFMab performs across all banks.
func (a *ACB) OnActivate(bank int, _ ticks.T) {
	a.perBank[bank]++
	if a.perBank[bank] >= a.bat {
		a.due++
		for i := range a.perBank {
			a.perBank[i] = 0
		}
	}
}

// Due implements Policy.
func (a *ACB) Due(ticks.T) int {
	d := a.due
	a.due = 0
	return d
}

// NextDue implements Policy: ACB is purely activation-triggered, so with
// undrained debt it is due immediately and otherwise never becomes due on
// an idle channel.
func (a *ACB) NextDue(now ticks.T) ticks.T {
	if a.due > 0 {
		return now
	}
	return ticks.Never
}

// OnTREF implements Policy.
func (a *ACB) OnTREF(ticks.T) {}

// TPRAC is the paper's defense: Timing-Based RFMs are issued once per
// TB-Window, entirely independent of memory activity, so an observer
// learns nothing from RFM timing. A single register (the RFM Interval
// Register) holds the window; this struct is its controller-side model.
//
// When SkipOnTREF is enabled (Section 4.3), a targeted refresh that
// performed a mitigation within the current window substitutes for the
// scheduled TB-RFM, which is then skipped.
type TPRAC struct {
	window     ticks.T
	skipOnTREF bool

	next        ticks.T
	trefCredits int
	skipped     int64
	issued      int64
}

// NewTPRAC returns a TPRAC policy issuing one TB-RFM per window.
func NewTPRAC(window ticks.T, skipOnTREF bool) (*TPRAC, error) {
	if window <= 0 {
		return nil, fmt.Errorf("mitigation: TB-Window must be positive, got %v", window)
	}
	return &TPRAC{window: window, skipOnTREF: skipOnTREF, next: window}, nil
}

// Name implements Policy.
func (p *TPRAC) Name() string {
	if p.skipOnTREF {
		return "TPRAC+TREF"
	}
	return "TPRAC"
}

// Window reports the configured TB-Window.
func (p *TPRAC) Window() ticks.T { return p.window }

// Issued reports how many TB-RFMs the policy has scheduled.
func (p *TPRAC) Issued() int64 { return p.issued }

// Skipped reports how many TB-RFMs were skipped thanks to TREFs.
func (p *TPRAC) Skipped() int64 { return p.skipped }

// Due implements Policy: exactly one RFM per elapsed TB-Window, regardless
// of what the workload did, minus any windows covered by a TREF mitigation.
func (p *TPRAC) Due(now ticks.T) int {
	n := 0
	for now >= p.next {
		if p.skipOnTREF && p.trefCredits > 0 {
			p.trefCredits--
			p.skipped++
		} else {
			n++
			p.issued++
		}
		p.next += p.window
	}
	return n
}

// NextDue implements Policy: the next TB-Window boundary, independent of
// activity by construction.
func (p *TPRAC) NextDue(now ticks.T) ticks.T {
	if now >= p.next {
		return now
	}
	return p.next
}

// OnActivate implements Policy. TB-RFM timing must never depend on
// activity, so this is deliberately a no-op.
func (p *TPRAC) OnActivate(int, ticks.T) {}

// OnTREF implements Policy.
func (p *TPRAC) OnTREF(ticks.T) {
	if p.skipOnTREF {
		p.trefCredits++
	}
}
