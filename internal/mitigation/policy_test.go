package mitigation

import (
	"testing"
	"testing/quick"

	"pracsim/internal/ticks"
)

func TestABOOnlyNeverSchedules(t *testing.T) {
	p := NewABOOnly()
	for i := 0; i < 100; i++ {
		p.OnActivate(i%4, ticks.T(i))
		if p.Due(ticks.T(i)) != 0 {
			t.Fatal("ABO-Only scheduled a proactive RFM")
		}
	}
	if p.Name() != "ABO-Only" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestACBTriggersAtBAT(t *testing.T) {
	p, err := NewACB(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	p.OnActivate(2, 0)
	p.OnActivate(2, 1)
	if p.Due(1) != 0 {
		t.Fatal("ACB fired below BAT")
	}
	p.OnActivate(2, 2)
	if p.Due(2) != 1 {
		t.Fatal("ACB did not fire at BAT")
	}
	// Counters must rearm across all banks after the RFM.
	p.OnActivate(0, 3)
	p.OnActivate(1, 4)
	if p.Due(4) != 0 {
		t.Fatal("ACB fired after rearm with spread activations")
	}
}

func TestACBRejectsBadConfig(t *testing.T) {
	if _, err := NewACB(0, 3); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := NewACB(4, 0); err == nil {
		t.Error("zero BAT accepted")
	}
}

// Property: the number of RFMs ACB schedules never exceeds total
// activations divided by BAT (each RFM consumes at least BAT activations).
func TestACBRateBoundProperty(t *testing.T) {
	prop := func(acts []uint8, batRaw uint8) bool {
		bat := int(batRaw%16) + 1
		p, err := NewACB(8, bat)
		if err != nil {
			return false
		}
		total, rfms := 0, 0
		for i, a := range acts {
			p.OnActivate(int(a)%8, ticks.T(i))
			total++
			rfms += p.Due(ticks.T(i))
		}
		return rfms <= total/bat
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTPRACPeriodicIndependentOfActivity(t *testing.T) {
	w := ticks.FromNS(1000)
	p, err := NewTPRAC(w, false)
	if err != nil {
		t.Fatal(err)
	}
	// Hammering must not change the schedule.
	for i := 0; i < 500; i++ {
		p.OnActivate(0, ticks.T(i))
	}
	if got := p.Due(w - 1); got != 0 {
		t.Fatalf("Due before window = %d, want 0", got)
	}
	if got := p.Due(w); got != 1 {
		t.Fatalf("Due at window = %d, want 1", got)
	}
	if got := p.Due(4 * w); got != 3 {
		t.Fatalf("Due after 3 more windows = %d, want 3", got)
	}
	if p.Issued() != 4 {
		t.Fatalf("Issued = %d, want 4", p.Issued())
	}
}

func TestTPRACSkipsOnTREF(t *testing.T) {
	w := ticks.FromNS(1000)
	p, err := NewTPRAC(w, true)
	if err != nil {
		t.Fatal(err)
	}
	p.OnTREF(ticks.FromNS(500))
	if got := p.Due(w); got != 0 {
		t.Fatalf("Due = %d, want 0 (TREF credit should cover the window)", got)
	}
	if p.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", p.Skipped())
	}
	if got := p.Due(2 * w); got != 1 {
		t.Fatalf("Due next window = %d, want 1", got)
	}
}

func TestTPRACNoSkipWhenDisabled(t *testing.T) {
	w := ticks.FromNS(1000)
	p, err := NewTPRAC(w, false)
	if err != nil {
		t.Fatal(err)
	}
	p.OnTREF(ticks.FromNS(500))
	if got := p.Due(w); got != 1 {
		t.Fatalf("Due = %d, want 1 (skip disabled)", got)
	}
	if p.Name() != "TPRAC" {
		t.Errorf("Name() = %q", p.Name())
	}
	p2, _ := NewTPRAC(w, true)
	if p2.Name() != "TPRAC+TREF" {
		t.Errorf("Name() = %q", p2.Name())
	}
}

func TestTPRACRejectsBadWindow(t *testing.T) {
	if _, err := NewTPRAC(0, false); err == nil {
		t.Error("zero window accepted")
	}
}

// Property: over any horizon, TPRAC's issued+skipped count equals the
// number of whole windows elapsed — RFM count is a pure function of time.
func TestTPRACCountIsPureFunctionOfTimeProperty(t *testing.T) {
	prop := func(horizonRaw uint16, activity []uint8) bool {
		w := ticks.FromNS(100)
		horizon := ticks.T(horizonRaw)
		p, err := NewTPRAC(w, true)
		if err != nil {
			return false
		}
		issued := 0
		for now := ticks.T(0); now <= horizon; now++ {
			if len(activity) > 0 && activity[int(now)%len(activity)] > 128 {
				p.OnActivate(int(now)%4, now)
			}
			issued += p.Due(now)
		}
		wantWindows := int(horizon / w)
		return issued+int(p.Skipped()) == wantWindows
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
