// Package retry is the pipeline's one retry/backoff/deadline policy:
// capped exponential backoff with deterministic jitter and a per-attempt
// context deadline. The store client, the dispatch driver's shard
// requeue, and the CLIs' merge paths all schedule retries through it, so
// "how failure is paced" is one tunable policy instead of scattered
// constants — and, seeded, it is reproducible.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy paces retries of one class of operation.
type Policy struct {
	// Attempts is the total tries, including the first (minimum 1).
	Attempts int
	// Base is the backoff before the second attempt; each further wait
	// doubles, capped at Max. Zero disables waiting.
	Base time.Duration
	// Max caps a single backoff wait (default 8×Base).
	Max time.Duration
	// PerTry bounds each attempt with a context deadline. Zero means the
	// caller's context alone bounds the attempt.
	PerTry time.Duration
	// Seed drives the jitter draws; two policies with the same seed pace
	// identically for the same op strings.
	Seed uint64
}

func (p Policy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

func (p Policy) max() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	return 8 * p.Base
}

// Delay returns the backoff before the given retry of op (attempt 1 is
// the first retry, i.e. the wait after the first failure): the capped
// exponential with deterministic half-to-full jitter drawn from
// (seed, op, attempt). Exported so non-blocking schedulers — the
// dispatch event loop — can arm timers with policy pacing instead of
// sleeping.
func (p Policy) Delay(op string, attempt int) time.Duration {
	if p.Base <= 0 || attempt < 1 {
		return 0
	}
	d := p.Base << uint(attempt-1)
	if max := p.max(); d > max || d <= 0 { // <=0 catches shift overflow
		d = max
	}
	// Half-to-full jitter: wait in [d/2, d), deterministic per
	// (seed, op, attempt) so retry storms decorrelate but replay exactly.
	frac := splitmix(p.Seed ^ hashString(op) ^ uint64(attempt))
	return d/2 + time.Duration(frac%uint64(d/2+1))
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as not-retryable: Do returns it immediately,
// unwrapped. Use it for failures where another attempt cannot help — a
// 404, a frame that fails validation, an open circuit.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs fn under the policy: up to Attempts tries, each bounded by
// PerTry, with jittered backoff between failures. It stops early on
// success, a Permanent error, or caller-context cancellation, and
// returns the retry count (attempts beyond the first) alongside the
// final error. fn receives the per-attempt context and the 1-based
// attempt number.
func (p Policy) Do(ctx context.Context, op string, fn func(ctx context.Context, attempt int) error) (retries int, err error) {
	attempts := p.attempts()
	for attempt := 1; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerTry > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerTry)
		}
		err = fn(actx, attempt)
		cancel()
		if err == nil {
			return attempt - 1, nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return attempt - 1, pe.err
		}
		if attempt >= attempts {
			return attempt - 1, fmt.Errorf("%s: %d attempts: %w", op, attempts, err)
		}
		if ctx.Err() != nil {
			return attempt - 1, ctx.Err()
		}
		if d := p.Delay(op, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return attempt - 1, ctx.Err()
			}
		}
	}
}

// hashString is FNV-1a, inlined to keep Delay allocation-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
