package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsFirstTry(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Hour} // backoff must never be taken
	retries, err := p.Do(context.Background(), "op", func(ctx context.Context, attempt int) error {
		if attempt != 1 {
			t.Fatalf("attempt = %d", attempt)
		}
		return nil
	})
	if retries != 0 || err != nil {
		t.Fatalf("retries=%d err=%v", retries, err)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Microsecond}
	calls := 0
	retries, err := p.Do(context.Background(), "op", func(ctx context.Context, attempt int) error {
		calls++
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || retries != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d err=%v", retries, calls, err)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Microsecond}
	boom := errors.New("boom")
	calls := 0
	retries, err := p.Do(context.Background(), "op", func(context.Context, int) error {
		calls++
		return boom
	})
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d", calls, retries)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v does not wrap cause", err)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Hour}
	notFound := errors.New("not found")
	calls := 0
	retries, err := p.Do(context.Background(), "op", func(context.Context, int) error {
		calls++
		return Permanent(notFound)
	})
	if calls != 1 || retries != 0 {
		t.Fatalf("calls=%d retries=%d", calls, retries)
	}
	// Do unwraps the Permanent marker so errors.Is against the sentinel
	// (e.g. store.ErrNotFound) works at the caller.
	if !errors.Is(err, notFound) || IsPermanent(err) {
		t.Fatalf("err=%v", err)
	}
}

func TestPermanentWrapping(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	base := errors.New("x")
	p := Permanent(base)
	if !IsPermanent(p) || !errors.Is(p, base) {
		t.Fatalf("marking broken: %v", p)
	}
	if IsPermanent(base) {
		t.Fatal("unmarked error reported permanent")
	}
}

func TestDoHonorsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 10, Base: time.Hour} // would sleep forever without cancel
	calls := 0
	done := make(chan struct{})
	var retries int
	var err error
	go func() {
		retries, err = p.Do(ctx, "op", func(context.Context, int) error {
			calls++
			return errors.New("transient")
		})
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls=%d retries=%d err=%v", calls, retries, err)
	}
}

func TestDoPerTryDeadline(t *testing.T) {
	p := Policy{Attempts: 2, Base: time.Microsecond, PerTry: 20 * time.Millisecond}
	deadlines := 0
	_, err := p.Do(context.Background(), "op", func(ctx context.Context, attempt int) error {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatal("attempt context has no deadline")
		}
		if until := time.Until(dl); until > 25*time.Millisecond {
			t.Fatalf("deadline %v away, want ~20ms", until)
		}
		deadlines++
		<-ctx.Done() // simulate an attempt that outlives its deadline
		return ctx.Err()
	})
	if deadlines != 2 {
		t.Fatalf("deadlines=%d", deadlines)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v", err)
	}
}

func TestDelayDeterministicCappedJittered(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Seed: 9}
	if p.Delay("op", 0) != 0 {
		t.Fatal("attempt 0 delayed")
	}
	if (Policy{}).Delay("op", 3) != 0 {
		t.Fatal("zero Base delayed")
	}
	for attempt := 1; attempt <= 20; attempt++ {
		d := p.Delay("op", attempt)
		if d != p.Delay("op", attempt) {
			t.Fatalf("attempt %d non-deterministic", attempt)
		}
		// Nominal backoff for this attempt, capped.
		nominal := p.Base << uint(attempt-1)
		if nominal > p.Max || nominal <= 0 {
			nominal = p.Max
		}
		if d < nominal/2 || d > nominal {
			t.Fatalf("attempt %d delay %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
	}
	if p.Delay("op-a", 1) == p.Delay("op-b", 1) && p.Delay("op-a", 2) == p.Delay("op-b", 2) {
		t.Fatal("distinct ops jitter identically")
	}
}

func TestDelayDefaultMax(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond}
	// With no Max, cap is 8×Base.
	for attempt := 1; attempt <= 30; attempt++ {
		if d := p.Delay("op", attempt); d > 80*time.Millisecond {
			t.Fatalf("attempt %d delay %v exceeds 8×Base", attempt, d)
		}
	}
}
