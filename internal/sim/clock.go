package sim

import (
	"pracsim/internal/memctrl"
	"pracsim/internal/ticks"
)

// Clocking selects how the engine drives component tickers.
type Clocking int

const (
	// ClockDemand elides provably-idle cycles: components report a
	// conservative "next time I can possibly do work" after each tick,
	// their tickers are deferred or paused across the dead window, and
	// events (request enqueue, fill completion, maintenance accrual)
	// re-arm them. Results are bit-identical to ClockPerCycle — enforced
	// by RunDifferential and the differential determinism tests — while
	// long stall and quiet phases cost O(1) instead of O(cycles).
	ClockDemand Clocking = iota
	// ClockPerCycle ticks every component every cycle: the reference
	// model demand-driven clocking is verified against.
	ClockPerCycle
)

// String names the clocking for reports.
func (c Clocking) String() string {
	if c == ClockPerCycle {
		return "per-cycle"
	}
	return "demand"
}

// ControllerClock drives one memory controller (plus an optional pre-tick
// hook, e.g. the LLC adapter's writeback retry) from an engine ticker
// with demand-driven idle elision: after each tick it asks the controller
// for its next possible work time and skips the ticker straight there —
// or parks it entirely when the controller is quiescent — and a request
// arriving in the meantime pulls the ticker back up through the
// controller's waker. Fire times never leave the controller's cycle grid,
// so the command schedule is bit-identical to per-cycle ticking.
type ControllerClock struct {
	eng  *Engine
	ctrl *memctrl.Controller
	// pre runs before each controller tick; it reports whether the
	// domain may park afterwards (false = it still holds buffered work,
	// such as refused writebacks awaiting retry).
	pre func(now ticks.T) bool

	ticker   *Ticker
	perCycle bool
	parked   bool // ticker paused: wake on enqueue only
	deferred bool // ticker skipped to a deadline: enqueue may pull it up
	lastTick ticks.T
	elided   int64
}

// NewControllerClock attaches a controller to the engine. pre may be nil.
func NewControllerClock(eng *Engine, ctrl *memctrl.Controller, pre func(now ticks.T) bool, clock Clocking) *ControllerClock {
	cc := &ControllerClock{
		eng:      eng,
		ctrl:     ctrl,
		pre:      pre,
		perCycle: clock == ClockPerCycle,
		lastTick: -memctrl.CyclePeriod,
	}
	cc.ticker = eng.AddTicker(memctrl.CyclePeriod, 0, cc.tick)
	if !cc.perCycle {
		ctrl.SetWaker(cc.wake)
	}
	return cc
}

// RetrySlot reports the first cycle at which a memory access refused at
// now can usefully be retried: the controller's next grid slot. MSHRs and
// controller queue entries are only released by controller activity, so
// retries between controller cycles are provably futile. Cores inject
// this as their SetRetrySlot hook.
func (cc *ControllerClock) RetrySlot(now ticks.T) ticks.T {
	next := now + 1
	if rem := next % memctrl.CyclePeriod; rem != 0 {
		next += memctrl.CyclePeriod - rem
	}
	return next
}

// Elided reports how many controller cycles have been skipped up to now,
// including a currently open skip window.
func (cc *ControllerClock) Elided(now ticks.T) int64 {
	n := cc.elided
	if gap := (now - cc.lastTick) / memctrl.CyclePeriod; gap > 1 {
		n += int64(gap - 1)
	}
	return n
}

func (cc *ControllerClock) tick(now ticks.T) {
	if gap := (now - cc.lastTick) / memctrl.CyclePeriod; gap > 1 {
		cc.elided += int64(gap - 1)
	}
	cc.lastTick = now
	cc.deferred = false
	mayPark := true
	if cc.pre != nil {
		mayPark = cc.pre(now)
	}
	cc.ctrl.Tick(now)
	if cc.perCycle || !mayPark {
		return
	}
	next := cc.ctrl.NextWork(now)
	if next <= now+memctrl.CyclePeriod {
		return
	}
	if next == ticks.Never {
		cc.eng.PauseTicker(cc.ticker)
		cc.parked = true
	} else {
		cc.eng.RescheduleTicker(cc.ticker, next)
		cc.deferred = true
	}
}

// wake is the controller's enqueue hook: pull a parked or deferred ticker
// up to the next slot the per-cycle baseline would service the request at.
// That slot derives from engine time, not the request's nominal arrival
// time: cache lookup latencies are folded into the fetch chain
// synchronously, so a request can carry an arrival stamp ahead of the
// present — but it sits in the queue already, and the per-cycle
// controller would serve it at its next real tick.
func (cc *ControllerClock) wake(ticks.T) {
	if !cc.parked && !cc.deferred {
		return
	}
	cc.parked, cc.deferred = false, false
	cc.eng.RescheduleTicker(cc.ticker, cc.eng.Now())
}
