package sim

import (
	"fmt"
	"reflect"
)

// DiffResults compares two RunResults modulo Telemetry (the only part of
// a result that may legitimately differ between clockings or machines)
// and returns a human-readable description of the first differing fields,
// or "" when the results are bit-identical.
func DiffResults(a, b RunResult) string {
	a.Telemetry, b.Telemetry = Telemetry{}, Telemetry{}
	if reflect.DeepEqual(a, b) {
		return ""
	}
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	tp := av.Type()
	var diffs []string
	for i := 0; i < tp.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			diffs = append(diffs, fmt.Sprintf("%s: %v != %v",
				tp.Field(i).Name, av.Field(i).Interface(), bv.Field(i).Interface()))
		}
	}
	if len(diffs) == 0 {
		return "results differ but no field does (internal comparison bug)"
	}
	out := diffs[0]
	for _, d := range diffs[1:] {
		out += "; " + d
	}
	return out
}

// RunDifferential is the differential mode guarding the demand-driven
// clock: it executes the same configuration under both ClockDemand and
// ClockPerCycle and fails loudly unless the results are bit-identical.
// On success it returns the demand-clocked result (whose telemetry shows
// the elision win). It is the slow, paranoid path — roughly the cost of
// both clockings combined — meant for tests and for -differential sweeps
// that validate the elision machinery across whole experiment grids.
func RunDifferential(cfg SystemConfig, warmup, measured int64) (RunResult, error) {
	run := func(clock Clocking) (RunResult, error) {
		c := cfg
		c.Clock = clock
		sys, err := NewSystem(c)
		if err != nil {
			return RunResult{}, err
		}
		return sys.Run(warmup, measured)
	}
	demand, err := run(ClockDemand)
	if err != nil {
		return RunResult{}, fmt.Errorf("sim: demand-clocked run: %w", err)
	}
	ref, err := run(ClockPerCycle)
	if err != nil {
		return RunResult{}, fmt.Errorf("sim: per-cycle reference run: %w", err)
	}
	if diff := DiffResults(demand, ref); diff != "" {
		return demand, fmt.Errorf("sim: demand-driven clocking diverged from the per-cycle baseline: %s", diff)
	}
	return demand, nil
}
