package sim

import (
	"testing"
)

// TestDifferentialDeterminism is the demand-driven clock's contract: for
// every mitigation variant the performance figures sweep (the Fig 11 /
// Table 5 grid axes — ABO-Only, ACB, TPRAC with and without TREF
// co-design, per-bank TPRAC, the no-ABO baseline) the elided clocking
// must reproduce the per-cycle RunResult bit for bit, on homogeneous and
// mixed workloads alike.
func TestDifferentialDeterminism(t *testing.T) {
	base := func() SystemConfig {
		cfg := DefaultSystemConfig(1024)
		cfg.LLCSizeKB = 1024 // unit-test footprint
		return cfg
	}
	cases := []struct {
		name string
		cfg  func() SystemConfig
	}{
		{"baseline-milc", func() SystemConfig {
			return base()
		}},
		{"abo-only-lbm", func() SystemConfig {
			cfg := base()
			cfg.Policy = PolicyABOOnly
			cfg.Workload = "470.lbm"
			return cfg
		}},
		{"acb-milc", func() SystemConfig {
			cfg := base()
			cfg.Policy = PolicyACB
			cfg.BAT = 64
			return cfg
		}},
		{"tprac-milc", func() SystemConfig {
			cfg := base()
			cfg.Policy = PolicyTPRAC
			cfg.TBWindow = cfg.DRAM.Timing.TREFI
			return cfg
		}},
		{"tprac-tref-mcf", func() SystemConfig {
			cfg := base()
			cfg.Policy = PolicyTPRAC
			cfg.TBWindow = cfg.DRAM.Timing.TREFI / 2
			cfg.SkipOnTREF = true
			cfg.Ctrl.TREFEvery = 2
			cfg.Workload = "429.mcf"
			return cfg
		}},
		{"tprac-perbank-milc", func() SystemConfig {
			cfg := base()
			cfg.Policy = PolicyTPRACpb
			cfg.TBWindow = cfg.DRAM.Timing.TREFI
			return cfg
		}},
		{"mixed-workloads", func() SystemConfig {
			cfg := base()
			cfg.WorkloadMix = []string{"433.milc", "444.namd", "401.bzip2", "470.lbm"}
			return cfg
		}},
		{"compute-bound-namd", func() SystemConfig {
			cfg := base()
			cfg.Workload = "444.namd"
			return cfg
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunDifferential(tc.cfg(), 2000, 6000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Instructions == 0 {
				t.Fatal("differential run retired nothing")
			}
			if res.Telemetry.Clock != ClockDemand.String() {
				t.Errorf("returned result is %q-clocked, want the demand run", res.Telemetry.Clock)
			}
		})
	}
}

// TestElisionReducesEngineSteps pins the acceptance criterion: on an
// idle-heavy (memory-bound) workload, demand-driven clocking must process
// at least 2x fewer engine timesteps than per-cycle ticking while
// producing the identical result, and must report the skipped cycles.
func TestElisionReducesEngineSteps(t *testing.T) {
	run := func(clock Clocking) RunResult {
		cfg := DefaultSystemConfig(1024)
		cfg.Workload = "433.milc" // high-MPKI: cores spend most cycles stalled
		cfg.Clock = clock
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(2000, 8000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	demand := run(ClockDemand)
	perCycle := run(ClockPerCycle)
	if diff := DiffResults(demand, perCycle); diff != "" {
		t.Fatalf("clockings diverge: %s", diff)
	}
	ds, ps := demand.Telemetry.EngineSteps, perCycle.Telemetry.EngineSteps
	if ds <= 0 || ps <= 0 {
		t.Fatalf("missing engine-step telemetry: demand %d, per-cycle %d", ds, ps)
	}
	if ds*2 > ps {
		t.Errorf("demand clocking processed %d steps vs %d per-cycle: less than the required 2x reduction", ds, ps)
	}
	if demand.Telemetry.ElidedCycles() == 0 {
		t.Error("no skipped cycles reported on a memory-bound workload")
	}
	if perCycle.Telemetry.ElidedCycles() != 0 {
		t.Errorf("per-cycle run reports %d elided cycles, want 0", perCycle.Telemetry.ElidedCycles())
	}
	if perCycle.Telemetry.Clock != "per-cycle" || demand.Telemetry.Clock != "demand" {
		t.Errorf("clock labels: %q / %q", demand.Telemetry.Clock, perCycle.Telemetry.Clock)
	}
}

// TestTelemetryPopulated checks the straggler-visibility fields.
func TestTelemetryPopulated(t *testing.T) {
	cfg := DefaultSystemConfig(1024)
	cfg.LLCSizeKB = 1024
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(1000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Telemetry
	if tl.WallNS <= 0 {
		t.Errorf("WallNS = %d, want > 0", tl.WallNS)
	}
	if tl.SimTicks <= 0 || tl.SimTicks < res.MeasuredTime {
		t.Errorf("SimTicks = %v, want >= measured interval %v", tl.SimTicks, res.MeasuredTime)
	}
	if tl.TicksPerSec <= 0 {
		t.Errorf("TicksPerSec = %v, want > 0", tl.TicksPerSec)
	}
	if tl.EngineSteps <= 0 || tl.EngineSteps > int64(tl.SimTicks)+1 {
		t.Errorf("EngineSteps = %d outside (0, %d]", tl.EngineSteps, int64(tl.SimTicks)+1)
	}
}

// TestDiffResultsReportsFields exercises the mismatch rendering.
func TestDiffResultsReportsFields(t *testing.T) {
	a := RunResult{Cycles: 10, Instructions: 5}
	b := RunResult{Cycles: 11, Instructions: 5}
	if d := DiffResults(a, b); d == "" {
		t.Fatal("differing results compared equal")
	} else if want := "Cycles: 10 != 11"; d != want {
		t.Errorf("diff = %q, want %q", d, want)
	}
	// Telemetry must never trip the comparison.
	a.Telemetry = Telemetry{WallNS: 123, EngineSteps: 7}
	b = a
	b.Cycles = 10
	b.Telemetry = Telemetry{WallNS: 456}
	if d := DiffResults(a, b); d != "" {
		t.Errorf("telemetry-only difference reported: %s", d)
	}
}
