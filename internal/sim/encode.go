package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// SchemaVersion identifies the simulator's behavioral schema: any change
// that can alter a RunResult for the same configuration (timing model,
// policy semantics, trace synthesis, statistics definitions) must bump it.
// The version is baked into every persistent run key, so a bump silently
// invalidates all previously stored results — stale entries become
// unreachable rather than wrong.
const SchemaVersion = 3

// resultEnvelope is the on-disk form of a RunResult. The schema stamp is
// defense in depth behind the versioned store key: a decoder never
// accepts a payload produced by a different simulator schema even if a
// key somehow survives a version bump.
type resultEnvelope struct {
	Schema int       `json:"schema"`
	Result RunResult `json:"result"`
}

// EncodeResult serializes a RunResult into its stable interchange form.
// The encoding is deterministic (struct fields marshal in declaration
// order, float64 values round-trip exactly), so equal results encode to
// equal bytes and a decoded result reproduces byte-identical reports.
func EncodeResult(r RunResult) ([]byte, error) {
	data, err := json.Marshal(resultEnvelope{Schema: SchemaVersion, Result: r})
	if err != nil {
		return nil, fmt.Errorf("sim: encoding result: %w", err)
	}
	return data, nil
}

// DecodeResult parses a stable-form RunResult, rejecting payloads from a
// different simulator schema or with fields this schema does not know.
// Note the asymmetry: an entry *missing* a field RunResult gained later
// decodes with that field zero-valued — adding a result field is a
// schema change and must bump SchemaVersion like any other.
func DecodeResult(data []byte) (RunResult, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env resultEnvelope
	if err := dec.Decode(&env); err != nil {
		return RunResult{}, fmt.Errorf("sim: decoding result: %w", err)
	}
	if env.Schema != SchemaVersion {
		return RunResult{}, fmt.Errorf("sim: result schema %d, want %d", env.Schema, SchemaVersion)
	}
	return env.Result, nil
}
