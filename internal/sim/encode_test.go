package sim

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
)

func sampleResult() RunResult {
	return RunResult{
		Policy:       "TPRAC",
		Cycles:       123456,
		Instructions: 40000,
		IPCSum:       1.0 / 3.0, // a value with no short decimal form
		PerCoreIPC:   []float64{0.1, math.Nextafter(0.25, 1), 0.25, 1e-17},
		RBMPKI:       3.1415926535897931,
		Ctrl:         memctrl.Stats{Reads: 9, RowMisses: 4, ReadLatency: 77},
		DRAM:         dram.Stats{ACTs: 11, RFMs: 2, CounterResets: 1},
		MeasuredTime: 987654,
		Telemetry: Telemetry{
			WallNS: 5e6, SimTicks: 987654, TicksPerSec: 1.9e8,
			EngineSteps: 4242, ElidedCoreCycles: 17, Clock: "demand",
		},
	}
}

// TestEncodeResultRoundTrip pins the serialization contract the run store
// depends on: decode(encode(r)) == r exactly, including float64 values
// with no short decimal representation, and equal results encode to
// equal bytes.
func TestEncodeResultRoundTrip(t *testing.T) {
	r := sampleResult()
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", got, r)
	}
	again, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("equal results encoded to different bytes")
	}
}

// TestDecodeResultRejectsSchemaMismatch: a payload stamped with another
// schema version must be refused, never silently reinterpreted.
func TestDecodeResultRejectsSchemaMismatch(t *testing.T) {
	data, err := json.Marshal(resultEnvelope{Schema: SchemaVersion + 1, Result: sampleResult()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(data); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestDecodeResultRejectsGarbage: truncated or non-JSON payloads error
// cleanly (the store treats any decode error as a miss).
func TestDecodeResultRejectsGarbage(t *testing.T) {
	good, err := EncodeResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range [][]byte{nil, []byte("{"), good[:len(good)/2], []byte(`{"schema":3,"result":{"NoSuchField":1}}`)} {
		if _, err := DecodeResult(data); err == nil {
			t.Errorf("decode accepted %q", data)
		}
	}
}
