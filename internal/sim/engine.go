// Package sim provides the discrete-time engine that drives all simulator
// components, plus the System assembly that wires cores, caches, the memory
// controller and DRAM into the paper's Table 3 configuration.
package sim

import (
	"container/heap"

	"pracsim/internal/ticks"
)

// Engine advances simulated time, driving periodic tickers (cores, the
// memory controller) and one-shot scheduled events. Components are strictly
// single-threaded: all callbacks run on the caller's goroutine in time order.
type Engine struct {
	now     ticks.T
	tickers []*ticker
	events  eventHeap
	stopped bool
}

type ticker struct {
	period ticks.T
	next   ticks.T
	fn     func(now ticks.T)
}

type event struct {
	at  ticks.T
	seq int64
	fn  func(now ticks.T)
}

type eventHeap struct {
	items []event
	seq   int64
}

func (h *eventHeap) Len() int { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool {
	if h.items[i].at != h.items[j].at {
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventHeap) Push(x any)    { h.items = append(h.items, x.(event)) }
func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() ticks.T { return e.now }

// AddTicker registers fn to run every period ticks, starting at time offset.
func (e *Engine) AddTicker(period, offset ticks.T, fn func(now ticks.T)) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	e.tickers = append(e.tickers, &ticker{period: period, next: offset, fn: fn})
}

// After schedules fn to run once, delay ticks from now.
func (e *Engine) After(delay ticks.T, fn func(now ticks.T)) {
	e.events.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.events.seq, fn: fn})
}

// At schedules fn to run once at absolute time at (which must not be in the
// past).
func (e *Engine) At(at ticks.T, fn func(now ticks.T)) {
	if at < e.now {
		panic("sim: cannot schedule event in the past")
	}
	e.events.seq++
	heap.Push(&e.events, event{at: at, seq: e.events.seq, fn: fn})
}

// Stop makes the current Run call return after the present timestamp
// finishes processing.
func (e *Engine) Stop() { e.stopped = true }

// Run advances time until the deadline (inclusive of work scheduled exactly
// at it). Idle gaps with no tickers or events are skipped in O(1).
func (e *Engine) Run(until ticks.T) {
	e.stopped = false
	for !e.stopped {
		next := until + 1
		for _, t := range e.tickers {
			if t.next < next {
				next = t.next
			}
		}
		if len(e.events.items) > 0 && e.events.items[0].at < next {
			next = e.events.items[0].at
		}
		if next > until {
			e.now = until
			return
		}
		e.now = next
		for len(e.events.items) > 0 && e.events.items[0].at == next {
			ev := heap.Pop(&e.events).(event)
			ev.fn(next)
		}
		for _, t := range e.tickers {
			if t.next == next {
				t.next += t.period
				t.fn(next)
			}
		}
	}
}
